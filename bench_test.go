// Benchmarks regenerating every table and figure of the paper
// (Section VII), one testing.B target per exhibit, plus
// micro-benchmarks of the nanosecond query path the paper headlines.
//
// The experiment benches run on CI-sized datasets (bench.QuickConfig);
// run `go run ./cmd/rnebench -exp all` for full-scale tables. Each
// experiment bench reports wall time per full regeneration.
package rne

import (
	"io"
	"math/rand"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/gen"
)

func benchExperiment(b *testing.B, f func(io.Writer, bench.Config) error) {
	b.Helper()
	cfg := bench.QuickConfig()
	for i := 0; i < b.N; i++ {
		if err := f(io.Discard, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2Datasets(b *testing.B)  { benchExperiment(b, bench.Table2) }
func BenchmarkTable3QueryTime(b *testing.B) { benchExperiment(b, bench.Table3) }
func BenchmarkTable4Build(b *testing.B)     { benchExperiment(b, bench.Table4) }
func BenchmarkFig7Layout(b *testing.B)      { benchExperiment(b, bench.Fig7) }
func BenchmarkFig8ErrorDist(b *testing.B)   { benchExperiment(b, bench.Fig8) }
func BenchmarkFig9VaryLp(b *testing.B)      { benchExperiment(b, bench.Fig9) }
func BenchmarkFig10VaryDim(b *testing.B)    { benchExperiment(b, bench.Fig10) }
func BenchmarkFig11Hier(b *testing.B)       { benchExperiment(b, bench.Fig11) }
func BenchmarkFig12Landmarks(b *testing.B)  { benchExperiment(b, bench.Fig12) }
func BenchmarkFig13TimeByDist(b *testing.B) { benchExperiment(b, bench.Fig13) }
func BenchmarkFig14DR(b *testing.B)         { benchExperiment(b, bench.Fig14) }
func BenchmarkFig15CDF(b *testing.B)        { benchExperiment(b, bench.Fig15) }
func BenchmarkFig16Range(b *testing.B)      { benchExperiment(b, bench.Fig16) }
func BenchmarkFig17ErrByDist(b *testing.B)  { benchExperiment(b, bench.Fig17) }

// queryModel caches one trained model for the micro-benchmarks.
var queryModels = map[int]*core.Model{}

func modelForDim(b *testing.B, dim int) *core.Model {
	b.Helper()
	if m, ok := queryModels[dim]; ok {
		return m
	}
	g, err := gen.Grid(40, 40, gen.DefaultConfig(1))
	if err != nil {
		b.Fatal(err)
	}
	opt := core.DefaultOptions(1)
	opt.Dim = dim
	opt.Epochs = 2
	opt.VertexSampleRatio = 10
	opt.FineTuneRounds = 1
	opt.HierSampleCap = 5000
	opt.ValidationPairs = 100
	m, _, err := core.Build(g, opt)
	if err != nil {
		b.Fatal(err)
	}
	queryModels[dim] = m
	return m
}

// benchQuery measures the paper's headline metric: a single distance
// estimate (two row reads + one L1 kernel).
func benchQuery(b *testing.B, dim int) {
	m := modelForDim(b, dim)
	rng := rand.New(rand.NewSource(2))
	n := m.NumVertices()
	const nPairs = 4096
	ss := make([]int32, nPairs)
	ts := make([]int32, nPairs)
	for i := range ss {
		ss[i] = int32(rng.Intn(n))
		ts[i] = int32(rng.Intn(n))
	}
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		j := i & (nPairs - 1)
		sink += m.EstimateL1(ss[j], ts[j])
	}
	_ = sink
}

func BenchmarkRNEQueryDim32(b *testing.B)  { benchQuery(b, 32) }
func BenchmarkRNEQueryDim64(b *testing.B)  { benchQuery(b, 64) }
func BenchmarkRNEQueryDim128(b *testing.B) { benchQuery(b, 128) }
