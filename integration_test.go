package rne

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/ch"
	"repro/internal/gen"
	"repro/internal/gtree"
	"repro/internal/h2h"
	"repro/internal/partition"
	"repro/internal/sssp"
)

// TestExactMethodsAgree cross-validates every exact distance structure
// in the repository against one another: Dijkstra, bidirectional
// Dijkstra, CH, H2H and G-tree must return identical distances on the
// same graph. Any disagreement pinpoints a bug in one of them.
func TestExactMethodsAgree(t *testing.T) {
	for _, seed := range []int64{1, 2} {
		g, err := gen.Grid(15, 15, gen.DefaultConfig(seed))
		if err != nil {
			t.Fatal(err)
		}
		ws := sssp.NewWorkspace(g)
		chIdx, err := ch.Build(g, ch.Options{})
		if err != nil {
			t.Fatal(err)
		}
		chQ := chIdx.NewQuery()
		h2hIdx, err := h2h.Build(g)
		if err != nil {
			t.Fatal(err)
		}
		h, err := partition.BuildHierarchy(g, partition.DefaultHierConfig(seed))
		if err != nil {
			t.Fatal(err)
		}
		gt, err := gtree.Build(g, h, nil)
		if err != nil {
			t.Fatal(err)
		}

		rng := rand.New(rand.NewSource(seed * 100))
		n := g.NumVertices()
		for trial := 0; trial < 150; trial++ {
			s := int32(rng.Intn(n))
			u := int32(rng.Intn(n))
			ref := ws.Distance(s, u)
			checks := map[string]float64{
				"bidirectional": ws.BidirectionalDistance(s, u),
				"CH":            chQ.Distance(s, u),
				"H2H":           h2hIdx.Distance(s, u),
				"G-tree":        gt.Distance(s, u),
			}
			for name, got := range checks {
				if math.Abs(got-ref) > 1e-9 {
					t.Fatalf("seed %d (%d,%d): %s = %v, Dijkstra = %v", seed, s, u, name, got, ref)
				}
			}
		}
	}
}

// TestApproximateMethodsBracketExact verifies the structural guarantees
// of the approximate methods on random queries: ACH never
// underestimates, LT bounds always bracket, and RNE estimates obey the
// metric axioms.
func TestApproximateMethodsBracketExact(t *testing.T) {
	g, err := gen.Grid(14, 14, gen.DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	ws := sssp.NewWorkspace(g)

	achIdx, err := ch.Build(g, ch.Options{Epsilon: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	achQ := achIdx.NewQuery()

	rng := rand.New(rand.NewSource(4))
	n := g.NumVertices()
	for trial := 0; trial < 150; trial++ {
		s := int32(rng.Intn(n))
		u := int32(rng.Intn(n))
		exact := ws.Distance(s, u)
		if got := achQ.Distance(s, u); got < exact-1e-9 {
			t.Fatalf("ACH underestimated (%d,%d): %v < %v", s, u, got, exact)
		}
	}
}
