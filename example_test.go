package rne_test

import (
	"fmt"
	"log"

	rne "repro"
)

// ExampleBuild trains a model over a synthetic network and estimates a
// distance. (Training takes seconds; the example is compile-checked.)
func ExampleBuild() {
	g, err := rne.Preset("bj-mini")
	if err != nil {
		log.Fatal(err)
	}
	model, stats, err := rne.Build(g, rne.DefaultOptions(42))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("validation mean relative error: %.2f%%\n", stats.Validation.MeanRel*100)
	fmt.Printf("d(0, 100) ≈ %.1f\n", model.Estimate(0, 100))
}

// ExampleNewSpatialIndex answers a k-nearest-taxis query through the
// Section VI tree index.
func ExampleNewSpatialIndex() {
	g, _ := rne.Preset("bj-mini")
	model, _, err := rne.Build(g, rne.DefaultOptions(1))
	if err != nil {
		log.Fatal(err)
	}
	taxis := []int32{10, 200, 3000, 4500, 6000}
	idx, err := rne.NewSpatialIndex(model, taxis)
	if err != nil {
		log.Fatal(err)
	}
	rider := int32(1234)
	fmt.Println("closest taxis:", idx.KNN(rider, 2))
	fmt.Println("within 2km:", idx.Range(rider, 2000))
}

// ExampleModel_EstimateBatch estimates many pairs in parallel — the
// batched dispatch workload of the paper's introduction.
func ExampleModel_EstimateBatch() {
	g, _ := rne.Preset("bj-mini")
	model, _, err := rne.Build(g, rne.DefaultOptions(7))
	if err != nil {
		log.Fatal(err)
	}
	ss := []int32{0, 1, 2, 3}
	ts := []int32{100, 101, 102, 103}
	out := make([]float64, len(ss))
	if err := model.EstimateBatch(ss, ts, out, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Println(out)
}

// ExampleNewBoundedEstimator returns estimates with certified error
// intervals by clamping RNE into landmark bounds.
func ExampleNewBoundedEstimator() {
	g, _ := rne.Preset("bj-mini")
	model, _, err := rne.Build(g, rne.DefaultOptions(3))
	if err != nil {
		log.Fatal(err)
	}
	be, err := rne.NewBoundedEstimator(g, model, 64, 1)
	if err != nil {
		log.Fatal(err)
	}
	est, lo, hi := be.EstimateWithBounds(5, 4242)
	fmt.Printf("d ≈ %.0f, certainly within [%.0f, %.0f]\n", est, lo, hi)
}
