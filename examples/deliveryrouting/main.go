// Delivery routing: the estimate-then-route pattern. A courier at a
// depot must serve the 8 closest of 300 open orders and needs turn-by-
// turn routes for them. Computing exact routes to all 300 orders is
// wasteful; instead
//
//  1. RNE screens all orders in microseconds (300 estimates ≈ 30 µs),
//
//  2. exact ALT A* routes only the 8 winners,
//
//  3. landmark bounds certify that no screened-out order could have
//     beaten the winners by more than the bound gap.
//
//     go run ./examples/deliveryrouting
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"time"

	rne "repro"
	"repro/internal/alt"
	"repro/internal/sssp"
)

const (
	orders = 300
	serve  = 8
)

func main() {
	g, err := rne.Preset("bj-mini")
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	depot := int32(rng.Intn(g.NumVertices()))
	orderAt := make([]int32, orders)
	for i := range orderAt {
		orderAt[i] = int32(rng.Intn(g.NumVertices()))
	}

	opt := rne.DefaultOptions(8)
	opt.Epochs = 6
	opt.VertexSampleRatio = 80
	opt.FineTuneRounds = 6
	fmt.Println("training embedding...")
	model, _, err := rne.Build(g, opt)
	if err != nil {
		log.Fatal(err)
	}
	lt, err := alt.Build(g, 64, 3)
	if err != nil {
		log.Fatal(err)
	}

	// Step 1: screen all orders with RNE.
	start := time.Now()
	type scored struct {
		order int
		est   float64
	}
	ranked := make([]scored, orders)
	for i, o := range orderAt {
		ranked[i] = scored{order: i, est: model.Estimate(depot, o)}
	}
	sort.Slice(ranked, func(a, b int) bool { return ranked[a].est < ranked[b].est })
	screenTime := time.Since(start)

	// Step 2: exact routes for the winners via landmark A*.
	ws := sssp.NewWorkspace(g)
	start = time.Now()
	fmt.Printf("\ndepot at vertex %d; %d closest of %d orders:\n", depot, serve, orders)
	var settledTotal int
	for rank := 0; rank < serve; rank++ {
		o := orderAt[ranked[rank].order]
		exact, settled := lt.SearchDistance(ws, depot, o)
		settledTotal += settled
		path := ws.Path(depot, o)
		fmt.Printf("  order %3d at %6d: est %8.1f  exact %8.1f  route %3d hops\n",
			ranked[rank].order, o, ranked[rank].est, exact, len(path)-1)
	}
	routeTime := time.Since(start)

	// Step 3: certify the screening with landmark bounds — the best
	// rejected order's lower bound vs the worst winner's exact distance.
	worstWinner := orderAt[ranked[serve-1].order]
	worstExact, _ := lt.SearchDistance(ws, depot, worstWinner)
	bestRejectedLB := -1.0
	for rank := serve; rank < orders; rank++ {
		lo, _ := lt.Bounds(depot, orderAt[ranked[rank].order])
		if bestRejectedLB < 0 || lo < bestRejectedLB {
			bestRejectedLB = lo
		}
	}
	fmt.Printf("\nscreening: %v for %d estimates; routing: %v (%d vertices settled)\n",
		screenTime.Round(time.Microsecond), orders, routeTime.Round(time.Microsecond), settledTotal)
	if bestRejectedLB >= worstExact {
		fmt.Println("certificate: no rejected order can beat the selected set (bounds prove it)")
	} else {
		fmt.Printf("certificate gap: a rejected order could be as close as %.1f (worst winner %.1f)\n",
			bestRejectedLB, worstExact)
	}
}
