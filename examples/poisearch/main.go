// POI search: the paper's Yelp scenario. A set of points of interest
// (restaurants) lives on the road network; users ask "everything within
// 2 km of me" (range query) and "the 10 nearest" (kNN). The example
// runs both against the RNE spatial index and scores them against the
// exact network-distance answers.
//
//	go run ./examples/poisearch
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	rne "repro"
	"repro/internal/metrics"
	"repro/internal/sssp"
)

func main() {
	g, err := rne.Preset("bj-mini")
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))

	// Sprinkle POIs over ~8% of the joints.
	var pois []int32
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		if rng.Intn(12) == 0 {
			pois = append(pois, v)
		}
	}
	fmt.Printf("network: %d vertices; POIs: %d\n", g.NumVertices(), len(pois))

	opt := rne.DefaultOptions(11)
	opt.Epochs = 6
	opt.VertexSampleRatio = 80
	opt.FineTuneRounds = 6
	fmt.Println("training embedding...")
	model, stats, err := rne.Build(g, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("validation: %s\n\n", stats.Validation)

	idx, err := rne.NewSpatialIndex(model, pois)
	if err != nil {
		log.Fatal(err)
	}
	ws := sssp.NewWorkspace(g)

	// Range queries at several radii (in network-distance units).
	user := int32(rng.Intn(g.NumVertices()))
	fmt.Printf("user standing at vertex %d\n", user)
	exactDist := ws.FromSource(user, nil)
	for _, radius := range []float64{1000, 2500, 5000} {
		got := idx.Range(user, radius)
		var want []int32
		for _, p := range pois {
			if exactDist[p] <= radius {
				want = append(want, p)
			}
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		precision, recall, f1 := metrics.F1(got, want)
		fmt.Printf("range %6.0f: %3d found / %3d exact  P %.3f R %.3f F1 %.3f\n",
			radius, len(got), len(want), precision, recall, f1)
	}

	// kNN: the 10 closest restaurants.
	fmt.Println("\n10 nearest POIs (RNE estimate vs exact distance):")
	for _, p := range idx.KNN(user, 10) {
		fmt.Printf("  poi %6d  est %8.1f  exact %8.1f\n",
			p, model.Estimate(user, p), exactDist[p])
	}
}
