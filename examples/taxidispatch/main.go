// Taxi dispatch: the paper's motivating Uber scenario. A fleet of taxis
// sits at random road joints; riders request pickups and the dispatcher
// must find the k closest taxis by *network* distance, thousands of
// times per second.
//
// The example contrasts three dispatchers:
//
//   - exact Dijkstra per request (the latency problem the paper opens
//     with),
//
//   - straight-line Euclidean matching (fast but picks wrong taxis
//     across rivers/highways),
//
//   - RNE embedding + the Section VI tree index (fast and almost always
//     the right taxis),
//
//   - RNE overfetch + exact rerank: fetch 3k candidates from the index,
//     settle only those with a truncated Dijkstra, return the exact
//     top k — the production pattern (fast and always right).
//
//     go run ./examples/taxidispatch
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"time"

	rne "repro"
	"repro/internal/metrics"
	"repro/internal/sssp"
)

const (
	fleetSize = 600
	riders    = 200
	k         = 5
)

func main() {
	g, err := rne.Preset("bj-mini")
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))

	// Park the fleet.
	taxis := make([]int32, fleetSize)
	for i := range taxis {
		taxis[i] = int32(rng.Intn(g.NumVertices()))
	}

	// Train the embedding once, offline, at full defaults: dispatch
	// ranks near-equidistant taxis, so estimate quality matters.
	opt := rne.DefaultOptions(1)
	fmt.Println("training embedding (offline, once per map update)...")
	model, _, err := rne.Build(g, opt)
	if err != nil {
		log.Fatal(err)
	}
	idx, err := rne.NewSpatialIndex(model, taxis)
	if err != nil {
		log.Fatal(err)
	}

	riderAt := make([]int32, riders)
	for i := range riderAt {
		riderAt[i] = int32(rng.Intn(g.NumVertices()))
	}

	// Exact dispatcher (ground truth + the latency baseline).
	ws := sssp.NewWorkspace(g)
	exactKNN := func(rider int32) []int32 {
		dist := ws.FromSource(rider, nil)
		order := append([]int32(nil), taxis...)
		sort.Slice(order, func(a, b int) bool { return dist[order[a]] < dist[order[b]] })
		return order[:k]
	}
	start := time.Now()
	exact := make([][]int32, riders)
	for i, r := range riderAt {
		exact[i] = exactKNN(r)
	}
	exactTime := time.Since(start)

	// Euclidean dispatcher.
	euclidKNN := func(rider int32) []int32 {
		order := append([]int32(nil), taxis...)
		sort.Slice(order, func(a, b int) bool {
			return g.Euclidean(rider, order[a]) < g.Euclidean(rider, order[b])
		})
		return order[:k]
	}

	// RNE dispatcher.
	start = time.Now()
	rneResults := make([][]int32, riders)
	for i, r := range riderAt {
		rneResults[i] = idx.KNN(r, k)
	}
	rneTime := time.Since(start)

	// RNE overfetch + exact rerank: candidates from the index, exact
	// distances via a truncated Dijkstra that stops once all candidates
	// are settled (they cluster near the rider).
	reranked := make([][]int32, riders)
	var dists []float64
	start = time.Now()
	for i, r := range riderAt {
		cands := idx.KNN(r, 3*k)
		dists = ws.DistanceToAll(r, cands, dists)
		order := make([]int, len(cands))
		for j := range order {
			order[j] = j
		}
		sort.Slice(order, func(a, b int) bool { return dists[order[a]] < dists[order[b]] })
		top := make([]int32, k)
		for j := 0; j < k; j++ {
			top[j] = cands[order[j]]
		}
		reranked[i] = top
	}
	rerankTime := time.Since(start)

	var rneF1, rerankF1, euclidF1 float64
	for i, r := range riderAt {
		_, _, f1 := metrics.F1(rneResults[i], exact[i])
		rneF1 += f1
		_, _, fr := metrics.F1(reranked[i], exact[i])
		rerankF1 += fr
		_, _, f2 := metrics.F1(euclidKNN(r), exact[i])
		euclidF1 += f2
	}
	rneF1 /= riders
	rerankF1 /= riders
	euclidF1 /= riders

	fmt.Printf("\nfleet %d taxis, %d riders, k=%d\n", fleetSize, riders, k)
	fmt.Printf("exact Dijkstra dispatch: %8v total (%v per rider)  F1 1.000\n",
		exactTime.Round(time.Millisecond), (exactTime / riders).Round(time.Microsecond))
	fmt.Printf("RNE index dispatch:      %8v total (%v per rider)  F1 %.3f\n",
		rneTime.Round(time.Millisecond), (rneTime / riders).Round(time.Microsecond), rneF1)
	fmt.Printf("RNE + exact rerank:      %8v total (%v per rider)  F1 %.3f\n",
		rerankTime.Round(time.Millisecond), (rerankTime / riders).Round(time.Microsecond), rerankF1)
	fmt.Printf("Euclidean dispatch F1: %.3f (straight lines rank detoured streets wrong)\n", euclidF1)
	speedup := float64(exactTime) / float64(rerankTime)
	fmt.Printf("\nRNE with exact rerank dispatches %.0fx faster than exact search.\n", speedup)
}
