// Quickstart: build an RNE over a synthetic city, compare a few
// estimates against exact Dijkstra distances, and time the query path.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	rne "repro"
	"repro/internal/sssp"
)

func main() {
	// A small synthetic road network (the "bj-mini" preset scaled down
	// keeps this example under a minute).
	g, err := rne.Preset("bj-mini")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("road network: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	opt := rne.DefaultOptions(42)
	opt.Dim = 64
	opt.Epochs = 6 // trimmed for the example; defaults reach lower error
	opt.VertexSampleRatio = 80
	opt.FineTuneRounds = 6

	start := time.Now()
	model, stats, err := rne.Build(g, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained in %v over %d samples\n", time.Since(start).Round(time.Millisecond), stats.SamplesUsed)
	fmt.Printf("held-out validation: %s\n", stats.Validation)

	// Spot-check a few pairs against exact Dijkstra.
	ws := sssp.NewWorkspace(g)
	rng := rand.New(rand.NewSource(7))
	fmt.Println("\n   s      t      exact     RNE      rel.err")
	for i := 0; i < 5; i++ {
		s := int32(rng.Intn(g.NumVertices()))
		t := int32(rng.Intn(g.NumVertices()))
		exact := ws.Distance(s, t)
		approx := model.Estimate(s, t)
		fmt.Printf("%6d %6d %9.1f %9.1f   %.2f%%\n", s, t, exact, approx,
			100*abs(approx-exact)/exact)
	}

	// Time the query path: two row reads plus one L1 kernel.
	const q = 1_000_000
	pairsS := make([]int32, q)
	pairsT := make([]int32, q)
	for i := range pairsS {
		pairsS[i] = int32(rng.Intn(g.NumVertices()))
		pairsT[i] = int32(rng.Intn(g.NumVertices()))
	}
	start = time.Now()
	var sink float64
	for i := 0; i < q; i++ {
		sink += model.Estimate(pairsS[i], pairsT[i])
	}
	elapsed := time.Since(start)
	_ = sink
	fmt.Printf("\n%d queries in %v (%.0f ns/query)\n", q, elapsed.Round(time.Millisecond),
		float64(elapsed.Nanoseconds())/q)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
