// Embviz reproduces Figure 7's visual: it trains a 2-dimensional RNE
// both flat (RNE-Naive) and hierarchically (RNE-Hier) over a city
// network and writes three point files —
//
//	embviz_roads.xy   original vertex coordinates
//	embviz_naive.xy   flat d=2 embedding (collapses into clumps)
//	embviz_hier.xy    hierarchical d=2 embedding (preserves the layout)
//
// Each line is "x y", plottable with gnuplot: plot "embviz_hier.xy".
//
//	go run ./examples/embviz
package main

import (
	"bufio"
	"fmt"
	"log"
	"os"

	rne "repro"
)

func main() {
	g, err := rne.Preset("bj-mini")
	if err != nil {
		log.Fatal(err)
	}

	writeXY := func(path string, x func(int32) float64, y func(int32) float64) {
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		w := bufio.NewWriter(f)
		for v := int32(0); v < int32(g.NumVertices()); v++ {
			fmt.Fprintf(w, "%g %g\n", x(v), y(v))
		}
		if err := w.Flush(); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", path)
	}

	writeXY("embviz_roads.xy", g.X, g.Y)

	for _, hier := range []bool{false, true} {
		opt := rne.DefaultOptions(3)
		opt.Dim = 2
		opt.Hierarchical = hier
		opt.ActiveFineTune = false
		opt.Epochs = 6
		opt.VertexSampleRatio = 60
		if !hier {
			opt.VertexStrategy = rne.VertexRandom
		}
		model, stats, err := rne.Build(g, opt)
		if err != nil {
			log.Fatal(err)
		}
		name := "embviz_naive.xy"
		if hier {
			name = "embviz_hier.xy"
		}
		fmt.Printf("%s: validation %s\n", name, stats.Validation)
		writeXY(name,
			func(v int32) float64 { return model.Vector(v)[0] },
			func(v int32) float64 { return model.Vector(v)[1] })
	}
}
