package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Metric and label name grammar of the Prometheus exposition format.
var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// SanitizeName maps an arbitrary string onto a valid metric-name
// fragment: every run of invalid characters becomes one underscore.
func SanitizeName(s string) string {
	var b strings.Builder
	lastUnderscore := false
	for i, r := range s {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
			lastUnderscore = r == '_'
		} else if !lastUnderscore {
			b.WriteByte('_')
			lastUnderscore = true
		}
	}
	out := b.String()
	if out == "" {
		return "_"
	}
	return out
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter; counters are monotonic, so a negative
// delta is a programming error and panics.
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("telemetry: negative counter increment")
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float metric that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// series is one labeled instance within a family; exactly one of the
// value fields is set, matching the family kind.
type series struct {
	labels    string // rendered, key-sorted label pairs without braces
	counter   *Counter
	gauge     *Gauge
	gaugeFn   func() float64
	counterFn func() float64
	hist      *Histogram
	histFn    func() HistSnapshot
}

// family groups all series sharing a metric name.
type family struct {
	name, help string
	kind       metricKind
	bounds     []float64 // histogram upper bounds (families of kindHistogram)
	series     map[string]*series
	order      []string
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. Registration methods are get-or-create: calling
// them twice with the same name and labels returns the same metric, so
// hot paths should fetch the pointer once at setup. All methods are
// safe for concurrent use; metric updates are lock-free atomics.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// getFamily returns the named family, creating it with the given shape
// on first use and panicking on a kind conflict (a programming error:
// two call sites disagree about what the metric is).
func (r *Registry) getFamily(name, help string, kind metricKind, bounds []float64) *family {
	if !metricNameRe.MatchString(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, bounds: bounds, series: make(map[string]*series)}
		r.families[name] = f
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q registered as %s and %s", name, f.kind, kind))
	}
	return f
}

// getSeries returns the labeled series within f, creating it via mk on
// first use.
func (r *Registry) getSeries(f *family, labels []string, mk func() *series) *series {
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = mk()
		s.labels = key
		f.series[key] = s
		f.order = append(f.order, key)
	}
	return s
}

// Counter registers (or fetches) a counter. labels are alternating
// key/value pairs.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	f := r.getFamily(name, help, kindCounter, nil)
	return r.getSeries(f, labels, func() *series { return &series{counter: new(Counter)} }).counter
}

// Gauge registers (or fetches) a gauge.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	f := r.getFamily(name, help, kindGauge, nil)
	return r.getSeries(f, labels, func() *series { return &series{gauge: new(Gauge)} }).gauge
}

// GaugeFunc registers a gauge whose value is computed by fn at
// exposition time (e.g. uptime). Re-registering the same series keeps
// the original function.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	f := r.getFamily(name, help, kindGauge, nil)
	r.getSeries(f, labels, func() *series { return &series{gaugeFn: fn} })
}

// CounterFunc registers a counter whose value is computed by fn at
// exposition time — for monotonic values the runtime already tracks
// (e.g. GC cycles), where mirroring them into an atomic would only
// add staleness. fn must be monotonically non-decreasing.
// Re-registering the same series keeps the original function.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...string) {
	f := r.getFamily(name, help, kindCounter, nil)
	r.getSeries(f, labels, func() *series { return &series{counterFn: fn} })
}

// HistogramFunc registers a histogram whose snapshot is produced by fn
// at exposition time — for distributions maintained outside the
// registry (e.g. the runtime's GC pause histogram). fn must return
// snapshots with stable bounds and non-decreasing counts so the
// rendered series behaves like any cumulative Prometheus histogram.
// Re-registering the same series keeps the original function.
func (r *Registry) HistogramFunc(name, help string, fn func() HistSnapshot, labels ...string) {
	f := r.getFamily(name, help, kindHistogram, nil)
	r.getSeries(f, labels, func() *series { return &series{histFn: fn} })
}

// Histogram registers (or fetches) a histogram with the given bucket
// upper bounds (strictly increasing, finite; +Inf is implicit). The
// bounds of the first registration win for the whole family.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	f := r.getFamily(name, help, kindHistogram, bounds)
	return r.getSeries(f, labels, func() *series { return &series{hist: newHistogram(f.bounds)} }).hist
}

// renderLabels validates and renders alternating key/value pairs into
// the canonical sorted `k="v",k2="v2"` form.
func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("telemetry: odd label list %q", labels))
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		if !labelNameRe.MatchString(labels[i]) {
			panic(fmt.Sprintf("telemetry: invalid label name %q", labels[i]))
		}
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, p.k, escapeLabelValue(p.v))
	}
	return b.String()
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabelValue(v string) string { return labelEscaper.Replace(v) }

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

// formatValue renders a sample value per the exposition format.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// seriesLine renders one `name{labels} value` sample, with an optional
// OpenMetrics-style exemplar suffix (`# {trace_id="..."} value ts`)
// appended on histogram bucket lines.
func seriesLine(w *bufio.Writer, name, labels, extraLabel, value string, ex *Exemplar) {
	w.WriteString(name)
	if labels != "" || extraLabel != "" {
		w.WriteByte('{')
		w.WriteString(labels)
		if labels != "" && extraLabel != "" {
			w.WriteByte(',')
		}
		w.WriteString(extraLabel)
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(value)
	if ex != nil {
		w.WriteString(` # {trace_id="`)
		w.WriteString(escapeLabelValue(ex.TraceID))
		w.WriteString(`"} `)
		w.WriteString(formatValue(ex.Value))
		w.WriteByte(' ')
		w.WriteString(formatValue(float64(ex.TimeUnixNano) / 1e9))
	}
	w.WriteByte('\n')
}

// WriteTo renders every family in Prometheus text exposition format:
// families sorted by name, series in registration order, histograms
// with cumulative le buckets plus _sum and _count.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	// Snapshot the family/series structure under the lock; values are
	// read from atomics afterwards.
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	type snap struct {
		f      *family
		series []*series
	}
	snaps := make([]snap, len(fams))
	for i, f := range fams {
		ss := make([]*series, 0, len(f.order))
		for _, key := range f.order {
			ss = append(ss, f.series[key])
		}
		snaps[i] = snap{f: f, series: ss}
	}
	r.mu.Unlock()
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].f.name < snaps[j].f.name })

	cw := &countingWriter{w: w}
	bw := bufio.NewWriter(cw)
	for _, sn := range snaps {
		f := sn.f
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, helpEscaper.Replace(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range sn.series {
			switch f.kind {
			case kindCounter:
				if s.counterFn != nil {
					seriesLine(bw, f.name, s.labels, "", formatValue(s.counterFn()), nil)
				} else {
					seriesLine(bw, f.name, s.labels, "", strconv.FormatInt(s.counter.Value(), 10), nil)
				}
			case kindGauge:
				v := 0.0
				if s.gaugeFn != nil {
					v = s.gaugeFn()
				} else {
					v = s.gauge.Value()
				}
				seriesLine(bw, f.name, s.labels, "", formatValue(v), nil)
			case kindHistogram:
				var hs HistSnapshot
				if s.histFn != nil {
					hs = s.histFn()
				} else {
					hs = s.hist.Snapshot()
				}
				exemplar := func(i int) *Exemplar {
					if s.hist == nil {
						return nil
					}
					return s.hist.bucketExemplar(i)
				}
				var cum int64
				for i, b := range hs.Bounds {
					cum += hs.Counts[i]
					seriesLine(bw, f.name+"_bucket", s.labels,
						`le="`+formatValue(b)+`"`, strconv.FormatInt(cum, 10),
						exemplar(i))
				}
				cum += hs.Counts[len(hs.Bounds)]
				seriesLine(bw, f.name+"_bucket", s.labels, `le="+Inf"`, strconv.FormatInt(cum, 10),
					exemplar(len(hs.Bounds)))
				seriesLine(bw, f.name+"_sum", s.labels, "", formatValue(hs.Sum), nil)
				seriesLine(bw, f.name+"_count", s.labels, "", strconv.FormatInt(cum, 10), nil)
			}
		}
	}
	err := bw.Flush()
	return cw.n, err
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// ExpositionContentType is the Content-Type of the Prometheus text
// exposition format.
const ExpositionContentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler serves the registry in exposition format (the /metrics
// endpoint).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", ExpositionContentType)
		_, _ = r.WriteTo(w)
	})
}
