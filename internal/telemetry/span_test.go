package telemetry

import (
	"bytes"
	"log/slog"
	"strings"
	"testing"
	"time"
)

// A nil tracer (and the nil span it hands out) is safe everywhere:
// instrumented code carries no nil checks.
func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	sp := tr.StartSpan("anything")
	if d := sp.End(); d != 0 {
		t.Fatalf("nil span End = %v", d)
	}
	tr.Unit("hier", "level 1", 0.1, 0.01, 0, time.Second)
	tr.Recovery("level 1", "reason")
	tr.CheckpointWrite(time.Millisecond, true)
	if rep := tr.Report(); len(rep.Phases) != 0 || len(rep.Units) != 0 {
		t.Fatalf("nil tracer produced a report: %+v", rep)
	}
}

func TestTracerRecordsReportAndMetrics(t *testing.T) {
	var logBuf bytes.Buffer
	reg := NewRegistry()
	tr := NewTracer(slog.New(slog.NewTextHandler(&logBuf, nil)), reg)

	tr.StartSpan("setup").End()
	tr.Unit("vertex", "vertex epoch 0", 0.05, 0.003, 0, 10*time.Millisecond)
	tr.Unit("vertex", "vertex epoch 1", 0.04, 0.003, 1, 12*time.Millisecond)
	tr.Recovery("vertex epoch 1", "spike")
	tr.CheckpointWrite(2*time.Millisecond, true)
	tr.CheckpointWrite(time.Millisecond, false)

	rep := tr.Report()
	if len(rep.Phases) != 1 || rep.Phases[0].Name != "setup" {
		t.Fatalf("phases = %+v", rep.Phases)
	}
	if len(rep.Units) != 2 || rep.Units[1].Loss != 0.04 || rep.Units[1].Phase != "vertex" {
		t.Fatalf("units = %+v", rep.Units)
	}
	if rep.Recoveries != 1 || rep.CheckpointWrites != 2 || rep.CheckpointFailures != 1 {
		t.Fatalf("counters = %+v", rep)
	}

	var sb strings.Builder
	if _, err := reg.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`rne_build_phase_seconds{phase="setup"}`,
		`rne_build_unit_loss{phase="vertex",unit="vertex epoch 1"} 0.04`,
		"rne_build_recoveries 1",
		`rne_build_units_total{phase="vertex"} 2`,
		`rne_build_checkpoint_writes_total{outcome="ok"} 1`,
		`rne_build_checkpoint_writes_total{outcome="error"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q:\n%s", want, out)
		}
	}
	if err := CheckExposition(strings.NewReader(out)); err != nil {
		t.Fatal(err)
	}
	logs := logBuf.String()
	for _, want := range []string{"phase done", "training unit done", "sentinel recovery"} {
		if !strings.Contains(logs, want) {
			t.Fatalf("log missing %q:\n%s", want, logs)
		}
	}

	// Report returns a copy: appending to it must not alter the tracer.
	rep.Phases = append(rep.Phases, PhaseRecord{Name: "bogus"})
	if got := tr.Report(); len(got.Phases) != 1 {
		t.Fatal("Report leaked internal state")
	}
}
