package telemetry

import (
	"math"
	"runtime/metrics"
	"sync"
	"time"
)

// Runtime metric names exported by RegisterRuntimeMetrics. A load
// harness joins these against client-observed latency to attribute a
// p99 knee to GC pressure or goroutine pileup rather than guessing.
const (
	MetricGoroutines = "rne_go_goroutines"
	MetricHeapBytes  = "rne_go_heap_bytes"
	MetricGCCycles   = "rne_go_gc_cycles_total"
	MetricGCPauses   = "rne_go_gc_pause_seconds"
)

// runtime/metrics keys backing the exported gauges.
const (
	keyGoroutines = "/sched/goroutines:goroutines"
	keyHeapBytes  = "/memory/classes/heap/objects:bytes"
	keyGCCycles   = "/gc/cycles/total:gc-cycles"
	keyGCPauses   = "/gc/pauses:seconds"
)

// GCPauseBuckets are the stable bounds the runtime's GC pause
// distribution is re-bucketed onto for exposition: 1µs to 100ms,
// five buckets per decade. The runtime's own bucket layout is an
// implementation detail that varies across Go releases; a fixed
// layout keeps scrapes comparable across binaries and versions.
var GCPauseBuckets = LogBuckets(1e-6, 0.1, 5)

// runtimeSampler reads the runtime/metrics samples behind the exported
// series, at most once per refresh interval so one /metrics scrape
// (which evaluates each metric's func in turn) sees a single coherent
// read instead of four.
type runtimeSampler struct {
	mu      sync.Mutex
	last    time.Time
	samples []metrics.Sample
	idx     map[string]int
}

const runtimeRefresh = 100 * time.Millisecond

func newRuntimeSampler() *runtimeSampler {
	keys := []string{keyGoroutines, keyHeapBytes, keyGCCycles, keyGCPauses}
	s := &runtimeSampler{
		samples: make([]metrics.Sample, len(keys)),
		idx:     make(map[string]int, len(keys)),
	}
	for i, k := range keys {
		s.samples[i].Name = k
		s.idx[k] = i
	}
	return s
}

func (s *runtimeSampler) refreshLocked() {
	if time.Since(s.last) < runtimeRefresh {
		return
	}
	metrics.Read(s.samples)
	s.last = time.Now()
}

// value returns the named sample as a float64 (uint64 kinds widened;
// unsupported kinds read 0, so a future runtime dropping a metric
// degrades to a zero series instead of panicking the scrape).
func (s *runtimeSampler) value(key string) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.refreshLocked()
	sm := s.samples[s.idx[key]]
	switch sm.Value.Kind() {
	case metrics.KindUint64:
		return float64(sm.Value.Uint64())
	case metrics.KindFloat64:
		return sm.Value.Float64()
	default:
		return 0
	}
}

// pauses re-buckets the runtime's cumulative GC pause histogram onto
// GCPauseBuckets. Each runtime bucket's count lands in the fixed
// bucket containing its midpoint (geometric, matching the log bucket
// layout); Sum is approximated from the same midpoints, since the
// runtime histogram does not carry an exact sum.
func (s *runtimeSampler) pauses() HistSnapshot {
	out := HistSnapshot{
		Bounds: GCPauseBuckets,
		Counts: make([]int64, len(GCPauseBuckets)+1),
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.refreshLocked()
	sm := s.samples[s.idx[keyGCPauses]]
	if sm.Value.Kind() != metrics.KindFloat64Histogram {
		return out
	}
	h := sm.Value.Float64Histogram()
	if h == nil {
		return out
	}
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		mid := bucketMidpoint(lo, hi)
		// Find the first fixed bound >= mid; beyond the last bound the
		// count lands in the overflow bucket.
		j := 0
		for j < len(out.Bounds) && out.Bounds[j] < mid {
			j++
		}
		out.Counts[j] += int64(c)
		out.Count += int64(c)
		out.Sum += float64(c) * mid
	}
	return out
}

// bucketMidpoint picks a representative point of one runtime bucket
// [lo, hi): the geometric mean for finite positive edges, else
// whichever edge is finite.
func bucketMidpoint(lo, hi float64) float64 {
	loOK := !math.IsInf(lo, 0) && lo > 0
	hiOK := !math.IsInf(hi, 0) && hi > 0
	switch {
	case loOK && hiOK:
		return math.Sqrt(lo * hi)
	case hiOK:
		return hi
	case loOK:
		return lo
	default:
		return 0
	}
}

// RegisterRuntimeMetrics exports Go runtime telemetry on reg via
// runtime/metrics: goroutine count and live heap bytes as gauges, the
// GC cycle counter, and the cumulative GC pause distribution as a
// histogram on stable bounds. Idempotent per registry (re-registration
// keeps the first sampler); called by resilience.NewStatsWith so every
// serving binary's /metrics carries the runtime block without
// per-binary wiring.
func RegisterRuntimeMetrics(reg *Registry) {
	s := newRuntimeSampler()
	reg.GaugeFunc(MetricGoroutines,
		"Live goroutines in the serving process.",
		func() float64 { return s.value(keyGoroutines) })
	reg.GaugeFunc(MetricHeapBytes,
		"Bytes of live heap objects (runtime/metrics /memory/classes/heap/objects).",
		func() float64 { return s.value(keyHeapBytes) })
	reg.CounterFunc(MetricGCCycles,
		"Completed GC cycles since process start.",
		func() float64 { return s.value(keyGCCycles) })
	reg.HistogramFunc(MetricGCPauses,
		"Stop-the-world GC pause durations, re-bucketed onto stable bounds.",
		s.pauses)
}
