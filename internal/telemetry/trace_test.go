package telemetry

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// readSpanFile parses the JSONL a tracer wrote.
func readSpanFile(t *testing.T, path string) []SpanRecord {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var out []SpanRecord
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec SpanRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad span line %q: %v", sc.Text(), err)
		}
		out = append(out, rec)
	}
	return out
}

func newTestTracer(t *testing.T, cfg TraceConfig) (*RequestTracer, string) {
	t.Helper()
	if cfg.Path == "" {
		cfg.Path = filepath.Join(t.TempDir(), "spans.jsonl")
	}
	tr, err := NewRequestTracer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr, cfg.Path
}

func TestTraceParentRoundTrip(t *testing.T) {
	sc := SpanContext{TraceID: newTraceID(), SpanID: newSpanID(), Sampled: true}
	got, ok := ParseTraceParent(FormatTraceParent(sc))
	if !ok || got != sc {
		t.Fatalf("round trip: got %+v ok=%v, want %+v", got, ok, sc)
	}
	sc.Sampled = false
	got, ok = ParseTraceParent(FormatTraceParent(sc))
	if !ok || got != sc {
		t.Fatalf("unsampled round trip: got %+v ok=%v", got, ok)
	}
	bad := []string{
		"",
		"00",
		"01-" + sc.TraceIDString() + "-" + sc.SpanIDString() + "-01",      // unknown version
		"00-00000000000000000000000000000000-" + sc.SpanIDString() + "-01", // zero trace id
		"00-" + sc.TraceIDString() + "-0000000000000000-01",                // zero span id
		"00-" + strings.Repeat("z", 32) + "-" + sc.SpanIDString() + "-01",  // non-hex
		"00-" + sc.TraceIDString() + "-" + sc.SpanIDString() + "-01-extra", // trailing field on v00
	}
	for _, s := range bad {
		if _, ok := ParseTraceParent(s); ok {
			t.Fatalf("accepted malformed traceparent %q", s)
		}
	}
}

func TestTraceParentHeaderInjectExtract(t *testing.T) {
	h := http.Header{}
	InjectTraceParent(h, SpanContext{}) // invalid: must not inject
	if h.Get(TraceParentHeader) != "" {
		t.Fatal("invalid span context was injected")
	}
	sc := SpanContext{TraceID: newTraceID(), SpanID: newSpanID(), Sampled: true}
	InjectTraceParent(h, sc)
	got, ok := ExtractTraceParent(h)
	if !ok || got != sc {
		t.Fatalf("extract: got %+v ok=%v, want %+v", got, ok, sc)
	}
}

func TestNilTracerAndNilSpanAreNoOps(t *testing.T) {
	var tr *RequestTracer
	ctx, span := tr.StartSpan(context.Background(), "x")
	if span != nil {
		t.Fatal("nil tracer minted a span")
	}
	// Every span method must be callable on nil.
	span.SetAttr("k", "v")
	span.SetAttrInt("n", 1)
	span.Event("e", "")
	span.SetError(errors.New("boom"))
	span.SetStatus(200)
	span.End()
	if span.Recording() || span.TraceID() != "" || span.ExemplarID() != "" {
		t.Fatal("nil span is not inert")
	}
	if _, child := StartChild(ctx, "child"); child != nil {
		t.Fatal("StartChild minted a span without a parent")
	}
	if tr.Roots() != 0 || tr.Dropped() != 0 || tr.Written() != 0 || tr.Close() != nil {
		t.Fatal("nil tracer accessors not inert")
	}
}

func TestTracerWritesLinkedSpans(t *testing.T) {
	tr, path := newTestTracer(t, TraceConfig{Service: "test"})
	ctx, root := tr.StartSpan(context.Background(), "GET /distance")
	root.SetAttr("request_id", "r1")
	_, child := StartChild(ctx, "kernel")
	child.SetAttrInt("pairs", 3)
	child.Event("abandoned", "deadline")
	child.SetError(errors.New("boom"))
	child.SetStatus(504)
	child.End()
	root.End()
	root.End() // idempotent
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	spans := readSpanFile(t, path)
	if len(spans) != 2 {
		t.Fatalf("wrote %d spans, want 2", len(spans))
	}
	kernel, handler := spans[0], spans[1] // children end first
	if kernel.Name != "kernel" || handler.Name != "GET /distance" {
		t.Fatalf("span order/names wrong: %q, %q", kernel.Name, handler.Name)
	}
	if handler.ParentID != "" {
		t.Fatalf("root has parent %q", handler.ParentID)
	}
	if kernel.ParentID != handler.SpanID || kernel.TraceID != handler.TraceID {
		t.Fatalf("child not linked: parent=%q trace=%q vs root span=%q trace=%q",
			kernel.ParentID, kernel.TraceID, handler.SpanID, handler.TraceID)
	}
	if kernel.Service != "test" || handler.Attrs["request_id"] != "r1" {
		t.Fatalf("service/attrs lost: %+v", handler)
	}
	if kernel.Attrs["pairs"] != "3" || kernel.Error != "boom" || kernel.HTTPStatus != 504 {
		t.Fatalf("child record incomplete: %+v", kernel)
	}
	if len(kernel.Events) != 1 || kernel.Events[0].Name != "abandoned" {
		t.Fatalf("events lost: %+v", kernel.Events)
	}
	if tr.Written() != 2 || tr.Dropped() != 0 {
		t.Fatalf("written=%d dropped=%d", tr.Written(), tr.Dropped())
	}
}

func TestHeadSamplingIsInheritedAndCounted(t *testing.T) {
	tr, path := newTestTracer(t, TraceConfig{SampleEvery: 2})
	sampled := 0
	for i := 0; i < 10; i++ {
		ctx, root := tr.StartSpan(context.Background(), "root")
		_, child := StartChild(ctx, "child")
		if child.Recording() != root.Recording() {
			t.Fatal("child did not inherit the sampling decision")
		}
		if root.Recording() {
			sampled++
		}
		child.End()
		root.End()
	}
	if sampled != 5 {
		t.Fatalf("sampled %d of 10 roots with SampleEvery=2", sampled)
	}
	// An unsampled span still carries a valid identity for propagation.
	_, root := tr.StartSpan(context.Background(), "root")
	if root.Recording() && !root.Context().Valid() {
		t.Fatal("span context invalid")
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if got := len(readSpanFile(t, path)); got != 10 {
		t.Fatalf("persisted %d spans, want 10 (5 roots + 5 children)", got)
	}
	if tr.Roots() != 11 {
		t.Fatalf("roots=%d, want 11", tr.Roots())
	}
}

func TestForcedRootAlwaysSampled(t *testing.T) {
	tr, _ := newTestTracer(t, TraceConfig{SampleEvery: 1 << 30})
	defer tr.Close()
	if _, s := tr.StartSpan(context.Background(), "r"); s.Recording() {
		t.Fatal("plain root sampled despite huge SampleEvery")
	}
	_, forced := tr.StartSpanForced(context.Background(), "autoheal.heal")
	if !forced.Recording() {
		t.Fatal("forced root not sampled")
	}
	forced.End()
}

func TestRemoteParentContinuesTrace(t *testing.T) {
	tr, _ := newTestTracer(t, TraceConfig{SampleEvery: 1 << 30})
	defer tr.Close()
	remote := SpanContext{TraceID: newTraceID(), SpanID: newSpanID(), Sampled: true}
	ctx := ContextWithRemoteParent(context.Background(), remote)
	_, span := tr.StartSpan(ctx, "GET /distance")
	if !span.Recording() {
		t.Fatal("remote sampled flag not inherited")
	}
	if span.Context().TraceID != remote.TraceID {
		t.Fatal("remote trace ID not continued")
	}
	span.End()
}

func TestTracerFullQueueDropsNotBlocks(t *testing.T) {
	onDrops := 0
	tr, _ := newTestTracer(t, TraceConfig{QueueSize: 1, OnDrop: func() { onDrops++ }})
	// Saturate: the writer goroutine may drain some, so push until a
	// drop is observed — the call must never block.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10000 && tr.Dropped() == 0; i++ {
			_, s := tr.StartSpan(context.Background(), "s")
			s.End()
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("span End blocked on a full queue")
	}
	tr.Close()
	if tr.Dropped() == 0 || onDrops == 0 {
		t.Fatalf("no drops recorded (dropped=%d onDrops=%d)", tr.Dropped(), onDrops)
	}
	// Ending a span after Close is a counted drop, not a panic.
	before := tr.Dropped()
	_, s := tr.StartSpan(context.Background(), "late")
	s.End()
	if tr.Dropped() != before+1 {
		t.Fatal("post-Close End not counted as a drop")
	}
}

func TestMutationAfterEndIsIgnored(t *testing.T) {
	tr, path := newTestTracer(t, TraceConfig{})
	_, s := tr.StartSpan(context.Background(), "s")
	s.SetAttr("kept", "yes")
	s.End()
	// A deadline-abandoned handler goroutine may still hold the span.
	s.SetAttr("late", "no")
	s.Event("late", "")
	s.SetError(errors.New("late"))
	s.SetStatus(500)
	tr.Close()
	spans := readSpanFile(t, path)
	if len(spans) != 1 {
		t.Fatalf("%d spans", len(spans))
	}
	rec := spans[0]
	if rec.Attrs["kept"] != "yes" || rec.Attrs["late"] != "" || rec.Error != "" ||
		rec.HTTPStatus != 0 || len(rec.Events) != 0 {
		t.Fatalf("post-End mutation leaked into the record: %+v", rec)
	}
}

func TestTraceHTTPMiddleware(t *testing.T) {
	tr, path := newTestTracer(t, TraceConfig{Service: "server"})
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// The handler sees the span and can hang children off it.
		if SpanFromContext(r.Context()) == nil {
			t.Error("no span in handler context")
		}
		TraceEvent(r.Context(), "shed", "test detail")
		w.WriteHeader(http.StatusTeapot)
	})
	h := RequestID(TraceHTTP(tr, TraceAdmitted(inner)))
	srv := httptest.NewServer(h)
	defer srv.Close()

	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/distance", nil)
	remote := SpanContext{TraceID: newTraceID(), SpanID: newSpanID(), Sampled: true}
	InjectTraceParent(req.Header, remote)
	req.Header.Set(RequestIDHeader, "req-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	tr.Close()

	spans := readSpanFile(t, path)
	if len(spans) != 2 {
		t.Fatalf("wrote %d spans, want handler + admission", len(spans))
	}
	var handler, admission *SpanRecord
	for i := range spans {
		switch spans[i].Name {
		case "GET /distance":
			handler = &spans[i]
		case "admission":
			admission = &spans[i]
		}
	}
	if handler == nil || admission == nil {
		t.Fatalf("missing spans: %+v", spans)
	}
	if handler.TraceID != remote.TraceIDString() || handler.ParentID != remote.SpanIDString() {
		t.Fatalf("inbound traceparent not honored: %+v", handler)
	}
	if handler.Attrs["request_id"] != "req-42" || handler.HTTPStatus != http.StatusTeapot {
		t.Fatalf("handler span incomplete: %+v", handler)
	}
	if len(handler.Events) != 1 || handler.Events[0].Name != "shed" {
		t.Fatalf("TraceEvent lost: %+v", handler.Events)
	}
	if admission.ParentID != handler.SpanID {
		t.Fatalf("admission span not a child of the handler span")
	}
	if admission.DurationUS > handler.DurationUS {
		t.Fatalf("admission (%v) longer than handler (%v)", admission.DurationUS, handler.DurationUS)
	}
}

func TestTraceHTTPNilTracerPassthrough(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		MarkAdmitted(r.Context()) // must be safe with no span planted
		fmt.Fprint(w, "ok")
	})
	if h := TraceHTTP(nil, inner); fmt.Sprintf("%p", h) != fmt.Sprintf("%p", inner) {
		t.Fatal("nil tracer should return next unchanged")
	}
	srv := httptest.NewServer(TraceHTTP(nil, TraceAdmitted(inner)))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("untraced serving broken: %v %v", resp, err)
	}
	resp.Body.Close()
}

func TestSanitizeAttempt(t *testing.T) {
	for _, ok := range []string{"retry", "hedge", "shard", "shard-retry"} {
		if SanitizeAttempt(ok) != ok {
			t.Fatalf("rejected known attempt kind %q", ok)
		}
	}
	for _, bad := range []string{"", "primary", "RETRY", "retry\n", "x"} {
		if got := SanitizeAttempt(bad); got != "" {
			t.Fatalf("accepted %q as %q", bad, got)
		}
	}
}
