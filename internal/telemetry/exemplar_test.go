package telemetry

import (
	"strings"
	"testing"
)

func TestExemplarCaptureAndExposition(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("rne_request_duration_seconds", "Latency.", LatencyBuckets)
	h.EnableExemplars()
	h.EnableExemplars() // idempotent
	h.ObserveExemplar(0.002, "0af7651916cd43dd8448eb211c80319c")
	h.ObserveExemplar(0.004, "") // no trace: plain observation, no exemplar
	h.Observe(0.008)

	var sb strings.Builder
	if _, err := reg.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	want := `# {trace_id="0af7651916cd43dd8448eb211c80319c"}`
	if !strings.Contains(out, want) {
		t.Fatalf("exposition lacks the exemplar suffix:\n%s", out)
	}
	// Exemplars belong to _bucket lines only.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, " # {") && !strings.Contains(line, "_bucket") {
			t.Fatalf("exemplar on a non-bucket line: %q", line)
		}
	}
	if err := CheckExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("exposition with exemplars fails validation: %v", err)
	}
}

func TestExemplarLastWriteWinsPerBucket(t *testing.T) {
	h := NewHistogram(LatencyBuckets)
	h.EnableExemplars()
	h.ObserveExemplar(0.002, "aaaa")
	h.ObserveExemplar(0.002, "bbbb") // same bucket: replaces
	found := false
	for i := 0; i <= len(LatencyBuckets); i++ {
		if ex := h.bucketExemplar(i); ex != nil {
			if ex.TraceID != "bbbb" {
				t.Fatalf("bucket %d kept stale exemplar %q", i, ex.TraceID)
			}
			if found {
				t.Fatal("one observation filled two buckets")
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no exemplar captured")
	}
}

func TestExemplarDisabledIsFree(t *testing.T) {
	h := NewHistogram(LatencyBuckets)
	// Without EnableExemplars the trace ID is discarded, not stored.
	h.ObserveExemplar(0.002, "cccc")
	for i := 0; i <= len(LatencyBuckets); i++ {
		if h.bucketExemplar(i) != nil {
			t.Fatal("exemplar stored while disabled")
		}
	}
	if h.Snapshot().Count != 1 {
		t.Fatal("observation lost")
	}
}

func TestCheckExpositionRejectsBadExemplars(t *testing.T) {
	bad := []string{
		// Exemplar on a counter line.
		"# HELP rne_x_total c\n# TYPE rne_x_total counter\nrne_x_total 1 # {trace_id=\"ab\"} 1\n",
		// Malformed exemplar labels.
		"# HELP rne_d_seconds h\n# TYPE rne_d_seconds histogram\nrne_d_seconds_bucket{le=\"+Inf\"} 1 # {trace_id=} 1\nrne_d_seconds_sum 1\nrne_d_seconds_count 1\n",
	}
	for _, in := range bad {
		if err := CheckExposition(strings.NewReader(in)); err == nil {
			t.Fatalf("accepted invalid exposition:\n%s", in)
		}
	}
}
