package telemetry

import (
	"bufio"
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fsx"
)

// TraceParentHeader is the W3C Trace Context header carrying the
// trace/span identity across service hops.
const TraceParentHeader = "traceparent"

// AttemptHeader marks a proxied backend call as a non-primary leg
// ("retry", "hedge", "shard-retry"): the gateway stamps it on every
// extra attempt so replica-side logs can tell redundant work from
// first-try traffic.
const AttemptHeader = "X-Rne-Attempt"

// SanitizeAttempt maps an inbound AttemptHeader value onto the known
// vocabulary, discarding anything else (it lands in logs).
func SanitizeAttempt(s string) string {
	switch s {
	case "retry", "hedge", "shard", "shard-retry":
		return s
	}
	return ""
}

// SpanContext is the propagated identity of a span: which trace it
// belongs to, which span it is, and whether the trace is sampled (the
// head-sampling decision made once at the root and inherited by every
// child, local or remote).
type SpanContext struct {
	TraceID [16]byte
	SpanID  [8]byte
	Sampled bool
}

// Valid reports whether both IDs are non-zero, as required by the W3C
// spec for a usable traceparent.
func (sc SpanContext) Valid() bool {
	return sc.TraceID != [16]byte{} && sc.SpanID != [8]byte{}
}

// TraceIDString returns the 32-hex-digit trace ID.
func (sc SpanContext) TraceIDString() string { return hex.EncodeToString(sc.TraceID[:]) }

// SpanIDString returns the 16-hex-digit span ID.
func (sc SpanContext) SpanIDString() string { return hex.EncodeToString(sc.SpanID[:]) }

// FormatTraceParent renders sc as a version-00 traceparent value:
// 00-<trace-id>-<span-id>-<flags>.
func FormatTraceParent(sc SpanContext) string {
	flags := "00"
	if sc.Sampled {
		flags = "01"
	}
	return "00-" + sc.TraceIDString() + "-" + sc.SpanIDString() + "-" + flags
}

// ParseTraceParent parses a version-00 traceparent value. Unknown
// versions, malformed fields and all-zero IDs are rejected (ok=false),
// per the W3C processing rules: a broken header means "no parent", not
// an error the request should see.
func ParseTraceParent(s string) (SpanContext, bool) {
	// 2 (version) + 1 + 32 (trace id) + 1 + 16 (span id) + 1 + 2 (flags)
	if len(s) < 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return SpanContext{}, false
	}
	if s[0] != '0' || s[1] != '0' {
		return SpanContext{}, false // only version 00 is understood
	}
	if len(s) > 55 { // version 00 has exactly four fields
		return SpanContext{}, false
	}
	var sc SpanContext
	if _, err := hex.Decode(sc.TraceID[:], []byte(s[3:35])); err != nil {
		return SpanContext{}, false
	}
	if _, err := hex.Decode(sc.SpanID[:], []byte(s[36:52])); err != nil {
		return SpanContext{}, false
	}
	flags := s[53:55]
	if !isHexByte(flags[0]) || !isHexByte(flags[1]) {
		return SpanContext{}, false
	}
	sc.Sampled = flags == "01" || flags[1]&1 == 1
	if !sc.Valid() {
		return SpanContext{}, false
	}
	return sc, true
}

func isHexByte(c byte) bool {
	return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

// ExtractTraceParent reads the traceparent header from h.
func ExtractTraceParent(h http.Header) (SpanContext, bool) {
	v := h.Get(TraceParentHeader)
	if v == "" {
		return SpanContext{}, false
	}
	return ParseTraceParent(v)
}

// InjectTraceParent writes sc as the traceparent header on h. Invalid
// contexts are not injected.
func InjectTraceParent(h http.Header, sc SpanContext) {
	if !sc.Valid() {
		return
	}
	h.Set(TraceParentHeader, FormatTraceParent(sc))
}

// ID generation: one crypto/rand seed at process start, then a
// splitmix64 sequence over an atomic counter. Spans are minted on the
// request hot path, so per-span crypto/rand (a syscall) is out.
var idCounter atomic.Uint64

func init() {
	var seed [8]byte
	if _, err := rand.Read(seed[:]); err == nil {
		idCounter.Store(binary.LittleEndian.Uint64(seed[:]))
	} else {
		idCounter.Store(uint64(time.Now().UnixNano()))
	}
}

func nextID() uint64 {
	for {
		x := idCounter.Add(0x9e3779b97f4a7c15)
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		if x != 0 { // all-zero IDs are invalid per the W3C spec
			return x
		}
	}
}

func newTraceID() (id [16]byte) {
	binary.BigEndian.PutUint64(id[:8], nextID())
	binary.BigEndian.PutUint64(id[8:], nextID())
	return id
}

func newSpanID() (id [8]byte) {
	binary.BigEndian.PutUint64(id[:], nextID())
	return id
}

// SpanEvent is a point-in-time annotation within a span (a shed, a
// deadline expiry, a backpressure relay), stamped relative to the span
// start.
type SpanEvent struct {
	Name   string  `json:"name"`
	AtUS   float64 `json:"at_us"`
	Detail string  `json:"detail,omitempty"`
}

// SpanRecord is one finished span as persisted to the trace JSONL.
type SpanRecord struct {
	TraceID       string            `json:"trace_id"`
	SpanID        string            `json:"span_id"`
	ParentID      string            `json:"parent_id,omitempty"`
	Service       string            `json:"service,omitempty"`
	Name          string            `json:"name"`
	StartUnixNano int64             `json:"start"`
	DurationUS    float64           `json:"duration_us"`
	HTTPStatus    int               `json:"http_status,omitempty"`
	Error         string            `json:"error,omitempty"`
	Attrs         map[string]string `json:"attrs,omitempty"`
	Events        []SpanEvent       `json:"events,omitempty"`
}

// TraceConfig tunes a RequestTracer. Zero values select the documented
// defaults.
type TraceConfig struct {
	// Path is the span JSONL file appended to (required). Rotation
	// moves it to Path+".1".
	Path string
	// Service names this process in every span record (e.g. "gateway",
	// "server"), so multi-process traces can be read without guessing.
	Service string
	// SampleEvery keeps one trace in N (deterministic head sampling:
	// every Nth root span is sampled; children inherit the decision).
	// <= 1 samples everything.
	SampleEvery int
	// QueueSize bounds the spans buffered between the serving path and
	// the writer goroutine (default 1024). A full queue drops.
	QueueSize int
	// MaxBytes rotates the active file once it grows past this size
	// (default 64 MiB; negative disables rotation).
	MaxBytes int64
	// OnDrop and OnWrite, when non-nil, are invoked once per dropped
	// and per persisted span (e.g. to feed metrics counters). OnDrop
	// runs on the serving path and must be cheap.
	OnDrop  func()
	OnWrite func()
}

const approxSpanBytes = 320

// RequestTracer mints request-scoped spans and persists the sampled
// ones through a non-blocking bounded JSONL writer — the same
// discipline as internal/qlog: the serving goroutine pays one atomic
// tick plus, for sampled spans, one non-blocking channel send; a slow
// disk degrades the trace, never a request. A nil *RequestTracer is
// valid and makes every operation a no-op, so call sites never branch
// on "is tracing on".
type RequestTracer struct {
	cfg   TraceConfig
	queue chan SpanRecord

	roots   atomic.Int64 // root-span creations, sampled or not
	dropped atomic.Int64
	written atomic.Int64

	// mu serialises sends against Close, exactly as in qlog.Logger.
	mu        sync.RWMutex
	closed    bool
	closeOnce sync.Once
	done      chan struct{}
}

// NewRequestTracer opens (appending) the span file and starts the
// writer goroutine.
func NewRequestTracer(cfg TraceConfig) (*RequestTracer, error) {
	if cfg.Path == "" {
		return nil, fmt.Errorf("telemetry: trace output needs a file path")
	}
	if cfg.SampleEvery < 1 {
		cfg.SampleEvery = 1
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 1024
	}
	if cfg.MaxBytes == 0 {
		cfg.MaxBytes = 64 << 20
	}
	f, err := os.OpenFile(cfg.Path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("telemetry: opening trace output: %w", err)
	}
	size, err := f.Seek(0, 2)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("telemetry: sizing trace output: %w", err)
	}
	t := &RequestTracer{
		cfg:   cfg,
		queue: make(chan SpanRecord, cfg.QueueSize),
		done:  make(chan struct{}),
	}
	go t.run(f, size)
	return t, nil
}

// Roots returns the number of root spans started (sampled or not).
func (t *RequestTracer) Roots() int64 {
	if t == nil {
		return 0
	}
	return t.roots.Load()
}

// Dropped returns the number of sampled spans lost to a full queue.
func (t *RequestTracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Written returns the number of spans persisted so far.
func (t *RequestTracer) Written() int64 {
	if t == nil {
		return 0
	}
	return t.written.Load()
}

// Close stops accepting spans, flushes the queue to disk and closes
// the file. Spans ended after Close are counted as drops. Nil-safe.
func (t *RequestTracer) Close() error {
	if t == nil {
		return nil
	}
	t.closeOnce.Do(func() {
		t.mu.Lock()
		t.closed = true
		close(t.queue)
		t.mu.Unlock()
	})
	<-t.done
	return nil
}

func (t *RequestTracer) drop() {
	t.dropped.Add(1)
	if t.cfg.OnDrop != nil {
		t.cfg.OnDrop()
	}
}

func (t *RequestTracer) enqueue(rec SpanRecord) {
	t.mu.RLock()
	if t.closed {
		t.mu.RUnlock()
		t.drop()
		return
	}
	select {
	case t.queue <- rec:
		t.mu.RUnlock()
	default:
		t.mu.RUnlock()
		t.drop()
	}
}

// run is the writer goroutine: drain the queue, encode, rotate.
func (t *RequestTracer) run(f *os.File, size int64) {
	defer close(t.done)
	bw := bufio.NewWriter(f)
	enc := json.NewEncoder(bw)
	for {
		rec, ok := <-t.queue
		if !ok {
			bw.Flush()
			f.Close()
			return
		}
		if err := enc.Encode(rec); err != nil {
			t.drop()
			continue
		}
		size += approxSpanBytes
		t.written.Add(1)
		if t.cfg.OnWrite != nil {
			t.cfg.OnWrite()
		}
		if len(t.queue) == 0 {
			bw.Flush()
		}
		if t.cfg.MaxBytes > 0 && size >= t.cfg.MaxBytes {
			bw.Flush()
			f.Close()
			_ = fsx.Rotate(t.cfg.Path)
			nf, err := os.OpenFile(t.cfg.Path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				for range t.queue {
					t.drop()
				}
				return
			}
			f, size = nf, 0
			bw = bufio.NewWriter(f)
			enc = json.NewEncoder(bw)
		}
	}
}

// ReqSpan is one in-flight request-scoped span. A nil *ReqSpan is
// valid and makes every method a no-op, which is how disabled tracing
// stays near-zero cost: with no tracer installed every StartSpan
// returns nil and the hot path pays only nil checks. Unsampled spans
// exist (they carry IDs for propagation) but record nothing and are
// never enqueued.
type ReqSpan struct {
	tracer *RequestTracer
	sc     SpanContext
	parent [8]byte
	name   string
	start  time.Time

	mu     sync.Mutex
	attrs  map[string]string
	events []SpanEvent
	status int
	errMsg string
	ended  bool
}

type spanCtxKey struct{}
type remoteParentKey struct{}

// ContextWithSpan attaches span to ctx, making it the parent of
// subsequent StartSpan/StartChild calls.
func ContextWithSpan(ctx context.Context, span *ReqSpan) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, span)
}

// SpanFromContext returns the context's span, or nil.
func SpanFromContext(ctx context.Context) *ReqSpan {
	s, _ := ctx.Value(spanCtxKey{}).(*ReqSpan)
	return s
}

// ContextWithRemoteParent records an extracted upstream SpanContext so
// the next StartSpan continues the remote trace instead of rooting a
// new one.
func ContextWithRemoteParent(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, remoteParentKey{}, sc)
}

func remoteParentFrom(ctx context.Context) (SpanContext, bool) {
	sc, ok := ctx.Value(remoteParentKey{}).(SpanContext)
	return sc, ok
}

// StartSpan starts a span named name: a child of the context's span if
// one exists, else a child of a remote parent recorded by
// ContextWithRemoteParent, else a new root (where the head-sampling
// decision is made). The returned context carries the new span. Nil
// tracer: returns (ctx, nil).
func (t *RequestTracer) StartSpan(ctx context.Context, name string) (context.Context, *ReqSpan) {
	return t.startSpanAt(ctx, name, time.Now(), false)
}

// StartSpanForced is StartSpan but a root started here is always
// sampled, regardless of SampleEvery — for rare, high-value operations
// such as autoheal attempts that must never be sampled away.
func (t *RequestTracer) StartSpanForced(ctx context.Context, name string) (context.Context, *ReqSpan) {
	return t.startSpanAt(ctx, name, time.Now(), true)
}

func (t *RequestTracer) startSpanAt(ctx context.Context, name string, start time.Time, force bool) (context.Context, *ReqSpan) {
	if t == nil {
		return ctx, nil
	}
	var sc SpanContext
	var parentID [8]byte
	if p := SpanFromContext(ctx); p != nil {
		sc = SpanContext{TraceID: p.sc.TraceID, SpanID: newSpanID(), Sampled: p.sc.Sampled}
		parentID = p.sc.SpanID
	} else if remote, ok := remoteParentFrom(ctx); ok && remote.Valid() {
		sc = SpanContext{TraceID: remote.TraceID, SpanID: newSpanID(), Sampled: remote.Sampled}
		parentID = remote.SpanID
	} else {
		n := t.roots.Add(1)
		sampled := force || n%int64(t.cfg.SampleEvery) == 0
		sc = SpanContext{TraceID: newTraceID(), SpanID: newSpanID(), Sampled: sampled}
	}
	s := &ReqSpan{tracer: t, sc: sc, parent: parentID, name: name, start: start}
	return ContextWithSpan(ctx, s), s
}

// StartChild starts a child of the context's span using that span's
// own tracer, so instrumented call sites need no tracer handle of
// their own. With no span in ctx it returns (ctx, nil).
func StartChild(ctx context.Context, name string) (context.Context, *ReqSpan) {
	p := SpanFromContext(ctx)
	if p == nil {
		return ctx, nil
	}
	return p.tracer.startSpanAt(ctx, name, time.Now(), false)
}

// childAt starts a child of s with an explicit start time (used for
// the admission span, whose wait began before the span could be made).
func (s *ReqSpan) childAt(name string, start time.Time) *ReqSpan {
	if s == nil {
		return nil
	}
	return &ReqSpan{
		tracer: s.tracer,
		sc:     SpanContext{TraceID: s.sc.TraceID, SpanID: newSpanID(), Sampled: s.sc.Sampled},
		parent: s.sc.SpanID,
		name:   name,
		start:  start,
	}
}

// Context returns the span's propagation identity (zero for nil).
func (s *ReqSpan) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// Recording reports whether this span will be persisted on End.
func (s *ReqSpan) Recording() bool { return s != nil && s.sc.Sampled }

// TraceID returns the hex trace ID, "" for nil spans.
func (s *ReqSpan) TraceID() string {
	if s == nil {
		return ""
	}
	return s.sc.TraceIDString()
}

// ExemplarID returns the hex trace ID only when the span is recorded —
// the ID a latency-histogram exemplar should carry, since an exemplar
// pointing at a never-written trace is noise.
func (s *ReqSpan) ExemplarID() string {
	if s == nil || !s.sc.Sampled {
		return ""
	}
	return s.sc.TraceIDString()
}

// SetAttr attaches a string attribute. No-op on nil/unsampled/ended
// spans — a deadline-abandoned handler goroutine may touch its span
// after the middleware already ended it, and must not race the writer.
func (s *ReqSpan) SetAttr(k, v string) {
	if !s.Recording() {
		return
	}
	s.mu.Lock()
	if !s.ended {
		if s.attrs == nil {
			s.attrs = make(map[string]string, 4)
		}
		s.attrs[k] = v
	}
	s.mu.Unlock()
}

// SetAttrInt attaches an integer attribute.
func (s *ReqSpan) SetAttrInt(k string, v int64) {
	if !s.Recording() {
		return
	}
	s.SetAttr(k, fmt.Sprintf("%d", v))
}

// Event records a point-in-time annotation.
func (s *ReqSpan) Event(name, detail string) {
	if !s.Recording() {
		return
	}
	at := time.Since(s.start).Seconds() * 1e6
	s.mu.Lock()
	if !s.ended {
		s.events = append(s.events, SpanEvent{Name: name, AtUS: at, Detail: detail})
	}
	s.mu.Unlock()
}

// SetError marks the span failed. A nil error is ignored.
func (s *ReqSpan) SetError(err error) {
	if err == nil || !s.Recording() {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.errMsg = err.Error()
	}
	s.mu.Unlock()
}

// SetStatus records the HTTP status the span's request answered with.
func (s *ReqSpan) SetStatus(code int) {
	if !s.Recording() {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.status = code
	}
	s.mu.Unlock()
}

// End finishes the span and, when sampled, offers it to the writer
// (non-blocking; a full queue drops and counts). Ending twice is safe:
// the second End is a no-op, so a hedge loser can be ended both by its
// own completion and by a cleanup sweep.
func (s *ReqSpan) End() {
	if s == nil || !s.sc.Sampled {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	rec := SpanRecord{
		TraceID:       s.sc.TraceIDString(),
		SpanID:        s.sc.SpanIDString(),
		Service:       s.tracer.cfg.Service,
		Name:          s.name,
		StartUnixNano: s.start.UnixNano(),
		DurationUS:    time.Since(s.start).Seconds() * 1e6,
		HTTPStatus:    s.status,
		Error:         s.errMsg,
		Attrs:         s.attrs,
		Events:        s.events,
	}
	s.mu.Unlock()
	if s.parent != [8]byte{} {
		rec.ParentID = hex.EncodeToString(s.parent[:])
	}
	s.tracer.enqueue(rec)
}
