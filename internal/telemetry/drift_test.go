package telemetry

import (
	"math"
	"strings"
	"testing"
)

func TestNewDriftMonitorValidation(t *testing.T) {
	if _, err := NewDriftMonitor(nil, 100, 0, 0); err == nil {
		t.Fatal("nil registry accepted")
	}
	for _, bad := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewDriftMonitor(NewRegistry(), bad, 0, 0); err == nil {
			t.Fatalf("max distance %v accepted", bad)
		}
	}
	d, err := NewDriftMonitor(NewRegistry(), 100, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Bands() != DefaultDriftBands {
		t.Fatalf("bands = %d, want default %d", d.Bands(), DefaultDriftBands)
	}
}

// A nil monitor ignores observations — guard-disabled servers need no
// checks on the query path.
func TestNilDriftMonitorObserve(t *testing.T) {
	var d *DriftMonitor
	d.Observe(1, 0.5, 1.5)
}

func TestDriftScoreRisesOnDecay(t *testing.T) {
	reg := NewRegistry()
	d, err := NewDriftMonitor(reg, 1000, 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Warmup traffic: raw estimates within 1% of the certified midpoint.
	for i := 0; i < 100; i++ {
		d.Observe(101, 90, 110) // mid = 100, err = 1%
	}
	if got := d.scoreG.Value(); math.Abs(got-1) > 1e-9 {
		t.Fatalf("score after clean warmup = %v, want 1", got)
	}
	base := d.baselineG.Value()
	if math.Abs(base-0.01) > 1e-9 {
		t.Fatalf("baseline = %v, want 0.01", base)
	}
	// The model decays: 50% deviation. The EWMA is slow by design, but
	// the score must move up and the baseline stay frozen.
	for i := 0; i < 2000; i++ {
		d.Observe(150, 90, 110)
	}
	if got := d.baselineG.Value(); got != base {
		t.Fatalf("baseline moved after warmup: %v -> %v", base, got)
	}
	if got := d.scoreG.Value(); got < 2 {
		t.Fatalf("drift score = %v after sustained decay, want substantially > 1", got)
	}

	// Degenerate observations are skipped entirely.
	n := d.total.Value()
	d.Observe(1, 0, 0)                     // zero midpoint
	d.Observe(math.NaN(), 90, 110)         // NaN raw
	d.Observe(5, math.Inf(1), math.Inf(1)) // infinite bounds
	if got := d.total.Value(); got != n {
		t.Fatalf("degenerate observations counted: %d -> %d", n, got)
	}
}

// Observations land in the distance band of their certified midpoint,
// and the band histograms export cleanly.
func TestDriftBandsPartitionByDistance(t *testing.T) {
	reg := NewRegistry()
	d, err := NewDriftMonitor(reg, 100, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	d.Observe(10, 9, 11)     // mid 10  -> band 0
	d.Observe(60, 55, 65)    // mid 60  -> band 2
	d.Observe(990, 980, 1e3) // mid 990 beyond maxDist -> clamped to last band
	for band, want := range map[int]int64{0: 1, 1: 0, 2: 1, 3: 1} {
		if got := d.bands[band].Count(); got != want {
			t.Fatalf("band %d count = %d, want %d", band, got, want)
		}
	}
	var sb strings.Builder
	if _, err := reg.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if err := CheckExposition(strings.NewReader(sb.String())); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `rne_drift_band_error_bucket{band="02",`) {
		t.Fatalf("band label missing:\n%s", sb.String())
	}
}
