package telemetry

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestRequestIDMintsAndEchoes(t *testing.T) {
	var seen string
	h := RequestID(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = RequestIDFrom(r.Context())
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	id := rec.Header().Get(RequestIDHeader)
	if id == "" || id != seen {
		t.Fatalf("header %q, context %q: want one fresh ID in both", id, seen)
	}
}

func TestRequestIDPropagatesClientID(t *testing.T) {
	var seen string
	h := RequestID(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = RequestIDFrom(r.Context())
	}))
	req := httptest.NewRequest("GET", "/", nil)
	req.Header.Set(RequestIDHeader, "upstream-42.a_b")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if seen != "upstream-42.a_b" || rec.Header().Get(RequestIDHeader) != seen {
		t.Fatalf("client ID not propagated: context %q header %q", seen, rec.Header().Get(RequestIDHeader))
	}
}

// Hostile header values are replaced, not echoed: no log injection.
func TestRequestIDSanitizesHostileValues(t *testing.T) {
	for _, bad := range []string{
		"evil\nX-Injected: 1", "spaces here", strings.Repeat("a", 65), "quote\"",
	} {
		h := RequestID(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
		req := httptest.NewRequest("GET", "/", nil)
		req.Header["X-Request-Id"] = []string{bad}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if got := rec.Header().Get(RequestIDHeader); got == bad || got == "" {
			t.Fatalf("hostile ID %q handled as %q, want fresh replacement", bad, got)
		}
	}
}

func TestRequestIDFromEmptyContext(t *testing.T) {
	if got := RequestIDFrom(httptest.NewRequest("GET", "/", nil).Context()); got != "" {
		t.Fatalf("ID from bare context = %q, want empty", got)
	}
}
