package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

// Round trip: what WriteTo renders, ParseExposition reads back —
// including histogram buckets with exemplar suffixes.
func TestParseExpositionRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("rne_test_requests_total", "Requests.", "class", "2xx").Add(41)
	reg.Gauge("rne_test_limit", "Limit.").Set(12.5)
	h := reg.Histogram("rne_test_latency_seconds", "Latency.", []float64{0.1, 1})
	h.EnableExemplars()
	h.ObserveExemplar(0.05, "deadbeef")
	h.Observe(0.5)
	h.Observe(3)

	var buf bytes.Buffer
	if _, err := reg.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if err := CheckExposition(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
	samples, err := ParseExposition(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if got := samples[`rne_test_requests_total{class="2xx"}`]; got != 41 {
		t.Errorf("counter = %v, want 41", got)
	}
	if got := samples["rne_test_limit"]; got != 12.5 {
		t.Errorf("gauge = %v, want 12.5", got)
	}
	if got := samples[`rne_test_latency_seconds_bucket{le="0.1"}`]; got != 1 {
		t.Errorf("le=0.1 bucket = %v, want 1 (exemplar suffix must not break parsing)", got)
	}
	if got := samples[`rne_test_latency_seconds_bucket{le="+Inf"}`]; got != 3 {
		t.Errorf("+Inf bucket = %v, want 3", got)
	}
	if got := samples["rne_test_latency_seconds_count"]; got != 3 {
		t.Errorf("count = %v, want 3", got)
	}

	// The histogram reassembles into a snapshot whose quantiles match
	// the original's.
	hs, ok := HistogramFromSamples(samples, "rne_test_latency_seconds")
	if !ok {
		t.Fatal("HistogramFromSamples found no buckets")
	}
	orig := h.Snapshot()
	for _, q := range []float64{0.5, 0.99} {
		if a, b := hs.Quantile(q), orig.Quantile(q); a != b {
			t.Errorf("q=%v: reassembled %v vs original %v", q, a, b)
		}
	}
	if hs.Count != orig.Count {
		t.Errorf("reassembled count %d, want %d", hs.Count, orig.Count)
	}
}

func TestParseExpositionRejectsGarbage(t *testing.T) {
	if _, err := ParseExposition(strings.NewReader("this is not exposition\n")); err == nil {
		t.Fatal("garbage parsed without error")
	}
}
