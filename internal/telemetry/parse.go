package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// parseSampleRe matches the prefix of one exposition sample line —
// name, optional label block, value — without anchoring the end, so
// lines carrying an OpenMetrics exemplar suffix (` # {...} v ts`)
// parse the same as plain ones.
var parseSampleRe = regexp.MustCompile(
	`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (NaN|[+-]Inf|[0-9eE.+-]+)`)

// ParseExposition parses Prometheus text exposition output into a flat
// sample map keyed by `name{labels}` exactly as rendered (bare `name`
// for label-free series). HELP/TYPE comments and exemplar suffixes are
// skipped; unparseable sample lines are an error. It is the scrape
// half of the exposition pipeline: what Registry.WriteTo writes,
// ParseExposition reads back, so a load harness can join client-side
// latency with the counters a target fleet reports.
func ParseExposition(r io.Reader) (map[string]float64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	out := make(map[string]float64)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		m := parseSampleRe.FindStringSubmatch(line)
		if m == nil {
			return nil, fmt.Errorf("telemetry: exposition line %d unparseable: %q", lineNo, line)
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("telemetry: exposition line %d value %q: %v", lineNo, m[3], err)
		}
		out[m[1]+m[2]] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// bucketRe extracts the le label of one histogram _bucket key.
var bucketRe = regexp.MustCompile(`le="([^"]*)"`)

// HistogramFromSamples reassembles the named histogram from a parsed
// sample map: the `name_bucket{le=...}` series become a HistSnapshot
// with de-cumulated counts, ready for Quantile/Sub — the path a
// scraper uses to compute a target's GC-pause or request-latency p99
// from two scrapes. Series names must match exactly (label sets other
// than le are not supported). Returns ok=false when no buckets exist.
func HistogramFromSamples(samples map[string]float64, name string) (HistSnapshot, bool) {
	type bucket struct {
		le  float64
		cum float64
	}
	var bs []bucket
	var inf float64
	haveInf := false
	prefix := name + "_bucket{"
	for k, v := range samples {
		if !strings.HasPrefix(k, prefix) {
			continue
		}
		m := bucketRe.FindStringSubmatch(k)
		if m == nil {
			continue
		}
		if m[1] == "+Inf" {
			inf = v
			haveInf = true
			continue
		}
		le, err := strconv.ParseFloat(m[1], 64)
		if err != nil {
			continue
		}
		bs = append(bs, bucket{le: le, cum: v})
	}
	if len(bs) == 0 {
		return HistSnapshot{}, false
	}
	sort.Slice(bs, func(i, j int) bool { return bs[i].le < bs[j].le })
	s := HistSnapshot{
		Bounds: make([]float64, len(bs)),
		Counts: make([]int64, len(bs)+1),
		Sum:    samples[name+"_sum"],
	}
	prev := 0.0
	for i, b := range bs {
		s.Bounds[i] = b.le
		s.Counts[i] = int64(b.cum - prev)
		prev = b.cum
	}
	total := prev
	if haveInf {
		s.Counts[len(bs)] = int64(inf - prev)
		total = inf
	}
	s.Count = int64(total)
	return s, true
}
