package telemetry

import (
	"log/slog"
	"sync"
	"time"
)

// PhaseRecord is one completed build phase (a closed Span).
type PhaseRecord struct {
	Name       string  `json:"name"`
	DurationMS float64 `json:"duration_ms"`
}

// UnitRecord is one completed unit of training work — a hierarchy
// level, vertex epoch or fine-tune round — with the loss/LR/recovery
// state it finished in. The sequence of UnitRecords is the per-level
// training series of build-report.json.
type UnitRecord struct {
	Phase      string  `json:"phase"` // "hier", "vertex" or "finetune"
	Unit       string  `json:"unit"`  // e.g. "hierarchy level 3"
	Loss       float64 `json:"loss_mean_rel"`
	LR         float64 `json:"lr"`
	Recoveries int     `json:"recoveries"`
	DurationMS float64 `json:"duration_ms"`
}

// BuildReport is the machine-readable trace of one build: phase
// durations, the per-unit loss/LR/recovery series, and checkpoint
// accounting. rnebuild embeds it in build-report.json.
type BuildReport struct {
	Phases             []PhaseRecord `json:"phases"`
	Units              []UnitRecord  `json:"units"`
	Recoveries         int           `json:"recoveries"`
	CheckpointWrites   int           `json:"checkpoint_writes"`
	CheckpointFailures int           `json:"checkpoint_failures"`
}

// Tracer collects spans and training-unit records from a build,
// logging each as it completes and mirroring the latest values into a
// metrics registry (both optional). A nil *Tracer is valid and makes
// every method a no-op, so instrumented code needs no nil checks.
type Tracer struct {
	logger *slog.Logger
	reg    *Registry

	mu     sync.Mutex
	report BuildReport
}

// NewTracer returns a tracer logging to logger (nil discards) and
// exporting gauges to reg (nil disables the metric mirror).
func NewTracer(logger *slog.Logger, reg *Registry) *Tracer {
	return &Tracer{logger: OrNop(logger), reg: reg}
}

// Span is an in-flight phase timer started by StartSpan.
type Span struct {
	t     *Tracer
	name  string
	start time.Time
	attrs []any
}

// StartSpan opens a span over a named build phase; attrs are
// alternating slog key/value pairs echoed when the span ends.
func (t *Tracer) StartSpan(name string, attrs ...any) *Span {
	if t == nil {
		return nil
	}
	t.logger.Debug("phase start", "phase", name)
	return &Span{t: t, name: name, start: time.Now(), attrs: attrs}
}

// End closes the span: the duration is recorded into the report,
// logged, and exported as rne_build_phase_seconds{phase=...}.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	d := time.Since(s.start)
	t := s.t
	t.mu.Lock()
	t.report.Phases = append(t.report.Phases, PhaseRecord{Name: s.name, DurationMS: ms(d)})
	t.mu.Unlock()
	if t.reg != nil {
		t.reg.Gauge("rne_build_phase_seconds",
			"Wall-clock duration of the named build phase.", "phase", s.name).Set(d.Seconds())
	}
	t.logger.Info("phase done", append([]any{"phase", s.name, "duration", d}, s.attrs...)...)
	return d
}

// Unit records one completed training unit with the validation loss,
// learning rate and cumulative recovery count it finished at.
func (t *Tracer) Unit(phase, unit string, loss, lr float64, recoveries int, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.report.Units = append(t.report.Units, UnitRecord{
		Phase: phase, Unit: unit, Loss: loss, LR: lr,
		Recoveries: recoveries, DurationMS: ms(d),
	})
	t.mu.Unlock()
	if t.reg != nil {
		t.reg.Gauge("rne_build_unit_loss",
			"Held-out mean relative error after the named training unit.",
			"phase", phase, "unit", unit).Set(loss)
		t.reg.Gauge("rne_build_lr", "Current dimension-normalized base learning rate.").Set(lr)
		t.reg.Gauge("rne_build_recoveries",
			"Divergence-sentinel rollbacks so far this build.").Set(float64(recoveries))
		t.reg.Counter("rne_build_units_total",
			"Completed training units by phase.", "phase", phase).Inc()
	}
	t.logger.Info("training unit done",
		"phase", phase, "unit", unit, "loss_mean_rel", loss, "lr", lr,
		"recoveries", recoveries, "duration", d)
}

// Recovery records one divergence-sentinel rollback.
func (t *Tracer) Recovery(unit, reason string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.report.Recoveries++
	n := t.report.Recoveries
	t.mu.Unlock()
	if t.reg != nil {
		t.reg.Gauge("rne_build_recoveries",
			"Divergence-sentinel rollbacks so far this build.").Set(float64(n))
	}
	t.logger.Warn("sentinel recovery", "unit", unit, "reason", reason, "recoveries", n)
}

// CheckpointWrite records one checkpoint write attempt.
func (t *Tracer) CheckpointWrite(d time.Duration, ok bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.report.CheckpointWrites++
	if !ok {
		t.report.CheckpointFailures++
	}
	t.mu.Unlock()
	if t.reg != nil {
		outcome := "ok"
		if !ok {
			outcome = "error"
		}
		t.reg.Counter("rne_build_checkpoint_writes_total",
			"Checkpoint write attempts by outcome.", "outcome", outcome).Inc()
		t.reg.Gauge("rne_build_last_checkpoint_write_seconds",
			"Duration of the most recent checkpoint write.").Set(d.Seconds())
	}
	t.logger.Debug("checkpoint write", "duration", d, "ok", ok)
}

// Report returns a copy of everything recorded so far.
func (t *Tracer) Report() BuildReport {
	if t == nil {
		return BuildReport{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	r := t.report
	r.Phases = append([]PhaseRecord(nil), t.report.Phases...)
	r.Units = append([]UnitRecord(nil), t.report.Units...)
	return r
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
