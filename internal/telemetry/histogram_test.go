package telemetry

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestHistogramObserveAndSnapshot(t *testing.T) {
	h := newHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500, math.NaN()} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5 (NaN dropped)", got)
	}
	if got := h.Sum(); got != 556.5 {
		t.Fatalf("sum = %v, want 556.5", got)
	}
	s := h.Snapshot()
	// le semantics: 1 is inclusive in the first bucket.
	want := []int64{2, 1, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	h.ObserveDuration(5 * time.Second)
	if got := h.Snapshot().Counts[1]; got != 2 {
		t.Fatalf("ObserveDuration(5s) not in the le=10 bucket: %d", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("empty histogram quantile not NaN")
	}
	// 10 observations uniform in (0,1]: the median interpolates inside
	// the first bucket, from zero.
	for i := 0; i < 10; i++ {
		h.Observe(0.5)
	}
	if got := h.Quantile(0.5); got != 0.5 {
		t.Fatalf("p50 = %v, want 0.5 (linear within first bucket)", got)
	}
	if got := h.Quantile(1); got != 1.0 {
		t.Fatalf("p100 = %v, want upper bound 1", got)
	}
	h.Observe(100) // overflow
	if got := h.Quantile(1); got != 4 {
		t.Fatalf("overflow quantile = %v, want last finite bound 4", got)
	}
	if !math.IsNaN(h.Quantile(-0.1)) || !math.IsNaN(h.Quantile(1.1)) {
		t.Fatal("out-of-range q not NaN")
	}
}

// TestQuantileInterpolationError pins the quantile estimator's error
// on a known distribution: 10k observations uniform on (0, 1e-3],
// spanning ten latency buckets. Linear interpolation within the
// containing bucket must land within 2% of the exact order statistic;
// an estimator that returns the bucket upper bound instead would be
// off by 11% at p90 (returning 1e-3 where the truth is 9e-4), which
// the tolerance rejects.
func TestQuantileInterpolationError(t *testing.T) {
	h := newHistogram(LatencyBuckets)
	const n = 10000
	for i := 1; i <= n; i++ {
		h.Observe(float64(i) / n * 1e-3)
	}
	for _, tc := range []struct{ q, exact float64 }{
		{0.50, 0.5e-3},
		{0.90, 0.9e-3},
		{0.99, 0.99e-3},
		{0.999, 0.999e-3},
	} {
		got := h.Quantile(tc.q)
		if relErr := math.Abs(got-tc.exact) / tc.exact; relErr > 0.02 {
			t.Errorf("q=%v: got %v want %v (rel err %.3f > 0.02)", tc.q, got, tc.exact, relErr)
		}
	}
	// The p90 bucket is (5e-4, 1e-3]: the upper bound is 11% high, so
	// interpolation must not degenerate to it.
	if got := h.Quantile(0.90); got >= 1e-3 {
		t.Fatalf("p90 = %v: estimator returned the bucket upper bound instead of interpolating", got)
	}
}

// A rank landing exactly on the boundary below an empty bucket must
// resolve to the boundary, not the empty bucket's upper bound.
func TestQuantileEmptyBucketBoundary(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	if got := h.Quantile(0); !math.IsNaN(got) {
		t.Fatalf("q=0 on empty histogram = %v, want NaN", got)
	}
	h.Observe(3) // only the (2,4] bucket is populated
	if got := h.Quantile(0); got != 2 {
		t.Fatalf("q=0 = %v, want lower boundary 2 of the populated bucket (not an empty bucket's upper bound)", got)
	}
}

// Merging per-client snapshots is associative and commutative: the
// fleet quantiles cannot depend on which order clients are folded in.
func TestSnapshotMergeAssociative(t *testing.T) {
	mk := func(seed int64, n int) HistSnapshot {
		h := newHistogram(LatencyBuckets)
		v := uint64(seed)*2862933555777941757 + 3037000493
		for i := 0; i < n; i++ {
			v = v*2862933555777941757 + 3037000493
			h.Observe(float64(v%1000000) * 1e-9)
		}
		return h.Snapshot()
	}
	a, b, c := mk(1, 500), mk(2, 900), mk(3, 50)
	merge := func(x, y HistSnapshot) HistSnapshot {
		m, err := x.Merge(y)
		if err != nil {
			t.Fatalf("merge: %v", err)
		}
		return m
	}
	left := merge(merge(a, b), c)
	right := merge(a, merge(b, c))
	swapped := merge(merge(c, a), b)
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		l, r, s := left.Quantile(q), right.Quantile(q), swapped.Quantile(q)
		if l != r || l != s {
			t.Errorf("q=%v: merge order changed the quantile: %v vs %v vs %v", q, l, r, s)
		}
	}
	if left.Count != a.Count+b.Count+c.Count {
		t.Errorf("merged count %d, want %d", left.Count, a.Count+b.Count+c.Count)
	}
	if _, err := a.Merge(HistSnapshot{Bounds: []float64{1}, Counts: make([]int64, 2)}); err == nil {
		t.Error("merging mismatched bounds did not error")
	}
}

func TestLogBuckets(t *testing.T) {
	b := LogBuckets(1e-5, 10, 5)
	if b[0] != 1e-5 {
		t.Fatalf("first bound %v, want 1e-5", b[0])
	}
	if last := b[len(b)-1]; last < 10 {
		t.Fatalf("last bound %v does not reach 10", last)
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not strictly increasing at %d: %v <= %v", i, b[i], b[i-1])
		}
		if ratio := b[i] / b[i-1]; ratio > 2.0 {
			t.Fatalf("bucket ratio %v at %d too coarse for 5/decade", ratio, i)
		}
	}
	// The bounds must be valid histogram input.
	newHistogram(b)
}

// Concurrent Observe and Snapshot keep totals consistent: run under
// -race, and the final counts must equal the observations made.
func TestHistogramConcurrentObserveSnapshot(t *testing.T) {
	h := newHistogram(LatencyBuckets)
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() {
		// Concurrent readers: snapshots must never tear (no negative
		// or wildly inconsistent totals) while writes are in flight.
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h.Snapshot()
			var sum int64
			for _, c := range s.Counts {
				sum += c
			}
			if sum > workers*per || s.Count > workers*per {
				t.Errorf("snapshot overshoot: buckets %d count %d", sum, s.Count)
				return
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(w*per+i) * 1e-6)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	s := h.Snapshot()
	var sum int64
	for _, c := range s.Counts {
		sum += c
	}
	if s.Count != workers*per || sum != workers*per {
		t.Fatalf("count = %d bucket sum = %d, want %d", s.Count, sum, workers*per)
	}
}
