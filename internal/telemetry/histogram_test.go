package telemetry

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestHistogramObserveAndSnapshot(t *testing.T) {
	h := newHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500, math.NaN()} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5 (NaN dropped)", got)
	}
	if got := h.Sum(); got != 556.5 {
		t.Fatalf("sum = %v, want 556.5", got)
	}
	s := h.Snapshot()
	// le semantics: 1 is inclusive in the first bucket.
	want := []int64{2, 1, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	h.ObserveDuration(5 * time.Second)
	if got := h.Snapshot().Counts[1]; got != 2 {
		t.Fatalf("ObserveDuration(5s) not in the le=10 bucket: %d", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("empty histogram quantile not NaN")
	}
	// 10 observations uniform in (0,1]: the median interpolates inside
	// the first bucket, from zero.
	for i := 0; i < 10; i++ {
		h.Observe(0.5)
	}
	if got := h.Quantile(0.5); got != 0.5 {
		t.Fatalf("p50 = %v, want 0.5 (linear within first bucket)", got)
	}
	if got := h.Quantile(1); got != 1.0 {
		t.Fatalf("p100 = %v, want upper bound 1", got)
	}
	h.Observe(100) // overflow
	if got := h.Quantile(1); got != 4 {
		t.Fatalf("overflow quantile = %v, want last finite bound 4", got)
	}
	if !math.IsNaN(h.Quantile(-0.1)) || !math.IsNaN(h.Quantile(1.1)) {
		t.Fatal("out-of-range q not NaN")
	}
}

// Concurrent Observe and Snapshot keep totals consistent: run under
// -race, and the final counts must equal the observations made.
func TestHistogramConcurrentObserveSnapshot(t *testing.T) {
	h := newHistogram(LatencyBuckets)
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() {
		// Concurrent readers: snapshots must never tear (no negative
		// or wildly inconsistent totals) while writes are in flight.
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h.Snapshot()
			var sum int64
			for _, c := range s.Counts {
				sum += c
			}
			if sum > workers*per || s.Count > workers*per {
				t.Errorf("snapshot overshoot: buckets %d count %d", sum, s.Count)
				return
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(w*per+i) * 1e-6)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	s := h.Snapshot()
	var sum int64
	for _, c := range s.Counts {
		sum += c
	}
	if s.Count != workers*per || sum != workers*per {
		t.Fatalf("count = %d bucket sum = %d, want %d", s.Count, sum, workers*per)
	}
}
