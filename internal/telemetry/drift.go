package telemetry

import (
	"fmt"
	"math"
	"sync"
)

// Drift-monitor defaults: 31 distance bands mirror the paper's
// fine-tuning grid resolution (R = 2K-1 with K = 16); the baseline is
// frozen after the first 500 observations.
const (
	DefaultDriftBands  = 31
	DefaultDriftWarmup = 500
)

// DriftMonitor watches serving accuracy online, without ground truth.
// In guard mode every query carries a certified interval [lo, hi]
// containing the true distance; the raw model estimate's relative
// deviation from the interval midpoint is a label-free error proxy
// (when the model clamps, it is the clamp delta). Each observation is
// filed into one of the equal-width distance bands the paper buckets
// fine-tuning by, giving operators per-distance-band error histograms
// — the Figure 17 view, continuously, from live traffic.
//
// Drift is summarized as rne_drift_score: the exponentially-weighted
// recent mean error divided by a baseline frozen after warmup. A score
// near 1 means accuracy matches the post-deploy baseline; a sustained
// rise means the model is decaying on current traffic (e.g. the graph
// changed) and wants re-training or fine-tuning.
type DriftMonitor struct {
	maxDist float64
	bands   []*Histogram
	total   *Counter

	scoreG    *Gauge
	recentG   *Gauge
	baselineG *Gauge

	mu       sync.Mutex
	warmup   int
	alpha    float64
	seen     int
	baseSum  float64
	baseline float64
	ewma     float64
}

// DefaultDriftAlpha is the EWMA smoothing factor: a half-life of ~350
// observations, responsive within minutes at production QPS while
// smoothing per-query noise.
const DefaultDriftAlpha = 0.002

// NewDriftMonitor registers the drift metric family on reg. maxDist
// scales the distance bands (use the model's diameter estimate);
// bands and warmup fall back to the defaults when <= 0.
func NewDriftMonitor(reg *Registry, maxDist float64, bands, warmup int) (*DriftMonitor, error) {
	return NewDriftMonitorNamed(reg, "rne_drift", maxDist, bands, warmup)
}

// NewDriftMonitorNamed registers the drift metric family under the
// given metric-name prefix (NewDriftMonitor uses "rne_drift"). The
// telemetry registry hands the same series back for the same
// name+labels, so two monitors on one registry would silently share
// gauges; a distinct prefix gives each watcher — e.g. the serving
// monitor vs the autoheal controller's truth-probing monitor — its own
// independent family.
func NewDriftMonitorNamed(reg *Registry, prefix string, maxDist float64, bands, warmup int) (*DriftMonitor, error) {
	if reg == nil {
		return nil, fmt.Errorf("telemetry: drift monitor needs a registry")
	}
	if prefix == "" {
		return nil, fmt.Errorf("telemetry: drift monitor needs a metric prefix")
	}
	if !(maxDist > 0) || math.IsInf(maxDist, 0) {
		return nil, fmt.Errorf("telemetry: drift monitor needs a positive finite max distance, got %v", maxDist)
	}
	if bands <= 0 {
		bands = DefaultDriftBands
	}
	if warmup <= 0 {
		warmup = DefaultDriftWarmup
	}
	d := &DriftMonitor{
		maxDist: maxDist,
		bands:   make([]*Histogram, bands),
		warmup:  warmup,
		alpha:   DefaultDriftAlpha,
		total: reg.Counter(prefix+"_observations_total",
			"Guarded queries observed by the accuracy-drift monitor."),
		scoreG: reg.Gauge(prefix+"_score",
			"Recent mean deviation over the frozen baseline (1 = no drift)."),
		recentG: reg.Gauge(prefix+"_recent_error",
			"Exponentially-weighted recent mean relative deviation."),
		baselineG: reg.Gauge(prefix+"_baseline_error",
			"Baseline mean relative deviation frozen after warmup."),
	}
	d.scoreG.Set(1)
	for i := range d.bands {
		d.bands[i] = reg.Histogram(prefix+"_band_error",
			"Relative deviation of raw estimates from certified-bound midpoints, by distance band.",
			RelErrorBuckets, "band", fmt.Sprintf("%02d", i))
	}
	return d, nil
}

// DriftSnapshot is a point-in-time view of the monitor's summary state,
// for controllers that poll drift instead of scraping /metrics.
type DriftSnapshot struct {
	// Seen is the number of non-degenerate observations filed so far.
	Seen int
	// Warm reports whether the baseline has frozen (Seen > warmup).
	Warm bool
	// Baseline is the mean deviation over the warmup window (running
	// mean until frozen).
	Baseline float64
	// Recent is the exponentially-weighted recent mean deviation.
	Recent float64
	// Score is Recent/Baseline, the headline drift signal; 1 while the
	// baseline is still too small to divide by.
	Score float64
}

// Snapshot returns the monitor's current summary state. It reads the
// same fields Observe maintains, so a controller polling Snapshot sees
// exactly what the rne_*_score gauge exports.
func (d *DriftMonitor) Snapshot() DriftSnapshot {
	if d == nil {
		return DriftSnapshot{Score: 1}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	s := DriftSnapshot{
		Seen:     d.seen,
		Warm:     d.seen > d.warmup,
		Baseline: d.baseline,
		Recent:   d.ewma,
		Score:    1,
	}
	if d.baseline > 1e-12 {
		s.Score = d.ewma / d.baseline
	}
	return s
}

// DriftDeviation is the label-free error proxy the drift monitor
// files: the raw estimate's relative deviation from the certified
// interval midpoint. It returns ok=false for degenerate intervals
// (s == t, or non-finite values), which observers must skip. Exported
// so the offline replay harness scores queries with the exact formula
// the live monitor uses — a replayed log then reproduces the serving
// drift numbers instead of approximating them.
func DriftDeviation(raw, lo, hi float64) (errv float64, ok bool) {
	mid := (lo + hi) / 2
	if !(mid > 0) || math.IsInf(mid, 0) || math.IsNaN(raw) || math.IsInf(raw, 0) {
		return 0, false
	}
	return math.Abs(raw-mid) / mid, true
}

// DriftBand maps an interval midpoint to its distance band under the
// monitor's equal-width bucketing over [0, maxDist], clamping out-of-
// range midpoints to the edge bands. Shared with the replay harness so
// offline per-band aggregates line up with the live rne_drift_band_error
// histograms.
func DriftBand(mid, maxDist float64, bands int) int {
	band := int(float64(bands) * mid / maxDist)
	if band < 0 {
		band = 0
	}
	if band >= bands {
		band = bands - 1
	}
	return band
}

// Observe files one guarded query: raw is the unclamped model
// estimate, [lo, hi] the certified interval. Degenerate intervals
// (s == t, or non-finite bounds) are skipped.
func (d *DriftMonitor) Observe(raw, lo, hi float64) {
	if d == nil {
		return
	}
	errv, ok := DriftDeviation(raw, lo, hi)
	if !ok {
		return
	}
	band := DriftBand((lo+hi)/2, d.maxDist, len(d.bands))
	d.bands[band].Observe(errv)
	d.total.Inc()

	d.mu.Lock()
	d.seen++
	if d.seen <= d.warmup {
		d.baseSum += errv
		d.baseline = d.baseSum / float64(d.seen)
		d.ewma = d.baseline
	} else {
		d.ewma += d.alpha * (errv - d.ewma)
	}
	baseline, ewma := d.baseline, d.ewma
	d.mu.Unlock()

	d.baselineG.Set(baseline)
	d.recentG.Set(ewma)
	if baseline > 1e-12 {
		d.scoreG.Set(ewma / baseline)
	} else {
		d.scoreG.Set(1)
	}
}

// SetAlpha overrides the EWMA smoothing factor (DefaultDriftAlpha).
// Low-volume watchers — e.g. an autoheal controller feeding tens of
// probes per tick instead of thousands of queries per second — need a
// larger alpha so the recent-error estimate tracks a regime shift
// within a few ticks. Values outside (0, 1] are ignored. Call before
// observing; changing alpha mid-stream only affects later updates.
func (d *DriftMonitor) SetAlpha(alpha float64) {
	if !(alpha > 0) || alpha > 1 {
		return
	}
	d.mu.Lock()
	d.alpha = alpha
	d.mu.Unlock()
}

// Bands returns the number of distance bands.
func (d *DriftMonitor) Bands() int { return len(d.bands) }

// MaxDist returns the distance scale the bands were built over. After a
// model hot-swap the serving layer must rebuild its monitor so this
// tracks the new model's scale; exposing it lets swap tests assert that.
func (d *DriftMonitor) MaxDist() float64 { return d.maxDist }
