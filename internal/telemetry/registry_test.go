package telemetry

import (
	"net/http/httptest"
	"strings"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("rne_test_total", "help")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("negative counter Add did not panic")
			}
		}()
		c.Add(-1)
	}()

	g := r.Gauge("rne_test_gauge", "help")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

// Registration is get-or-create: same name and labels yield the same
// metric pointer, so hot paths can cache it.
func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("rne_dup_total", "help", "class", "2xx")
	b := r.Counter("rne_dup_total", "other help ignored", "class", "2xx")
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	other := r.Counter("rne_dup_total", "help", "class", "5xx")
	if a == other {
		t.Fatal("distinct labels returned the same counter")
	}
	h1 := r.Histogram("rne_dup_seconds", "help", LatencyBuckets)
	h2 := r.Histogram("rne_dup_seconds", "help", LatencyBuckets)
	if h1 != h2 {
		t.Fatal("same histogram series returned distinct histograms")
	}
}

func TestRegistryPanicsOnBadRegistration(t *testing.T) {
	r := NewRegistry()
	r.Counter("rne_kind_total", "help")
	for name, fn := range map[string]func(){
		"kind conflict":   func() { r.Gauge("rne_kind_total", "help") },
		"invalid name":    func() { r.Counter("0bad name!", "help") },
		"odd labels":      func() { r.Counter("rne_odd_total", "help", "only_key") },
		"bad label name":  func() { r.Counter("rne_lbl_total", "help", "bad-label", "v") },
		"empty hist":      func() { r.Histogram("rne_h_seconds", "help", nil) },
		"unsorted bounds": func() { r.Histogram("rne_h2_seconds", "help", []float64{1, 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// The rendered exposition passes the package's own validator and has
// the shape Prometheus expects: sorted families, TYPE lines, cumulative
// buckets, escaped label values.
func TestWriteToExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("rne_b_total", "second family").Add(3)
	r.Counter("rne_a_total", "first family", "class", "2xx").Inc()
	r.Gauge("rne_gauge", `quoted "help"`, "path", `with"quote\and`+"\nnewline").Set(1.25)
	r.GaugeFunc("rne_fn_gauge", "computed", func() float64 { return 42 })
	h := r.Histogram("rne_lat_seconds", "latency", []float64{0.1, 1}, "route", "/x")
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(99) // overflow bucket

	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if err := CheckExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("own exposition rejected: %v\n%s", err, out)
	}
	for _, want := range []string{
		"# TYPE rne_a_total counter",
		`rne_a_total{class="2xx"} 1`,
		"rne_b_total 3",
		"rne_fn_gauge 42",
		`rne_lat_seconds_bucket{route="/x",le="0.1"} 1`,
		`rne_lat_seconds_bucket{route="/x",le="1"} 2`,
		`rne_lat_seconds_bucket{route="/x",le="+Inf"} 3`,
		`rne_lat_seconds_count{route="/x"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Index(out, "rne_a_total") > strings.Index(out, "rne_b_total") {
		t.Fatal("families not sorted by name")
	}
}

func TestRegistryHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("rne_x_total", "help").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if got := rec.Header().Get("Content-Type"); got != ExpositionContentType {
		t.Fatalf("Content-Type = %q", got)
	}
	if err := CheckExposition(rec.Body); err != nil {
		t.Fatal(err)
	}
}

func TestCheckExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"no TYPE":          "rne_x_total 1\n",
		"malformed sample": "# TYPE rne_x_total counter\nrne_x_total one\n",
		"duplicate series": "# TYPE rne_x_total counter\nrne_x_total 1\nrne_x_total 2\n",
		"bare histogram":   "# TYPE rne_h histogram\nrne_h 1\n",
		"le off bucket":    "# TYPE rne_h histogram\nrne_h_sum{le=\"1\"} 1\n",
		"non-cumulative": "# TYPE rne_h histogram\n" +
			"rne_h_bucket{le=\"1\"} 5\nrne_h_bucket{le=\"+Inf\"} 3\nrne_h_count 3\n",
		"count != +Inf": "# TYPE rne_h histogram\n" +
			"rne_h_bucket{le=\"1\"} 1\nrne_h_bucket{le=\"+Inf\"} 2\nrne_h_sum 1\nrne_h_count 3\n",
		"duplicate TYPE": "# TYPE rne_x_total counter\n# TYPE rne_x_total counter\n",
	}
	for name, in := range cases {
		if err := CheckExposition(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted invalid exposition:\n%s", name, in)
		}
	}
}

func TestSanitizeName(t *testing.T) {
	for in, want := range map[string]string{
		"guard_checked":  "guard_checked",
		"weird name-42!": "weird_name_42_",
		"":               "_",
		"123abc":         "_23abc",
	} {
		if got := SanitizeName(in); got != want {
			t.Errorf("SanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
}
