package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net/http"
	"sync/atomic"
)

// RequestIDHeader is the header request IDs arrive on and are echoed
// back through, so callers and upstream proxies can correlate logs
// across services.
const RequestIDHeader = "X-Request-Id"

type requestIDKey struct{}

// WithRequestID attaches a request ID to the context.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestIDFrom returns the context's request ID, or "" when none was
// attached (e.g. the middleware is not installed).
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// fallbackSeq numbers request IDs when crypto/rand is unavailable.
var fallbackSeq atomic.Int64

func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("req-%d", fallbackSeq.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// sanitizeRequestID accepts a client-supplied ID only if it is short
// and printable-safe; anything else is discarded so log injection via
// the header is impossible.
func sanitizeRequestID(s string) string {
	if len(s) == 0 || len(s) > 64 {
		return ""
	}
	for _, r := range s {
		ok := r == '-' || r == '_' || r == '.' ||
			(r >= '0' && r <= '9') || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !ok {
			return ""
		}
	}
	return s
}

// RequestID is middleware that accepts a well-formed X-Request-Id from
// the client (or mints a fresh one), echoes it on the response, and
// stores it in the request context for access logging.
func RequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := sanitizeRequestID(r.Header.Get(RequestIDHeader))
		if id == "" {
			id = newRequestID()
		}
		w.Header().Set(RequestIDHeader, id)
		next.ServeHTTP(w, r.WithContext(WithRequestID(r.Context(), id)))
	})
}
