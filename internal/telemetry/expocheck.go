package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
)

// Exposition line grammar. Sample lines are
// `name{label="value",...} value` with an optional timestamp; the
// label block is validated separately so escape sequences are handled.
var (
	helpLineRe   = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) .*$`)
	typeLineRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
	sampleLineRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (NaN|[+-]Inf|[0-9eE.+-]+)( [0-9]+)?$`)
	labelPairRe  = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:\\.|[^"\\])*)"`)
	// exemplarRe matches the OpenMetrics exemplar block appended after
	// ` # ` on _bucket lines: a label set, a value, an optional
	// seconds timestamp.
	exemplarRe = regexp.MustCompile(`^\{[a-zA-Z_][a-zA-Z0-9_]*="(?:\\.|[^"\\])*"(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:\\.|[^"\\])*")*\} (?:NaN|[+-]Inf|[0-9eE.+-]+)(?: [0-9eE.+-]+)?$`)
)

// CheckExposition validates that r holds well-formed Prometheus text
// exposition output: every line parses under the name/label/value
// grammar, every sample belongs to a family declared by a preceding
// # TYPE line (histogram samples may use the _bucket/_sum/_count
// suffixes), no series (name plus label set) appears twice, histogram
// le buckets are cumulative, and each histogram's _count equals its
// +Inf bucket. It backs the end-to-end /metrics tests and is usable as
// a lint for any exposition producer.
func CheckExposition(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	types := make(map[string]string)
	seen := make(map[string]bool)
	// Histogram bookkeeping, keyed by series name+labels (minus le).
	lastCum := make(map[string]float64)
	infBucket := make(map[string]float64)
	counts := make(map[string]float64)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if m := typeLineRe.FindStringSubmatch(line); m != nil {
				if _, dup := types[m[1]]; dup {
					return fmt.Errorf("line %d: duplicate # TYPE for %s", lineNo, m[1])
				}
				types[m[1]] = m[2]
				continue
			}
			if helpLineRe.MatchString(line) {
				continue
			}
			return fmt.Errorf("line %d: malformed comment line %q", lineNo, line)
		}
		// An exemplar suffix (` # {labels} value [ts]`) is split off
		// before the sample grammar runs; it is only legal on _bucket
		// lines, checked once the family is resolved below.
		exemplar := ""
		if i := strings.Index(line, " # {"); i >= 0 {
			exemplar = line[i+3:]
			line = line[:i]
		}
		m := sampleLineRe.FindStringSubmatch(line)
		if m == nil {
			return fmt.Errorf("line %d: malformed sample line %q", lineNo, line)
		}
		name, labelBlock, valueStr := m[1], m[2], m[3]
		labels, leValue, err := parseLabelBlock(labelBlock)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		famName, suffix := name, ""
		famType, ok := types[name]
		if !ok {
			for _, sfx := range []string{"_bucket", "_sum", "_count"} {
				base := strings.TrimSuffix(name, sfx)
				if base != name && types[base] == "histogram" {
					famName, famType, suffix, ok = base, "histogram", sfx, true
					break
				}
			}
		}
		if !ok {
			return fmt.Errorf("line %d: sample %s has no preceding # TYPE", lineNo, name)
		}
		if famType == "histogram" && suffix == "" {
			return fmt.Errorf("line %d: bare sample %s for histogram family", lineNo, name)
		}
		if (suffix == "_bucket") != (leValue != "") {
			return fmt.Errorf("line %d: le label is required on _bucket samples and only there", lineNo)
		}
		if exemplar != "" {
			if suffix != "_bucket" {
				return fmt.Errorf("line %d: exemplar on non-bucket sample %s", lineNo, name)
			}
			if !exemplarRe.MatchString(exemplar) {
				return fmt.Errorf("line %d: malformed exemplar %q", lineNo, exemplar)
			}
		}
		seriesKey := name + "{" + labels + "}"
		if leValue != "" {
			seriesKey += `le=` + leValue
		}
		if seen[seriesKey] {
			return fmt.Errorf("line %d: duplicate series %s", lineNo, seriesKey)
		}
		seen[seriesKey] = true

		value, err := parseValue(valueStr)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		histKey := famName + "{" + labels + "}"
		switch suffix {
		case "_bucket":
			if value < lastCum[histKey] {
				return fmt.Errorf("line %d: histogram %s buckets not cumulative", lineNo, histKey)
			}
			lastCum[histKey] = value
			if leValue == `"+Inf"` {
				infBucket[histKey] = value
			}
		case "_count":
			counts[histKey] = value
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for k, c := range counts {
		inf, ok := infBucket[k]
		if !ok {
			return fmt.Errorf("histogram %s has no +Inf bucket", k)
		}
		if inf != c {
			return fmt.Errorf("histogram %s: _count %v != +Inf bucket %v", k, c, inf)
		}
	}
	return nil
}

// parseLabelBlock validates `{k="v",...}` and returns the block minus
// any le pair (for series identity) plus the raw le value.
func parseLabelBlock(block string) (labels, leValue string, err error) {
	if block == "" {
		return "", "", nil
	}
	inner := strings.TrimSuffix(strings.TrimPrefix(block, "{"), "}")
	var kept []string
	for inner != "" {
		m := labelPairRe.FindStringSubmatch(inner)
		if m == nil {
			return "", "", fmt.Errorf("malformed label pair at %q", inner)
		}
		if m[1] == "le" {
			leValue = `"` + m[2] + `"`
		} else {
			kept = append(kept, m[0])
		}
		inner = inner[len(m[0]):]
		if strings.HasPrefix(inner, ",") {
			inner = inner[1:]
			if inner == "" {
				return "", "", fmt.Errorf("trailing comma in label block %q", block)
			}
		} else if inner != "" {
			return "", "", fmt.Errorf("missing comma in label block %q", block)
		}
	}
	return strings.Join(kept, ","), leValue, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "NaN":
		return 0, nil // identity checks below never involve NaN samples
	case "+Inf":
		return strconv.ParseFloat("+inf", 64)
	case "-Inf":
		return strconv.ParseFloat("-inf", 64)
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad sample value %q", s)
	}
	return v, nil
}
