package telemetry

import (
	"bytes"
	"runtime"
	"testing"
)

// The runtime block renders as valid exposition with live values: a
// process always has goroutines and heap, and after an explicit GC the
// cycle counter and pause histogram must both have moved.
func TestRuntimeMetricsExposition(t *testing.T) {
	reg := NewRegistry()
	RegisterRuntimeMetrics(reg)
	RegisterRuntimeMetrics(reg) // idempotent

	runtime.GC()
	runtime.GC()

	var buf bytes.Buffer
	if _, err := reg.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if err := CheckExposition(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("runtime exposition invalid: %v\n%s", err, buf.String())
	}
	samples, err := ParseExposition(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if g := samples[MetricGoroutines]; g < 1 {
		t.Errorf("%s = %v, want >= 1", MetricGoroutines, g)
	}
	if hb := samples[MetricHeapBytes]; hb <= 0 {
		t.Errorf("%s = %v, want > 0", MetricHeapBytes, hb)
	}
	if gc := samples[MetricGCCycles]; gc < 2 {
		t.Errorf("%s = %v, want >= 2 after two explicit GCs", MetricGCCycles, gc)
	}
	hs, ok := HistogramFromSamples(samples, MetricGCPauses)
	if !ok {
		t.Fatalf("%s buckets missing from exposition", MetricGCPauses)
	}
	if hs.Count < 1 {
		t.Errorf("%s count = %d, want >= 1 after explicit GCs", MetricGCPauses, hs.Count)
	}
	if len(hs.Bounds) != len(GCPauseBuckets) {
		t.Errorf("pause bounds %d, want %d stable bounds", len(hs.Bounds), len(GCPauseBuckets))
	}
}
