// Package telemetry is the unified runtime-instrumentation layer: a
// stdlib-only metrics registry (atomic counters, gauges, fixed-bucket
// histograms) exposed in Prometheus text exposition format, structured
// leveled logging via log/slog with per-request IDs, a lightweight span
// API tracing the build pipeline into a machine-readable report, and an
// online accuracy-drift monitor for the guarded serving path.
//
// The paper's methodology is measurement-heavy — per-bucket error
// distributions drive active fine-tuning (Algorithm 2) and the whole
// Section VII evaluation — and the same visibility is what production
// serving needs online: latency distributions rather than means, and
// per-distance-band accuracy rather than a single offline score. This
// package provides both without any dependency beyond the standard
// library.
package telemetry

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// discardHandler drops every record. Equivalent to Go 1.24's
// slog.DiscardHandler, reimplemented here so the module's declared Go
// version stays authoritative.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

var nopLogger = slog.New(discardHandler{})

// NopLogger returns a logger that discards every record. Useful as a
// safe default where logging is optional.
func NopLogger() *slog.Logger { return nopLogger }

// OrNop returns l unchanged, or a discarding logger when l is nil, so
// call sites never need a nil check before logging.
func OrNop(l *slog.Logger) *slog.Logger {
	if l == nil {
		return nopLogger
	}
	return l
}

// NewLogger returns a leveled structured logger writing to w. format
// "json" selects the JSON handler; anything else selects the
// human-readable text handler.
func NewLogger(w io.Writer, level slog.Level, format string) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	if strings.EqualFold(format, "json") {
		return slog.New(slog.NewJSONHandler(w, opts))
	}
	return slog.New(slog.NewTextHandler(w, opts))
}

// ParseLevel maps the conventional level names to slog levels.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("telemetry: unknown log level %q (want debug, info, warn or error)", s)
}

// Logf adapts a structured logger to the printf-style callback shape
// used by older option seams; the formatted message is logged at Info.
func Logf(l *slog.Logger) func(format string, args ...any) {
	l = OrNop(l)
	return func(format string, args ...any) {
		l.Info(fmt.Sprintf(format, args...))
	}
}
