package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync/atomic"
	"time"
)

// LatencyBuckets spans 1µs to 2.5s in a 1-2.5-5 progression — wide
// enough for both the nanosecond-scale query kernel (rounded up into
// the first bucket) and slow, contended HTTP requests.
var LatencyBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5,
}

// LogBuckets returns log-spaced bucket bounds from min to at least max
// with perDecade buckets per factor of ten — the HDR-style layout a
// load generator wants: constant *relative* quantile resolution
// (within one bucket ratio) across six or more decades of latency.
// Bounds are snapped to one decimal digit of mantissa so the rendered
// exposition stays readable. Panics on invalid arguments, like the
// histogram constructors it feeds.
func LogBuckets(min, max float64, perDecade int) []float64 {
	if !(min > 0) || !(max > min) || perDecade < 1 {
		panic(fmt.Sprintf("telemetry: invalid LogBuckets(%v, %v, %d)", min, max, perDecade))
	}
	ratio := math.Pow(10, 1/float64(perDecade))
	var out []float64
	for v := min; ; v *= ratio {
		// Snap to two significant decimal digits so neighboring bounds
		// stay distinct and human-readable (1, 1.6, 2.5, 4, 6.3, ...).
		b, _ := strconv.ParseFloat(strconv.FormatFloat(v, 'g', 2, 64), 64)
		if len(out) > 0 && b <= out[len(out)-1] {
			continue
		}
		out = append(out, b)
		if b >= max {
			return out
		}
	}
}

// RelErrorBuckets spans 0.1% to 250% relative error, matching the
// sub-percent mean errors the paper reports while keeping room for the
// heavy tails the drift monitor exists to catch.
var RelErrorBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// Histogram counts observations into fixed buckets with lock-free
// atomics, cheap enough for the per-request serving path. Bucket
// bounds are inclusive upper limits (Prometheus le semantics); values
// above the last bound land in an implicit +Inf overflow bucket.
type Histogram struct {
	bounds  []float64      // strictly increasing, finite
	counts  []atomic.Int64 // len(bounds)+1; last is the overflow bucket
	count   atomic.Int64
	sumBits atomic.Uint64

	// exemplars, when enabled, holds one slot per bucket (last-write
	// wins) linking the bucket to a stored trace.
	exemplars atomic.Pointer[[]atomic.Pointer[Exemplar]]
}

// Exemplar links one histogram bucket to a concrete traced request:
// the observation that landed there, when, and which trace shows why
// it took that long. Rendered in the exposition as an OpenMetrics-style
// `# {trace_id="..."} value timestamp` suffix on _bucket lines.
type Exemplar struct {
	TraceID      string
	Value        float64
	TimeUnixNano int64
}

// EnableExemplars arms per-bucket exemplar capture. Call at setup,
// before the histogram is observed concurrently. Idempotent.
func (h *Histogram) EnableExemplars() {
	if h.exemplars.Load() != nil {
		return
	}
	slots := make([]atomic.Pointer[Exemplar], len(h.counts))
	h.exemplars.CompareAndSwap(nil, &slots)
}

// ObserveExemplar is Observe plus, when exemplars are enabled and
// traceID is non-empty, an exemplar stamped onto the bucket the value
// landed in (last write wins — under load the freshest trace is the
// most useful one). Cost over Observe: one atomic pointer store and
// one small allocation, only for sampled (traceID != "") requests.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	if math.IsNaN(v) {
		return
	}
	h.Observe(v)
	if traceID == "" {
		return
	}
	slots := h.exemplars.Load()
	if slots == nil {
		return
	}
	(*slots)[sort.SearchFloat64s(h.bounds, v)].Store(&Exemplar{
		TraceID:      traceID,
		Value:        v,
		TimeUnixNano: time.Now().UnixNano(),
	})
}

// bucketExemplar returns bucket i's exemplar (nil when absent or
// exemplars are disabled). Index len(bounds) is the +Inf bucket.
func (h *Histogram) bucketExemplar(i int) *Exemplar {
	slots := h.exemplars.Load()
	if slots == nil || i < 0 || i >= len(*slots) {
		return nil
	}
	return (*slots)[i].Load()
}

// NewHistogram returns a standalone histogram over the given bucket
// upper bounds (strictly increasing, finite; +Inf implicit), not
// registered on any Registry — for internal windowed measurements such
// as the adaptive admission limiter's per-interval p99, which must not
// appear on /metrics.
func NewHistogram(bounds []float64) *Histogram { return newHistogram(bounds) }

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("telemetry: histogram needs at least one bucket bound")
	}
	for i, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic(fmt.Sprintf("telemetry: non-finite histogram bound %v", b))
		}
		if i > 0 && b <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram bounds not strictly increasing at %v", b))
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value. NaN observations are dropped — a NaN sum
// would poison every later mean.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	h.counts[sort.SearchFloat64s(h.bounds, v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveDuration records d in seconds, the Prometheus base unit.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// HistSnapshot is a point-in-time copy of a histogram. Each field is
// read atomically but the fields are not mutually synchronized: under
// concurrent writes the totals may disagree by in-flight observations,
// which is the usual (and harmless) Prometheus client behavior.
type HistSnapshot struct {
	Bounds []float64 // upper bounds, +Inf implicit
	Counts []int64   // per-bucket counts (not cumulative), len(Bounds)+1
	Count  int64
	Sum    float64
}

// Snapshot copies the current bucket counts, total and sum.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.Sum(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Merge returns the bucket-wise sum of two snapshots taken from
// histograms with identical bounds — the reduction step that folds
// per-client (or per-shard) histograms into one fleet view. Merging is
// commutative and associative, so quantiles computed from the result
// do not depend on the order clients are folded in.
func (s HistSnapshot) Merge(o HistSnapshot) (HistSnapshot, error) {
	if len(s.Bounds) != len(o.Bounds) {
		return HistSnapshot{}, fmt.Errorf("telemetry: merging histograms with %d vs %d bounds",
			len(s.Bounds), len(o.Bounds))
	}
	for i := range s.Bounds {
		if s.Bounds[i] != o.Bounds[i] {
			return HistSnapshot{}, fmt.Errorf("telemetry: merging histograms with different bounds at %d: %v vs %v",
				i, s.Bounds[i], o.Bounds[i])
		}
	}
	m := HistSnapshot{
		Bounds: s.Bounds,
		Counts: make([]int64, len(s.Counts)),
		Count:  s.Count + o.Count,
		Sum:    s.Sum + o.Sum,
	}
	for i := range s.Counts {
		m.Counts[i] = s.Counts[i] + o.Counts[i]
	}
	return m, nil
}

// Sub returns the observations recorded between prev and s — the
// windowed view a periodic controller needs from a cumulative
// histogram. Both snapshots must come from the same histogram; counts
// are clamped at zero so a mismatched pair degrades to an empty window
// instead of negative buckets.
func (s HistSnapshot) Sub(prev HistSnapshot) HistSnapshot {
	d := HistSnapshot{
		Bounds: s.Bounds,
		Counts: make([]int64, len(s.Counts)),
		Count:  s.Count - prev.Count,
		Sum:    s.Sum - prev.Sum,
	}
	if d.Count < 0 {
		d.Count = 0
	}
	for i := range s.Counts {
		if i < len(prev.Counts) {
			d.Counts[i] = s.Counts[i] - prev.Counts[i]
		} else {
			d.Counts[i] = s.Counts[i]
		}
		if d.Counts[i] < 0 {
			d.Counts[i] = 0
		}
	}
	return d
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear
// interpolation within the containing bucket, the same estimate
// Prometheus's histogram_quantile computes. The first bucket
// interpolates from zero (observations are assumed non-negative);
// quantiles landing in the overflow bucket return the last finite
// bound. A rank that lands exactly on a bucket boundary resolves to
// that boundary (the upper edge of the populated bucket below it) —
// never the upper bound of the empty bucket above, which would
// overstate the quantile by a full bucket width. Returns NaN on an
// empty histogram or out-of-range q.
func (s HistSnapshot) Quantile(q float64) float64 {
	total := int64(0)
	for _, c := range s.Counts {
		total += c
	}
	if total == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	rank := q * float64(total)
	var cum int64
	for i, c := range s.Counts {
		prev := cum
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i == len(s.Bounds) {
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		if c == 0 {
			// The rank sits on this empty bucket's boundary (only
			// reachable at rank 0): walk on to the first populated
			// bucket, whose lower edge is the quantile — returning
			// this bucket's upper bound would overstate it by a full
			// bucket width.
			continue
		}
		return lo + (hi-lo)*(rank-float64(prev))/float64(c)
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Quantile is Snapshot().Quantile(q).
func (h *Histogram) Quantile(q float64) float64 { return h.Snapshot().Quantile(q) }
