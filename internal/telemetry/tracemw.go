package telemetry

import (
	"context"
	"net/http"
	"sync/atomic"
	"time"
)

// admitMark carries the handler-span start time through the middleware
// stack so the admission-wait child span can be closed from inside the
// admission gate (see TraceAdmitted). done latches: the span is
// emitted once even if the mark is hit twice.
type admitMark struct {
	start time.Time
	done  atomic.Bool
}

type admitMarkKey struct{}

// TraceHTTP wraps next with the handler span: it extracts an inbound
// traceparent (continuing the caller's trace), starts a span named
// "METHOD path", stamps the request ID, and on completion records the
// response status. It also plants the admission mark consumed by
// TraceAdmitted. With a nil tracer it returns next unchanged — zero
// cost when tracing is off.
//
// Install it directly under the RequestID middleware and above
// resilience.Wrap, so admission waits, sheds and deadline expiries all
// happen inside the handler span.
func TraceHTTP(t *RequestTracer, next http.Handler) http.Handler {
	if t == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx := r.Context()
		if remote, ok := ExtractTraceParent(r.Header); ok {
			ctx = ContextWithRemoteParent(ctx, remote)
		}
		start := time.Now()
		ctx, span := t.startSpanAt(ctx, r.Method+" "+r.URL.Path, start, false)
		if id := RequestIDFrom(ctx); id != "" {
			span.SetAttr("request_id", id)
		}
		ctx = context.WithValue(ctx, admitMarkKey{}, &admitMark{start: start})
		sw := &traceStatusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r.WithContext(ctx))
		span.SetStatus(sw.code())
		span.End()
	})
}

// TraceAdmitted marks the admission boundary: everything between the
// handler-span start and this point was queueing/admission (limiter
// waits, middleware overhead), emitted as an "admission" child span.
// Shed requests never reach this point and so never get an admission
// span — their handler span carries the shed event instead.
func TraceAdmitted(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		MarkAdmitted(r.Context())
		next.ServeHTTP(w, r)
	})
}

// MarkAdmitted closes the one-shot admission child span for this
// request, if tracing is on and it has not been closed yet.
func MarkAdmitted(ctx context.Context) {
	span := SpanFromContext(ctx)
	if !span.Recording() {
		return
	}
	mark, _ := ctx.Value(admitMarkKey{}).(*admitMark)
	if mark == nil || !mark.done.CompareAndSwap(false, true) {
		return
	}
	admission := span.childAt("admission", mark.start)
	admission.End()
}

// TraceEvent annotates the context's span (no-op without one) — the
// hook resilience middleware uses to stamp sheds and deadline expiries
// onto the request's trace without importing any tracer handle.
func TraceEvent(ctx context.Context, name, detail string) {
	SpanFromContext(ctx).Event(name, detail)
}

// traceStatusWriter captures the response status for the handler span
// without disturbing streaming (Flush) writers.
type traceStatusWriter struct {
	http.ResponseWriter
	status int
}

func (w *traceStatusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *traceStatusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

func (w *traceStatusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *traceStatusWriter) code() int {
	if w.status == 0 {
		return http.StatusOK
	}
	return w.status
}
