package pqueue

// FloatHeap is a plain binary min-heap of (priority, payload) pairs.
// Unlike IndexedHeap it allows duplicate payloads and payloads from a
// sparse id space, which suits tree traversals (range/kNN queries) where
// entries are tree nodes and vertices mixed together.
// The zero value is an empty heap ready to use.
type FloatHeap struct {
	keys []float64
	vals []int64
}

// Len returns the number of queued items.
func (h *FloatHeap) Len() int { return len(h.keys) }

// Reset removes all items, retaining capacity.
func (h *FloatHeap) Reset() {
	h.keys = h.keys[:0]
	h.vals = h.vals[:0]
}

// Push inserts a (key, val) pair.
func (h *FloatHeap) Push(key float64, val int64) {
	h.keys = append(h.keys, key)
	h.vals = append(h.vals, val)
	i := len(h.keys) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.keys[parent] <= h.keys[i] {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

// Pop removes and returns the pair with the smallest key.
// It must only be called when Len() > 0.
func (h *FloatHeap) Pop() (float64, int64) {
	key, val := h.keys[0], h.vals[0]
	last := len(h.keys) - 1
	h.swap(0, last)
	h.keys = h.keys[:last]
	h.vals = h.vals[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && h.keys[l] < h.keys[smallest] {
			smallest = l
		}
		if r < last && h.keys[r] < h.keys[smallest] {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.swap(i, smallest)
		i = smallest
	}
	return key, val
}

// Peek returns the smallest pair without removing it.
// It must only be called when Len() > 0.
func (h *FloatHeap) Peek() (float64, int64) { return h.keys[0], h.vals[0] }

func (h *FloatHeap) swap(i, j int) {
	h.keys[i], h.keys[j] = h.keys[j], h.keys[i]
	h.vals[i], h.vals[j] = h.vals[j], h.vals[i]
}
