package pqueue

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestIndexedHeapBasic(t *testing.T) {
	h := New(10)
	if h.Len() != 0 {
		t.Fatal("new heap not empty")
	}
	h.Push(3, 5.0)
	h.Push(7, 1.0)
	h.Push(2, 3.0)
	if h.Len() != 3 {
		t.Fatalf("Len = %d, want 3", h.Len())
	}
	if !h.Contains(7) || h.Contains(0) {
		t.Fatal("Contains wrong")
	}
	if id, k := h.Peek(); id != 7 || k != 1.0 {
		t.Fatalf("Peek = %d,%v want 7,1", id, k)
	}
	if id, k := h.Pop(); id != 7 || k != 1.0 {
		t.Fatalf("Pop = %d,%v want 7,1", id, k)
	}
	if id, k := h.Pop(); id != 2 || k != 3.0 {
		t.Fatalf("Pop = %d,%v want 2,3", id, k)
	}
	if id, k := h.Pop(); id != 3 || k != 5.0 {
		t.Fatalf("Pop = %d,%v want 3,5", id, k)
	}
	if h.Len() != 0 {
		t.Fatal("heap should be empty")
	}
}

func TestIndexedHeapDecreaseKey(t *testing.T) {
	h := New(5)
	h.Push(0, 10)
	h.Push(1, 20)
	h.Push(0, 5) // decrease
	if k := h.Key(0); k != 5 {
		t.Fatalf("Key(0) = %v, want 5", k)
	}
	h.Push(0, 50) // increase is a no-op
	if k := h.Key(0); k != 5 {
		t.Fatalf("Key(0) after no-op increase = %v, want 5", k)
	}
	if id, k := h.Pop(); id != 0 || k != 5 {
		t.Fatalf("Pop = %d,%v want 0,5", id, k)
	}
	if id, _ := h.Pop(); id != 1 {
		t.Fatalf("Pop = %d, want 1", id)
	}
}

func TestIndexedHeapReset(t *testing.T) {
	h := New(4)
	h.Push(0, 1)
	h.Push(1, 2)
	h.Reset()
	if h.Len() != 0 || h.Contains(0) || h.Contains(1) {
		t.Fatal("Reset did not clear heap")
	}
	h.Push(1, 9)
	if id, k := h.Pop(); id != 1 || k != 9 {
		t.Fatalf("heap unusable after Reset: %d,%v", id, k)
	}
}

// TestIndexedHeapSortsRandom checks the heap against sort.Float64s.
func TestIndexedHeapSortsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(200)
		h := New(n)
		keys := make([]float64, n)
		for i := range keys {
			keys[i] = rng.NormFloat64()
			h.Push(int32(i), keys[i])
		}
		sort.Float64s(keys)
		for i := 0; i < n; i++ {
			_, k := h.Pop()
			if k != keys[i] {
				t.Fatalf("trial %d: pop %d key %v want %v", trial, i, k, keys[i])
			}
		}
	}
}

// TestIndexedHeapDecreaseKeyProperty: after arbitrary pushes and
// decreases, pops come out in non-decreasing key order and each id at
// most once.
func TestIndexedHeapDecreaseKeyProperty(t *testing.T) {
	f := func(seed int64, opsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20
		ops := 10 + int(opsRaw)
		h := New(n)
		for i := 0; i < ops; i++ {
			h.Push(int32(rng.Intn(n)), rng.Float64()*100)
		}
		seen := make(map[int32]bool)
		last := -1.0
		for h.Len() > 0 {
			id, k := h.Pop()
			if seen[id] {
				return false
			}
			seen[id] = true
			if k < last {
				return false
			}
			last = k
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFloatHeapBasic(t *testing.T) {
	var h FloatHeap
	h.Push(3, 30)
	h.Push(1, 10)
	h.Push(2, 20)
	h.Push(1, 11) // duplicate key allowed
	if h.Len() != 4 {
		t.Fatalf("Len = %d, want 4", h.Len())
	}
	if k, _ := h.Peek(); k != 1 {
		t.Fatalf("Peek key = %v, want 1", k)
	}
	k1, _ := h.Pop()
	k2, _ := h.Pop()
	k3, v3 := h.Pop()
	k4, v4 := h.Pop()
	if k1 != 1 || k2 != 1 || k3 != 2 || v3 != 20 || k4 != 3 || v4 != 30 {
		t.Fatalf("pop order wrong: %v %v %v/%v %v/%v", k1, k2, k3, v3, k4, v4)
	}
	h.Push(5, 1)
	h.Reset()
	if h.Len() != 0 {
		t.Fatal("Reset did not clear FloatHeap")
	}
}

func TestFloatHeapSortsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		var h FloatHeap
		n := 1 + rng.Intn(300)
		keys := make([]float64, n)
		for i := range keys {
			keys[i] = rng.NormFloat64()
			h.Push(keys[i], int64(i))
		}
		sort.Float64s(keys)
		for i := 0; i < n; i++ {
			k, _ := h.Pop()
			if k != keys[i] {
				t.Fatalf("trial %d: pop %d key %v want %v", trial, i, k, keys[i])
			}
		}
	}
}

func BenchmarkIndexedHeapPushPop(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 1024
	h := New(n)
	keys := make([]float64, n)
	for i := range keys {
		keys[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < n; j++ {
			h.Push(int32(j), keys[j])
		}
		for h.Len() > 0 {
			h.Pop()
		}
	}
}
