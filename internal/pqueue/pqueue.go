// Package pqueue provides an indexed binary min-heap keyed by float64
// priorities. It is the workhorse of every search algorithm in this
// repository (Dijkstra, A*, CH witness search, kNN traversal):
// DecreaseKey avoids the duplicate-entry growth of container/heap-based
// queues on dense road networks.
package pqueue

// IndexedHeap is a binary min-heap over items identified by dense int32
// ids in [0, n). Each id may appear at most once. The zero value is not
// usable; construct with New.
type IndexedHeap struct {
	ids  []int32   // heap order
	keys []float64 // keys[i] is the priority of ids[i]
	pos  []int32   // pos[id] is the heap slot of id, or -1
}

// New returns a heap admitting ids in [0, n).
func New(n int) *IndexedHeap {
	pos := make([]int32, n)
	for i := range pos {
		pos[i] = -1
	}
	return &IndexedHeap{pos: pos}
}

// Len returns the number of queued items.
func (h *IndexedHeap) Len() int { return len(h.ids) }

// Contains reports whether id is currently queued.
func (h *IndexedHeap) Contains(id int32) bool { return h.pos[id] >= 0 }

// Key returns the current priority of a queued id.
// It must only be called when Contains(id) is true.
func (h *IndexedHeap) Key(id int32) float64 { return h.keys[h.pos[id]] }

// Reset removes all items, retaining capacity. It runs in O(len).
func (h *IndexedHeap) Reset() {
	for _, id := range h.ids {
		h.pos[id] = -1
	}
	h.ids = h.ids[:0]
	h.keys = h.keys[:0]
}

// Push inserts id with the given priority, or lowers the priority if id
// is already queued with a larger key (a combined push/decrease-key).
// Pushing a queued id with a larger key is a no-op.
func (h *IndexedHeap) Push(id int32, key float64) {
	if p := h.pos[id]; p >= 0 {
		if key < h.keys[p] {
			h.keys[p] = key
			h.up(int(p))
		}
		return
	}
	h.ids = append(h.ids, id)
	h.keys = append(h.keys, key)
	h.pos[id] = int32(len(h.ids) - 1)
	h.up(len(h.ids) - 1)
}

// Pop removes and returns the id with the smallest priority.
// It must only be called when Len() > 0.
func (h *IndexedHeap) Pop() (int32, float64) {
	id, key := h.ids[0], h.keys[0]
	last := len(h.ids) - 1
	h.swap(0, last)
	h.ids = h.ids[:last]
	h.keys = h.keys[:last]
	h.pos[id] = -1
	if last > 0 {
		h.down(0)
	}
	return id, key
}

// Peek returns the id with the smallest priority without removing it.
// It must only be called when Len() > 0.
func (h *IndexedHeap) Peek() (int32, float64) { return h.ids[0], h.keys[0] }

func (h *IndexedHeap) swap(i, j int) {
	h.ids[i], h.ids[j] = h.ids[j], h.ids[i]
	h.keys[i], h.keys[j] = h.keys[j], h.keys[i]
	h.pos[h.ids[i]] = int32(i)
	h.pos[h.ids[j]] = int32(j)
}

func (h *IndexedHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.keys[parent] <= h.keys[i] {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *IndexedHeap) down(i int) {
	n := len(h.ids)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.keys[l] < h.keys[smallest] {
			smallest = l
		}
		if r < n && h.keys[r] < h.keys[smallest] {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}
