package deepwalk

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/vecmath"
)

func smallConfig(seed int64) Config {
	cfg := DefaultConfig(seed)
	cfg.Dim = 16
	cfg.WalksPerVertex = 4
	cfg.WalkLength = 20
	cfg.Epochs = 1
	return cfg
}

func TestTrainProducesFiniteEmbeddings(t *testing.T) {
	g, err := gen.Grid(10, 10, gen.DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	m, err := Train(g, smallConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != g.NumVertices() || m.Dim() != 16 {
		t.Fatalf("shape %dx%d", m.Rows(), m.Dim())
	}
	for _, x := range m.Data() {
		if x != x || x > 1e6 || x < -1e6 {
			t.Fatalf("implausible embedding value %v", x)
		}
	}
}

// TestNeighborhoodSimilarity: DeepWalk embeds "social" proximity, so
// adjacent vertices should have higher dot-product similarity than
// far-apart vertices on average.
func TestNeighborhoodSimilarity(t *testing.T) {
	g, err := gen.Grid(12, 12, gen.DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	m, err := Train(g, smallConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	n := int32(g.NumVertices())
	var nearSim, farSim float64
	var nearCnt, farCnt int
	for v := int32(0); v < n; v += 3 {
		ts, _ := g.Neighbors(v)
		for _, u := range ts {
			nearSim += vecmath.Dot(m.Row(v), m.Row(u))
			nearCnt++
		}
		far := (v + n/2) % n
		farSim += vecmath.Dot(m.Row(v), m.Row(far))
		farCnt++
	}
	if nearSim/float64(nearCnt) <= farSim/float64(farCnt) {
		t.Fatalf("adjacent similarity %.4f not above far similarity %.4f",
			nearSim/float64(nearCnt), farSim/float64(farCnt))
	}
}

func TestTrainValidation(t *testing.T) {
	g, err := gen.Grid(5, 5, gen.DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Dim: 0, WalksPerVertex: 1, WalkLength: 10, Window: 2, Negatives: 1, LR: 0.01, Epochs: 1},
		{Dim: 8, WalksPerVertex: 0, WalkLength: 10, Window: 2, Negatives: 1, LR: 0.01, Epochs: 1},
		{Dim: 8, WalksPerVertex: 1, WalkLength: 1, Window: 2, Negatives: 1, LR: 0.01, Epochs: 1},
		{Dim: 8, WalksPerVertex: 1, WalkLength: 10, Window: 0, Negatives: 1, LR: 0.01, Epochs: 1},
		{Dim: 8, WalksPerVertex: 1, WalkLength: 10, Window: 2, Negatives: 1, LR: -1, Epochs: 1},
	}
	for i, cfg := range bad {
		cfg.Seed = 1
		if _, err := Train(g, cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := Train(graph.NewBuilder(0, 0).Build(), DefaultConfig(1)); err == nil {
		t.Error("empty graph accepted")
	}
}

func TestDeterministic(t *testing.T) {
	g, err := gen.Grid(8, 8, gen.DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	a, err := Train(g, smallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(g, smallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Data() {
		if a.Data()[i] != b.Data()[i] {
			t.Fatal("same seed produced different embeddings")
		}
	}
}
