// Package deepwalk implements DeepWalk (Perozzi et al., KDD 2014):
// truncated random walks over the graph feed a skip-gram model trained
// with negative sampling. It backs the paper's DR ablation baseline —
// a social embedding whose cosine-style geometry captures neighborhood
// similarity, which Section VII-B1 shows is insufficient for distance
// regression without a downstream network.
package deepwalk

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/emb"
	"repro/internal/graph"
)

// Config controls DeepWalk training.
type Config struct {
	// Dim is the embedding dimension (paper baseline: 64).
	Dim int
	// WalksPerVertex and WalkLength shape the corpus (defaults 8, 40).
	WalksPerVertex, WalkLength int
	// Window is the skip-gram context radius (default 5).
	Window int
	// Negatives is the number of negative samples per pair (default 5).
	Negatives int
	// LR is the initial learning rate, linearly decayed (default 0.025).
	LR float64
	// Epochs is the number of passes over the walk corpus (default 2).
	Epochs int
	// Seed fixes corpus generation and initialization.
	Seed int64
}

// DefaultConfig returns the standard DeepWalk hyper-parameters.
func DefaultConfig(seed int64) Config {
	return Config{
		Dim: 64, WalksPerVertex: 8, WalkLength: 40,
		Window: 5, Negatives: 5, LR: 0.025, Epochs: 2, Seed: seed,
	}
}

// Train learns vertex embeddings for g and returns the input-side
// embedding matrix.
func Train(g *graph.Graph, cfg Config) (*emb.Matrix, error) {
	n := g.NumVertices()
	switch {
	case n == 0:
		return nil, fmt.Errorf("deepwalk: empty graph")
	case cfg.Dim < 1:
		return nil, fmt.Errorf("deepwalk: Dim must be >= 1, got %d", cfg.Dim)
	case cfg.WalksPerVertex < 1 || cfg.WalkLength < 2:
		return nil, fmt.Errorf("deepwalk: need WalksPerVertex >= 1 and WalkLength >= 2")
	case cfg.Window < 1 || cfg.Negatives < 1 || cfg.LR <= 0 || cfg.Epochs < 1:
		return nil, fmt.Errorf("deepwalk: invalid window/negatives/lr/epochs")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	in := emb.NewMatrix(n, cfg.Dim)
	out := emb.NewMatrix(n, cfg.Dim)
	in.RandomInit(rng, 0.5/float64(cfg.Dim))

	// Unigram^0.75 negative-sampling table over vertex degrees.
	table := buildUnigramTable(g, rng)

	// Walk corpus.
	walks := make([][]int32, 0, n*cfg.WalksPerVertex)
	for w := 0; w < cfg.WalksPerVertex; w++ {
		perm := rng.Perm(n)
		for _, start := range perm {
			walk := make([]int32, 0, cfg.WalkLength)
			v := int32(start)
			walk = append(walk, v)
			for len(walk) < cfg.WalkLength {
				ts, _ := g.Neighbors(v)
				if len(ts) == 0 {
					break
				}
				v = ts[rng.Intn(len(ts))]
				walk = append(walk, v)
			}
			walks = append(walks, walk)
		}
	}

	// Skip-gram with negative sampling.
	totalSteps := cfg.Epochs * len(walks)
	step := 0
	gradC := make([]float64, cfg.Dim)
	for e := 0; e < cfg.Epochs; e++ {
		for _, walk := range walks {
			lr := cfg.LR * (1 - float64(step)/float64(totalSteps+1))
			if lr < cfg.LR*0.01 {
				lr = cfg.LR * 0.01
			}
			step++
			for i, center := range walk {
				lo := i - cfg.Window
				if lo < 0 {
					lo = 0
				}
				hi := i + cfg.Window
				if hi >= len(walk) {
					hi = len(walk) - 1
				}
				vc := in.Row(center)
				for j := lo; j <= hi; j++ {
					if j == i {
						continue
					}
					for k := range gradC {
						gradC[k] = 0
					}
					// Positive pair.
					sgdPair(vc, out.Row(walk[j]), 1, lr, gradC)
					// Negatives.
					for neg := 0; neg < cfg.Negatives; neg++ {
						nv := table[rng.Intn(len(table))]
						if nv == walk[j] {
							continue
						}
						sgdPair(vc, out.Row(nv), 0, lr, gradC)
					}
					for k := range vc {
						vc[k] += gradC[k]
					}
				}
			}
		}
	}
	return in, nil
}

// sgdPair applies one logistic SGD update for (center, context) with
// label 1 (positive) or 0 (negative), accumulating the center gradient.
func sgdPair(vc, uo []float64, label, lr float64, gradC []float64) {
	var dot float64
	for k := range vc {
		dot += vc[k] * uo[k]
	}
	pred := 1 / (1 + math.Exp(-dot))
	g := lr * (label - pred)
	for k := range vc {
		gradC[k] += g * uo[k]
		uo[k] += g * vc[k]
	}
}

func buildUnigramTable(g *graph.Graph, rng *rand.Rand) []int32 {
	n := g.NumVertices()
	const tableSize = 1 << 17
	table := make([]int32, 0, tableSize)
	var total float64
	pow := make([]float64, n)
	for v := 0; v < n; v++ {
		pow[v] = math.Pow(float64(g.Degree(int32(v))+1), 0.75)
		total += pow[v]
	}
	for v := 0; v < n; v++ {
		count := int(pow[v] / total * tableSize)
		if count < 1 {
			count = 1
		}
		for i := 0; i < count; i++ {
			table = append(table, int32(v))
		}
	}
	return table
}
