package bench

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"repro/internal/metrics"
)

// Suite runs the comparison exhibits that share the comparator builds —
// Table III (error + query time), Table IV (index size + build time),
// Figure 13 (time by distance scale), Figure 15 (error CDF) and
// Figure 17 (errors by distance scale) — building each dataset's
// methods exactly once. This is the economical way to regenerate the
// paper's headline comparison on a single core.
func Suite(w io.Writer, cfg Config) error {
	dss, err := loadDatasets(cfg)
	if err != nil {
		return err
	}
	thresholds := []float64{0.005, 0.01, 0.02, 0.05, 0.10, 0.20, 0.50}

	for _, ds := range dss {
		fmt.Fprintf(w, "######## dataset %s (%d vertices, %d edges)\n\n",
			ds.name, ds.g.NumVertices(), ds.g.NumEdges())
		suite, err := buildSuite(ds, cfg)
		if err != nil {
			return err
		}
		pairs := randomPairs(ds.g, cfg.Queries, cfg.Seed+int64(len(ds.name)))
		perGroup := cfg.Queries / ds.groups
		if perGroup < 50 {
			perGroup = 50
		}
		groups, diam := distanceGroups(ds.g, ds.groups, perGroup, cfg.Seed)

		// Table III + IV rows.
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "Method\tRel.err(%)\tQuery time\tIndex (MB)\tBuild time")
		for _, m := range suite {
			st := metrics.Evaluate(metrics.EstimatorFunc(m.estimate), pairs)
			errStr := fmt.Sprintf("%.2f", st.MeanRel*100)
			if m.exact {
				errStr = "0 (exact)"
			}
			fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%v\n", m.name, errStr,
				fmtNanos(timeEstimator(m.estimate, pairs)),
				fmtBytes(m.indexBytes), m.buildTime.Round(time.Millisecond))
		}
		if err := tw.Flush(); err != nil {
			return err
		}

		// Figure 13: query time by distance group.
		fmt.Fprintf(w, "\nquery time by distance scale (diameter %.0f):\n", diam)
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprint(tw, "Method\t")
		for gi := range groups {
			fmt.Fprintf(tw, "≤%.0f\t", diam*float64(gi+1)/float64(ds.groups))
		}
		fmt.Fprintln(tw)
		for _, m := range suite {
			fmt.Fprintf(tw, "%s\t", m.name)
			for _, gp := range groups {
				fmt.Fprintf(tw, "%s\t", fmtNanos(timeEstimator(m.estimate, gp)))
			}
			fmt.Fprintln(tw)
		}
		if err := tw.Flush(); err != nil {
			return err
		}

		// Figure 15: CDF of relative error.
		fmt.Fprintln(w, "\ncumulative % of queries within error threshold:")
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprint(tw, "Method\t")
		for _, th := range thresholds {
			fmt.Fprintf(tw, "≤%.1f%%\t", th*100)
		}
		fmt.Fprintln(tw)
		for _, m := range suite {
			if m.exact {
				continue
			}
			cdf := metrics.CDF(metrics.EstimatorFunc(m.estimate), pairs, thresholds)
			fmt.Fprintf(tw, "%s\t", m.name)
			for _, c := range cdf {
				fmt.Fprintf(tw, "%.1f%%\t", c*100)
			}
			fmt.Fprintln(tw)
		}
		if err := tw.Flush(); err != nil {
			return err
		}

		// Figure 17: rel (line) and abs (bar) errors by distance group.
		fmt.Fprintln(w, "\nerrors by distance scale:")
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		for _, m := range suite {
			if m.exact {
				continue
			}
			fmt.Fprintf(tw, "%s rel%%\t", m.name)
			for _, gp := range groups {
				st := metrics.Evaluate(metrics.EstimatorFunc(m.estimate), gp)
				fmt.Fprintf(tw, "%.2f\t", st.MeanRel*100)
			}
			fmt.Fprintln(tw)
			fmt.Fprintf(tw, "%s abs\t", m.name)
			for _, gp := range groups {
				st := metrics.Evaluate(metrics.EstimatorFunc(m.estimate), gp)
				fmt.Fprintf(tw, "%.1f\t", st.MeanAbs)
			}
			fmt.Fprintln(tw)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}
