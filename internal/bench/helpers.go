package bench

import (
	"math/rand"
	"sort"

	"repro/internal/sssp"
)

func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// wsFrom wraps Workspace.FromSource for the kNN helpers.
func wsFrom(ws *sssp.Workspace, s int32, scratch []float64) []float64 {
	return ws.FromSource(s, scratch)
}

// exactKNN returns the k targets with the smallest exact distances
// (distance array indexed by vertex id), ties broken by vertex id.
func exactKNN(dist []float64, targets []int32, k int) []int32 {
	order := append([]int32(nil), targets...)
	sort.Slice(order, func(a, b int) bool {
		da, db := dist[order[a]], dist[order[b]]
		if da != db {
			return da < db
		}
		return order[a] < order[b]
	})
	if k > len(order) {
		k = len(order)
	}
	return order[:k]
}

// sortByKey orders the index slice ascending by its key, ties by index.
func sortByKey(order []int32, keys []float64) {
	sort.Slice(order, func(a, b int) bool {
		ka, kb := keys[order[a]], keys[order[b]]
		if ka != kb {
			return ka < kb
		}
		return order[a] < order[b]
	})
}
