package bench

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/metrics"
)

// tinyConfig keeps every experiment under a few seconds.
func tinyConfig() Config {
	return Config{Scale: 0.18, Queries: 300, Seed: 42, Quick: true}
}

func TestLoadDatasets(t *testing.T) {
	dss, err := loadDatasets(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(dss) != 3 {
		t.Fatalf("got %d datasets", len(dss))
	}
	if dss[0].groups != 5 || dss[1].groups != 7 {
		t.Fatal("distance-scale group counts wrong")
	}
	if !(dss[0].g.NumVertices() < dss[1].g.NumVertices() &&
		dss[1].g.NumVertices() < dss[2].g.NumVertices()) {
		t.Fatal("dataset size ladder broken")
	}
	if _, err := loadDatasets(tinyConfig(), "nope"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestRandomPairsExact(t *testing.T) {
	p, err := gen.PresetByName("bj-mini")
	if err != nil {
		t.Fatal(err)
	}
	g, err := p.BuildScaled(0.15)
	if err != nil {
		t.Fatal(err)
	}
	pairs := randomPairs(g, 200, 1)
	if len(pairs) != 200 {
		t.Fatalf("got %d pairs", len(pairs))
	}
	for _, pr := range pairs {
		if pr.S == pr.T || pr.Dist <= 0 {
			t.Fatalf("bad pair %+v", pr)
		}
	}
}

func TestDistanceGroups(t *testing.T) {
	p, err := gen.PresetByName("bj-mini")
	if err != nil {
		t.Fatal(err)
	}
	g, err := p.BuildScaled(0.15)
	if err != nil {
		t.Fatal(err)
	}
	groups, diam := distanceGroups(g, 5, 50, 1)
	if diam <= 0 {
		t.Fatal("diameter not positive")
	}
	width := diam / 5
	for gi, pairs := range groups {
		for _, pr := range pairs {
			lo := width * float64(gi)
			hi := width * float64(gi+1)
			if gi == 4 {
				// The double-sweep diameter is a lower bound; pairs
				// beyond it clamp into the last group.
				hi = diam * 2
			}
			if pr.Dist < lo || pr.Dist > hi {
				t.Fatalf("group %d pair distance %v outside [%v,%v]", gi, pr.Dist, lo, hi)
			}
		}
	}
	// Middle groups are easy to fill.
	if len(groups[1]) == 0 || len(groups[2]) == 0 {
		t.Fatal("common distance groups empty")
	}
}

func TestTimeEstimatorPositive(t *testing.T) {
	pairs := randomPairsForTiming()
	ns := timeEstimator(func(s, t int32) float64 { return float64(s + t) }, pairs)
	if ns <= 0 {
		t.Fatalf("timer returned %v", ns)
	}
	if got := timeEstimator(nil2, nil); got != 0 {
		t.Fatalf("empty pairs should time 0, got %v", got)
	}
}

func nil2(s, t int32) float64 { return 0 }

func randomPairsForTiming() []metrics.Pair {
	out := make([]metrics.Pair, 256)
	for i := range out {
		out[i] = metrics.Pair{S: int32(i), T: int32(i + 1), Dist: 1}
	}
	return out
}

// Experiment smoke tests: every table/figure function must run to
// completion and produce non-empty output at tiny scale.
func TestExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are seconds-long each")
	}
	cfg := tinyConfig()
	exps := map[string]func(io.Writer, Config) error{
		"table2":             Table2,
		"fig9":               Fig9,
		"fig11":              Fig11,
		"fig12":              Fig12,
		"fig15":              Fig15,
		"fig16-knn":          Fig16KNN,
		"ablation-optimizer": AblationOptimizer,
		"suite":              Suite,
		"ablation-compact":   AblationCompact,
		"ablation-hybrid":    AblationHybrid,
		"ablation-topology":  AblationTopology,
	}
	for name, f := range exps {
		name, f := name, f
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := f(&buf, cfg); err != nil {
				t.Fatal(err)
			}
			if buf.Len() == 0 {
				t.Fatal("no output")
			}
		})
	}
}

// TestTable3Shape checks the headline orderings on a tiny instance: the
// exact methods report zero error and RNE reports a low one.
func TestTable3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the full comparator suite")
	}
	var buf bytes.Buffer
	if err := Table3(&buf, tinyConfig()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, needle := range []string{"H2H", "CH", "ACH", "LT", "RNE", "DistanceOracle", "0 (exact)"} {
		if !strings.Contains(out, needle) {
			t.Fatalf("Table3 output missing %q:\n%s", needle, out)
		}
	}
}
