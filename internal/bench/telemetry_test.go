package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func TestTelemetrySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(wd)

	var buf bytes.Buffer
	if err := TelemetrySmoke(&buf, tinyConfig()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "latency") {
		t.Fatalf("no latency summary in output:\n%s", buf.String())
	}

	raw, err := os.ReadFile("BENCH_telemetry.json")
	if err != nil {
		t.Fatal(err)
	}
	var rep telemetryReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Queries == 0 || rep.BuildSecs <= 0 {
		t.Fatalf("empty report: %+v", rep)
	}
	if rep.LatencyP50US <= 0 || rep.LatencyP99US < rep.LatencyP50US {
		t.Fatalf("implausible latency percentiles: %+v", rep)
	}
	if rep.RelErrP99 < rep.RelErrP50 {
		t.Fatalf("error percentiles not monotone: %+v", rep)
	}
}
