package bench

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"repro/internal/metrics"
)

// Table2 prints the dataset statistics table (paper Table II),
// comparing the paper's real networks with the synthetic stand-ins.
func Table2(w io.Writer, cfg Config) error {
	dss, err := loadDatasets(cfg)
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Dataset\tStands for\tPaper |V|\tPaper |E|\t|V|\t|E|")
	paperSizes := map[string][2]int{
		"bj-mini":  {338024, 881050},
		"fla-mini": {1070376, 2687902},
		"usw-mini": {6262104, 15119284},
	}
	for _, ds := range dss {
		ps := paperSizes[ds.name]
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%d\n",
			ds.name, ds.paper, ps[0], ps[1], ds.g.NumVertices(), ds.g.NumEdges())
	}
	return tw.Flush()
}

// Table3 prints mean relative error and mean query time for every
// method on every dataset (paper Table III).
func Table3(w io.Writer, cfg Config) error {
	dss, err := loadDatasets(cfg)
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Dataset\tMethod\tRel.err(%)\tQuery time")
	for _, ds := range dss {
		pairs := randomPairs(ds.g, cfg.Queries, cfg.Seed+int64(len(ds.name)))
		suite, err := buildSuite(ds, cfg)
		if err != nil {
			return err
		}
		for _, m := range suite {
			st := metrics.Evaluate(metrics.EstimatorFunc(m.estimate), pairs)
			ns := timeEstimator(m.estimate, pairs)
			errStr := fmt.Sprintf("%.2f", st.MeanRel*100)
			if m.exact {
				errStr = "0 (exact)"
			}
			fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n", ds.name, m.name, errStr, fmtNanos(ns))
		}
		fmt.Fprintln(tw, "\t\t\t")
	}
	return tw.Flush()
}

// Table4 prints index size and building time per method and dataset
// (paper Table IV).
func Table4(w io.Writer, cfg Config) error {
	dss, err := loadDatasets(cfg)
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Dataset\tMethod\tIndex (MB)\tBuild time")
	for _, ds := range dss {
		suite, err := buildSuite(ds, cfg)
		if err != nil {
			return err
		}
		for _, m := range suite {
			if m.indexBytes == 0 && m.buildTime == 0 {
				continue // coordinate baselines have no index
			}
			fmt.Fprintf(tw, "%s\t%s\t%s\t%v\n",
				ds.name, m.name, fmtBytes(m.indexBytes), m.buildTime.Round(time.Millisecond))
		}
		fmt.Fprintln(tw, "\t\t\t")
	}
	return tw.Flush()
}

// Fig13 prints mean query time per distance-scale group for every
// method (paper Figure 13: Q=5 groups on BJ, Q=7 on the larger sets).
func Fig13(w io.Writer, cfg Config) error {
	dss, err := loadDatasets(cfg)
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	for _, ds := range dss {
		perGroup := cfg.Queries / ds.groups
		if perGroup < 50 {
			perGroup = 50
		}
		groups, diam := distanceGroups(ds.g, ds.groups, perGroup, cfg.Seed)
		suite, err := buildSuite(ds, cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s (diameter %.0f)\t", ds.name, diam)
		for gi := range groups {
			fmt.Fprintf(tw, "≤%.0f\t", diam*float64(gi+1)/float64(ds.groups))
		}
		fmt.Fprintln(tw)
		for _, m := range suite {
			fmt.Fprintf(tw, "%s\t", m.name)
			for _, pairs := range groups {
				fmt.Fprintf(tw, "%s\t", fmtNanos(timeEstimator(m.estimate, pairs)))
			}
			fmt.Fprintln(tw)
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// Fig15 prints the cumulative percentage of queries under each error
// threshold for the approximate methods (paper Figure 15).
func Fig15(w io.Writer, cfg Config) error {
	dss, err := loadDatasets(cfg)
	if err != nil {
		return err
	}
	thresholds := []float64{0.005, 0.01, 0.02, 0.05, 0.10, 0.20, 0.50}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	for _, ds := range dss {
		pairs := randomPairs(ds.g, cfg.Queries, cfg.Seed+7)
		suite, err := buildSuite(ds, cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t", ds.name)
		for _, th := range thresholds {
			fmt.Fprintf(tw, "≤%.1f%%\t", th*100)
		}
		fmt.Fprintln(tw)
		for _, m := range suite {
			if m.exact {
				continue
			}
			cdf := metrics.CDF(metrics.EstimatorFunc(m.estimate), pairs, thresholds)
			fmt.Fprintf(tw, "%s\t", m.name)
			for _, c := range cdf {
				fmt.Fprintf(tw, "%.1f%%\t", c*100)
			}
			fmt.Fprintln(tw)
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// Fig17 prints per-distance-scale mean relative (line) and absolute
// (bar) errors for the approximate methods (paper Figure 17).
func Fig17(w io.Writer, cfg Config) error {
	dss, err := loadDatasets(cfg)
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	for _, ds := range dss {
		perGroup := cfg.Queries / ds.groups
		if perGroup < 50 {
			perGroup = 50
		}
		groups, diam := distanceGroups(ds.g, ds.groups, perGroup, cfg.Seed+13)
		suite, err := buildSuite(ds, cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t", ds.name)
		for gi := range groups {
			fmt.Fprintf(tw, "≤%.0f\t", diam*float64(gi+1)/float64(ds.groups))
		}
		fmt.Fprintln(tw)
		for _, m := range suite {
			if m.exact {
				continue
			}
			fmt.Fprintf(tw, "%s rel%%\t", m.name)
			for _, pairs := range groups {
				st := metrics.Evaluate(metrics.EstimatorFunc(m.estimate), pairs)
				fmt.Fprintf(tw, "%.2f\t", st.MeanRel*100)
			}
			fmt.Fprintln(tw)
			fmt.Fprintf(tw, "%s abs\t", m.name)
			for _, pairs := range groups {
				st := metrics.Evaluate(metrics.EstimatorFunc(m.estimate), pairs)
				fmt.Fprintf(tw, "%.1f\t", st.MeanAbs)
			}
			fmt.Fprintln(tw)
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}
