package bench

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"text/tabwriter"
	"time"

	"repro/internal/core"
	"repro/internal/deepwalk"
	"repro/internal/dr"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/gtree"
	"repro/internal/index"
	"repro/internal/kdtree"
	"repro/internal/metrics"
	"repro/internal/oracle"
	"repro/internal/partition"
	"repro/internal/sample"
	"repro/internal/sssp"
)

// ablationGraph builds the BJ stand-in (all Section VII-B ablations run
// on BJ in the paper).
func ablationGraph(cfg Config) (*graph.Graph, error) {
	p, err := gen.PresetByName("bj-mini")
	if err != nil {
		return nil, err
	}
	scale := cfg.Scale
	if cfg.Quick && scale > 0.3 {
		scale = 0.3
	}
	return p.BuildScaled(scale)
}

// ablationOptions returns the ablation training configuration.
func ablationOptions(cfg Config) core.Options {
	opt := core.DefaultOptions(cfg.Seed)
	opt.Dim = 64
	if cfg.Quick {
		opt.Dim = 32
		opt.Epochs = 5
		opt.VertexSampleRatio = 60
		opt.FineTuneRounds = 4
		opt.HierSampleCap = 15000
		opt.ValidationPairs = 400
	}
	return opt
}

// Fig7 quantifies the embedding-layout comparison of Figure 7: a d=2
// RNE trained flat collapses (low spread, poor distance correlation)
// while the hierarchical one preserves the global layout.
func Fig7(w io.Writer, cfg Config) error {
	g, err := ablationGraph(cfg)
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Model\tRel.err(%)\tSpread\tNote")
	for _, hier := range []bool{false, true} {
		opt := ablationOptions(cfg)
		opt.Dim = 2
		opt.Hierarchical = hier
		opt.ActiveFineTune = false
		if !hier {
			opt.VertexStrategy = core.VertexRandom
		}
		m, st, err := core.Build(g, opt)
		if err != nil {
			return err
		}
		name := "RNE-Naive d=2"
		if hier {
			name = "RNE-Hier d=2"
		}
		fmt.Fprintf(tw, "%s\t%.2f\t%.3f\t%s\n", name, st.Validation.MeanRel*100,
			embeddingSpread(m), "spread = mean pairwise / max pairwise L1")
	}
	return tw.Flush()
}

// embeddingSpread measures how evenly the embedding fills its bounding
// region: the mean pairwise L1 distance of a vertex sample divided by
// the sample maximum. Collapsed embeddings (Figure 7b) score low.
func embeddingSpread(m *core.Model) float64 {
	rng := rand.New(rand.NewSource(1))
	n := m.NumVertices()
	const samples = 2000
	var sum, max float64
	for i := 0; i < samples; i++ {
		a := int32(rng.Intn(n))
		b := int32(rng.Intn(n))
		d := m.Estimate(a, b)
		sum += d
		if d > max {
			max = d
		}
	}
	if max == 0 {
		return 0
	}
	return sum / samples / max
}

// Fig8 prints the per-distance-bucket sample share and relative error
// before and after active fine-tuning (paper Figure 8).
func Fig8(w io.Writer, cfg Config) error {
	g, err := ablationGraph(cfg)
	if err != nil {
		return err
	}
	pairs := randomPairs(g, cfg.Queries, cfg.Seed+3)
	const buckets = 10
	counts := make([]int, buckets)
	var maxDist float64
	for _, p := range pairs {
		if p.Dist > maxDist {
			maxDist = p.Dist
		}
	}
	for _, p := range pairs {
		b := int(p.Dist / maxDist * buckets)
		if b >= buckets {
			b = buckets - 1
		}
		counts[b]++
	}

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "Bucket\t")
	for b := 0; b < buckets; b++ {
		fmt.Fprintf(tw, "%d\t", b)
	}
	fmt.Fprintln(tw)
	fmt.Fprint(tw, "Random-pair share(%)\t")
	for _, c := range counts {
		fmt.Fprintf(tw, "%.1f\t", 100*float64(c)/float64(len(pairs)))
	}
	fmt.Fprintln(tw)

	for _, aft := range []bool{false, true} {
		opt := ablationOptions(cfg)
		opt.ActiveFineTune = aft
		m, _, err := core.Build(g, opt)
		if err != nil {
			return err
		}
		bs := metrics.EvaluateBuckets(metrics.EstimatorFunc(m.Estimate), pairs, buckets, maxDist)
		label := "rel.err before AFT(%)"
		if aft {
			label = "rel.err after AFT(%)"
		}
		fmt.Fprintf(tw, "%s\t", label)
		for _, b := range bs {
			fmt.Fprintf(tw, "%.2f\t", b.MeanRel*100)
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// Fig9 varies the representation metric L_p (paper Figure 9): L1 should
// come out lowest.
func Fig9(w io.Writer, cfg Config) error {
	g, err := ablationGraph(cfg)
	if err != nil {
		return err
	}
	ps := []float64{0.5, 1, 2, 3, 4, 5}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Metric\tRel.err(%)")
	for _, p := range ps {
		opt := ablationOptions(cfg)
		opt.P = p
		_, st, err := core.Build(g, opt)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "L%.1f\t%.2f\n", p, st.Validation.MeanRel*100)
	}
	return tw.Flush()
}

// Fig10 varies the embedding dimension d, reporting validation error at
// increasing sample budgets (paper Figure 10).
func Fig10(w io.Writer, cfg Config) error {
	g, err := ablationGraph(cfg)
	if err != nil {
		return err
	}
	dims := []int{32, 64, 128, 256, 512}
	chunks := 6
	if cfg.Quick {
		dims = []int{16, 32, 64}
		chunks = 4
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Model\tsamples\trel.err(%)")
	for _, d := range dims {
		opt := ablationOptions(cfg)
		opt.Dim = d
		tr, err := core.NewTrainer(g, opt)
		if err != nil {
			return err
		}
		tr.RunHierPhase()
		chunk := int(opt.VertexSampleRatio * float64(g.NumVertices()) / float64(chunks))
		for c := 0; c < chunks; c++ {
			samples := tr.GenVertexSamples(chunk)
			for e := 0; e < opt.Epochs/2+1; e++ {
				tr.VertexStep(samples, opt.LR/float64(opt.Dim)/(1+0.5*float64(e)))
			}
			fmt.Fprintf(tw, "RNE%d\t%d\t%.2f\n", d, tr.SamplesUsed(), tr.Validate().MeanRel*100)
		}
	}
	return tw.Flush()
}

// Fig11 compares RNE-Naive and RNE-Hier, each with and without active
// fine-tuning, tracking validation error against samples consumed
// (paper Figure 11).
func Fig11(w io.Writer, cfg Config) error {
	g, err := ablationGraph(cfg)
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Model\tsamples\trel.err(%)")
	for _, hier := range []bool{false, true} {
		opt := ablationOptions(cfg)
		opt.Hierarchical = hier
		if !hier {
			opt.VertexStrategy = core.VertexRandom
		}
		tr, err := core.NewTrainer(g, opt)
		if err != nil {
			return err
		}
		name := "RNE-Naive"
		if hier {
			name = "RNE-Hier"
			tr.RunHierPhase()
			fmt.Fprintf(tw, "%s\t%d\t%.2f\n", name, tr.SamplesUsed(), tr.Validate().MeanRel*100)
		}
		chunks := 5
		chunk := int(opt.VertexSampleRatio * float64(g.NumVertices()) / float64(chunks))
		lrBase := opt.LR / float64(opt.Dim)
		for c := 0; c < chunks; c++ {
			samples := tr.GenVertexSamples(chunk)
			for e := 0; e < opt.Epochs; e++ {
				lr := lrBase / (1 + 0.5*float64(e))
				if hier {
					tr.VertexStep(samples, lr)
				} else {
					tr.FlatStepAllLevels(samples, lr)
				}
			}
			fmt.Fprintf(tw, "%s\t%d\t%.2f\n", name, tr.SamplesUsed(), tr.Validate().MeanRel*100)
		}
		// Active fine-tuning continuation (the red dashed segments).
		for k := 0; k < opt.FineTuneRounds; k++ {
			tr.RunFineTuneRound(k)
		}
		fmt.Fprintf(tw, "%s-AFT\t%d\t%.2f\n", name, tr.SamplesUsed(), tr.Validate().MeanRel*100)
	}
	return tw.Flush()
}

// Fig12 compares landmark-based vertex-phase sampling at |U| = 10^1..4
// against uniform random pairs, tracking error per epoch (paper
// Figure 12). All models share the hierarchy-phase initialization seed.
func Fig12(w io.Writer, cfg Config) error {
	g, err := ablationGraph(cfg)
	if err != nil {
		return err
	}
	type variant struct {
		name      string
		landmarks int
		random    bool
	}
	variants := []variant{
		{"LM10^1", 10, false},
		{"LM10^2", 100, false},
		{"LM10^3", 1000, false},
		{"LM10^4", 10000, false},
		{"Random", 0, true},
	}
	epochs := 8
	if cfg.Quick {
		epochs = 5
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "Model\t")
	for e := 1; e <= epochs; e++ {
		fmt.Fprintf(tw, "ep%d\t", e)
	}
	fmt.Fprintln(tw)
	for _, v := range variants {
		opt := ablationOptions(cfg)
		opt.ActiveFineTune = false
		if v.random {
			opt.VertexStrategy = core.VertexRandom
		} else {
			opt.Landmarks = v.landmarks
			if opt.Landmarks > g.NumVertices() {
				opt.Landmarks = g.NumVertices()
			}
		}
		tr, err := core.NewTrainer(g, opt)
		if err != nil {
			return err
		}
		tr.RunHierPhase()
		n := int(opt.VertexSampleRatio * float64(g.NumVertices()))
		samples := tr.GenVertexSamples(n)
		lrBase := opt.LR / float64(opt.Dim)
		fmt.Fprintf(tw, "%s\t", v.name)
		for e := 0; e < epochs; e++ {
			tr.VertexStep(samples, lrBase/(1+0.5*float64(e)))
			fmt.Fprintf(tw, "%.2f\t", tr.Validate().MeanRel*100)
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// Fig14 compares RNE against the DeepWalk-Regression baselines and the
// coordinate heuristics across training-set sizes (referenced as
// Figure 14 in Section VII-B1).
func Fig14(w io.Writer, cfg Config) error {
	g, err := ablationGraph(cfg)
	if err != nil {
		return err
	}
	val := randomPairs(g, cfg.Queries/2+500, cfg.Seed+17)
	ratios := []float64{0.5, 1, 2, 5, 10}
	if cfg.Quick {
		ratios = []float64{0.5, 2, 5}
	}
	variants := []int{1000, 10000, 100000}
	if cfg.Quick {
		variants = []int{1000, 10000}
	}

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Model\t|S|/|V|\trel.err(%)")
	euclid := metrics.Evaluate(metrics.EstimatorFunc(g.Euclidean), val)
	manhattan := metrics.Evaluate(metrics.EstimatorFunc(g.Manhattan), val)
	fmt.Fprintf(tw, "Euclidean\t-\t%.2f\n", euclid.MeanRel*100)
	fmt.Fprintf(tw, "Manhattan\t-\t%.2f\n", manhattan.MeanRel*100)

	oracleWS := sssp.NewTruthOracle(g, 128)
	rng := rand.New(rand.NewSource(cfg.Seed + 19))
	// DeepWalk depends only on the graph and seed; train it once and
	// share it across every variant and training-set size.
	embedDim := 64
	if cfg.Quick {
		embedDim = 32
	}
	dwCfg := deepwalk.DefaultConfig(cfg.Seed)
	dwCfg.Dim = embedDim
	dwEmb, err := deepwalk.Train(g, dwCfg)
	if err != nil {
		return err
	}
	for _, r := range ratios {
		n := int(r * float64(g.NumVertices()))
		trainSet := trainPairs(g, n, oracleWS, rng)

		for _, params := range variants {
			drCfg, err := dr.Variant(params, cfg.Seed)
			if err != nil {
				return err
			}
			drCfg.EmbedDim = embedDim
			m, err := dr.TrainWithEmbedding(g, dwEmb, trainSet, drCfg)
			if err != nil {
				return err
			}
			st := metrics.Evaluate(metrics.EstimatorFunc(m.Estimate), val)
			fmt.Fprintf(tw, "DR-%dK\t%.1f\t%.2f\n", params/1000, r, st.MeanRel*100)
		}

		// RNE trained on the same budget: hierarchy phase plus vertex
		// steps over exactly the given sample set.
		opt := ablationOptions(cfg)
		opt.ActiveFineTune = false
		tr, err := core.NewTrainer(g, opt)
		if err != nil {
			return err
		}
		tr.RunHierPhase()
		lrBase := opt.LR / float64(opt.Dim)
		for e := 0; e < opt.Epochs; e++ {
			tr.VertexStep(trainSet, lrBase/(1+0.5*float64(e)))
		}
		fmt.Fprintf(tw, "RNE\t%.1f\t%.2f\n", r, tr.Validate().MeanRel*100)
	}
	return tw.Flush()
}

// Fig16 evaluates range queries over a POI set: F1 against the exact
// answer and mean query time, across distance thresholds τ (paper
// Figure 16; kNN results are analogous, as the paper notes).
func Fig16(w io.Writer, cfg Config) error {
	g, err := ablationGraph(cfg)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 23))
	var targets []int32
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		if rng.Intn(10) == 0 {
			targets = append(targets, v)
		}
	}

	// RNE tree index.
	opt := ablationOptions(cfg)
	model, _, err := core.Build(g, opt)
	if err != nil {
		return err
	}
	rneIdx, err := index.Build(model, targets)
	if err != nil {
		return err
	}

	// G-tree (V-tree stand-in, exact).
	h, err := partition.BuildHierarchy(g, partition.DefaultHierConfig(cfg.Seed))
	if err != nil {
		return err
	}
	gt, err := gtree.Build(g, h, targets)
	if err != nil {
		return err
	}

	// Distance oracle: linear scan over targets with oracle estimates.
	orc, err := oracle.Build(g, 0.5)
	if err != nil {
		return err
	}
	oracleRange := func(s int32, tau float64) []int32 {
		var out []int32
		for _, v := range targets {
			if orc.Estimate(s, v) <= tau {
				out = append(out, v)
			}
		}
		return out
	}

	// Coordinate KD-trees.
	xs := make([]float64, len(targets))
	ys := make([]float64, len(targets))
	for i, v := range targets {
		xs[i] = g.X(v)
		ys[i] = g.Y(v)
	}
	euclidTree, err := kdtree.Build(xs, ys, targets, kdtree.Euclidean)
	if err != nil {
		return err
	}
	manhTree, err := kdtree.Build(xs, ys, targets, kdtree.Manhattan)
	if err != nil {
		return err
	}

	type rangeMethod struct {
		name string
		run  func(s int32, tau float64) []int32
	}
	methods := []rangeMethod{
		{"RNE", func(s int32, tau float64) []int32 { return rneIdx.Range(s, tau) }},
		{"V-tree(G-tree)", func(s int32, tau float64) []int32 { return gt.Range(s, tau) }},
		{"DistanceOracle", oracleRange},
		{"Euclidean", func(s int32, tau float64) []int32 { return euclidTree.Range(g.X(s), g.Y(s), tau) }},
		{"Manhattan", func(s int32, tau float64) []int32 { return manhTree.Range(g.X(s), g.Y(s), tau) }},
	}

	_, diam := distanceGroups(g, 2, 1, cfg.Seed) // reuse the diameter sweep
	taus := []float64{0.05, 0.10, 0.15, 0.20, 0.25}
	nQueries := 40
	if cfg.Quick {
		nQueries = 15
	}
	sources := make([]int32, nQueries)
	for i := range sources {
		sources[i] = int32(rng.Intn(g.NumVertices()))
	}
	ws := sssp.NewWorkspace(g)

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "Method\t")
	for _, tf := range taus {
		fmt.Fprintf(tw, "F1@%.0f%%\ttime\t", tf*100)
	}
	fmt.Fprintln(tw)
	var scratch []float64
	for _, m := range methods {
		fmt.Fprintf(tw, "%s\t", m.name)
		for _, tf := range taus {
			tau := tf * diam
			var f1Sum float64
			start := time.Now()
			for _, s := range sources {
				_ = m.run(s, tau)
			}
			elapsed := time.Since(start)
			for _, s := range sources {
				got := m.run(s, tau)
				var want []int32
				want, scratch = exactRange(ws, targets, s, tau, scratch)
				_, _, f1 := metrics.F1(got, want)
				f1Sum += f1
			}
			fmt.Fprintf(tw, "%.3f\t%s\t", f1Sum/float64(len(sources)),
				fmtNanos(float64(elapsed.Nanoseconds())/float64(len(sources))))
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// trainPairs draws n exactly-labeled uniform pairs (shared by Fig14).
func trainPairs(g *graph.Graph, n int, oracleWS *sssp.TruthOracle, rng *rand.Rand) []sample.Sample {
	out := make([]sample.Sample, 0, n)
	nv := g.NumVertices()
	for attempts := 0; len(out) < n && attempts < 20*(n+1); attempts++ {
		s := int32(rng.Intn(nv))
		dist := oracleWS.FromSource(s)
		for j := 0; j < 32 && len(out) < n; j++ {
			t := int32(rng.Intn(nv))
			if t != s && dist[t] < math.MaxFloat64 {
				out = append(out, sample.Sample{S: s, T: t, Dist: dist[t]})
			}
		}
	}
	return out
}
