package bench

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"repro/internal/alt"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/gtree"
	"repro/internal/hybrid"
	"repro/internal/index"
	"repro/internal/kdtree"
	"repro/internal/metrics"
	"repro/internal/oracle"
	"repro/internal/partition"
	"repro/internal/sssp"
)

// The experiments in this file go beyond the paper's exhibits: they
// ablate the design choices DESIGN.md calls out (partition shape,
// fine-tuning grid resolution, landmark selection policy) and evaluate
// the two extensions this repository adds (the float32 compact model
// and the LT-clamped hybrid estimator).

// AblationPartition sweeps the hierarchy fanout κ and leaf threshold δ.
func AblationPartition(w io.Writer, cfg Config) error {
	g, err := ablationGraph(cfg)
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Fanout κ\tLeaf δ\trel.err(%)\tbuild")
	for _, fanout := range []int{2, 4, 8} {
		for _, leaf := range []int{32, 64, 128} {
			opt := ablationOptions(cfg)
			opt.Fanout = fanout
			opt.Leaf = leaf
			start := time.Now()
			_, st, err := core.Build(g, opt)
			if err != nil {
				return err
			}
			fmt.Fprintf(tw, "%d\t%d\t%.2f\t%v\n", fanout, leaf,
				st.Validation.MeanRel*100, time.Since(start).Round(time.Millisecond))
		}
	}
	return tw.Flush()
}

// AblationGridK sweeps the fine-tuning grid resolution K (R = 2K-1
// buckets).
func AblationGridK(w io.Writer, cfg Config) error {
	g, err := ablationGraph(cfg)
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Grid K\tBuckets R\trel.err(%)\tp99(%)")
	for _, k := range []int{4, 8, 16, 24} {
		opt := ablationOptions(cfg)
		opt.GridK = k
		_, st, err := core.Build(g, opt)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%d\t%d\t%.2f\t%.2f\n", k, 2*k-1,
			st.Validation.MeanRel*100, st.Validation.P99Rel*100)
	}
	return tw.Flush()
}

// AblationLandmarks compares landmark selection policies for the
// vertex-phase samples.
func AblationLandmarks(w io.Writer, cfg Config) error {
	g, err := ablationGraph(cfg)
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Strategy\trel.err(%)\tp99(%)")
	for _, strat := range []string{"farthest", "random", "degree"} {
		opt := ablationOptions(cfg)
		opt.LandmarkStrategy = strat
		_, st, err := core.Build(g, opt)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\n", strat,
			st.Validation.MeanRel*100, st.Validation.P99Rel*100)
	}
	return tw.Flush()
}

// AblationCompact compares the float64 model against its float32
// compact form: accuracy, index size and query latency.
func AblationCompact(w io.Writer, cfg Config) error {
	g, err := ablationGraph(cfg)
	if err != nil {
		return err
	}
	m, _, err := core.Build(g, ablationOptions(cfg))
	if err != nil {
		return err
	}
	c, err := m.Compact()
	if err != nil {
		return err
	}
	pairs := randomPairs(g, cfg.Queries, cfg.Seed+31)
	full := metrics.Evaluate(metrics.EstimatorFunc(m.EstimateL1), pairs)
	comp := metrics.Evaluate(metrics.EstimatorFunc(c.Estimate), pairs)

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Model\trel.err(%)\tindex (MB)\tquery")
	fmt.Fprintf(tw, "RNE float64\t%.4f\t%s\t%s\n", full.MeanRel*100,
		fmtBytes(m.IndexBytes()), fmtNanos(timeEstimator(m.EstimateL1, pairs)))
	fmt.Fprintf(tw, "RNE float32\t%.4f\t%s\t%s\n", comp.MeanRel*100,
		fmtBytes(c.IndexBytes()), fmtNanos(timeEstimator(c.Estimate, pairs)))
	return tw.Flush()
}

// AblationHybrid compares plain RNE, plain LT and the LT-clamped hybrid
// on mean and tail errors.
func AblationHybrid(w io.Writer, cfg Config) error {
	g, err := ablationGraph(cfg)
	if err != nil {
		return err
	}
	m, _, err := core.Build(g, ablationOptions(cfg))
	if err != nil {
		return err
	}
	lt, err := alt.Build(g, 128, cfg.Seed)
	if err != nil {
		return err
	}
	hy, err := hybrid.New(m, lt)
	if err != nil {
		return err
	}
	pairs := randomPairs(g, cfg.Queries, cfg.Seed+37)

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Estimator\tmean(%)\tp99(%)\tmax(%)\tquery")
	for _, e := range []struct {
		name string
		f    func(s, t int32) float64
	}{
		{"RNE", m.EstimateL1},
		{"LT", lt.Estimate},
		{"Hybrid (RNE clamped to LT bounds)", hy.Estimate},
	} {
		st := metrics.Evaluate(metrics.EstimatorFunc(e.f), pairs)
		fmt.Fprintf(tw, "%s\t%.3f\t%.2f\t%.2f\t%s\n", e.name,
			st.MeanRel*100, st.P99Rel*100, st.MaxRel*100, fmtNanos(timeEstimator(e.f, pairs)))
	}
	return tw.Flush()
}

// Fig16KNN is the kNN counterpart of Figure 16 (the paper reports range
// queries and notes kNN behaves alike — this measures it).
func Fig16KNN(w io.Writer, cfg Config) error {
	g, err := ablationGraph(cfg)
	if err != nil {
		return err
	}
	rng := newRng(cfg.Seed + 41)
	var targets []int32
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		if rng.Intn(10) == 0 {
			targets = append(targets, v)
		}
	}
	model, _, err := core.Build(g, ablationOptions(cfg))
	if err != nil {
		return err
	}
	rneIdx, err := index.Build(model, targets)
	if err != nil {
		return err
	}
	h, err := partition.BuildHierarchy(g, partition.DefaultHierConfig(cfg.Seed))
	if err != nil {
		return err
	}
	gt, err := gtree.Build(g, h, targets)
	if err != nil {
		return err
	}
	orc, err := oracle.Build(g, 0.5)
	if err != nil {
		return err
	}
	xs := make([]float64, len(targets))
	ys := make([]float64, len(targets))
	for i, v := range targets {
		xs[i] = g.X(v)
		ys[i] = g.Y(v)
	}
	euclidTree, err := kdtree.Build(xs, ys, targets, kdtree.Euclidean)
	if err != nil {
		return err
	}
	manhTree, err := kdtree.Build(xs, ys, targets, kdtree.Manhattan)
	if err != nil {
		return err
	}

	oracleKNN := func(s int32, k int) []int32 {
		dists := make([]float64, len(targets))
		order := make([]int32, len(targets))
		for i, v := range targets {
			dists[i] = orc.Estimate(s, v)
			order[i] = int32(i)
		}
		// Full sort: the target set is small.
		sortByKey(order, dists)
		out := make([]int32, 0, k)
		for i := 0; i < k && i < len(order); i++ {
			out = append(out, targets[order[i]])
		}
		return out
	}

	type knnMethod struct {
		name string
		run  func(s int32, k int) []int32
	}
	methods := []knnMethod{
		{"RNE", func(s int32, k int) []int32 { return rneIdx.KNN(s, k) }},
		{"V-tree(G-tree)", func(s int32, k int) []int32 { return gt.KNN(s, k) }},
		{"DistanceOracle", oracleKNN},
		{"Euclidean", func(s int32, k int) []int32 { return euclidTree.KNN(g.X(s), g.Y(s), k) }},
		{"Manhattan", func(s int32, k int) []int32 { return manhTree.KNN(g.X(s), g.Y(s), k) }},
	}

	ks := []int{1, 5, 10, 20}
	nQueries := 40
	if cfg.Quick {
		nQueries = 15
	}
	sources := make([]int32, nQueries)
	for i := range sources {
		sources[i] = int32(rng.Intn(g.NumVertices()))
	}
	ws := sssp.NewWorkspace(g)

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "Method\t")
	for _, k := range ks {
		fmt.Fprintf(tw, "F1@k=%d\ttime\t", k)
	}
	fmt.Fprintln(tw)
	var scratch []float64
	for _, m := range methods {
		fmt.Fprintf(tw, "%s\t", m.name)
		for _, k := range ks {
			var f1Sum float64
			start := time.Now()
			for _, s := range sources {
				_ = m.run(s, k)
			}
			elapsed := time.Since(start)
			for _, s := range sources {
				got := m.run(s, k)
				scratch = wsFrom(ws, s, scratch)
				want := exactKNN(scratch, targets, k)
				_, _, f1 := metrics.F1(got, want)
				f1Sum += f1
			}
			fmt.Fprintf(tw, "%.3f\t%s\t", f1Sum/float64(len(sources)),
				fmtNanos(float64(elapsed.Nanoseconds())/float64(len(sources))))
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// AblationOptimizer compares plain SGD (Function Training) against
// Adam on identical budgets.
func AblationOptimizer(w io.Writer, cfg Config) error {
	g, err := ablationGraph(cfg)
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Optimizer\trel.err(%)\tp99(%)\tbuild")
	for _, optim := range []string{"sgd", "adam"} {
		opt := ablationOptions(cfg)
		opt.Optimizer = optim
		start := time.Now()
		_, st, err := core.Build(g, opt)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%v\n", optim,
			st.Validation.MeanRel*100, st.Validation.P99Rel*100,
			time.Since(start).Round(time.Millisecond))
	}
	return tw.Flush()
}

// AblationTopology trains RNE on two structurally different synthetic
// networks of similar size — a pure urban grid and a multi-city highway
// network (sparse long links between dense grids) — to check that the
// embedding quality is not an artifact of the single-grid generator.
func AblationTopology(w io.Writer, cfg Config) error {
	grid, err := ablationGraph(cfg)
	if err != nil {
		return err
	}
	hwCfg := gen.DefaultHighwayConfig(cfg.Seed)
	hwCfg.Cities = 5
	hwCfg.CityRows, hwCfg.CityCols = 28, 28
	if cfg.Quick {
		hwCfg.Cities = 3
		hwCfg.CityRows, hwCfg.CityCols = 12, 12
	}
	highway, err := gen.Highway(hwCfg)
	if err != nil {
		return err
	}

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Topology\t|V|\trel.err(%)\tp99(%)\tquery")
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"urban grid", grid},
		{"multi-city highway", highway},
	} {
		opt := ablationOptions(cfg)
		m, st, err := core.Build(tc.g, opt)
		if err != nil {
			return err
		}
		pairs := randomPairs(tc.g, cfg.Queries/2+500, cfg.Seed+43)
		fmt.Fprintf(tw, "%s\t%d\t%.2f\t%.2f\t%s\n", tc.name, tc.g.NumVertices(),
			st.Validation.MeanRel*100, st.Validation.P99Rel*100,
			fmtNanos(timeEstimator(m.EstimateL1, pairs)))
	}
	return tw.Flush()
}
