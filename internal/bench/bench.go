// Package bench regenerates every table and figure of the paper's
// evaluation (Section VII). Each experiment is a function writing a
// paper-style table to an io.Writer; cmd/rnebench exposes them on the
// command line and the repository-root benchmarks wrap them in
// testing.B loops.
//
// Sizes are controlled by Config: Quick mode shrinks datasets and
// query counts so the whole suite runs in CI time, while the defaults
// mirror the paper's setup at the synthetic datasets' scale.
package bench

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/sssp"
)

// Config controls experiment sizes.
type Config struct {
	// Scale multiplies preset dataset dimensions (1 = paper-mini scale).
	Scale float64
	// Queries is the per-measurement query count (paper: 10K).
	Queries int
	// Seed fixes workloads and builds.
	Seed int64
	// Quick shrinks training volumes for CI runs.
	Quick bool
}

// DefaultConfig returns full-scale settings.
func DefaultConfig() Config {
	return Config{Scale: 1, Queries: 10000, Seed: 42}
}

// QuickConfig returns CI-friendly settings.
func QuickConfig() Config {
	return Config{Scale: 0.35, Queries: 1500, Seed: 42, Quick: true}
}

// dataset is a built graph plus its provenance.
type dataset struct {
	name   string
	paper  string
	g      *graph.Graph
	groups int // distance-scale groups (paper: 5 small, 7 large)
}

// loadDatasets builds the preset stand-ins at the configured scale.
func loadDatasets(cfg Config, names ...string) ([]dataset, error) {
	if len(names) == 0 {
		names = []string{"bj-mini", "fla-mini", "usw-mini"}
	}
	var out []dataset
	for _, name := range names {
		p, err := gen.PresetByName(name)
		if err != nil {
			return nil, err
		}
		g, err := p.BuildScaled(cfg.Scale)
		if err != nil {
			return nil, err
		}
		groups := 7
		if name == "bj-mini" {
			groups = 5
		}
		out = append(out, dataset{name: name, paper: p.PaperName, g: g, groups: groups})
	}
	return out, nil
}

// randomPairs draws n random vertex pairs with exact distances.
func randomPairs(g *graph.Graph, n int, seed int64) []metrics.Pair {
	rng := rand.New(rand.NewSource(seed))
	ws := sssp.NewWorkspace(g)
	nv := g.NumVertices()
	out := make([]metrics.Pair, 0, n)
	var dist []float64
	for len(out) < n {
		s := int32(rng.Intn(nv))
		dist = ws.FromSource(s, dist)
		for j := 0; j < 32 && len(out) < n; j++ {
			t := int32(rng.Intn(nv))
			if t != s && dist[t] < sssp.Inf {
				out = append(out, metrics.Pair{S: s, T: t, Dist: dist[t]})
			}
		}
	}
	return out
}

// distanceGroups splits fresh random pairs into `groups` equal-width
// distance intervals of [0, diameter], up to perGroup pairs each.
// Groups that the random workload cannot fill (extreme distances are
// rare) stay short.
func distanceGroups(g *graph.Graph, groups, perGroup int, seed int64) ([][]metrics.Pair, float64) {
	rng := rand.New(rand.NewSource(seed))
	ws := sssp.NewWorkspace(g)
	nv := g.NumVertices()

	// Diameter estimate by double sweep.
	dist := ws.FromSource(0, nil)
	far, diam := int32(0), 0.0
	for v, d := range dist {
		if d < sssp.Inf && d > diam {
			far, diam = int32(v), d
		}
	}
	dist = ws.FromSource(far, dist)
	for _, d := range dist {
		if d < sssp.Inf && d > diam {
			diam = d
		}
	}

	out := make([][]metrics.Pair, groups)
	width := diam / float64(groups)
	filled := 0
	maxSources := 40 * groups * perGroup / 32
	for src := 0; src < maxSources && filled < groups; src++ {
		s := int32(rng.Intn(nv))
		dist = ws.FromSource(s, dist)
		for j := 0; j < 64; j++ {
			t := int32(rng.Intn(nv))
			d := dist[t]
			if t == s || d >= sssp.Inf || d <= 0 {
				continue
			}
			gi := int(d / width)
			if gi >= groups {
				gi = groups - 1
			}
			if len(out[gi]) < perGroup {
				out[gi] = append(out[gi], metrics.Pair{S: s, T: t, Dist: d})
				if len(out[gi]) == perGroup {
					filled++
				}
			}
		}
	}
	return out, diam
}

// timeEstimator measures the mean wall time of one estimate call over
// the pairs, returning nanoseconds per query.
func timeEstimator(f func(s, t int32) float64, pairs []metrics.Pair) float64 {
	if len(pairs) == 0 {
		return 0
	}
	// Warm up.
	var sink float64
	for i := 0; i < len(pairs) && i < 64; i++ {
		sink += f(pairs[i].S, pairs[i].T)
	}
	start := time.Now()
	const reps = 3
	for r := 0; r < reps; r++ {
		for _, p := range pairs {
			sink += f(p.S, p.T)
		}
	}
	elapsed := time.Since(start)
	_ = sink
	return float64(elapsed.Nanoseconds()) / float64(reps*len(pairs))
}

// fmtBytes renders a byte count as MB with two decimals.
func fmtBytes(b int64) string {
	return fmt.Sprintf("%.2f", float64(b)/(1<<20))
}

// fmtNanos renders nanoseconds adaptively (ns or µs).
func fmtNanos(ns float64) string {
	if ns < 1000 {
		return fmt.Sprintf("%.0fns", ns)
	}
	return fmt.Sprintf("%.2fµs", ns/1000)
}
