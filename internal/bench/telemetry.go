package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// telemetryReport is the machine-readable output of TelemetrySmoke,
// written to BENCH_telemetry.json next to the working directory.
type telemetryReport struct {
	Graph     string  `json:"graph"`
	Vertices  int     `json:"vertices"`
	Queries   int     `json:"queries"`
	BuildSecs float64 `json:"build_seconds"`

	LatencyP50US float64 `json:"latency_p50_us"`
	LatencyP95US float64 `json:"latency_p95_us"`
	LatencyP99US float64 `json:"latency_p99_us"`

	RelErrP50 float64 `json:"rel_err_p50"`
	RelErrP95 float64 `json:"rel_err_p95"`
	RelErrP99 float64 `json:"rel_err_p99"`
}

// TelemetrySmoke exercises the telemetry pipeline end to end: a quick
// traced build on the BJ stand-in, then cfg.Queries point queries timed
// and scored through telemetry histograms. Percentiles come from the
// same fixed-bucket quantile estimator the live /metrics endpoint
// exports, so this doubles as a sanity check of those buckets. Results
// land in BENCH_telemetry.json.
func TelemetrySmoke(w io.Writer, cfg Config) error {
	g, err := ablationGraph(cfg)
	if err != nil {
		return err
	}
	opt := ablationOptions(cfg)
	reg := telemetry.NewRegistry()
	opt.Trace = telemetry.NewTracer(nil, reg)

	buildStart := time.Now()
	m, _, err := core.Build(g, opt)
	if err != nil {
		return err
	}
	buildSecs := time.Since(buildStart).Seconds()

	pairs := randomPairs(g, cfg.Queries, cfg.Seed+1)
	lat := reg.Histogram("rne_bench_query_duration_seconds",
		"Per-query estimate latency.", telemetry.LatencyBuckets)
	relErr := reg.Histogram("rne_bench_rel_error",
		"Per-query relative error against Dijkstra truth.", telemetry.RelErrorBuckets)
	for _, p := range pairs {
		t0 := time.Now()
		est := m.Estimate(p.S, p.T)
		lat.ObserveDuration(time.Since(t0))
		if p.Dist > 0 {
			relErr.Observe(math.Abs(est-p.Dist) / p.Dist)
		}
	}

	rep := telemetryReport{
		Graph:        "bj-mini",
		Vertices:     g.NumVertices(),
		Queries:      len(pairs),
		BuildSecs:    buildSecs,
		LatencyP50US: lat.Quantile(0.50) * 1e6,
		LatencyP95US: lat.Quantile(0.95) * 1e6,
		LatencyP99US: lat.Quantile(0.99) * 1e6,
		RelErrP50:    relErr.Quantile(0.50),
		RelErrP95:    relErr.Quantile(0.95),
		RelErrP99:    relErr.Quantile(0.99),
	}

	fmt.Fprintf(w, "telemetry smoke: %s n=%d, build %.1fs, %d queries\n",
		rep.Graph, rep.Vertices, rep.BuildSecs, rep.Queries)
	fmt.Fprintf(w, "  latency  p50 %.1fus  p95 %.1fus  p99 %.1fus\n",
		rep.LatencyP50US, rep.LatencyP95US, rep.LatencyP99US)
	fmt.Fprintf(w, "  rel err  p50 %.2f%%  p95 %.2f%%  p99 %.2f%%\n",
		rep.RelErrP50*100, rep.RelErrP95*100, rep.RelErrP99*100)

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_telemetry.json", append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintln(w, "  wrote BENCH_telemetry.json")
	return nil
}
