package bench

import (
	"time"

	"repro/internal/ach"
	"repro/internal/alt"
	"repro/internal/ch"
	"repro/internal/core"
	"repro/internal/h2h"
	"repro/internal/oracle"
	"repro/internal/sssp"
)

// method is one comparator in the Table III/IV suites.
type method struct {
	name       string
	estimate   func(s, t int32) float64
	exact      bool
	indexBytes int64
	buildTime  time.Duration
	skipTiming bool // coordinate baselines are O(1); timed anyway
}

// rneOptions returns paper-style options for a dataset: d = 64 on the
// BJ stand-in, d = 128 on the larger two, shrunk in quick mode.
func rneOptions(ds dataset, cfg Config) core.Options {
	opt := core.DefaultOptions(cfg.Seed)
	if ds.name != "bj-mini" {
		opt.Dim = 128
	}
	if cfg.Quick {
		opt.Dim = 32
		opt.Epochs = 5
		opt.VertexSampleRatio = 60
		opt.FineTuneRounds = 4
		opt.HierSampleCap = 15000
		opt.ValidationPairs = 400
	}
	return opt
}

// ltLandmarks mirrors the paper's LT configuration (BJ 128, larger 256).
func ltLandmarks(ds dataset, cfg Config) int {
	n := 128
	if ds.name != "bj-mini" {
		n = 256
	}
	if cfg.Quick {
		n /= 4
	}
	if n > ds.g.NumVertices() {
		n = ds.g.NumVertices()
	}
	return n
}

// buildRNE trains the RNE model for a dataset.
func buildRNE(ds dataset, cfg Config) (*core.Model, method, error) {
	start := time.Now()
	m, _, err := core.Build(ds.g, rneOptions(ds, cfg))
	if err != nil {
		return nil, method{}, err
	}
	return m, method{
		name:       "RNE",
		estimate:   m.EstimateL1,
		indexBytes: m.IndexBytes(),
		buildTime:  time.Since(start),
	}, nil
}

// buildSuite constructs every Table III comparator for a dataset. The
// distance oracle only runs on the BJ stand-in, mirroring the paper's
// scalability note.
func buildSuite(ds dataset, cfg Config) ([]method, error) {
	g := ds.g
	var out []method

	out = append(out,
		method{name: "Euclidean", estimate: g.Euclidean, skipTiming: false},
		method{name: "Manhattan", estimate: g.Manhattan},
	)

	start := time.Now()
	h2hIdx, err := h2h.Build(g)
	if err != nil {
		return nil, err
	}
	out = append(out, method{
		name: "H2H", estimate: h2hIdx.Distance, exact: true,
		indexBytes: h2hIdx.IndexBytes(), buildTime: time.Since(start),
	})

	start = time.Now()
	chIdx, err := ch.Build(g, ch.Options{})
	if err != nil {
		return nil, err
	}
	chQ := chIdx.NewQuery()
	out = append(out, method{
		name: "CH", estimate: chQ.Distance, exact: true,
		indexBytes: chIdx.IndexBytes(), buildTime: time.Since(start),
	})

	if ds.name == "bj-mini" {
		start = time.Now()
		orc, err := oracle.Build(g, 0.5)
		if err != nil {
			return nil, err
		}
		out = append(out, method{
			name: "DistanceOracle", estimate: orc.Estimate,
			indexBytes: orc.IndexBytes(), buildTime: time.Since(start),
		})
	}

	start = time.Now()
	achIdx, err := ach.Build(g, 0.1)
	if err != nil {
		return nil, err
	}
	achQ := achIdx.NewQuery()
	out = append(out, method{
		name: "ACH", estimate: achQ.Distance,
		indexBytes: achIdx.IndexBytes(), buildTime: time.Since(start),
	})

	start = time.Now()
	lt, err := alt.Build(g, ltLandmarks(ds, cfg), cfg.Seed)
	if err != nil {
		return nil, err
	}
	out = append(out, method{
		name: "LT", estimate: lt.Estimate,
		indexBytes: lt.IndexBytes(), buildTime: time.Since(start),
	})

	_, rneMethod, err := buildRNE(ds, cfg)
	if err != nil {
		return nil, err
	}
	out = append(out, rneMethod)
	return out, nil
}

// exactRange computes the true network range-query answer: all targets
// within tau of s.
func exactRange(ws *sssp.Workspace, targets []int32, s int32, tau float64, scratch []float64) ([]int32, []float64) {
	dist := ws.FromSource(s, scratch)
	var out []int32
	for _, v := range targets {
		if dist[v] <= tau {
			out = append(out, v)
		}
	}
	return out, dist
}
