package autoheal

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// fakeEnv is a controllable environment for the controller: obs error
// level is switchable, heals are scripted.
type fakeEnv struct {
	relErr    atomic.Value // float64: current probe relative error
	samples   atomic.Int64
	heals     atomic.Int64
	healErr   atomic.Value  // errBox
	version   atomic.Value  // string
	healGate  chan struct{} // when non-nil, Heal blocks until closed
	healBegan chan struct{} // signaled when Heal starts
}

type errBox struct{ err error }

func newFakeEnv() *fakeEnv {
	e := &fakeEnv{}
	e.relErr.Store(0.05)
	e.version.Store("v1")
	e.healErr.Store(errBox{})
	return e
}

func (e *fakeEnv) config(reg *telemetry.Registry) Config {
	return Config{
		Sample: func(ctx context.Context, n int) ([]Observation, error) {
			e.samples.Add(1)
			re := e.relErr.Load().(float64)
			out := make([]Observation, n)
			for i := range out {
				out[i] = Observation{Est: 100 * (1 + re), Truth: 100}
			}
			return out, nil
		},
		Heal: func(ctx context.Context) (string, error) {
			if e.healBegan != nil {
				e.healBegan <- struct{}{}
			}
			if e.healGate != nil {
				<-e.healGate
			}
			if b := e.healErr.Load().(errBox); b.err != nil {
				return "", b.err
			}
			e.heals.Add(1)
			e.version.Store("v2")
			// A successful heal repairs serving accuracy.
			e.relErr.Store(0.05)
			return "v2", nil
		},
		Version:  func() string { return e.version.Load().(string) },
		MaxDist:  func() float64 { return 1000 },
		Interval: time.Hour, // tests drive tick() directly
		Probes:   10,
		Budget:   3,
		Dwell:    3,
		Cooldown: time.Millisecond,
		Warmup:   10,
		Alpha:    0.5,
		Registry: reg,
	}
}

func newTestController(t *testing.T, e *fakeEnv) *Controller {
	t.Helper()
	c, err := New(e.config(telemetry.NewRegistry()))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func waitCooldown(c *Controller) {
	for {
		c.mu.Lock()
		done := !time.Now().Before(c.cooldownUntil)
		c.mu.Unlock()
		if done {
			return
		}
		time.Sleep(time.Millisecond)
	}
}

func TestControllerTriggersAfterDwell(t *testing.T) {
	e := newFakeEnv()
	c := newTestController(t, e)
	ctx := context.Background()

	c.tick(ctx) // warmup: 10 obs freeze the baseline
	e.relErr.Store(1.0)
	for i := 0; i < 2; i++ {
		c.tick(ctx)
		if got := e.heals.Load(); got != 0 {
			t.Fatalf("heal fired after %d over-budget ticks, want dwell of 3", i+1)
		}
	}
	c.tick(ctx) // third consecutive over-budget tick: trigger
	if got := e.heals.Load(); got != 1 {
		t.Fatalf("heals = %d after dwell satisfied, want 1", got)
	}
	if st := c.State(); st.State != StateArmed || st.Version != "v2" || st.Heals != 1 {
		t.Fatalf("post-heal state = %+v", st)
	}
}

func TestControllerHysteresisHoldsDwellInDeadBand(t *testing.T) {
	e := newFakeEnv()
	c := newTestController(t, e)
	ctx := context.Background()

	c.tick(ctx) // warmup
	e.relErr.Store(1.0)
	c.tick(ctx)
	c.tick(ctx) // overBudget = 2
	// Dead band: score drops under Budget but above ReArm*Budget. The
	// dwell counter must hold, not reset. Baseline is 0.05, budget 3,
	// rearm 0.8 -> dead band is score in (2.4, 3), i.e. err ~(0.12, 0.15).
	e.relErr.Store(0.138)
	for i := 0; i < 6; i++ {
		c.tick(ctx)
	}
	c.mu.Lock()
	held := c.overBudget
	c.mu.Unlock()
	if held != 2 {
		t.Fatalf("dead-band ticks changed dwell counter to %d, want held at 2", held)
	}
	// A clearly-healthy stretch resets it.
	e.relErr.Store(0.05)
	for i := 0; i < 8; i++ {
		c.tick(ctx)
	}
	c.mu.Lock()
	reset := c.overBudget
	c.mu.Unlock()
	if reset != 0 {
		t.Fatalf("healthy ticks left dwell counter at %d, want 0", reset)
	}
	if e.heals.Load() != 0 {
		t.Fatal("heal fired without dwell ever completing")
	}
}

func TestControllerFailedHealRollsBackAndReArms(t *testing.T) {
	e := newFakeEnv()
	c := newTestController(t, e)
	ctx := context.Background()

	c.tick(ctx) // warmup
	e.relErr.Store(1.0)
	e.healErr.Store(errBox{errors.New("checkpoint write failed")})
	c.tick(ctx)
	c.tick(ctx)
	c.tick(ctx) // trigger -> heal fails
	if e.heals.Load() != 0 {
		t.Fatal("failed heal counted as success")
	}
	st := c.State()
	if st.State != StateArmed || st.HealFails != 1 || st.LastError == "" || st.Version != "v1" {
		t.Fatalf("post-failure state = %+v", st)
	}
	// The monitor kept its baseline (the model is still the drifted
	// one), so after cooldown the next dwell window re-triggers — and
	// this time the heal succeeds.
	e.healErr.Store(errBox{})
	waitCooldown(c)
	c.tick(ctx)
	c.tick(ctx)
	c.tick(ctx)
	if e.heals.Load() != 1 {
		t.Fatalf("controller did not re-arm after a failed heal: heals = %d", e.heals.Load())
	}
	if st := c.State(); st.Version != "v2" || st.LastError != "" {
		t.Fatalf("post-recovery state = %+v", st)
	}
}

// TestControllerNoSpuriousTriggerAfterSwap is the post-swap warmup
// satellite: the first observations after a hot swap land in a fresh
// warmup window, so even if the new model's error profile differs from
// the old baseline, no trigger can fire until a new baseline freezes —
// and against that new baseline a steady profile scores ~1.
func TestControllerNoSpuriousTriggerAfterSwap(t *testing.T) {
	e := newFakeEnv()
	c := newTestController(t, e)
	ctx := context.Background()

	c.tick(ctx) // warmup
	e.relErr.Store(1.0)
	c.tick(ctx)
	c.tick(ctx)
	c.tick(ctx) // heal #1
	if e.heals.Load() != 1 {
		t.Fatal("setup heal did not fire")
	}
	// Post-swap serving error (0.12) is 2.4x the OLD baseline (0.05) —
	// over the re-arm threshold and near the budget. Against the old
	// baseline a couple of these ticks would accumulate dwell; against
	// the reset monitor they are just warmup and then a fresh baseline.
	e.relErr.Store(0.12)
	waitCooldown(c)
	if st := c.State(); st.Warm {
		t.Fatalf("monitor still warm immediately after swap: %+v", st)
	}
	for i := 0; i < 10; i++ {
		c.tick(ctx)
	}
	if e.heals.Load() != 1 {
		t.Fatalf("spurious post-swap heal: heals = %d", e.heals.Load())
	}
	st := c.State()
	if !st.Warm {
		t.Fatalf("monitor never re-warmed: %+v", st)
	}
	if st.Score > 1.5 {
		t.Fatalf("steady post-swap profile scores %v against its own baseline, want ~1", st.Score)
	}
	if st.OverBudget != 0 {
		t.Fatalf("post-swap observations accumulated dwell: %+v", st)
	}
}

func TestControllerSingleFlight(t *testing.T) {
	e := newFakeEnv()
	e.healGate = make(chan struct{})
	e.healBegan = make(chan struct{})
	c := newTestController(t, e)
	ctx := context.Background()

	c.tick(ctx) // warmup
	e.relErr.Store(1.0)
	c.tick(ctx)
	c.tick(ctx)
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.tick(ctx) // triggers; blocks inside Heal
	}()
	<-e.healBegan
	// Concurrent ticks while a heal is in flight must bail immediately
	// without probing or starting a second heal.
	before := e.samples.Load()
	for i := 0; i < 5; i++ {
		c.tick(ctx)
	}
	if got := e.samples.Load(); got != before {
		t.Fatalf("ticks during heal still probed: %d -> %d", before, got)
	}
	close(e.healGate)
	<-done
	if e.heals.Load() != 1 {
		t.Fatalf("heals = %d, want exactly 1", e.heals.Load())
	}
}

func TestControllerStartStop(t *testing.T) {
	e := newFakeEnv()
	cfg := e.config(telemetry.NewRegistry())
	cfg.Interval = time.Millisecond
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	c.Start(ctx)
	deadline := time.Now().Add(5 * time.Second)
	for e.samples.Load() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	cancel()
	c.Stop()
	if e.samples.Load() < 3 {
		t.Fatal("control loop never probed")
	}
}

func TestConfigValidation(t *testing.T) {
	e := newFakeEnv()
	reg := telemetry.NewRegistry()
	for _, mutate := range []func(*Config){
		func(c *Config) { c.Sample = nil },
		func(c *Config) { c.Heal = nil },
		func(c *Config) { c.Version = nil },
		func(c *Config) { c.MaxDist = nil },
		func(c *Config) { c.Registry = nil },
		func(c *Config) { c.Budget = 0.5 },
		func(c *Config) { c.ReArm = 1.5 },
	} {
		cfg := e.config(reg)
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Error("invalid config accepted")
		}
	}
}
