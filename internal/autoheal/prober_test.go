package autoheal

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestGraphProberSamplesAndReloads(t *testing.T) {
	g, err := gen.Grid(10, 10, gen.DefaultConfig(3))
	if err != nil {
		t.Fatalf("Grid: %v", err)
	}
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := graph.WriteFile(path, g); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	p := NewGraphProber(path, 7, func(s, u int32) (float64, error) { return 1, nil })

	obs, err := p.Sample(context.Background(), 16)
	if err != nil {
		t.Fatalf("Sample: %v", err)
	}
	if len(obs) != 16 {
		t.Fatalf("got %d observations, want 16", len(obs))
	}
	for _, o := range obs {
		if !(o.Truth > 0) {
			t.Fatalf("non-positive truth %v", o.Truth)
		}
	}
	current := p.Graph()
	if current == nil || current.NumVertices() != g.NumVertices() {
		t.Fatal("prober did not retain the loaded graph")
	}

	// Replace the file with a regime variant and backdate+redate the
	// mtime so the change is unambiguous; the next Sample must reload.
	cfg, _ := gen.RegimeByName("rush-am", 5)
	pg, err := gen.Perturb(g, cfg)
	if err != nil {
		t.Fatalf("Perturb: %v", err)
	}
	if err := graph.WriteFile(path, pg); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if err := os.Chtimes(path, time.Now(), time.Now().Add(time.Hour)); err != nil {
		t.Fatalf("Chtimes: %v", err)
	}
	if _, err := p.Sample(context.Background(), 8); err != nil {
		t.Fatalf("Sample after rewrite: %v", err)
	}
	if p.Graph() == current {
		t.Fatal("prober did not reload the rewritten graph file")
	}
}

func TestGraphProberMissingFile(t *testing.T) {
	p := NewGraphProber(filepath.Join(t.TempDir(), "nope.txt"), 1,
		func(s, u int32) (float64, error) { return 1, nil })
	if _, err := p.Sample(context.Background(), 4); err == nil {
		t.Fatal("missing graph file not reported")
	}
}
