package autoheal_test

// The chaos end-to-end test for the drift→retrain→swap loop: a real
// server serves a model trained on the base graph while a request
// hammer runs; the graph file is atomically replaced with a perturbed
// regime variant mid-serve; an armed failpoint kills the first retrain
// attempt's checkpoint write; and the controller must still converge —
// rolled back, cooled down, retrained, published, hot-swapped — with
// zero non-2xx responses across the whole storm. Run with -race.

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/autoheal"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/registry"
	"repro/internal/server"
)

func e2eOptions(seed int64) core.Options {
	opt := core.DefaultOptions(seed)
	opt.Dim = 8
	opt.Hierarchical = false
	opt.Epochs = 3
	opt.VertexSampleRatio = 30
	opt.FineTuneRounds = 2
	opt.FineTuneSampleRatio = 3
	opt.Landmarks = 16
	opt.ValidationPairs = 300
	return opt
}

func TestChaosDriftRetrainSwapConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos e2e needs real training rounds")
	}
	defer faultinject.Reset()
	dir := t.TempDir()

	// Base world: a graph on disk, a model trained on it, published as
	// v1 in a registry the server hot-swaps from.
	g, err := gen.Grid(12, 12, gen.DefaultConfig(5))
	if err != nil {
		t.Fatalf("Grid: %v", err)
	}
	graphPath := filepath.Join(dir, "live.gr")
	if err := graph.WriteFile(graphPath, g); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	m, _, err := core.Build(g, e2eOptions(5))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	store, err := registry.Open(filepath.Join(dir, "registry"))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := store.Publish("live", registry.Artifacts{Model: m}); err != nil {
		t.Fatalf("Publish: %v", err)
	}

	loadSet := func() (server.ModelSet, error) {
		rs, err := store.LoadLatest("live", registry.LoadOpts{})
		if err != nil {
			return server.ModelSet{}, err
		}
		return server.ModelSet{Model: rs.Model, Version: rs.Version}, nil
	}
	set, err := loadSet()
	if err != nil {
		t.Fatalf("loadSet: %v", err)
	}
	srv, err := server.NewFromSet(set, server.Config{Reloader: loadSet})
	if err != nil {
		t.Fatalf("NewFromSet: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Request hammer: continuous /distance traffic for the full storm;
	// every response must be 2xx no matter what the controller does.
	var total, bad atomic.Int64
	hammerCtx, stopHammer := context.WithCancel(context.Background())
	hammerDone := make(chan struct{})
	go func() {
		defer close(hammerDone)
		n := int32(g.NumVertices())
		for i := int32(0); hammerCtx.Err() == nil; i++ {
			s, u := i%n, (i*7+3)%n
			resp, err := http.Get(fmt.Sprintf("%s/distance?s=%d&t=%d", ts.URL, s, u))
			if err != nil {
				bad.Add(1)
				continue
			}
			resp.Body.Close()
			total.Add(1)
			if resp.StatusCode < 200 || resp.StatusCode > 299 {
				bad.Add(1)
			}
		}
	}()
	defer func() {
		stopHammer()
		<-hammerDone
	}()

	// The heal path mirrors rneserver's: warm-start from the serving
	// version, fine-tune against the prober's live graph with strict
	// checkpoints (so the armed failpoint can kill an attempt), publish,
	// hot-swap through the validated reload, quarantine on rejection.
	prober := autoheal.NewGraphProber(graphPath, 7, srv.Estimate)
	heal := func(ctx context.Context) (string, error) {
		lg := prober.Graph()
		if lg == nil {
			return "", fmt.Errorf("no probe graph yet")
		}
		warm, err := store.LoadVersion("live", srv.ActiveVersion(), registry.LoadOpts{})
		if err != nil {
			return "", err
		}
		opt := e2eOptions(23)
		opt.CheckpointPath = filepath.Join(dir, "heal.ckpt")
		opt.StrictCheckpoints = true
		defer os.Remove(opt.CheckpointPath)
		tuned, _, err := core.FineTune(lg, warm.Model, opt)
		if err != nil {
			return "", err
		}
		version, err := store.Publish("live", registry.Artifacts{Model: tuned})
		if err != nil {
			return "", err
		}
		if _, err := srv.Reload(); err != nil {
			if qerr := store.Quarantine("live", version); qerr != nil {
				t.Logf("quarantine after rejected swap: %v", qerr)
			}
			return "", fmt.Errorf("swap validation rejected %s: %w", version, err)
		}
		return srv.ActiveVersion(), nil
	}

	ctrl, err := autoheal.New(autoheal.Config{
		Sample:   prober.Sample,
		Heal:     heal,
		Version:  srv.ActiveVersion,
		MaxDist:  srv.Scale,
		Interval: 25 * time.Millisecond,
		Probes:   16,
		Budget:   2,
		Dwell:    2,
		Cooldown: 50 * time.Millisecond,
		Warmup:   24,
		Alpha:    0.5,
		Registry: srv.Stats().Registry(),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// First retrain attempt dies at its first checkpoint write; the
	// controller must roll back, cool down and succeed on the retry.
	faultinject.Enable(core.FailpointCheckpointSave, faultinject.Fault{})

	ctrlCtx, stopCtrl := context.WithCancel(context.Background())
	defer func() {
		stopCtrl()
		ctrl.Stop()
	}()
	ctrl.Start(ctrlCtx)

	wait := func(what string, timeout time.Duration, cond func(autoheal.State) bool) autoheal.State {
		t.Helper()
		deadline := time.Now().Add(timeout)
		for {
			st := ctrl.State()
			if cond(st) {
				return st
			}
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s; state %+v", what, st)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// Let the probe monitor freeze a healthy baseline, then shift the
	// regime under the serving model: an atomic replace of the graph
	// file with a severely perturbed variant, exactly what the smoke
	// script's chaos step does.
	wait("probe baseline", 30*time.Second, func(st autoheal.State) bool { return st.Warm })
	pg, err := gen.Perturb(g, gen.RegimeConfig{
		Seed: 99, ArterialFrac: 0.5, ArterialFactor: 3.0,
		LocalFactor: 1.4, JitterPct: 0.05,
	})
	if err != nil {
		t.Fatalf("Perturb: %v", err)
	}
	tmp := graphPath + ".tmp"
	if err := graph.WriteFile(tmp, pg); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if err := os.Rename(tmp, graphPath); err != nil {
		t.Fatalf("Rename: %v", err)
	}

	// Attempt 1 is killed by the failpoint; the rollback must be
	// visible before any success.
	st := wait("failed first heal", 60*time.Second, func(st autoheal.State) bool { return st.HealFails >= 1 })
	if st.Heals != 0 {
		t.Fatalf("a heal succeeded before the injected failure: %+v", st)
	}
	if st.LastError == "" {
		t.Fatalf("failed heal recorded no error: %+v", st)
	}

	// Attempt 2 converges: new version serving, monitor re-warmed
	// against it, score back under the error budget.
	st = wait("successful heal", 120*time.Second, func(st autoheal.State) bool { return st.Heals >= 1 })
	if st.Version != "v2" {
		t.Fatalf("healed version = %s, want v2", st.Version)
	}
	st = wait("post-heal convergence", 60*time.Second, func(st autoheal.State) bool {
		return st.Warm && st.Score < st.Budget
	})
	if st.HealFails != 1 || st.Heals != 1 {
		t.Fatalf("extra heal attempts during convergence: %+v", st)
	}

	stopHammer()
	<-hammerDone
	if total.Load() == 0 {
		t.Fatal("hammer served no requests")
	}
	if n := bad.Load(); n != 0 {
		t.Fatalf("%d non-2xx responses during the chaos storm (of %d)", n, total.Load())
	}
}
