package autoheal

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/sssp"
)

// GraphProber produces the controller's probe observations from a
// live graph file: it samples seeded random pairs, computes exact
// shortest-path distances with Dijkstra over the file's current
// contents, and compares them against whatever the serving path
// estimates. The file is re-read whenever its mtime or size changes,
// so an operator (or chaos script) atomically replacing the graph with
// a regime variant is picked up on the next probe round — this is how
// perturbed edge weights become visible to the controller while the
// serving model is still answering from the stale embedding.
//
// Probes are grouped a-few-targets-per-source so each round amortizes
// its Dijkstra runs, keeping the probe cost at a handful of SSSP
// sweeps per tick even on large graphs.
type GraphProber struct {
	path     string
	estimate func(s, t int32) (float64, error)

	mu    sync.Mutex
	rng   *rand.Rand
	g     *graph.Graph
	ws    *sssp.Workspace
	buf   []float64
	mtime time.Time
	size  int64
}

// NewGraphProber watches the graph file at path and scores estimates
// from estimate against exact distances. The estimate callback is the
// serving path (e.g. Server.Estimate); seed makes pair selection
// reproducible.
func NewGraphProber(path string, seed int64, estimate func(s, t int32) (float64, error)) *GraphProber {
	return &GraphProber{
		path:     path,
		estimate: estimate,
		rng:      rand.New(rand.NewSource(seed)),
	}
}

// refreshLocked (re)loads the graph when the file changed since the
// last load. Callers hold p.mu.
func (p *GraphProber) refreshLocked() error {
	fi, err := os.Stat(p.path)
	if err != nil {
		return fmt.Errorf("autoheal: probing graph: %w", err)
	}
	if p.g != nil && fi.ModTime().Equal(p.mtime) && fi.Size() == p.size {
		return nil
	}
	g, err := graph.ReadFile(p.path)
	if err != nil {
		return fmt.Errorf("autoheal: reloading probe graph: %w", err)
	}
	p.g = g
	p.ws = sssp.NewWorkspace(g)
	p.buf = nil
	p.mtime = fi.ModTime()
	p.size = fi.Size()
	return nil
}

// Graph returns the most recently loaded graph (nil before the first
// Sample). The heal path uses it to retrain against exactly the graph
// the drift was measured on.
func (p *GraphProber) Graph() *graph.Graph {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.g
}

// Sample implements Config.Sample: up to n observations over fresh
// random pairs, a few targets per Dijkstra source. Pairs whose truth
// or estimate is unusable (disconnected, out of the serving model's
// range) are skipped, so a round may return fewer than n.
func (p *GraphProber) Sample(ctx context.Context, n int) ([]Observation, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.refreshLocked(); err != nil {
		return nil, err
	}
	const perSource = 8
	nv := p.g.NumVertices()
	if nv < 2 {
		return nil, fmt.Errorf("autoheal: probe graph has %d vertices", nv)
	}
	out := make([]Observation, 0, n)
	for len(out) < n {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		s := int32(p.rng.Intn(nv))
		p.buf = p.ws.FromSource(s, p.buf)
		for j := 0; j < perSource && len(out) < n; j++ {
			t := int32(p.rng.Intn(nv))
			if t == s || p.buf[t] >= sssp.Inf || !(p.buf[t] > 0) {
				continue
			}
			est, err := p.estimate(s, t)
			if err != nil {
				continue
			}
			out = append(out, Observation{Est: est, Truth: p.buf[t]})
		}
	}
	return out, nil
}
