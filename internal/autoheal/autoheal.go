// Package autoheal closes the drift→retrain→swap loop: a background
// controller probes serving accuracy against exact shortest-path
// truth, detects when a regime shift (rush hour, incidents, any edge
// weight change) has pushed model error past an error budget, and
// drives a repair — an incremental retrain published to the registry
// and installed through the server's validate-before-swap path —
// without a human in the loop.
//
// The controller is deliberately mechanism-free: sampling, healing and
// version reporting are injected callbacks, so it composes with any
// serving stack and is unit-testable with fakes. What it owns is the
// control policy: a dedicated drift monitor with its own warmup
// baseline, a dwell requirement before triggering (one bad tick is
// noise, N consecutive bad ticks are a regime), hysteresis on re-arm,
// a cooldown after every heal attempt, a single-flight guard against
// concurrent retrains, and rollback accounting when a heal fails.
//
// Why a dedicated monitor instead of the serving DriftMonitor: the
// serving monitor scores estimates against the ALT guard's certified
// intervals, but after a weight perturbation the serving ALT index is
// itself stale, so the serving signal underestimates real drift
// exactly when it matters. The controller's probes compare served
// estimates against freshly computed exact distances over the live
// graph, a signal that stays honest through the shift.
package autoheal

import (
	"context"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Controller states, in lifecycle order. Every transition increments
// rne_autoheal_transitions_total{state=...}.
const (
	StateArmed      = "armed"
	StateTriggered  = "triggered"
	StateRetraining = "retraining"
	StateSwapped    = "swapped"
	StateRolledBack = "rolled-back"
)

// Observation is one accuracy probe: the estimate the serving path
// returned for a pair and the exact shortest-path distance computed
// over the live graph.
type Observation struct {
	Est   float64
	Truth float64
}

// Config wires a Controller to its environment. Sample, Heal and
// Version are required; zero tuning fields select the documented
// defaults.
type Config struct {
	// Sample returns up to n fresh probe observations (served estimate
	// vs exact truth). Called once per tick from the control loop.
	Sample func(ctx context.Context, n int) ([]Observation, error)
	// Heal repairs the model — typically fine-tune against the live
	// graph, publish to the registry, hot-swap — and returns the new
	// serving version. Called at most once at a time (single-flight).
	Heal func(ctx context.Context) (string, error)
	// Version reports the currently-serving model version label.
	Version func() string
	// MaxDist returns the distance scale for drift bands (the serving
	// model's diameter estimate). Re-read after every successful heal,
	// so the rebuilt monitor bands against the new model's scale.
	MaxDist func() float64

	// Interval is the probe tick period (default 2s).
	Interval time.Duration
	// Probes is the number of probe pairs per tick (default 32).
	Probes int
	// Budget is the drift-score error budget: recent error over frozen
	// baseline (default 3; must be > 1).
	Budget float64
	// Dwell is how many consecutive over-budget ticks must accumulate
	// before a heal triggers (default 3). One bad tick is noise.
	Dwell int
	// ReArm is the hysteresis fraction: the dwell counter only resets
	// once the score drops below ReArm*Budget (default 0.8), so a score
	// oscillating around the budget cannot flap the trigger.
	ReArm float64
	// Cooldown is the minimum wait after any heal attempt — success or
	// failure — before the next trigger (default 30s).
	Cooldown time.Duration
	// Warmup is the number of observations freezing the monitor's
	// baseline (default 96); Bands the number of distance bands
	// (default telemetry.DefaultDriftBands).
	Warmup int
	Bands  int
	// Alpha is the probe monitor's EWMA smoothing factor (default
	// 0.05: a half-life of ~14 probes, so a regime shift dominates the
	// recent-error estimate within a couple of ticks).
	Alpha float64

	// Registry receives the rne_autoheal_* metric families.
	Registry *telemetry.Registry
	// Logger receives transition and failure logs (nil discards).
	Logger *slog.Logger
	// Tracer, when non-nil, records every heal attempt as a
	// force-sampled root trace (heal attempts are rare and expensive —
	// head sampling must never lose one), with the Heal callback's
	// fine-tune/publish/swap phases as child spans.
	Tracer *telemetry.RequestTracer
}

func (c Config) withDefaults() (Config, error) {
	if c.Sample == nil || c.Heal == nil || c.Version == nil || c.MaxDist == nil {
		return c, fmt.Errorf("autoheal: Sample, Heal, Version and MaxDist callbacks are required")
	}
	if c.Registry == nil {
		return c, fmt.Errorf("autoheal: Registry is required")
	}
	if c.Interval <= 0 {
		c.Interval = 2 * time.Second
	}
	if c.Probes <= 0 {
		c.Probes = 32
	}
	if c.Budget == 0 {
		c.Budget = 3
	}
	if c.Budget <= 1 {
		return c, fmt.Errorf("autoheal: Budget must be > 1, got %v", c.Budget)
	}
	if c.Dwell <= 0 {
		c.Dwell = 3
	}
	if c.ReArm == 0 {
		c.ReArm = 0.8
	}
	if c.ReArm <= 0 || c.ReArm > 1 {
		return c, fmt.Errorf("autoheal: ReArm must be in (0,1], got %v", c.ReArm)
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 30 * time.Second
	}
	if c.Warmup <= 0 {
		c.Warmup = 96
	}
	if c.Alpha == 0 {
		c.Alpha = 0.05
	}
	return c, nil
}

// State is the controller's point-in-time view, exposed on /statz.
type State struct {
	State       string  `json:"state"`
	Score       float64 `json:"score"`
	Budget      float64 `json:"budget"`
	Warm        bool    `json:"warm"`
	OverBudget  int     `json:"over_budget_ticks"`
	Dwell       int     `json:"dwell"`
	Version     string  `json:"version"`
	Heals       int64   `json:"heals"`
	HealFails   int64   `json:"heal_failures"`
	LastError   string  `json:"last_error,omitempty"`
	CooldownSec float64 `json:"cooldown_remaining_seconds,omitempty"`
}

// Controller runs the drift→retrain→swap control loop. Create with
// New, start with Start, stop by canceling the context (Stop waits).
type Controller struct {
	cfg Config

	transitions map[string]*telemetry.Counter
	scoreG      *telemetry.Gauge
	healsC      *telemetry.Counter
	healFailsC  *telemetry.Counter

	mu            sync.Mutex
	monitor       *telemetry.DriftMonitor
	state         string
	overBudget    int
	heals         int64
	healFails     int64
	lastErr       string
	cooldownUntil time.Time
	healing       bool // single-flight: a heal is in progress

	wg sync.WaitGroup
}

// New validates cfg and returns a stopped controller with a fresh
// probe drift monitor registered on cfg.Registry.
func New(cfg Config) (*Controller, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	c := &Controller{
		cfg:         cfg,
		state:       StateArmed,
		transitions: make(map[string]*telemetry.Counter, 6),
		scoreG: cfg.Registry.Gauge("rne_autoheal_score",
			"Probe drift score the controller last observed (recent error over baseline)."),
		healsC: cfg.Registry.Counter("rne_autoheal_heals_total",
			"Successful autonomous heal cycles (retrain + hot swap)."),
		healFailsC: cfg.Registry.Counter("rne_autoheal_heal_failures_total",
			"Heal attempts that failed and rolled back to the last good version."),
	}
	for _, st := range []string{StateArmed, StateTriggered, StateRetraining, StateSwapped, StateRolledBack} {
		c.transitions[st] = cfg.Registry.Counter("rne_autoheal_transitions_total",
			"Autoheal controller state transitions, by state entered.", "state", st)
	}
	c.scoreG.Set(1)
	if err := c.resetMonitorLocked(); err != nil {
		return nil, err
	}
	return c, nil
}

// resetMonitorLocked rebuilds the probe monitor with a fresh warmup
// baseline at the current model scale. The telemetry registry hands
// back the same series for the same names, so the metric families
// persist across resets; only the baseline/EWMA state restarts —
// which is the point: after a swap the new model must earn a new
// baseline before its scores mean anything, so the first post-swap
// observations can never fire a spurious trigger.
func (c *Controller) resetMonitorLocked() error {
	maxDist := c.cfg.MaxDist()
	m, err := telemetry.NewDriftMonitorNamed(c.cfg.Registry, "rne_autoheal_drift",
		maxDist, c.cfg.Bands, c.cfg.Warmup)
	if err != nil {
		return fmt.Errorf("autoheal: probe monitor: %w", err)
	}
	m.SetAlpha(c.cfg.Alpha)
	c.monitor = m
	c.overBudget = 0
	return nil
}

// transition records entering a state: counter, gauge-side log.
func (c *Controller) transition(state string) {
	c.state = state
	if ctr := c.transitions[state]; ctr != nil {
		ctr.Inc()
	}
	telemetry.OrNop(c.cfg.Logger).Info("autoheal transition", "state", state, "version", c.cfg.Version())
}

// Start launches the control loop; it runs until ctx is canceled.
func (c *Controller) Start(ctx context.Context) {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		ticker := time.NewTicker(c.cfg.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				c.tick(ctx)
			}
		}
	}()
}

// Stop blocks until the control loop has exited (cancel the Start
// context first).
func (c *Controller) Stop() { c.wg.Wait() }

// tick runs one probe round and, when the dwell budget is spent,
// a heal. Exported indirectly through Start; tests drive it directly
// for deterministic control.
func (c *Controller) tick(ctx context.Context) {
	c.mu.Lock()
	if c.healing || time.Now().Before(c.cooldownUntil) {
		c.mu.Unlock()
		return
	}
	monitor := c.monitor
	c.mu.Unlock()

	obs, err := c.cfg.Sample(ctx, c.cfg.Probes)
	if err != nil {
		telemetry.OrNop(c.cfg.Logger).Warn("autoheal probe round failed", "error", err)
		return
	}
	for _, o := range obs {
		// An exact truth is a zero-width certified interval: the probe
		// deviation is |est-truth|/truth, the true relative error.
		monitor.Observe(o.Est, o.Truth, o.Truth)
	}
	snap := monitor.Snapshot()
	c.scoreG.Set(snap.Score)

	c.mu.Lock()
	if !snap.Warm {
		c.mu.Unlock()
		return
	}
	trigger := false
	switch {
	case snap.Score > c.cfg.Budget:
		c.overBudget++
		trigger = c.overBudget >= c.cfg.Dwell
	case snap.Score < c.cfg.ReArm*c.cfg.Budget:
		// Hysteresis: only a clearly-healthy score resets the dwell
		// counter; scores in the dead band between ReArm*Budget and
		// Budget hold it, so oscillation cannot flap the trigger.
		c.overBudget = 0
	}
	if !trigger {
		c.mu.Unlock()
		return
	}
	c.healing = true // single-flight: later ticks bail until we clear it
	c.transition(StateTriggered)
	c.mu.Unlock()

	c.heal(ctx, snap.Score)
}

// heal runs one repair attempt synchronously and re-arms.
func (c *Controller) heal(ctx context.Context, score float64) {
	log := telemetry.OrNop(c.cfg.Logger)
	from := c.cfg.Version()
	c.mu.Lock()
	c.transition(StateRetraining)
	c.mu.Unlock()
	log.Warn("autoheal: drift past budget, retraining",
		"score", score, "budget", c.cfg.Budget, "serving", from)

	ctx, span := c.cfg.Tracer.StartSpanForced(ctx, "autoheal.heal")
	span.SetAttr("from", from)
	span.SetAttr("score", fmt.Sprintf("%.3f", score))
	version, err := c.cfg.Heal(ctx)
	if err == nil {
		span.SetAttr("to", version)
	}
	span.SetError(err)
	span.End()

	c.mu.Lock()
	defer c.mu.Unlock()
	c.cooldownUntil = time.Now().Add(c.cfg.Cooldown)
	c.healing = false
	if err != nil {
		c.healFails++
		c.healFailsC.Inc()
		c.lastErr = err.Error()
		c.transition(StateRolledBack)
		// Re-arm without resetting the monitor: the model is still the
		// drifted one, so the next dwell window should accumulate from
		// live scores, not from a fresh baseline over a broken model.
		c.overBudget = 0
		c.transition(StateArmed)
		log.Error("autoheal: heal failed, still serving last good version",
			"error", err, "serving", c.cfg.Version(), "cooldown", c.cfg.Cooldown)
		return
	}
	c.heals++
	c.healsC.Inc()
	c.lastErr = ""
	c.transition(StateSwapped)
	// The swap installed a new model: rebuild the probe monitor so the
	// new model earns a fresh warmup baseline at its own scale.
	if merr := c.resetMonitorLocked(); merr != nil {
		log.Error("autoheal: rebuilding probe monitor after swap", "error", merr)
	}
	c.scoreG.Set(1)
	c.transition(StateArmed)
	log.Info("autoheal: healed", "from", from, "to", version, "cooldown", c.cfg.Cooldown)
}

// State returns the controller's current view for /statz.
func (c *Controller) State() State {
	c.mu.Lock()
	defer c.mu.Unlock()
	snap := c.monitor.Snapshot()
	st := State{
		State:      c.state,
		Score:      snap.Score,
		Budget:     c.cfg.Budget,
		Warm:       snap.Warm,
		OverBudget: c.overBudget,
		Dwell:      c.cfg.Dwell,
		Version:    c.cfg.Version(),
		Heals:      c.heals,
		HealFails:  c.healFails,
		LastError:  c.lastErr,
	}
	if rem := time.Until(c.cooldownUntil); rem > 0 {
		st.CooldownSec = rem.Seconds()
	}
	return st
}
