package nn

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New([]int{5}, 1); err == nil {
		t.Error("single layer size accepted")
	}
	if _, err := New([]int{5, 3}, 1); err == nil {
		t.Error("output size != 1 accepted")
	}
	if _, err := New([]int{5, 0, 1}, 1); err == nil {
		t.Error("zero layer size accepted")
	}
	m, err := New([]int{4, 7, 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := 4*7 + 7 + 7*1 + 1
	if m.NumParams() != want {
		t.Fatalf("NumParams = %d, want %d", m.NumParams(), want)
	}
}

func TestLearnsLinearFunction(t *testing.T) {
	m, err := New([]int{2, 8, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	target := func(x []float64) float64 { return 0.3*x[0] - 0.7*x[1] + 0.2 }
	for step := 0; step < 8000; step++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64()}
		m.Step(x, target(x), 1e-2)
	}
	var mse float64
	const trials = 200
	for i := 0; i < trials; i++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64()}
		d := m.Forward(x) - target(x)
		mse += d * d
	}
	mse /= trials
	if mse > 1e-3 {
		t.Fatalf("MSE %v on a linear target", mse)
	}
}

func TestLearnsNonlinearFunction(t *testing.T) {
	m, err := New([]int{1, 32, 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	target := func(x float64) float64 { return math.Abs(x) }
	for step := 0; step < 30000; step++ {
		x := rng.Float64()*4 - 2
		m.Step([]float64{x}, target(x), 3e-3)
	}
	var mse float64
	const trials = 200
	for i := 0; i < trials; i++ {
		x := rng.Float64()*4 - 2
		d := m.Forward([]float64{x}) - target(x)
		mse += d * d
	}
	mse /= trials
	if mse > 5e-3 {
		t.Fatalf("MSE %v on |x|", mse)
	}
}

func TestStepReturnsLoss(t *testing.T) {
	m, err := New([]int{1, 2, 1}, 6)
	if err != nil {
		t.Fatal(err)
	}
	pred := m.Forward([]float64{1})
	loss := m.Step([]float64{1}, 5, 1e-3)
	want := (pred - 5) * (pred - 5)
	if math.Abs(loss-want) > 1e-9 {
		t.Fatalf("loss %v, want %v", loss, want)
	}
}

func TestDeterministicInit(t *testing.T) {
	a, _ := New([]int{3, 4, 1}, 9)
	b, _ := New([]int{3, 4, 1}, 9)
	x := []float64{0.1, -0.2, 0.3}
	if a.Forward(x) != b.Forward(x) {
		t.Fatal("same seed produced different networks")
	}
	c, _ := New([]int{3, 4, 1}, 10)
	if a.Forward(x) == c.Forward(x) {
		t.Fatal("different seeds produced identical networks")
	}
}
