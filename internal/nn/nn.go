// Package nn is a minimal dense neural network (ReLU hidden layers,
// linear scalar output) with Adam, sized for the paper's DR baseline:
// fully-connected distance regressors of roughly 1K, 10K and 100K
// parameters over DeepWalk features.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// layer is one dense layer with Adam state.
type layer struct {
	in, out int
	w, b    []float64 // w is out x in row-major
	// Adam moments.
	mw, vw, mb, vb []float64
	// scratch
	x, z []float64 // last input, last pre-activation
	dx   []float64 // gradient w.r.t. input
}

// MLP is a feed-forward regressor producing one scalar.
type MLP struct {
	layers []*layer
	t      int // Adam step counter
}

// New builds an MLP with the given layer sizes, e.g. [198, 50, 1].
// The final size must be 1. Weights use He initialization.
func New(sizes []int, seed int64) (*MLP, error) {
	if len(sizes) < 2 {
		return nil, fmt.Errorf("nn: need at least input and output sizes, got %v", sizes)
	}
	if sizes[len(sizes)-1] != 1 {
		return nil, fmt.Errorf("nn: output size must be 1, got %d", sizes[len(sizes)-1])
	}
	for _, s := range sizes {
		if s < 1 {
			return nil, fmt.Errorf("nn: layer sizes must be positive, got %v", sizes)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	m := &MLP{}
	for i := 0; i+1 < len(sizes); i++ {
		in, out := sizes[i], sizes[i+1]
		l := &layer{
			in: in, out: out,
			w: make([]float64, in*out), b: make([]float64, out),
			mw: make([]float64, in*out), vw: make([]float64, in*out),
			mb: make([]float64, out), vb: make([]float64, out),
			z: make([]float64, out), dx: make([]float64, in),
		}
		std := math.Sqrt(2.0 / float64(in))
		for j := range l.w {
			l.w[j] = rng.NormFloat64() * std
		}
		m.layers = append(m.layers, l)
	}
	return m, nil
}

// NumParams returns the number of trainable parameters.
func (m *MLP) NumParams() int {
	n := 0
	for _, l := range m.layers {
		n += len(l.w) + len(l.b)
	}
	return n
}

// Forward evaluates the network on x (length = input size).
func (m *MLP) Forward(x []float64) float64 {
	cur := x
	last := len(m.layers) - 1
	for li, l := range m.layers {
		l.x = cur
		for o := 0; o < l.out; o++ {
			s := l.b[o]
			row := l.w[o*l.in : (o+1)*l.in]
			for i, xi := range cur {
				s += row[i] * xi
			}
			if li != last && s < 0 {
				s = 0 // ReLU
			}
			l.z[o] = s
		}
		cur = l.z
	}
	return cur[0]
}

const (
	adamB1  = 0.9
	adamB2  = 0.999
	adamEps = 1e-8
)

// Step performs one Adam update on a single example against squared
// error and returns the loss. Forward state from this call is used for
// the backward pass.
func (m *MLP) Step(x []float64, y, lr float64) float64 {
	pred := m.Forward(x)
	diff := pred - y
	loss := diff * diff

	m.t++
	corr1 := 1 - math.Pow(adamB1, float64(m.t))
	corr2 := 1 - math.Pow(adamB2, float64(m.t))

	// Backward: dL/dpred = 2*diff.
	grad := []float64{2 * diff}
	last := len(m.layers) - 1
	for li := last; li >= 0; li-- {
		l := m.layers[li]
		for i := range l.dx {
			l.dx[i] = 0
		}
		for o := 0; o < l.out; o++ {
			g := grad[o]
			if li != last && l.z[o] == 0 {
				continue // ReLU gate closed
			}
			row := l.w[o*l.in : (o+1)*l.in]
			for i := range row {
				l.dx[i] += row[i] * g
			}
			// Adam on weights and bias.
			for i := range row {
				gw := g * l.x[i]
				k := o*l.in + i
				l.mw[k] = adamB1*l.mw[k] + (1-adamB1)*gw
				l.vw[k] = adamB2*l.vw[k] + (1-adamB2)*gw*gw
				row[i] -= lr * (l.mw[k] / corr1) / (math.Sqrt(l.vw[k]/corr2) + adamEps)
			}
			l.mb[o] = adamB1*l.mb[o] + (1-adamB1)*g
			l.vb[o] = adamB2*l.vb[o] + (1-adamB2)*g*g
			l.b[o] -= lr * (l.mb[o] / corr1) / (math.Sqrt(l.vb[o]/corr2) + adamEps)
		}
		grad = l.dx
	}
	return loss
}
