package gateway

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/resilience"
)

// jsonBackend is a synthetic replica answering every request with the
// given handler; used where tests need exact control over status codes
// and timing rather than a real model.
func jsonBackend(t *testing.T, h http.HandlerFunc) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return ts
}

// ownerOf finds a source vertex currently routed to the backend with
// the given base URL, so tests can aim requests at a specific replica.
func ownerOf(t *testing.T, gw *Gateway, base string) int32 {
	t.Helper()
	for src := int32(0); src < 4096; src++ {
		if b := gw.pick(src, nil); b != nil && b.base == strings.TrimRight(base, "/") {
			return src
		}
	}
	t.Fatalf("no vertex routed to %s", base)
	return 0
}

// A backend answering 429 is saturated, not dead: the gateway retries
// the request elsewhere, never counts the shed toward ejection, and
// the shedding replica keeps its place on the ring.
func TestBackpressureNotCountedAgainstHealth(t *testing.T) {
	_, m := buildModel(t)
	shedding := jsonBackend(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "0.5")
		http.Error(w, `{"error":"saturated"}`, http.StatusTooManyRequests)
	})
	real := newBackend(t, m, nil, "v1")
	gw := newGateway(t, Config{
		Backends:       []string{shedding.URL, real.URL},
		HealthInterval: time.Hour,
		EjectAfter:     1, // any miscounted failure would eject immediately
	})
	ts := httptest.NewServer(gw.Handler())
	defer ts.Close()

	src := ownerOf(t, gw, shedding.URL)
	resp, err := http.Get(fmt.Sprintf("%s/distance?s=%d&t=1", ts.URL, src))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retry around backpressure = %d, want 200", resp.StatusCode)
	}
	var shed *backend
	for _, b := range gw.backends {
		if b.base == strings.TrimRight(shedding.URL, "/") {
			shed = b
		}
	}
	if shed.failures.Value() != 0 {
		t.Fatalf("backpressure counted as %d failures", shed.failures.Value())
	}
	if shed.backpressure.Value() == 0 {
		t.Fatal("backpressure not counted on its own meter")
	}
	if gw.HealthyBackends() != 2 {
		t.Fatal("a shedding backend was ejected")
	}
	if gw.retries.Value() == 0 {
		t.Fatal("request was not retried off the shedding backend")
	}
}

// When the whole reachable fleet sheds and the retry budget is dry,
// the gateway relays the backend's own 429 (keeping its Retry-After)
// instead of inventing a 502 for replicas that are alive.
func TestDrainedRetryBudgetRelaysBackpressure(t *testing.T) {
	shed := func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "0.7")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error":"saturated"}`))
	}
	b1 := jsonBackend(t, shed)
	b2 := jsonBackend(t, shed)
	gw := newGateway(t, Config{
		Backends:       []string{b1.URL, b2.URL},
		HealthInterval: time.Hour,
		RetryBudget:    -1, // retries disabled: first shed is final
	})
	ts := httptest.NewServer(gw.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/distance?s=1&t=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("relayed backpressure = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "0.7" {
		t.Fatalf("backend Retry-After lost in relay: %q", resp.Header.Get("Retry-After"))
	}
	if gw.retriesDenied.Value() == 0 {
		t.Fatal("denied retry not counted")
	}
	if gw.retries.Value() != 0 {
		t.Fatal("a retry ran with a disabled budget")
	}
	if gw.HealthyBackends() != 2 {
		t.Fatal("shedding fleet was ejected")
	}
}

// A client disconnecting while the gateway is mid-retry (first backend
// dead, second attempt in flight) must neither leak the retry attempt
// nor count the abandoned sub-request against the retry target's
// health.
func TestClientCancelMidRetry(t *testing.T) {
	dead := jsonBackend(t, func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	})
	retryEntered := make(chan struct{}, 4)
	stuck := jsonBackend(t, func(w http.ResponseWriter, r *http.Request) {
		retryEntered <- struct{}{}
		<-r.Context().Done()
	})
	gw := newGateway(t, Config{
		Backends:       []string{dead.URL, stuck.URL},
		HealthInterval: time.Hour,
		EjectAfter:     1,
	})
	ts := httptest.NewServer(gw.Handler())
	defer ts.Close()

	src := ownerOf(t, gw, dead.URL)
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/distance?s=%d&t=1", ts.URL, src), nil)
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errCh <- err
	}()
	// Wait until the retry attempt has landed on the stuck backend, then
	// hang up mid-retry.
	select {
	case <-retryEntered:
	case <-time.After(5 * time.Second):
		t.Fatal("retry never reached the second backend")
	}
	cancel()
	if err := <-errCh; err == nil {
		t.Fatal("expected the canceled request to fail")
	}

	var stuckB *backend
	for _, b := range gw.backends {
		if b.base == strings.TrimRight(stuck.URL, "/") {
			stuckB = b
		}
	}
	waitFor(t, "cancel accounting on the retry target", func() bool {
		return stuckB.cancels.Value() >= 1
	})
	if stuckB.failures.Value() != 0 {
		t.Fatalf("abandoned retry counted as %d failures on its target", stuckB.failures.Value())
	}
	if !stuckB.healthy.Load() {
		t.Fatal("client disconnect mid-retry ejected the retry target")
	}
	if gw.retries.Value() == 0 {
		t.Fatal("the retry was never attempted")
	}
}

// Partial degradation: with one backend dead and retries disabled, a
// batch spanning both shards comes back 206 with partial: true, the
// dead shard's pairs as indexed error entries, and every surviving
// distance bit-exact against the model.
func TestBatchPartial206(t *testing.T) {
	_, m := buildModel(t)
	alive := newBackend(t, m, nil, "v1")
	doomed := newBackend(t, m, nil, "v1")
	gw := newGateway(t, Config{
		Backends:       []string{alive.URL, doomed.URL},
		HealthInterval: time.Hour,
		RetryBudget:    -1, // no failover: the dead shard must degrade
		EjectAfter:     100,
	})
	ts := httptest.NewServer(gw.Handler())
	defer ts.Close()

	pairs := make([][2]int32, 32)
	for i := range pairs {
		pairs[i] = [2]int32{int32(i * 2 % 64), int32((i*5 + 7) % 64)}
	}
	// Record routing before the kill: passive-only health means the
	// grouping still targets the dead replica afterwards.
	doomedOwned := make(map[int]bool)
	for i, p := range pairs {
		if gw.pick(p[0], nil).base == strings.TrimRight(doomed.URL, "/") {
			doomedOwned[i] = true
		}
	}
	if len(doomedOwned) == 0 || len(doomedOwned) == len(pairs) {
		t.Fatalf("degenerate split: %d of %d pairs on the doomed backend", len(doomedOwned), len(pairs))
	}
	doomed.Close()

	resp, out := postBatch(t, ts, batchBody(pairs))
	if resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("degraded batch = %d %v, want 206", resp.StatusCode, out)
	}
	if out["partial"] != true {
		t.Fatalf("206 response not marked partial: %v", out)
	}
	dists := out["distances"].([]any)
	errsAny := out["errors"].([]any)
	if len(dists) != len(pairs) {
		t.Fatalf("partial merge has %d slots for %d pairs", len(dists), len(pairs))
	}
	erred := make(map[int]bool)
	lastIdx := -1
	for _, e := range errsAny {
		entry := e.(map[string]any)
		idx := int(entry["index"].(float64))
		if entry["error"].(string) == "" {
			t.Fatalf("error entry %d has no message", idx)
		}
		if idx <= lastIdx {
			t.Fatalf("error entries not sorted by index: %v after %v", idx, lastIdx)
		}
		lastIdx = idx
		erred[idx] = true
	}
	for i, p := range pairs {
		if doomedOwned[i] != erred[i] {
			t.Fatalf("pair %d: owned-by-dead=%v but error-entry=%v", i, doomedOwned[i], erred[i])
		}
		if erred[i] {
			if dists[i] != nil {
				t.Fatalf("failed pair %d has a non-null distance %v", i, dists[i])
			}
			continue
		}
		// Surviving pairs must be bit-exact: partial degradation may drop
		// answers but never corrupt them.
		if dists[i].(float64) != m.Estimate(p[0], p[1]) {
			t.Fatalf("surviving pair %d: got %v want %v", i, dists[i], m.Estimate(p[0], p[1]))
		}
	}
	if _, ok := out["lo"]; ok {
		t.Fatal("partial response kept guard bounds it cannot certify")
	}
	if gw.batchPartial.Value() != 1 {
		t.Fatalf("rne_batch_partial_total = %d, want 1", gw.batchPartial.Value())
	}
	if gw.pairErrors.Value() != int64(len(errsAny)) {
		t.Fatalf("rne_batch_pair_errors_total = %d, want %d", gw.pairErrors.Value(), len(errsAny))
	}

	// A batch aimed entirely at the dead shard fails whole: partial
	// responses require at least one served pair.
	var deadPairs [][2]int32
	for i, p := range pairs {
		if doomedOwned[i] {
			deadPairs = append(deadPairs, p)
		}
	}
	resp, _ = postBatch(t, ts, batchBody(deadPairs))
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("all-shards-failed batch = %d, want 502", resp.StatusCode)
	}
}

// Opt-in hedging: a slow primary is raced against the next ring owner
// after the hedge delay, the first answer wins, and the win is
// recorded under rne_hedges_total{won="hedge"}.
func TestHedgedDistanceFirstAnswerWins(t *testing.T) {
	slow := jsonBackend(t, func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
			return
		case <-time.After(2 * time.Second):
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"distance":1,"who":"slow"}`))
	})
	fast := jsonBackend(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"distance":2,"who":"fast"}`))
	})
	gw := newGateway(t, Config{
		Backends:       []string{slow.URL, fast.URL},
		HealthInterval: time.Hour,
		Hedge:          true,
		HedgeMinDelay:  time.Millisecond,
		HedgeMaxDelay:  20 * time.Millisecond, // cold histogram -> hedge at 20ms
	})
	ts := httptest.NewServer(gw.Handler())
	defer ts.Close()

	src := ownerOf(t, gw, slow.URL)
	start := time.Now()
	resp, err := http.Get(fmt.Sprintf("%s/distance?s=%d&t=1", ts.URL, src))
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hedged request = %d %v", resp.StatusCode, out)
	}
	if out["who"] != "fast" {
		t.Fatalf("hedge did not win against a 2s primary: %v", out)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("hedged answer took %v; the slow primary was awaited", elapsed)
	}
	if gw.hedgeWins["hedge"].Value() != 1 {
		t.Fatalf(`rne_hedges_total{won="hedge"} = %d, want 1`, gw.hedgeWins["hedge"].Value())
	}
}

// The gateway forwards its remaining deadline budget to backends, and
// answers 504 itself when the inbound budget is already too small to
// attempt a call.
func TestBudgetForwardedAndExhausted(t *testing.T) {
	var gotBudget atomic.Value
	echo := jsonBackend(t, func(w http.ResponseWriter, r *http.Request) {
		gotBudget.Store(r.Header.Get(resilience.BudgetHeader))
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"distance":1}`))
	})
	gw := newGateway(t, Config{
		Backends:       []string{echo.URL},
		HealthInterval: time.Hour,
		RequestTimeout: time.Second,
		BudgetMargin:   5 * time.Millisecond,
	})
	ts := httptest.NewServer(gw.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/distance?s=1&t=2")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	raw, _ := gotBudget.Load().(string)
	if raw == "" {
		t.Fatal("no budget header forwarded to the backend")
	}
	var ms float64
	if _, err := fmt.Sscanf(raw, "%f", &ms); err != nil || ms <= 0 || ms > 1000 {
		t.Fatalf("forwarded budget %q not within (0, 1000ms]", raw)
	}

	// An inbound budget smaller than the margin cannot buy a backend
	// call: the gateway answers 504 without touching the fleet.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/distance?s=1&t=2", nil)
	req.Header.Set(resilience.BudgetHeader, "300") // 300ms < 400ms margin below
	gw2 := newGateway(t, Config{
		Backends:       []string{echo.URL},
		HealthInterval: time.Hour,
		BudgetMargin:   400 * time.Millisecond,
	})
	ts2 := httptest.NewServer(gw2.Handler())
	defer ts2.Close()
	req.URL, _ = req.URL.Parse(ts2.URL + "/distance?s=1&t=2")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("exhausted budget = %d, want 504", resp.StatusCode)
	}
}

// A replica shedding its own /readyz probe with 429 stays routed: shed
// probes mean saturation, and ejecting the saturated would shrink the
// fleet exactly when capacity is scarcest.
func TestProbe429KeepsBackendRouted(t *testing.T) {
	busy := jsonBackend(t, func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"saturated"}`, http.StatusTooManyRequests)
	})
	gw := newGateway(t, Config{
		Backends:       []string{busy.URL},
		HealthInterval: 2 * time.Millisecond,
		EjectAfter:     1,
	})
	time.Sleep(30 * time.Millisecond) // several probe rounds
	if gw.HealthyBackends() != 1 {
		t.Fatal("429 probes ejected a saturated-but-alive backend")
	}
	b := gw.backends[0]
	if b.failures.Value() != 0 {
		t.Fatalf("shed probes counted as %d failures", b.failures.Value())
	}
}
