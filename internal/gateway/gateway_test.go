package gateway

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/alt"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/hybrid"
	"repro/internal/server"
)

func buildModel(t *testing.T) (*graph.Graph, *core.Model) {
	t.Helper()
	g, err := gen.Grid(8, 8, gen.DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions(1)
	opt.Dim = 8
	opt.Epochs = 2
	opt.VertexSampleRatio = 10
	opt.FineTuneRounds = 1
	opt.HierSampleCap = 2000
	opt.ValidationPairs = 50
	m, _, err := core.Build(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	return g, m
}

// newBackend spins up a real rneserver replica over m.
func newBackend(t *testing.T, m *core.Model, guard *hybrid.Estimator, version string) *httptest.Server {
	t.Helper()
	srv, err := server.NewFromSet(server.ModelSet{Model: m, Guard: guard, Version: version}, server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func newGateway(t *testing.T, cfg Config) *Gateway {
	t.Helper()
	gw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { gw.Close() })
	return gw
}

func postBatch(t *testing.T, ts *httptest.Server, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func batchBody(pairs [][2]int32) string {
	b, _ := json.Marshal(batchRequest{Pairs: pairs})
	return string(b)
}

func TestRingStableAndMinimallyDisruptive(t *testing.T) {
	ids := []string{"a:1", "b:1", "c:1"}
	r := newRing(ids, 64)
	all := func(i int) bool { return true }
	owners := make([]int, 1000)
	counts := make([]int, len(ids))
	for v := int32(0); v < 1000; v++ {
		owners[v] = r.walk(v, all)
		if owners[v] != r.walk(v, all) {
			t.Fatalf("ring not deterministic at key %d", v)
		}
		counts[owners[v]]++
	}
	for i, c := range counts {
		if c == 0 {
			t.Fatalf("backend %d owns no keys out of 1000", i)
		}
	}
	// Ejecting backend 0 must only move backend 0's keys.
	for v := int32(0); v < 1000; v++ {
		moved := r.walk(v, func(i int) bool { return i != 0 })
		if owners[v] != 0 && moved != owners[v] {
			t.Fatalf("key %d moved from %d to %d though its owner stayed healthy", v, owners[v], moved)
		}
		if owners[v] == 0 && moved == 0 {
			t.Fatalf("key %d still routed to the ejected backend", v)
		}
	}
}

func TestFanOutMergesInOrder(t *testing.T) {
	_, m := buildModel(t)
	b1 := newBackend(t, m, nil, "v1")
	b2 := newBackend(t, m, nil, "v1")
	gw := newGateway(t, Config{
		Backends:       []string{b1.URL, b2.URL},
		HealthInterval: time.Hour, // probes quiet; this test is pure routing
	})
	ts := httptest.NewServer(gw.Handler())
	defer ts.Close()

	pairs := make([][2]int32, 40)
	for i := range pairs {
		pairs[i] = [2]int32{int32(i % 64), int32((i*7 + 3) % 64)}
	}
	resp, out := postBatch(t, ts, batchBody(pairs))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %v", resp.StatusCode, out)
	}
	got := out["distances"].([]any)
	if len(got) != len(pairs) {
		t.Fatalf("merged %d distances, want %d", len(got), len(pairs))
	}
	for i, p := range pairs {
		if got[i].(float64) != m.Estimate(p[0], p[1]) {
			t.Fatalf("distance %d out of order or wrong: %v", i, got[i])
		}
	}
	// The batch must actually have been split: both replicas served.
	for _, b := range gw.backends {
		if b.requests.Value() == 0 {
			t.Fatalf("backend %s received no fan-out traffic", b.id)
		}
	}
}

func TestFanOutMergesGuardBounds(t *testing.T) {
	g, m := buildModel(t)
	lt, err := alt.Build(g, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	guard, err := hybrid.New(m, lt)
	if err != nil {
		t.Fatal(err)
	}
	b1 := newBackend(t, m, guard, "v1")
	b2 := newBackend(t, m, guard, "v1")
	gw := newGateway(t, Config{
		Backends:       []string{b1.URL, b2.URL},
		HealthInterval: time.Hour,
	})
	ts := httptest.NewServer(gw.Handler())
	defer ts.Close()

	pairs := [][2]int32{{0, 9}, {13, 60}, {33, 2}, {50, 41}, {8, 8}, {21, 5}}
	resp, out := postBatch(t, ts, batchBody(pairs))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %v", resp.StatusCode, out)
	}
	lo, lookLo := out["lo"].([]any)
	hi, lookHi := out["hi"].([]any)
	if !lookLo || !lookHi {
		t.Fatalf("guarded fan-out lost the certified bounds: %v", out)
	}
	if _, ok := out["clamped_count"]; !ok {
		t.Fatalf("guarded fan-out lost clamped_count: %v", out)
	}
	dist := out["distances"].([]any)
	for i := range pairs {
		d, l, h := dist[i].(float64), lo[i].(float64), hi[i].(float64)
		if d < l-1e-9 || d > h+1e-9 {
			t.Fatalf("pair %d: merged distance %v escapes merged bounds [%v,%v]", i, d, l, h)
		}
	}
}

func TestBatchServedWithBackendDown(t *testing.T) {
	_, m := buildModel(t)
	b1 := newBackend(t, m, nil, "v1")
	b2 := newBackend(t, m, nil, "v1")
	gw := newGateway(t, Config{
		Backends:       []string{b1.URL, b2.URL},
		HealthInterval: time.Hour, // passive detection only
		EjectAfter:     1,
	})
	ts := httptest.NewServer(gw.Handler())
	defer ts.Close()

	b2.Close() // one of two replicas drops dead

	pairs := make([][2]int32, 20)
	for i := range pairs {
		pairs[i] = [2]int32{int32(i * 3 % 64), int32((i + 11) % 64)}
	}
	// First request: sub-batches owned by the dead backend fail once and
	// retry onto the survivor — the client still sees a full 200.
	resp, out := postBatch(t, ts, batchBody(pairs))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch with one dead backend: status %d: %v", resp.StatusCode, out)
	}
	got := out["distances"].([]any)
	for i, p := range pairs {
		if got[i].(float64) != m.Estimate(p[0], p[1]) {
			t.Fatalf("distance %d wrong after failover: %v", i, got[i])
		}
	}
	if gw.ejections.Value() == 0 {
		t.Fatal("dead backend was not ejected")
	}
	if gw.HealthyBackends() != 1 {
		t.Fatalf("healthy backends = %d, want 1", gw.HealthyBackends())
	}
	// Second request: the ejected backend is skipped at routing time, so
	// the request succeeds with no retries needed.
	before := gw.retries.Value()
	resp, out = postBatch(t, ts, batchBody(pairs))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch after ejection: status %d: %v", resp.StatusCode, out)
	}
	if gw.retries.Value() != before {
		t.Fatalf("post-ejection batch still needed retries (%d -> %d)", before, gw.retries.Value())
	}

	// /readyz reports the degradation without going unready.
	rresp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var ready map[string]any
	json.NewDecoder(rresp.Body).Decode(&ready)
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusOK || ready["status"] != "degraded" {
		t.Fatalf("readyz with one backend down: %d %v", rresp.StatusCode, ready)
	}
}

func TestEjectedBackendRevivedByProbe(t *testing.T) {
	_, m := buildModel(t)
	b1 := newBackend(t, m, nil, "v1")

	// A backend that can be toggled unhealthy: while down it answers 503
	// to everything, which the gateway counts as failure.
	var down atomic.Bool
	srv, err := server.NewFromSet(server.ModelSet{Model: m, Version: "v1"}, server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	inner := srv.Handler()
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			http.Error(w, "down for maintenance", http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer flaky.Close()

	gw := newGateway(t, Config{
		Backends:       []string{b1.URL, flaky.URL},
		HealthInterval: 5 * time.Millisecond,
		BackoffBase:    time.Millisecond,
		BackoffMax:     5 * time.Millisecond,
		EjectAfter:     2,
	})
	ts := httptest.NewServer(gw.Handler())
	defer ts.Close()

	down.Store(true)
	waitFor(t, "ejection", func() bool { return gw.HealthyBackends() == 1 })

	down.Store(false)
	waitFor(t, "revival", func() bool { return gw.HealthyBackends() == 2 })
	if gw.revivals.Value() == 0 {
		t.Fatal("revival not counted")
	}

	// Restored backend serves traffic again.
	resp, out := postBatch(t, ts, batchBody([][2]int32{{0, 5}, {40, 9}}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch after revival: %d %v", resp.StatusCode, out)
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestAllBackendsDownIs503(t *testing.T) {
	_, m := buildModel(t)
	b1 := newBackend(t, m, nil, "v1")
	gw := newGateway(t, Config{
		Backends:       []string{b1.URL},
		HealthInterval: time.Hour,
		EjectAfter:     1,
	})
	ts := httptest.NewServer(gw.Handler())
	defer ts.Close()
	b1.Close()

	// First request ejects via the passive path (502 to the client, the
	// retry has nowhere to go)...
	resp, _ := postBatch(t, ts, batchBody([][2]int32{{0, 5}}))
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("batch with sole backend dead = %d, want 502", resp.StatusCode)
	}
	// ...after which routing finds no healthy backend at all.
	resp, _ = postBatch(t, ts, batchBody([][2]int32{{0, 5}}))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("batch with empty fleet = %d, want 503", resp.StatusCode)
	}
	rresp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz with empty fleet = %d, want 503", rresp.StatusCode)
	}
}

func TestDistanceProxyAndBadRequestRelay(t *testing.T) {
	_, m := buildModel(t)
	b1 := newBackend(t, m, nil, "v1")
	b2 := newBackend(t, m, nil, "v1")
	gw := newGateway(t, Config{
		Backends:       []string{b1.URL, b2.URL},
		HealthInterval: time.Hour,
	})
	ts := httptest.NewServer(gw.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/distance?s=3&t=42")
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("proxied /distance = %d %v", resp.StatusCode, out)
	}
	if out["distance"].(float64) != m.Estimate(3, 42) {
		t.Fatalf("proxied distance %v, want %v", out["distance"], m.Estimate(3, 42))
	}

	// A backend 400 (vertex out of range) is the client's fault and must
	// be relayed, not treated as backend failure.
	resp, err = http.Get(ts.URL + "/distance?s=3&t=100000")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range via proxy = %d, want 400", resp.StatusCode)
	}
	if gw.HealthyBackends() != 2 {
		t.Fatal("a relayed 400 must not count against backend health")
	}
	resp, out = postBatch(t, ts, batchBody([][2]int32{{0, 100000}}))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range batch via gateway = %d %v, want 400", resp.StatusCode, out)
	}
}

func TestGatewayMetricsAndStatzSurface(t *testing.T) {
	_, m := buildModel(t)
	b1 := newBackend(t, m, nil, "v1")
	gw := newGateway(t, Config{
		Backends:       []string{b1.URL},
		HealthInterval: time.Hour,
	})
	ts := httptest.NewServer(gw.Handler())
	defer ts.Close()

	postBatch(t, ts, batchBody([][2]int32{{0, 5}}))

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 1<<20)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	text := string(body[:n])
	for _, want := range []string{
		"rne_gateway_backend_healthy{backend=",
		"rne_gateway_backend_requests_total{backend=",
		"rne_http_requests_total",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}

	sresp, err := http.Get(ts.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	var snap map[string]any
	if err := json.NewDecoder(sresp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	for _, key := range []string{"uptime_seconds", "requests", "by_status_class"} {
		if _, ok := snap[key]; !ok {
			t.Fatalf("/statz missing %q: %v", key, snap)
		}
	}
}

func TestBackoffJitterSpreadsReprobes(t *testing.T) {
	gw := newGateway(t, Config{
		Backends:       []string{"http://127.0.0.1:59998"},
		HealthInterval: time.Hour,
		BackoffJitter:  0.5,
	})
	const d = time.Second
	lo, hi := time.Duration(float64(d)*0.5), time.Duration(float64(d)*1.5)
	seen := map[time.Duration]bool{}
	for i := 0; i < 64; i++ {
		j := gw.jittered(d)
		if j < lo || j > hi {
			t.Fatalf("jittered(%v) = %v outside [%v, %v]", d, j, lo, hi)
		}
		seen[j] = true
	}
	if len(seen) < 2 {
		t.Fatal("jitter produced a constant re-probe delay")
	}

	// Negative jitter disables the spread entirely.
	exact := newGateway(t, Config{
		Backends:       []string{"http://127.0.0.1:59997"},
		HealthInterval: time.Hour,
		BackoffJitter:  -1,
	})
	if got := exact.jittered(d); got != d {
		t.Fatalf("disabled jitter changed the delay: %v", got)
	}
}

// TestClientCancelNotCountedAgainstBackend pins the cancellation
// semantics of the fan-out: the client's context is propagated into
// backend sub-requests (abandoning them promptly), and a sub-request
// that dies because the *client* went away is counted as a cancel, not
// as a backend failure — so impatient clients can never eject a
// healthy replica.
func TestClientCancelNotCountedAgainstBackend(t *testing.T) {
	// A backend that never answers until the sub-request is abandoned:
	// only context propagation can unblock the proxy path. It drains the
	// body first (as a real replica would) — net/http only watches for
	// client disconnects once the request body is consumed.
	stuck := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		<-r.Context().Done()
	}))
	defer stuck.Close()
	gw := newGateway(t, Config{
		Backends:       []string{stuck.URL},
		HealthInterval: time.Hour,
		EjectAfter:     1,
	})
	ts := httptest.NewServer(gw.Handler())
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/distance?s=1&t=2", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
		t.Fatal("expected the client deadline to abort the request")
	}
	b := gw.backends[0]
	waitFor(t, "cancel accounting", func() bool { return b.cancels.Value() >= 1 })
	if gw.HealthyBackends() != 1 {
		t.Fatal("client cancellation ejected the backend")
	}
	if b.failures.Value() != 0 {
		t.Fatalf("client cancellation counted as backend failure (%d)", b.failures.Value())
	}

	// Same discipline on the /batch fan-out path.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel2()
	req2, err := http.NewRequestWithContext(ctx2, http.MethodPost, ts.URL+"/batch",
		strings.NewReader(batchBody([][2]int32{{0, 5}})))
	if err != nil {
		t.Fatal(err)
	}
	req2.Header.Set("Content-Type", "application/json")
	if resp, err := http.DefaultClient.Do(req2); err == nil {
		resp.Body.Close()
	}
	waitFor(t, "batch cancel accounting", func() bool { return b.cancels.Value() >= 2 })
	if gw.HealthyBackends() != 1 || b.failures.Value() != 0 {
		t.Fatal("batch client cancellation counted against the backend")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty backend list accepted")
	}
	if _, err := New(Config{Backends: []string{"not-a-url"}}); err == nil {
		t.Fatal("relative backend URL accepted")
	}
	if _, err := New(Config{Backends: []string{"http://h:1", "http://h:1"}}); err == nil {
		t.Fatal("duplicate backend accepted")
	}
	gw, err := New(Config{Backends: []string{fmt.Sprintf("http://127.0.0.1:%d/", 59999)}})
	if err != nil {
		t.Fatalf("trailing slash rejected: %v", err)
	}
	gw.Close()
	if got := gw.backends[0].base; strings.HasSuffix(got, "/") {
		t.Fatalf("base URL not normalized: %q", got)
	}
}
