package gateway

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// headerLog records what one stub backend saw per request, so tests
// can assert on propagated correlation headers.
type headerLog struct {
	mu   sync.Mutex
	reqs []http.Header
}

func (l *headerLog) add(h http.Header) {
	l.mu.Lock()
	l.reqs = append(l.reqs, h.Clone())
	l.mu.Unlock()
}

func (l *headerLog) all() []http.Header {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]http.Header(nil), l.reqs...)
}

// stubBackend is an httptest server standing in for a replica, with a
// scripted /distance and /batch behavior.
func stubBackend(t *testing.T, handler http.HandlerFunc) (*httptest.Server, *headerLog) {
	t.Helper()
	log := &headerLog{}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		log.add(r.Header)
		handler(w, r)
	}))
	t.Cleanup(ts.Close)
	return ts, log
}

func okDistance(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprint(w, `{"distance": 1.5}`)
}

// okBatch answers any batch with zeros of the right length.
func okBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"distances": make([]float64, len(req.Pairs))})
}

func readSpans(t *testing.T, path string) []telemetry.SpanRecord {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var out []telemetry.SpanRecord
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec telemetry.SpanRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad span line: %v", err)
		}
		out = append(out, rec)
	}
	return out
}

// waitSpans polls until the tracer has persisted at least n spans —
// hedge losers and canceled legs close asynchronously.
func waitSpans(t *testing.T, gw *Gateway, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for gw.Tracer().Written() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d spans written, want >= %d", gw.Tracer().Written(), n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// srcOwnedBy finds a source vertex whose ring owner is the given
// backend id, so tests can steer which replica a request lands on.
func srcOwnedBy(t *testing.T, gw *Gateway, id string) int32 {
	t.Helper()
	for src := int32(0); src < 4096; src++ {
		if b := gw.pick(src, nil); b != nil && b.id == id {
			return src
		}
	}
	t.Fatalf("no vertex in [0,4096) routes to backend %s", id)
	return 0
}

func spansNamed(spans []telemetry.SpanRecord, name string) []telemetry.SpanRecord {
	var out []telemetry.SpanRecord
	for _, s := range spans {
		if s.Name == name {
			out = append(out, s)
		}
	}
	return out
}

func hostOf(u string) string {
	return u[len("http://"):]
}

// A hedged /distance must leave both attempt spans in the trace — the
// winner with its status, the loser closed with its cancellation —
// all under one root whose trace the client could look up.
func TestHedgeLoserSpanStillClosed(t *testing.T) {
	slowRelease := make(chan struct{})
	t.Cleanup(func() { close(slowRelease) })
	slow, _ := stubBackend(t, func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done(): // loser: canceled once the hedge wins
		case <-slowRelease:
		}
	})
	fast, _ := stubBackend(t, okDistance)

	spanPath := filepath.Join(t.TempDir(), "gw.spans.jsonl")
	gw := newGateway(t, Config{
		Backends:       []string{slow.URL, fast.URL},
		HealthInterval: time.Hour,
		Hedge:          true,
		HedgeMinDelay:  time.Millisecond,
		HedgeMaxDelay:  5 * time.Millisecond, // cold start: hedge fires fast
		Trace:          telemetry.TraceConfig{Path: spanPath},
	})
	ts := httptest.NewServer(gw.Handler())
	defer ts.Close()

	src := srcOwnedBy(t, gw, hostOf(slow.URL)) // primary = the slow one
	resp, err := http.Get(fmt.Sprintf("%s/distance?s=%d&t=1", ts.URL, src))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hedged distance status %d", resp.StatusCode)
	}

	// handler + admission + 2 attempts; the loser closes after the
	// handler returned, so wait rather than read immediately.
	waitSpans(t, gw, 4)
	gw.Close()
	spans := readSpans(t, spanPath)

	roots := spansNamed(spans, "GET /distance")
	if len(roots) != 1 {
		t.Fatalf("want one root span, got %d", len(roots))
	}
	root := roots[0]
	attempts := spansNamed(spans, "backend /distance")
	if len(attempts) != 2 {
		t.Fatalf("want two attempt spans (winner + loser), got %d", len(attempts))
	}
	kinds := map[string]telemetry.SpanRecord{}
	for _, a := range attempts {
		if a.TraceID != root.TraceID || a.ParentID != root.SpanID {
			t.Fatalf("attempt span not parented under the root: %+v", a)
		}
		kinds[a.Attrs["kind"]] = a
	}
	primary, okP := kinds["primary"]
	hedge, okH := kinds["hedge"]
	if !okP || !okH {
		t.Fatalf("attempt kinds wrong: %v", kinds)
	}
	if primary.Attrs["backend"] != hostOf(slow.URL) || hedge.Attrs["backend"] != hostOf(fast.URL) {
		t.Fatalf("backend attribution wrong: primary=%q hedge=%q",
			primary.Attrs["backend"], hedge.Attrs["backend"])
	}
	// The loser was canceled mid-call: closed with an error, never
	// leaked open.
	if primary.Error == "" {
		t.Fatalf("loser span has no error: %+v", primary)
	}
	if hedge.HTTPStatus != http.StatusOK {
		t.Fatalf("winner span status %d", hedge.HTTPStatus)
	}
}

// A 206 partial /batch must carry the failed shard's attempt span with
// its error, and the root span must be annotated with the degradation.
func TestPartialBatchFailedShardSpan(t *testing.T) {
	bad, _ := stubBackend(t, func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "shard broken", http.StatusInternalServerError)
	})
	good, _ := stubBackend(t, okBatch)

	spanPath := filepath.Join(t.TempDir(), "gw.spans.jsonl")
	gw := newGateway(t, Config{
		Backends:       []string{bad.URL, good.URL},
		HealthInterval: time.Hour,
		RetryBudget:    -1, // no retry: the failed shard degrades immediately
		Trace:          telemetry.TraceConfig{Path: spanPath},
	})
	ts := httptest.NewServer(gw.Handler())
	defer ts.Close()

	srcBad := srcOwnedBy(t, gw, hostOf(bad.URL))
	srcGood := srcOwnedBy(t, gw, hostOf(good.URL))
	resp, out := postBatch(t, ts, batchBody([][2]int32{{srcBad, 1}, {srcGood, 2}}))
	if resp.StatusCode != http.StatusPartialContent || out["partial"] != true {
		t.Fatalf("want 206 partial, got %d %v", resp.StatusCode, out)
	}

	waitSpans(t, gw, 4)
	gw.Close()
	spans := readSpans(t, spanPath)

	roots := spansNamed(spans, "POST /batch")
	if len(roots) != 1 {
		t.Fatalf("want one root span, got %d", len(roots))
	}
	root := roots[0]
	if root.Attrs["pair_errors"] != "1" {
		t.Fatalf("root span not annotated with pair_errors: %+v", root)
	}
	partialEvent := false
	for _, e := range root.Events {
		if e.Name == "partial" {
			partialEvent = true
		}
	}
	if !partialEvent {
		t.Fatalf("root span lacks the partial event: %+v", root.Events)
	}
	var failed, served int
	for _, a := range spansNamed(spans, "backend /batch") {
		if a.ParentID != root.SpanID {
			t.Fatalf("shard attempt not parented under the root: %+v", a)
		}
		if a.Attrs["kind"] != "shard" {
			t.Fatalf("attempt kind %q, want shard", a.Attrs["kind"])
		}
		if a.Error != "" {
			failed++
		} else if a.HTTPStatus == http.StatusOK {
			served++
		}
	}
	if failed != 1 || served != 1 {
		t.Fatalf("want 1 failed + 1 served shard span, got failed=%d served=%d", failed, served)
	}
}

// A client cancel mid-retry must close every span that was opened:
// the failed primary, the in-flight retry, and the root.
func TestClientCancelMidRetrySpansClosed(t *testing.T) {
	failFast, _ := stubBackend(t, func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	})
	retryEntered := make(chan struct{}, 1)
	hang, _ := stubBackend(t, func(w http.ResponseWriter, r *http.Request) {
		select {
		case retryEntered <- struct{}{}:
		default:
		}
		<-r.Context().Done()
	})

	spanPath := filepath.Join(t.TempDir(), "gw.spans.jsonl")
	gw := newGateway(t, Config{
		Backends:       []string{failFast.URL, hang.URL},
		HealthInterval: time.Hour,
		Trace:          telemetry.TraceConfig{Path: spanPath},
	})
	ts := httptest.NewServer(gw.Handler())
	defer ts.Close()

	src := srcOwnedBy(t, gw, hostOf(failFast.URL)) // primary fails, retry hangs
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx,
		http.MethodGet, fmt.Sprintf("%s/distance?s=%d&t=1", ts.URL, src), nil)
	done := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		done <- err
	}()
	select {
	case <-retryEntered: // the retry leg is in flight on the hanging backend
	case <-time.After(5 * time.Second):
		t.Fatal("retry never reached the second backend")
	}
	cancel()
	if err := <-done; err == nil {
		t.Fatal("canceled request unexpectedly succeeded")
	}

	// Root + admission + primary attempt + retry attempt, all closed.
	waitSpans(t, gw, 4)
	gw.Close()
	spans := readSpans(t, spanPath)
	attempts := spansNamed(spans, "backend /distance")
	if len(attempts) != 2 {
		t.Fatalf("want 2 attempt spans, got %d", len(attempts))
	}
	kinds := map[string]telemetry.SpanRecord{}
	for _, a := range attempts {
		kinds[a.Attrs["kind"]] = a
	}
	if kinds["primary"].Error == "" {
		t.Fatalf("failed primary span lacks its error: %+v", kinds["primary"])
	}
	if kinds["retry"].Error == "" {
		t.Fatalf("canceled retry span lacks its error: %+v", kinds["retry"])
	}
	if len(spansNamed(spans, "GET /distance")) != 1 {
		t.Fatal("root span missing")
	}
}

// The gateway's request ID must ride every leg — primary and retry —
// and the retry must be marked with the attempt header. This holds
// with tracing disabled: correlation is not a tracing feature.
func TestRequestIDAndAttemptHeaderOnEveryLeg(t *testing.T) {
	bad, badLog := stubBackend(t, func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	})
	good, goodLog := stubBackend(t, okDistance)

	gw := newGateway(t, Config{ // note: no Trace config
		Backends:       []string{bad.URL, good.URL},
		HealthInterval: time.Hour,
	})
	ts := httptest.NewServer(gw.Handler())
	defer ts.Close()

	src := srcOwnedBy(t, gw, hostOf(bad.URL))
	req, _ := http.NewRequest(http.MethodGet,
		fmt.Sprintf("%s/distance?s=%d&t=1", ts.URL, src), nil)
	req.Header.Set(telemetry.RequestIDHeader, "corr-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retried distance status %d", resp.StatusCode)
	}

	badSaw, goodSaw := badLog.all(), goodLog.all()
	if len(badSaw) != 1 || len(goodSaw) != 1 {
		t.Fatalf("legs wrong: primary saw %d, retry saw %d", len(badSaw), len(goodSaw))
	}
	if got := badSaw[0].Get(telemetry.RequestIDHeader); got != "corr-1" {
		t.Fatalf("primary leg request id %q", got)
	}
	if got := goodSaw[0].Get(telemetry.RequestIDHeader); got != "corr-1" {
		t.Fatalf("retry leg request id %q", got)
	}
	if got := badSaw[0].Get(telemetry.AttemptHeader); got != "" {
		t.Fatalf("primary leg marked as attempt %q", got)
	}
	if got := goodSaw[0].Get(telemetry.AttemptHeader); got != "retry" {
		t.Fatalf("retry leg attempt header %q, want retry", got)
	}
	// No tracing configured: nothing must be injected.
	if got := badSaw[0].Get(telemetry.TraceParentHeader); got != "" {
		t.Fatalf("traceparent %q injected with tracing off", got)
	}
}

// With tracing on, each leg carries a distinct traceparent (its own
// attempt span) within the same trace.
func TestTraceParentDistinctPerLeg(t *testing.T) {
	bad, badLog := stubBackend(t, func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	})
	good, goodLog := stubBackend(t, okDistance)

	spanPath := filepath.Join(t.TempDir(), "gw.spans.jsonl")
	gw := newGateway(t, Config{
		Backends:       []string{bad.URL, good.URL},
		HealthInterval: time.Hour,
		Trace:          telemetry.TraceConfig{Path: spanPath},
	})
	ts := httptest.NewServer(gw.Handler())
	defer ts.Close()

	src := srcOwnedBy(t, gw, hostOf(bad.URL))
	resp, err := http.Get(fmt.Sprintf("%s/distance?s=%d&t=1", ts.URL, src))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	p1, ok1 := telemetry.ExtractTraceParent(badLog.all()[0])
	p2, ok2 := telemetry.ExtractTraceParent(goodLog.all()[0])
	if !ok1 || !ok2 {
		t.Fatal("a leg is missing its traceparent")
	}
	if p1.TraceID != p2.TraceID {
		t.Fatal("legs carry different trace IDs")
	}
	if p1.SpanID == p2.SpanID {
		t.Fatal("legs share a span ID: attempts are not distinct spans")
	}
	if !p1.Sampled || !p2.Sampled {
		t.Fatal("sampled flag not propagated")
	}
}
