package gateway

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is a consistent-hash ring over backend indices. Each backend
// owns VirtualNodes points on a uint32 circle; a key is served by the
// first point clockwise from its hash. Routing /batch pairs by source
// vertex this way gives each backend a stable shard of the vertex
// space — embedding rows stay hot in that replica's cache — while a
// backend ejection only reassigns the ejected shard instead of
// reshuffling every key, and the unhealthy backend is skipped by
// walking clockwise to the next healthy point.
type ring struct {
	hashes []uint32
	owner  []int // hashes[i] belongs to backends[owner[i]]
}

// newRing spreads n backends over the circle with vnodes points each.
// Point positions depend only on the backend's id string, so every
// gateway replica fed the same backend list builds the same ring.
func newRing(ids []string, vnodes int) ring {
	r := ring{
		hashes: make([]uint32, 0, len(ids)*vnodes),
		owner:  make([]int, 0, len(ids)*vnodes),
	}
	type point struct {
		hash uint32
		own  int
	}
	points := make([]point, 0, len(ids)*vnodes)
	for i, id := range ids {
		for v := 0; v < vnodes; v++ {
			points = append(points, point{hashString(fmt.Sprintf("%s#%d", id, v)), i})
		}
	}
	sort.Slice(points, func(a, b int) bool {
		if points[a].hash != points[b].hash {
			return points[a].hash < points[b].hash
		}
		return points[a].own < points[b].own
	})
	for _, p := range points {
		r.hashes = append(r.hashes, p.hash)
		r.owner = append(r.owner, p.own)
	}
	return r
}

// walk visits backend indices in ring order starting at key's position,
// calling accept until it returns true (the chosen backend) or every
// distinct backend was offered. Returns the accepted index or -1.
func (r ring) walk(key int32, accept func(int) bool) int {
	if len(r.hashes) == 0 {
		return -1
	}
	h := hashVertex(key)
	start := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	seen := make(map[int]bool)
	for i := 0; i < len(r.hashes); i++ {
		own := r.owner[(start+i)%len(r.hashes)]
		if seen[own] {
			continue
		}
		seen[own] = true
		if accept(own) {
			return own
		}
	}
	return -1
}

func hashString(s string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(s))
	return h.Sum32()
}

func hashVertex(v int32) uint32 {
	h := fnv.New32a()
	h.Write([]byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)})
	return h.Sum32()
}
