package gateway

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/alt"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/hybrid"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/sssp"
)

// buildShardedFleet cuts the test model at level 1 into two shards and
// boots one guarded replica per shard.
func buildShardedFleet(t *testing.T) (*graph.Graph, *core.Model, *shard.Split, []*httptest.Server) {
	t.Helper()
	g, m := buildModel(t)
	lt, err := alt.Build(g, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := shard.Cut(m, lt, shard.Config{CutLevel: 1, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	replicas := make([]*httptest.Server, len(sp.Shards))
	for k := range sp.Shards {
		guard, err := hybrid.New(sp.Shards[k], sp.Guards[k])
		if err != nil {
			t.Fatal(err)
		}
		srv, err := server.NewFromSet(server.ModelSet{
			Shard: sp.Shards[k], Guard: guard, Version: "v1",
		}, server.Config{})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		replicas[k] = ts
	}
	return g, m, sp, replicas
}

// discover runs one probe round so every backend's shard identity is
// known before the test routes.
func discover(t *testing.T, gw *Gateway) {
	t.Helper()
	for _, b := range gw.backends {
		if err := gw.probe(b); err != nil {
			t.Fatalf("probe %s: %v", b.id, err)
		}
	}
}

func regionGateway(t *testing.T, sp *shard.Split, replicas []*httptest.Server) (*Gateway, *httptest.Server) {
	t.Helper()
	urls := make([]string, len(replicas))
	for i, r := range replicas {
		urls[i] = r.URL
	}
	gw := newGateway(t, Config{
		Backends:       urls,
		ShardMap:       sp.Map,
		HealthInterval: time.Hour, // probes driven by hand
		EjectAfter:     1,
	})
	discover(t, gw)
	ts := httptest.NewServer(gw.Handler())
	t.Cleanup(ts.Close)
	return gw, ts
}

func getBody(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return resp.StatusCode, out
}

// The router equivalence property: over a seeded workload, intra-shard
// answers through the gateway are bit-identical to the full unsharded
// model (when unclamped — the guard only ever moves an estimate into
// its certified interval), and cross-shard answers carry certified
// bounds that bracket the true network distance.
func TestRegionRoutingEquivalence(t *testing.T) {
	g, m, sp, replicas := buildShardedFleet(t)
	_, ts := regionGateway(t, sp, replicas)
	ws := sssp.NewWorkspace(g)

	n := m.NumVertices()
	rng := rand.New(rand.NewSource(42))
	intra, cross := 0, 0
	for trial := 0; trial < 200; trial++ {
		s := int32(rng.Intn(n))
		u := int32(rng.Intn(n))
		code, out := getBody(t, fmt.Sprintf("%s/distance?s=%d&t=%d", ts.URL, s, u))
		if code != http.StatusOK {
			t.Fatalf("(%d,%d): status %d: %v", s, u, code, out)
		}
		d := out["distance"].(float64)
		lo, hi := out["lo"].(float64), out["hi"].(float64)
		if d < lo || d > hi {
			t.Fatalf("(%d,%d): %v outside certified [%v,%v]", s, u, d, lo, hi)
		}
		owner, _ := sp.Map.ShardOf(s)
		if sp.Shards[owner].CrossShard(s, u) {
			cross++
			if out["cross_shard"] != true {
				t.Fatalf("(%d,%d): cross-shard pair unflagged: %v", s, u, out)
			}
			if want := ws.Distance(s, u); lo > want+1e-9 || hi < want-1e-9 {
				t.Fatalf("(%d,%d): certified [%v,%v] misses true %v", s, u, lo, hi, want)
			}
		} else {
			intra++
			if _, flagged := out["cross_shard"]; flagged {
				t.Fatalf("(%d,%d): intra-shard pair flagged cross: %v", s, u, out)
			}
			if out["clamped"] == false && d != m.Estimate(s, u) {
				t.Fatalf("(%d,%d): intra answer %v != full model %v (must be bit-identical)",
					s, u, d, m.Estimate(s, u))
			}
		}
	}
	if intra == 0 || cross == 0 {
		t.Fatalf("workload did not exercise both sides: intra=%d cross=%d", intra, cross)
	}
}

// /batch splits per shard and merges in order; every answer must equal
// what the owning shard's guarded estimator serves directly.
func TestRegionBatchSplitsAndMerges(t *testing.T) {
	_, m, sp, replicas := buildShardedFleet(t)
	_, ts := regionGateway(t, sp, replicas)

	guards := make([]*hybrid.Estimator, len(sp.Shards))
	for k := range sp.Shards {
		e, err := hybrid.New(sp.Shards[k], sp.Guards[k])
		if err != nil {
			t.Fatal(err)
		}
		guards[k] = e
	}

	n := m.NumVertices()
	rng := rand.New(rand.NewSource(7))
	pairs := make([][2]int32, 40)
	for i := range pairs {
		pairs[i] = [2]int32{int32(rng.Intn(n)), int32(rng.Intn(n))}
	}
	resp, out := postBatch(t, ts, batchBody(pairs))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %v", resp.StatusCode, out)
	}
	distances := out["distances"].([]any)
	if len(distances) != len(pairs) {
		t.Fatalf("merged %d distances for %d pairs", len(distances), len(pairs))
	}
	for i, p := range pairs {
		owner, _ := sp.Map.ShardOf(p[0])
		want := guards[owner].Estimate(p[0], p[1])
		if got := distances[i].(float64); got != want {
			t.Fatalf("pair %d (%d,%d): merged %v, owner shard serves %v", i, p[0], p[1], got, want)
		}
	}
	if _, ok := out["lo"]; !ok {
		t.Fatal("merged guard bounds dropped from an all-guarded batch")
	}
}

// Killing one shard's only replica degrades exactly that region: its
// vertices answer 503 with the shard named, other regions keep serving,
// and /readyz reports degraded-not-down.
func TestShardDownDegradesOnlyThatRegion(t *testing.T) {
	_, m, sp, replicas := buildShardedFleet(t)
	gw, ts := regionGateway(t, sp, replicas)

	// Find one vertex per shard.
	verts := make([]int32, 2)
	for i := range verts {
		verts[i] = -1
	}
	for v := int32(0); int(v) < m.NumVertices(); v++ {
		owner, _ := sp.Map.ShardOf(v)
		if verts[owner] < 0 {
			verts[owner] = v
		}
	}

	// Kill shard 1's replica and eject it (EjectAfter=1).
	replicas[1].Close()
	for _, b := range gw.backends {
		if int(b.shardID.Load()) == 1 {
			gw.markFailure(b, fmt.Errorf("killed"))
		}
	}

	code, out := getBody(t, fmt.Sprintf("%s/distance?s=%d&t=%d", ts.URL, verts[1], verts[0]))
	if code != http.StatusServiceUnavailable {
		t.Fatalf("dead region answered %d: %v", code, out)
	}
	if !strings.Contains(out["error"].(string), "shard 1 degraded") {
		t.Fatalf("503 does not name the dead shard: %v", out)
	}

	code, _ = getBody(t, fmt.Sprintf("%s/distance?s=%d&t=%d", ts.URL, verts[0], verts[1]))
	if code != http.StatusOK {
		t.Fatalf("surviving region answered %d", code)
	}

	code, ready := getBody(t, ts.URL+"/readyz")
	if code != http.StatusOK || ready["status"] != "degraded" {
		t.Fatalf("readyz = %d %v, want 200 degraded", code, ready)
	}
	down, ok := ready["shards_down"].([]any)
	if !ok || len(down) != 1 || down[0].(float64) != 1 {
		t.Fatalf("shards_down = %v, want [1]", ready["shards_down"])
	}

	// A batch touching both regions degrades partially, not fatally.
	resp, bout := postBatch(t, ts, batchBody([][2]int32{{verts[0], verts[1]}, {verts[1], verts[0]}}))
	if resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("mixed batch status %d, want 206: %v", resp.StatusCode, bout)
	}
	errs := bout["errors"].([]any)
	if len(errs) != 1 {
		t.Fatalf("want exactly the dead region's pair failed: %v", errs)
	}
	if msg := errs[0].(map[string]any)["error"].(string); !strings.Contains(msg, "shard 1") {
		t.Fatalf("pair error does not name the shard: %q", msg)
	}

	// Kill the other region too: now nothing is coverable.
	replicas[0].Close()
	for _, b := range gw.backends {
		gw.markFailure(b, fmt.Errorf("killed"))
	}
	code, ready = getBody(t, ts.URL+"/readyz")
	if code != http.StatusServiceUnavailable || ready["status"] != "unavailable" {
		t.Fatalf("all-dead readyz = %d %v", code, ready)
	}
}

// GET /knn and /range proxy to the region owner; a shard replica's 501
// (no spatial index) is relayed as a capability statement, never
// counted toward ejection.
func TestSpatialProxyRelays501WithoutEjection(t *testing.T) {
	_, m, sp, replicas := buildShardedFleet(t)
	gw, ts := regionGateway(t, sp, replicas)

	var v int32
	for ; int(v) < m.NumVertices(); v++ {
		if owner, _ := sp.Map.ShardOf(v); owner == 0 {
			break
		}
	}
	for _, path := range []string{
		fmt.Sprintf("/knn?s=%d&k=3", v),
		fmt.Sprintf("/range?s=%d&tau=10", v),
	} {
		code, out := getBody(t, ts.URL+path)
		if code != http.StatusNotImplemented {
			t.Fatalf("GET %s: %d %v, want relayed 501", path, code, out)
		}
	}
	for _, b := range gw.backends {
		if !b.healthy.Load() {
			t.Fatalf("backend %s ejected by 501 answers", b.id)
		}
	}
}

// A gateway holding yesterday's shard map routes some vertices to a
// replica that has since disowned them: the replica's 421 is relayed
// with its owner hint and counted as a stale route.
func TestStaleShardMapRelays421(t *testing.T) {
	g, m, sp, replicas := buildShardedFleet(t)

	// The "stale" map: the same K=2 topology cut from yesterday's build
	// of the network, trained with a different partition fanout, so the
	// level-1 regions group vertices differently than the fleet's cut.
	opt := core.DefaultOptions(99)
	opt.Dim = 8
	opt.Epochs = 2
	opt.VertexSampleRatio = 10
	opt.FineTuneRounds = 1
	opt.HierSampleCap = 2000
	opt.ValidationPairs = 50
	opt.Fanout = 2
	opt.Leaf = 16
	m2, _, err := core.Build(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	lt2, err := alt.Build(g, 8, 99)
	if err != nil {
		t.Fatal(err)
	}
	stale, err := shard.Cut(m2, lt2, shard.Config{CutLevel: 1, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	var victim int32 = -1
	for v := int32(0); int(v) < m.NumVertices(); v++ {
		staleOwner, _ := stale.Map.ShardOf(v)
		liveOwner, _ := sp.Map.ShardOf(v)
		if staleOwner != liveOwner {
			victim = v
			break
		}
	}
	if victim < 0 {
		t.Skip("the two cuts agree on every vertex; no staleness to exercise")
	}
	_ = g

	gw, ts := regionGateway(t, stale, replicas)
	code, out := getBody(t, fmt.Sprintf("%s/distance?s=%d&t=%d", ts.URL, victim, (victim+1)%int32(m.NumVertices())))
	if code != http.StatusMisdirectedRequest {
		t.Fatalf("stale route answered %d: %v", code, out)
	}
	if _, ok := out["owner_shard"]; !ok {
		t.Fatalf("relayed 421 lost the owner hint: %v", out)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "rne_gateway_stale_routes_total 1") {
		t.Fatal("stale route not counted on /metrics")
	}
	_ = gw
}

// Region mode refuses to route through a backend that has not declared
// a shard identity yet, and the shard map's resident size is exported.
func TestRegionModeRequiresDiscovery(t *testing.T) {
	_, m, sp, replicas := buildShardedFleet(t)
	urls := make([]string, len(replicas))
	for i, r := range replicas {
		urls[i] = r.URL
	}
	gw := newGateway(t, Config{
		Backends:       urls,
		ShardMap:       sp.Map,
		HealthInterval: time.Hour,
	})
	ts := httptest.NewServer(gw.Handler())
	t.Cleanup(ts.Close)

	// No probes yet: every backend's shard is unknown, so routing holds off.
	code, _ := getBody(t, fmt.Sprintf("%s/distance?s=0&t=1", ts.URL))
	if code != http.StatusServiceUnavailable {
		t.Fatalf("undiscovered fleet answered %d, want 503", code)
	}
	code, ready := getBody(t, ts.URL+"/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("undiscovered readyz = %d %v", code, ready)
	}

	discover(t, gw)
	code, _ = getBody(t, fmt.Sprintf("%s/distance?s=0&t=1", ts.URL))
	if code != http.StatusOK {
		t.Fatalf("post-discovery distance = %d", code)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	want := fmt.Sprintf(`rne_model_bytes{component="shardmap"} %d`, sp.Map.IndexBytes())
	if !strings.Contains(string(body), want) {
		t.Fatalf("shard map bytes gauge missing: want %q", want)
	}

	// A vertex outside the map is the client's error, not a routing one.
	code, _ = getBody(t, fmt.Sprintf("%s/distance?s=%d&t=0", ts.URL, m.NumVertices()))
	if code != http.StatusBadRequest {
		t.Fatalf("out-of-map vertex answered %d, want 400", code)
	}
	_ = m
}
