// Overload-safety primitives for the fan-out tier: the retry token
// budget that bounds retry amplification, the backpressure error class
// that keeps merely-busy replicas from being ejected, and the p95-based
// hedge delay for opt-in hedged /distance requests.
package gateway

import (
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// errBackpressure marks a backend answer (429 or 503) that means "busy,
// not broken": the caller may retry elsewhere (budget permitting) but
// must not count the response toward consecutive-failure ejection —
// ejecting a saturated replica shrinks the fleet exactly when capacity
// is scarcest, turning overload into an outage.
var errBackpressure = errors.New("backend backpressure")

// errRetryDenied marks a sub-request that failed and whose retry the
// token budget refused. Like backpressure, it means the fleet is
// drowning rather than dead: callers answer 429 (back off), not 502.
var errRetryDenied = errors.New("retry denied by budget")

// backpressureError carries the shed response so the caller can relay
// the backend's own 429/503 (with its Retry-After context) when no
// retry is possible.
type backpressureError struct {
	status     int
	body       []byte
	ct         string
	retryAfter string
}

func (e *backpressureError) Error() string {
	return fmt.Sprintf("backend answered %d (backpressure)", e.status)
}

func (e *backpressureError) Unwrap() error { return errBackpressure }

// relayTo writes the backend's shed response through verbatim,
// Retry-After hint included.
func (e *backpressureError) relayTo(w http.ResponseWriter) {
	if e.retryAfter != "" {
		w.Header().Set("Retry-After", e.retryAfter)
	}
	if e.ct != "" {
		w.Header().Set("Content-Type", e.ct)
	}
	w.WriteHeader(e.status)
	w.Write(e.body)
}

// retryBudget is a token bucket bounding retries and hedges to a
// fraction of primary traffic (the gRPC retry-throttling discipline):
// every primary request earns ratio tokens, every retry or hedge spends
// one. Under a partial outage the first failures retry freely; once
// failures dominate, retries are denied and the gateway degrades
// (relaying backpressure, returning partial batches) instead of
// doubling the offered load on the survivors.
type retryBudget struct {
	mu     sync.Mutex
	tokens float64
	cap    float64
	ratio  float64
}

// newRetryBudget returns a budget earning ratio tokens per primary
// request, holding at most cap. A non-positive ratio denies all
// retries; the bucket starts full so cold-start blips can still retry.
func newRetryBudget(ratio float64) *retryBudget {
	cap := 32.0
	if ratio <= 0 {
		cap = 0
	}
	return &retryBudget{tokens: cap, cap: cap, ratio: ratio}
}

// onRequest credits one primary request.
func (rb *retryBudget) onRequest() {
	if rb.ratio <= 0 {
		return
	}
	rb.mu.Lock()
	rb.tokens += rb.ratio
	if rb.tokens > rb.cap {
		rb.tokens = rb.cap
	}
	rb.mu.Unlock()
}

// enabled reports whether retries are configured at all. A denial from
// an enabled budget means failures currently dominate traffic (treat
// as saturation); a denial from a disabled budget is just policy.
func (rb *retryBudget) enabled() bool { return rb.ratio > 0 }

// take spends one token, reporting whether a retry (or hedge) is
// allowed right now.
func (rb *retryBudget) take() bool {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	if rb.tokens < 1 {
		return false
	}
	rb.tokens--
	return true
}

// hedgeDelay derives the wait before firing a hedged second attempt
// from the observed p95 of successful backend /distance calls, clamped
// into [min, max]. Until the histogram has enough signal the delay
// stays at max — cold-start hedging would double traffic exactly when
// the gateway knows least about backend latency.
func hedgeDelay(h *telemetry.Histogram, min, max time.Duration) time.Duration {
	const warmup = 20
	snap := h.Snapshot()
	if snap.Count < warmup {
		return max
	}
	d := time.Duration(snap.Quantile(0.95) * float64(time.Second))
	if d < min {
		return min
	}
	if d > max {
		return max
	}
	return d
}
