// Package gateway is the scale-out tier in front of rneserver
// replicas: one stdlib-only HTTP process that fans a /batch request
// out across N backends and merges the answers in order, and proxies
// the single-source routes (/distance, /knn, /range) to their owner.
// Two routing modes:
//
//   - Hash mode (default): pairs are routed by consistent hashing on
//     the source vertex over replicas that each hold the whole model,
//     so each backend repeatedly sees the same slice of the vertex
//     space (its embedding rows stay cache-hot) and adding or ejecting
//     a replica reassigns one slice instead of reshuffling all keys.
//   - Region mode (Config.ShardMap): replicas hold geo-shards of one
//     split model (internal/shard), and the gateway routes each source
//     vertex to a replica of its owning shard via the compact
//     vertex→shard map, round-robining across same-shard replicas.
//     Shard identity is discovered from each replica's /readyz; a
//     replica answering 421 (stale map, misrouted vertex) is counted
//     on rne_gateway_stale_routes_total and relayed with its redirect
//     hint. A shard with no healthy replica degrades only its own
//     region — other regions keep serving.
//
// Backends are health-checked actively (periodic /readyz probes) and
// passively (proxy failures count); a backend that fails repeatedly is
// ejected from routing and re-probed on an exponential backoff until
// it recovers, mirroring the ejection/backoff discipline of the
// internal/resilience serving stack. The gateway exposes the same
// operational surface as the replicas it fronts: /healthz, /readyz,
// /statz (JSON counters) and /metrics (Prometheus text).
package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/url"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/resilience"
	"repro/internal/shard"
	"repro/internal/telemetry"
)

// Config configures the fan-out tier. Zero values select the
// documented defaults.
type Config struct {
	// Backends are the rneserver base URLs to fan out across
	// (e.g. "http://10.0.0.1:8080"). At least one is required.
	Backends []string
	// VirtualNodes per backend on the consistent-hash ring (default 64).
	// Unused in region mode.
	VirtualNodes int
	// ShardMap switches the gateway into region-routing mode: each
	// source vertex goes to a replica of its owning geo-shard (loaded
	// from the sharded registry version's shards/shardmap.rnemap).
	// Backends then must be shard replicas; their shard identity is
	// discovered from /readyz probes, and a backend reporting a
	// mismatched topology (wrong shard count) is treated as failing.
	ShardMap *shard.Map
	// HealthInterval is the active /readyz probe period (default 2s).
	HealthInterval time.Duration
	// EjectAfter ejects a backend from routing after this many
	// consecutive failures, active or passive (default 3).
	EjectAfter int
	// BackoffBase/BackoffMax bound the re-probe backoff for an ejected
	// backend (defaults 500ms and 15s; each failed probe doubles it).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// BackoffJitter spreads each re-probe time by a uniform random
	// fraction of the backoff, ±BackoffJitter (default 0.2), so a fleet
	// of backends ejected by one event does not re-probe — and
	// potentially thundering-herd a recovering replica — in lockstep.
	// Negative disables jitter.
	BackoffJitter float64
	// BackendTimeout bounds each proxied backend call (default 10s).
	BackendTimeout time.Duration
	// RetryBudget bounds retries and hedges to this fraction of primary
	// traffic (default 0.1): each primary request earns RetryBudget
	// tokens and each retry or hedge spends one, so under a broad outage
	// the gateway degrades instead of doubling the offered load on the
	// survivors. Negative disables retries and hedges entirely.
	RetryBudget float64
	// Hedge enables hedged /distance requests: once the primary backend
	// call has been outstanding longer than the observed p95 backend
	// latency (clamped into [HedgeMinDelay, HedgeMaxDelay]), a second
	// attempt is sent to the next ring owner and the first answer wins.
	// Hedges spend retry-budget tokens like retries do.
	Hedge bool
	// HedgeMinDelay/HedgeMaxDelay clamp the p95-derived hedge delay
	// (defaults 1ms and 250ms). Until enough latency samples accumulate
	// the delay stays at HedgeMaxDelay.
	HedgeMinDelay time.Duration
	HedgeMaxDelay time.Duration
	// BudgetMargin is subtracted from the remaining request deadline
	// before it is forwarded to a backend as a BudgetHeader budget
	// (default 5ms), covering the proxy hop so the backend gives up
	// slightly before the gateway's own deadline fires. Negative
	// disables the margin.
	BudgetMargin time.Duration
	// MaxInFlight / RequestTimeout configure the gateway's own
	// resilience.Wrap stack, with the same semantics as the server's.
	MaxInFlight    int
	RequestTimeout time.Duration
	// Admission, when non-nil, replaces the gateway's static MaxInFlight
	// cap with the adaptive AIMD limiter (see resilience.AdmissionConfig).
	Admission *resilience.AdmissionConfig
	// MaxBatchBytes bounds an inbound /batch body (default 8 MiB).
	MaxBatchBytes int64
	// Logger receives health transitions and access logs (nil disables).
	Logger *slog.Logger
	// Transport overrides the backend HTTP transport (tests use the
	// httptest client transport); nil uses http.DefaultTransport.
	Transport http.RoundTripper
	// Trace, when its Path is non-empty, turns on request-scoped
	// distributed tracing: every request gets a handler span, every
	// backend attempt (primary, retry, hedge, per-shard batch leg) a
	// child span whose context is injected into the outbound call as a
	// W3C traceparent — so replica-side spans parent under the exact
	// attempt that caused them. Sampled spans persist as JSONL (see
	// telemetry.RequestTracer); drop/write counters export as
	// rne_trace_dropped_total / rne_trace_written_total.
	Trace telemetry.TraceConfig
}

func (c Config) withDefaults() Config {
	if c.VirtualNodes <= 0 {
		c.VirtualNodes = 64
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = 2 * time.Second
	}
	if c.EjectAfter <= 0 {
		c.EjectAfter = 3
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 500 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 15 * time.Second
	}
	if c.BackoffJitter == 0 {
		c.BackoffJitter = 0.2
	}
	if c.BackoffJitter < 0 {
		c.BackoffJitter = 0
	}
	if c.BackoffJitter > 1 {
		c.BackoffJitter = 1
	}
	if c.BackendTimeout <= 0 {
		c.BackendTimeout = 10 * time.Second
	}
	if c.RetryBudget == 0 {
		c.RetryBudget = 0.1
	}
	if c.HedgeMinDelay <= 0 {
		c.HedgeMinDelay = time.Millisecond
	}
	if c.HedgeMaxDelay <= 0 {
		c.HedgeMaxDelay = 250 * time.Millisecond
	}
	if c.HedgeMaxDelay < c.HedgeMinDelay {
		c.HedgeMaxDelay = c.HedgeMinDelay
	}
	if c.BudgetMargin == 0 {
		c.BudgetMargin = 5 * time.Millisecond
	}
	if c.BudgetMargin < 0 {
		c.BudgetMargin = 0
	}
	if c.MaxBatchBytes <= 0 {
		c.MaxBatchBytes = 8 << 20
	}
	return c
}

// backend is one replica's routing state. healthy is read on every
// routed pair; the mutable ejection bookkeeping sits behind mu and is
// only touched on failures, recoveries and probes.
type backend struct {
	id   string // host:port, used in logs and metric labels
	base string // normalized base URL, no trailing slash

	healthy atomic.Bool

	// shardID is the geo-shard this backend reported on its last
	// successful probe (-1 until discovered). Only used in region mode.
	shardID atomic.Int32

	mu        sync.Mutex
	fails     int           // consecutive failures (active or passive)
	backoff   time.Duration // current re-probe backoff once ejected
	nextProbe time.Time     // ejected backends are probed at this time

	requests     *telemetry.Counter
	failures     *telemetry.Counter
	cancels      *telemetry.Counter
	backpressure *telemetry.Counter
	healthyG     *telemetry.Gauge
}

// Gateway fans /batch and /distance across the configured backends.
type Gateway struct {
	cfg      Config
	log      *slog.Logger
	stats    *resilience.Stats
	client   *http.Client
	backends []*backend
	ring     ring

	ejections      *telemetry.Counter
	revivals       *telemetry.Counter
	retries        *telemetry.Counter
	retriesDenied  *telemetry.Counter
	hedgeWins      map[string]*telemetry.Counter // keyed by the won= label
	batchPartial   *telemetry.Counter
	pairErrors     *telemetry.Counter
	staleRoutes    *telemetry.Counter
	backendLatency *telemetry.Histogram
	retryTokens    *retryBudget
	tracer         *telemetry.RequestTracer // nil disables tracing

	// shardRR holds one round-robin cursor per geo-shard (region mode
	// only), spreading a shard's traffic across its replicas.
	shardRR []atomic.Uint32

	jitterMu  sync.Mutex
	jitterRng *rand.Rand

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// New validates the backend list, builds the hash ring, and starts the
// active health-probe loop. Backends start healthy (they are probed
// within one HealthInterval); call Close to stop the probe loop.
func New(cfg Config) (*Gateway, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("gateway: need at least one backend")
	}
	g := &Gateway{
		cfg:   cfg,
		log:   telemetry.OrNop(cfg.Logger),
		stats: resilience.NewStats(),
		client: &http.Client{
			Transport: cfg.Transport,
			Timeout:   cfg.BackendTimeout,
		},
		jitterRng: rand.New(rand.NewSource(time.Now().UnixNano())),
		stop:      make(chan struct{}),
	}
	g.stats.TrackRoutes("/batch", "/distance", "/knn", "/range")
	reg := g.stats.Registry()
	g.ejections = reg.Counter("rne_gateway_ejections_total",
		"Backends ejected from routing after consecutive failures.")
	g.revivals = reg.Counter("rne_gateway_revivals_total",
		"Ejected backends restored to routing by a successful probe.")
	g.retries = reg.Counter("rne_gateway_retries_total",
		"Sub-requests retried on another backend after a failure.")
	g.retriesDenied = reg.Counter("rne_gateway_retries_denied_total",
		"Retries and hedges denied because the retry token budget was empty.")
	g.hedgeWins = map[string]*telemetry.Counter{
		"primary": reg.Counter("rne_hedges_total",
			"Hedged /distance attempts, by which attempt answered first.", "won", "primary"),
		"hedge": reg.Counter("rne_hedges_total",
			"Hedged /distance attempts, by which attempt answered first.", "won", "hedge"),
	}
	g.batchPartial = reg.Counter("rne_batch_partial_total",
		"Batch responses returned partially (206) after a shard failed.")
	g.pairErrors = reg.Counter("rne_batch_pair_errors_total",
		"Individual batch pairs answered with an error entry instead of a distance.")
	g.staleRoutes = reg.Counter("rne_gateway_stale_routes_total",
		"Backend 421 answers: the replica disowned a vertex this gateway routed to it (stale shard map).")
	if cfg.ShardMap != nil {
		g.shardRR = make([]atomic.Uint32, cfg.ShardMap.NumShards())
		reg.Gauge("rne_model_bytes",
			"Resident bytes of routing state, by component.",
			"component", "shardmap").Set(float64(cfg.ShardMap.IndexBytes()))
	}
	g.backendLatency = reg.Histogram("rne_gateway_backend_latency_seconds",
		"Latency of successful backend calls, feeding the hedge delay.", telemetry.LatencyBuckets)
	g.backendLatency.EnableExemplars()
	g.retryTokens = newRetryBudget(cfg.RetryBudget)
	if cfg.Trace.Path != "" {
		tc := cfg.Trace
		if tc.Service == "" {
			tc.Service = "gateway"
		}
		dropped := g.stats.Counter("trace_dropped")
		written := g.stats.Counter("trace_written")
		callerDrop, callerWrite := tc.OnDrop, tc.OnWrite
		tc.OnDrop = func() {
			dropped.Inc()
			if callerDrop != nil {
				callerDrop()
			}
		}
		tc.OnWrite = func() {
			written.Inc()
			if callerWrite != nil {
				callerWrite()
			}
		}
		tr, err := telemetry.NewRequestTracer(tc)
		if err != nil {
			return nil, fmt.Errorf("gateway: %w", err)
		}
		g.tracer = tr
	}

	seen := make(map[string]bool)
	ids := make([]string, 0, len(cfg.Backends))
	for _, raw := range cfg.Backends {
		u, err := url.Parse(strings.TrimRight(strings.TrimSpace(raw), "/"))
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("gateway: backend %q is not an absolute URL", raw)
		}
		if seen[u.Host] {
			return nil, fmt.Errorf("gateway: duplicate backend %q", u.Host)
		}
		seen[u.Host] = true
		b := &backend{
			id:   u.Host,
			base: u.String(),
			requests: reg.Counter("rne_gateway_backend_requests_total",
				"Requests proxied, by backend.", "backend", u.Host),
			failures: reg.Counter("rne_gateway_backend_failures_total",
				"Failed proxied requests and probes, by backend.", "backend", u.Host),
			cancels: reg.Counter("rne_gateway_backend_cancels_total",
				"Sub-requests abandoned because the client canceled or its deadline expired, by backend.", "backend", u.Host),
			backpressure: reg.Counter("rne_gateway_backend_backpressure_total",
				"Backend 429/503 answers treated as busy-not-dead (never ejection), by backend.", "backend", u.Host),
			healthyG: reg.Gauge("rne_gateway_backend_healthy",
				"1 while the backend is routed to, 0 while ejected.", "backend", u.Host),
		}
		b.healthy.Store(true)
		b.healthyG.Set(1)
		b.shardID.Store(-1)
		g.backends = append(g.backends, b)
		ids = append(ids, u.Host)
	}
	g.ring = newRing(ids, cfg.VirtualNodes)

	g.wg.Add(1)
	go g.probeLoop()
	return g, nil
}

// Close stops the health-probe loop and flushes the request tracer.
// The handler keeps working with the last known backend states.
func (g *Gateway) Close() error {
	g.stopOnce.Do(func() { close(g.stop) })
	g.wg.Wait()
	g.tracer.Close() // nil-safe
	return nil
}

// Stats exposes the request counters backing /statz and /metrics.
func (g *Gateway) Stats() *resilience.Stats { return g.stats }

// Tracer exposes the request tracer (nil when disabled).
func (g *Gateway) Tracer() *telemetry.RequestTracer { return g.tracer }

// HealthyBackends reports how many backends are currently routed to.
func (g *Gateway) HealthyBackends() int {
	n := 0
	for _, b := range g.backends {
		if b.healthy.Load() {
			n++
		}
	}
	return n
}

// Handler returns the gateway route table wrapped in the same
// resilience stack the replicas use:
//
//	GET  /healthz    gateway liveness + per-backend health (and shard ids)
//	GET  /readyz     ready iff at least one backend is routed to (503 otherwise);
//	                 region mode additionally reports per-shard coverage
//	GET  /statz      request/latency/status counters (JSON)
//	GET  /metrics    Prometheus text exposition
//	GET  /distance   proxied to the source vertex's owner (ring or region)
//	GET  /knn        proxied to the source vertex's owner
//	GET  /range      proxied to the source vertex's owner
//	POST /batch      split by source vertex, fanned out, merged in order
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", g.handleHealth)
	mux.HandleFunc("GET /readyz", g.handleReady)
	mux.Handle("GET /statz", g.stats.Handler())
	mux.Handle("GET /metrics", g.stats.Registry().Handler())
	mux.HandleFunc("GET /distance", g.handleDistance)
	mux.HandleFunc("GET /knn", g.handleKNN)
	mux.HandleFunc("GET /range", g.handleRange)
	mux.HandleFunc("POST /batch", g.handleBatch)
	// Same trace layering as the replicas: admission marker just inside
	// the resilience stack, handler span around the whole of it.
	var inner http.Handler = mux
	if g.tracer != nil {
		inner = telemetry.TraceAdmitted(mux)
	}
	h := resilience.Wrap(inner, resilience.Options{
		MaxInFlight: g.cfg.MaxInFlight,
		Admission:   g.cfg.Admission,
		Timeout:     g.cfg.RequestTimeout,
		Logger:      g.cfg.Logger,
		Stats:       g.stats,
	})
	h = telemetry.TraceHTTP(g.tracer, h)
	return telemetry.RequestID(h)
}

// pick returns the ring owner for src among healthy, non-excluded
// backends, or nil when none qualify.
func (g *Gateway) pick(src int32, exclude map[*backend]bool) *backend {
	i := g.ring.walk(src, func(idx int) bool {
		b := g.backends[idx]
		return b.healthy.Load() && !exclude[b]
	})
	if i < 0 {
		return nil
	}
	return g.backends[i]
}

// route returns the backend that owns src: the consistent-hash ring
// owner in hash mode, or (region mode) a healthy replica of src's
// shard, round-robined per shard. Returns nil when no owning backend
// qualifies — in region mode, replicas of *other* shards never do,
// since they would disown the vertex with a 421.
func (g *Gateway) route(src int32, exclude map[*backend]bool) *backend {
	sm := g.cfg.ShardMap
	if sm == nil {
		return g.pick(src, exclude)
	}
	owner, ok := sm.ShardOf(src)
	if !ok {
		return nil
	}
	start := int(g.shardRR[owner].Add(1))
	n := len(g.backends)
	for i := 0; i < n; i++ {
		b := g.backends[(start+i)%n]
		if b.healthy.Load() && !exclude[b] && int(b.shardID.Load()) == owner {
			return b
		}
	}
	return nil
}

// noBackendFor answers a request no backend can serve. Hash mode: the
// classic 502. Region mode: the shard's replicas are all gone while
// other regions keep serving, so the honest answer is a region-scoped
// 503 the client can retry after the shard recovers.
func (g *Gateway) noBackendFor(w http.ResponseWriter, src int32) {
	if sm := g.cfg.ShardMap; sm != nil {
		if owner, ok := sm.ShardOf(src); ok {
			w.Header().Set("Retry-After", fmt.Sprintf("%.2f", g.jittered(time.Second).Seconds()))
			g.fail(w, http.StatusServiceUnavailable,
				"shard %d degraded: no healthy replica for vertex %d", owner, src)
			return
		}
	}
	g.fail(w, http.StatusBadGateway, "no healthy backend for vertex %d", src)
}

// checkMapped rejects (with 400) a source vertex outside the shard
// map's range before any routing; a no-op in hash mode, where range
// validation is the backend's job.
func (g *Gateway) checkMapped(w http.ResponseWriter, src int32) bool {
	sm := g.cfg.ShardMap
	if sm == nil {
		return true
	}
	if _, ok := sm.ShardOf(src); !ok {
		g.fail(w, http.StatusBadRequest, "vertex %d outside the shard map [0,%d)", src, sm.NumVertices())
		return false
	}
	return true
}

// jittered spreads d by a uniform ±cfg.BackoffJitter fraction, so
// backends ejected by one event re-probe at staggered times instead of
// hammering a recovering replica in lockstep.
func (g *Gateway) jittered(d time.Duration) time.Duration {
	if g.cfg.BackoffJitter <= 0 || d <= 0 {
		return d
	}
	g.jitterMu.Lock()
	u := g.jitterRng.Float64()
	g.jitterMu.Unlock()
	return time.Duration(float64(d) * (1 + g.cfg.BackoffJitter*(2*u-1)))
}

// markFailure records one failed call or probe against b, ejecting it
// once cfg.EjectAfter consecutive failures accumulate. Ejection seeds
// the exponential re-probe backoff; further failures double it up to
// cfg.BackoffMax, with each re-probe time jittered.
func (g *Gateway) markFailure(b *backend, err error) {
	b.failures.Inc()
	b.mu.Lock()
	b.fails++
	eject := b.fails >= g.cfg.EjectAfter && b.healthy.Load()
	if eject {
		b.healthy.Store(false)
		b.backoff = g.cfg.BackoffBase
	} else if !b.healthy.Load() && b.backoff > 0 {
		b.backoff *= 2
		if b.backoff > g.cfg.BackoffMax {
			b.backoff = g.cfg.BackoffMax
		}
	}
	if !b.healthy.Load() {
		b.nextProbe = time.Now().Add(g.jittered(b.backoff))
	}
	backoff := b.backoff
	b.mu.Unlock()
	if eject {
		b.healthyG.Set(0)
		g.ejections.Inc()
		g.log.Warn("backend ejected", "backend", b.id, "error", err, "reprobe_in", backoff)
	}
}

// markSuccess resets b's failure streak and restores an ejected
// backend to routing.
func (g *Gateway) markSuccess(b *backend) {
	b.mu.Lock()
	b.fails = 0
	b.backoff = 0
	revived := !b.healthy.Load()
	if revived {
		b.healthy.Store(true)
	}
	b.mu.Unlock()
	if revived {
		b.healthyG.Set(1)
		g.revivals.Inc()
		g.log.Info("backend restored", "backend", b.id)
	}
}

// probeLoop actively checks backends: healthy ones every
// HealthInterval (so a silently dead replica is ejected even with no
// traffic), ejected ones on their backoff schedule.
func (g *Gateway) probeLoop() {
	defer g.wg.Done()
	ticker := time.NewTicker(g.cfg.HealthInterval)
	defer ticker.Stop()
	for {
		select {
		case <-g.stop:
			return
		case <-ticker.C:
		}
		for _, b := range g.backends {
			if !b.healthy.Load() {
				b.mu.Lock()
				due := !time.Now().Before(b.nextProbe)
				b.mu.Unlock()
				if !due {
					continue
				}
			}
			if err := g.probe(b); err != nil {
				g.markFailure(b, err)
			} else {
				g.markSuccess(b)
			}
		}
	}
}

// probe asks one backend for /readyz; any 200 counts (a replica
// serving degraded — no spatial index — still answers /batch), and so
// does a 429: a replica shedding its own probe is saturated, not dead,
// and ejecting it would shrink the fleet mid-overload.
//
// In region mode the probe also discovers which geo-shard the replica
// serves from the readiness body's model.shard block. A backend that
// is not a shard replica, or that reports a different fleet topology
// than the routing map, fails its probe: routing to it would serve the
// wrong region's answers. A shed (429) probe can't carry the body, so
// it keeps the previously discovered identity.
func (g *Gateway) probe(b *backend) error {
	ctx, cancel := context.WithTimeout(context.Background(), g.cfg.BackendTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.base+"/readyz", nil)
	if err != nil {
		return err
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
		return fmt.Errorf("readyz returned %d", resp.StatusCode)
	}
	sm := g.cfg.ShardMap
	if sm == nil || resp.StatusCode != http.StatusOK {
		return nil
	}
	var ready struct {
		Model struct {
			Shard *struct {
				ID     int `json:"id"`
				Shards int `json:"shards"`
			} `json:"shard"`
		} `json:"model"`
	}
	if err := json.Unmarshal(body, &ready); err != nil {
		return fmt.Errorf("readyz body unparseable in region mode: %w", err)
	}
	sh := ready.Model.Shard
	if sh == nil {
		return fmt.Errorf("backend is not a shard replica (no model.shard on /readyz) but the gateway routes by region")
	}
	if sh.Shards != sm.NumShards() || sh.ID < 0 || sh.ID >= sm.NumShards() {
		return fmt.Errorf("backend serves shard %d of %d but the routing map has %d shards",
			sh.ID, sh.Shards, sm.NumShards())
	}
	if prev := b.shardID.Swap(int32(sh.ID)); prev >= 0 && prev != int32(sh.ID) {
		g.log.Warn("backend changed shard identity", "backend", b.id, "from", prev, "to", sh.ID)
	}
	return nil
}

func (g *Gateway) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (g *Gateway) fail(w http.ResponseWriter, status int, format string, args ...any) {
	g.writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (g *Gateway) backendStates() []map[string]any {
	out := make([]map[string]any, len(g.backends))
	for i, b := range g.backends {
		st := map[string]any{
			"backend": b.id,
			"healthy": b.healthy.Load(),
		}
		if g.cfg.ShardMap != nil {
			st["shard"] = b.shardID.Load() // -1 until discovered
		}
		out[i] = st
	}
	return out
}

// shardCoverage reports, per geo-shard, how many healthy replicas
// currently serve it (region mode only).
func (g *Gateway) shardCoverage() []int {
	cover := make([]int, g.cfg.ShardMap.NumShards())
	for _, b := range g.backends {
		if sid := b.shardID.Load(); b.healthy.Load() && sid >= 0 && int(sid) < len(cover) {
			cover[sid]++
		}
	}
	return cover
}

func (g *Gateway) handleHealth(w http.ResponseWriter, r *http.Request) {
	g.writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"role":     "gateway",
		"backends": g.backendStates(),
		"healthy":  g.HealthyBackends(),
	})
}

// handleReady is what an upstream load balancer gates on: the gateway
// is ready while at least one backend is routed to, and answers 503
// once the whole fleet is ejected. In region mode readiness is
// per-shard: ready when every shard has a routed replica, degraded
// (still 200 — the surviving regions serve) when some shards are
// uncovered, 503 only when no shard is routable at all.
func (g *Gateway) handleReady(w http.ResponseWriter, r *http.Request) {
	if g.cfg.ShardMap != nil {
		g.handleReadyShards(w)
		return
	}
	healthy := g.HealthyBackends()
	status := http.StatusOK
	state := "ready"
	if healthy == 0 {
		status = http.StatusServiceUnavailable
		state = "unavailable"
	} else if healthy < len(g.backends) {
		state = "degraded"
	}
	g.writeJSON(w, status, map[string]any{
		"status":   state,
		"healthy":  healthy,
		"backends": g.backendStates(),
	})
}

func (g *Gateway) handleReadyShards(w http.ResponseWriter) {
	cover := g.shardCoverage()
	var down []int
	covered := 0
	for sid, n := range cover {
		if n == 0 {
			down = append(down, sid)
		} else {
			covered++
		}
	}
	status := http.StatusOK
	state := "ready"
	switch {
	case covered == 0:
		status = http.StatusServiceUnavailable
		state = "unavailable"
	case len(down) > 0:
		state = "degraded"
	}
	out := map[string]any{
		"status":   state,
		"shards":   len(cover),
		"covered":  covered,
		"healthy":  g.HealthyBackends(),
		"backends": g.backendStates(),
	}
	if len(down) > 0 {
		out["shards_down"] = down
	}
	g.writeJSON(w, status, out)
}

// relay writes a backend response through verbatim.
func relay(w http.ResponseWriter, status int, body []byte, ct string) {
	if ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(status)
	w.Write(body)
}

// handleDistance proxies the single-pair query to the source vertex's
// owner (ring or region replica), falling over to the next healthy
// candidate (and recording the failure) if the owner errors. Retries
// spend retry-budget tokens; when the budget is empty the gateway
// answers with whatever the backend said (relayed backpressure) or
// sheds with 429 itself rather than amplifying load. With cfg.Hedge, a
// slow primary call is hedged to the next owner and the first answer
// wins.
func (g *Gateway) handleDistance(w http.ResponseWriter, r *http.Request) {
	src, err := sourceParam(r)
	if err != nil {
		g.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !g.checkMapped(w, src) {
		return
	}
	g.retryTokens.onRequest()
	if g.cfg.Hedge {
		g.handleDistanceHedged(w, r, src)
		return
	}
	g.proxyBySource(w, r, src, "/distance")
}

// handleKNN and handleRange proxy the spatial queries to the source
// vertex's owner exactly like /distance (no hedging — result sets can
// be large). In region mode shard replicas carry no spatial index and
// answer 501, which is relayed with its body intact, so clients get a
// clear "not implemented on this deployment" rather than a routing
// error.
func (g *Gateway) handleKNN(w http.ResponseWriter, r *http.Request) {
	g.proxySpatial(w, r, "/knn")
}

func (g *Gateway) handleRange(w http.ResponseWriter, r *http.Request) {
	g.proxySpatial(w, r, "/range")
}

func (g *Gateway) proxySpatial(w http.ResponseWriter, r *http.Request, route string) {
	src, err := sourceParam(r)
	if err != nil {
		g.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !g.checkMapped(w, src) {
		return
	}
	g.retryTokens.onRequest()
	g.proxyBySource(w, r, src, route)
}

// proxyBySource is the shared single-source proxy loop behind
// /distance, /knn and /range: route to src's owner, forward, retry
// once elsewhere on failure (budget permitting), degrade honestly
// when no one can answer.
func (g *Gateway) proxyBySource(w http.ResponseWriter, r *http.Request, src int32, route string) {
	exclude := make(map[*backend]bool)
	var lastBP *backpressureError
	denied := false
	for attempt := 0; attempt < 2; attempt++ {
		b := g.route(src, exclude)
		if b == nil {
			break
		}
		kind := "primary"
		if attempt > 0 {
			if !g.retryTokens.take() {
				g.retriesDenied.Inc()
				denied = true
				break
			}
			g.retries.Inc()
			kind = "retry"
		}
		status, body, ct, err := g.forward(r.Context(), b, http.MethodGet,
			route+"?"+r.URL.RawQuery, nil, kind)
		if err != nil {
			if r.Context().Err() != nil {
				// The client hung up or its deadline expired mid-proxy:
				// the backend did nothing wrong, so the failure must not
				// count toward its ejection — and there is no one left to
				// answer, so retrying is pointless.
				b.cancels.Inc()
				return
			}
			if errors.Is(err, errBudgetExhausted) {
				g.fail(w, http.StatusGatewayTimeout, "deadline budget exhausted before backend call")
				return
			}
			var bp *backpressureError
			if errors.As(err, &bp) {
				// Busy, not broken: retryable on another replica but never
				// counted toward ejection.
				lastBP = bp
				exclude[b] = true
				continue
			}
			g.markFailure(b, err)
			exclude[b] = true
			continue
		}
		g.markSuccess(b)
		relay(w, status, body, ct)
		return
	}
	if lastBP != nil {
		// Every reachable owner shed the request; relay the backend's own
		// shed response (with its Retry-After context) instead of
		// inventing a 502 for a fleet that is alive but saturated.
		lastBP.relayTo(w)
		return
	}
	if denied && g.retryTokens.enabled() {
		// The retry budget is dry because failures already dominate the
		// traffic mix: the fleet is drowning, not dead. Shed with 429 so
		// the client backs off, rather than reporting a 502 outage.
		w.Header().Set("Retry-After", fmt.Sprintf("%.2f", g.jittered(time.Second).Seconds()))
		g.fail(w, http.StatusTooManyRequests, "retry budget exhausted for vertex %d; back off", src)
		return
	}
	g.noBackendFor(w, src)
}

// handleDistanceHedged races a primary backend call against a hedged
// second attempt fired after the p95-derived hedge delay (or
// immediately when the primary fails). The first successful answer
// wins; the straggler's response is discarded. Only the receive loop
// touches health bookkeeping — the launched goroutines just forward.
func (g *Gateway) handleDistanceHedged(w http.ResponseWriter, r *http.Request, src int32) {
	primary := g.route(src, nil)
	if primary == nil {
		g.noBackendFor(w, src)
		return
	}
	type attempt struct {
		b      *backend
		hedged bool
		status int
		body   []byte
		ct     string
		err    error
	}
	results := make(chan attempt, 2)
	launch := func(b *backend, hedged bool) {
		kind := "primary"
		if hedged {
			kind = "hedge"
		}
		go func() {
			// The attempt span lives in this goroutine: a hedge loser's
			// span is closed here once its call resolves (the handler
			// returning cancels the request context), not leaked.
			status, body, ct, err := g.forward(r.Context(), b, http.MethodGet,
				"/distance?"+r.URL.RawQuery, nil, kind)
			results <- attempt{b: b, hedged: hedged, status: status, body: body, ct: ct, err: err}
		}()
	}
	launch(primary, false)
	outstanding := 1
	hedged := false

	// tryHedge fires the one allowed hedge at the next ring owner,
	// budget permitting.
	tryHedge := func() {
		if hedged {
			return
		}
		hedged = true
		b := g.route(src, map[*backend]bool{primary: true})
		if b == nil {
			return
		}
		if !g.retryTokens.take() {
			g.retriesDenied.Inc()
			return
		}
		launch(b, true)
		outstanding++
	}

	timer := time.NewTimer(hedgeDelay(g.backendLatency, g.cfg.HedgeMinDelay, g.cfg.HedgeMaxDelay))
	defer timer.Stop()
	timerC := timer.C

	var lastBP *backpressureError
	var lastErr error
	for outstanding > 0 {
		select {
		case <-timerC:
			timerC = nil
			tryHedge()
		case res := <-results:
			outstanding--
			if res.err != nil {
				if r.Context().Err() != nil {
					res.b.cancels.Inc()
					return
				}
				var bp *backpressureError
				switch {
				case errors.Is(res.err, errBudgetExhausted):
					lastErr = res.err
				case errors.As(res.err, &bp):
					lastBP = bp
				default:
					g.markFailure(res.b, res.err)
					lastErr = res.err
				}
				// A failed primary is a stronger hedge signal than the
				// latency timer; fire the backup attempt now.
				tryHedge()
				continue
			}
			g.markSuccess(res.b)
			if hedged && outstanding > 0 {
				// A real race happened; record who won. The straggler's
				// goroutine exits on its own once its call resolves (the
				// request context is canceled when this handler returns).
				won := "primary"
				if res.hedged {
					won = "hedge"
				}
				g.hedgeWins[won].Inc()
			}
			relay(w, res.status, res.body, res.ct)
			return
		}
	}
	if lastBP != nil {
		lastBP.relayTo(w)
		return
	}
	if errors.Is(lastErr, errBudgetExhausted) {
		g.fail(w, http.StatusGatewayTimeout, "deadline budget exhausted before backend call")
		return
	}
	g.noBackendFor(w, src)
}

// sourceParam pulls the source vertex out of a /distance query; full
// validation (range checks, the t parameter) is the backend's job.
func sourceParam(r *http.Request) (int32, error) {
	raw := r.URL.Query().Get("s")
	if raw == "" {
		return 0, fmt.Errorf("missing parameter %q", "s")
	}
	var v int64
	if _, err := fmt.Sscanf(raw, "%d", &v); err != nil || v < 0 || v > 1<<31-1 {
		return 0, fmt.Errorf("parameter %q is not a vertex id", "s")
	}
	return int32(v), nil
}

// errBudgetExhausted reports that the request's remaining deadline
// budget is too small to attempt a backend call at all.
var errBudgetExhausted = errors.New("deadline budget exhausted before backend call")

// forward performs one backend call, returning the response whole so
// the caller can merge or relay it. kind names which leg of the
// request this attempt is ("primary", "retry", "hedge", "shard",
// "shard-retry"); it labels the attempt span and, for non-primary
// legs, rides to the backend as an AttemptHeader so replica query
// logs can tell one slow query from one that cost two backends.
//
// Deadline budgets propagate here: when the inbound request carries a
// context deadline (the gateway's own RequestTimeout, or a client
// budget the resilience layer already folded in), the remaining time
// minus BudgetMargin both caps the call timeout and is forwarded as a
// BudgetHeader so the backend abandons work the gateway can no longer
// use.
//
// Every attempt that is actually made gets its own child span (a
// budget-exhausted bail-out never reaches the wire, so it gets none),
// and the outbound call carries that span's context as a traceparent —
// the replica's handler span parents under the exact attempt that
// caused it, hedge losers and retried shards included. The gateway's
// request ID is forwarded on every leg so all replicas log the same
// correlation ID instead of minting their own.
//
// Status classification: 2xx and 4xx are the caller's to relay or
// merge; 504 is relayed verbatim (the budget ran out downstream — the
// backend behaved correctly); 429/503 come back as a *backpressureError
// (busy, not broken: retryable elsewhere but never counted toward
// ejection); any other 5xx is a real failure.
func (g *Gateway) forward(ctx context.Context, b *backend, method, path string, body []byte, kind string) (int, []byte, string, error) {
	timeout := g.cfg.BackendTimeout
	if dl, ok := ctx.Deadline(); ok {
		remain := time.Until(dl) - g.cfg.BudgetMargin
		if remain <= 0 {
			return 0, nil, "", errBudgetExhausted
		}
		if remain < timeout {
			timeout = remain
		}
	}
	b.requests.Inc()
	spanName := "backend " + path
	if i := strings.IndexByte(spanName, '?'); i >= 0 {
		spanName = spanName[:i]
	}
	ctx, span := telemetry.StartChild(ctx, spanName)
	defer span.End()
	span.SetAttr("backend", b.id)
	span.SetAttr("kind", kind)
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, b.base+path, rd)
	if err != nil {
		span.SetError(err)
		return 0, nil, "", err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resilience.SetBudget(req.Header, timeout)
	if rid := telemetry.RequestIDFrom(ctx); rid != "" {
		req.Header.Set(telemetry.RequestIDHeader, rid)
	}
	switch kind {
	case "retry", "hedge", "shard-retry":
		req.Header.Set(telemetry.AttemptHeader, kind)
	}
	telemetry.InjectTraceParent(req.Header, span.Context())
	start := time.Now()
	resp, err := g.client.Do(req)
	if err != nil {
		span.SetError(err)
		return 0, nil, "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, g.cfg.MaxBatchBytes))
	if err != nil {
		span.SetError(err)
		return 0, nil, "", err
	}
	span.SetStatus(resp.StatusCode)
	switch {
	case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
		b.backpressure.Inc()
		span.Event("backpressure", fmt.Sprintf("backend answered %d", resp.StatusCode))
		return 0, nil, "", &backpressureError{
			status: resp.StatusCode, body: data,
			ct:         resp.Header.Get("Content-Type"),
			retryAfter: resp.Header.Get("Retry-After"),
		}
	case resp.StatusCode == http.StatusMisdirectedRequest:
		// The replica disowned a vertex this gateway routed to it: the
		// routing map and the fleet disagree (stale map or mid-rollout
		// topology change). Counted for alerting, then relayed with the
		// replica's Rne-Shard-Owner hint — the backend is healthy, the
		// route was wrong.
		g.staleRoutes.Inc()
		span.Event("stale-route", "backend disowned the routed vertex (421)")
	case resp.StatusCode >= 500 &&
		resp.StatusCode != http.StatusGatewayTimeout &&
		resp.StatusCode != http.StatusNotImplemented:
		// 501 is a capability statement (e.g. a shard replica with no
		// spatial index answering /knn), relayed verbatim rather than
		// treated as a replica failure — ejecting a healthy fleet
		// because a route is unimplemented would be self-inflicted.
		err := fmt.Errorf("%s %s returned %d", method, path, resp.StatusCode)
		span.SetError(err)
		return 0, nil, "", err
	}
	if resp.StatusCode < 300 {
		g.backendLatency.ObserveExemplar(time.Since(start).Seconds(), span.ExemplarID())
	}
	return resp.StatusCode, data, resp.Header.Get("Content-Type"), nil
}

type batchRequest struct {
	Pairs [][2]int32 `json:"pairs"`
}

// backendBatch is the slice of an inbound batch owned by one backend:
// the original indices (for order-preserving scatter) and the pairs.
type backendBatch struct {
	b     *backend
	index []int
	pairs [][2]int32
}

// batchReply is what a replica answers a sub-batch with; Lo/Hi and
// ClampedCount are present only in guard mode.
type batchReply struct {
	Distances    []float64 `json:"distances"`
	Lo           []float64 `json:"lo"`
	Hi           []float64 `json:"hi"`
	ClampedCount *int      `json:"clamped_count"`
}

// pairError is one unanswered pair in a partial batch response.
type pairError struct {
	Index int    `json:"index"`
	Error string `json:"error"`
}

// handleBatch is the fan-out path: split the pairs by their source
// vertex's ring owner, post every sub-batch concurrently, and scatter
// the answers back into the original order. A failed sub-batch is
// retried once on the next healthy backend (budget permitting, with
// real failures recorded against the first); a sub-batch that still
// cannot be served degrades the response instead of failing it: the
// surviving pairs come back with their distances, the lost ones as
// per-pair error entries, under 206 Partial Content with "partial":
// true. Only when every sub-batch fails (502) — or no pair is
// routable at all (503) — does the whole request fail.
func (g *Gateway) handleBatch(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, g.cfg.MaxBatchBytes)
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			g.fail(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d byte limit", tooLarge.Limit)
			return
		}
		g.fail(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	if len(req.Pairs) == 0 {
		g.fail(w, http.StatusBadRequest, "empty batch")
		return
	}
	g.retryTokens.onRequest()

	groups := make(map[*backend]*backendBatch)
	var errs []pairError
	for i, p := range req.Pairs {
		b := g.route(p[0], nil)
		if b == nil {
			msg := "no healthy backend"
			if sm := g.cfg.ShardMap; sm != nil {
				if owner, ok := sm.ShardOf(p[0]); ok {
					msg = fmt.Sprintf("shard %d has no healthy replica", owner)
				} else {
					msg = fmt.Sprintf("vertex %d outside the shard map", p[0])
				}
			}
			errs = append(errs, pairError{Index: i, Error: msg})
			continue
		}
		gr := groups[b]
		if gr == nil {
			gr = &backendBatch{b: b}
			groups[b] = gr
		}
		gr.index = append(gr.index, i)
		gr.pairs = append(gr.pairs, p)
	}
	if len(groups) == 0 {
		g.fail(w, http.StatusServiceUnavailable, "no healthy backends")
		return
	}

	type result struct {
		gr    *backendBatch
		reply batchReply
		code  int    // non-zero 4xx to relay verbatim
		body  []byte // 4xx body
		err   error
	}
	results := make(chan result, len(groups))
	for _, gr := range groups {
		go func(gr *backendBatch) {
			res := result{gr: gr}
			res.reply, res.code, res.body, res.err = g.sendBatch(r.Context(), gr)
			results <- res
		}(gr)
	}

	distances := make([]float64, len(req.Pairs))
	lo := make([]float64, len(req.Pairs))
	hi := make([]float64, len(req.Pairs))
	clamped := 0
	guarded := true
	served := 0
	sawBackoff := false
	for range groups {
		res := <-results
		if res.err != nil {
			if r.Context().Err() != nil {
				// The client is gone; nothing to degrade for.
				return
			}
			if errors.Is(res.err, errBackpressure) ||
				(g.retryTokens.enabled() && errors.Is(res.err, errRetryDenied)) {
				sawBackoff = true
			}
			for _, orig := range res.gr.index {
				errs = append(errs, pairError{Index: orig, Error: res.err.Error()})
			}
			continue
		}
		if res.code != 0 {
			// A backend rejected its slice as a bad request (e.g. vertex
			// out of range): the client's fault, relayed verbatim.
			relay(w, res.code, res.body, "application/json")
			return
		}
		rp := res.reply
		if len(rp.Distances) != len(res.gr.index) {
			shape := fmt.Errorf("backend %s returned %d distances for %d pairs",
				res.gr.b.id, len(rp.Distances), len(res.gr.index))
			for _, orig := range res.gr.index {
				errs = append(errs, pairError{Index: orig, Error: shape.Error()})
			}
			continue
		}
		served++
		if len(rp.Lo) == len(res.gr.index) && len(rp.Hi) == len(res.gr.index) {
			for k, orig := range res.gr.index {
				lo[orig], hi[orig] = rp.Lo[k], rp.Hi[k]
			}
			if rp.ClampedCount != nil {
				clamped += *rp.ClampedCount
			}
		} else {
			guarded = false
		}
		for k, orig := range res.gr.index {
			distances[orig] = rp.Distances[k]
		}
	}

	if served == 0 {
		if sawBackoff {
			// Every shard failed, but at least one failure was shed load or
			// a budget-denied retry: the fleet is saturated, not down.
			// Answer 429 so clients back off and retry, not 502.
			w.Header().Set("Retry-After", fmt.Sprintf("%.2f", g.jittered(time.Second).Seconds()))
			g.fail(w, http.StatusTooManyRequests,
				"fleet saturated: every backend sub-batch was shed (%d pairs)", len(req.Pairs))
			return
		}
		g.fail(w, http.StatusBadGateway, "every backend sub-batch failed (%d pairs)", len(req.Pairs))
		return
	}
	if len(errs) == 0 {
		resp := map[string]any{"distances": distances}
		if guarded {
			// Every backend answered with certified bounds, so the merged
			// response keeps the guard-mode shape.
			resp["lo"], resp["hi"], resp["clamped_count"] = lo, hi, clamped
		}
		g.writeJSON(w, http.StatusOK, resp)
		return
	}

	// Partial degradation: null out the lost pairs, attach their error
	// entries, and say so with 206 + "partial": true. Guard bounds are
	// dropped — a partial set of certificates is not a certificate.
	g.batchPartial.Inc()
	g.pairErrors.Add(int64(len(errs)))
	if rspan := telemetry.SpanFromContext(r.Context()); rspan.Recording() {
		rspan.Event("partial", fmt.Sprintf("%d of %d pairs failed", len(errs), len(req.Pairs)))
		rspan.SetAttrInt("pair_errors", int64(len(errs)))
	}
	sortPairErrors(errs)
	failed := make([]bool, len(req.Pairs))
	for _, pe := range errs {
		failed[pe.Index] = true
	}
	nullable := make([]*float64, len(req.Pairs))
	for i := range distances {
		if !failed[i] {
			d := distances[i]
			nullable[i] = &d
		}
	}
	g.writeJSON(w, http.StatusPartialContent, map[string]any{
		"distances": nullable,
		"partial":   true,
		"errors":    errs,
	})
}

// sortPairErrors orders error entries by pair index so partial
// responses are deterministic regardless of fan-out completion order.
func sortPairErrors(errs []pairError) {
	slices.SortFunc(errs, func(a, b pairError) int { return a.Index - b.Index })
}

// sendBatch posts one sub-batch, retrying once on the next healthy
// backend when the owner fails (spending a retry-budget token; a
// drained budget stops the retry rather than amplifying load).
// Backend backpressure (429/503) is retryable but never counted
// toward ejection. Returns either a parsed reply, or a 4xx
// status+body to relay, or an error when no backend could serve the
// slice — the caller degrades those pairs instead of failing the
// whole batch.
func (g *Gateway) sendBatch(ctx context.Context, gr *backendBatch) (batchReply, int, []byte, error) {
	body, err := json.Marshal(batchRequest{Pairs: gr.pairs})
	if err != nil {
		return batchReply{}, 0, nil, err
	}
	exclude := map[*backend]bool{}
	b := gr.b
	var lastErr error
	for attempt := 0; attempt < 2 && b != nil; attempt++ {
		kind := "shard"
		if attempt > 0 {
			if !g.retryTokens.take() {
				g.retriesDenied.Inc()
				lastErr = fmt.Errorf("%w; last: %w", errRetryDenied, lastErr)
				break
			}
			g.retries.Inc()
			kind = "shard-retry"
		}
		status, data, _, err := g.forward(ctx, b, http.MethodPost, "/batch", body, kind)
		if err != nil {
			if ctx.Err() != nil {
				// Client cancellation, propagated into the sub-request:
				// not the backend's fault, and not worth a retry the
				// client will never see.
				b.cancels.Inc()
				return batchReply{}, 0, nil, fmt.Errorf("client canceled: %w", ctx.Err())
			}
			lastErr = err
			var bp *backpressureError
			switch {
			case errors.Is(err, errBudgetExhausted):
				// No budget left for any backend; retrying cannot help.
				return batchReply{}, 0, nil, err
			case errors.As(err, &bp):
				// Busy, not broken: no ejection bookkeeping.
			default:
				g.markFailure(b, err)
			}
			exclude[b] = true
			// Re-route by the slice's first source so the retry lands on
			// the next owner: the ring's next backend in hash mode, a
			// sibling replica of the same geo-shard in region mode.
			b = g.route(gr.pairs[0][0], exclude)
			continue
		}
		g.markSuccess(b)
		if status == http.StatusGatewayTimeout {
			// The backend ran out of forwarded budget mid-slice; surface
			// it as this slice's failure, not a relayable 4xx.
			return batchReply{}, 0, nil, fmt.Errorf("backend %s: budget exhausted (504)", b.id)
		}
		if status != http.StatusOK {
			return batchReply{}, status, data, nil
		}
		var reply batchReply
		if err := json.Unmarshal(data, &reply); err != nil {
			return batchReply{}, 0, nil, fmt.Errorf("backend %s: bad reply: %w", b.id, err)
		}
		return reply, 0, nil, nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("no healthy backend")
	}
	return batchReply{}, 0, nil, lastErr
}
