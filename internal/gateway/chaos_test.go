package gateway

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// chaosReplica is a capacity-bounded synthetic rneserver: it answers
// /distance and /batch with real model estimates behind a hard
// concurrency cap (sheds 429 past it, like the real admission layer),
// and can be "killed" — after which every connection is aborted
// mid-flight, exactly what a crashed process looks like to the
// gateway.
type chaosReplica struct {
	ts    *httptest.Server
	m     *core.Model
	dead  atomic.Bool
	sem   chan struct{}
	delay time.Duration
}

func newChaosReplica(t *testing.T, m *core.Model, capacity int, delay time.Duration) *chaosReplica {
	t.Helper()
	r := &chaosReplica{m: m, sem: make(chan struct{}, capacity), delay: delay}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, req *http.Request) {
		if r.dead.Load() {
			panic(http.ErrAbortHandler)
		}
		w.WriteHeader(http.StatusOK)
	})
	serve := func(w http.ResponseWriter, req *http.Request, fn func() any) {
		if r.dead.Load() {
			panic(http.ErrAbortHandler)
		}
		select {
		case r.sem <- struct{}{}:
			defer func() { <-r.sem }()
		default:
			w.Header().Set("Retry-After", "0.1")
			http.Error(w, `{"error":"replica saturated"}`, http.StatusTooManyRequests)
			return
		}
		time.Sleep(r.delay)
		if r.dead.Load() {
			panic(http.ErrAbortHandler)
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(fn())
	}
	mux.HandleFunc("GET /distance", func(w http.ResponseWriter, req *http.Request) {
		serve(w, req, func() any {
			var s, d int32
			fmt.Sscanf(req.URL.Query().Get("s"), "%d", &s)
			fmt.Sscanf(req.URL.Query().Get("t"), "%d", &d)
			return map[string]any{"distance": r.m.Estimate(s, d)}
		})
	})
	mux.HandleFunc("POST /batch", func(w http.ResponseWriter, req *http.Request) {
		var body batchRequest
		if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		serve(w, req, func() any {
			out := make([]float64, len(body.Pairs))
			for i, p := range body.Pairs {
				out[i] = r.m.Estimate(p[0], p[1])
			}
			return map[string]any{"distances": out}
		})
	})
	r.ts = httptest.NewServer(mux)
	t.Cleanup(r.ts.Close)
	return r
}

// kill aborts all in-flight and future connections, simulating a
// crashed replica (not a graceful drain).
func (r *chaosReplica) kill() {
	r.dead.Store(true)
	r.ts.CloseClientConnections()
}

// chaosOutcome is one client request's fate.
type chaosOutcome struct {
	status  int
	latency time.Duration
	// partialBody holds the decoded /batch body for 206 responses so the
	// merge can be re-verified bit-exactly after the run.
	partialBody map[string]any
}

// TestChaosSaturationWithReplicaKill is the overload drill end to end:
// three capacity-bounded replicas behind the gateway, client load at
// roughly twice fleet capacity, and one replica killed mid-run. The
// invariants:
//
//   - every response is 200, 206, 429 or 504 — overload and a crashed
//     replica degrade service, they never produce 5xx chaos or a crash;
//   - goodput after the kill stays above 90% of one replica's share of
//     the pre-kill goodput (the survivors keep serving);
//   - client-observed p99 stays bounded (shedding is O(1), not a queue);
//   - the killed replica is ejected while both survivors stay routed;
//   - every partial (206) batch merge is bit-exact: degraded responses
//     may drop answers but never corrupt them.
//
// Run with -race; the fan-out, hedging and admission paths are all
// concurrent here.
func TestChaosSaturationWithReplicaKill(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos drill takes ~2s of wall clock")
	}
	_, m := buildModel(t)
	const (
		perReplicaCap = 3
		serviceDelay  = 2 * time.Millisecond
		workers       = 18 // ~2x the fleet's 9 concurrent slots
		phase         = 600 * time.Millisecond
	)
	replicas := make([]*chaosReplica, 3)
	urls := make([]string, 3)
	for i := range replicas {
		replicas[i] = newChaosReplica(t, m, perReplicaCap, serviceDelay)
		urls[i] = replicas[i].ts.URL
	}
	gw := newGateway(t, Config{
		Backends:       urls,
		HealthInterval: 20 * time.Millisecond,
		EjectAfter:     3,
		BackoffBase:    50 * time.Millisecond,
		BackoffMax:     time.Second,
		BackendTimeout: 2 * time.Second,
		RequestTimeout: 5 * time.Second,
		RetryBudget:    0.2,
	})
	ts := httptest.NewServer(gw.Handler())
	defer ts.Close()

	// The fixed batch spans many sources, so its groups always cover
	// more than one replica and a single crash can only degrade it.
	batchPairs := make([][2]int32, 16)
	for i := range batchPairs {
		batchPairs[i] = [2]int32{int32(i * 4 % 64), int32((i*9 + 5) % 64)}
	}
	batchJSON := batchBody(batchPairs)

	var mu sync.Mutex
	var outcomes []chaosOutcome
	var phaseB atomic.Bool
	var goodA, goodB atomic.Int64
	record := func(o chaosOutcome) {
		if o.status == http.StatusOK || o.status == http.StatusPartialContent {
			if phaseB.Load() {
				goodB.Add(1)
			} else {
				goodA.Add(1)
			}
		}
		mu.Lock()
		outcomes = append(outcomes, o)
		mu.Unlock()
	}

	client := &http.Client{Timeout: 10 * time.Second}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				start := time.Now()
				var o chaosOutcome
				if (w+i)%3 == 0 {
					resp, err := client.Post(ts.URL+"/batch", "application/json",
						strings.NewReader(batchJSON))
					if err != nil {
						continue // connection-level noise, not a served status
					}
					o.status = resp.StatusCode
					if resp.StatusCode == http.StatusPartialContent {
						var body map[string]any
						if err := json.NewDecoder(resp.Body).Decode(&body); err == nil {
							o.partialBody = body
						}
					} else if resp.StatusCode >= 500 {
						var body map[string]any
						json.NewDecoder(resp.Body).Decode(&body)
						t.Logf("batch 5xx: %d %v", resp.StatusCode, body)
					}
					resp.Body.Close()
				} else {
					s := int32((w*17 + i*5) % 64)
					d := int32((w*11 + i*13) % 64)
					resp, err := client.Get(fmt.Sprintf("%s/distance?s=%d&t=%d", ts.URL, s, d))
					if err != nil {
						continue
					}
					o.status = resp.StatusCode
					if resp.StatusCode >= 500 {
						var body map[string]any
						json.NewDecoder(resp.Body).Decode(&body)
						t.Logf("distance 5xx: %d %v", resp.StatusCode, body)
					}
					resp.Body.Close()
				}
				o.latency = time.Since(start)
				record(o)
			}
		}(w)
	}

	time.Sleep(phase) // phase A: all replicas alive, fleet saturated
	replicas[0].kill()
	phaseB.Store(true)
	time.Sleep(phase) // phase B: two survivors under the same load
	close(stop)
	wg.Wait()

	// Invariant: only the sanctioned status set, under 2x overload and a
	// mid-run crash.
	counts := map[int]int{}
	var latencies []time.Duration
	for _, o := range outcomes {
		counts[o.status]++
		latencies = append(latencies, o.latency)
	}
	for status := range counts {
		switch status {
		case http.StatusOK, http.StatusPartialContent,
			http.StatusTooManyRequests, http.StatusGatewayTimeout:
		default:
			t.Errorf("forbidden status %d appeared %d times (distribution: %v)",
				status, counts[status], counts)
		}
	}
	if len(outcomes) == 0 {
		t.Fatal("no requests completed")
	}

	// Invariant: goodput survives the crash. Phase B must beat 90% of a
	// single replica's share of phase A (the two survivors together are
	// expected near 2x that; this bound is deliberately conservative so
	// scheduler noise cannot flake the run).
	a, b := goodA.Load(), goodB.Load()
	if a == 0 {
		t.Fatal("no goodput in phase A: the drill never saturated")
	}
	if min := float64(a) / 3 * 0.9; float64(b) < min {
		t.Errorf("phase-B goodput %d below %.0f (phase A was %d): survivors did not keep serving", b, min, a)
	}

	// Invariant: bounded tail latency — shedding answers fast instead of
	// queueing into the timeout.
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	if p99 := latencies[len(latencies)*99/100]; p99 > time.Second {
		t.Errorf("client p99 %v exceeds 1s under overload", p99)
	}

	// Invariant: the crash was detected and contained.
	waitFor(t, "crashed replica ejection", func() bool { return gw.HealthyBackends() == 2 })
	for i, r := range replicas[1:] {
		if r.dead.Load() {
			t.Fatalf("survivor %d unexpectedly dead", i+1)
		}
	}

	// Invariant: every partial merge is bit-exact against the model.
	partials := 0
	for _, o := range outcomes {
		if o.partialBody == nil {
			continue
		}
		partials++
		if o.partialBody["partial"] != true {
			t.Fatalf("206 response without partial flag: %v", o.partialBody)
		}
		dists, ok := o.partialBody["distances"].([]any)
		if !ok || len(dists) != len(batchPairs) {
			t.Fatalf("partial merge wrong shape: %v", o.partialBody)
		}
		erred := map[int]bool{}
		for _, e := range o.partialBody["errors"].([]any) {
			erred[int(e.(map[string]any)["index"].(float64))] = true
		}
		for i, p := range batchPairs {
			if erred[i] {
				if dists[i] != nil {
					t.Fatalf("partial merge: failed pair %d carries a value %v", i, dists[i])
				}
				continue
			}
			if dists[i] == nil {
				t.Fatalf("partial merge: pair %d neither served nor reported failed", i)
			}
			if got := dists[i].(float64); got != m.Estimate(p[0], p[1]) {
				t.Fatalf("partial merge corrupted pair %d: got %v want %v", i, got, m.Estimate(p[0], p[1]))
			}
		}
	}
	t.Logf("chaos drill: %d requests, statuses %v, goodput A=%d B=%d, partial batches verified=%d",
		len(outcomes), counts, a, b, partials)
}
