package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/alt"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/hybrid"
)

// buildOn trains a quick model over g with the given seed.
func buildOn(t *testing.T, g *graph.Graph, seed int64) *core.Model {
	t.Helper()
	opt := core.DefaultOptions(seed)
	opt.Dim = 8
	opt.Epochs = 2
	opt.VertexSampleRatio = 10
	opt.FineTuneRounds = 1
	opt.HierSampleCap = 2000
	opt.ValidationPairs = 50
	m, _, err := core.Build(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func swapGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := gen.Grid(8, 8, gen.DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func metricValue(t *testing.T, ts *httptest.Server, line string) float64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, l := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(l, line+" ") {
			var v float64
			fmt.Sscanf(strings.TrimPrefix(l, line+" "), "%g", &v)
			return v
		}
	}
	t.Fatalf("metric %q not found in:\n%s", line, body)
	return 0
}

func TestSwapFlipsVersionAndEstimates(t *testing.T) {
	g := swapGraph(t)
	m1, m2 := buildOn(t, g, 1), buildOn(t, g, 2)
	srv, err := NewFromSet(ModelSet{Model: m1, Version: "v1"}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if v := srv.ActiveVersion(); v != "v1" {
		t.Fatalf("boot version %s", v)
	}
	out := getJSON(t, ts.URL+"/distance?s=0&t=50", http.StatusOK)
	if out["distance"].(float64) != m1.Estimate(0, 50) {
		t.Fatal("serving wrong model before swap")
	}
	if v := metricValue(t, ts, `rne_model_version{version="v1"}`); v != 1 {
		t.Fatalf("version gauge v1 = %v, want 1", v)
	}

	if err := srv.Swap(ModelSet{Model: m2, Version: "v2"}); err != nil {
		t.Fatal(err)
	}
	if v := srv.ActiveVersion(); v != "v2" {
		t.Fatalf("post-swap version %s", v)
	}
	out = getJSON(t, ts.URL+"/distance?s=0&t=50", http.StatusOK)
	if out["distance"].(float64) != m2.Estimate(0, 50) {
		t.Fatal("swap did not change serving model")
	}
	health := getJSON(t, ts.URL+"/healthz", http.StatusOK)
	if health["version"] != "v2" {
		t.Fatalf("healthz version = %v, want v2", health["version"])
	}
	if v := metricValue(t, ts, "rne_model_swaps_total"); v != 1 {
		t.Fatalf("swaps_total = %v, want 1", v)
	}
	if v := metricValue(t, ts, `rne_model_version{version="v2"}`); v != 1 {
		t.Fatalf("version gauge v2 = %v, want 1", v)
	}
	if v := metricValue(t, ts, `rne_model_version{version="v1"}`); v != 0 {
		t.Fatalf("version gauge v1 after swap = %v, want 0", v)
	}
}

func TestSwapValidationRollsBack(t *testing.T) {
	g := swapGraph(t)
	m1 := buildOn(t, g, 1)
	srv, err := NewFromSet(ModelSet{Model: m1, Version: "v1"}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// A NaN-poisoned candidate must fail the sample-query smoke.
	bad := buildOn(t, g, 3)
	bad.Matrix().Row(0)[0] = math.NaN()
	if err := srv.Swap(ModelSet{Model: bad, Version: "v2"}); err == nil {
		t.Fatal("swap accepted a NaN-poisoned model")
	}
	// A guard covering a different graph must fail vertex validation.
	small, err := gen.Grid(5, 5, gen.DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	sm := buildOn(t, small, 1)
	lt, err := alt.Build(small, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	guard, err := hybrid.New(sm, lt)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Swap(ModelSet{Model: m1, Guard: guard, Version: "v3"}); err == nil {
		t.Fatal("swap accepted a guard from a different graph")
	}

	// Every failure rolled back: v1 still serves, failures counted,
	// swaps_total untouched.
	if v := srv.ActiveVersion(); v != "v1" {
		t.Fatalf("active after failed swaps = %s, want v1", v)
	}
	out := getJSON(t, ts.URL+"/distance?s=0&t=50", http.StatusOK)
	if out["distance"].(float64) != m1.Estimate(0, 50) {
		t.Fatal("rollback did not preserve the serving model")
	}
	if v := metricValue(t, ts, "rne_model_swap_failures_total"); v != 2 {
		t.Fatalf("swap_failures_total = %v, want 2", v)
	}
	if v := metricValue(t, ts, "rne_model_swaps_total"); v != 0 {
		t.Fatalf("swaps_total = %v, want 0", v)
	}
}

func TestAdminReloadEndpoint(t *testing.T) {
	g := swapGraph(t)
	m1, m2 := buildOn(t, g, 1), buildOn(t, g, 2)
	var fail atomic.Bool
	srv, err := NewFromSet(ModelSet{Model: m1, Version: "v1"}, Config{
		Reloader: func() (ModelSet, error) {
			if fail.Load() {
				return ModelSet{}, fmt.Errorf("registry unreachable")
			}
			return ModelSet{Model: m2, Version: "v2"}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/admin/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || out["swapped"] != true || out["version"] != "v2" {
		t.Fatalf("reload response %d %v", resp.StatusCode, out)
	}
	if srv.ActiveVersion() != "v2" {
		t.Fatal("reload did not swap")
	}

	fail.Store(true)
	resp, err = http.Post(ts.URL+"/admin/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	out = map[string]any{}
	json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError || out["swapped"] != false {
		t.Fatalf("failed reload response %d %v", resp.StatusCode, out)
	}
	if out["active_version"] != "v2" {
		t.Fatalf("failed reload did not report the still-active version: %v", out)
	}
	if srv.ActiveVersion() != "v2" {
		t.Fatal("failed reload changed the active set")
	}
}

func TestAdminReloadWithoutReloader(t *testing.T) {
	g := swapGraph(t)
	srv, err := NewFromSet(ModelSet{Model: buildOn(t, g, 1)}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/admin/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("reload without reloader = %d, want 501", resp.StatusCode)
	}
}

func TestCompactServing(t *testing.T) {
	g := swapGraph(t)
	m := buildOn(t, g, 1)
	cm, err := m.Compact()
	if err != nil {
		t.Fatal(err)
	}
	lt, err := alt.Build(g, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	guard, err := hybrid.New(cm, lt)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewFromSet(ModelSet{Compact: cm, Guard: guard, Version: "v1-compact"}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	health := getJSON(t, ts.URL+"/healthz", http.StatusOK)
	if health["compact"] != true || health["guard"] != true {
		t.Fatalf("healthz meta %v", health)
	}
	out := getJSON(t, ts.URL+"/distance?s=1&t=60", http.StatusOK)
	want := cm.Estimate(1, 60)
	got := out["distance"].(float64)
	if got < out["lo"].(float64)-1e-9 || got > out["hi"].(float64)+1e-9 {
		t.Fatalf("guarded compact estimate %v outside [%v,%v]", got, out["lo"], out["hi"])
	}
	if full := m.Estimate(1, 60); math.Abs(got-want) > 1e-9 || math.Abs(got-full)/full > 1e-3 {
		t.Fatalf("compact serving estimate %v, compact %v, full %v", got, want, full)
	}

	var buf bytes.Buffer
	buf.WriteString(`{"pairs":[[0,10],[3,40]]}`)
	resp, err := http.Post(ts.URL+"/batch", "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compact /batch = %d", resp.StatusCode)
	}

	// The per-level decomposition is gone on compact replicas.
	getJSON(t, ts.URL+"/explain?s=0&t=10", http.StatusNotImplemented)
}

func TestSwapRebuildsDriftMonitorFromNewScale(t *testing.T) {
	g := swapGraph(t)
	m1, m2 := buildOn(t, g, 1), buildOn(t, g, 2)
	lt, err := alt.Build(g, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	g1, err := hybrid.New(m1, lt)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := hybrid.New(m2, lt)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewFromSet(ModelSet{Model: m1, Guard: g1, Version: "v1"}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if d := srv.active.Load().drift; d == nil || d.MaxDist() != m1.Scale() {
		t.Fatalf("boot drift monitor scale wrong: %+v", d)
	}
	if err := srv.Swap(ModelSet{Model: m2, Guard: g2, Version: "v2"}); err != nil {
		t.Fatal(err)
	}
	// The regression this guards: reusing the boot-time monitor would
	// band drift against m1's scale forever.
	if d := srv.active.Load().drift; d == nil || d.MaxDist() != m2.Scale() {
		t.Fatalf("post-swap drift monitor not rebuilt from the new scale (have %v, want %v)",
			srv.active.Load().drift.MaxDist(), m2.Scale())
	}
}

// TestSwapUnderLoad is the zero-downtime contract, run under -race in
// CI: /distance and /batch hammered concurrently with repeated swaps
// between two versions must produce zero non-2xx responses, and every
// response must be internally consistent with exactly one model — a
// batch half-served by v1 and half by v2 would be a torn read.
func TestSwapUnderLoad(t *testing.T) {
	g := swapGraph(t)
	m1, m2 := buildOn(t, g, 1), buildOn(t, g, 2)
	srv, err := NewFromSet(ModelSet{Model: m1, Version: "v1"}, Config{MaxInFlight: -1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	pairs := [][2]int32{{0, 50}, {3, 33}, {7, 60}, {12, 21}}
	e1 := make([]float64, len(pairs))
	e2 := make([]float64, len(pairs))
	for i, p := range pairs {
		e1[i] = m1.Estimate(p[0], p[1])
		e2[i] = m2.Estimate(p[0], p[1])
		if e1[i] == e2[i] {
			t.Fatalf("models agree on pair %v; torn reads would be invisible", p)
		}
	}
	body := `{"pairs":[[0,50],[3,33],[7,60],[12,21]]}`

	const workers = 8
	stop := make(chan struct{})
	errs := make(chan error, workers*4)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if w%2 == 0 {
					resp, err := http.Get(ts.URL + "/distance?s=0&t=50")
					if err != nil {
						errs <- err
						return
					}
					var out map[string]any
					err = json.NewDecoder(resp.Body).Decode(&out)
					resp.Body.Close()
					if err != nil {
						errs <- err
						return
					}
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("/distance status %d", resp.StatusCode)
						return
					}
					if d := out["distance"].(float64); d != e1[0] && d != e2[0] {
						errs <- fmt.Errorf("torn /distance read: %v is neither %v nor %v", d, e1[0], e2[0])
						return
					}
				} else {
					resp, err := http.Post(ts.URL+"/batch", "application/json", strings.NewReader(body))
					if err != nil {
						errs <- err
						return
					}
					var out struct {
						Distances []float64 `json:"distances"`
					}
					err = json.NewDecoder(resp.Body).Decode(&out)
					resp.Body.Close()
					if err != nil {
						errs <- err
						return
					}
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("/batch status %d", resp.StatusCode)
						return
					}
					if len(out.Distances) != len(pairs) {
						errs <- fmt.Errorf("batch returned %d distances", len(out.Distances))
						return
					}
					// All-v1 or all-v2, never a mix.
					wantV1 := out.Distances[0] == e1[0]
					for i, d := range out.Distances {
						want := e2[i]
						if wantV1 {
							want = e1[i]
						}
						if d != want {
							errs <- fmt.Errorf("torn /batch read at %d: %v (batch started as v1=%v)", i, d, wantV1)
							return
						}
					}
				}
			}
		}(w)
	}

	const swaps = 40
	sets := []ModelSet{{Model: m1, Version: "v1"}, {Model: m2, Version: "v2"}}
	for i := 0; i < swaps; i++ {
		if err := srv.Swap(sets[(i+1)%2]); err != nil {
			t.Fatalf("swap %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if v := metricValue(t, ts, "rne_model_swaps_total"); v != swaps {
		t.Fatalf("swaps_total = %v, want %d (monotonic, one per successful swap)", v, swaps)
	}
}
