package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"repro/internal/alt"
	"repro/internal/graph"
	"repro/internal/hybrid"
	"repro/internal/shard"
)

// cutFleet trains a model over g and cuts it into two level-1 shards
// with region-restricted guards.
func cutFleet(t *testing.T, g *graph.Graph, seed int64) *shard.Split {
	t.Helper()
	m := buildOn(t, g, seed)
	lt, err := alt.Build(g, 8, seed)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := shard.Cut(m, lt, shard.Config{CutLevel: 1, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

func shardSet(t *testing.T, sp *shard.Split, k int, version string) ModelSet {
	t.Helper()
	guard, err := hybrid.New(sp.Shards[k], sp.Guards[k])
	if err != nil {
		t.Fatal(err)
	}
	return ModelSet{Shard: sp.Shards[k], Guard: guard, Version: version}
}

// ownedBy returns one vertex owned and one not owned by shard k.
func ownedBy(t *testing.T, sp *shard.Split, k int) (in, out int32) {
	t.Helper()
	in, out = -1, -1
	for v := int32(0); int(v) < sp.Map.NumVertices(); v++ {
		if sp.Shards[k].Owns(v) {
			if in < 0 {
				in = v
			}
		} else if out < 0 {
			out = v
		}
	}
	if in < 0 || out < 0 {
		t.Fatal("cut did not split vertices across shards")
	}
	return in, out
}

func TestShardServesOwnedAndRejectsMisdirected(t *testing.T) {
	g := swapGraph(t)
	sp := cutFleet(t, g, 1)
	srv, err := NewFromSet(shardSet(t, sp, 0, "v1"), Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	in, out := ownedBy(t, sp, 0)

	// Intra-shard: the guarded answer must use the exact rows.
	var other int32 = -1
	for v := in + 1; int(v) < sp.Map.NumVertices(); v++ {
		if sp.Shards[0].Owns(v) {
			other = v
			break
		}
	}
	if other < 0 {
		t.Fatal("shard 0 owns a single vertex")
	}
	resp := getJSON(t, ts.URL+"/distance?s="+itoa(in)+"&t="+itoa(other), http.StatusOK)
	if _, flagged := resp["cross_shard"]; flagged {
		t.Fatalf("intra-shard pair flagged cross_shard: %v", resp)
	}

	// Cross-shard target: served from the upper levels, flagged, and
	// clamped into the certified interval.
	resp = getJSON(t, ts.URL+"/distance?s="+itoa(in)+"&t="+itoa(out), http.StatusOK)
	if resp["cross_shard"] != true {
		t.Fatalf("cross-shard pair not flagged: %v", resp)
	}
	d := resp["distance"].(float64)
	lo, hi := resp["lo"].(float64), resp["hi"].(float64)
	if d < lo || d > hi {
		t.Fatalf("cross-shard answer %v outside certified [%v,%v]", d, lo, hi)
	}

	// Misdirected source: 421 plus the owner hint.
	r, err := http.Get(ts.URL + "/distance?s=" + itoa(out) + "&t=" + itoa(in))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("misdirected source got %d, want 421", r.StatusCode)
	}
	if got := r.Header.Get("Rne-Shard-Owner"); got != itoa(int32(sp.Shards[0].Owner(out))) {
		t.Fatalf("Rne-Shard-Owner = %q, want %d", got, sp.Shards[0].Owner(out))
	}
	var body map[string]any
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["owner_shard"].(float64) != float64(sp.Shards[0].Owner(out)) || body["shard"].(float64) != 0 {
		t.Fatalf("421 body lacks routing hint: %v", body)
	}
}

func TestShardHealthReportsIdentity(t *testing.T) {
	g := swapGraph(t)
	sp := cutFleet(t, g, 1)
	srv, err := NewFromSet(shardSet(t, sp, 1, "v1"), Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, ep := range []string{"/healthz", "/readyz"} {
		out := getJSON(t, ts.URL+ep, http.StatusOK)
		// /healthz flattens the model metadata; /readyz nests it.
		meta := out
		if model, ok := out["model"].(map[string]any); ok {
			meta = model
		}
		sh, ok := meta["shard"].(map[string]any)
		if !ok {
			t.Fatalf("%s has no shard identity: %v", ep, out)
		}
		if sh["id"].(float64) != 1 || sh["shards"].(float64) != 2 || sh["cut_level"].(float64) != 1 {
			t.Fatalf("%s shard identity wrong: %v", ep, sh)
		}
		if sh["owned"].(float64) != float64(sp.Shards[1].OwnedVertices()) {
			t.Fatalf("%s owned count wrong: %v", ep, sh)
		}
	}

	if v := metricValue(t, ts, "rne_shard_id"); v != 1 {
		t.Fatalf("rne_shard_id = %v, want 1", v)
	}
	emb := metricValue(t, ts, `rne_model_bytes{component="embeddings"}`)
	if emb != float64(sp.Shards[1].EmbeddingBytes()) {
		t.Fatalf("embeddings bytes gauge %v, want %d", emb, sp.Shards[1].EmbeddingBytes())
	}
	upper := metricValue(t, ts, `rne_model_bytes{component="upper"}`)
	if upper != float64(sp.Shards[1].UpperBytes()) {
		t.Fatalf("upper bytes gauge %v, want %d", upper, sp.Shards[1].UpperBytes())
	}
	if g := metricValue(t, ts, `rne_model_bytes{component="guard"}`); g <= 0 {
		t.Fatalf("guard bytes gauge %v, want > 0", g)
	}
}

// The full-replica gauge: embeddings bytes match the whole matrix, and
// a shard's embedding gauge must come in strictly below it.
func TestModelBytesGaugeFullVersusShard(t *testing.T) {
	g := swapGraph(t)
	m := buildOn(t, g, 1)
	full, err := NewFromSet(ModelSet{Model: m, Version: "v1"}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	fullTS := httptest.NewServer(full.Handler())
	defer fullTS.Close()
	fullBytes := metricValue(t, fullTS, `rne_model_bytes{component="embeddings"}`)
	if fullBytes != float64(m.IndexBytes()) {
		t.Fatalf("full embeddings gauge %v, want %d", fullBytes, m.IndexBytes())
	}

	sp := cutFleet(t, g, 2)
	for k := range sp.Shards {
		srv, err := NewFromSet(shardSet(t, sp, k, "v1"), Config{})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		shardBytes := metricValue(t, ts, `rne_model_bytes{component="embeddings"}`)
		ts.Close()
		if shardBytes >= fullBytes {
			t.Fatalf("shard %d embeddings gauge %v not below full %v", k, shardBytes, fullBytes)
		}
	}
}

func TestShardBatchMisdirectAndCrossCount(t *testing.T) {
	g := swapGraph(t)
	sp := cutFleet(t, g, 1)
	srv, err := NewFromSet(shardSet(t, sp, 0, "v1"), Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	in, out := ownedBy(t, sp, 0)

	// All sources owned, one cross-shard target: 200 with cross_count.
	req := map[string]any{"pairs": [][]int32{{in, in}, {in, out}}}
	buf, _ := json.Marshal(req)
	r, err := http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	var resp map[string]any
	if err := json.NewDecoder(r.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %v", r.StatusCode, resp)
	}
	if resp["cross_count"].(float64) != 1 {
		t.Fatalf("cross_count = %v, want 1", resp["cross_count"])
	}

	// A misdirected source fails the whole batch with 421 — the gateway
	// splits per shard, so a mixed batch means its map is stale.
	req = map[string]any{"pairs": [][]int32{{out, in}}}
	buf, _ = json.Marshal(req)
	r, err = http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("misdirected batch got %d, want 421", r.StatusCode)
	}

	if v := metricValue(t, ts, "rne_shard_misdirected_total"); v < 1 {
		t.Fatalf("misdirected counter %v, want >= 1", v)
	}
}

func TestShardSwapRegionContinuity(t *testing.T) {
	g := swapGraph(t)
	sp1 := cutFleet(t, g, 1)
	sp2 := cutFleet(t, g, 2)
	srv, err := NewFromSet(shardSet(t, sp1, 0, "v1"), Config{})
	if err != nil {
		t.Fatal(err)
	}

	// Same shard id, newer cut: accepted.
	if err := srv.Swap(shardSet(t, sp2, 0, "v2")); err != nil {
		t.Fatalf("same-region swap rejected: %v", err)
	}
	if srv.ActiveVersion() != "v2" {
		t.Fatalf("active %s, want v2", srv.ActiveVersion())
	}

	// A different shard id must be refused: the gateway's routing map
	// still points this replica's region here.
	err = srv.Swap(shardSet(t, sp2, 1, "v3"))
	if err == nil || !strings.Contains(err.Error(), "refusing swap") {
		t.Fatalf("cross-region swap not refused: %v", err)
	}
	if srv.ActiveVersion() != "v2" {
		t.Fatalf("failed swap changed active version to %s", srv.ActiveVersion())
	}

	// Swapping a shard replica to a full model mid-serve is refused too.
	m := buildOn(t, g, 3)
	err = srv.Swap(ModelSet{Model: m, Version: "v4"})
	if err == nil || !strings.Contains(err.Error(), "shard mode") {
		t.Fatalf("shard→full swap not refused: %v", err)
	}
}

func TestShardExplainAndSpatialAnswer501(t *testing.T) {
	g := swapGraph(t)
	sp := cutFleet(t, g, 1)
	srv, err := NewFromSet(shardSet(t, sp, 0, "v1"), Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	in, _ := ownedBy(t, sp, 0)
	for _, path := range []string{
		"/explain?s=" + itoa(in) + "&t=" + itoa(in),
		"/knn?s=" + itoa(in) + "&k=3",
		"/range?s=" + itoa(in) + "&tau=10",
	} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusNotImplemented {
			t.Fatalf("GET %s: status %d, want 501", path, r.StatusCode)
		}
	}
}

func itoa(v int32) string {
	return strconv.Itoa(int(v))
}
