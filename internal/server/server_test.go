package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/index"
)

func newTestServer(t *testing.T, withIndex bool) (*httptest.Server, *core.Model) {
	t.Helper()
	g, err := gen.Grid(10, 10, gen.DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions(1)
	opt.Dim = 16
	opt.Epochs = 3
	opt.VertexSampleRatio = 20
	opt.FineTuneRounds = 1
	opt.HierSampleCap = 5000
	opt.ValidationPairs = 100
	m, _, err := core.Build(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	var idx *index.Tree
	if withIndex {
		targets := make([]int32, 0, g.NumVertices()/2)
		for v := int32(0); v < int32(g.NumVertices()); v += 2 {
			targets = append(targets, v)
		}
		idx, err = index.Build(m, targets)
		if err != nil {
			t.Fatal(err)
		}
	}
	srv, err := New(m, idx)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, m
}

func getJSON(t *testing.T, url string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestHealth(t *testing.T) {
	ts, m := newTestServer(t, true)
	out := getJSON(t, ts.URL+"/healthz", http.StatusOK)
	if out["status"] != "ok" {
		t.Fatalf("health: %v", out)
	}
	if int(out["vertices"].(float64)) != m.NumVertices() {
		t.Fatal("vertex count wrong")
	}
	if int(out["dim"].(float64)) != m.Dim() {
		t.Fatal("dim wrong")
	}
	if want := m.Hierarchy().MaxDepth() + 1; int(out["levels"].(float64)) != want {
		t.Fatalf("levels = %v, want %d", out["levels"], want)
	}
	if out["spatial"] != true {
		t.Fatal("spatial flag wrong")
	}
	if out["guard"] != false {
		t.Fatal("guard flag wrong")
	}
}

func TestDistanceEndpoint(t *testing.T) {
	ts, m := newTestServer(t, false)
	out := getJSON(t, ts.URL+"/distance?s=3&t=42", http.StatusOK)
	want := m.Estimate(3, 42)
	if got := out["distance"].(float64); math.Abs(got-want) > 1e-9 {
		t.Fatalf("distance %v, want %v", got, want)
	}
	// Error cases.
	getJSON(t, ts.URL+"/distance?s=3", http.StatusBadRequest)
	getJSON(t, ts.URL+"/distance?s=abc&t=1", http.StatusBadRequest)
	getJSON(t, ts.URL+fmt.Sprintf("/distance?s=%d&t=1", m.NumVertices()), http.StatusBadRequest)
}

func TestBatchEndpoint(t *testing.T) {
	ts, m := newTestServer(t, false)
	body, _ := json.Marshal(map[string]any{"pairs": [][2]int32{{0, 1}, {2, 3}, {4, 5}}})
	resp, err := http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	var out struct {
		Distances []float64 `json:"distances"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Distances) != 3 {
		t.Fatalf("got %d distances", len(out.Distances))
	}
	for i, p := range [][2]int32{{0, 1}, {2, 3}, {4, 5}} {
		if want := m.Estimate(p[0], p[1]); math.Abs(out.Distances[i]-want) > 1e-9 {
			t.Fatalf("pair %d: %v vs %v", i, out.Distances[i], want)
		}
	}

	// Error cases: bad JSON, empty batch, out-of-range vertex.
	for _, bad := range []string{`{`, `{"pairs":[]}`, `{"pairs":[[0,99999]]}`} {
		resp, err := http.Post(ts.URL+"/batch", "application/json", bytes.NewReader([]byte(bad)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad batch %q: status %d", bad, resp.StatusCode)
		}
	}
}

func TestKNNAndRangeEndpoints(t *testing.T) {
	ts, m := newTestServer(t, true)
	out := getJSON(t, ts.URL+"/knn?s=1&k=3", http.StatusOK)
	targets := out["targets"].([]any)
	if len(targets) != 3 {
		t.Fatalf("knn returned %d targets", len(targets))
	}
	dists := out["distances"].([]any)
	prev := -1.0
	for _, d := range dists {
		if d.(float64) < prev {
			t.Fatal("knn distances not sorted")
		}
		prev = d.(float64)
	}

	tau := m.Scale() * 0.2
	out = getJSON(t, fmt.Sprintf("%s/range?s=1&tau=%f", ts.URL, tau), http.StatusOK)
	for _, v := range out["targets"].([]any) {
		if m.Estimate(1, int32(v.(float64))) > tau {
			t.Fatal("range result outside tau")
		}
	}

	// Error cases.
	getJSON(t, ts.URL+"/knn?s=1&k=0", http.StatusBadRequest)
	getJSON(t, ts.URL+"/knn?s=1&k=100000", http.StatusBadRequest)
	getJSON(t, ts.URL+"/range?s=1&tau=-5", http.StatusBadRequest)
	getJSON(t, ts.URL+"/range?s=1", http.StatusBadRequest)
}

func TestSpatialEndpointsWithoutIndex(t *testing.T) {
	ts, _ := newTestServer(t, false)
	getJSON(t, ts.URL+"/knn?s=1&k=3", http.StatusNotImplemented)
	getJSON(t, ts.URL+"/range?s=1&tau=10", http.StatusNotImplemented)
}

func TestConcurrentRequests(t *testing.T) {
	ts, _ := newTestServer(t, true)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				resp, err := http.Get(fmt.Sprintf("%s/distance?s=%d&t=%d", ts.URL, w*3, i*7))
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("status %d", resp.StatusCode)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Fatal("nil model accepted")
	}
}

func TestReadyzReadyAndDegraded(t *testing.T) {
	ts, m := newTestServer(t, true)
	out := getJSON(t, ts.URL+"/readyz", http.StatusOK)
	if out["status"] != "ready" {
		t.Fatalf("with index: %v", out)
	}
	meta, ok := out["model"].(map[string]any)
	if !ok {
		t.Fatalf("readyz has no model metadata: %v", out)
	}
	if int(meta["vertices"].(float64)) != m.NumVertices() || int(meta["dim"].(float64)) != m.Dim() {
		t.Fatalf("readyz model metadata wrong: %v", meta)
	}

	ts2, _ := newTestServer(t, false)
	out = getJSON(t, ts2.URL+"/readyz", http.StatusOK)
	if out["status"] != "degraded" {
		t.Fatalf("without index: %v", out)
	}
	if reasons, ok := out["degraded"].([]any); !ok || len(reasons) == 0 {
		t.Fatalf("degraded reasons missing: %v", out)
	}
	if _, ok := out["model"].(map[string]any); !ok {
		t.Fatalf("degraded readyz has no model metadata: %v", out)
	}
}

func TestStatzCountsRequests(t *testing.T) {
	ts, _ := newTestServer(t, false)
	getJSON(t, ts.URL+"/distance?s=1&t=2", http.StatusOK)
	getJSON(t, ts.URL+"/distance?s=-9&t=2", http.StatusBadRequest)
	out := getJSON(t, ts.URL+"/statz", http.StatusOK)
	if out["requests"].(float64) < 2 {
		t.Fatalf("requests = %v", out["requests"])
	}
	classes := out["by_status_class"].(map[string]any)
	if classes["2xx"].(float64) < 1 || classes["4xx"].(float64) < 1 {
		t.Fatalf("status classes: %v", classes)
	}
}

func TestBatchBodyTooLargeGets413(t *testing.T) {
	g, err := gen.Grid(6, 6, gen.DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions(2)
	opt.Dim = 8
	opt.Epochs = 1
	opt.VertexSampleRatio = 5
	opt.FineTuneRounds = 1
	opt.HierSampleCap = 1000
	opt.ValidationPairs = 50
	m, _, err := core.Build(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewWithConfig(m, nil, Config{MaxBatchBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	// Under the cap works.
	small, _ := json.Marshal(map[string]any{"pairs": [][2]int32{{0, 1}}})
	resp, err := http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(small))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("small batch: status %d", resp.StatusCode)
	}

	// Over the cap gets a specific 413, not a generic 400.
	pairs := make([][2]int32, 64)
	big, _ := json.Marshal(map[string]any{"pairs": pairs})
	resp, err = http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch: status %d, want 413", resp.StatusCode)
	}
	var e map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e["error"] == "" {
		t.Fatalf("413 body not a JSON error: %v %v", e, err)
	}
}

func TestHandlerSurvivesBurstPastCap(t *testing.T) {
	// A tiny in-flight cap under a concurrent burst: every request gets
	// either a successful answer or a well-formed 429, and the server
	// keeps serving afterwards.
	g, err := gen.Grid(6, 6, gen.DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions(4)
	opt.Dim = 8
	opt.Epochs = 1
	opt.VertexSampleRatio = 5
	opt.FineTuneRounds = 1
	opt.HierSampleCap = 1000
	opt.ValidationPairs = 50
	m, _, err := core.Build(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewWithConfig(m, nil, Config{MaxInFlight: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	var wg sync.WaitGroup
	bad := make(chan string, 64)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/distance?s=0&t=5")
			if err != nil {
				bad <- err.Error()
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
				bad <- fmt.Sprintf("status %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	close(bad)
	for msg := range bad {
		t.Fatal(msg)
	}
	getJSON(t, ts.URL+"/healthz", http.StatusOK)
}
