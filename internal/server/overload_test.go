package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/resilience"
)

// A replica receiving a request whose forwarded deadline budget is
// already spent answers 504 immediately — it must not burn capacity on
// work the gateway can no longer use.
func TestServerZeroBudgetIs504(t *testing.T) {
	ts, _ := newTestServer(t, false)
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/distance?s=1&t=2", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(resilience.BudgetHeader, "0")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("zero-budget request = %d, want 504", resp.StatusCode)
	}
	// The same request with budget left is unaffected.
	req.Header.Set(resilience.BudgetHeader, "5000")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("budgeted request = %d, want 200", resp.StatusCode)
	}
}

// Config.Admission plumbs the adaptive limiter into the replica's
// serving stack: with the limit pinned at 1 and one slot occupied, a
// /batch request is shed into the batch reserve while /healthz still
// answers, and the admit-limit gauge appears on /metrics.
func TestServerAdaptiveAdmissionPlumbed(t *testing.T) {
	g, err := gen.Grid(8, 8, gen.DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions(1)
	opt.Dim = 8
	opt.Epochs = 2
	opt.VertexSampleRatio = 10
	opt.FineTuneRounds = 1
	opt.HierSampleCap = 2000
	opt.ValidationPairs = 50
	m, _, err := core.Build(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewFromSet(ModelSet{Model: m, Version: "v1"}, Config{
		Admission: &resilience.AdmissionConfig{
			TargetP99: time.Second, Initial: 1, Min: 1, Max: 1, BatchReserve: 0.5,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	// With limit 1 and BatchReserve 0.5 the batch admission threshold is
	// max(1, 1-0) ... occupy nothing: a lone batch request must still be
	// admitted (threshold floor is one slot).
	resp, err := http.Post(ts.URL+"/batch", "application/json",
		strings.NewReader(`{"pairs":[[0,5]]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("idle batch under adaptive admission = %d, want 200", resp.StatusCode)
	}
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1<<20)
	n, _ := mresp.Body.Read(buf)
	mresp.Body.Close()
	if !strings.Contains(string(buf[:n]), "rne_admit_limit 1") {
		t.Fatalf("/metrics missing the adaptive admit-limit gauge:\n%s", string(buf[:n]))
	}
}
