package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// End-to-end /metrics: after live guarded traffic the endpoint serves
// well-formed Prometheus text including the per-route latency
// histograms, guard clamp counters and per-distance-band drift
// histograms.
func TestMetricsEndpointExposition(t *testing.T) {
	ts, m, _ := newGuardedServer(t)
	rng := rand.New(rand.NewSource(11))
	n := m.NumVertices()
	for i := 0; i < 120; i++ {
		resp, err := http.Get(fmt.Sprintf("%s/distance?s=%d&t=%d", ts.URL, rng.Intn(n), rng.Intn(n)))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	pairs := [][2]int32{{0, 5}, {3, 9}}
	body, _ := json.Marshal(map[string]any{"pairs": pairs})
	resp, err := http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Content-Type"); got != telemetry.ExpositionContentType {
		t.Fatalf("Content-Type = %q", got)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(raw)
	if err := telemetry.CheckExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("/metrics is not valid exposition: %v\n%s", err, out)
	}
	for _, want := range []string{
		"# TYPE rne_http_requests_total counter",
		`rne_http_requests_total{class="2xx"}`,
		"# TYPE rne_http_request_duration_seconds histogram",
		`rne_http_route_duration_seconds_bucket{route="/distance",le="+Inf"}`,
		`rne_http_route_duration_seconds_count{route="/batch"}`,
		"rne_guard_checked_total",
		"rne_guard_clamped_low_total",
		"rne_guard_clamped_high_total",
		"rne_drift_observations_total",
		"rne_drift_score",
		`rne_drift_band_error_bucket{band="00",`,
		"rne_uptime_seconds",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, out)
		}
	}
	// The drift monitor saw the guarded traffic (identical pairs are
	// skipped, so at least the distinct-pair queries must be counted).
	if !strings.Contains(out, "rne_drift_observations_total") {
		t.Fatal("drift counter absent")
	}
}

// Route histograms track only registered routes; anything else lands
// in route="other" so metric cardinality stays bounded.
func TestMetricsRouteCardinalityBounded(t *testing.T) {
	ts, _ := newTestServer(t, false)
	for _, path := range []string{"/healthz", "/no/such/route", "/another?x=1"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	out := string(raw)
	if strings.Contains(out, `route="/no/such/route"`) || strings.Contains(out, `route="/healthz"`) {
		t.Fatalf("unregistered routes created series:\n%s", out)
	}
	if !strings.Contains(out, `rne_http_route_duration_seconds_count{route="other"}`) {
		t.Fatalf("no route=\"other\" fallback series:\n%s", out)
	}
}

// Every response carries an X-Request-Id, and a well-formed client ID
// is propagated through.
func TestServerAssignsRequestIDs(t *testing.T) {
	ts, _ := newTestServer(t, false)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.Header.Get(telemetry.RequestIDHeader) == "" {
		t.Fatal("response has no X-Request-Id")
	}

	req, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
	req.Header.Set(telemetry.RequestIDHeader, "trace-me-7")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get(telemetry.RequestIDHeader); got != "trace-me-7" {
		t.Fatalf("client request ID not echoed: %q", got)
	}
}

// Golden /statz shape: the JSON re-implementation on the telemetry
// registry must stay byte-shape-compatible with the original — same
// keys, same order, extra omitted when empty.
func TestStatzGoldenShape(t *testing.T) {
	ts, _ := newTestServer(t, false)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("bad /statz JSON %q: %v", body, err)
	}
	wantKeys := []string{
		"uptime_seconds", "requests", "in_flight", "by_status_class",
		"shed_429", "panics", "latency_mean_ms", "latency_max_ms",
	}
	if len(m) != len(wantKeys) {
		t.Fatalf("/statz has %d keys, want exactly %d (no extra on an unguarded server): %s",
			len(m), len(wantKeys), body)
	}
	pos := -1
	for _, k := range wantKeys {
		if _, ok := m[k]; !ok {
			t.Fatalf("/statz missing key %q: %s", k, body)
		}
		p := strings.Index(body, `"`+k+`"`)
		if p < pos {
			t.Fatalf("/statz key %q out of frozen order: %s", k, body)
		}
		pos = p
	}

	// A guarded server adds the extra map with the guard counters and
	// nothing else changes about the frozen keys.
	gts, _, _ := newGuardedServer(t)
	resp, err = http.Get(gts.URL + "/distance?s=1&t=7")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	stats := getJSON(t, gts.URL+"/statz", http.StatusOK)
	extra, ok := stats["extra"].(map[string]any)
	if !ok {
		t.Fatalf("guarded /statz has no extra map: %v", stats)
	}
	for _, k := range []string{"guard_checked", "guard_clamped_low", "guard_clamped_high"} {
		if _, ok := extra[k]; !ok {
			t.Fatalf("guarded /statz extra missing %q: %v", extra, stats)
		}
	}
}
