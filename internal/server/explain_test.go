package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/alt"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/hybrid"
	"repro/internal/qlog"
)

// smallModel trains a quick 6x6-grid model for wiring-level tests that
// do not care about estimate quality.
func smallModel(t *testing.T, seed int64) *core.Model {
	t.Helper()
	g, err := gen.Grid(6, 6, gen.DefaultConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions(seed)
	opt.Dim = 8
	opt.Epochs = 1
	opt.VertexSampleRatio = 5
	opt.FineTuneRounds = 1
	opt.HierSampleCap = 1000
	opt.ValidationPairs = 50
	m, _, err := core.Build(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestExplainEndpoint(t *testing.T) {
	ts, m := newTestServer(t, false)
	out := getJSON(t, ts.URL+"/explain?s=3&t=42", http.StatusOK)
	if got, want := out["distance"].(float64), m.Estimate(3, 42); math.Abs(got-want) > 1e-9 {
		t.Fatalf("explain distance %v, want %v", got, want)
	}
	model := out["model"].(map[string]any)
	if model["has_hierarchy"] != true {
		t.Fatalf("fresh hierarchical model reports has_hierarchy=%v", model["has_hierarchy"])
	}
	levels := model["levels"].([]any)
	if len(levels) == 0 {
		t.Fatal("no per-level breakdown")
	}
	sum := 0.0
	for _, l := range levels {
		sum += l.(map[string]any)["contribution"].(float64)
	}
	if est := model["estimate"].(float64); math.Abs(sum-est) > 1e-9 {
		t.Fatalf("contributions sum to %v, estimate is %v", sum, est)
	}
	if _, ok := out["dominant_level"].(float64); !ok {
		t.Fatalf("dominant_level missing: %v", out)
	}
	if _, ok := out["guard"]; ok {
		t.Fatal("unguarded server reported guard provenance")
	}

	// Error cases share the /distance validation.
	getJSON(t, ts.URL+"/explain?s=3", http.StatusBadRequest)
	getJSON(t, ts.URL+"/explain?s=abc&t=1", http.StatusBadRequest)
}

func TestExplainEndpointGuarded(t *testing.T) {
	ts, _, lt := newGuardedServer(t)
	out := getJSON(t, ts.URL+"/explain?s=7&t=90", http.StatusOK)
	guard, ok := out["guard"].(map[string]any)
	if !ok {
		t.Fatalf("guarded /explain has no guard block: %v", out)
	}
	wantLo, wantHi := lt.Bounds(7, 90)
	if guard["lo"].(float64) != wantLo || guard["hi"].(float64) != wantHi {
		t.Fatalf("guard bounds [%v,%v] != recomputed [%v,%v]",
			guard["lo"], guard["hi"], wantLo, wantHi)
	}
	d := out["distance"].(float64)
	if d < wantLo || d > wantHi {
		t.Fatalf("explained distance %v outside certified [%v,%v]", d, wantLo, wantHi)
	}
	// The named landmarks must exist in the index.
	landmarks := lt.Landmarks()
	for _, key := range []string{"lo_landmark", "hi_landmark"} {
		id := int32(guard[key].(float64))
		found := false
		for _, l := range landmarks {
			if l == id {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s=%d is not one of the index landmarks %v", key, id, landmarks)
		}
	}
	// Clamp direction consistent with the reported raw estimate.
	raw := guard["raw"].(float64)
	switch guard["clamp"] {
	case "low":
		if raw >= wantLo {
			t.Fatalf("clamp=low but raw %v >= lo %v", raw, wantLo)
		}
	case "high":
		if raw <= wantHi {
			t.Fatalf("clamp=high but raw %v <= hi %v", raw, wantHi)
		}
	case nil, "":
		if raw < wantLo || raw > wantHi {
			t.Fatalf("no clamp but raw %v outside [%v,%v]", raw, wantLo, wantHi)
		}
	default:
		t.Fatalf("bad clamp value %v", guard["clamp"])
	}
}

// ?explain=1 is strictly opt-in on /distance: the plain response shape
// is unchanged, the explained response adds the provenance blocks.
func TestDistanceExplainOptIn(t *testing.T) {
	ts, _ := newTestServer(t, false)
	plain := getJSON(t, ts.URL+"/distance?s=2&t=9", http.StatusOK)
	if _, ok := plain["model"]; ok {
		t.Fatal("provenance leaked into an unexplained response")
	}
	explained := getJSON(t, ts.URL+"/distance?s=2&t=9&explain=1", http.StatusOK)
	if explained["distance"] != plain["distance"] {
		t.Fatal("explain=1 changed the served estimate")
	}
	if _, ok := explained["model"].(map[string]any); !ok {
		t.Fatalf("explain=1 response has no model block: %v", explained)
	}

	gts, _, _ := newGuardedServer(t)
	gout := getJSON(t, gts.URL+"/distance?s=2&t=9&explain=1", http.StatusOK)
	if _, ok := gout["guard"].(map[string]any); !ok {
		t.Fatalf("guarded explain=1 response has no guard block: %v", gout)
	}
}

func TestBatchExplainOptIn(t *testing.T) {
	ts, _ := newTestServer(t, false)
	pairs := [][2]int32{{0, 1}, {2, 3}, {4, 5}}
	body, _ := json.Marshal(map[string]any{"pairs": pairs})
	resp, err := http.Post(ts.URL+"/batch?explain=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Distances []float64 `json:"distances"`
		Explain   []struct {
			DominantLevel int             `json:"dominant_level"`
			Guard         json.RawMessage `json:"guard"`
		} `json:"explain"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Explain) != len(pairs) {
		t.Fatalf("explain array has %d entries for %d pairs", len(out.Explain), len(pairs))
	}
	for i, e := range out.Explain {
		if e.DominantLevel < 0 {
			t.Fatalf("pair %d: no dominant level on a hierarchical model", i)
		}
		if e.Guard != nil {
			t.Fatalf("pair %d: guard block on an unguarded server", i)
		}
	}
}

func TestKNNRangeExplainStats(t *testing.T) {
	ts, m := newTestServer(t, true)
	plain := getJSON(t, ts.URL+"/knn?s=1&k=3", http.StatusOK)
	if _, ok := plain["stats"]; ok {
		t.Fatal("stats leaked into an unexplained /knn response")
	}
	out := getJSON(t, ts.URL+"/knn?s=1&k=3&explain=1", http.StatusOK)
	st, ok := out["stats"].(map[string]any)
	if !ok {
		t.Fatalf("/knn explain=1 has no stats: %v", out)
	}
	if st["nodes_visited"].(float64) <= 0 || st["verts_scanned"].(float64) < 3 {
		t.Fatalf("implausible knn stats: %v", st)
	}

	tau := m.Scale() * 0.2
	out = getJSON(t, fmt.Sprintf("%s/range?s=1&tau=%f&explain=1", ts.URL, tau), http.StatusOK)
	st, ok = out["stats"].(map[string]any)
	if !ok {
		t.Fatalf("/range explain=1 has no stats: %v", out)
	}
	if st["nodes_visited"].(float64) <= 0 {
		t.Fatalf("implausible range stats: %v", st)
	}
}

// A server with a query log configured records served traffic as
// parseable JSONL with the guard provenance, and exports the write
// counter on /metrics.
func TestQueryLogRecordsServedQueries(t *testing.T) {
	m := smallModel(t, 11)
	path := filepath.Join(t.TempDir(), "queries.jsonl")
	srv, err := NewWithConfig(m, nil, Config{QueryLog: qlog.Config{Path: path}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	getJSON(t, ts.URL+"/distance?s=0&t=5", http.StatusOK)
	getJSON(t, ts.URL+"/distance?s=1&t=7", http.StatusOK)
	pairs := [][2]int32{{0, 2}, {3, 4}}
	body, _ := json.Marshal(map[string]any{"pairs": pairs})
	resp, err := http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 4 { // 2 distance + 2 batch pairs
		t.Fatalf("query log has %d records, want 4:\n%s", len(lines), data)
	}
	var rec qlog.Record
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Route != "/distance" || rec.S != 0 || rec.T != 5 || rec.RequestID == "" {
		t.Fatalf("first record wrong: %+v", rec)
	}
	if want := m.Estimate(0, 5); rec.Estimate != want {
		t.Fatalf("logged estimate %v, served %v", rec.Estimate, want)
	}
	if rec.HasBounds {
		t.Fatal("unguarded server logged guard bounds")
	}
	if err := json.Unmarshal([]byte(lines[2]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Route != "/batch" || rec.S != 0 || rec.T != 2 {
		t.Fatalf("batch record wrong: %+v", rec)
	}

	if got := srv.QueryLog().Written(); got != 4 {
		t.Fatalf("Written() = %d, want 4", got)
	}
}

// Guard-mode records carry bounds and clamp provenance.
func TestQueryLogGuardProvenance(t *testing.T) {
	g, err := gen.Grid(6, 6, gen.DefaultConfig(12))
	if err != nil {
		t.Fatal(err)
	}
	m := smallModel(t, 12)
	lt, err := alt.Build(g, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	est, err := hybrid.New(m, lt)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "queries.jsonl")
	srv, err := NewWithConfig(m, nil, Config{Guard: est, QueryLog: qlog.Config{Path: path}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	getJSON(t, ts.URL+"/distance?s=0&t=34", http.StatusOK)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rec qlog.Record
	if err := json.Unmarshal(bytes.TrimSpace(data), &rec); err != nil {
		t.Fatal(err)
	}
	if !rec.HasBounds {
		t.Fatalf("guard record has no bounds: %+v", rec)
	}
	wantLo, wantHi := lt.Bounds(0, 34)
	if rec.Lo != wantLo || rec.Hi != wantHi {
		t.Fatalf("logged bounds [%v,%v], want [%v,%v]", rec.Lo, rec.Hi, wantLo, wantHi)
	}
	if rec.Estimate < rec.Lo || rec.Estimate > rec.Hi {
		t.Fatalf("logged estimate %v outside own bounds", rec.Estimate)
	}
}

// The query log must never slow serving: with the writer wedged and a
// 1-slot queue, requests still answer promptly and every lost record
// shows up in the drop counters and on /metrics.
func TestQueryLogNonBlockingUnderLoad(t *testing.T) {
	m := smallModel(t, 13)
	path := filepath.Join(t.TempDir(), "queries.jsonl")
	release := make(chan struct{})
	var once sync.Once
	srv, err := NewWithConfig(m, nil, Config{QueryLog: qlog.Config{
		Path:      path,
		QueueSize: 1,
		// Wedge the writer on its first record so the queue saturates.
		OnWrite: func() { <-release },
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer once.Do(func() { close(release) })
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	start := time.Now()
	for i := 0; i < 100; i++ {
		getJSON(t, ts.URL+"/distance?s=0&t=5", http.StatusOK)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("100 requests against a wedged query log took %v", elapsed)
	}
	ql := srv.QueryLog()
	if ql.Dropped() == 0 {
		t.Fatal("wedged query log produced no drops")
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	metrics, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(metrics), "rne_qlog_dropped_total") {
		t.Fatal("qlog_dropped_total missing from /metrics")
	}
	for _, line := range strings.Split(string(metrics), "\n") {
		if strings.HasPrefix(line, "rne_qlog_dropped_total ") {
			var v float64
			if _, err := fmt.Sscanf(line, "rne_qlog_dropped_total %f", &v); err != nil {
				t.Fatal(err)
			}
			if int64(v) != ql.Dropped() {
				t.Fatalf("/metrics reports %v drops, logger counted %d", v, ql.Dropped())
			}
		}
	}

	once.Do(func() { close(release) })
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if ql.Written()+ql.Dropped() != ql.Sampled() {
		t.Fatalf("written %d + dropped %d != sampled %d",
			ql.Written(), ql.Dropped(), ql.Sampled())
	}
}

// A broken query log path fails server construction loudly.
func TestQueryLogBadPathRejected(t *testing.T) {
	m := smallModel(t, 14)
	_, err := NewWithConfig(m, nil, Config{QueryLog: qlog.Config{
		Path: filepath.Join(t.TempDir(), "no", "such", "dir", "q.jsonl"),
	}})
	if err == nil {
		t.Fatal("unwritable query log path accepted")
	}
}
