package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/alt"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/hybrid"
)

// newGuardedServer builds a model and an ALT index over the same graph
// and serves with guard mode on.
func newGuardedServer(t *testing.T) (*httptest.Server, *core.Model, *alt.Index) {
	t.Helper()
	g, err := gen.Grid(10, 10, gen.DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions(1)
	opt.Dim = 16
	opt.Epochs = 3
	opt.VertexSampleRatio = 20
	opt.FineTuneRounds = 1
	opt.HierSampleCap = 5000
	opt.ValidationPairs = 100
	m, _, err := core.Build(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	lt, err := alt.Build(g, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	est, err := hybrid.New(m, lt)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewWithConfig(m, nil, Config{Guard: est})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, m, lt
}

// The guard property: no /distance response ever falls outside the
// certified ALT interval, verified against independently recomputed
// bounds over random pairs.
func TestGuardDistanceNeverOutsideBounds(t *testing.T) {
	ts, m, lt := newGuardedServer(t)
	rng := rand.New(rand.NewSource(9))
	n := m.NumVertices()
	sawClamp := false
	for trial := 0; trial < 300; trial++ {
		s := rng.Intn(n)
		u := rng.Intn(n)
		out := getJSON(t, fmt.Sprintf("%s/distance?s=%d&t=%d", ts.URL, s, u), http.StatusOK)
		d := out["distance"].(float64)
		wantLo, wantHi := lt.Bounds(int32(s), int32(u))
		if s == u { // the guard answers identical pairs with exact zero
			wantLo, wantHi = 0, 0
		}
		if d < wantLo || d > wantHi {
			t.Fatalf("(%d,%d): distance %v outside certified [%v,%v]", s, u, d, wantLo, wantHi)
		}
		if out["lo"].(float64) != wantLo || out["hi"].(float64) != wantHi {
			t.Fatalf("(%d,%d): reported bounds [%v,%v] != recomputed [%v,%v]",
				s, u, out["lo"], out["hi"], wantLo, wantHi)
		}
		if out["clamped"].(bool) {
			sawClamp = true
			if d != wantLo && d != wantHi {
				t.Fatalf("(%d,%d): clamped response %v not on an interval endpoint", s, u, d)
			}
		}
	}
	_ = sawClamp // clamping frequency is model-dependent; the property above is what matters
}

// The same property over /batch, plus per-response clamp accounting and
// the /statz counters.
func TestGuardBatchBoundsAndCounters(t *testing.T) {
	ts, m, lt := newGuardedServer(t)
	rng := rand.New(rand.NewSource(10))
	n := int32(m.NumVertices())
	pairs := make([][2]int32, 200)
	for i := range pairs {
		pairs[i] = [2]int32{rng.Int31n(n), rng.Int31n(n)}
	}
	body, _ := json.Marshal(map[string]any{"pairs": pairs})
	resp, err := http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	var out struct {
		Distances    []float64 `json:"distances"`
		Lo           []float64 `json:"lo"`
		Hi           []float64 `json:"hi"`
		ClampedCount int       `json:"clamped_count"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Distances) != len(pairs) || len(out.Lo) != len(pairs) || len(out.Hi) != len(pairs) {
		t.Fatalf("response arrays sized %d/%d/%d, want %d",
			len(out.Distances), len(out.Lo), len(out.Hi), len(pairs))
	}
	for i, p := range pairs {
		wantLo, wantHi := lt.Bounds(p[0], p[1])
		if p[0] == p[1] {
			wantLo, wantHi = 0, 0
		}
		if d := out.Distances[i]; d < wantLo || d > wantHi {
			t.Fatalf("pair %d (%d,%d): distance %v outside certified [%v,%v]", i, p[0], p[1], d, wantLo, wantHi)
		}
		if out.Lo[i] != wantLo || out.Hi[i] != wantHi {
			t.Fatalf("pair %d: reported bounds [%v,%v] != recomputed [%v,%v]",
				i, out.Lo[i], out.Hi[i], wantLo, wantHi)
		}
	}
	if out.ClampedCount < 0 || out.ClampedCount > len(pairs) {
		t.Fatalf("clamped_count %d out of range", out.ClampedCount)
	}

	stats := getJSON(t, ts.URL+"/statz", http.StatusOK)
	extra, ok := stats["extra"].(map[string]any)
	if !ok {
		t.Fatalf("/statz has no extra counters: %v", stats)
	}
	if got := int(extra["guard_checked"].(float64)); got != len(pairs) {
		t.Fatalf("guard_checked = %d, want %d", got, len(pairs))
	}
	clamps := int(extra["guard_clamped_low"].(float64)) + int(extra["guard_clamped_high"].(float64))
	if clamps != out.ClampedCount {
		t.Fatalf("counter clamps %d != response clamped_count %d", clamps, out.ClampedCount)
	}
}

// Guard mode is visible on /healthz, and absent by default.
func TestGuardHealthzFlag(t *testing.T) {
	ts, _, _ := newGuardedServer(t)
	out := getJSON(t, ts.URL+"/healthz", http.StatusOK)
	if out["guard"] != true {
		t.Fatalf("guarded /healthz reports guard=%v", out["guard"])
	}
	plain, _ := newTestServer(t, false)
	out = getJSON(t, plain.URL+"/healthz", http.StatusOK)
	if out["guard"] != false {
		t.Fatalf("unguarded /healthz reports guard=%v", out["guard"])
	}
}

// A guard built over a different graph than the model is rejected at
// construction, not discovered as silent nonsense at query time.
func TestGuardVertexCountMismatchRejected(t *testing.T) {
	big, err := gen.Grid(10, 10, gen.DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	small, err := gen.Grid(5, 5, gen.DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions(1)
	opt.Dim = 8
	opt.Epochs = 2
	opt.VertexSampleRatio = 10
	opt.FineTuneRounds = 1
	opt.HierSampleCap = 2000
	opt.ValidationPairs = 50
	m, _, err := core.Build(big, opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := altOverGraph(small, m); err == nil {
		t.Fatal("hybrid.New accepted a landmark index from a different graph")
	}
}

func altOverGraph(g *graph.Graph, m *core.Model) (*hybrid.Estimator, error) {
	lt, err := alt.Build(g, 4, 2)
	if err != nil {
		return nil, err
	}
	return hybrid.New(m, lt)
}
