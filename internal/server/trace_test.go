package server

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/qlog"
	"repro/internal/telemetry"
)

func readServerSpans(t *testing.T, path string) []telemetry.SpanRecord {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var out []telemetry.SpanRecord
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec telemetry.SpanRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad span line: %v", err)
		}
		out = append(out, rec)
	}
	return out
}

// A traced replica continues the gateway's trace: its handler span
// parents under the inbound attempt span, its admission and kernel
// child spans nest inside the handler span, and the sampled query log
// carries the same trace ID plus the relayed attempt kind — so spans,
// metrics exemplars and qlog rows all join on one key.
func TestTracedReplicaSpansAndQlogJoin(t *testing.T) {
	g, err := gen.Grid(8, 8, gen.DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions(1)
	opt.Dim = 8
	opt.Epochs = 2
	opt.VertexSampleRatio = 10
	opt.FineTuneRounds = 1
	opt.HierSampleCap = 2000
	opt.ValidationPairs = 50
	m, _, err := core.Build(g, opt)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	spanPath := filepath.Join(dir, "server.spans.jsonl")
	qlogPath := filepath.Join(dir, "queries.jsonl")
	srv, err := NewFromSet(ModelSet{Model: m}, Config{
		Trace:    telemetry.TraceConfig{Path: spanPath},
		QueryLog: qlog.Config{Path: qlogPath, SampleEvery: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Simulate a gateway attempt: inbound traceparent + attempt header.
	upstream := telemetry.SpanContext{}
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/distance?s=1&t=9", nil)
	{
		h := http.Header{}
		h.Set("traceparent", "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
		var ok bool
		upstream, ok = telemetry.ExtractTraceParent(h)
		if !ok {
			t.Fatal("test traceparent invalid")
		}
		telemetry.InjectTraceParent(req.Header, upstream)
	}
	req.Header.Set(telemetry.AttemptHeader, "hedge")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("distance status %d", resp.StatusCode)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	spans := readServerSpans(t, spanPath)
	byName := map[string]telemetry.SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	handler, ok := byName["GET /distance"]
	if !ok {
		t.Fatalf("no handler span in %v", spans)
	}
	if handler.TraceID != upstream.TraceIDString() || handler.ParentID != upstream.SpanIDString() {
		t.Fatalf("handler span did not continue the gateway trace: %+v", handler)
	}
	if handler.Service != "server" {
		t.Fatalf("service %q, want server", handler.Service)
	}
	admission, ok := byName["admission"]
	if !ok {
		t.Fatal("no admission span")
	}
	kernel, ok := byName["kernel"]
	if !ok {
		t.Fatal("no kernel span")
	}
	for _, child := range []telemetry.SpanRecord{admission, kernel} {
		if child.ParentID != handler.SpanID || child.TraceID != handler.TraceID {
			t.Fatalf("child span not nested in the handler span: %+v", child)
		}
		if child.DurationUS > handler.DurationUS {
			t.Fatalf("child %s (%v us) exceeds handler (%v us)",
				child.Name, child.DurationUS, handler.DurationUS)
		}
	}
	// Durations must sum consistently: the accounted children cannot
	// exceed the handler span that contains them.
	if admission.DurationUS+kernel.DurationUS > handler.DurationUS {
		t.Fatalf("admission %v + kernel %v exceed handler %v",
			admission.DurationUS, kernel.DurationUS, handler.DurationUS)
	}

	// The qlog row for the same query joins on trace_id and carries the
	// relayed attempt kind.
	qf, err := os.Open(qlogPath)
	if err != nil {
		t.Fatal(err)
	}
	defer qf.Close()
	var rec qlog.Record
	sc := bufio.NewScanner(qf)
	if !sc.Scan() {
		t.Fatal("empty query log")
	}
	if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.TraceID != upstream.TraceIDString() {
		t.Fatalf("qlog trace_id %q does not join the trace %q", rec.TraceID, upstream.TraceIDString())
	}
	if rec.Attempt != "hedge" {
		t.Fatalf("qlog attempt %q, want hedge", rec.Attempt)
	}
}

// Guard-mode batches get a guard span; an untraced server must write
// no spans and serve identically.
func TestUntracedServerWritesNothing(t *testing.T) {
	ts, _ := newTestServer(t, false)
	resp, err := http.Get(ts.URL + "/distance?s=1&t=5")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	// newTestServer configures no Trace: the handler chain must not
	// reference a tracer (nil-safe no-op path).
}
