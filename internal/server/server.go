// Package server exposes a trained RNE model over HTTP — the serving
// shape of the paper's motivating Uber/Yelp workloads: high-volume
// distance estimates, k-nearest-vehicle and POIs-within-range queries.
// Handlers are stdlib net/http and safe for concurrent use (model
// queries are read-only).
//
// The serving state (model, spatial index, ALT guard, drift monitor,
// version label) lives behind one atomic pointer: each request loads
// the snapshot once and is answered entirely by it, so Swap can install
// a retrained model under full traffic with zero dropped requests and
// no torn reads (see swap.go and POST /admin/reload).
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/hybrid"
	"repro/internal/index"
	"repro/internal/qlog"
	"repro/internal/resilience"
	"repro/internal/telemetry"
)

// Config tunes the production-hardening layer wrapped around the
// route table. Zero values select the documented defaults.
type Config struct {
	// MaxInFlight caps concurrently-served requests; excess load is
	// shed with 429 + Retry-After (default 256, negative disables).
	// Ignored when Admission is set.
	MaxInFlight int
	// Admission, when non-nil, replaces the static MaxInFlight cap with
	// the adaptive AIMD concurrency limiter: the admitted-concurrency
	// limit tracks observed p99 latency against Admission.TargetP99,
	// health/admin routes are never shed, and /batch sheds before
	// /distance (see resilience.AdmissionConfig).
	Admission *resilience.AdmissionConfig
	// RequestTimeout bounds each request (default 30s, negative
	// disables); over-budget requests receive 503 — or 504 when the
	// deadline came from a forwarded X-Rne-Budget-Ms budget, which the
	// resilience stack folds into the request deadline.
	RequestTimeout time.Duration
	// MaxBatchBytes caps the /batch request body; larger bodies get
	// 413 (default 8 MiB).
	MaxBatchBytes int64
	// Logger receives panic reports and structured access logs, each
	// tagged with the request ID (nil disables logging; counters and
	// /metrics still work).
	Logger *slog.Logger
	// Guard enables ALT-backed guardrails: every /distance and /batch
	// estimate is clamped into the certified landmark interval
	// [lo, hi] containing the true distance, responses report whether
	// clamping occurred, and clamp counters are exported on /statz.
	// Guard mode also feeds the online accuracy-drift monitor exported
	// on /metrics. nil serves raw model estimates (the default).
	// (Convenience for the boot set; swapped-in sets carry their own
	// guard in ModelSet.Guard.)
	Guard *hybrid.Estimator
	// DriftBands and DriftWarmup tune the guard-mode drift monitor
	// (<= 0 selects telemetry.DefaultDriftBands / DefaultDriftWarmup).
	DriftBands  int
	DriftWarmup int
	// QueryLog, when its Path is non-empty, samples served /distance and
	// /batch queries into an async JSONL log (see internal/qlog) that
	// cmd/rnereplay can re-run offline. The server owns the logger
	// (Close flushes it) and exports its drop/write counters on /metrics
	// as rne_qlog_dropped_total / rne_qlog_written_total.
	QueryLog qlog.Config
	// Trace, when its Path is non-empty, turns on request-scoped
	// distributed tracing: every request gets a handler span (continuing
	// an inbound traceparent when a gateway forwarded one) with
	// admission/kernel/guard/index child spans, head-sampled 1-in-
	// SampleEvery and persisted as JSONL (see telemetry.RequestTracer).
	// The server owns the tracer (Close flushes it) and exports drop and
	// write counters as rne_trace_dropped_total / rne_trace_written_total.
	Trace telemetry.TraceConfig
	// Reloader, when non-nil, supplies a fresh ModelSet on demand: it
	// backs POST /admin/reload and Server.Reload (which rneserver also
	// invokes on SIGHUP). Typically it re-resolves the latest version
	// from a registry.Store or re-reads the model files from disk.
	Reloader func() (ModelSet, error)
}

const defaultMaxBatchBytes = 8 << 20

// Server wires a hot-swappable model set (and optionally a spatial
// index over a target set) into an http.Handler.
type Server struct {
	cfg   Config
	stats *resilience.Stats

	// active is the serving snapshot; handlers load it exactly once per
	// request. Swap replaces it atomically under swapMu.
	active atomic.Pointer[snapshot]
	swapMu sync.Mutex

	// Swap telemetry: rne_model_swaps_total / rne_model_swap_failures_total
	// counters plus the rne_model_version gauge flipped by Swap.
	swaps        *telemetry.Counter
	swapFailures *telemetry.Counter
	versionGauge *telemetry.Gauge

	// qlog samples served queries to a JSONL file; nil disables.
	qlog *qlog.Logger

	// tracer records request-scoped spans to a JSONL file; nil disables
	// (every span operation is a nil-safe no-op).
	tracer *telemetry.RequestTracer
}

// New returns a server for the model with default hardening; idx may
// be nil for distance-only serving (e.g. when the model was loaded
// from disk and the partition tree is gone) — the server then reports
// degraded readiness and answers /knn and /range with 501.
func New(model *core.Model, idx *index.Tree) (*Server, error) {
	return NewWithConfig(model, idx, Config{})
}

// NewWithConfig returns a server with explicit resilience settings.
func NewWithConfig(model *core.Model, idx *index.Tree, cfg Config) (*Server, error) {
	return NewFromSet(ModelSet{Model: model, Index: idx, Guard: cfg.Guard, Version: "boot"}, cfg)
}

// NewFromSet returns a server booted from an explicit model set — the
// entry point for registry-resolved and compact serving. cfg.Guard is
// ignored when set.Guard is non-nil.
func NewFromSet(set ModelSet, cfg Config) (*Server, error) {
	if cfg.MaxBatchBytes == 0 {
		cfg.MaxBatchBytes = defaultMaxBatchBytes
	}
	if set.Guard == nil {
		set.Guard = cfg.Guard
	}
	s := &Server{cfg: cfg, stats: resilience.NewStats()}
	s.stats.TrackRoutes("/distance", "/batch", "/knn", "/range", "/explain", "/admin/reload")
	// Swap counters live on the registry directly (not the /statz extra
	// map, whose byte shape is frozen by a golden test).
	s.swaps = s.stats.Registry().Counter("rne_model_swaps_total",
		"Model hot swaps installed by /admin/reload, SIGHUP or Server.Swap.")
	s.swapFailures = s.stats.Registry().Counter("rne_model_swap_failures_total",
		"Model swaps rejected by validation or a failed reload source.")
	sn, err := s.buildSnapshot(set)
	if err != nil {
		return nil, err
	}
	s.active.Store(sn)
	s.setVersionGauge(sn.version)
	s.setModelGauges(sn)
	if cfg.QueryLog.Path != "" {
		// Chain the /metrics counters in front of any caller-supplied
		// callbacks so drops are observable even on an unattended server.
		dropped := s.stats.Counter("qlog_dropped")
		written := s.stats.Counter("qlog_written")
		qc := cfg.QueryLog
		callerDrop, callerWrite := qc.OnDrop, qc.OnWrite
		qc.OnDrop = func() {
			dropped.Inc()
			if callerDrop != nil {
				callerDrop()
			}
		}
		qc.OnWrite = func() {
			written.Inc()
			if callerWrite != nil {
				callerWrite()
			}
		}
		ql, err := qlog.New(qc)
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
		s.qlog = ql
	}
	if cfg.Trace.Path != "" {
		tc := cfg.Trace
		if tc.Service == "" {
			tc.Service = "server"
		}
		dropped := s.stats.Counter("trace_dropped")
		written := s.stats.Counter("trace_written")
		callerDrop, callerWrite := tc.OnDrop, tc.OnWrite
		tc.OnDrop = func() {
			dropped.Inc()
			if callerDrop != nil {
				callerDrop()
			}
		}
		tc.OnWrite = func() {
			written.Inc()
			if callerWrite != nil {
				callerWrite()
			}
		}
		tr, err := telemetry.NewRequestTracer(tc)
		if err != nil {
			if s.qlog != nil {
				s.qlog.Close()
			}
			return nil, fmt.Errorf("server: %w", err)
		}
		s.tracer = tr
	}
	return s, nil
}

// Close flushes and closes the query log and request tracer, if
// configured. Safe to call whether or not serving ever started.
func (s *Server) Close() error {
	s.tracer.Close() // nil-safe
	if s.qlog == nil {
		return nil
	}
	return s.qlog.Close()
}

// QueryLog exposes the sampled query logger (nil when disabled), so
// operators and tests can read its seen/sampled/dropped counters.
func (s *Server) QueryLog() *qlog.Logger { return s.qlog }

// Tracer exposes the request tracer (nil when disabled), so sidecars
// like the autoheal controller can trace their own operations into the
// same span stream.
func (s *Server) Tracer() *telemetry.RequestTracer { return s.tracer }

// Stats exposes the request counters backing /statz.
func (s *Server) Stats() *resilience.Stats { return s.stats }

// Estimate answers one pair from the active snapshot exactly as
// /distance would (guard-clamped when a guard is installed), but
// without touching the serving clamp counters or drift monitor. It is
// the read-only probe path for sidecar watchers like the autoheal
// controller, whose synthetic probes must not pollute serving
// telemetry.
func (s *Server) Estimate(src, dst int32) (float64, error) {
	sn := s.active.Load()
	n := sn.view.NumVertices()
	if src < 0 || int(src) >= n || dst < 0 || int(dst) >= n {
		return 0, fmt.Errorf("server: pair (%d,%d) outside [0,%d)", src, dst, n)
	}
	if sn.guard != nil {
		return sn.guard.Guard(src, dst).Est, nil
	}
	return sn.view.Estimate(src, dst), nil
}

// Scale returns the active model's distance normalizer (its graph-
// diameter estimate) — the band scale an external drift monitor over
// served estimates should be built with.
func (s *Server) Scale() float64 { return s.active.Load().view.Scale() }

// Handler returns the route table wrapped in the resilience stack
// (panic recovery, per-request deadline, load shedding, request
// accounting):
//
//	GET  /healthz                    liveness + model shape + version
//	GET  /readyz                     readiness (degraded without spatial index)
//	GET  /statz                      request/latency/status counters (JSON)
//	GET  /metrics                    Prometheus text exposition
//	GET  /distance?s=<id>&t=<id>     one estimate (&explain=1 adds provenance)
//	POST /batch                      {"pairs":[[s,t],...]} -> {"distances":[...]}
//	GET  /knn?s=<id>&k=<n>           k nearest indexed targets (&explain=1 adds traversal stats)
//	GET  /range?s=<id>&tau=<dist>    indexed targets within tau (&explain=1 adds traversal stats)
//	GET  /explain?s=<id>&t=<id>      full estimate provenance (per-level + guard)
//	POST /admin/reload               hot-swap to the Reloader's latest model set
//
// Request-ID assignment sits outermost so every log line and error
// response — including shed and timed-out requests — carries an ID.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.Handle("GET /statz", s.stats.Handler())
	mux.Handle("GET /metrics", s.stats.Registry().Handler())
	mux.HandleFunc("GET /distance", s.handleDistance)
	mux.HandleFunc("POST /batch", s.handleBatch)
	mux.HandleFunc("GET /explain", s.handleExplain)
	mux.HandleFunc("GET /knn", s.handleKNN)
	mux.HandleFunc("GET /range", s.handleRange)
	mux.HandleFunc("POST /admin/reload", s.handleReload)
	// With tracing on, the admission marker sits just inside the
	// resilience stack (everything between handler-span start and it is
	// queueing) and the handler span wraps the whole stack, so sheds and
	// deadline expiries land inside the span as events.
	var inner http.Handler = mux
	if s.tracer != nil {
		inner = telemetry.TraceAdmitted(mux)
	}
	h := resilience.Wrap(inner, resilience.Options{
		MaxInFlight: s.cfg.MaxInFlight,
		Admission:   s.cfg.Admission,
		Timeout:     s.cfg.RequestTimeout,
		Logger:      s.cfg.Logger,
		Stats:       s.stats,
	})
	h = telemetry.TraceHTTP(s.tracer, h)
	return telemetry.RequestID(h)
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) fail(w http.ResponseWriter, status int, format string, args ...any) {
	s.writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// vertexParam parses a vertex id query parameter against the snapshot
// actually serving this request.
func (s *Server) vertexParam(sn *snapshot, r *http.Request, name string) (int32, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing parameter %q", name)
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("parameter %q is not an integer", name)
	}
	if v < 0 || v >= sn.view.NumVertices() {
		return 0, fmt.Errorf("vertex %d outside [0,%d)", v, sn.view.NumVertices())
	}
	return int32(v), nil
}

// modelMeta is the model-shape block shared by /healthz and /readyz,
// so probes and dashboards can tell *which* model a replica serves:
// version label, vertex count, embedding dimension, hierarchy depth
// (0 for loaded or naive models, which drop the partition tree),
// whether the ALT guard is active, and whether the replica runs the
// float32 compact variant.
func modelMeta(sn *snapshot) map[string]any {
	levels := 0
	if sn.view.full != nil {
		if h := sn.view.full.Hierarchy(); h != nil {
			levels = h.MaxDepth() + 1
		}
	}
	out := map[string]any{
		"version":  sn.version,
		"vertices": sn.view.NumVertices(),
		"dim":      sn.view.Dim(),
		"levels":   levels,
		"spatial":  sn.idx != nil,
		"guard":    sn.guard != nil,
		"compact":  sn.view.full == nil && sn.view.shard == nil,
	}
	// Shard identity, so the gateway's probes (and operators) can tell
	// which region a replica owns without a separate discovery call.
	if sv := sn.view.shard; sv != nil {
		out["shard"] = map[string]any{
			"id":        sv.ShardID(),
			"shards":    sv.NumShards(),
			"cut_level": sv.CutLevel(),
			"owned":     sv.OwnedVertices(),
		}
	}
	return out
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	sn := s.active.Load()
	out := map[string]any{"status": "ok"}
	for k, v := range modelMeta(sn) {
		out[k] = v
	}
	s.writeJSON(w, http.StatusOK, out)
}

// handleReady reports readiness, distinct from /healthz liveness: a
// live process may still be degraded. With no spatial index loaded the
// server can serve /distance and /batch but not /knn or /range, so it
// answers "degraded" and lists the missing capability; orchestrators
// that require the full API can gate on status == "ready". Swaps never
// degrade readiness: the previous snapshot serves until the new one is
// fully validated and installed.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	sn := s.active.Load()
	if sn.idx == nil {
		s.writeJSON(w, http.StatusOK, map[string]any{
			"status":   "degraded",
			"degraded": []string{"spatial index absent: /knn and /range answer 501"},
			"model":    modelMeta(sn),
		})
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ready",
		"targets": sn.idx.Size(),
		"model":   modelMeta(sn),
	})
}

// wantExplain reports whether the request opted into provenance
// (?explain=1 or any other truthy value strconv accepts).
func wantExplain(r *http.Request) bool {
	ok, _ := strconv.ParseBool(r.URL.Query().Get("explain"))
	return ok
}

// guardExplanation is the guard-side provenance block attached to
// explained responses: the raw (pre-clamp) estimate, the certified
// interval, which way it clamped, and the landmarks that produced each
// bound.
type guardExplanation struct {
	Raw        float64 `json:"raw"`
	Lo         float64 `json:"lo"`
	Hi         float64 `json:"hi"`
	Clamp      string  `json:"clamp,omitempty"` // "", "low", "high"
	LoLandmark int32   `json:"lo_landmark"`
	HiLandmark int32   `json:"hi_landmark"`
}

func clampDirection(g hybrid.GuardResult) string {
	switch {
	case g.ClampedLow:
		return "low"
	case g.ClampedHigh:
		return "high"
	default:
		return ""
	}
}

// explainGuard evaluates one pair with full guard provenance while
// still maintaining the clamp counters and drift monitor, so explained
// queries are first-class traffic, not a monitoring blind spot.
func (s *Server) explainGuard(sn *snapshot, src, dst int32) (hybrid.GuardResult, guardExplanation) {
	p := sn.guard.Explain(src, dst)
	s.countGuard(sn, p.GuardResult)
	return p.GuardResult, guardExplanation{
		Raw: p.Raw, Lo: p.Lo, Hi: p.Hi,
		Clamp:      clampDirection(p.GuardResult),
		LoLandmark: p.LoLandmark,
		HiLandmark: p.HiLandmark,
	}
}

// queryRecord builds one query-log record, tagging it with the request
// ID, the trace ID (when tracing is on, for offline joins against the
// span JSONL) and the gateway's attempt marker (retry/hedge legs). g
// carries the guard provenance when guard mode served the query.
func (s *Server) queryRecord(r *http.Request, route string, src, dst int32, est float64, g *hybrid.GuardResult, start time.Time) qlog.Record {
	rec := qlog.Record{
		TimeUnixNano: start.UnixNano(),
		RequestID:    telemetry.RequestIDFrom(r.Context()),
		Route:        route,
		S:            src,
		T:            dst,
		Estimate:     est,
		LatencyUS:    float64(time.Since(start).Nanoseconds()) / 1e3,
		TraceID:      telemetry.SpanFromContext(r.Context()).TraceID(),
		Attempt:      telemetry.SanitizeAttempt(r.Header.Get(telemetry.AttemptHeader)),
	}
	if g != nil {
		rec.Raw, rec.Lo, rec.Hi = g.Raw, g.Lo, g.Hi
		rec.HasBounds = true
		rec.Clamp = clampDirection(*g)
	}
	return rec
}

// logQuery samples one served estimate into the query log.
func (s *Server) logQuery(r *http.Request, route string, src, dst int32, est float64, g *hybrid.GuardResult, start time.Time) {
	if s.qlog == nil {
		return
	}
	s.qlog.Observe(s.queryRecord(r, route, src, dst, est, g, start))
}

// misdirect answers an out-of-region request on a shard replica: 421
// Misdirected Request with the owning shard in the Rne-Shard-Owner
// header and the body, so a stale-mapped gateway can re-route instead
// of serving the wrong region's upper-level approximation as exact.
func (s *Server) misdirect(w http.ResponseWriter, sn *snapshot, src int32) {
	sv := sn.view.shard
	owner := sv.Owner(src)
	sn.misdirected.Inc()
	w.Header().Set("Rne-Shard-Owner", strconv.Itoa(owner))
	s.writeJSON(w, http.StatusMisdirectedRequest, map[string]any{
		"error": fmt.Sprintf("vertex %d belongs to shard %d, this replica serves shard %d",
			src, owner, sv.ShardID()),
		"owner_shard": owner,
		"shard":       sv.ShardID(),
	})
}

func (s *Server) handleDistance(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	sn := s.active.Load()
	src, err := s.vertexParam(sn, r, "s")
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	dst, err := s.vertexParam(sn, r, "t")
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	if sv := sn.view.shard; sv != nil && !sv.Owns(src) {
		s.misdirect(w, sn, src)
		return
	}
	explain := wantExplain(r)
	if sn.guard != nil {
		var g hybrid.GuardResult
		out := map[string]any{"s": src, "t": dst}
		if sv := sn.view.shard; sv != nil && sv.CrossShard(src, dst) {
			out["cross_shard"] = true
		}
		_, gspan := telemetry.StartChild(r.Context(), "guard")
		if explain {
			var ge guardExplanation
			g, ge = s.explainGuard(sn, src, dst)
			out["guard"] = ge
			if sn.view.full != nil {
				out["model"] = sn.view.full.ExplainEstimate(src, dst)
			}
		} else {
			g = s.guardedEstimate(sn, src, dst)
		}
		if g.ClampedLow || g.ClampedHigh {
			gspan.SetAttr("clamp", clampDirection(g))
		}
		gspan.End()
		out["distance"], out["lo"], out["hi"] = g.Est, g.Lo, g.Hi
		out["clamped"] = g.ClampedLow || g.ClampedHigh
		s.logQuery(r, "/distance", src, dst, g.Est, &g, start)
		s.writeJSON(w, http.StatusOK, out)
		return
	}
	_, kspan := telemetry.StartChild(r.Context(), "kernel")
	est := sn.view.Estimate(src, dst)
	kspan.End()
	out := map[string]any{"s": src, "t": dst, "distance": est}
	if sv := sn.view.shard; sv != nil && sv.CrossShard(src, dst) {
		out["cross_shard"] = true
	}
	if explain && sn.view.full != nil {
		out["model"] = sn.view.full.ExplainEstimate(src, dst)
	}
	s.logQuery(r, "/distance", src, dst, est, nil, start)
	s.writeJSON(w, http.StatusOK, out)
}

// handleExplain is the dedicated provenance endpoint: the response a
// /distance?explain=1 call would produce, plus the dominant level, in
// one place operators can hit when debugging a suspicious estimate.
// Compact replicas drop the per-level matrix, so they answer 501.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	sn := s.active.Load()
	if sn.view.full == nil {
		if sv := sn.view.shard; sv != nil {
			s.fail(w, http.StatusNotImplemented,
				"explain requires the full per-level model (this replica serves geo-shard %d)", sv.ShardID())
			return
		}
		s.fail(w, http.StatusNotImplemented, "explain requires the full model (this replica serves the compact variant)")
		return
	}
	src, err := s.vertexParam(sn, r, "s")
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	dst, err := s.vertexParam(sn, r, "t")
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	ex := sn.view.full.ExplainEstimate(src, dst)
	out := map[string]any{
		"s": src, "t": dst,
		"model":          ex,
		"dominant_level": ex.DominantLevel(),
	}
	est := ex.Estimate
	if sn.guard != nil {
		g, ge := s.explainGuard(sn, src, dst)
		est = g.Est
		out["guard"] = ge
	}
	out["distance"] = est
	s.writeJSON(w, http.StatusOK, out)
}

// guardedEstimate evaluates one pair under the ALT guardrail,
// maintains the /statz clamp counters, and feeds the accuracy-drift
// monitor with the raw estimate against the certified interval.
func (s *Server) guardedEstimate(sn *snapshot, src, dst int32) hybrid.GuardResult {
	g := sn.guard.Guard(src, dst)
	s.countGuard(sn, g)
	return g
}

func (s *Server) countGuard(sn *snapshot, g hybrid.GuardResult) {
	sn.guardChecked.Inc()
	if g.ClampedLow {
		sn.guardClampedLow.Inc()
	}
	if g.ClampedHigh {
		sn.guardClampedHigh.Inc()
	}
	sn.drift.Observe(g.Raw, g.Lo, g.Hi)
}

// batchRequest is the /batch payload.
type batchRequest struct {
	Pairs [][2]int32 `json:"pairs"`
}

const maxBatch = 1 << 20

// batchExplanation is the per-pair provenance attached when /batch is
// called with ?explain=1: compact (dominant level + clamp provenance)
// rather than the full per-level table, which at maxBatch pairs would
// dwarf the distances themselves. DominantLevel is -1 on compact
// replicas, which drop the per-level decomposition.
type batchExplanation struct {
	DominantLevel int               `json:"dominant_level"`
	Guard         *guardExplanation `json:"guard,omitempty"`
}

func dominantLevel(sn *snapshot, s, t int32) int {
	if sn.view.full == nil {
		return -1
	}
	return sn.view.full.ExplainEstimate(s, t).DominantLevel()
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	sn := s.active.Load()
	// Bound request memory before decoding: a client cannot make the
	// decoder buffer an unbounded body.
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBatchBytes)
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.fail(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d byte limit", tooLarge.Limit)
			return
		}
		s.fail(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	if len(req.Pairs) == 0 {
		s.fail(w, http.StatusBadRequest, "empty batch")
		return
	}
	if len(req.Pairs) > maxBatch {
		s.fail(w, http.StatusBadRequest, "batch of %d exceeds limit %d", len(req.Pairs), maxBatch)
		return
	}
	n := int32(sn.view.NumVertices())
	ss := make([]int32, len(req.Pairs))
	ts := make([]int32, len(req.Pairs))
	for i, p := range req.Pairs {
		if p[0] < 0 || p[0] >= n || p[1] < 0 || p[1] >= n {
			s.fail(w, http.StatusBadRequest, "pair %d references vertex outside [0,%d)", i, n)
			return
		}
		ss[i], ts[i] = p[0], p[1]
	}
	// A shard replica owns a batch only if it owns every source: one
	// misdirected pair fails the whole batch with the redirect hint
	// (the gateway splits per-shard, so a mixed batch means its map is
	// stale) — answering the rest would mislabel upper-level numbers
	// as exact. Cross-shard *targets* are fine and counted below.
	crossCount := 0
	if sv := sn.view.shard; sv != nil {
		for i := range ss {
			if !sv.Owns(ss[i]) {
				s.misdirect(w, sn, ss[i])
				return
			}
			if sv.CrossShard(ss[i], ts[i]) {
				crossCount++
			}
		}
	}
	explain := wantExplain(r)
	var explanations []batchExplanation
	if explain {
		explanations = make([]batchExplanation, len(ss))
	}
	if sn.guard != nil {
		out := make([]float64, len(ss))
		lo := make([]float64, len(ss))
		hi := make([]float64, len(ss))
		clamped := 0
		// Query-log records buffer until the loop resolves so an
		// abandoned batch can tag every record Outcome "partial" — the
		// pairs were computed but the client never saw them.
		var recs []qlog.Record
		if s.qlog != nil {
			recs = make([]qlog.Record, 0, len(ss))
		}
		_, gspan := telemetry.StartChild(r.Context(), "guard")
		gspan.SetAttrInt("pairs", int64(len(ss)))
		flushRecs := func(outcome string) {
			for i := range recs {
				recs[i].Outcome = outcome
				s.qlog.Observe(recs[i])
			}
		}
		for i := range ss {
			// Abandon a batch whose deadline budget ran out mid-loop: the
			// resilience layer already owns the 503/504 answer, and every
			// further pair would be work no one can use.
			if i&255 == 0 && r.Context().Err() != nil {
				gspan.Event("abandoned", fmt.Sprintf("deadline/cancel after %d of %d pairs", i, len(ss)))
				gspan.SetAttrInt("pairs_done", int64(i))
				gspan.End()
				flushRecs("partial")
				return
			}
			var g hybrid.GuardResult
			if explain {
				var ge guardExplanation
				g, ge = s.explainGuard(sn, ss[i], ts[i])
				explanations[i] = batchExplanation{
					DominantLevel: dominantLevel(sn, ss[i], ts[i]),
					Guard:         &ge,
				}
			} else {
				g = s.guardedEstimate(sn, ss[i], ts[i])
			}
			out[i], lo[i], hi[i] = g.Est, g.Lo, g.Hi
			if g.ClampedLow || g.ClampedHigh {
				clamped++
			}
			if s.qlog != nil {
				recs = append(recs, s.queryRecord(r, "/batch", ss[i], ts[i], g.Est, &g, start))
			}
		}
		gspan.SetAttrInt("clamped", int64(clamped))
		gspan.End()
		flushRecs("")
		resp := map[string]any{
			"distances": out, "lo": lo, "hi": hi, "clamped_count": clamped,
		}
		if sn.view.shard != nil {
			resp["cross_count"] = crossCount
		}
		if explain {
			resp["explain"] = explanations
		}
		s.writeJSON(w, http.StatusOK, resp)
		return
	}
	// Evaluate in chunks so an exhausted deadline budget abandons the
	// batch between chunks instead of computing pairs no one can use
	// (the resilience layer owns the 503/504 answer).
	const batchChunk = 4096
	out := make([]float64, len(ss))
	_, kspan := telemetry.StartChild(r.Context(), "kernel")
	kspan.SetAttrInt("pairs", int64(len(ss)))
	for off := 0; off < len(ss); off += batchChunk {
		if r.Context().Err() != nil {
			kspan.Event("abandoned", fmt.Sprintf("deadline/cancel after %d of %d pairs", off, len(ss)))
			kspan.End()
			return
		}
		end := min(off+batchChunk, len(ss))
		if err := sn.view.EstimateBatch(ss[off:end], ts[off:end], out[off:end]); err != nil {
			kspan.SetError(err)
			kspan.End()
			s.fail(w, http.StatusInternalServerError, "%v", err)
			return
		}
	}
	kspan.End()
	for i := range ss {
		if explain {
			explanations[i] = batchExplanation{DominantLevel: dominantLevel(sn, ss[i], ts[i])}
		}
		s.logQuery(r, "/batch", ss[i], ts[i], out[i], nil, start)
	}
	resp := map[string]any{"distances": out}
	if sn.view.shard != nil {
		resp["cross_count"] = crossCount
	}
	if explain {
		resp["explain"] = explanations
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleKNN(w http.ResponseWriter, r *http.Request) {
	sn := s.active.Load()
	if sn.idx == nil {
		s.fail(w, http.StatusNotImplemented, "no spatial index loaded")
		return
	}
	src, err := s.vertexParam(sn, r, "s")
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	k, err := strconv.Atoi(r.URL.Query().Get("k"))
	if err != nil || k < 1 || k > sn.idx.Size() {
		s.fail(w, http.StatusBadRequest, "k must be in [1,%d]", sn.idx.Size())
		return
	}
	_, ispan := telemetry.StartChild(r.Context(), "index")
	results, st := sn.idx.KNNStats(src, k)
	ispan.SetAttrInt("visited", int64(st.NodesVisited))
	ispan.End()
	_, kspan := telemetry.StartChild(r.Context(), "kernel")
	dists := make([]float64, len(results))
	for i, v := range results {
		dists[i] = sn.view.Estimate(src, v)
	}
	kspan.End()
	resp := map[string]any{"targets": results, "distances": dists}
	if wantExplain(r) {
		resp["stats"] = st
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleRange(w http.ResponseWriter, r *http.Request) {
	sn := s.active.Load()
	if sn.idx == nil {
		s.fail(w, http.StatusNotImplemented, "no spatial index loaded")
		return
	}
	src, err := s.vertexParam(sn, r, "s")
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	tau, err := strconv.ParseFloat(r.URL.Query().Get("tau"), 64)
	if err != nil || tau < 0 {
		s.fail(w, http.StatusBadRequest, "tau must be a non-negative number")
		return
	}
	_, ispan := telemetry.StartChild(r.Context(), "index")
	results, st := sn.idx.RangeStats(src, tau)
	ispan.SetAttrInt("visited", int64(st.NodesVisited))
	ispan.End()
	if results == nil {
		results = []int32{}
	}
	resp := map[string]any{"targets": results}
	if wantExplain(r) {
		resp["stats"] = st
	}
	s.writeJSON(w, http.StatusOK, resp)
}
