// Package server exposes a trained RNE model over HTTP — the serving
// shape of the paper's motivating Uber/Yelp workloads: high-volume
// distance estimates, k-nearest-vehicle and POIs-within-range queries.
// Handlers are stdlib net/http and safe for concurrent use (model
// queries are read-only).
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/hybrid"
	"repro/internal/index"
	"repro/internal/resilience"
	"repro/internal/telemetry"
)

// Config tunes the production-hardening layer wrapped around the
// route table. Zero values select the documented defaults.
type Config struct {
	// MaxInFlight caps concurrently-served requests; excess load is
	// shed with 429 + Retry-After (default 256, negative disables).
	MaxInFlight int
	// RequestTimeout bounds each request (default 30s, negative
	// disables); over-budget requests receive 503.
	RequestTimeout time.Duration
	// MaxBatchBytes caps the /batch request body; larger bodies get
	// 413 (default 8 MiB).
	MaxBatchBytes int64
	// Logger receives panic reports and structured access logs, each
	// tagged with the request ID (nil disables logging; counters and
	// /metrics still work).
	Logger *slog.Logger
	// Guard enables ALT-backed guardrails: every /distance and /batch
	// estimate is clamped into the certified landmark interval
	// [lo, hi] containing the true distance, responses report whether
	// clamping occurred, and clamp counters are exported on /statz.
	// Guard mode also feeds the online accuracy-drift monitor exported
	// on /metrics. nil serves raw model estimates (the default).
	Guard *hybrid.Estimator
	// DriftBands and DriftWarmup tune the guard-mode drift monitor
	// (<= 0 selects telemetry.DefaultDriftBands / DefaultDriftWarmup).
	DriftBands  int
	DriftWarmup int
}

const defaultMaxBatchBytes = 8 << 20

// Server wires a model (and optionally a spatial index over a target
// set) into an http.Handler.
type Server struct {
	model *core.Model
	idx   *index.Tree // nil disables /knn and /range
	cfg   Config
	stats *resilience.Stats

	// Guard-mode counters, cached as pointers at construction so the
	// query path pays one atomic Add, not a map lookup under a mutex.
	guardChecked     *telemetry.Counter
	guardClampedLow  *telemetry.Counter
	guardClampedHigh *telemetry.Counter

	// drift watches serving accuracy from the certified guard bounds;
	// nil (guard disabled or degenerate model scale) is a no-op.
	drift *telemetry.DriftMonitor
}

// New returns a server for the model with default hardening; idx may
// be nil for distance-only serving (e.g. when the model was loaded
// from disk and the partition tree is gone) — the server then reports
// degraded readiness and answers /knn and /range with 501.
func New(model *core.Model, idx *index.Tree) (*Server, error) {
	return NewWithConfig(model, idx, Config{})
}

// NewWithConfig returns a server with explicit resilience settings.
func NewWithConfig(model *core.Model, idx *index.Tree, cfg Config) (*Server, error) {
	if model == nil {
		return nil, fmt.Errorf("server: nil model")
	}
	if cfg.MaxBatchBytes == 0 {
		cfg.MaxBatchBytes = defaultMaxBatchBytes
	}
	if cfg.Guard != nil && cfg.Guard.NumVertices() != model.NumVertices() {
		return nil, fmt.Errorf("server: guard estimator covers %d vertices but model covers %d",
			cfg.Guard.NumVertices(), model.NumVertices())
	}
	s := &Server{model: model, idx: idx, cfg: cfg, stats: resilience.NewStats()}
	s.stats.TrackRoutes("/distance", "/batch", "/knn", "/range")
	if cfg.Guard != nil {
		s.guardChecked = s.stats.Counter("guard_checked")
		s.guardClampedLow = s.stats.Counter("guard_clamped_low")
		s.guardClampedHigh = s.stats.Counter("guard_clamped_high")
		// The model's distance normalizer approximates the graph
		// diameter, which is exactly the scale the drift bands need.
		if d, err := telemetry.NewDriftMonitor(s.stats.Registry(), model.Scale(),
			cfg.DriftBands, cfg.DriftWarmup); err == nil {
			s.drift = d
		}
	}
	return s, nil
}

// Stats exposes the request counters backing /statz.
func (s *Server) Stats() *resilience.Stats { return s.stats }

// Handler returns the route table wrapped in the resilience stack
// (panic recovery, per-request deadline, load shedding, request
// accounting):
//
//	GET  /healthz                    liveness + model shape
//	GET  /readyz                     readiness (degraded without spatial index)
//	GET  /statz                      request/latency/status counters (JSON)
//	GET  /metrics                    Prometheus text exposition
//	GET  /distance?s=<id>&t=<id>     one estimate
//	POST /batch                      {"pairs":[[s,t],...]} -> {"distances":[...]}
//	GET  /knn?s=<id>&k=<n>           k nearest indexed targets
//	GET  /range?s=<id>&tau=<dist>    indexed targets within tau
//
// Request-ID assignment sits outermost so every log line and error
// response — including shed and timed-out requests — carries an ID.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.Handle("GET /statz", s.stats.Handler())
	mux.Handle("GET /metrics", s.stats.Registry().Handler())
	mux.HandleFunc("GET /distance", s.handleDistance)
	mux.HandleFunc("POST /batch", s.handleBatch)
	mux.HandleFunc("GET /knn", s.handleKNN)
	mux.HandleFunc("GET /range", s.handleRange)
	h := resilience.Wrap(mux, resilience.Options{
		MaxInFlight: s.cfg.MaxInFlight,
		Timeout:     s.cfg.RequestTimeout,
		Logger:      s.cfg.Logger,
		Stats:       s.stats,
	})
	return telemetry.RequestID(h)
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) fail(w http.ResponseWriter, status int, format string, args ...any) {
	s.writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// vertexParam parses a vertex id query parameter.
func (s *Server) vertexParam(r *http.Request, name string) (int32, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing parameter %q", name)
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("parameter %q is not an integer", name)
	}
	if v < 0 || v >= s.model.NumVertices() {
		return 0, fmt.Errorf("vertex %d outside [0,%d)", v, s.model.NumVertices())
	}
	return int32(v), nil
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"vertices": s.model.NumVertices(),
		"dim":      s.model.Dim(),
		"spatial":  s.idx != nil,
		"guard":    s.cfg.Guard != nil,
	})
}

// handleReady reports readiness, distinct from /healthz liveness: a
// live process may still be degraded. With no spatial index loaded the
// server can serve /distance and /batch but not /knn or /range, so it
// answers "degraded" and lists the missing capability; orchestrators
// that require the full API can gate on status == "ready".
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if s.idx == nil {
		s.writeJSON(w, http.StatusOK, map[string]any{
			"status":   "degraded",
			"degraded": []string{"spatial index absent: /knn and /range answer 501"},
		})
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ready",
		"targets": s.idx.Size(),
	})
}

func (s *Server) handleDistance(w http.ResponseWriter, r *http.Request) {
	src, err := s.vertexParam(r, "s")
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	dst, err := s.vertexParam(r, "t")
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	if s.cfg.Guard != nil {
		g := s.guardedEstimate(src, dst)
		s.writeJSON(w, http.StatusOK, map[string]any{
			"s": src, "t": dst, "distance": g.Est,
			"lo": g.Lo, "hi": g.Hi, "clamped": g.ClampedLow || g.ClampedHigh,
		})
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"s": src, "t": dst, "distance": s.model.Estimate(src, dst),
	})
}

// guardedEstimate evaluates one pair under the ALT guardrail,
// maintains the /statz clamp counters, and feeds the accuracy-drift
// monitor with the raw estimate against the certified interval.
func (s *Server) guardedEstimate(src, dst int32) hybrid.GuardResult {
	g := s.cfg.Guard.Guard(src, dst)
	s.guardChecked.Inc()
	if g.ClampedLow {
		s.guardClampedLow.Inc()
	}
	if g.ClampedHigh {
		s.guardClampedHigh.Inc()
	}
	s.drift.Observe(g.Raw, g.Lo, g.Hi)
	return g
}

// batchRequest is the /batch payload.
type batchRequest struct {
	Pairs [][2]int32 `json:"pairs"`
}

const maxBatch = 1 << 20

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	// Bound request memory before decoding: a client cannot make the
	// decoder buffer an unbounded body.
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBatchBytes)
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.fail(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d byte limit", tooLarge.Limit)
			return
		}
		s.fail(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	if len(req.Pairs) == 0 {
		s.fail(w, http.StatusBadRequest, "empty batch")
		return
	}
	if len(req.Pairs) > maxBatch {
		s.fail(w, http.StatusBadRequest, "batch of %d exceeds limit %d", len(req.Pairs), maxBatch)
		return
	}
	n := int32(s.model.NumVertices())
	ss := make([]int32, len(req.Pairs))
	ts := make([]int32, len(req.Pairs))
	for i, p := range req.Pairs {
		if p[0] < 0 || p[0] >= n || p[1] < 0 || p[1] >= n {
			s.fail(w, http.StatusBadRequest, "pair %d references vertex outside [0,%d)", i, n)
			return
		}
		ss[i], ts[i] = p[0], p[1]
	}
	if s.cfg.Guard != nil {
		out := make([]float64, len(ss))
		lo := make([]float64, len(ss))
		hi := make([]float64, len(ss))
		clamped := 0
		for i := range ss {
			g := s.guardedEstimate(ss[i], ts[i])
			out[i], lo[i], hi[i] = g.Est, g.Lo, g.Hi
			if g.ClampedLow || g.ClampedHigh {
				clamped++
			}
		}
		s.writeJSON(w, http.StatusOK, map[string]any{
			"distances": out, "lo": lo, "hi": hi, "clamped_count": clamped,
		})
		return
	}
	out := make([]float64, len(ss))
	if err := s.model.EstimateBatch(ss, ts, out, 0); err != nil {
		s.fail(w, http.StatusInternalServerError, "%v", err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"distances": out})
}

func (s *Server) handleKNN(w http.ResponseWriter, r *http.Request) {
	if s.idx == nil {
		s.fail(w, http.StatusNotImplemented, "no spatial index loaded")
		return
	}
	src, err := s.vertexParam(r, "s")
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	k, err := strconv.Atoi(r.URL.Query().Get("k"))
	if err != nil || k < 1 || k > s.idx.Size() {
		s.fail(w, http.StatusBadRequest, "k must be in [1,%d]", s.idx.Size())
		return
	}
	results := s.idx.KNN(src, k)
	dists := make([]float64, len(results))
	for i, v := range results {
		dists[i] = s.model.Estimate(src, v)
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"targets": results, "distances": dists})
}

func (s *Server) handleRange(w http.ResponseWriter, r *http.Request) {
	if s.idx == nil {
		s.fail(w, http.StatusNotImplemented, "no spatial index loaded")
		return
	}
	src, err := s.vertexParam(r, "s")
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	tau, err := strconv.ParseFloat(r.URL.Query().Get("tau"), 64)
	if err != nil || tau < 0 {
		s.fail(w, http.StatusBadRequest, "tau must be a non-negative number")
		return
	}
	results := s.idx.Range(src, tau)
	if results == nil {
		results = []int32{}
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"targets": results})
}
