package server

import (
	"fmt"
	"math"
	"net/http"

	"repro/internal/core"
	"repro/internal/hybrid"
	"repro/internal/index"
	"repro/internal/shard"
	"repro/internal/telemetry"
)

// ModelSet is the unit of hot swapping: a model (full, compact or one
// geo-shard), its optional spatial index and ALT guard, and the
// version tag reported on /healthz and the rne_model_version metric.
// The set is installed atomically — a request is served entirely by
// one set, never by a mix of old model and new guard.
type ModelSet struct {
	// Model is the full float64 model; Compact the float32 deployment
	// variant (half the resident memory). At least one of Model,
	// Compact or Shard is required. When only Compact is present the
	// server serves /distance and /batch (plus guard mode) but not the
	// explain surfaces, which need the full per-level decomposition.
	Model   *core.Model
	Compact *core.CompactModel
	// Shard is one geo-shard of a split model (mutually exclusive with
	// Model/Compact): the replica serves only its region's sources —
	// out-of-region s gets a 421 redirect hint — answering intra-shard
	// pairs exactly and cross-shard pairs from the shared upper levels.
	Shard *shard.Model
	// Index enables /knn and /range; it requires the full model.
	Index *index.Tree
	// Guard enables ALT-backed clamping and the drift monitor. In
	// shard mode this is the region-restricted guard.
	Guard *hybrid.Estimator
	// Version labels this set ("v3", "boot", ...); empty defaults to
	// "unversioned".
	Version string
}

// modelView is the serving-side selector over full vs compact vs shard
// storage: the hot query path costs one nil check beyond the estimate
// itself.
type modelView struct {
	full    *core.Model
	compact *core.CompactModel
	shard   *shard.Model
}

func (v modelView) ok() bool { return v.full != nil || v.compact != nil || v.shard != nil }

func (v modelView) Estimate(s, t int32) float64 {
	if v.full != nil {
		return v.full.Estimate(s, t)
	}
	if v.shard != nil {
		return v.shard.Estimate(s, t)
	}
	return v.compact.Estimate(s, t)
}

func (v modelView) NumVertices() int {
	if v.full != nil {
		return v.full.NumVertices()
	}
	if v.shard != nil {
		return v.shard.NumVertices()
	}
	return v.compact.NumVertices()
}

func (v modelView) Dim() int {
	if v.full != nil {
		return v.full.Dim()
	}
	if v.shard != nil {
		return v.shard.Dim()
	}
	return v.compact.Dim()
}

func (v modelView) Scale() float64 {
	if v.full != nil {
		return v.full.Scale()
	}
	if v.shard != nil {
		return v.shard.Scale()
	}
	return v.compact.Scale()
}

func (v modelView) EstimateBatch(ss, ts []int32, out []float64) error {
	if v.full != nil {
		return v.full.EstimateBatch(ss, ts, out, 0)
	}
	if v.shard != nil {
		return v.shard.EstimateBatch(ss, ts, out)
	}
	if len(ss) != len(ts) || len(ss) != len(out) {
		return fmt.Errorf("server: batch slices must share a length")
	}
	for i := range ss {
		out[i] = v.compact.Estimate(ss[i], ts[i])
	}
	return nil
}

// snapshot is one immutable serving state. Handlers load it once per
// request from Server.active, so every answer is internally consistent
// even while a swap is racing in.
type snapshot struct {
	view    modelView
	idx     *index.Tree
	guard   *hybrid.Estimator
	drift   *telemetry.DriftMonitor
	version string

	// Guard-mode counters, cached as pointers at snapshot build so the
	// query path pays one atomic Add, not a map lookup under a mutex.
	// Registered only for guarded sets, keeping the /statz extra map
	// empty (its frozen shape) on unguarded servers.
	guardChecked     *telemetry.Counter
	guardClampedLow  *telemetry.Counter
	guardClampedHigh *telemetry.Counter

	// misdirected counts out-of-region requests answered 421; registered
	// only in shard mode (same frozen-/statz-shape reasoning as above).
	misdirected *telemetry.Counter
}

// buildSnapshot validates a ModelSet and assembles the serving state,
// including a drift monitor rebuilt from the *new* model's scale (a
// stale monitor would band and score drift against the old model's
// diameter, silently corrupting the drift signal after every swap).
func (s *Server) buildSnapshot(set ModelSet) (*snapshot, error) {
	view := modelView{full: set.Model, compact: set.Compact, shard: set.Shard}
	if !view.ok() {
		return nil, fmt.Errorf("server: nil model")
	}
	if set.Shard != nil && (set.Model != nil || set.Compact != nil) {
		return nil, fmt.Errorf("server: a set is either a shard or a whole model, not both")
	}
	// Region continuity: a shard replica must keep serving the same
	// region across swaps — a reload that lands shard 2's artifact on
	// shard 0's replica (or changes the fleet topology under the
	// gateway's routing map) is rejected like any other bad set.
	if prev := s.active.Load(); prev != nil {
		switch {
		case (prev.view.shard != nil) != (set.Shard != nil):
			return nil, fmt.Errorf("server: swap cannot change shard mode mid-serve")
		case prev.view.shard != nil && (prev.view.shard.ShardID() != set.Shard.ShardID() ||
			prev.view.shard.NumShards() != set.Shard.NumShards()):
			return nil, fmt.Errorf("server: replica serves shard %d/%d, refusing swap to shard %d/%d",
				prev.view.shard.ShardID(), prev.view.shard.NumShards(),
				set.Shard.ShardID(), set.Shard.NumShards())
		}
	}
	n := view.NumVertices()
	if n <= 0 {
		return nil, fmt.Errorf("server: model covers no vertices")
	}
	if sc := view.Scale(); !(sc > 0) || math.IsInf(sc, 0) {
		return nil, fmt.Errorf("server: implausible model scale %v", sc)
	}
	if set.Model != nil && set.Compact != nil && set.Model.NumVertices() != set.Compact.NumVertices() {
		return nil, fmt.Errorf("server: full model covers %d vertices but compact covers %d",
			set.Model.NumVertices(), set.Compact.NumVertices())
	}
	if set.Guard != nil && set.Guard.NumVertices() != n {
		return nil, fmt.Errorf("server: guard estimator covers %d vertices but model covers %d",
			set.Guard.NumVertices(), n)
	}
	if set.Index != nil && set.Model == nil {
		return nil, fmt.Errorf("server: spatial index requires the full model")
	}
	if err := smokeTest(view, set.Guard); err != nil {
		return nil, err
	}
	sn := &snapshot{
		view:    view,
		idx:     set.Index,
		guard:   set.Guard,
		version: set.Version,
	}
	if sn.version == "" {
		sn.version = "unversioned"
	}
	if set.Shard != nil {
		sn.misdirected = s.stats.Counter("shard_misdirected")
	}
	if set.Guard != nil {
		sn.guardChecked = s.stats.Counter("guard_checked")
		sn.guardClampedLow = s.stats.Counter("guard_clamped_low")
		sn.guardClampedHigh = s.stats.Counter("guard_clamped_high")
		// The model's distance normalizer approximates the graph
		// diameter, which is exactly the scale the drift bands need.
		if d, err := telemetry.NewDriftMonitor(s.stats.Registry(), view.Scale(),
			s.cfg.DriftBands, s.cfg.DriftWarmup); err == nil {
			sn.drift = d
		}
	}
	return sn, nil
}

// smokeTest runs a handful of deterministic sample queries before a set
// is allowed to serve: estimates must be finite and non-negative, and
// under a guard every probe must respect its certified interval. A
// model whose embedding rows are NaN-poisoned or whose guard disagrees
// with it is rejected here, before any request can observe it.
func smokeTest(view modelView, guard *hybrid.Estimator) error {
	n := int32(view.NumVertices())
	if n < 2 {
		return nil
	}
	pairs := [][2]int32{{0, n - 1}, {0, n / 2}, {n / 3, 2 * n / 3}, {n - 1, n / 2}}
	for _, p := range pairs {
		if p[0] == p[1] {
			continue
		}
		est := view.Estimate(p[0], p[1])
		if math.IsNaN(est) || math.IsInf(est, 0) || est < 0 {
			return fmt.Errorf("server: smoke query (%d,%d) returned implausible estimate %v", p[0], p[1], est)
		}
		if guard == nil {
			continue
		}
		g := guard.Guard(p[0], p[1])
		if math.IsNaN(g.Lo) || math.IsNaN(g.Hi) || math.IsInf(g.Lo, 0) || g.Lo > g.Hi {
			return fmt.Errorf("server: smoke query (%d,%d) has broken guard interval [%v,%v]", p[0], p[1], g.Lo, g.Hi)
		}
		if g.Est < g.Lo || g.Est > g.Hi {
			return fmt.Errorf("server: smoke query (%d,%d) guarded estimate %v escapes [%v,%v]", p[0], p[1], g.Est, g.Lo, g.Hi)
		}
	}
	return nil
}

// Swap validates the set and atomically installs it as the serving
// state. On validation failure the active set is untouched — in-flight
// and future requests keep being served by the previous model — and the
// failure is counted on rne_model_swap_failures_total. On success
// rne_model_swaps_total increments and rne_model_version flips to the
// new version label.
func (s *Server) Swap(set ModelSet) error {
	sn, err := s.buildSnapshot(set)
	if err != nil {
		s.swapFailures.Inc()
		return err
	}
	s.swapMu.Lock()
	prev := s.active.Load()
	s.active.Store(sn)
	s.swaps.Inc()
	s.setVersionGauge(sn.version)
	s.setModelGauges(sn)
	s.swapMu.Unlock()
	if prev != nil {
		telemetry.OrNop(s.cfg.Logger).Info("model swapped",
			"from", prev.version, "to", sn.version,
			"vertices", sn.view.NumVertices(), "dim", sn.view.Dim(),
			"guard", sn.guard != nil, "spatial", sn.idx != nil,
			"compact", sn.view.full == nil)
	}
	return nil
}

// setVersionGauge flips rne_model_version{version=...} to the active
// label: the new series reads 1, the previous drops to 0 so dashboards
// see exactly one active version per replica. Callers hold swapMu.
func (s *Server) setVersionGauge(version string) {
	g := s.stats.Registry().Gauge("rne_model_version",
		"Active model version (1 on the serving version's series).",
		"version", version)
	if s.versionGauge != nil && s.versionGauge != g {
		s.versionGauge.Set(0)
	}
	g.Set(1)
	s.versionGauge = g
}

// setModelGauges publishes per-component resident-bytes gauges for the
// active set — rne_model_bytes{component=embeddings|upper|guard|index}
// — so "shards actually shrink replicas" is measurable, plus
// rne_shard_id on shard replicas. Callers hold swapMu.
func (s *Server) setModelGauges(sn *snapshot) {
	reg := s.stats.Registry()
	const help = "Resident bytes of the active model set, by component (embeddings = exact rows held locally, upper = shared upper-level state, guard = ALT label matrix, index = spatial tree)."
	set := func(component string, v int64) {
		reg.Gauge("rne_model_bytes", help, "component", component).Set(float64(v))
	}
	var embBytes, upperBytes int64
	switch {
	case sn.view.shard != nil:
		embBytes = sn.view.shard.EmbeddingBytes()
		upperBytes = sn.view.shard.UpperBytes()
	case sn.view.full != nil:
		embBytes = sn.view.full.IndexBytes()
	default:
		embBytes = sn.view.compact.IndexBytes()
	}
	set("embeddings", embBytes)
	set("upper", upperBytes)
	var guardBytes int64
	if sn.guard != nil {
		guardBytes = sn.guard.LandmarkBytes()
	}
	set("guard", guardBytes)
	var idxBytes int64
	if sn.idx != nil {
		idxBytes = sn.idx.IndexBytes()
	}
	set("index", idxBytes)
	if sn.view.shard != nil {
		reg.Gauge("rne_shard_id",
			"Geo-shard this replica serves (absent on unsharded replicas).").
			Set(float64(sn.view.shard.ShardID()))
	}
}

// ActiveVersion reports the version label of the currently-serving set.
func (s *Server) ActiveVersion() string { return s.active.Load().version }

// Reload pulls a fresh ModelSet from the configured Reloader and swaps
// it in; it is the shared engine behind POST /admin/reload and the
// SIGHUP handler in rneserver. The returned string is the now-active
// version.
func (s *Server) Reload() (string, error) {
	if s.cfg.Reloader == nil {
		return "", fmt.Errorf("server: no reloader configured")
	}
	set, err := s.cfg.Reloader()
	if err != nil {
		s.swapFailures.Inc()
		return "", fmt.Errorf("server: reload source: %w", err)
	}
	if err := s.Swap(set); err != nil {
		return "", err
	}
	return s.ActiveVersion(), nil
}

// handleReload is POST /admin/reload: resolve a new set via the
// Reloader, validate, swap. A failed reload (source error or
// validation) leaves the previous version serving and reports it in the
// response, so operators see the rollback explicitly.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Reloader == nil {
		s.fail(w, http.StatusNotImplemented, "no reloader configured (start rneserver with -registry or -model)")
		return
	}
	previous := s.ActiveVersion()
	version, err := s.Reload()
	if err != nil {
		s.writeJSON(w, http.StatusInternalServerError, map[string]any{
			"error":          err.Error(),
			"swapped":        false,
			"active_version": previous,
		})
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"swapped":        true,
		"version":        version,
		"previous":       previous,
		"swaps_total":    s.swaps.Value(),
		"swap_failures":  s.swapFailures.Value(),
		"active_version": version,
	})
}
