package sample

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/graph"
	"repro/internal/sssp"
)

// GridBuckets approximates the R equal-length distance intervals of
// Section V-C. The road network is cut into K x K spatial grid cells;
// the distance of a cell pair is the least number of cells to cross
// (the Manhattan cell distance, in [0, 2K-2]), and the R = 2K-1 cell
// pair buckets stand in for vertex-pair distance intervals. Storage is
// O(K^4) and drawing a sample is O(log) via cumulative weights.
type GridBuckets struct {
	k     int
	cells [][]int32 // vertices per cell, row-major; empty cells allowed

	// buckets[d] lists cell pairs at cell distance d; cum[d] holds the
	// cumulative |g_s|*|g_t| weights for weighted pair selection.
	buckets [][2]int32
	offsets []int       // bucket d occupies buckets[offsets[d]:offsets[d+1]]
	cum     [][]float64 // per bucket, cumulative pair weights
}

// NewGridBuckets partitions g's bounding box into k x k cells.
func NewGridBuckets(g *graph.Graph, k int) (*GridBuckets, error) {
	if k < 2 {
		return nil, fmt.Errorf("sample: grid needs k >= 2, got %d", k)
	}
	n := g.NumVertices()
	if n == 0 {
		return nil, fmt.Errorf("sample: empty graph")
	}
	minX, minY, maxX, maxY := g.BoundingBox()
	spanX := maxX - minX
	spanY := maxY - minY
	if spanX <= 0 {
		spanX = 1
	}
	if spanY <= 0 {
		spanY = 1
	}
	gb := &GridBuckets{k: k, cells: make([][]int32, k*k)}
	for v := int32(0); v < int32(n); v++ {
		cx := int(float64(k) * (g.X(v) - minX) / spanX)
		cy := int(float64(k) * (g.Y(v) - minY) / spanY)
		if cx >= k {
			cx = k - 1
		}
		if cy >= k {
			cy = k - 1
		}
		c := cy*k + cx
		gb.cells[c] = append(gb.cells[c], v)
	}

	// Group non-empty cell pairs by Manhattan cell distance.
	type pairRec struct {
		d    int
		a, b int32
		w    float64
	}
	var recs []pairRec
	for a := 0; a < k*k; a++ {
		if len(gb.cells[a]) == 0 {
			continue
		}
		ay, ax := a/k, a%k
		for b := a; b < k*k; b++ {
			if len(gb.cells[b]) == 0 {
				continue
			}
			by, bx := b/k, b%k
			d := abs(ay-by) + abs(ax-bx)
			w := float64(len(gb.cells[a])) * float64(len(gb.cells[b]))
			recs = append(recs, pairRec{d: d, a: int32(a), b: int32(b), w: w})
		}
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].d != recs[j].d {
			return recs[i].d < recs[j].d
		}
		if recs[i].a != recs[j].a {
			return recs[i].a < recs[j].a
		}
		return recs[i].b < recs[j].b
	})
	R := gb.NumBuckets()
	gb.offsets = make([]int, R+1)
	gb.cum = make([][]float64, R)
	gb.buckets = make([][2]int32, len(recs))
	idx := 0
	for d := 0; d < R; d++ {
		gb.offsets[d] = idx
		var running float64
		for idx < len(recs) && recs[idx].d == d {
			gb.buckets[idx] = [2]int32{recs[idx].a, recs[idx].b}
			running += recs[idx].w
			gb.cum[d] = append(gb.cum[d], running)
			idx++
		}
	}
	gb.offsets[R] = idx
	return gb, nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// K returns the grid resolution.
func (gb *GridBuckets) K() int { return gb.k }

// NumBuckets returns R = 2K-1, the number of cell-distance buckets.
func (gb *GridBuckets) NumBuckets() int { return 2*gb.k - 1 }

// BucketEmpty reports whether bucket d holds no cell pairs.
func (gb *GridBuckets) BucketEmpty(d int) bool {
	return d < 0 || d >= gb.NumBuckets() || gb.offsets[d] == gb.offsets[d+1]
}

// PickPair draws a cell pair from bucket d with probability
// proportional to |g_s|*|g_t| and returns the two cell vertex lists.
// ok is false when the bucket is empty.
func (gb *GridBuckets) PickPair(d int, rng *rand.Rand) (sa, sb []int32, ok bool) {
	if gb.BucketEmpty(d) {
		return nil, nil, false
	}
	cum := gb.cum[d]
	total := cum[len(cum)-1]
	x := rng.Float64() * total
	i := sort.SearchFloat64s(cum, x)
	if i >= len(cum) {
		i = len(cum) - 1
	}
	pair := gb.buckets[gb.offsets[d]+i]
	return gb.cells[pair[0]], gb.cells[pair[1]], true
}

// FromBucket draws n labeled samples from bucket d, grouping perSource
// samples per Dijkstra source. It may return fewer than n samples if
// the bucket is empty.
func (gb *GridBuckets) FromBucket(d, n, perSource int, oracle *sssp.TruthOracle, rng *rand.Rand) []Sample {
	if perSource < 1 {
		perSource = 1
	}
	out := make([]Sample, 0, n)
	if gb.BucketEmpty(d) {
		return out
	}
	// Attempt cap prevents spinning when a bucket only contains
	// singleton cells paired with themselves (no valid s != t pairs).
	for attempts := 0; len(out) < n && attempts < 20*(n+1); attempts++ {
		sa, sb, ok := gb.PickPair(d, rng)
		if !ok {
			break
		}
		s := sa[rng.Intn(len(sa))]
		dist := oracle.FromSource(s)
		for j := 0; j < perSource && len(out) < n; j++ {
			t := sb[rng.Intn(len(sb))]
			if dd := dist[t]; t != s && dd < sssp.Inf {
				out = append(out, Sample{S: s, T: t, Dist: dd})
			} else if len(sb) == 1 && t == s {
				break // singleton cell paired with itself; try a new pair
			}
		}
	}
	return out
}

// Mode selects how the error-based sampler spreads samples over
// buckets (Figure 8b).
type Mode int

const (
	// Local draws all samples from the single bucket with the highest
	// error.
	Local Mode = iota
	// Global assigns samples to every bucket proportionally to its
	// error.
	Global
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Local:
		return "local"
	case Global:
		return "global"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ErrorBased draws n samples according to the per-bucket relative
// errors from the last validation round (Algorithm 2, lines 9–17).
// Buckets with no cell pairs are ignored.
func (gb *GridBuckets) ErrorBased(errors []float64, mode Mode, n, perSource int, oracle *sssp.TruthOracle, rng *rand.Rand) []Sample {
	R := gb.NumBuckets()
	if len(errors) != R {
		return nil
	}
	switch mode {
	case Local:
		best, bestErr := -1, math.Inf(-1)
		for d := 0; d < R; d++ {
			if !gb.BucketEmpty(d) && errors[d] > bestErr {
				best, bestErr = d, errors[d]
			}
		}
		if best < 0 {
			return nil
		}
		return gb.FromBucket(best, n, perSource, oracle, rng)
	case Global:
		var total float64
		for d := 0; d < R; d++ {
			if !gb.BucketEmpty(d) && errors[d] > 0 {
				total += errors[d]
			}
		}
		if total <= 0 {
			return nil
		}
		out := make([]Sample, 0, n)
		for d := 0; d < R; d++ {
			if gb.BucketEmpty(d) || errors[d] <= 0 {
				continue
			}
			quota := int(math.Round(float64(n) * errors[d] / total))
			if quota == 0 {
				continue
			}
			out = append(out, gb.FromBucket(d, quota, perSource, oracle, rng)...)
		}
		return out
	default:
		return nil
	}
}

// ProbeErrors estimates the mean relative error of est on each bucket
// using probesPerBucket fresh labeled pairs. Empty buckets report zero.
func (gb *GridBuckets) ProbeErrors(est func(s, t int32) float64, probesPerBucket, perSource int, oracle *sssp.TruthOracle, rng *rand.Rand) []float64 {
	R := gb.NumBuckets()
	out := make([]float64, R)
	for d := 0; d < R; d++ {
		probes := gb.FromBucket(d, probesPerBucket, perSource, oracle, rng)
		if len(probes) == 0 {
			continue
		}
		var sum float64
		cnt := 0
		for _, p := range probes {
			if p.Dist > 0 {
				sum += math.Abs(est(p.S, p.T)-p.Dist) / p.Dist
				cnt++
			}
		}
		if cnt > 0 {
			out[d] = sum / float64(cnt)
		}
	}
	return out
}
