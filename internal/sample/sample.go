// Package sample implements the training-sample selection strategies
// of Algorithm 2: subgraph-level selection for the hierarchy phase,
// landmark-based selection for the vertex phase, and the grid-bucketed
// error-based selection that drives active fine-tuning (Section V).
//
// Exact labels come from a sssp.TruthOracle. To keep labeling tractable
// every selector groups several samples per Dijkstra source: the
// per-sample marginal distribution matches the paper's, with the usual
// minibatch-style correlation between samples sharing a source.
package sample

import (
	"math/rand"

	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/sssp"
)

// Sample is one training triple (v_s, v_t, φ(v_s, v_t)).
type Sample struct {
	S, T int32
	Dist float64
}

// SubgraphLevel draws n samples for hierarchy level `level`
// (Algorithm 2, lines 1–5): a uniformly random pair of level-`level`
// sub-graphs, then a uniformly random vertex from each. perSource
// samples share each Dijkstra source (its sub-graph pair partner is
// redrawn every sample).
func SubgraphLevel(h *partition.Hierarchy, level, n, perSource int, oracle *sssp.TruthOracle, rng *rand.Rand) []Sample {
	if perSource < 1 {
		perSource = 1
	}
	nodes := h.CoverAtLevel(level)
	out := make([]Sample, 0, n)
	for attempts := 0; len(out) < n && attempts < 20*(n+1); attempts++ {
		a := nodes[rng.Intn(len(nodes))]
		va := h.SubgraphVertices(a)
		s := va[rng.Intn(len(va))]
		dist := oracle.FromSource(s)
		for j := 0; j < perSource && len(out) < n; j++ {
			b := nodes[rng.Intn(len(nodes))]
			vb := h.SubgraphVertices(b)
			t := vb[rng.Intn(len(vb))]
			if d := dist[t]; t != s && d < sssp.Inf {
				out = append(out, Sample{S: s, T: t, Dist: d})
			}
		}
	}
	return out
}

// LandmarkBased draws n samples pairing a uniform landmark with a
// uniform vertex (Algorithm 2, lines 6–8). Labeling is cheap when the
// oracle's cache holds all landmark SSSP trees.
func LandmarkBased(g *graph.Graph, landmarks []int32, n int, oracle *sssp.TruthOracle, rng *rand.Rand) []Sample {
	out := make([]Sample, 0, n)
	nv := g.NumVertices()
	for attempts := 0; len(out) < n && attempts < 20*(n+1); attempts++ {
		u := landmarks[rng.Intn(len(landmarks))]
		v := int32(rng.Intn(nv))
		dist := oracle.FromSource(u)
		if d := dist[v]; d < sssp.Inf && v != u {
			out = append(out, Sample{S: u, T: v, Dist: d})
		}
	}
	return out
}

// RandomPairs draws n uniformly random vertex pairs with exact labels,
// grouping perSource samples per Dijkstra source. It backs both the
// naive selection baseline and validation sets.
func RandomPairs(g *graph.Graph, n, perSource int, oracle *sssp.TruthOracle, rng *rand.Rand) []Sample {
	if perSource < 1 {
		perSource = 1
	}
	nv := g.NumVertices()
	out := make([]Sample, 0, n)
	for attempts := 0; len(out) < n && attempts < 20*(n+1); attempts++ {
		s := int32(rng.Intn(nv))
		dist := oracle.FromSource(s)
		for j := 0; j < perSource && len(out) < n; j++ {
			t := int32(rng.Intn(nv))
			if d := dist[t]; t != s && d < sssp.Inf {
				out = append(out, Sample{S: s, T: t, Dist: d})
			}
		}
	}
	return out
}
