package sample

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/landmark"
	"repro/internal/partition"
	"repro/internal/sssp"
)

func testSetup(t *testing.T) (*graph.Graph, *partition.Hierarchy, *sssp.TruthOracle, *rand.Rand) {
	t.Helper()
	g, err := gen.Grid(14, 14, gen.DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	h, err := partition.BuildHierarchy(g, partition.DefaultHierConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	return g, h, sssp.NewTruthOracle(g, 64), rand.New(rand.NewSource(7))
}

func checkLabels(t *testing.T, g *graph.Graph, samples []Sample) {
	t.Helper()
	ws := sssp.NewWorkspace(g)
	for i, s := range samples {
		if s.S == s.T {
			t.Fatalf("sample %d pairs a vertex with itself", i)
		}
		want := ws.Distance(s.S, s.T)
		if math.Abs(want-s.Dist) > 1e-9 {
			t.Fatalf("sample %d label %v, exact %v", i, s.Dist, want)
		}
	}
}

func TestSubgraphLevelSamples(t *testing.T) {
	g, h, oracle, rng := testSetup(t)
	for _, lev := range []int{1, h.MaxDepth() / 2, h.MaxDepth()} {
		samples := SubgraphLevel(h, lev, 300, 16, oracle, rng)
		if len(samples) != 300 {
			t.Fatalf("level %d: got %d samples, want 300", lev, len(samples))
		}
		checkLabels(t, g, samples[:30])
	}
}

func TestLandmarkBasedSamples(t *testing.T) {
	g, _, oracle, rng := testSetup(t)
	ls, err := landmark.Random(g, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	samples := LandmarkBased(g, ls, 400, oracle, rng)
	if len(samples) != 400 {
		t.Fatalf("got %d samples, want 400", len(samples))
	}
	isLandmark := make(map[int32]bool)
	for _, l := range ls {
		isLandmark[l] = true
	}
	for i, s := range samples {
		if !isLandmark[s.S] {
			t.Fatalf("sample %d source %d is not a landmark", i, s.S)
		}
	}
	checkLabels(t, g, samples[:30])
	// With the oracle cache >= |U|, labeling needs at most |U| Dijkstras.
	_, misses := oracle.Stats()
	if misses > int64(len(ls)) {
		t.Fatalf("labeling used %d Dijkstras for %d landmarks", misses, len(ls))
	}
}

func TestRandomPairsSamples(t *testing.T) {
	g, _, oracle, rng := testSetup(t)
	samples := RandomPairs(g, 250, 8, oracle, rng)
	if len(samples) != 250 {
		t.Fatalf("got %d samples, want 250", len(samples))
	}
	checkLabels(t, g, samples[:30])
	// Sources should be diverse: more than 20 distinct sources among 250
	// samples at perSource=8.
	srcs := make(map[int32]bool)
	for _, s := range samples {
		srcs[s.S] = true
	}
	if len(srcs) < 20 {
		t.Fatalf("only %d distinct sources", len(srcs))
	}
}

func TestGridBucketsConstruction(t *testing.T) {
	g, _, _, _ := testSetup(t)
	gb, err := NewGridBuckets(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	if gb.K() != 8 || gb.NumBuckets() != 15 {
		t.Fatalf("K=%d R=%d, want 8/15", gb.K(), gb.NumBuckets())
	}
	// Bucket 0 (same cell) must exist on a dense grid graph.
	if gb.BucketEmpty(0) {
		t.Fatal("bucket 0 empty")
	}
	if !gb.BucketEmpty(-1) || !gb.BucketEmpty(gb.NumBuckets()) {
		t.Fatal("out-of-range buckets should read as empty")
	}
	if _, err := NewGridBuckets(g, 1); err == nil {
		t.Fatal("k=1 accepted")
	}
}

func TestGridBucketsSampleDistanceMonotone(t *testing.T) {
	// Average sampled network distance should grow with bucket index:
	// cell distance approximates network distance on a near-planar graph.
	g, _, oracle, rng := testSetup(t)
	gb, err := NewGridBuckets(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	mean := func(d int) float64 {
		samples := gb.FromBucket(d, 120, 8, oracle, rng)
		if len(samples) == 0 {
			return -1
		}
		var s float64
		for _, p := range samples {
			s += p.Dist
		}
		return s / float64(len(samples))
	}
	m1, m6, m12 := mean(1), mean(6), mean(12)
	if m1 < 0 || m6 < 0 || m12 < 0 {
		t.Skip("bucket empty on this layout")
	}
	if !(m1 < m6 && m6 < m12) {
		t.Fatalf("bucket means not monotone: %v %v %v", m1, m6, m12)
	}
	checkLabels(t, g, gb.FromBucket(3, 20, 4, oracle, rng))
}

func TestErrorBasedLocalPicksWorstBucket(t *testing.T) {
	g, _, oracle, rng := testSetup(t)
	gb, err := NewGridBuckets(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	R := gb.NumBuckets()
	errs := make([]float64, R)
	worst := 4
	errs[worst] = 1.0
	errs[2] = 0.1
	samples := gb.ErrorBased(errs, Local, 100, 8, oracle, rng)
	if len(samples) == 0 {
		t.Fatal("no samples")
	}
	// All samples must come from bucket `worst`: verify their cell
	// distance. Recompute cells from coordinates.
	want := gb.FromBucket(worst, 5, 1, oracle, rng)
	_ = want
	var lo, hi float64 = math.Inf(1), 0
	for _, s := range gb.FromBucket(worst, 200, 8, oracle, rng) {
		if s.Dist < lo {
			lo = s.Dist
		}
		if s.Dist > hi {
			hi = s.Dist
		}
	}
	for i, s := range samples {
		if s.Dist < lo*0.3 || s.Dist > hi*1.7 {
			t.Fatalf("sample %d distance %v outside bucket range [%v,%v]", i, s.Dist, lo, hi)
		}
	}
}

func TestErrorBasedGlobalSpreads(t *testing.T) {
	g, _, oracle, rng := testSetup(t)
	gb, err := NewGridBuckets(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	R := gb.NumBuckets()
	errs := make([]float64, R)
	for d := 0; d < R; d++ {
		errs[d] = 1
	}
	samples := gb.ErrorBased(errs, Global, 300, 8, oracle, rng)
	if len(samples) < 200 {
		t.Fatalf("global selection yielded only %d samples", len(samples))
	}
	// Wrong-length error vector is rejected.
	if got := gb.ErrorBased(errs[:R-1], Global, 10, 1, oracle, rng); got != nil {
		t.Fatal("short error vector accepted")
	}
	// Zero errors yield nothing.
	if got := gb.ErrorBased(make([]float64, R), Global, 10, 1, oracle, rng); len(got) != 0 {
		t.Fatal("zero errors produced samples")
	}
}

func TestProbeErrors(t *testing.T) {
	g, _, oracle, rng := testSetup(t)
	gb, err := NewGridBuckets(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	// A 10%-off estimator probes at ~10% everywhere non-empty.
	ws := sssp.NewWorkspace(g)
	est := func(s, u int32) float64 { return ws.Distance(s, u) * 1.1 }
	errs := gb.ProbeErrors(est, 10, 4, oracle, rng)
	if len(errs) != gb.NumBuckets() {
		t.Fatalf("got %d bucket errors", len(errs))
	}
	nonEmpty := 0
	for d, e := range errs {
		if gb.BucketEmpty(d) {
			continue
		}
		nonEmpty++
		if e > 0 && math.Abs(e-0.1) > 0.02 {
			t.Fatalf("bucket %d error %v, want ~0.1", d, e)
		}
	}
	if nonEmpty == 0 {
		t.Fatal("all buckets empty")
	}
}

func TestModeString(t *testing.T) {
	if Local.String() != "local" || Global.String() != "global" {
		t.Fatal("mode names wrong")
	}
	if Mode(9).String() == "" {
		t.Fatal("unknown mode should still render")
	}
}
