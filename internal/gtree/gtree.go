// Package gtree implements a G-tree-family index (Zhong et al.; the
// V-tree of Shen et al. extends it with per-node object bookkeeping,
// included here), the paper's kNN comparator.
//
// The index reuses the partition hierarchy. Every tree node X keeps
//
//   - B(X): its borders — vertices of X adjacent to vertices outside X
//     (for a vertex node, the vertex itself);
//   - union(X): the concatenation of its children's border lists;
//   - a |union(X)|² matrix of exact global shortest-path distances.
//
// Matrices are built in two passes. Pass A assembles within-subgraph
// distances bottom-up over border graphs (child matrices restricted to
// child borders, plus the cut edges between children). Pass B runs
// top-down and re-solves each node's border graph with extra complete
// edges among B(X) weighted by the parent's already-global distances,
// so every stored entry becomes a true global distance. Leaves need no
// special handling: a leaf's children are vertex nodes, so its union is
// its whole vertex set and its matrix an exact all-pairs table.
//
// Distance queries climb from both endpoints' vertex nodes to their
// LCA and join through the LCA matrix. kNN and range queries over an
// object set run best-first over exact subtree lower bounds, as in
// V-tree.
package gtree

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/pqueue"
)

// Index is a built G-tree with object bookkeeping.
type Index struct {
	g *graph.Graph
	h *partition.Hierarchy

	// Per hierarchy node; vertex nodes keep nil union/mat.
	union    [][]int32       // concatenated children borders (vertex ids)
	unionPos []map[int32]int // vertex -> index within union
	childOff [][]int32       // child i occupies union[childOff[i]:childOff[i+1]]
	borders  [][]int32       // positions of B(node) within union
	bVerts   [][]int32       // B(node) as vertex ids (borderSet)
	mat      [][]float64     // |union|² global distances, row-major

	isObj    []bool
	objCount []int32

	matBytes int64
}

// Build constructs the index over g with the given partition hierarchy
// and an initial object set (may be nil; see SetObjects).
func Build(g *graph.Graph, h *partition.Hierarchy, objects []int32) (*Index, error) {
	if h.Graph() != g {
		return nil, fmt.Errorf("gtree: hierarchy was built for a different graph")
	}
	n := g.NumVertices()
	nn := h.NumNodes()
	idx := &Index{
		g: g, h: h,
		union:    make([][]int32, nn),
		unionPos: make([]map[int32]int, nn),
		childOff: make([][]int32, nn),
		borders:  make([][]int32, nn),
		bVerts:   make([][]int32, nn),
		mat:      make([][]float64, nn),
	}

	// ---- Border sets. v is a border of its ancestors at path indices
	// >= mc(v), the minimum common-prefix length with any neighbor.
	for v := int32(0); v < int32(n); v++ {
		anc := h.Ancestors(v)
		mc := int32(len(anc) - 1) // the vertex node itself is always v's border
		ts, _ := g.Neighbors(v)
		for _, u := range ts {
			if c := commonPrefix(anc, h.Ancestors(u)); c < mc {
				mc = c
			}
		}
		for d := mc; d < int32(len(anc)); d++ {
			idx.bVerts[anc[d]] = append(idx.bVerts[anc[d]], v)
		}
	}

	// ---- union(X), positions, and border positions per non-vertex node.
	for node := int32(0); node < int32(nn); node++ {
		if h.IsVertexNode(node) {
			continue
		}
		kids := h.Children(node)
		off := make([]int32, len(kids)+1)
		var u []int32
		for i, c := range kids {
			off[i] = int32(len(u))
			u = append(u, idx.bVerts[c]...)
		}
		off[len(kids)] = int32(len(u))
		idx.union[node] = u
		idx.childOff[node] = off
		pos := make(map[int32]int, len(u))
		for i, v := range u {
			pos[v] = i
		}
		idx.unionPos[node] = pos
		b := make([]int32, len(idx.bVerts[node]))
		for i, v := range idx.bVerts[node] {
			b[i] = int32(pos[v])
		}
		idx.borders[node] = b
	}

	// ---- Pass A: within-subgraph matrices, deepest nodes first.
	order := nodesByDepthDesc(h)
	within := make([][]float64, nn)
	for _, node := range order {
		within[node] = idx.solveNode(node, within, nil)
	}

	// ---- Pass B: global matrices, shallowest first, refining through
	// the parent's (already global) matrix.
	for i := len(order) - 1; i >= 0; i-- {
		node := order[i]
		idx.mat[node] = idx.solveNode(node, within, idx.mat)
		idx.matBytes += int64(len(idx.mat[node])) * 8
	}

	idx.SetObjects(objects)
	return idx, nil
}

// commonPrefix returns the shared-prefix length of two ancestor paths.
func commonPrefix(a, b []int32) int32 {
	m := len(a)
	if len(b) < m {
		m = len(b)
	}
	var i int32
	for int(i) < m && a[i] == b[i] {
		i++
	}
	return i
}

// nodesByDepthDesc returns non-vertex hierarchy nodes deepest-first.
func nodesByDepthDesc(h *partition.Hierarchy) []int32 {
	var nodes []int32
	for node := int32(0); node < int32(h.NumNodes()); node++ {
		if !h.IsVertexNode(node) {
			nodes = append(nodes, node)
		}
	}
	sort.Slice(nodes, func(i, j int) bool {
		di, dj := h.Depth(nodes[i]), h.Depth(nodes[j])
		if di != dj {
			return di > dj
		}
		return nodes[i] < nodes[j]
	})
	return nodes
}

// solveNode computes the |union|² distance matrix of node by running
// Dijkstra from every union member over the node's border graph. With
// globalMats == nil it produces within-subgraph distances (pass A);
// otherwise it adds complete edges among B(node) weighted by the
// parent's global matrix (pass B).
func (idx *Index) solveNode(node int32, within [][]float64, globalMats [][]float64) []float64 {
	h := idx.h
	u := idx.union[node]
	m := len(u)
	out := make([]float64, m*m)
	for i := range out {
		out[i] = math.Inf(1)
	}
	if m == 0 {
		return out
	}

	type bedge struct {
		to int32
		w  float64
	}
	adj := make([][]bedge, m)
	addEdge := func(a, b int, w float64) {
		if a == b || math.IsInf(w, 1) {
			return
		}
		adj[a] = append(adj[a], bedge{to: int32(b), w: w})
		adj[b] = append(adj[b], bedge{to: int32(a), w: w})
	}

	// Within-child edges from each child's pass-A matrix restricted to
	// its borders (the child's segment of union).
	kids := h.Children(node)
	off := idx.childOff[node]
	for ci, c := range kids {
		lo, hi := int(off[ci]), int(off[ci+1])
		if h.IsVertexNode(c) || hi-lo <= 1 {
			continue
		}
		cm := within[c]
		cPos := idx.unionPos[c]
		cu := len(idx.union[c])
		for i := lo; i < hi; i++ {
			pi := cPos[u[i]]
			for j := i + 1; j < hi; j++ {
				addEdge(i, j, cm[pi*cu+cPos[u[j]]])
			}
		}
	}

	// Cut edges: original graph edges between different children of
	// node (common ancestor prefix exactly depth(node)+1). Both
	// endpoints are borders of their children, hence in union.
	depth := h.Depth(node)
	pos := idx.unionPos[node]
	for i := 0; i < m; i++ {
		v := u[i]
		ancV := h.Ancestors(v)
		ts, ws := idx.g.Neighbors(v)
		for ei, nb := range ts {
			if nb <= v {
				continue // add each edge once
			}
			if commonPrefix(ancV, h.Ancestors(nb)) == depth+1 {
				if j, ok := pos[nb]; ok {
					addEdge(i, j, ws[ei])
				}
			}
		}
	}

	// Parent refinement: global distances between node's own borders.
	if globalMats != nil {
		if parent := h.Parent(node); parent >= 0 {
			pMat := globalMats[parent]
			pPos := idx.unionPos[parent]
			pm := len(idx.union[parent])
			bs := idx.bVerts[node]
			for i := 0; i < len(bs); i++ {
				pi := pPos[bs[i]]
				for j := i + 1; j < len(bs); j++ {
					w := pMat[pi*pm+pPos[bs[j]]]
					addEdge(int(idx.borders[node][i]), int(idx.borders[node][j]), w)
				}
			}
		}
	}

	// Dijkstra from every union member.
	heap := pqueue.New(m)
	dist := make([]float64, m)
	for src := 0; src < m; src++ {
		for i := range dist {
			dist[i] = math.Inf(1)
		}
		dist[src] = 0
		heap.Reset()
		heap.Push(int32(src), 0)
		for heap.Len() > 0 {
			v, d := heap.Pop()
			for _, e := range adj[v] {
				if nd := d + e.w; nd < dist[e.to] {
					dist[e.to] = nd
					heap.Push(e.to, nd)
				}
			}
		}
		copy(out[src*m:(src+1)*m], dist)
	}
	return out
}

// SetObjects replaces the object set used by KNN and Range.
func (idx *Index) SetObjects(objects []int32) {
	n := idx.g.NumVertices()
	idx.isObj = make([]bool, n)
	idx.objCount = make([]int32, idx.h.NumNodes())
	for _, o := range objects {
		if o < 0 || int(o) >= n || idx.isObj[o] {
			continue
		}
		idx.isObj[o] = true
		for _, a := range idx.h.Ancestors(o) {
			idx.objCount[a]++
		}
	}
}

// AddObject inserts a vertex into the object set (idempotent). This is
// the V-tree update path: object churn only touches ancestor counters,
// never the distance matrices.
func (idx *Index) AddObject(v int32) bool {
	if v < 0 || int(v) >= idx.g.NumVertices() || idx.isObj[v] {
		return false
	}
	idx.isObj[v] = true
	for _, a := range idx.h.Ancestors(v) {
		idx.objCount[a]++
	}
	return true
}

// RemoveObject deletes a vertex from the object set (idempotent).
func (idx *Index) RemoveObject(v int32) bool {
	if v < 0 || int(v) >= idx.g.NumVertices() || !idx.isObj[v] {
		return false
	}
	idx.isObj[v] = false
	for _, a := range idx.h.Ancestors(v) {
		idx.objCount[a]--
	}
	return true
}

// MoveObject relocates an object from one vertex to another — the
// V-tree moving-taxi update. It reports whether the move applied (the
// source must be an object and the destination must not already be).
func (idx *Index) MoveObject(from, to int32) bool {
	if from == to {
		return idx.isObj[from]
	}
	if to < 0 || int(to) >= idx.g.NumVertices() || idx.isObj[to] {
		return false
	}
	if !idx.RemoveObject(from) {
		return false
	}
	idx.AddObject(to)
	return true
}

// NumObjects returns the current object count.
func (idx *Index) NumObjects() int {
	if len(idx.objCount) == 0 {
		return 0
	}
	return int(idx.objCount[0])
}

// childIndex finds the slot of child within parent's child list.
func (idx *Index) childIndex(parent, child int32) int {
	for i, c := range idx.h.Children(parent) {
		if c == child {
			return i
		}
	}
	return -1
}

// climbStep lifts a distance vector over B(cur) (cur = anc[d]) to a
// vector over B(parent) using the parent's global matrix.
func (idx *Index) climbStep(parent, cur int32, vec []float64) []float64 {
	m := len(idx.union[parent])
	ci := idx.childIndex(parent, cur)
	lo := int(idx.childOff[parent][ci])
	bs := idx.borders[parent]
	out := make([]float64, len(bs))
	mat := idx.mat[parent]
	for k, bp := range bs {
		best := math.Inf(1)
		for j := range vec {
			if c := vec[j] + mat[(lo+j)*m+int(bp)]; c < best {
				best = c
			}
		}
		out[k] = best
	}
	return out
}

// Distance returns the exact shortest-path distance between s and t
// (+Inf when disconnected).
func (idx *Index) Distance(s, t int32) float64 {
	if s == t {
		return 0
	}
	h := idx.h
	ancS := h.Ancestors(s)
	ancT := h.Ancestors(t)
	c := int(commonPrefix(ancS, ancT))
	if c == 0 {
		return math.Inf(1) // different hierarchy roots cannot happen, defensive
	}
	lca := ancS[c-1]

	climb := func(anc []int32) []float64 {
		vec := []float64{0} // over B(vertex node) = {vertex}
		for d := len(anc) - 1; d > c; d-- {
			vec = idx.climbStep(anc[d-1], anc[d], vec)
		}
		return vec
	}
	sVec := climb(ancS)
	tVec := climb(ancT)

	m := len(idx.union[lca])
	mat := idx.mat[lca]
	sLo := int(idx.childOff[lca][idx.childIndex(lca, ancS[c])])
	tLo := int(idx.childOff[lca][idx.childIndex(lca, ancT[c])])
	best := math.Inf(1)
	for j := range sVec {
		for k := range tVec {
			if d := sVec[j] + mat[(sLo+j)*m+(tLo+k)] + tVec[k]; d < best {
				best = d
			}
		}
	}
	return best
}

// frontierEntry is a best-first traversal item.
type frontierEntry struct {
	node int32
	vec  []float64 // distances from the query source to B(node)
}

// traverse runs the best-first exploration shared by KNN and Range.
// emit receives (object, exact distance) in non-decreasing distance
// order when ordered is true; expand decides whether a subtree with the
// given lower bound should be explored. It stops when emit returns
// false.
func (idx *Index) traverse(s int32, expand func(bound float64) bool, emit func(obj int32, d float64) bool) {
	h := idx.h
	ancS := h.Ancestors(s)
	var pq pqueue.FloatHeap
	arena := make([]frontierEntry, 0, 64)
	push := func(node int32, vec []float64) {
		if idx.objCount[node] == 0 {
			return
		}
		bound := math.Inf(1)
		for _, v := range vec {
			if v < bound {
				bound = v
			}
		}
		if !expand(bound) {
			return
		}
		arena = append(arena, frontierEntry{node: node, vec: vec})
		pq.Push(bound, int64(len(arena)-1))
	}

	// Seed: the source's own vertex node, then every sibling subtree on
	// the way up, lifting the border vector level by level.
	push(ancS[len(ancS)-1], []float64{0})
	vec := []float64{0}
	cur := ancS[len(ancS)-1]
	for d := len(ancS) - 2; d >= 0; d-- {
		parent := ancS[d]
		m := len(idx.union[parent])
		mat := idx.mat[parent]
		ciCur := idx.childIndex(parent, cur)
		loCur := int(idx.childOff[parent][ciCur])
		for ci, child := range h.Children(parent) {
			if child == cur || idx.objCount[child] == 0 {
				continue
			}
			lo, hi := int(idx.childOff[parent][ci]), int(idx.childOff[parent][ci+1])
			cvec := make([]float64, hi-lo)
			for k := range cvec {
				best := math.Inf(1)
				for j := range vec {
					if c := vec[j] + mat[(loCur+j)*m+(lo+k)]; c < best {
						best = c
					}
				}
				cvec[k] = best
			}
			push(child, cvec)
		}
		vec = idx.climbStep(parent, cur, vec)
		cur = parent
	}

	// Best-first expansion.
	for pq.Len() > 0 {
		_, ai := pq.Pop()
		e := arena[ai]
		if idx.h.IsVertexNode(e.node) {
			v := idx.h.VertexID(e.node)
			if idx.isObj[v] {
				if !emit(v, e.vec[0]) {
					return
				}
			}
			continue
		}
		m := len(idx.union[e.node])
		mat := idx.mat[e.node]
		bs := idx.borders[e.node]
		for ci, child := range h.Children(e.node) {
			if idx.objCount[child] == 0 {
				continue
			}
			lo, hi := int(idx.childOff[e.node][ci]), int(idx.childOff[e.node][ci+1])
			cvec := make([]float64, hi-lo)
			for k := range cvec {
				best := math.Inf(1)
				for j, bp := range bs {
					if c := e.vec[j] + mat[int(bp)*m+(lo+k)]; c < best {
						best = c
					}
				}
				cvec[k] = best
			}
			push(child, cvec)
		}
	}
}

// KNN returns up to k objects nearest to s by exact network distance,
// nearest first.
func (idx *Index) KNN(s int32, k int) []int32 {
	if k <= 0 {
		return nil
	}
	out := make([]int32, 0, k)
	idx.traverse(s,
		func(bound float64) bool { return !math.IsInf(bound, 1) },
		func(obj int32, d float64) bool {
			out = append(out, obj)
			return len(out) < k
		})
	return out
}

// Range returns all objects within network distance tau of s, sorted by
// vertex id.
func (idx *Index) Range(s int32, tau float64) []int32 {
	if tau < 0 {
		return nil
	}
	var out []int32
	idx.traverse(s,
		func(bound float64) bool { return bound <= tau },
		func(obj int32, d float64) bool {
			if d <= tau {
				out = append(out, obj)
			}
			return true
		})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IndexBytes reports the distance-matrix storage in bytes (the
// dominating cost, mirroring how Table IV accounts V-tree).
func (idx *Index) IndexBytes() int64 { return idx.matBytes }
