package gtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/sssp"
)

func testSetup(t *testing.T, rows int, fanout, leaf int) (*graph.Graph, *Index) {
	t.Helper()
	g, err := gen.Grid(rows, rows, gen.DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	h, err := partition.BuildHierarchy(g, partition.HierConfig{Fanout: fanout, Leaf: leaf, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := Build(g, h, nil)
	if err != nil {
		t.Fatal(err)
	}
	return g, idx
}

func TestDistanceMatchesDijkstra(t *testing.T) {
	g, idx := testSetup(t, 13, 4, 24)
	ws := sssp.NewWorkspace(g)
	rng := rand.New(rand.NewSource(2))
	n := g.NumVertices()
	for trial := 0; trial < 400; trial++ {
		s := int32(rng.Intn(n))
		u := int32(rng.Intn(n))
		want := ws.Distance(s, u)
		got := idx.Distance(s, u)
		if math.Abs(want-got) > 1e-9 {
			t.Fatalf("(%d,%d): gtree %v, Dijkstra %v", s, u, got, want)
		}
	}
}

func TestDistanceAllPairsTiny(t *testing.T) {
	g, idx := testSetup(t, 6, 2, 6)
	ws := sssp.NewWorkspace(g)
	n := int32(g.NumVertices())
	dist := make([]float64, n)
	for s := int32(0); s < n; s++ {
		dist = ws.FromSource(s, dist)
		for u := int32(0); u < n; u++ {
			if got := idx.Distance(s, u); math.Abs(dist[u]-got) > 1e-9 {
				t.Fatalf("(%d,%d): gtree %v, exact %v", s, u, got, dist[u])
			}
		}
	}
}

func TestKNNMatchesBruteForce(t *testing.T) {
	g, idx := testSetup(t, 12, 4, 24)
	rng := rand.New(rand.NewSource(3))
	n := g.NumVertices()
	var objects []int32
	for v := int32(0); v < int32(n); v++ {
		if rng.Intn(4) == 0 {
			objects = append(objects, v)
		}
	}
	idx.SetObjects(objects)
	ws := sssp.NewWorkspace(g)
	for trial := 0; trial < 40; trial++ {
		s := int32(rng.Intn(n))
		k := 1 + rng.Intn(8)
		got := idx.KNN(s, k)

		dist := ws.FromSource(s, nil)
		ds := make([]float64, len(objects))
		for i, o := range objects {
			ds[i] = dist[o]
		}
		sort.Float64s(ds)
		want := ds[:min(k, len(ds))]

		if len(got) != len(want) {
			t.Fatalf("src %d k %d: got %d, want %d", s, k, len(got), len(want))
		}
		prev := -1.0
		for i, o := range got {
			d := dist[o]
			if d < prev-1e-9 {
				t.Fatalf("kNN not sorted at %d", i)
			}
			prev = d
			if math.Abs(d-want[i]) > 1e-9 {
				t.Fatalf("src %d k %d pos %d: dist %v, want %v", s, k, i, d, want[i])
			}
		}
	}
}

func TestRangeMatchesBruteForce(t *testing.T) {
	g, idx := testSetup(t, 12, 4, 24)
	rng := rand.New(rand.NewSource(4))
	n := g.NumVertices()
	var objects []int32
	for v := int32(0); v < int32(n); v++ {
		if rng.Intn(3) == 0 {
			objects = append(objects, v)
		}
	}
	idx.SetObjects(objects)
	ws := sssp.NewWorkspace(g)
	for trial := 0; trial < 40; trial++ {
		s := int32(rng.Intn(n))
		dist := ws.FromSource(s, nil)
		tau := (0.05 + rng.Float64()*0.4) * maxFinite(dist)
		got := idx.Range(s, tau)
		var want []int32
		for _, o := range objects {
			if dist[o] <= tau {
				want = append(want, o)
			}
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			t.Fatalf("src %d tau %v: got %d, want %d", s, tau, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("src %d pos %d: %d vs %d", s, i, got[i], want[i])
			}
		}
	}
}

func maxFinite(ds []float64) float64 {
	m := 0.0
	for _, d := range ds {
		if !math.IsInf(d, 1) && d > m {
			m = d
		}
	}
	return m
}

func TestObjectEdgeCases(t *testing.T) {
	g, idx := testSetup(t, 8, 4, 16)
	idx.SetObjects([]int32{5})
	if got := idx.KNN(5, 1); len(got) != 1 || got[0] != 5 {
		t.Fatalf("KNN(5,1) with self as only object = %v", got)
	}
	if got := idx.KNN(0, 0); got != nil {
		t.Fatalf("k=0 returned %v", got)
	}
	if got := idx.KNN(0, 10); len(got) != 1 {
		t.Fatalf("k>|objects| returned %d results", len(got))
	}
	if got := idx.Range(0, -1); got != nil {
		t.Fatalf("negative tau returned %v", got)
	}
	// No objects at all.
	idx.SetObjects(nil)
	if got := idx.KNN(0, 3); len(got) != 0 {
		t.Fatalf("empty object set returned %v", got)
	}
	// Duplicate and out-of-range objects are ignored.
	idx.SetObjects([]int32{1, 1, -5, int32(g.NumVertices() + 10)})
	if got := idx.KNN(0, 5); len(got) != 1 || got[0] != 1 {
		t.Fatalf("dedup/bounds handling: %v", got)
	}
}

func TestMismatchedHierarchyRejected(t *testing.T) {
	g1, err := gen.Grid(6, 6, gen.DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := gen.Grid(6, 6, gen.DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	h, err := partition.BuildHierarchy(g1, partition.DefaultHierConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(g2, h, nil); err == nil {
		t.Fatal("foreign hierarchy accepted")
	}
}

func TestIndexBytes(t *testing.T) {
	_, idx := testSetup(t, 8, 4, 16)
	if idx.IndexBytes() <= 0 {
		t.Fatal("IndexBytes must be positive")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestDynamicObjectUpdates(t *testing.T) {
	g, idx := testSetup(t, 10, 4, 16)
	rng := rand.New(rand.NewSource(9))
	idx.SetObjects([]int32{3, 7, 11})
	if idx.NumObjects() != 3 {
		t.Fatalf("NumObjects = %d, want 3", idx.NumObjects())
	}
	if idx.AddObject(3) {
		t.Fatal("duplicate add should report false")
	}
	if !idx.AddObject(20) || idx.NumObjects() != 4 {
		t.Fatal("add failed")
	}
	if !idx.RemoveObject(7) || idx.NumObjects() != 3 {
		t.Fatal("remove failed")
	}
	if idx.RemoveObject(7) {
		t.Fatal("double remove should report false")
	}
	if !idx.MoveObject(11, 30) {
		t.Fatal("move failed")
	}
	if idx.MoveObject(99, 100) {
		t.Fatal("moving a non-object should fail")
	}
	if idx.MoveObject(3, 20) {
		t.Fatal("moving onto an existing object should fail")
	}
	if !idx.MoveObject(3, 3) {
		t.Fatal("self-move of an object should be a no-op success")
	}

	// After a burst of random moves, kNN must still agree with brute
	// force over the live object set.
	ws := sssp.NewWorkspace(g)
	for i := 0; i < 200; i++ {
		from := int32(rng.Intn(g.NumVertices()))
		to := int32(rng.Intn(g.NumVertices()))
		idx.MoveObject(from, to)
	}
	var live []int32
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		if idx.isObj[v] {
			live = append(live, v)
		}
	}
	if len(live) != idx.NumObjects() {
		t.Fatalf("counter drift: %d live vs %d counted", len(live), idx.NumObjects())
	}
	for trial := 0; trial < 20; trial++ {
		s := int32(rng.Intn(g.NumVertices()))
		got := idx.KNN(s, 3)
		dist := ws.FromSource(s, nil)
		ds := make([]float64, len(live))
		for i, o := range live {
			ds[i] = dist[o]
		}
		sort.Float64s(ds)
		want := ds[:min(3, len(ds))]
		if len(got) != len(want) {
			t.Fatalf("got %d results, want %d", len(got), len(want))
		}
		for i, o := range got {
			if math.Abs(dist[o]-want[i]) > 1e-9 {
				t.Fatalf("post-move kNN pos %d: %v vs %v", i, dist[o], want[i])
			}
		}
	}
}

func BenchmarkGtreeDistance(b *testing.B) {
	g, err := gen.Grid(30, 30, gen.DefaultConfig(1))
	if err != nil {
		b.Fatal(err)
	}
	h, err := partition.BuildHierarchy(g, partition.DefaultHierConfig(1))
	if err != nil {
		b.Fatal(err)
	}
	idx, err := Build(g, h, nil)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	n := g.NumVertices()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.Distance(int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
}

func BenchmarkGtreeKNN(b *testing.B) {
	g, err := gen.Grid(30, 30, gen.DefaultConfig(1))
	if err != nil {
		b.Fatal(err)
	}
	h, err := partition.BuildHierarchy(g, partition.DefaultHierConfig(1))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	var objects []int32
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		if rng.Intn(10) == 0 {
			objects = append(objects, v)
		}
	}
	idx, err := Build(g, h, objects)
	if err != nil {
		b.Fatal(err)
	}
	n := g.NumVertices()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.KNN(int32(rng.Intn(n)), 5)
	}
}
