// Package vecmath implements the L_p vector metrics of Section III-C
// and the L1 subgradients used by SGD training. The L1 kernel is the
// paper's query path — its cost is the advertised 60–150 ns per query —
// so it is manually unrolled.
package vecmath

import "math"

// L1 returns the Manhattan distance between equal-length vectors a and b.
// The single-pass loop with a hoisted bounds check outperforms manual
// unrolling under the current compiler (see BenchmarkL1NaiveDim64).
func L1(a, b []float64) float64 {
	if len(a) == 0 {
		return 0
	}
	b = b[:len(a)] // hoist the bounds check out of the loop
	var s float64
	for i, ai := range a {
		s += math.Abs(ai - b[i])
	}
	return s
}

// L2 returns the Euclidean distance between equal-length vectors a and b.
func L2(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Lp returns the general Minkowski distance of order p (p > 0) between
// equal-length vectors a and b. p = 1 and p = 2 dispatch to the fast
// kernels.
func Lp(a, b []float64, p float64) float64 {
	switch p {
	case 1:
		return L1(a, b)
	case 2:
		return L2(a, b)
	}
	var s float64
	for i := range a {
		s += math.Pow(math.Abs(a[i]-b[i]), p)
	}
	return math.Pow(s, 1/p)
}

// Sign returns -1, 0 or +1 matching the sign of x. It is the
// subgradient of |x| used in the L1 training updates.
func Sign(x float64) float64 {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	default:
		return 0
	}
}

// LpGrad writes into grad the partial derivatives of ||a-b||_p with
// respect to a (the derivative w.r.t. b is the negation). For p = 1 the
// subgradient convention Sign(a_i-b_i) is used. dist must be
// Lp(a, b, p); passing it avoids recomputation. If dist is zero the
// gradient is zero.
func LpGrad(grad, a, b []float64, p, dist float64) {
	if dist == 0 {
		for i := range grad {
			grad[i] = 0
		}
		return
	}
	switch p {
	case 1:
		for i := range grad {
			grad[i] = Sign(a[i] - b[i])
		}
	case 2:
		for i := range grad {
			grad[i] = (a[i] - b[i]) / dist
		}
	default:
		// d/da_i (sum |a_i-b_i|^p)^(1/p)
		//   = |a_i-b_i|^(p-1) * sign(a_i-b_i) * dist^(1-p)
		// For p < 1 the per-coordinate derivative diverges as the
		// coordinates meet; clamp it so SGD on sub-metric orders (the
		// Figure 9 L0.5 point) stays finite instead of exploding.
		const gradClamp = 4.0
		scale := math.Pow(dist, 1-p)
		for i := range grad {
			d := a[i] - b[i]
			g := math.Pow(math.Abs(d), p-1) * Sign(d) * scale
			if g > gradClamp {
				g = gradClamp
			} else if g < -gradClamp {
				g = -gradClamp
			}
			grad[i] = g
		}
	}
}

// AddScaled computes dst[i] += scale * src[i].
func AddScaled(dst, src []float64, scale float64) {
	for i := range dst {
		dst[i] += scale * src[i]
	}
}

// Sum accumulates src into dst: dst[i] += src[i].
func Sum(dst, src []float64) {
	for i := range dst {
		dst[i] += src[i]
	}
}

// Dot returns the inner product of equal-length vectors a and b.
func Dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm1 returns the L1 norm of v.
func Norm1(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}
