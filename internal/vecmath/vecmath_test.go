package vecmath

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestL1Known(t *testing.T) {
	a := []float64{0, 0, 3, -2, 5}
	b := []float64{1, -1, 3, 2, 0}
	if got := L1(a, b); !almostEqual(got, 1+1+0+4+5, 1e-12) {
		t.Fatalf("L1 = %v, want 11", got)
	}
}

func TestL2Known(t *testing.T) {
	a := []float64{0, 0}
	b := []float64{3, 4}
	if got := L2(a, b); !almostEqual(got, 5, 1e-12) {
		t.Fatalf("L2 = %v, want 5", got)
	}
}

func TestLpDispatchesAndGeneralizes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := make([]float64, 17)
	b := make([]float64, 17)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	if got, want := Lp(a, b, 1), L1(a, b); !almostEqual(got, want, 1e-12) {
		t.Fatalf("Lp(1) = %v, L1 = %v", got, want)
	}
	if got, want := Lp(a, b, 2), L2(a, b); !almostEqual(got, want, 1e-12) {
		t.Fatalf("Lp(2) = %v, L2 = %v", got, want)
	}
	// Generic path at p=2 must agree with the fast kernel.
	var s float64
	for i := range a {
		s += math.Pow(math.Abs(a[i]-b[i]), 2.0)
	}
	if got := math.Pow(s, 0.5); !almostEqual(got, L2(a, b), 1e-9) {
		t.Fatalf("generic p=2 = %v, L2 = %v", got, L2(a, b))
	}
}

// TestMetricAxioms checks non-negativity, symmetry and the triangle
// inequality (the Section III-C properties) for several p.
func TestMetricAxioms(t *testing.T) {
	// Bound raw quick-check inputs to a finite range so intermediate
	// powers cannot overflow.
	clamp := func(v [6]float64) []float64 {
		out := make([]float64, len(v))
		for i, x := range v {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 0
			}
			out[i] = math.Mod(x, 1e6)
		}
		return out
	}
	for _, p := range []float64{1, 2, 3, 5} {
		p := p
		f := func(ar, br, cr [6]float64) bool {
			a, b, c := clamp(ar), clamp(br), clamp(cr)
			dab := Lp(a, b, p)
			dba := Lp(b, a, p)
			dac := Lp(a, c, p)
			dcb := Lp(c, b, p)
			if dab < 0 {
				return false
			}
			if !almostEqual(dab, dba, 1e-9*(1+dab)) {
				return false
			}
			// triangle inequality with tolerance
			return dab <= dac+dcb+1e-9*(1+dab)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Fatalf("p=%v: %v", p, err)
		}
	}
}

func TestIdentityOfIndiscernibles(t *testing.T) {
	a := []float64{1, -2, 3}
	if d := L1(a, a); d != 0 {
		t.Fatalf("L1(a,a) = %v, want 0", d)
	}
	if d := Lp(a, a, 3); d != 0 {
		t.Fatalf("Lp(a,a,3) = %v, want 0", d)
	}
}

func TestL1UnrollTailSizes(t *testing.T) {
	// The unrolled kernel must agree with a simple loop for every length
	// modulo 4.
	rng := rand.New(rand.NewSource(2))
	for n := 0; n <= 13; n++ {
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		var want float64
		for i := range a {
			want += math.Abs(a[i] - b[i])
		}
		if got := L1(a, b); !almostEqual(got, want, 1e-12) {
			t.Fatalf("n=%d: L1 = %v, want %v", n, got, want)
		}
	}
}

func TestSign(t *testing.T) {
	if Sign(3) != 1 || Sign(-0.5) != -1 || Sign(0) != 0 {
		t.Fatal("Sign wrong")
	}
}

// TestLpGradNumerical verifies the analytic gradients against central
// finite differences.
func TestLpGradNumerical(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, p := range []float64{1, 2, 3} {
		a := make([]float64, 8)
		b := make([]float64, 8)
		for i := range a {
			a[i] = rng.NormFloat64() + 2 // keep coordinates apart so |.| is smooth
			b[i] = rng.NormFloat64() - 2
		}
		dist := Lp(a, b, p)
		grad := make([]float64, 8)
		LpGrad(grad, a, b, p, dist)
		const h = 1e-6
		for i := range a {
			orig := a[i]
			a[i] = orig + h
			up := Lp(a, b, p)
			a[i] = orig - h
			down := Lp(a, b, p)
			a[i] = orig
			numeric := (up - down) / (2 * h)
			if !almostEqual(grad[i], numeric, 1e-4) {
				t.Fatalf("p=%v dim %d: analytic %v numeric %v", p, i, grad[i], numeric)
			}
		}
	}
}

func TestLpGradZeroDistance(t *testing.T) {
	a := []float64{1, 2}
	grad := []float64{9, 9}
	LpGrad(grad, a, a, 2, 0)
	if grad[0] != 0 || grad[1] != 0 {
		t.Fatalf("zero-distance gradient = %v, want zeros", grad)
	}
}

func TestAddScaledSumDotNorm(t *testing.T) {
	dst := []float64{1, 2, 3}
	AddScaled(dst, []float64{1, 1, 1}, 2)
	if dst[0] != 3 || dst[1] != 4 || dst[2] != 5 {
		t.Fatalf("AddScaled = %v", dst)
	}
	Sum(dst, []float64{1, 0, -1})
	if dst[0] != 4 || dst[1] != 4 || dst[2] != 4 {
		t.Fatalf("Sum = %v", dst)
	}
	if got := Dot([]float64{1, 2}, []float64{3, 4}); got != 11 {
		t.Fatalf("Dot = %v, want 11", got)
	}
	if got := Norm1([]float64{-1, 2, -3}); got != 6 {
		t.Fatalf("Norm1 = %v, want 6", got)
	}
}

func BenchmarkL1Dim64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, 64)
	y := make([]float64, 64)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += L1(x, y)
	}
	_ = sink
}

func BenchmarkL1Dim128(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, 128)
	y := make([]float64, 128)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += L1(x, y)
	}
	_ = sink
}

func BenchmarkL2Dim64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, 64)
	y := make([]float64, 64)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += L2(x, y)
	}
	_ = sink
}

// l1Naive is the straightforward loop, kept for the unroll ablation.
func l1Naive(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s
}

func BenchmarkL1NaiveDim64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, 64)
	y := make([]float64, 64)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += l1Naive(x, y)
	}
	_ = sink
}

func BenchmarkLpGenericDim64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, 64)
	y := make([]float64, 64)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += Lp(x, y, 3)
	}
	_ = sink
}
