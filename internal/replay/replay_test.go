package replay

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/alt"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/hybrid"
	"repro/internal/sssp"
	"repro/internal/telemetry"
)

func buildFixture(t *testing.T) (*graph.Graph, *core.Model, *hybrid.Estimator) {
	t.Helper()
	g, err := gen.Grid(12, 12, gen.DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions(3)
	opt.Dim = 16
	opt.Epochs = 3
	opt.VertexSampleRatio = 20
	opt.FineTuneRounds = 1
	opt.HierSampleCap = 5000
	opt.ValidationPairs = 100
	m, _, err := core.Build(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	lt, err := alt.Build(g, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	guard, err := hybrid.New(m, lt)
	if err != nil {
		t.Fatal(err)
	}
	return g, m, guard
}

func TestReadLog(t *testing.T) {
	log := `{"ts":1,"s":3,"t":7,"estimate":1.5,"latency_us":10}

{"ts":2,"s":0,"t":9,"estimate":2.5,"latency_us":12}
`
	qs, err := ReadLog(strings.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 2 || qs[0] != (Query{3, 7}) || qs[1] != (Query{0, 9}) {
		t.Fatalf("parsed %v", qs)
	}
	if _, err := ReadLog(strings.NewReader("{not json}\n")); err == nil {
		t.Fatal("malformed line accepted")
	}
	if _, err := ReadLog(strings.NewReader("")); err == nil {
		t.Fatal("empty log accepted")
	}
}

func TestGenerateWorkloadDeterministic(t *testing.T) {
	a := GenerateWorkload(100, 50, 7)
	b := GenerateWorkload(100, 50, 7)
	if len(a) != 50 {
		t.Fatalf("generated %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different workloads")
		}
		if a[i].S < 0 || a[i].S >= 100 || a[i].T < 0 || a[i].T >= 100 {
			t.Fatalf("query %v out of range", a[i])
		}
	}
	c := GenerateWorkload(100, 50, 8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical workloads")
	}
}

// Run's aggregate error must match an independent per-query
// recomputation over the same workload.
func TestRunScoresAgainstOracle(t *testing.T) {
	g, m, _ := buildFixture(t)
	queries := GenerateWorkload(m.NumVertices(), 400, 5)
	rep, err := Run(m, nil, g, queries, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Queries != 400 || rep.Guarded || !rep.HasHierarchy {
		t.Fatalf("report header wrong: %+v", rep)
	}

	ws := sssp.NewWorkspace(g)
	sum, count, maxRel, skipped := 0.0, 0, 0.0, 0
	for _, q := range queries {
		exact := ws.Distance(q.S, q.T)
		if q.S == q.T || !(exact > 0) || exact >= sssp.Inf {
			skipped++
			continue
		}
		rel := math.Abs(m.Estimate(q.S, q.T)-exact) / exact
		sum += rel
		count++
		if rel > maxRel {
			maxRel = rel
		}
	}
	if rep.Skipped != skipped {
		t.Fatalf("skipped %d, want %d", rep.Skipped, skipped)
	}
	if math.Abs(rep.MeanRel-sum/float64(count)) > 1e-12 {
		t.Fatalf("mean rel %v, want %v", rep.MeanRel, sum/float64(count))
	}
	if math.Abs(rep.MaxRel-maxRel) > 1e-12 {
		t.Fatalf("max rel %v, want %v", rep.MaxRel, maxRel)
	}
	if rep.P50Rel > rep.P95Rel || rep.P95Rel > rep.P99Rel || rep.P99Rel > rep.MaxRel {
		t.Fatalf("quantiles out of order: %+v", rep)
	}
	bandTotal := 0
	for _, b := range rep.ByDistance {
		bandTotal += b.Count
		if b.MaxRel > rep.MaxRel+1e-12 {
			t.Fatalf("band %d max %v exceeds global max %v", b.Band, b.MaxRel, rep.MaxRel)
		}
	}
	if bandTotal != count {
		t.Fatalf("band counts sum to %d, scored %d", bandTotal, count)
	}
	levelTotal := 0
	for _, l := range rep.ByLevel {
		levelTotal += l.Count
	}
	if levelTotal != count {
		t.Fatalf("level counts sum to %d, scored %d", levelTotal, count)
	}
}

// The acceptance property: a guarded replay reproduces the live drift
// monitor's per-band scores — same deviation formula, same bucketing —
// for identical traffic.
func TestRunReproducesDriftMonitor(t *testing.T) {
	g, m, guard := buildFixture(t)
	queries := GenerateWorkload(m.NumVertices(), 600, 9)
	rep, err := Run(m, guard, g, queries, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Guarded || len(rep.Drift) == 0 {
		t.Fatalf("guarded run produced no drift bands: %+v", rep)
	}

	// Feed the same traffic to a real DriftMonitor, as the server would.
	reg := telemetry.NewRegistry()
	mon, err := telemetry.NewDriftMonitor(reg, m.Scale(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		gr := guard.Guard(q.S, q.T)
		mon.Observe(gr.Raw, gr.Lo, gr.Hi)
	}

	// The monitor's band histograms are reachable by re-registering the
	// same name+label series on the same registry.
	const help = "Relative deviation of raw estimates from certified-bound midpoints, by distance band."
	seen := 0
	for b := 0; b < mon.Bands(); b++ {
		h := reg.Histogram("rne_drift_band_error", help,
			telemetry.RelErrorBuckets, "band", fmt.Sprintf("%02d", b))
		var got *DriftBandStats
		for i := range rep.Drift {
			if rep.Drift[i].Band == b {
				got = &rep.Drift[i]
			}
		}
		if h.Count() == 0 {
			if got != nil {
				t.Fatalf("band %d: replay has %d observations, monitor none", b, got.Count)
			}
			continue
		}
		seen++
		if got == nil {
			t.Fatalf("band %d: monitor has %d observations, replay none", b, h.Count())
		}
		if int64(got.Count) != h.Count() {
			t.Fatalf("band %d: replay count %d, monitor count %d", b, got.Count, h.Count())
		}
		monMean := h.Sum() / float64(h.Count())
		if math.Abs(got.MeanDeviation-monMean) > 1e-12 {
			t.Fatalf("band %d: replay mean %v, monitor mean %v", b, got.MeanDeviation, monMean)
		}
	}
	if seen == 0 {
		t.Fatal("no populated drift bands to compare")
	}
}

func TestDiffVerdicts(t *testing.T) {
	base := &Report{
		MeanRel: 0.020, P95Rel: 0.060, P99Rel: 0.090,
		ByDistance: []BandStats{
			{Band: 3, Count: 100, MeanRel: 0.020},
			{Band: 7, Count: 5, MeanRel: 0.010}, // under MinBandCount: never judged
		},
	}

	if d := Diff(base, base, Tolerances{}); d.Regressed() || len(d.Reasons) != 0 {
		t.Fatalf("identical reports diffed as %+v", d)
	}

	better := *base
	better.MeanRel, better.P95Rel, better.P99Rel = 0.010, 0.030, 0.050
	if d := Diff(base, &better, Tolerances{}); d.Regressed() {
		t.Fatalf("improvement diffed as %+v", d)
	}

	// Injected regression: well past the 10% + 0.005 tolerance.
	worse := *base
	worse.P95Rel = 0.120
	d := Diff(base, &worse, Tolerances{})
	if !d.Regressed() {
		t.Fatalf("2x p95 not flagged: %+v", d)
	}
	if len(d.Reasons) == 0 || !strings.Contains(d.Reasons[0], "p95_rel") {
		t.Fatalf("reasons don't name the failing check: %v", d.Reasons)
	}

	// A regressed band with enough samples on both sides is flagged...
	bandWorse := *base
	bandWorse.ByDistance = []BandStats{{Band: 3, Count: 100, MeanRel: 0.080}}
	if d := Diff(base, &bandWorse, Tolerances{}); !d.Regressed() {
		t.Fatal("band regression not flagged")
	}
	// ...a noisy small band is not.
	smallWorse := *base
	smallWorse.ByDistance = []BandStats{{Band: 7, Count: 5, MeanRel: 0.500}}
	if d := Diff(base, &smallWorse, Tolerances{}); d.Regressed() {
		t.Fatalf("under-sampled band flagged: %+v", d)
	}
}

func TestRunValidation(t *testing.T) {
	g, m, _ := buildFixture(t)
	if _, err := Run(nil, nil, g, []Query{{0, 1}}, Options{}); err == nil {
		t.Fatal("nil model accepted")
	}
	if _, err := Run(m, nil, g, nil, Options{}); err == nil {
		t.Fatal("empty workload accepted")
	}
	if _, err := Run(m, nil, g, []Query{{0, int32(m.NumVertices())}}, Options{}); err == nil {
		t.Fatal("out-of-range query accepted")
	}
	small, err := gen.Grid(4, 4, gen.DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(m, nil, small, []Query{{0, 1}}, Options{}); err == nil {
		t.Fatal("mismatched graph accepted")
	}
	if _, err := Run(m, nil, g, []Query{{2, 2}}, Options{}); err == nil {
		t.Fatal("all-skipped workload should error, not emit an empty report")
	}
}
