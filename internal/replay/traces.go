package replay

// Tail-latency attribution over span JSONL: read the trace files the
// gateway and its replicas wrote (telemetry.RequestTracer), stitch the
// spans back into whole traces by trace ID, classify each span into a
// phase of the request's life (queue, backend, network, kernel, guard,
// index), and aggregate per-trace phase totals into quantiles. The
// output answers the on-call question the metrics alone cannot: of the
// p99, how much was admission queueing, how much the wire, how much
// the model kernel — and which specific slow traces to go read.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"

	"repro/internal/telemetry"
)

// Phase names, in reporting order. "queue" is admission wait (gateway
// and replica both), "backend" the whole gateway-side attempt,
// "network" the attempt minus the replica handler time inside it,
// "kernel"/"guard"/"index" the replica-side work spans.
var phaseOrder = []string{"queue", "backend", "network", "kernel", "guard", "index"}

// ReadSpans parses one span JSONL stream. Blank lines are skipped; a
// malformed line is an error (a truncated trace file should fail
// loudly, not silently shrink the analysis).
func ReadSpans(r io.Reader) ([]telemetry.SpanRecord, error) {
	var out []telemetry.SpanRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec telemetry.SpanRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("span line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("reading spans: %w", err)
	}
	return out, nil
}

// ReadSpanFiles reads and concatenates span JSONL from several files —
// typically one per process (gateway plus each replica). A rotated
// sibling (path+".1") is read first when present so near-full files do
// not lose their oldest spans.
func ReadSpanFiles(paths []string) ([]telemetry.SpanRecord, error) {
	var all []telemetry.SpanRecord
	for _, p := range paths {
		for _, candidate := range []string{p + ".1", p} {
			f, err := os.Open(candidate)
			if err != nil {
				if candidate != p {
					continue // no rotated generation; fine
				}
				return nil, fmt.Errorf("replay: %w", err)
			}
			spans, rerr := ReadSpans(f)
			f.Close()
			if rerr != nil {
				return nil, fmt.Errorf("replay: %s: %w", candidate, rerr)
			}
			all = append(all, spans...)
		}
	}
	if len(all) == 0 {
		return nil, fmt.Errorf("replay: trace files hold no spans")
	}
	return all, nil
}

// PhaseQuantiles summarizes one duration population in microseconds.
type PhaseQuantiles struct {
	Count int     `json:"count"`
	P50US float64 `json:"p50_us"`
	P95US float64 `json:"p95_us"`
	P99US float64 `json:"p99_us"`
	MaxUS float64 `json:"max_us"`
}

// PhaseStats aggregates one phase across all complete traces.
type PhaseStats struct {
	Phase string `json:"phase"`
	// Traces is how many complete traces contain this phase at all.
	Traces int `json:"traces"`
	// Quantiles are over the per-trace phase totals, among traces that
	// contain the phase. Parallel fan-out legs sum, so a phase total
	// can legitimately exceed the request's wall time.
	PhaseQuantiles
	// ShareOfRequest is total phase time over total request time,
	// across every complete trace — the fleet-wide answer to "what
	// fraction of our latency is this hop".
	ShareOfRequest float64 `json:"share_of_request"`
}

// SlowTrace is one of the slowest complete traces, broken down by
// phase — the concrete trace to go read after the quantiles point at
// a hop.
type SlowTrace struct {
	TraceID       string             `json:"trace_id"`
	TotalUS       float64            `json:"total_us"`
	Spans         int                `json:"spans"`
	PhaseUS       map[string]float64 `json:"phase_us,omitempty"`
	DominantPhase string             `json:"dominant_phase,omitempty"`
}

// TraceOverhead compares p99 latency with tracing on vs off, measured
// externally (e.g. by the trace smoke harness) and embedded in the
// report so the cost of observability is itself observable.
type TraceOverhead struct {
	P99OnUS  float64 `json:"p99_tracing_on_us"`
	P99OffUS float64 `json:"p99_tracing_off_us"`
	// DeltaPct is (on-off)/off in percent; negative means tracing-on
	// happened to measure faster (noise).
	DeltaPct float64 `json:"delta_pct"`
}

// TraceReport is the tail-latency attribution written as
// BENCH_trace.json.
type TraceReport struct {
	Spans  int `json:"spans"`
	Traces int `json:"traces"`
	// CompleteTraces have a root span (no parent): only those can be
	// attributed, since the root's duration is the request wall time.
	CompleteTraces int            `json:"complete_traces"`
	Services       map[string]int `json:"services,omitempty"`
	Request        PhaseQuantiles `json:"request"`
	Phases         []PhaseStats   `json:"phases"`
	Slowest        []SlowTrace    `json:"slowest,omitempty"`
	Overhead       *TraceOverhead `json:"overhead,omitempty"`
}

// phaseOf classifies one span by name; "" means the span is structural
// (a handler span) rather than a phase of its own.
func phaseOf(name string) string {
	switch name {
	case "admission":
		return "queue"
	case "kernel", "guard", "index":
		return name
	}
	if strings.HasPrefix(name, "backend ") {
		return "backend"
	}
	return ""
}

// AggregateTraces groups spans by trace ID and attributes each
// complete trace's wall time to phases. Network time is derived, not
// measured: each backend-attempt span's duration minus the replica
// handler span(s) that ran inside it (children by parent ID), clamped
// at zero — what is left after the replica accounted for itself is
// the wire plus proxy overhead.
func AggregateTraces(spans []telemetry.SpanRecord) (*TraceReport, error) {
	if len(spans) == 0 {
		return nil, fmt.Errorf("replay: no spans to aggregate")
	}
	rep := &TraceReport{Spans: len(spans), Services: map[string]int{}}
	byTrace := make(map[string][]*telemetry.SpanRecord)
	for i := range spans {
		s := &spans[i]
		byTrace[s.TraceID] = append(byTrace[s.TraceID], s)
		svc := s.Service
		if svc == "" {
			svc = "unknown"
		}
		rep.Services[svc]++
	}
	rep.Traces = len(byTrace)

	var totals []float64
	perPhase := map[string][]float64{}
	shareNum := map[string]float64{}
	var shareDen float64
	var slow []SlowTrace

	for id, ts := range byTrace {
		// childSum[parent span ID] = summed durations of direct children.
		childSum := make(map[string]float64, len(ts))
		var root *telemetry.SpanRecord
		for _, s := range ts {
			if s.ParentID == "" && (root == nil || s.DurationUS > root.DurationUS) {
				root = s
			}
			if s.ParentID != "" {
				childSum[s.ParentID] += s.DurationUS
			}
		}
		if root == nil {
			// Orphaned fragment: e.g. a replica traced a request whose
			// gateway-side root was dropped by a full queue. Not
			// attributable against a request wall time.
			continue
		}
		rep.CompleteTraces++
		totals = append(totals, root.DurationUS)
		shareDen += root.DurationUS

		phaseUS := map[string]float64{}
		for _, s := range ts {
			ph := phaseOf(s.Name)
			if ph == "" {
				continue
			}
			phaseUS[ph] += s.DurationUS
			if ph == "backend" {
				// Wire + proxy overhead: the attempt minus whatever the
				// replica handler(s) inside it accounted for. A loser leg
				// whose replica span never arrived attributes fully to
				// network, which is honest: from here it was all wire.
				net := s.DurationUS - childSum[s.SpanID]
				if net < 0 {
					net = 0
				}
				phaseUS["network"] += net
			}
		}
		dominant := ""
		for ph, us := range phaseUS {
			perPhase[ph] = append(perPhase[ph], us)
			shareNum[ph] += us
			if dominant == "" || us > phaseUS[dominant] {
				dominant = ph
			}
		}
		slow = append(slow, SlowTrace{
			TraceID: id, TotalUS: root.DurationUS, Spans: len(ts),
			PhaseUS: phaseUS, DominantPhase: dominant,
		})
	}
	if rep.CompleteTraces == 0 {
		return nil, fmt.Errorf("replay: %d traces but none has a root span (gateway trace file missing?)", rep.Traces)
	}

	rep.Request = quantiles(totals)
	for _, ph := range phaseOrder {
		pop, ok := perPhase[ph]
		if !ok {
			continue
		}
		ps := PhaseStats{Phase: ph, Traces: len(pop), PhaseQuantiles: quantiles(pop)}
		if shareDen > 0 {
			ps.ShareOfRequest = shareNum[ph] / shareDen
		}
		rep.Phases = append(rep.Phases, ps)
	}
	sort.Slice(slow, func(i, j int) bool { return slow[i].TotalUS > slow[j].TotalUS })
	if len(slow) > 5 {
		slow = slow[:5]
	}
	rep.Slowest = slow
	return rep, nil
}

// SetOverhead attaches an externally measured tracing-on vs -off p99
// comparison (microseconds) to the report.
func (r *TraceReport) SetOverhead(onUS, offUS float64) {
	o := &TraceOverhead{P99OnUS: onUS, P99OffUS: offUS}
	if offUS > 0 {
		o.DeltaPct = (onUS - offUS) / offUS * 100
	}
	r.Overhead = o
}

// WriteHuman prints the attribution the way an on-call would read it.
func (r *TraceReport) WriteHuman(w io.Writer) {
	fmt.Fprintf(w, "traces: %d (%d complete) from %d spans\n",
		r.Traces, r.CompleteTraces, r.Spans)
	fmt.Fprintf(w, "request  p50 %8.0fµs  p95 %8.0fµs  p99 %8.0fµs  max %8.0fµs\n",
		r.Request.P50US, r.Request.P95US, r.Request.P99US, r.Request.MaxUS)
	for _, ps := range r.Phases {
		fmt.Fprintf(w, "%-8s p50 %8.0fµs  p95 %8.0fµs  p99 %8.0fµs  share %5.1f%%  (%d traces)\n",
			ps.Phase, ps.P50US, ps.P95US, ps.P99US, ps.ShareOfRequest*100, ps.Traces)
	}
	for i, st := range r.Slowest {
		if i == 0 {
			fmt.Fprintln(w, "slowest traces:")
		}
		fmt.Fprintf(w, "  %s  %8.0fµs  dominant=%s\n", st.TraceID, st.TotalUS, st.DominantPhase)
	}
	if r.Overhead != nil {
		fmt.Fprintf(w, "tracing overhead: p99 on %.0fµs vs off %.0fµs (%+.1f%%)\n",
			r.Overhead.P99OnUS, r.Overhead.P99OffUS, r.Overhead.DeltaPct)
	}
}

// quantiles computes exact order statistics over one population.
func quantiles(pop []float64) PhaseQuantiles {
	if len(pop) == 0 {
		return PhaseQuantiles{}
	}
	s := append([]float64(nil), pop...)
	sort.Float64s(s)
	at := func(p float64) float64 {
		i := int(math.Ceil(p*float64(len(s)))) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(s) {
			i = len(s) - 1
		}
		return s[i]
	}
	return PhaseQuantiles{
		Count: len(s),
		P50US: at(0.50), P95US: at(0.95), P99US: at(0.99),
		MaxUS: s[len(s)-1],
	}
}
