package replay

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// span builds a synthetic SpanRecord tersely.
func span(trace, id, parent, service, name string, durUS float64) telemetry.SpanRecord {
	return telemetry.SpanRecord{
		TraceID: trace, SpanID: id, ParentID: parent,
		Service: service, Name: name, DurationUS: durUS,
	}
}

// One gateway trace with a replica handler inside the backend attempt:
// network must come out as attempt minus handler, and every phase must
// land in its bucket.
func TestAggregateTracesAttribution(t *testing.T) {
	spans := []telemetry.SpanRecord{
		// trace A: gateway root 1000us, admission 50us, one backend
		// attempt 800us containing a replica handler 600us with its own
		// admission 100us, kernel 300us, guard 150us.
		span("aaaa", "01", "", "gateway", "GET /distance", 1000),
		span("aaaa", "02", "01", "gateway", "admission", 50),
		span("aaaa", "03", "01", "gateway", "backend /distance", 800),
		span("aaaa", "04", "03", "server", "GET /distance", 600),
		span("aaaa", "05", "04", "server", "admission", 100),
		span("aaaa", "06", "04", "server", "kernel", 300),
		span("aaaa", "07", "04", "server", "guard", 150),
		// trace B: an orphaned replica fragment (its gateway root was
		// dropped) — counted but not attributed.
		span("bbbb", "08", "99", "server", "GET /distance", 500),
		span("bbbb", "09", "08", "server", "kernel", 400),
	}
	rep, err := AggregateTraces(spans)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Spans != 9 || rep.Traces != 2 || rep.CompleteTraces != 1 {
		t.Fatalf("counts wrong: %+v", rep)
	}
	if rep.Services["gateway"] != 3 || rep.Services["server"] != 6 {
		t.Fatalf("service counts wrong: %v", rep.Services)
	}
	if rep.Request.P50US != 1000 || rep.Request.Count != 1 {
		t.Fatalf("request quantiles wrong: %+v", rep.Request)
	}
	got := map[string]PhaseStats{}
	for _, ps := range rep.Phases {
		got[ps.Phase] = ps
	}
	// queue = gateway admission 50 + replica admission 100.
	if q := got["queue"]; q.P50US != 150 || q.ShareOfRequest != 0.15 {
		t.Fatalf("queue attribution wrong: %+v", q)
	}
	if k := got["kernel"]; k.P50US != 300 {
		t.Fatalf("kernel attribution wrong: %+v", k)
	}
	if g := got["guard"]; g.P50US != 150 {
		t.Fatalf("guard attribution wrong: %+v", g)
	}
	if b := got["backend"]; b.P50US != 800 {
		t.Fatalf("backend attribution wrong: %+v", b)
	}
	// network = attempt 800 - replica handler 600.
	if n := got["network"]; n.P50US != 200 || n.ShareOfRequest != 0.2 {
		t.Fatalf("network attribution wrong: %+v", n)
	}
	if len(rep.Slowest) != 1 || rep.Slowest[0].TraceID != "aaaa" {
		t.Fatalf("slowest wrong: %+v", rep.Slowest)
	}
	if rep.Slowest[0].DominantPhase != "backend" {
		t.Fatalf("dominant phase %q, want backend", rep.Slowest[0].DominantPhase)
	}
}

// A replica handler span missing from the file (dropped) attributes
// the whole attempt to network — never a negative.
func TestAggregateTracesNetworkClampsAtZero(t *testing.T) {
	spans := []telemetry.SpanRecord{
		span("cccc", "01", "", "gateway", "GET /distance", 400),
		span("cccc", "02", "01", "gateway", "backend /distance", 300),
		// Pathological: child longer than the attempt (clock skew).
		span("dddd", "03", "", "gateway", "GET /distance", 400),
		span("dddd", "04", "03", "gateway", "backend /distance", 300),
		span("dddd", "05", "04", "server", "GET /distance", 350),
	}
	rep, err := AggregateTraces(spans)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]PhaseStats{}
	for _, ps := range rep.Phases {
		got[ps.Phase] = ps
	}
	// cccc: network = full 300; dddd: clamped to 0.
	n := got["network"]
	if n.Traces != 2 || n.MaxUS != 300 || n.P50US != 0 {
		t.Fatalf("network clamp wrong: %+v", n)
	}
}

func TestAggregateTracesNoRootFails(t *testing.T) {
	spans := []telemetry.SpanRecord{
		span("eeee", "01", "99", "server", "GET /distance", 100),
	}
	if _, err := AggregateTraces(spans); err == nil {
		t.Fatal("aggregation over rootless fragments should fail loudly")
	}
	if _, err := AggregateTraces(nil); err == nil {
		t.Fatal("empty span set should fail")
	}
}

func TestReadSpanFilesAndOverhead(t *testing.T) {
	dir := t.TempDir()
	gw := filepath.Join(dir, "gw.jsonl")
	content := `{"trace_id":"aaaa","span_id":"01","name":"GET /distance","start":1,"duration_us":100}
{"trace_id":"aaaa","span_id":"02","parent_id":"01","name":"kernel","start":1,"duration_us":60}
`
	if err := os.WriteFile(gw, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	// A rotated generation is read too.
	if err := os.WriteFile(gw+".1", []byte(`{"trace_id":"ffff","span_id":"03","name":"GET /distance","start":1,"duration_us":50}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	spans, err := ReadSpanFiles([]string{gw})
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 3 {
		t.Fatalf("read %d spans, want 3 (rotated + active)", len(spans))
	}
	rep, err := AggregateTraces(spans)
	if err != nil {
		t.Fatal(err)
	}
	rep.SetOverhead(101, 100)
	if rep.Overhead.DeltaPct != 1 {
		t.Fatalf("overhead delta %v, want 1%%", rep.Overhead.DeltaPct)
	}
	var sb strings.Builder
	rep.WriteHuman(&sb)
	for _, want := range []string{"traces: 2", "kernel", "tracing overhead"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("human output lacks %q:\n%s", want, sb.String())
		}
	}

	if _, err := ReadSpanFiles([]string{filepath.Join(dir, "missing.jsonl")}); err == nil {
		t.Fatal("missing trace file should error")
	}
}

func TestQuantilesExact(t *testing.T) {
	pop := make([]float64, 100)
	for i := range pop {
		pop[i] = float64(i + 1)
	}
	q := quantiles(pop)
	if q.P50US != 50 || q.P95US != 95 || q.P99US != 99 || q.MaxUS != 100 || q.Count != 100 {
		t.Fatalf("quantiles wrong: %+v", q)
	}
}
