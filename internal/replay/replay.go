// Package replay re-runs recorded (or generated) query workloads
// against a model and an exact Dijkstra oracle, offline. It turns the
// sampled serving log (internal/qlog) into a regression harness: score
// every query's estimate against ground truth, aggregate relative
// error per distance band and per hierarchy level, reproduce the live
// drift monitor's band scores from the logged guard bounds (same
// bucketing, via telemetry.DriftBand/DriftDeviation), and diff two
// runs to a machine-readable ok/regression verdict. A model change
// can then be gated on "no error profile regression against recorded
// production traffic" before it ships.
package replay

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/hybrid"
	"repro/internal/qlog"
	"repro/internal/sssp"
	"repro/internal/telemetry"
)

// Query is one replayable (source, target) pair.
type Query struct {
	S, T int32
}

// ReadLog parses a qlog JSONL stream into replayable queries. Blank
// lines are skipped; a malformed line is an error (a truncated log
// should fail loudly, not silently shrink the workload).
func ReadLog(r io.Reader) ([]Query, error) {
	var out []Query
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec qlog.Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("replay: log line %d: %w", line, err)
		}
		out = append(out, Query{S: rec.S, T: rec.T})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("replay: reading log: %w", err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("replay: log holds no queries")
	}
	return out, nil
}

// ReadLogFile is ReadLog over a file path.
func ReadLogFile(path string) ([]Query, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("replay: %w", err)
	}
	defer f.Close()
	return ReadLog(f)
}

// GenerateWorkload produces n deterministic uniform-random queries
// over [0, numVertices), for replay runs without a recorded log.
func GenerateWorkload(numVertices, n int, seed int64) []Query {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Query, n)
	for i := range out {
		out[i] = Query{S: rng.Int31n(int32(numVertices)), T: rng.Int31n(int32(numVertices))}
	}
	return out
}

// Options tunes a replay run.
type Options struct {
	// Bands is the number of distance bands (<= 0 selects
	// telemetry.DefaultDriftBands, matching the serving drift monitor).
	Bands int
	// MaxDist scales the bands (<= 0 uses the model's distance
	// normalizer, exactly as the server configures its drift monitor).
	MaxDist float64
}

// BandStats aggregates relative error over one exact-distance band.
type BandStats struct {
	Band    int     `json:"band"`
	Count   int     `json:"count"`
	MeanRel float64 `json:"mean_rel"`
	MaxRel  float64 `json:"max_rel"`
}

// DriftBandStats mirrors one band of the live drift monitor: the raw
// estimate's deviation from the certified-interval midpoint, bucketed
// by midpoint with telemetry.DriftBand. Counts and means match what
// the server's rne_drift_band_error histograms would have recorded
// for the same traffic.
type DriftBandStats struct {
	Band          int     `json:"band"`
	Count         int     `json:"count"`
	MeanDeviation float64 `json:"mean_deviation"`
}

// LevelStats attributes error to one hierarchy level: the queries
// whose estimate that level dominated (largest absolute contribution,
// per core.Explanation) and their mean relative error. A level with a
// high mean marks the part of the partition tree whose embeddings are
// hurting accuracy.
type LevelStats struct {
	Level   int     `json:"level"`
	Count   int     `json:"count"`
	MeanRel float64 `json:"mean_rel"`
}

// Report is one replay run's aggregate, serialized to BENCH_replay.json.
type Report struct {
	Queries int `json:"queries"`
	// Skipped counts queries with no usable ground truth: identical
	// endpoints or unreachable pairs.
	Skipped      int     `json:"skipped"`
	Guarded      bool    `json:"guarded"`
	HasHierarchy bool    `json:"has_hierarchy"`
	Bands        int     `json:"bands"`
	MaxDist      float64 `json:"max_dist"`

	MeanRel float64 `json:"mean_rel"`
	P50Rel  float64 `json:"p50_rel"`
	P95Rel  float64 `json:"p95_rel"`
	P99Rel  float64 `json:"p99_rel"`
	MaxRel  float64 `json:"max_rel"`

	ByDistance []BandStats      `json:"by_distance"`
	Drift      []DriftBandStats `json:"drift,omitempty"`
	ByLevel    []LevelStats     `json:"by_level,omitempty"`
}

// Run replays queries against the model (guarded when guard is
// non-nil, exactly like the server would serve them) and scores every
// answer against exact Dijkstra distances on g. Queries are grouped by
// source so ground truth costs one SSSP per distinct source, not per
// query.
func Run(m *core.Model, guard *hybrid.Estimator, g *graph.Graph, queries []Query, opt Options) (*Report, error) {
	if m == nil || g == nil {
		return nil, fmt.Errorf("replay: need a model and a graph")
	}
	n := m.NumVertices()
	if g.NumVertices() != n {
		return nil, fmt.Errorf("replay: graph covers %d vertices but model covers %d (different graphs?)", g.NumVertices(), n)
	}
	if len(queries) == 0 {
		return nil, fmt.Errorf("replay: empty workload")
	}
	for i, q := range queries {
		if q.S < 0 || int(q.S) >= n || q.T < 0 || int(q.T) >= n {
			return nil, fmt.Errorf("replay: query %d (%d,%d) outside [0,%d)", i, q.S, q.T, n)
		}
	}
	bands := opt.Bands
	if bands <= 0 {
		bands = telemetry.DefaultDriftBands
	}
	maxDist := opt.MaxDist
	if !(maxDist > 0) {
		maxDist = m.Scale()
	}
	if !(maxDist > 0) || math.IsInf(maxDist, 0) {
		return nil, fmt.Errorf("replay: need a positive finite band scale, got %v", maxDist)
	}

	rep := &Report{
		Queries:      len(queries),
		Guarded:      guard != nil,
		HasHierarchy: m.Hierarchy() != nil,
		Bands:        bands,
		MaxDist:      maxDist,
	}

	// Group by source: one Dijkstra per distinct source.
	order := make([]int, len(queries))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return queries[order[a]].S < queries[order[b]].S })

	ws := sssp.NewWorkspace(g)
	var dist []float64
	lastSource := int32(-1)

	rels := make([]float64, 0, len(queries))
	distBands := make([]BandStats, bands)
	driftBands := make([]DriftBandStats, bands)
	driftSums := make([]float64, bands)
	relSums := make([]float64, bands)
	var levelCounts []int
	var levelSums []float64
	if rep.HasHierarchy {
		nLevels := m.Hierarchy().MaxDepth() + 1
		levelCounts = make([]int, nLevels)
		levelSums = make([]float64, nLevels)
	}

	for _, qi := range order {
		q := queries[qi]
		if q.S != lastSource {
			dist = ws.FromSource(q.S, dist)
			lastSource = q.S
		}
		exact := dist[q.T]
		if q.S == q.T || !(exact > 0) || exact >= sssp.Inf {
			rep.Skipped++
			continue
		}

		var est float64
		if guard != nil {
			gr := guard.Guard(q.S, q.T)
			est = gr.Est
			// Score the drift proxy exactly as the live monitor does:
			// same deviation formula, same midpoint bucketing.
			if errv, ok := telemetry.DriftDeviation(gr.Raw, gr.Lo, gr.Hi); ok {
				b := telemetry.DriftBand((gr.Lo+gr.Hi)/2, maxDist, bands)
				driftBands[b].Count++
				driftSums[b] += errv
			}
		} else {
			est = m.Estimate(q.S, q.T)
		}

		rel := math.Abs(est-exact) / exact
		rels = append(rels, rel)
		b := telemetry.DriftBand(exact, maxDist, bands)
		distBands[b].Count++
		relSums[b] += rel
		if rel > distBands[b].MaxRel {
			distBands[b].MaxRel = rel
		}

		if rep.HasHierarchy {
			if lev := m.ExplainEstimate(q.S, q.T).DominantLevel(); lev >= 0 {
				levelCounts[lev]++
				levelSums[lev] += rel
			}
		}
	}

	if len(rels) == 0 {
		return nil, fmt.Errorf("replay: no scorable queries (all %d skipped)", rep.Skipped)
	}
	sort.Float64s(rels)
	sum := 0.0
	for _, r := range rels {
		sum += r
	}
	rep.MeanRel = sum / float64(len(rels))
	rep.P50Rel = quantile(rels, 0.50)
	rep.P95Rel = quantile(rels, 0.95)
	rep.P99Rel = quantile(rels, 0.99)
	rep.MaxRel = rels[len(rels)-1]

	for b := range distBands {
		distBands[b].Band = b
		if distBands[b].Count > 0 {
			distBands[b].MeanRel = relSums[b] / float64(distBands[b].Count)
			rep.ByDistance = append(rep.ByDistance, distBands[b])
		}
	}
	if guard != nil {
		for b := range driftBands {
			driftBands[b].Band = b
			if driftBands[b].Count > 0 {
				driftBands[b].MeanDeviation = driftSums[b] / float64(driftBands[b].Count)
				rep.Drift = append(rep.Drift, driftBands[b])
			}
		}
	}
	for lev := range levelCounts {
		if levelCounts[lev] > 0 {
			rep.ByLevel = append(rep.ByLevel, LevelStats{
				Level:   lev,
				Count:   levelCounts[lev],
				MeanRel: levelSums[lev] / float64(levelCounts[lev]),
			})
		}
	}
	return rep, nil
}

// quantile over an ascending-sorted slice (nearest-rank on the upper
// side, matching internal/metrics).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// WriteHuman renders the report for a terminal.
func (r *Report) WriteHuman(w io.Writer) {
	fmt.Fprintf(w, "replay: %d queries (%d skipped), guard=%v, hierarchy=%v\n",
		r.Queries, r.Skipped, r.Guarded, r.HasHierarchy)
	fmt.Fprintf(w, "  rel err  mean %.3f%%  p50 %.3f%%  p95 %.3f%%  p99 %.3f%%  max %.3f%%\n",
		r.MeanRel*100, r.P50Rel*100, r.P95Rel*100, r.P99Rel*100, r.MaxRel*100)
	for _, b := range r.ByDistance {
		fmt.Fprintf(w, "  band %02d  n=%-6d mean %.3f%%  max %.3f%%\n",
			b.Band, b.Count, b.MeanRel*100, b.MaxRel*100)
	}
	for _, b := range r.Drift {
		fmt.Fprintf(w, "  drift band %02d  n=%-6d mean dev %.3f%%\n",
			b.Band, b.Count, b.MeanDeviation*100)
	}
	for _, l := range r.ByLevel {
		fmt.Fprintf(w, "  level %d dominant  n=%-6d mean rel %.3f%%\n",
			l.Level, l.Count, l.MeanRel*100)
	}
}

// Tolerances bound how much worse a current run may score before Diff
// calls it a regression. Zero values select the defaults.
type Tolerances struct {
	// RelFactor is the allowed fractional worsening (default 0.10:
	// current may be up to 10% worse than baseline).
	RelFactor float64
	// AbsSlack is an absolute relative-error slack added on top, so
	// near-zero baselines do not flag on noise (default 0.005).
	AbsSlack float64
	// MinBandCount is the per-band sample floor below which a band is
	// too noisy to judge (default 20).
	MinBandCount int
}

func (t Tolerances) withDefaults() Tolerances {
	if t.RelFactor <= 0 {
		t.RelFactor = 0.10
	}
	if t.AbsSlack <= 0 {
		t.AbsSlack = 0.005
	}
	if t.MinBandCount <= 0 {
		t.MinBandCount = 20
	}
	return t
}

// DiffResult is the regression verdict comparing two replay reports.
type DiffResult struct {
	// Verdict is "ok" or "regression".
	Verdict string `json:"verdict"`
	// Reasons lists every check that failed, empty when ok.
	Reasons []string `json:"reasons,omitempty"`
}

// Regressed reports whether the diff flagged a regression.
func (d DiffResult) Regressed() bool { return d.Verdict == "regression" }

// Diff compares a current replay report against a baseline: aggregate
// error quantiles plus per-distance-band means (bands with enough
// samples on both sides). Worse-than-tolerance on any check yields
// verdict "regression" with every failing check named.
func Diff(baseline, current *Report, tol Tolerances) DiffResult {
	tol = tol.withDefaults()
	worse := func(cur, base float64) bool {
		return cur > base*(1+tol.RelFactor)+tol.AbsSlack
	}
	var reasons []string
	check := func(name string, cur, base float64) {
		if worse(cur, base) {
			reasons = append(reasons,
				fmt.Sprintf("%s regressed: %.4f -> %.4f (tolerance %.0f%%+%.3f)",
					name, base, cur, tol.RelFactor*100, tol.AbsSlack))
		}
	}
	check("mean_rel", current.MeanRel, baseline.MeanRel)
	check("p95_rel", current.P95Rel, baseline.P95Rel)
	check("p99_rel", current.P99Rel, baseline.P99Rel)

	baseBands := make(map[int]BandStats, len(baseline.ByDistance))
	for _, b := range baseline.ByDistance {
		baseBands[b.Band] = b
	}
	for _, cur := range current.ByDistance {
		base, ok := baseBands[cur.Band]
		if !ok || base.Count < tol.MinBandCount || cur.Count < tol.MinBandCount {
			continue
		}
		check(fmt.Sprintf("band %02d mean_rel", cur.Band), cur.MeanRel, base.MeanRel)
	}

	if len(reasons) > 0 {
		return DiffResult{Verdict: "regression", Reasons: reasons}
	}
	return DiffResult{Verdict: "ok"}
}

// LoadReport reads a JSON report written by a previous run (the
// -baseline input).
func LoadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("replay: %w", err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("replay: parsing report %s: %w", path, err)
	}
	return &rep, nil
}
