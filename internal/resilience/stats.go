package resilience

import (
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// Stats accumulates request counters for the serving path. It is
// implemented on a telemetry.Registry, so one set of atomics feeds
// both GET /statz (the backward-compatible JSON snapshot below) and
// GET /metrics (Prometheus text exposition, including the request
// latency histograms the JSON view only summarizes). One Stats
// instance is shared by the whole middleware stack.
type Stats struct {
	start time.Time
	reg   *telemetry.Registry

	byClass  [6]*telemetry.Counter // index status/100: [0]=other, 1xx..5xx
	inFlight *telemetry.Gauge
	shed     *telemetry.Counter // 429s issued by the limiter
	panics   *telemetry.Counter // handler panics converted to 500s
	latency  *telemetry.Histogram

	// latencyMaxNS tracks the maximum, which a fixed-bucket histogram
	// cannot recover exactly; /statz reports it as before.
	latencyMaxNS atomic.Int64

	// routes maps tracked request paths to their per-route latency
	// histograms; untracked paths fall into the "other" series. Built
	// by TrackRoutes before serving, then read-only.
	routeMu    sync.RWMutex
	routes     map[string]*telemetry.Histogram
	otherRoute *telemetry.Histogram

	// extra holds named feature counters (e.g. the server guard mode's
	// clamp counts) registered at runtime via Counter.
	extraMu sync.Mutex
	extra   map[string]*telemetry.Counter

	// states holds named state providers (e.g. the autoheal
	// controller's armed/retraining view), rendered into the /statz
	// "state" object. Registered at setup via SetStateProvider.
	stateMu sync.Mutex
	states  map[string]func() any
}

var statusClasses = [...]string{"other", "1xx", "2xx", "3xx", "4xx", "5xx"}

// NewStats returns a zeroed Stats anchored at the current time,
// backed by its own fresh registry.
func NewStats() *Stats { return NewStatsWith(telemetry.NewRegistry()) }

// NewStatsWith returns a Stats registering its metrics on reg, so the
// caller can expose them (plus its own) on a /metrics endpoint.
func NewStatsWith(reg *telemetry.Registry) *Stats {
	s := &Stats{
		start: time.Now(),
		reg:   reg,
		inFlight: reg.Gauge("rne_http_in_flight_requests",
			"Requests currently being served."),
		shed: reg.Counter("rne_http_requests_shed_total",
			"Requests shed with 429 by the in-flight limiter."),
		panics: reg.Counter("rne_http_panics_total",
			"Handler panics converted to 500 responses."),
		latency: reg.Histogram("rne_http_request_duration_seconds",
			"End-to-end request latency across all routes.", telemetry.LatencyBuckets),
		routes: make(map[string]*telemetry.Histogram),
		otherRoute: reg.Histogram("rne_http_route_duration_seconds",
			"Request latency by route.", telemetry.LatencyBuckets, "route", "other"),
	}
	// Exemplars tie p99 buckets to stored traces; with tracing off the
	// trace ID is always "" and the slots stay empty.
	s.latency.EnableExemplars()
	s.otherRoute.EnableExemplars()
	for i, class := range statusClasses {
		s.byClass[i] = reg.Counter("rne_http_requests_total",
			"HTTP requests served, by status class.", "class", class)
	}
	reg.GaugeFunc("rne_uptime_seconds", "Seconds since the stats epoch (process start).",
		func() float64 { return time.Since(s.start).Seconds() })
	// Every serving surface (replica and gateway alike) exports the Go
	// runtime block — goroutines, heap, GC cycles and pauses — so a
	// load harness can attribute latency knees to the runtime.
	telemetry.RegisterRuntimeMetrics(reg)
	return s
}

// Registry exposes the backing metrics registry (the /metrics data).
func (s *Stats) Registry() *telemetry.Registry { return s.reg }

// TrackRoutes registers a per-route latency histogram for each path.
// Call once at setup, before serving; requests to unlisted paths are
// accounted under route="other".
func (s *Stats) TrackRoutes(paths ...string) {
	s.routeMu.Lock()
	defer s.routeMu.Unlock()
	for _, p := range paths {
		if _, ok := s.routes[p]; !ok {
			h := s.reg.Histogram("rne_http_route_duration_seconds",
				"Request latency by route.", telemetry.LatencyBuckets, "route", p)
			h.EnableExemplars()
			s.routes[p] = h
		}
	}
}

// observe files the request's status and latency; traceID (the sampled
// request's trace, "" when untraced) becomes the latency bucket's
// exemplar so tail buckets link to stored traces.
func (s *Stats) observe(status int, elapsed time.Duration, traceID string) {
	class := status / 100
	if class < 1 || class > 5 {
		class = 0
	}
	s.byClass[class].Inc()
	s.latency.ObserveExemplar(elapsed.Seconds(), traceID)
	ns := elapsed.Nanoseconds()
	for {
		cur := s.latencyMaxNS.Load()
		if ns <= cur || s.latencyMaxNS.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// observeRoute files the request under its route's latency histogram.
func (s *Stats) observeRoute(path string, elapsed time.Duration, traceID string) {
	s.routeMu.RLock()
	h := s.routes[path]
	s.routeMu.RUnlock()
	if h == nil {
		h = s.otherRoute
	}
	h.ObserveExemplar(elapsed.Seconds(), traceID)
}

// Counter returns the named extra counter, creating it on first use
// (it appears on /metrics as rne_<name>_total). The returned pointer
// is stable: callers on hot paths should fetch it once at setup and
// Add on the pointer, paying only the atomic.
func (s *Stats) Counter(name string) *telemetry.Counter {
	s.extraMu.Lock()
	defer s.extraMu.Unlock()
	if s.extra == nil {
		s.extra = make(map[string]*telemetry.Counter)
	}
	c, ok := s.extra[name]
	if !ok {
		c = s.reg.Counter("rne_"+telemetry.SanitizeName(name)+"_total",
			"Feature counter "+name+".")
		s.extra[name] = c
	}
	return c
}

// SetStateProvider registers a named provider whose value is rendered
// under the /statz "state" object on every snapshot. Providers must be
// safe for concurrent use and return JSON-marshalable values. A nil fn
// removes the provider.
func (s *Stats) SetStateProvider(name string, fn func() any) {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	if fn == nil {
		delete(s.states, name)
		return
	}
	if s.states == nil {
		s.states = make(map[string]func() any)
	}
	s.states[name] = fn
}

// Snapshot is the JSON shape served on /statz. It predates /metrics
// and must stay byte-shape-compatible: fields, names and order are
// frozen (new optional blocks may only be appended with omitempty, so
// servers without the feature keep the historical byte shape).
type Snapshot struct {
	UptimeSeconds float64          `json:"uptime_seconds"`
	Requests      int64            `json:"requests"`
	InFlight      int64            `json:"in_flight"`
	ByClass       map[string]int64 `json:"by_status_class"`
	Shed          int64            `json:"shed_429"`
	Panics        int64            `json:"panics"`
	LatencyMeanMS float64          `json:"latency_mean_ms"`
	LatencyMaxMS  float64          `json:"latency_max_ms"`
	Extra         map[string]int64 `json:"extra,omitempty"`
	State         map[string]any   `json:"state,omitempty"`
}

// Snapshot returns a consistent-enough point-in-time view of the
// counters (each counter individually atomic).
func (s *Stats) Snapshot() Snapshot {
	hs := s.latency.Snapshot()
	n := hs.Count
	snap := Snapshot{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Requests:      n,
		InFlight:      int64(s.inFlight.Value()),
		ByClass:       make(map[string]int64, 5),
		Shed:          s.shed.Value(),
		Panics:        s.panics.Value(),
		LatencyMaxMS:  float64(s.latencyMaxNS.Load()) / 1e6,
	}
	if n > 0 {
		snap.LatencyMeanMS = hs.Sum * 1e3 / float64(n)
	}
	for i, name := range statusClasses {
		if v := s.byClass[i].Value(); v > 0 {
			snap.ByClass[name] = v
		}
	}
	s.extraMu.Lock()
	if len(s.extra) > 0 {
		snap.Extra = make(map[string]int64, len(s.extra))
		for name, c := range s.extra {
			snap.Extra[name] = c.Value()
		}
	}
	s.extraMu.Unlock()
	s.stateMu.Lock()
	if len(s.states) > 0 {
		snap.State = make(map[string]any, len(s.states))
		for name, fn := range s.states {
			snap.State[name] = fn()
		}
	}
	s.stateMu.Unlock()
	return snap
}

// Handler serves the stats snapshot as JSON (the /statz endpoint).
func (s *Stats) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(s.Snapshot())
	})
}
