package resilience

import (
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Stats accumulates request counters with atomics only, so the
// middleware stays contention-free on the nanosecond-scale query
// path. One Stats instance is shared by the whole middleware stack
// and served as JSON on GET /statz.
type Stats struct {
	start time.Time

	inFlight atomic.Int64
	byClass  [6]atomic.Int64 // index status/100: [0]=other, 1xx..5xx
	requests atomic.Int64
	shed     atomic.Int64 // 429s issued by the limiter
	panics   atomic.Int64 // handler panics converted to 500s

	latencySumNS atomic.Int64
	latencyMaxNS atomic.Int64

	// extra holds named feature counters (e.g. the server guard mode's
	// clamp counts) registered at runtime via Counter.
	extraMu sync.Mutex
	extra   map[string]*atomic.Int64
}

// NewStats returns a zeroed Stats anchored at the current time.
func NewStats() *Stats {
	return &Stats{start: time.Now()}
}

func (s *Stats) observe(status int, elapsed time.Duration) {
	s.requests.Add(1)
	class := status / 100
	if class < 1 || class > 5 {
		class = 0
	}
	s.byClass[class].Add(1)
	ns := elapsed.Nanoseconds()
	s.latencySumNS.Add(ns)
	for {
		cur := s.latencyMaxNS.Load()
		if ns <= cur || s.latencyMaxNS.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// Counter returns the named extra counter, creating it on first use.
// The returned pointer is stable: callers on hot paths should fetch it
// once at setup and Add on the pointer, paying only the atomic.
func (s *Stats) Counter(name string) *atomic.Int64 {
	s.extraMu.Lock()
	defer s.extraMu.Unlock()
	if s.extra == nil {
		s.extra = make(map[string]*atomic.Int64)
	}
	c, ok := s.extra[name]
	if !ok {
		c = new(atomic.Int64)
		s.extra[name] = c
	}
	return c
}

// Snapshot is the JSON shape served on /statz.
type Snapshot struct {
	UptimeSeconds float64          `json:"uptime_seconds"`
	Requests      int64            `json:"requests"`
	InFlight      int64            `json:"in_flight"`
	ByClass       map[string]int64 `json:"by_status_class"`
	Shed          int64            `json:"shed_429"`
	Panics        int64            `json:"panics"`
	LatencyMeanMS float64          `json:"latency_mean_ms"`
	LatencyMaxMS  float64          `json:"latency_max_ms"`
	Extra         map[string]int64 `json:"extra,omitempty"`
}

// Snapshot returns a consistent-enough point-in-time view of the
// counters (each counter individually atomic).
func (s *Stats) Snapshot() Snapshot {
	n := s.requests.Load()
	snap := Snapshot{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Requests:      n,
		InFlight:      s.inFlight.Load(),
		ByClass:       make(map[string]int64, 5),
		Shed:          s.shed.Load(),
		Panics:        s.panics.Load(),
		LatencyMaxMS:  float64(s.latencyMaxNS.Load()) / 1e6,
	}
	if n > 0 {
		snap.LatencyMeanMS = float64(s.latencySumNS.Load()) / float64(n) / 1e6
	}
	classes := [...]string{"other", "1xx", "2xx", "3xx", "4xx", "5xx"}
	for i, name := range classes {
		if v := s.byClass[i].Load(); v > 0 {
			snap.ByClass[name] = v
		}
	}
	s.extraMu.Lock()
	if len(s.extra) > 0 {
		snap.Extra = make(map[string]int64, len(s.extra))
		for name, c := range s.extra {
			snap.Extra[name] = c.Load()
		}
	}
	s.extraMu.Unlock()
	return snap
}

// Handler serves the stats snapshot as JSON (the /statz endpoint).
func (s *Stats) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(s.Snapshot())
	})
}
