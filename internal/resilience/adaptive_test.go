package resilience

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func newTestLimiter(t *testing.T, cfg AdmissionConfig, reg *telemetry.Registry) *AdaptiveLimiter {
	t.Helper()
	l, err := NewAdaptiveLimiter(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// forceAdjust runs one adaptation pass over whatever the window holds,
// bypassing the wall-clock interval gate.
func forceAdjust(l *AdaptiveLimiter) {
	l.lastNS.Store(time.Now().Add(-2 * l.cfg.Interval).UnixNano())
	l.maybeAdjust()
}

func TestAdmissionConfigValidation(t *testing.T) {
	if _, err := NewAdaptiveLimiter(AdmissionConfig{}, nil); err == nil {
		t.Fatal("zero TargetP99 accepted")
	}
	if _, err := NewAdaptiveLimiter(AdmissionConfig{TargetP99: time.Second, Min: 10, Max: 5}, nil); err == nil {
		t.Fatal("Min > Max accepted")
	}
	l := newTestLimiter(t, AdmissionConfig{TargetP99: time.Second, Initial: 1, Min: 8}, nil)
	if l.Limit() != 8 {
		t.Fatalf("Initial below Min not clamped: %d", l.Limit())
	}
}

// AIMD: a window whose p99 blows the target shrinks the limit
// multiplicatively; a window that runs at the limit under target grows
// it additively; an idle window leaves it alone.
func TestAdaptiveLimiterAIMD(t *testing.T) {
	l := newTestLimiter(t, AdmissionConfig{
		TargetP99: 10 * time.Millisecond,
		Initial:   100, Min: 4, Max: 200,
		Step: 4, Backoff: 0.5,
	}, telemetry.NewRegistry())

	// Slow window: p99 ~ 100ms >> 10ms target.
	for i := 0; i < 50; i++ {
		if !l.Acquire(PriorityNormal) {
			t.Fatal("under-limit acquire refused")
		}
		l.Release(100 * time.Millisecond)
	}
	forceAdjust(l)
	if got := l.Limit(); got != 50 {
		t.Fatalf("limit after over-target window = %d, want 50 (100 * 0.5)", got)
	}

	// Fast windows at the limit: additive growth.
	for win := 0; win < 3; win++ {
		limit := l.Limit()
		// Push in-flight to the limit so winMax records saturation.
		var release []func()
		for i := 0; i < limit; i++ {
			if !l.Acquire(PriorityNormal) {
				t.Fatalf("acquire %d/%d refused", i, limit)
			}
			release = append(release, func() { l.Release(time.Millisecond) })
		}
		for _, f := range release {
			f()
		}
		forceAdjust(l)
		if got := l.Limit(); got != limit+4 {
			t.Fatalf("limit after at-limit fast window = %d, want %d", got, limit+4)
		}
	}

	// Fast window far below the limit: no growth (idle must not ratchet).
	limit := l.Limit()
	l.Acquire(PriorityNormal)
	l.Release(time.Millisecond)
	forceAdjust(l)
	if got := l.Limit(); got != limit {
		t.Fatalf("limit grew to %d on an idle window (was %d)", got, limit)
	}

	// The floor holds under sustained overload.
	for win := 0; win < 20; win++ {
		l.Acquire(PriorityNormal)
		l.Release(time.Second)
		forceAdjust(l)
	}
	if got := l.Limit(); got != 4 {
		t.Fatalf("limit under sustained overload = %d, want floor 4", got)
	}
}

// Priority shedding: critical always admits, batch sheds before normal.
func TestAdaptivePrioritySheds(t *testing.T) {
	reg := telemetry.NewRegistry()
	l := newTestLimiter(t, AdmissionConfig{
		TargetP99: time.Second,
		Initial:   8, Min: 8, Max: 8,
		BatchReserve: 0.25, // batch admits only below 6 in-flight
	}, reg)

	// Fill to the batch threshold: 6 of 8 slots.
	for i := 0; i < 6; i++ {
		if !l.Acquire(PriorityNormal) {
			t.Fatalf("normal acquire %d refused below limit", i)
		}
	}
	if l.Acquire(PriorityBatch) {
		t.Fatal("batch admitted into the reserved headroom")
	}
	if !l.Acquire(PriorityNormal) {
		t.Fatal("normal refused while headroom remains")
	}
	if !l.Acquire(PriorityNormal) {
		t.Fatal("normal refused at limit-1")
	}
	if l.Acquire(PriorityNormal) {
		t.Fatal("normal admitted past the limit")
	}
	if !l.Acquire(PriorityCritical) {
		t.Fatal("critical shed at saturation")
	}
	if l.shedByPriority[PriorityBatch].Value() != 1 || l.shedByPriority[PriorityNormal].Value() != 1 {
		t.Fatalf("shed counters: batch=%d normal=%d, want 1 and 1",
			l.shedByPriority[PriorityBatch].Value(), l.shedByPriority[PriorityNormal].Value())
	}
}

func TestPriorityForPath(t *testing.T) {
	cases := map[string]Priority{
		"/healthz":      PriorityCritical,
		"/readyz":       PriorityCritical,
		"/statz":        PriorityCritical,
		"/metrics":      PriorityCritical,
		"/admin/reload": PriorityCritical,
		"/batch":        PriorityBatch,
		"/distance":     PriorityNormal,
		"/knn":          PriorityNormal,
		"/explain":      PriorityNormal,
	}
	for path, want := range cases {
		if got := PriorityForPath(path); got != want {
			t.Errorf("PriorityForPath(%q) = %v, want %v", path, got, want)
		}
	}
}

// End-to-end through Wrap: a saturated adaptive server sheds /batch
// with 429 while /healthz keeps answering, the admit-limit gauge and
// shed-by-priority counters appear on /metrics, and concurrent load
// leaves the accounting consistent (run with -race).
func TestAdaptiveWrapEndToEnd(t *testing.T) {
	st := NewStats()
	release := make(chan struct{})
	entered := make(chan struct{}, 64)
	mux := http.NewServeMux()
	slow := func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-release
		fmt.Fprint(w, "ok")
	}
	mux.HandleFunc("/distance", slow)
	mux.HandleFunc("/batch", slow)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) { fmt.Fprint(w, "alive") })
	h := Wrap(mux, Options{
		Admission: &AdmissionConfig{TargetP99: time.Second, Initial: 4, Min: 4, Max: 4, BatchReserve: 0.25},
		Timeout:   -1,
		Stats:     st,
	})
	ts := httptest.NewServer(h)
	defer ts.Close()

	// Occupy 3 of 4 slots (the batch threshold) with /distance.
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/distance")
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	for i := 0; i < 3; i++ {
		select {
		case <-entered:
		case <-time.After(5 * time.Second):
			t.Fatal("handlers did not start")
		}
	}
	// Batch is shed at the reserve threshold while a normal request and
	// the health probe still pass.
	resp, body := get(t, ts.URL+"/batch")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("batch at threshold: %d %q", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed batch missing Retry-After")
	}
	resp, _ = get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("health probe shed at saturation: %d", resp.StatusCode)
	}
	close(release)
	wg.Wait()

	_, metrics := get(t, ts.URL+"/healthz")
	_ = metrics
	var buf strings.Builder
	if _, err := st.Registry().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"rne_admit_limit 4",
		`rne_admit_shed_total{priority="batch"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, text)
		}
	}
	if st.Snapshot().Shed != 1 {
		t.Fatalf("/statz shed = %d, want 1", st.Snapshot().Shed)
	}
}
