// Package resilience is the production-hardening layer for the HTTP
// serving path: composable net/http middleware that keeps rneserver
// alive and well-behaved under the paper's motivating high-volume
// dispatch/range workloads. It provides panic recovery (a crashing
// handler costs one 500, not the process), per-request deadlines with
// cross-tier budget propagation (a forwarded BudgetHeader bounds the
// work a replica will attempt; exhaustion answers 504, local timeouts
// 503), an in-flight concurrency limiter — either a static cap or the
// adaptive AIMD limiter that tracks observed p99 latency and sheds by
// priority (health/admin never, /batch before /distance) — with 429 +
// jittered Retry-After, and request accounting surfaced on GET /statz
// (JSON) and GET /metrics (Prometheus text, via internal/telemetry).
package resilience

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"runtime/debug"
	"time"

	"repro/internal/telemetry"
)

// Options configures the standard middleware stack assembled by Wrap.
// Zero values select the documented defaults; Timeout and MaxInFlight
// can be disabled explicitly with negative values.
type Options struct {
	// MaxInFlight caps concurrently-served requests; excess requests
	// are shed with 429 + Retry-After. Default 256; negative disables.
	// Ignored when Admission configures the adaptive limiter, except as
	// the adaptive limiter's Initial when that is unset.
	MaxInFlight int
	// Admission, when non-nil, replaces the static MaxInFlight cap with
	// the adaptive AIMD limiter: the concurrency limit tracks observed
	// p99 latency against Admission.TargetP99, health/admin routes are
	// never shed, and /batch sheds before /distance. An invalid config
	// falls back to the static cap (and is logged).
	Admission *AdmissionConfig
	// RetryAfter is the hint returned with shed requests (default 1s).
	RetryAfter time.Duration
	// RetryAfterJitter spreads every Retry-After hint by a uniform
	// ±fraction (default 0.2), so synchronized shed clients do not
	// retry in lockstep. Negative disables jitter.
	RetryAfterJitter float64
	// Timeout bounds each request via its context deadline; requests
	// that exceed it receive 503 — or 504 when the deadline came from a
	// forwarded BudgetHeader budget tighter than Timeout. Default 30s;
	// negative disables the local timeout (forwarded budgets still
	// apply).
	Timeout time.Duration
	// Logger receives panic reports and access logs (nil disables).
	Logger *slog.Logger
	// Stats, when non-nil, accumulates request/latency/status counters
	// for /statz and /metrics.
	Stats *Stats
}

func (o Options) withDefaults() Options {
	if o.MaxInFlight == 0 {
		o.MaxInFlight = 256
	}
	if o.RetryAfter == 0 {
		o.RetryAfter = time.Second
	}
	if o.RetryAfterJitter == 0 {
		o.RetryAfterJitter = 0.2
	}
	if o.RetryAfterJitter < 0 {
		o.RetryAfterJitter = 0
	}
	if o.Timeout == 0 {
		o.Timeout = 30 * time.Second
	}
	return o
}

// Wrap assembles the standard production stack around next, outermost
// first: stats/logging, panic recovery, concurrency limiting (static or
// adaptive), then the per-request deadline. Recovery sits inside
// accounting so panics are counted as 500s; the limiter sits inside
// recovery so even a limiter bug cannot kill the process; the deadline
// is innermost so shed requests never consume a timer and the latency
// the adaptive limiter observes includes time spent at the deadline.
func Wrap(next http.Handler, o Options) http.Handler {
	o = o.withDefaults()
	h := next
	timeout := o.Timeout
	if timeout < 0 {
		timeout = 0
	}
	h = Deadline(h, timeout, o.RetryAfterJitter, o.RetryAfter, o.Stats)
	limited := false
	if o.Admission != nil {
		var reg *telemetry.Registry
		if o.Stats != nil {
			reg = o.Stats.Registry()
		}
		al, err := NewAdaptiveLimiter(*o.Admission, reg)
		if err == nil {
			h = AdaptiveLimit(h, al, o.RetryAfter, o.RetryAfterJitter, o.Stats)
			limited = true
		} else {
			telemetry.OrNop(o.Logger).Warn("adaptive admission disabled; using static cap", "error", err)
		}
	}
	if !limited && o.MaxInFlight > 0 {
		h = limiter(h, o.MaxInFlight, o.RetryAfter, o.RetryAfterJitter, o.Stats)
	}
	h = Recover(h, o.Logger, o.Stats)
	if o.Stats != nil || o.Logger != nil {
		h = Observe(h, o.Stats, o.Logger)
	}
	return h
}

// statusRecorder captures the status code a handler wrote so the
// observing middleware can account for it.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.status == 0 {
		sr.status = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(p []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	return sr.ResponseWriter.Write(p)
}

func writeJSONError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// Recover converts a handler panic into a 500 response and a stack
// log, leaving the server alive. The repanic of http.ErrAbortHandler
// is preserved so deliberate connection aborts keep their stdlib
// semantics. A nil logger discards the reports.
func Recover(next http.Handler, logger *slog.Logger, st *Stats) http.Handler {
	logger = telemetry.OrNop(logger)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sr := &statusRecorder{ResponseWriter: w}
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler {
				panic(rec)
			}
			if st != nil {
				st.panics.Inc()
			}
			logger.Error("panic serving request",
				"method", r.Method, "path", r.URL.Path,
				"request_id", telemetry.RequestIDFrom(r.Context()),
				"panic", fmt.Sprint(rec), "stack", string(debug.Stack()))
			// Only answer if the handler had not started a response;
			// otherwise the connection is already poisoned and closing
			// it is all we can do.
			if sr.status == 0 {
				writeJSONError(w, http.StatusInternalServerError, "internal server error")
			}
		}()
		next.ServeHTTP(sr, r)
	})
}

// Timeout attaches a deadline to each request's context and answers
// 503 if the handler has not finished by then. Response bodies are
// buffered by the underlying http.TimeoutHandler, so a handler racing
// its deadline can never interleave a half-written body with the
// timeout response.
//
// Wrap no longer uses this: the Deadline middleware subsumes it, adding
// forwarded-budget (504) semantics and a Retry-After hint. Timeout is
// kept for callers composing their own stacks.
func Timeout(next http.Handler, d time.Duration) http.Handler {
	body, _ := json.Marshal(map[string]string{"error": fmt.Sprintf("request exceeded %v deadline", d)})
	return http.TimeoutHandler(next, d, string(body))
}

// Limiter sheds load once maxInFlight requests are already being
// served, answering 429 with a Retry-After hint instead of queueing
// unboundedly. Admission is a non-blocking semaphore acquire, so shed
// requests cost O(1) regardless of saturation.
func Limiter(next http.Handler, maxInFlight int, retryAfter time.Duration, st *Stats) http.Handler {
	return limiter(next, maxInFlight, retryAfter, 0, st)
}

func limiter(next http.Handler, maxInFlight int, retryAfter time.Duration, jitter float64, st *Stats) http.Handler {
	sem := make(chan struct{}, maxInFlight)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case sem <- struct{}{}:
			defer func() { <-sem }()
			next.ServeHTTP(w, r)
		default:
			if st != nil {
				st.shed.Inc()
			}
			telemetry.TraceEvent(r.Context(), "shed",
				fmt.Sprintf("static limiter at %d in flight", maxInFlight))
			hint := retryAfterHint(retryAfter, jitter)
			w.Header().Set("Retry-After", hint)
			writeJSONError(w, http.StatusTooManyRequests,
				fmt.Sprintf("server saturated (%d requests in flight); retry after %s s", maxInFlight, hint))
		}
	})
}

// Observe records per-request status and latency into st (overall and
// per-route histograms) and emits one structured access-log line per
// request, tagged with the request ID when the telemetry.RequestID
// middleware is installed. A nil logger discards the access log.
func Observe(next http.Handler, st *Stats, logger *slog.Logger) http.Handler {
	logger = telemetry.OrNop(logger)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		if st != nil {
			st.inFlight.Add(1)
		}
		sr := &statusRecorder{ResponseWriter: w}
		defer func() {
			elapsed := time.Since(start)
			status := sr.status
			if status == 0 {
				status = http.StatusOK
			}
			if st != nil {
				st.inFlight.Add(-1)
				// Observe runs inside the trace middleware, so the context
				// carries the request's span when tracing is on; its trace
				// ID becomes the latency bucket's exemplar.
				traceID := telemetry.SpanFromContext(r.Context()).ExemplarID()
				st.observe(status, elapsed, traceID)
				st.observeRoute(r.URL.Path, elapsed, traceID)
			}
			logger.Info("request",
				"method", r.Method, "path", r.URL.Path, "status", status,
				"duration", elapsed.Round(time.Microsecond),
				"request_id", telemetry.RequestIDFrom(r.Context()))
		}()
		next.ServeHTTP(sr, r)
	})
}
