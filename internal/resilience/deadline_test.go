package resilience

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

func stuckHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-time.After(10 * time.Second):
		}
	})
}

// A forwarded budget tighter than the local timeout produces 504 (the
// client's budget ran out), not 503 (the replica's own limit).
func TestDeadlineBudgetExhaustionIs504(t *testing.T) {
	st := NewStats()
	h := Wrap(stuckHandler(), Options{Timeout: 10 * time.Second, Stats: st})
	ts := httptest.NewServer(h)
	defer ts.Close()

	req, _ := http.NewRequest(http.MethodGet, ts.URL, nil)
	req.Header.Set(BudgetHeader, "30") // 30ms budget
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("budget exhaustion = %d, want 504", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	if _, err := strconv.ParseFloat(ra, 64); err != nil {
		t.Fatalf("504 missing numeric Retry-After: %q", ra)
	}

	var buf strings.Builder
	st.Registry().WriteTo(&buf)
	if !strings.Contains(buf.String(), `rne_deadline_exhausted_total{source="budget"} 1`) {
		t.Fatalf("budget exhaustion not counted:\n%s", buf.String())
	}
}

// A budget already spent on arrival is answered 504 without invoking
// the handler at all.
func TestDeadlineZeroBudgetRejectedImmediately(t *testing.T) {
	invoked := false
	h := Deadline(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		invoked = true
	}), time.Second, 0, time.Second, nil)
	ts := httptest.NewServer(h)
	defer ts.Close()

	req, _ := http.NewRequest(http.MethodGet, ts.URL, nil)
	req.Header.Set(BudgetHeader, "0")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("zero budget = %d, want 504", resp.StatusCode)
	}
	if invoked {
		t.Fatal("handler ran for a request with no budget left")
	}
}

// The local timeout (no budget header) stays a 503, now with a
// Retry-After hint.
func TestDeadlineLocalTimeoutIs503(t *testing.T) {
	st := NewStats()
	h := Wrap(stuckHandler(), Options{Timeout: 30 * time.Millisecond, Stats: st})
	ts := httptest.NewServer(h)
	defer ts.Close()
	resp, body := get(t, ts.URL)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("local timeout = %d body %q, want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("timeout 503 missing Retry-After")
	}
	var buf strings.Builder
	st.Registry().WriteTo(&buf)
	if !strings.Contains(buf.String(), `rne_deadline_exhausted_total{source="local"} 1`) {
		t.Fatalf("local exhaustion not counted:\n%s", buf.String())
	}
}

// A generous budget wider than the local timeout leaves the local
// timeout in charge (budgets can only tighten, never extend).
func TestDeadlineBudgetCannotExtendLocalTimeout(t *testing.T) {
	h := Wrap(stuckHandler(), Options{Timeout: 30 * time.Millisecond})
	ts := httptest.NewServer(h)
	defer ts.Close()
	req, _ := http.NewRequest(http.MethodGet, ts.URL, nil)
	req.Header.Set(BudgetHeader, "60000")
	start := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 from the local timeout", resp.StatusCode)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("budget extended the local timeout: took %v", elapsed)
	}
}

// A handler finishing in time passes its response through unchanged,
// headers included.
func TestDeadlinePassThrough(t *testing.T) {
	h := Deadline(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Custom", "yes")
		w.WriteHeader(http.StatusCreated)
		w.Write([]byte("done"))
	}), time.Second, 0, time.Second, nil)
	ts := httptest.NewServer(h)
	defer ts.Close()
	resp, body := get(t, ts.URL)
	if resp.StatusCode != http.StatusCreated || body != "done" || resp.Header.Get("X-Custom") != "yes" {
		t.Fatalf("pass-through mangled: %d %q %q", resp.StatusCode, body, resp.Header.Get("X-Custom"))
	}
}

// The handler's context is canceled at the deadline so cooperative
// handlers abandon their work.
func TestDeadlineCancelsHandlerContext(t *testing.T) {
	gotCancel := make(chan error, 1)
	h := Deadline(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
		gotCancel <- r.Context().Err()
	}), 20*time.Millisecond, 0, time.Second, nil)
	ts := httptest.NewServer(h)
	defer ts.Close()
	resp, _ := get(t, ts.URL)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d", resp.StatusCode)
	}
	select {
	case err := <-gotCancel:
		if err != context.DeadlineExceeded {
			t.Fatalf("handler saw %v, want DeadlineExceeded", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("handler context never canceled")
	}
}

// ParseBudget/SetBudget round-trip with sub-millisecond precision.
func TestBudgetRoundTrip(t *testing.T) {
	hdr := make(http.Header)
	SetBudget(hdr, 1234567*time.Microsecond)
	r := &http.Request{Header: hdr}
	got, ok := ParseBudget(r)
	if !ok {
		t.Fatal("budget header not parsed")
	}
	if got != 1234567*time.Microsecond {
		t.Fatalf("round trip %v, want 1.234567s", got)
	}
	if _, ok := ParseBudget(&http.Request{Header: make(http.Header)}); ok {
		t.Fatal("missing header parsed as present")
	}
	bad := make(http.Header)
	bad.Set(BudgetHeader, "not-a-number")
	if _, ok := ParseBudget(&http.Request{Header: bad}); ok {
		t.Fatal("garbage header parsed as present")
	}
}

func TestRetryAfterHintJitterBounds(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 64; i++ {
		hint := retryAfterHint(time.Second, 0.2)
		secs, err := strconv.ParseFloat(hint, 64)
		if err != nil {
			t.Fatalf("hint %q not numeric", hint)
		}
		if secs < 0.8-1e-9 || secs > 1.2+1e-9 {
			t.Fatalf("hint %v outside ±20%% of 1s", secs)
		}
		seen[hint] = true
	}
	if len(seen) < 2 {
		t.Fatal("jitter produced a constant hint")
	}
	if hint := retryAfterHint(time.Second, 0); hint != "1.00" {
		t.Fatalf("unjittered hint = %q, want 1.00", hint)
	}
	if hint := retryAfterHint(30*time.Second, 0); hint != "30" {
		t.Fatalf("long hint = %q, want whole seconds", hint)
	}
}
