package resilience

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// countHandler is a slog.Handler counting the records it receives.
type countHandler struct{ n *atomic.Int64 }

func (countHandler) Enabled(context.Context, slog.Level) bool    { return true }
func (h countHandler) Handle(context.Context, slog.Record) error { h.n.Add(1); return nil }
func (h countHandler) WithAttrs([]slog.Attr) slog.Handler        { return h }
func (h countHandler) WithGroup(string) slog.Handler             { return h }

func get(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

// A panicking handler gets a 500 and the server keeps serving.
func TestRecoverSurvivesPanic(t *testing.T) {
	st := NewStats()
	mux := http.NewServeMux()
	mux.HandleFunc("/boom", func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	})
	mux.HandleFunc("/ok", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "fine")
	})
	var logged atomic.Int64
	h := Wrap(mux, Options{Stats: st, Logger: slog.New(countHandler{n: &logged})})
	ts := httptest.NewServer(h)
	defer ts.Close()

	resp, body := get(t, ts.URL+"/boom")
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panic handler: status %d, body %q", resp.StatusCode, body)
	}
	var e map[string]string
	if err := json.Unmarshal([]byte(body), &e); err != nil || e["error"] == "" {
		t.Fatalf("panic response not a JSON error: %q", body)
	}
	// Server is still alive and serving.
	resp, body = get(t, ts.URL+"/ok")
	if resp.StatusCode != http.StatusOK || body != "fine" {
		t.Fatalf("server did not survive panic: %d %q", resp.StatusCode, body)
	}
	snap := st.Snapshot()
	if snap.Panics != 1 {
		t.Fatalf("panics counter = %d", snap.Panics)
	}
	if snap.ByClass["5xx"] != 1 || snap.ByClass["2xx"] != 1 {
		t.Fatalf("status classes wrong: %+v", snap.ByClass)
	}
	if logged.Load() == 0 {
		t.Fatal("panic was not logged")
	}
}

// Requests past the in-flight cap get 429 + Retry-After.
func TestLimiterShedsPastCap(t *testing.T) {
	st := NewStats()
	const cap = 4
	release := make(chan struct{})
	entered := make(chan struct{}, cap)
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-release
		w.WriteHeader(http.StatusOK)
	})
	h := Wrap(slow, Options{MaxInFlight: cap, RetryAfter: 2 * time.Second, Stats: st})
	ts := httptest.NewServer(h)
	defer ts.Close()

	var wg sync.WaitGroup
	for i := 0; i < cap; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL)
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	// Wait until the cap is fully occupied.
	for i := 0; i < cap; i++ {
		select {
		case <-entered:
		case <-time.After(5 * time.Second):
			t.Fatal("handlers did not start")
		}
	}
	resp, body := get(t, ts.URL)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated request: status %d body %q", resp.StatusCode, body)
	}
	// The hint is jittered ±20% around the configured 2s so shed
	// clients spread their retries instead of stampeding in lockstep.
	ra := resp.Header.Get("Retry-After")
	secs, err := strconv.ParseFloat(ra, 64)
	if err != nil || secs < 1.6-1e-9 || secs > 2.4+1e-9 {
		t.Fatalf("Retry-After = %q, want a number in [1.6, 2.4]", ra)
	}
	close(release)
	wg.Wait()
	if shed := st.Snapshot().Shed; shed != 1 {
		t.Fatalf("shed counter = %d", shed)
	}
}

// The deadline middleware turns an over-budget handler into a 503.
func TestTimeoutDeadline(t *testing.T) {
	stuck := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-time.After(10 * time.Second):
		}
	})
	h := Wrap(stuck, Options{Timeout: 50 * time.Millisecond})
	ts := httptest.NewServer(h)
	defer ts.Close()
	resp, body := get(t, ts.URL)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d body %q", resp.StatusCode, body)
	}
}

// Graceful shutdown drains a slow in-flight request to completion.
func TestShutdownDrainsInFlight(t *testing.T) {
	started := make(chan struct{})
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(started)
		time.Sleep(300 * time.Millisecond)
		fmt.Fprint(w, "drained")
	})
	st := NewStats()
	srv := &http.Server{Handler: Wrap(slow, Options{Stats: st})}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)

	type result struct {
		status int
		body   string
		err    error
	}
	resCh := make(chan result, 1)
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String())
		if err != nil {
			resCh <- result{err: err}
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		resCh <- result{status: resp.StatusCode, body: string(b)}
	}()

	<-started
	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()

	res := <-resCh
	if res.err != nil {
		t.Fatalf("in-flight request failed during shutdown: %v", res.err)
	}
	if res.status != http.StatusOK || res.body != "drained" {
		t.Fatalf("in-flight request not drained: %d %q", res.status, res.body)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// Counters stay consistent under concurrent load (run with -race).
func TestStatsConcurrent(t *testing.T) {
	st := NewStats()
	ok := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	h := Wrap(ok, Options{Stats: st, MaxInFlight: 64})
	ts := httptest.NewServer(h)
	defer ts.Close()

	const workers, per = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				resp, err := http.Get(ts.URL)
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}
	wg.Wait()
	snap := st.Snapshot()
	if snap.Requests != workers*per {
		t.Fatalf("requests = %d, want %d", snap.Requests, workers*per)
	}
	if snap.ByClass["2xx"] != workers*per {
		t.Fatalf("2xx = %d", snap.ByClass["2xx"])
	}
	if snap.InFlight != 0 {
		t.Fatalf("in_flight = %d after drain", snap.InFlight)
	}
	if snap.LatencyMaxMS < 0 || snap.LatencyMeanMS < 0 {
		t.Fatalf("negative latency: %+v", snap)
	}
}

// The stats handler serves valid JSON.
func TestStatsHandler(t *testing.T) {
	st := NewStats()
	st.observe(200, time.Millisecond, "")
	ts := httptest.NewServer(st.Handler())
	defer ts.Close()
	resp, body := get(t, ts.URL)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("bad JSON %q: %v", body, err)
	}
	if snap.Requests != 1 || snap.ByClass["2xx"] != 1 {
		t.Fatalf("snapshot %+v", snap)
	}
}
