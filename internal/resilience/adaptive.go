package resilience

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// Priority classifies a request for admission control. Under overload
// the limiter sheds lower-priority traffic first, so the control plane
// (probes, metrics, admin) stays reachable on a saturated replica and
// single-pair queries outlive bulk batches.
type Priority int

const (
	// PriorityCritical requests (health probes, metrics, admin) are
	// never shed: an orchestrator must be able to see and operate a
	// saturated replica, and ejecting a merely-busy backend because its
	// /readyz was shed would turn overload into an outage.
	PriorityCritical Priority = iota
	// PriorityNormal is interactive query traffic (/distance, /knn, ...).
	PriorityNormal
	// PriorityBatch is bulk traffic (/batch): it admits only below a
	// reserved headroom fraction of the limit, so batches shed before
	// single-pair queries as the limiter tightens.
	PriorityBatch
)

func (p Priority) String() string {
	switch p {
	case PriorityCritical:
		return "critical"
	case PriorityBatch:
		return "batch"
	default:
		return "normal"
	}
}

// PriorityForPath maps a request path onto its admission priority.
func PriorityForPath(path string) Priority {
	switch {
	case path == "/healthz" || path == "/readyz" || path == "/statz" ||
		path == "/metrics" || strings.HasPrefix(path, "/admin/"):
		return PriorityCritical
	case path == "/batch":
		return PriorityBatch
	default:
		return PriorityNormal
	}
}

// AdmissionConfig tunes the adaptive AIMD concurrency limiter. The
// limiter replaces a static in-flight cap with one that tracks what the
// replica can actually sustain: each Interval it compares the window's
// observed p99 latency against TargetP99, backing off multiplicatively
// when the target is blown and probing up additively when the window
// ran at the limit without blowing it.
type AdmissionConfig struct {
	// TargetP99 is the latency the limiter defends; required (> 0).
	TargetP99 time.Duration
	// Initial is the starting concurrency limit (default 64).
	Initial int
	// Min / Max bound the adapted limit (defaults 4 and 4096).
	Min, Max int
	// Interval is the adjustment window (default 500ms).
	Interval time.Duration
	// Step is the additive increase applied after a window that ran at
	// the limit while keeping p99 under target (default 4).
	Step int
	// Backoff is the multiplicative decrease applied after a window
	// whose p99 exceeded the target (default 0.75).
	Backoff float64
	// BatchReserve is the fraction of the limit reserved for non-batch
	// traffic: PriorityBatch requests admit only while in-flight count
	// is below limit*(1-BatchReserve), so /batch sheds first (default
	// 0.125; negative disables the reserve).
	BatchReserve float64
}

func (c AdmissionConfig) withDefaults() (AdmissionConfig, error) {
	if c.TargetP99 <= 0 {
		return c, fmt.Errorf("resilience: admission TargetP99 must be positive")
	}
	if c.Initial <= 0 {
		c.Initial = 64
	}
	if c.Min <= 0 {
		c.Min = 4
	}
	if c.Max <= 0 {
		c.Max = 4096
	}
	if c.Min > c.Max {
		return c, fmt.Errorf("resilience: admission Min %d > Max %d", c.Min, c.Max)
	}
	if c.Initial < c.Min {
		c.Initial = c.Min
	}
	if c.Initial > c.Max {
		c.Initial = c.Max
	}
	if c.Interval <= 0 {
		c.Interval = 500 * time.Millisecond
	}
	if c.Step <= 0 {
		c.Step = 4
	}
	if c.Backoff <= 0 || c.Backoff >= 1 {
		c.Backoff = 0.75
	}
	if c.BatchReserve == 0 {
		c.BatchReserve = 0.125
	}
	if c.BatchReserve < 0 {
		c.BatchReserve = 0
	}
	if c.BatchReserve > 0.9 {
		c.BatchReserve = 0.9
	}
	return c, nil
}

// AdaptiveLimiter is an AIMD concurrency limiter keyed on observed p99
// latency. Admission is a lock-free in-flight CAS; adaptation runs
// opportunistically on request completion (no background goroutine to
// manage), at most once per Interval.
type AdaptiveLimiter struct {
	cfg AdmissionConfig

	limit    atomic.Int64
	inFlight atomic.Int64
	// winMax tracks the highest in-flight count seen this window: the
	// limit only grows after a window that actually pushed against it,
	// so idle periods cannot ratchet it to Max.
	winMax atomic.Int64

	// window is the cumulative latency histogram; each adjustment
	// diffs it against prev to get the window's own observations.
	window *telemetry.Histogram
	adjMu  sync.Mutex
	prev   telemetry.HistSnapshot
	lastNS atomic.Int64 // unix nanos of the last adjustment

	shedByPriority [3]*telemetry.Counter
	increases      *telemetry.Counter
	decreases      *telemetry.Counter
}

// NewAdaptiveLimiter validates cfg and registers the limiter's
// telemetry (rne_admit_limit gauge, shed-by-priority counters, adapt
// counters) on reg; a nil reg keeps the limiter metric-free.
func NewAdaptiveLimiter(cfg AdmissionConfig, reg *telemetry.Registry) (*AdaptiveLimiter, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	l := &AdaptiveLimiter{
		cfg:    cfg,
		window: telemetry.NewHistogram(telemetry.LatencyBuckets),
	}
	l.limit.Store(int64(cfg.Initial))
	l.lastNS.Store(time.Now().UnixNano())
	if reg != nil {
		reg.GaugeFunc("rne_admit_limit",
			"Current adaptive admission limit (concurrent requests).",
			func() float64 { return float64(l.limit.Load()) })
		for _, p := range []Priority{PriorityCritical, PriorityNormal, PriorityBatch} {
			l.shedByPriority[p] = reg.Counter("rne_admit_shed_total",
				"Requests shed by the adaptive admission limiter, by priority.",
				"priority", p.String())
		}
		l.increases = reg.Counter("rne_admit_increases_total",
			"Additive admission-limit increases (window at limit, p99 under target).")
		l.decreases = reg.Counter("rne_admit_decreases_total",
			"Multiplicative admission-limit decreases (window p99 over target).")
	}
	return l, nil
}

// Limit reports the current admission limit.
func (l *AdaptiveLimiter) Limit() int { return int(l.limit.Load()) }

// InFlight reports the number of currently admitted requests.
func (l *AdaptiveLimiter) InFlight() int { return int(l.inFlight.Load()) }

// Acquire admits or sheds one request of the given priority. Critical
// requests always admit. On true, the caller must call Release with the
// request's latency when it finishes.
func (l *AdaptiveLimiter) Acquire(p Priority) bool {
	if p == PriorityCritical {
		l.inFlight.Add(1)
		return true
	}
	limit := l.limit.Load()
	threshold := limit
	if p == PriorityBatch && l.cfg.BatchReserve > 0 {
		threshold = limit - int64(float64(limit)*l.cfg.BatchReserve)
		if threshold < 1 {
			threshold = 1
		}
	}
	for {
		cur := l.inFlight.Load()
		if cur >= threshold {
			if c := l.shedByPriority[p]; c != nil {
				c.Inc()
			}
			return false
		}
		if l.inFlight.CompareAndSwap(cur, cur+1) {
			l.noteInFlight(cur + 1)
			return true
		}
	}
}

func (l *AdaptiveLimiter) noteInFlight(n int64) {
	for {
		m := l.winMax.Load()
		if n <= m || l.winMax.CompareAndSwap(m, n) {
			return
		}
	}
}

// Release records one finished request's latency and returns its
// admission slot, then adapts the limit if an interval has elapsed.
func (l *AdaptiveLimiter) Release(latency time.Duration) {
	l.window.ObserveDuration(latency)
	l.inFlight.Add(-1)
	l.maybeAdjust()
}

func (l *AdaptiveLimiter) maybeAdjust() {
	now := time.Now().UnixNano()
	last := l.lastNS.Load()
	if now-last < l.cfg.Interval.Nanoseconds() {
		return
	}
	if !l.adjMu.TryLock() {
		return
	}
	defer l.adjMu.Unlock()
	if now-l.lastNS.Load() < l.cfg.Interval.Nanoseconds() {
		return
	}
	cur := l.window.Snapshot()
	win := cur.Sub(l.prev)
	l.prev = cur
	winMax := l.winMax.Swap(l.inFlight.Load())
	l.lastNS.Store(now)
	if win.Count == 0 {
		return
	}
	limit := l.limit.Load()
	p99 := win.Quantile(0.99)
	switch {
	case p99 > l.cfg.TargetP99.Seconds():
		next := int64(float64(limit) * l.cfg.Backoff)
		if next < int64(l.cfg.Min) {
			next = int64(l.cfg.Min)
		}
		if next != limit {
			l.limit.Store(next)
			if l.decreases != nil {
				l.decreases.Inc()
			}
		}
	case winMax >= limit-1:
		// Under target while pushing against the limit: probe upward.
		next := limit + int64(l.cfg.Step)
		if next > int64(l.cfg.Max) {
			next = int64(l.cfg.Max)
		}
		if next != limit {
			l.limit.Store(next)
			if l.increases != nil {
				l.increases.Inc()
			}
		}
	}
}

// AdaptiveLimit wraps next with the adaptive limiter: shed requests
// answer 429 with a jittered Retry-After hint, and every admitted
// request's latency feeds the AIMD window. Shed requests also increment
// the shared /statz shed counter so operators keep one saturation view
// across static and adaptive replicas.
func AdaptiveLimit(next http.Handler, l *AdaptiveLimiter, retryAfter time.Duration, jitter float64, st *Stats) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		p := PriorityForPath(r.URL.Path)
		if !l.Acquire(p) {
			if st != nil {
				st.shed.Inc()
			}
			telemetry.TraceEvent(r.Context(), "shed",
				fmt.Sprintf("admission limit %d, %s priority", l.Limit(), p))
			hint := retryAfterHint(retryAfter, jitter)
			w.Header().Set("Retry-After", hint)
			writeJSONError(w, http.StatusTooManyRequests,
				fmt.Sprintf("server saturated (admission limit %d, %s priority); retry after %s s",
					l.Limit(), p, hint))
			return
		}
		start := time.Now()
		defer func() { l.Release(time.Since(start)) }()
		next.ServeHTTP(w, r)
	})
}
