package resilience

import (
	"sync"
	"testing"
)

func TestStatsExtraCounters(t *testing.T) {
	s := NewStats()
	if snap := s.Snapshot(); snap.Extra != nil {
		t.Fatalf("fresh stats report extra counters: %v", snap.Extra)
	}
	c := s.Counter("guard_clamped_low")
	if again := s.Counter("guard_clamped_low"); again != c {
		t.Fatal("Counter returned a different pointer for the same name")
	}
	c.Add(3)
	s.Counter("guard_checked").Add(7)
	snap := s.Snapshot()
	if snap.Extra["guard_clamped_low"] != 3 || snap.Extra["guard_checked"] != 7 {
		t.Fatalf("extra counters = %v", snap.Extra)
	}
}

func TestStatsExtraCountersConcurrent(t *testing.T) {
	s := NewStats()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				s.Counter("hits").Add(1)
			}
		}()
	}
	wg.Wait()
	if got := s.Snapshot().Extra["hits"]; got != 8000 {
		t.Fatalf("hits = %d, want 8000", got)
	}
}
