package resilience

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// BudgetHeader carries the remaining deadline budget of a request, in
// (possibly fractional) milliseconds. A gateway derives it from the
// client's deadline, subtracts its own overhead margin, and forwards
// what is left to each backend; every tier spends from the same budget
// instead of stacking independent timeouts. A request arriving with a
// non-positive budget is answered 504 immediately — the cheapest
// possible way to abandon work nobody is waiting for.
const BudgetHeader = "X-Rne-Budget-Ms"

// ParseBudget extracts the forwarded deadline budget from r, reporting
// whether a parseable budget header was present. A zero or negative
// budget is returned as-is (the caller answers 504 without doing work).
func ParseBudget(r *http.Request) (time.Duration, bool) {
	raw := r.Header.Get(BudgetHeader)
	if raw == "" {
		return 0, false
	}
	ms, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return 0, false
	}
	return time.Duration(ms * float64(time.Millisecond)), true
}

// SetBudget stamps the remaining budget onto an outbound request's
// headers, rounded to microsecond precision.
func SetBudget(h http.Header, d time.Duration) {
	h.Set(BudgetHeader, strconv.FormatFloat(float64(d)/float64(time.Millisecond), 'f', 3, 64))
}

// retryAfterHint renders a Retry-After value of d spread by a uniform
// ±jitter fraction, so a synchronized fleet of shed clients does not
// retry in lockstep and re-saturate the replica at the same instant.
// Sub-10s hints keep two decimals (our clients parse Retry-After as a
// number); longer hints round to whole seconds.
func retryAfterHint(d time.Duration, jitter float64) string {
	secs := d.Seconds()
	if jitter > 0 {
		secs *= 1 + jitter*(2*rand.Float64()-1)
	}
	if secs < 0.01 {
		secs = 0.01
	}
	if secs < 10 {
		return strconv.FormatFloat(secs, 'f', 2, 64)
	}
	return strconv.Itoa(int(secs + 0.5))
}

// deadlineWriter buffers the handler's response so a handler racing its
// deadline can never interleave a half-written body with the timeout
// response — the same discipline as http.TimeoutHandler, which this
// middleware replaces to add budget propagation and 504 semantics.
type deadlineWriter struct {
	mu       sync.Mutex
	h        http.Header
	buf      bytes.Buffer
	status   int
	timedOut bool
}

func (w *deadlineWriter) Header() http.Header { return w.h }

func (w *deadlineWriter) WriteHeader(code int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.timedOut || w.status != 0 {
		return
	}
	w.status = code
}

func (w *deadlineWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.timedOut {
		return 0, http.ErrHandlerTimeout
	}
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.buf.Write(p)
}

// Deadline bounds each request by the tighter of the local timeout and
// the forwarded deadline budget (BudgetHeader). When the local timeout
// fires the request is answered 503 (the replica's own limit); when the
// forwarded budget is exhausted it is answered 504 — the distinction
// lets a gateway tell "this replica is slow" from "the client's
// deadline ran out while we worked". Both carry a jittered Retry-After.
// The handler's context is canceled either way, so cooperative handlers
// abandon the work instead of computing an answer nobody will read.
func Deadline(next http.Handler, local time.Duration, jitter float64, retryAfter time.Duration, st *Stats) http.Handler {
	var exhaustedLocal, exhaustedBudget *counterOrNil
	if st != nil {
		exhaustedLocal = &counterOrNil{st.reg.Counter("rne_deadline_exhausted_total",
			"Requests abandoned at their deadline, by budget source.", "source", "local")}
		exhaustedBudget = &counterOrNil{st.reg.Counter("rne_deadline_exhausted_total",
			"Requests abandoned at their deadline, by budget source.", "source", "budget")}
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		budget := local
		fromBudget := false
		if b, ok := ParseBudget(r); ok {
			if b <= 0 {
				exhaustedBudget.inc()
				telemetry.TraceEvent(r.Context(), "budget_exhausted", "spent before admission")
				w.Header().Set("Retry-After", retryAfterHint(retryAfter, jitter))
				writeJSONError(w, http.StatusGatewayTimeout,
					"deadline budget exhausted before the request was admitted")
				return
			}
			if budget <= 0 || b < budget {
				budget = b
				fromBudget = true
			}
		}
		if budget <= 0 {
			next.ServeHTTP(w, r)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), budget)
		defer cancel()
		r = r.WithContext(ctx)
		dw := &deadlineWriter{h: make(http.Header)}
		done := make(chan struct{})
		panicChan := make(chan any, 1)
		go func() {
			defer func() {
				if p := recover(); p != nil {
					panicChan <- p
				}
			}()
			next.ServeHTTP(dw, r)
			close(done)
		}()
		select {
		case p := <-panicChan:
			panic(p)
		case <-done:
			dw.mu.Lock()
			defer dw.mu.Unlock()
			dst := w.Header()
			for k, v := range dw.h {
				dst[k] = v
			}
			if dw.status == 0 {
				dw.status = http.StatusOK
			}
			w.WriteHeader(dw.status)
			w.Write(dw.buf.Bytes())
		case <-ctx.Done():
			dw.mu.Lock()
			dw.timedOut = true
			dw.mu.Unlock()
			if context.Cause(ctx) == context.Canceled {
				// The client went away (parent context canceled): there is
				// no one to answer, so write nothing.
				telemetry.TraceEvent(r.Context(), "client_gone", "canceled before completion")
				return
			}
			status := http.StatusServiceUnavailable
			msg := fmt.Sprintf("request exceeded %v deadline", budget)
			if fromBudget {
				status = http.StatusGatewayTimeout
				msg = fmt.Sprintf("deadline budget of %v exhausted", budget)
				exhaustedBudget.inc()
				telemetry.TraceEvent(r.Context(), "budget_exhausted", msg)
			} else {
				exhaustedLocal.inc()
				telemetry.TraceEvent(r.Context(), "deadline_exceeded", msg)
			}
			w.Header().Set("Retry-After", retryAfterHint(retryAfter, jitter))
			writeJSONError(w, status, msg)
		}
	})
}

// counterOrNil makes the deadline counters optional without nil checks
// at every increment site.
type counterOrNil struct{ c interface{ Inc() } }

func (c *counterOrNil) inc() {
	if c != nil && c.c != nil {
		c.c.Inc()
	}
}
