package landmark

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/sssp"
)

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := gen.Grid(14, 14, gen.DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func checkDistinct(t *testing.T, ids []int32, n int) {
	t.Helper()
	seen := make(map[int32]bool)
	for _, v := range ids {
		if v < 0 || int(v) >= n {
			t.Fatalf("landmark %d out of range", v)
		}
		if seen[v] {
			t.Fatalf("landmark %d duplicated", v)
		}
		seen[v] = true
	}
}

func TestRandom(t *testing.T) {
	g := testGraph(t)
	ls, err := Random(g, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ls) != 20 {
		t.Fatalf("got %d landmarks, want 20", len(ls))
	}
	checkDistinct(t, ls, g.NumVertices())
}

func TestFarthestSpreads(t *testing.T) {
	g := testGraph(t)
	ls, err := Farthest(g, 12, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ls) != 12 {
		t.Fatalf("got %d landmarks, want 12", len(ls))
	}
	checkDistinct(t, ls, g.NumVertices())

	// Farthest selection should achieve a noticeably smaller covering
	// radius (max distance of any vertex to its nearest landmark) than a
	// clumped set of the same size.
	cover := func(set []int32) float64 {
		ws := sssp.NewWorkspace(g)
		minDist := make([]float64, g.NumVertices())
		for i := range minDist {
			minDist[i] = sssp.Inf
		}
		var dist []float64
		for _, l := range set {
			dist = ws.FromSource(l, dist)
			for v, d := range dist {
				if d < minDist[v] {
					minDist[v] = d
				}
			}
		}
		worst := 0.0
		for _, d := range minDist {
			if d > worst {
				worst = d
			}
		}
		return worst
	}
	clumped := make([]int32, 12)
	for i := range clumped {
		clumped[i] = int32(i) // first 12 vertices are spatially adjacent
	}
	if cover(ls) >= cover(clumped) {
		t.Fatalf("farthest cover radius %v not better than clumped %v", cover(ls), cover(clumped))
	}
}

func TestByDegree(t *testing.T) {
	g := testGraph(t)
	ls, err := ByDegree(g, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	checkDistinct(t, ls, g.NumVertices())
	// Returned set must be the global degree maxima.
	minSelected := g.Degree(ls[len(ls)-1])
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		selected := false
		for _, l := range ls {
			if l == v {
				selected = true
				break
			}
		}
		if !selected && g.Degree(v) > minSelected {
			t.Fatalf("vertex %d degree %d beats selected minimum %d", v, g.Degree(v), minSelected)
		}
	}
}

func TestCountValidation(t *testing.T) {
	g := testGraph(t)
	for _, f := range []func(*graph.Graph, int, int64) ([]int32, error){Random, Farthest, ByDegree} {
		if _, err := f(g, 0, 1); err == nil {
			t.Error("count=0 accepted")
		}
		if _, err := f(g, g.NumVertices()+1, 1); err == nil {
			t.Error("count>|V| accepted")
		}
	}
}

func TestDeterministic(t *testing.T) {
	g := testGraph(t)
	a, _ := Farthest(g, 8, 5)
	b, _ := Farthest(g, 8, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("farthest selection not deterministic")
		}
	}
}
