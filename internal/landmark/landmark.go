// Package landmark selects landmark vertex sets. Landmarks anchor the
// landmark-based training-sample selection of Section V-B and the
// ALT/LT baseline of Goldberg & Harrelson. The paper recommends
// farthest selection: iteratively pick the vertex farthest (in network
// distance) from the landmarks chosen so far, covering regions the
// current set leaves "un-covered".
package landmark

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/graph"
	"repro/internal/sssp"
)

// Random returns count distinct vertices chosen uniformly at random.
func Random(g *graph.Graph, count int, seed int64) ([]int32, error) {
	n := g.NumVertices()
	if err := checkCount(count, n); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	out := make([]int32, count)
	for i := 0; i < count; i++ {
		out[i] = int32(perm[i])
	}
	return out, nil
}

// Farthest returns count landmarks by greedy k-center selection on
// network distance: the first landmark is random, each next one is the
// vertex maximizing the distance to its nearest chosen landmark.
// It runs count single-source Dijkstras.
func Farthest(g *graph.Graph, count int, seed int64) ([]int32, error) {
	n := g.NumVertices()
	if err := checkCount(count, n); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	ws := sssp.NewWorkspace(g)
	minDist := make([]float64, n)
	for i := range minDist {
		minDist[i] = sssp.Inf
	}
	out := make([]int32, 0, count)
	cur := int32(rng.Intn(n))
	dist := make([]float64, n)
	for len(out) < count {
		out = append(out, cur)
		dist = ws.FromSource(cur, dist)
		var next int32
		best := -1.0
		for v := 0; v < n; v++ {
			if dist[v] < minDist[v] {
				minDist[v] = dist[v]
			}
			if minDist[v] > best && minDist[v] < sssp.Inf {
				best = minDist[v]
				next = int32(v)
			}
		}
		cur = next
	}
	return out, nil
}

// ByDegree returns the count highest-degree vertices (ties broken by
// vertex id). High-degree joints are hubs of the network.
func ByDegree(g *graph.Graph, count int, _ int64) ([]int32, error) {
	n := g.NumVertices()
	if err := checkCount(count, n); err != nil {
		return nil, err
	}
	ids := make([]int32, n)
	for i := range ids {
		ids[i] = int32(i)
	}
	sort.Slice(ids, func(a, b int) bool {
		da, db := g.Degree(ids[a]), g.Degree(ids[b])
		if da != db {
			return da > db
		}
		return ids[a] < ids[b]
	})
	return ids[:count], nil
}

func checkCount(count, n int) error {
	if count < 1 {
		return fmt.Errorf("landmark: count must be >= 1, got %d", count)
	}
	if count > n {
		return fmt.Errorf("landmark: count %d exceeds |V| = %d", count, n)
	}
	return nil
}
