package ach

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/sssp"
)

func TestBuildValidatesEpsilon(t *testing.T) {
	g, err := gen.Grid(6, 6, gen.DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(g, 0); err == nil {
		t.Error("epsilon 0 accepted (exact builds belong to package ch)")
	}
	if _, err := Build(g, -0.5); err == nil {
		t.Error("negative epsilon accepted")
	}
}

func TestACHNeverUnderestimatesAndStaysClose(t *testing.T) {
	g, err := gen.Grid(12, 12, gen.DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	idx, err := Build(g, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Epsilon() != 0.1 {
		t.Fatalf("Epsilon = %v", idx.Epsilon())
	}
	q := idx.NewQuery()
	ws := sssp.NewWorkspace(g)
	rng := rand.New(rand.NewSource(3))
	n := g.NumVertices()
	for trial := 0; trial < 200; trial++ {
		s := int32(rng.Intn(n))
		u := int32(rng.Intn(n))
		want := ws.Distance(s, u)
		got := q.Distance(s, u)
		if got < want-1e-9 {
			t.Fatalf("(%d,%d): ACH %v below exact %v", s, u, got, want)
		}
		if want > 0 && (got-want)/want > 0.5 {
			t.Fatalf("(%d,%d): ACH error %v far beyond eps", s, u, (got-want)/want)
		}
	}
}
