// Package ach provides Approximate Contraction Hierarchies (Geisberger
// & Schieferdecker), the paper's "ACH" comparator: a CH built with an
// ε slack on witness acceptance. Any witness path at most (1+ε) times
// the candidate shortcut suppresses the shortcut, so fewer shortcuts
// are added and queries return distances within a bounded relative
// error while searching the same upward structure.
package ach

import (
	"fmt"

	"repro/internal/ch"
	"repro/internal/graph"
)

// Index is an approximate contraction hierarchy.
type Index struct {
	*ch.Index
}

// Build constructs an ACH with the given ε (the paper evaluates
// ε = 0.1). ε must be positive; use package ch for exact hierarchies.
func Build(g *graph.Graph, epsilon float64) (*Index, error) {
	if epsilon <= 0 {
		return nil, fmt.Errorf("ach: epsilon must be positive (use ch for exact), got %v", epsilon)
	}
	idx, err := ch.Build(g, ch.Options{Epsilon: epsilon})
	if err != nil {
		return nil, err
	}
	return &Index{Index: idx}, nil
}
