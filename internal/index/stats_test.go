package index

import (
	"math/rand"
	"reflect"
	"testing"
)

// The stats variants must return byte-identical results to the plain
// queries, and their counters must be internally consistent: visits
// bounded by the tree size, pruning + visits covering every subtree
// the traversal touched, and pruning actually occurring on selective
// queries.
func TestStatsVariantsMatchAndCount(t *testing.T) {
	m := buildModel(t)
	n := m.NumVertices()
	targets := make([]int32, 0, n/2)
	for v := int32(0); v < int32(n); v += 2 {
		targets = append(targets, v)
	}
	tree, err := Build(m, targets)
	if err != nil {
		t.Fatal(err)
	}
	totalNodes := len(tree.children)

	rng := rand.New(rand.NewSource(6))
	sawRangePrune, sawKNNPrune := false, false
	for trial := 0; trial < 50; trial++ {
		src := int32(rng.Intn(n))

		tau := m.Scale() * 0.1
		plain := tree.Range(src, tau)
		got, st := tree.RangeStats(src, tau)
		if !reflect.DeepEqual(plain, got) {
			t.Fatalf("RangeStats results diverge from Range: %v vs %v", got, plain)
		}
		if st.NodesVisited <= 0 || st.NodesVisited > totalNodes {
			t.Fatalf("range visited %d of %d nodes", st.NodesVisited, totalNodes)
		}
		if st.NodesPruned > 0 {
			sawRangePrune = true
		}

		k := 1 + rng.Intn(8)
		plainK := tree.KNN(src, k)
		gotK, stK := tree.KNNStats(src, k)
		if !reflect.DeepEqual(plainK, gotK) {
			t.Fatalf("KNNStats results diverge from KNN: %v vs %v", gotK, plainK)
		}
		if stK.NodesVisited <= 0 || stK.NodesVisited > totalNodes {
			t.Fatalf("knn visited %d of %d nodes", stK.NodesVisited, totalNodes)
		}
		if stK.VertsScanned < len(gotK) {
			t.Fatalf("knn scanned %d verts but returned %d", stK.VertsScanned, len(gotK))
		}
		if stK.NodesVisited+stK.NodesPruned > totalNodes {
			t.Fatalf("knn visited %d + pruned %d exceeds %d nodes",
				stK.NodesVisited, stK.NodesPruned, totalNodes)
		}
		if stK.NodesPruned > 0 {
			sawKNNPrune = true
		}
	}
	// A selective radius and small k on a 98-target tree must prune
	// somewhere — otherwise the counters are dead.
	if !sawRangePrune {
		t.Fatal("no range query ever pruned a subtree")
	}
	if !sawKNNPrune {
		t.Fatal("no knn query ever left a subtree unexpanded")
	}

	// Degenerate inputs keep zeroed stats.
	if out, st := tree.RangeStats(0, -1); out != nil || st != (QueryStats{}) {
		t.Fatalf("negative tau: %v %+v", out, st)
	}
	if out, st := tree.KNNStats(0, 0); out != nil || st != (QueryStats{}) {
		t.Fatalf("k=0: %v %+v", out, st)
	}
}
