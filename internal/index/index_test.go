package index

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/vecmath"
)

func buildModel(t *testing.T) *core.Model {
	t.Helper()
	g, err := gen.Grid(14, 14, gen.DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions(5)
	opt.Dim = 16
	opt.Epochs = 4
	opt.VertexSampleRatio = 30
	opt.FineTuneRounds = 2
	opt.ValidationPairs = 200
	opt.GridK = 6
	m, _, err := core.Build(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// bruteRange/bruteKNN are reference implementations over the model's
// own estimates: the index must match them exactly.
func bruteRange(m *core.Model, targets []int32, src int32, tau float64) []int32 {
	var out []int32
	for _, v := range targets {
		if m.Estimate(src, v) <= tau {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func bruteKNN(m *core.Model, targets []int32, src int32, k int) []float64 {
	ds := make([]float64, len(targets))
	for i, v := range targets {
		ds[i] = m.Estimate(src, v)
	}
	sort.Float64s(ds)
	if k > len(ds) {
		k = len(ds)
	}
	return ds[:k]
}

func TestRangeMatchesBruteForce(t *testing.T) {
	m := buildModel(t)
	rng := rand.New(rand.NewSource(2))
	n := m.NumVertices()
	targets := make([]int32, 0, n/3)
	for v := int32(0); v < int32(n); v++ {
		if rng.Intn(3) == 0 {
			targets = append(targets, v)
		}
	}
	tree, err := Build(m, targets)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Size() != len(targets) {
		t.Fatalf("Size = %d, want %d", tree.Size(), len(targets))
	}
	for trial := 0; trial < 30; trial++ {
		src := int32(rng.Intn(n))
		tau := m.Scale() * (0.05 + rng.Float64()*0.4)
		got := tree.Range(src, tau)
		want := bruteRange(m, targets, src, tau)
		if len(got) != len(want) {
			t.Fatalf("src %d tau %v: got %d results, want %d", src, tau, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("src %d: result %d is %d, want %d", src, i, got[i], want[i])
			}
		}
	}
}

func TestRangeEdgeCases(t *testing.T) {
	m := buildModel(t)
	targets := []int32{1, 5, 9}
	tree, err := Build(m, targets)
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.Range(0, -1); got != nil {
		t.Fatalf("negative tau returned %v", got)
	}
	// Huge tau returns everything.
	if got := tree.Range(0, 1e18); len(got) != len(targets) {
		t.Fatalf("huge tau returned %d of %d", len(got), len(targets))
	}
	// Zero tau from an indexed vertex returns at least itself.
	got := tree.Range(5, 0)
	found := false
	for _, v := range got {
		if v == 5 {
			found = true
		}
	}
	if !found {
		t.Fatalf("range(5, 0) = %v missing the query vertex", got)
	}
}

func TestKNNMatchesBruteForceDistances(t *testing.T) {
	m := buildModel(t)
	rng := rand.New(rand.NewSource(3))
	n := m.NumVertices()
	targets := make([]int32, 0, n/4)
	for v := int32(0); v < int32(n); v++ {
		if rng.Intn(4) == 0 {
			targets = append(targets, v)
		}
	}
	tree, err := Build(m, targets)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 30; trial++ {
		src := int32(rng.Intn(n))
		k := 1 + rng.Intn(10)
		got := tree.KNN(src, k)
		wantDists := bruteKNN(m, targets, src, k)
		if len(got) != len(wantDists) {
			t.Fatalf("src %d k %d: got %d results, want %d", src, k, len(got), len(wantDists))
		}
		// Distances must match the true k smallest and be non-decreasing.
		prev := -1.0
		for i, v := range got {
			d := m.Estimate(src, v)
			if d < prev-1e-9 {
				t.Fatalf("kNN results not sorted: %v then %v", prev, d)
			}
			prev = d
			if diff := d - wantDists[i]; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("src %d k %d pos %d: dist %v, want %v", src, k, i, d, wantDists[i])
			}
		}
	}
}

func TestKNNEdgeCases(t *testing.T) {
	m := buildModel(t)
	targets := []int32{2, 4, 6, 8}
	tree, err := Build(m, targets)
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.KNN(0, 0); got != nil {
		t.Fatalf("k=0 returned %v", got)
	}
	if got := tree.KNN(0, 100); len(got) != len(targets) {
		t.Fatalf("k>|targets| returned %d of %d", len(got), len(targets))
	}
	// k=1 from an indexed vertex must return that vertex (distance 0).
	if got := tree.KNN(4, 1); len(got) != 1 || got[0] != 4 {
		t.Fatalf("KNN(4,1) = %v, want [4]", got)
	}
}

func TestBuildValidation(t *testing.T) {
	m := buildModel(t)
	if _, err := Build(m, nil); err == nil {
		t.Error("empty targets accepted")
	}
	if _, err := Build(m, []int32{-1}); err == nil {
		t.Error("negative target accepted")
	}
	if _, err := Build(m, []int32{int32(m.NumVertices())}); err == nil {
		t.Error("out-of-range target accepted")
	}
	// A loaded (hierarchy-less) model is rejected.
	naiveOpt := core.DefaultOptions(1)
	naiveOpt.Hierarchical = false
	naiveOpt.Dim = 8
	naiveOpt.Epochs = 1
	naiveOpt.VertexSampleRatio = 1
	naiveOpt.FineTuneRounds = 1
	naiveOpt.ActiveFineTune = false
	naiveOpt.ValidationPairs = 50
	g, err := gen.Grid(8, 8, gen.DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	nm, _, err := core.Build(g, naiveOpt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(nm, []int32{0}); err == nil {
		t.Error("hierarchy-less model accepted")
	}
}

func TestRadiiCoverIndexedVertices(t *testing.T) {
	// Invariant behind all pruning: every indexed vertex under a slot is
	// within the slot's radius of the slot's vector.
	m := buildModel(t)
	targets := make([]int32, m.NumVertices())
	for i := range targets {
		targets[i] = int32(i)
	}
	tree, err := Build(m, targets)
	if err != nil {
		t.Fatal(err)
	}
	var walk func(slot int32) []int32
	walk = func(slot int32) []int32 {
		var under []int32
		under = append(under, tree.verts[slot]...)
		for _, c := range tree.children[slot] {
			under = append(under, walk(c)...)
		}
		for _, v := range under {
			d := vecmath.Lp(tree.vectors[slot], m.Vector(v), m.P()) * m.Scale()
			if d > tree.radius[slot]+1e-9 {
				t.Fatalf("slot %d radius %v does not cover vertex %d at %v", slot, tree.radius[slot], v, d)
			}
		}
		return under
	}
	if got := len(walk(tree.root)); got != len(targets) {
		t.Fatalf("tree covers %d of %d targets", got, len(targets))
	}
}

func TestTreeSerializationRoundTrip(t *testing.T) {
	m := buildModel(t)
	rng := rand.New(rand.NewSource(8))
	var targets []int32
	for v := int32(0); v < int32(m.NumVertices()); v++ {
		if rng.Intn(3) == 0 {
			targets = append(targets, v)
		}
	}
	tree, err := Build(m, targets)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tree.Save(&buf); err != nil {
		t.Fatal(err)
	}

	// Reload against a save/load round-tripped model (the serving path).
	var mbuf bytes.Buffer
	if err := m.Save(&mbuf); err != nil {
		t.Fatal(err)
	}
	m2, err := core.Load(&mbuf)
	if err != nil {
		t.Fatal(err)
	}
	tree2, err := Load(&buf, m2)
	if err != nil {
		t.Fatal(err)
	}
	if tree2.Size() != tree.Size() {
		t.Fatalf("size changed: %d vs %d", tree2.Size(), tree.Size())
	}
	for trial := 0; trial < 20; trial++ {
		src := int32(rng.Intn(m.NumVertices()))
		k := 1 + rng.Intn(8)
		a := tree.KNN(src, k)
		b := tree2.KNN(src, k)
		if len(a) != len(b) {
			t.Fatalf("knn size differs after reload")
		}
		for i := range a {
			if m.Estimate(src, a[i]) != m2.Estimate(src, b[i]) {
				t.Fatalf("knn distances differ after reload")
			}
		}
		tau := m.Scale() * (0.1 + rng.Float64()*0.3)
		ra := tree.Range(src, tau)
		rb := tree2.Range(src, tau)
		if len(ra) != len(rb) {
			t.Fatalf("range size differs after reload: %d vs %d", len(ra), len(rb))
		}
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatal("range results differ after reload")
			}
		}
	}
}

func TestTreeLoadRejectsMismatches(t *testing.T) {
	m := buildModel(t)
	tree, err := Build(m, []int32{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tree.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Garbage rejected.
	if _, err := Load(bytes.NewReader([]byte("nope")), m); err == nil {
		t.Fatal("garbage accepted")
	}
	// A model with different shape rejected.
	g2, err := gen.Grid(8, 8, gen.DefaultConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions(9)
	opt.Dim = 8
	opt.Epochs = 1
	opt.VertexSampleRatio = 2
	opt.FineTuneRounds = 1
	opt.HierSampleCap = 1000
	opt.ValidationPairs = 50
	m2, _, err := core.Build(g2, opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bytes.NewReader(buf.Bytes()), m2); err == nil {
		t.Fatal("foreign model accepted")
	}
}
