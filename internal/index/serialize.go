package index

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/fsx"
)

// Serialization lets a spatial index built next to a fresh model be
// reloaded alongside a deserialized model, so query servers can serve
// /knn and /range without retraining. The format stores the pruned
// tree's structure, per-slot vectors and radii, and the indexed target
// lists; the model itself is saved separately (core.Model.Save).
//
// Two versions exist, dispatched on an 8-byte magic:
//
//   - treeMagicV1 is the legacy format (payload only). Files written
//     before the integrity bump still load.
//   - treeMagicV2 is the current format: magic, int64 payload length,
//     payload, uint32 CRC-32 (IEEE) trailer, so Load rejects
//     truncated or bit-flipped files with a precise error.
const (
	treeMagicV1 = "RNEIDX1\n"
	treeMagicV2 = "RNEIDX2\n"
)

// payloadSize is the exact V2 payload length.
func (t *Tree) payloadSize() int64 {
	n := int64(6*8 + 16) // header ints + p/scale
	for _, s := range t.children {
		n += 8 + 4*int64(len(s))
	}
	for _, s := range t.verts {
		n += 8 + 4*int64(len(s))
	}
	d := int64(0)
	if len(t.vectors) > 0 {
		d = int64(len(t.vectors[0]))
	}
	n += int64(len(t.vectors)) * d * 8
	n += int64(len(t.radius)) * 8
	return n
}

// writePayload emits the version-independent payload section.
func (t *Tree) writePayload(w io.Writer) error {
	d := 0
	if len(t.vectors) > 0 {
		d = len(t.vectors[0])
	}
	hdr := []int64{int64(len(t.children)), int64(d), int64(t.root), int64(t.size),
		int64(len(t.model.Vector(0))), int64(t.model.NumVertices())}
	if err := binary.Write(w, binary.LittleEndian, hdr); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, []float64{t.p, t.scale}); err != nil {
		return err
	}
	writeInt32Slices := func(slices [][]int32) error {
		for _, s := range slices {
			if err := binary.Write(w, binary.LittleEndian, int64(len(s))); err != nil {
				return err
			}
			if len(s) > 0 {
				if err := binary.Write(w, binary.LittleEndian, s); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := writeInt32Slices(t.children); err != nil {
		return err
	}
	if err := writeInt32Slices(t.verts); err != nil {
		return err
	}
	for _, vec := range t.vectors {
		if err := binary.Write(w, binary.LittleEndian, vec); err != nil {
			return err
		}
	}
	return binary.Write(w, binary.LittleEndian, t.radius)
}

// Save serializes the tree structure (not the model) in the current
// integrity-checked format.
func (t *Tree) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(treeMagicV2); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, t.payloadSize()); err != nil {
		return err
	}
	cw := fsx.NewCRCWriter(bw)
	if err := t.writePayload(cw); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, cw.Sum32()); err != nil {
		return err
	}
	return bw.Flush()
}

// Load deserializes a tree saved with Save (either format version) and
// attaches it to the given model, which must match the one the tree
// was built with (dimension, vertex count, metric and scale are
// verified).
func Load(r io.Reader, m *core.Model) (*Tree, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(treeMagicV2))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("index: reading magic: %w", err)
	}
	switch string(magic) {
	case treeMagicV1:
		return loadPayload(br, m)
	case treeMagicV2:
	default:
		return nil, fmt.Errorf("index: bad magic %q", magic)
	}
	var plen int64
	if err := binary.Read(br, binary.LittleEndian, &plen); err != nil {
		return nil, fmt.Errorf("index: reading payload length: %w", err)
	}
	if plen < 6*8+16 {
		return nil, fmt.Errorf("index: implausible payload length %d", plen)
	}
	cr := fsx.NewCRCReader(io.LimitReader(br, plen))
	t, err := loadPayload(cr, m)
	if err != nil {
		return nil, err
	}
	var wantCRC uint32
	if err := binary.Read(br, binary.LittleEndian, &wantCRC); err != nil {
		return nil, fmt.Errorf("index: reading checksum trailer: %w", err)
	}
	if err := fsx.VerifyTrailer(cr, plen, wantCRC, "index: tree"); err != nil {
		return nil, err
	}
	return t, nil
}

// loadPayload parses the version-independent payload section.
func loadPayload(br io.Reader, m *core.Model) (*Tree, error) {
	var hdr [6]int64
	if err := binary.Read(br, binary.LittleEndian, &hdr); err != nil {
		return nil, fmt.Errorf("index: reading header: %w", err)
	}
	nSlots, d, root, size, modelDim, modelVerts := hdr[0], hdr[1], hdr[2], hdr[3], hdr[4], hdr[5]
	if nSlots <= 0 || nSlots > 1<<31 || root < 0 || root >= nSlots || size < 0 {
		return nil, fmt.Errorf("index: implausible header %v", hdr)
	}
	if int(modelDim) != m.Dim() || int(modelVerts) != m.NumVertices() {
		return nil, fmt.Errorf("index: tree was built for a %dx%d model, got %dx%d",
			modelVerts, modelDim, m.NumVertices(), m.Dim())
	}
	var pScale [2]float64
	if err := binary.Read(br, binary.LittleEndian, &pScale); err != nil {
		return nil, err
	}
	if pScale[0] != m.P() || pScale[1] != m.Scale() {
		return nil, fmt.Errorf("index: tree metric/scale (%v, %v) do not match model (%v, %v)",
			pScale[0], pScale[1], m.P(), m.Scale())
	}

	t := &Tree{model: m, p: pScale[0], scale: pScale[1], root: int32(root), size: int(size)}
	readInt32Slices := func(n int64, maxID int64) ([][]int32, error) {
		out := make([][]int32, n)
		for i := range out {
			var l int64
			if err := binary.Read(br, binary.LittleEndian, &l); err != nil {
				return nil, err
			}
			if l < 0 || l > maxID {
				return nil, fmt.Errorf("index: implausible slice length %d", l)
			}
			if l == 0 {
				continue
			}
			s := make([]int32, l)
			if err := binary.Read(br, binary.LittleEndian, s); err != nil {
				return nil, err
			}
			for _, v := range s {
				if int64(v) < 0 || int64(v) >= maxID {
					return nil, fmt.Errorf("index: id %d outside [0,%d)", v, maxID)
				}
			}
			out[i] = s
		}
		return out, nil
	}
	var err error
	if t.children, err = readInt32Slices(nSlots, nSlots); err != nil {
		return nil, err
	}
	if t.verts, err = readInt32Slices(nSlots, modelVerts); err != nil {
		return nil, err
	}
	t.vectors = make([][]float64, nSlots)
	for i := range t.vectors {
		vec := make([]float64, d)
		if err := binary.Read(br, binary.LittleEndian, vec); err != nil {
			return nil, err
		}
		t.vectors[i] = vec
	}
	t.radius = make([]float64, nSlots)
	if err := binary.Read(br, binary.LittleEndian, t.radius); err != nil {
		return nil, err
	}
	return t, nil
}

// SaveFile writes the tree to the named file atomically (temp file +
// fsync + rename; see fsx.WriteAtomic).
func (t *Tree) SaveFile(path string) error {
	return fsx.WriteAtomic(path, t.Save)
}

// LoadFile reads a tree from the named file, attaching it to m.
func LoadFile(path string, m *core.Model) (*Tree, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f, m)
}
