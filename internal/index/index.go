// Package index implements the tree-structured embedding index of
// Section VI: the partition hierarchy annotated, per node, with the
// node's global embedding vector and a covering radius (the maximum
// embedding distance to any indexed vertex underneath). Range and kNN
// queries prune subtrees through the triangle inequality, which the
// L_p embedding metric guarantees by construction.
package index

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/pqueue"
	"repro/internal/vecmath"
)

// Tree is an embedding-space index over a set of target vertices
// (e.g. taxis, POIs). Build once, query many times; queries are
// read-only and safe for concurrent use.
type Tree struct {
	model *core.Model
	p     float64
	scale float64

	// Pruned mirror of the hierarchy: only nodes with >= 1 target.
	children [][]int32 // child slot ids per node slot
	vectors  [][]float64
	radius   []float64
	// verts[slot] lists target vertex ids directly under a leaf slot.
	verts [][]int32
	root  int32
	size  int
}

// Build constructs the index over targets. The model must retain its
// hierarchy (freshly built hierarchical models do; loaded models do
// not).
func Build(m *core.Model, targets []int32) (*Tree, error) {
	hh := m.Hier()
	if hh == nil {
		return nil, fmt.Errorf("index: model has no hierarchy (naive or deserialized model)")
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("index: empty target set")
	}
	n := m.NumVertices()
	inSet := make([]bool, n)
	for _, v := range targets {
		if v < 0 || int(v) >= n {
			return nil, fmt.Errorf("index: target %d outside [0,%d)", v, n)
		}
		inSet[v] = true
	}

	h := hh.H
	t := &Tree{model: m, p: m.P(), scale: m.Scale(), size: len(targets)}

	// Recursively clone the subtree containing targets. Vertex nodes are
	// folded into their parent slot's vertex list.
	d := m.Dim()
	var clone func(node int32) int32
	clone = func(node int32) int32 {
		slot := int32(len(t.children))
		t.children = append(t.children, nil)
		t.verts = append(t.verts, nil)
		vec := make([]float64, d)
		hh.NodeGlobalInto(vec, node)
		t.vectors = append(t.vectors, vec)
		t.radius = append(t.radius, 0)

		for _, c := range h.Children(node) {
			if h.IsVertexNode(c) {
				if v := h.VertexID(c); inSet[v] {
					t.verts[slot] = append(t.verts[slot], v)
				}
				continue
			}
			if !subtreeHasTarget(h, c, inSet) {
				continue
			}
			cs := clone(c)
			t.children[slot] = append(t.children[slot], cs)
		}
		return slot
	}
	// Handle degenerate single-vertex hierarchies where the root is a
	// vertex node itself.
	if h.IsVertexNode(0) {
		slot := int32(0)
		t.children = append(t.children, nil)
		vec := make([]float64, d)
		hh.NodeGlobalInto(vec, 0)
		t.vectors = append(t.vectors, vec)
		t.radius = append(t.radius, 0)
		t.verts = append(t.verts, []int32{h.VertexID(0)})
		t.root = slot
	} else {
		t.root = clone(0)
	}

	t.computeRadii(t.root)
	return t, nil
}

// subtreeHasTarget reports whether any target vertex lives under node.
func subtreeHasTarget(h interface {
	SubgraphVertices(int32) []int32
}, node int32, inSet []bool) bool {
	for _, v := range h.SubgraphVertices(node) {
		if inSet[v] {
			return true
		}
	}
	return false
}

// computeRadii fills radius[slot] = max scaled L_p distance from the
// slot's vector to any indexed vertex in its subtree, returning the
// maximum for the parent.
func (t *Tree) computeRadii(slot int32) float64 {
	var r float64
	for _, v := range t.verts[slot] {
		d := vecmath.Lp(t.vectors[slot], t.model.Vector(v), t.p) * t.scale
		if d > r {
			r = d
		}
	}
	for _, c := range t.children[slot] {
		_ = t.computeRadii(c)
		// Bound the child's farthest vertex through the child center.
		d := vecmath.Lp(t.vectors[slot], t.vectors[c], t.p)*t.scale + t.radius[c]
		if d > r {
			r = d
		}
	}
	t.radius[slot] = r
	return r
}

// Size returns the number of indexed targets.
func (t *Tree) Size() int { return t.size }

// IndexBytes reports the tree's own resident size (vectors, radii,
// child and vertex lists), excluding the model it references, for
// per-component memory accounting.
func (t *Tree) IndexBytes() int64 {
	var b int64
	for slot := range t.children {
		b += int64(len(t.children[slot]))*4 +
			int64(len(t.vectors[slot]))*8 +
			int64(len(t.verts[slot]))*4 + 8 // radius entry
	}
	return b + 64
}

// QueryStats counts the work one tree traversal did, for query
// explainability: how much of the index the triangle-inequality
// pruning actually skipped.
type QueryStats struct {
	// NodesVisited counts tree slots expanded (their vertices scored
	// and children considered).
	NodesVisited int `json:"nodes_visited"`
	// NodesPruned counts subtrees never expanded: cut by the radius
	// lower bound on Range, or still queued when KNN's best-first
	// search terminated.
	NodesPruned int `json:"nodes_pruned"`
	// VertsScanned counts candidate target vertices whose embedding
	// distance was evaluated.
	VertsScanned int `json:"verts_scanned"`
}

// Range returns all indexed targets whose estimated network distance to
// source is at most tau, sorted by vertex id. A negative tau yields an
// empty result.
func (t *Tree) Range(source int32, tau float64) []int32 {
	out, _ := t.RangeStats(source, tau)
	return out
}

// RangeStats is Range plus traversal counters; NodesPruned counts
// subtrees cut by the radius lower bound (the Section VI prune).
func (t *Tree) RangeStats(source int32, tau float64) ([]int32, QueryStats) {
	var st QueryStats
	if tau < 0 {
		return nil, st
	}
	q := t.model.Vector(source)
	var out []int32
	var walk func(slot int32)
	walk = func(slot int32) {
		center := vecmath.Lp(q, t.vectors[slot], t.p) * t.scale
		if center-t.radius[slot] > tau {
			st.NodesPruned++
			return // triangle-inequality prune
		}
		st.NodesVisited++
		st.VertsScanned += len(t.verts[slot])
		for _, v := range t.verts[slot] {
			if vecmath.Lp(q, t.model.Vector(v), t.p)*t.scale <= tau {
				out = append(out, v)
			}
		}
		for _, c := range t.children[slot] {
			walk(c)
		}
	}
	walk(t.root)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, st
}

// payload encoding for the kNN frontier: vertices have the low bit set.
func nodePayload(slot int32) int64        { return int64(slot) << 1 }
func vertPayload(v int32) int64           { return int64(v)<<1 | 1 }
func decodePayload(p int64) (int32, bool) { return int32(p >> 1), p&1 == 1 }

// KNN returns up to k indexed targets closest to source by estimated
// network distance, nearest first (best-first tree traversal with
// lower-bound keys, the Section VI algorithm).
func (t *Tree) KNN(source int32, k int) []int32 {
	out, _ := t.KNNStats(source, k)
	return out
}

// KNNStats is KNN plus traversal counters; NodesPruned counts tree
// nodes whose lower bound kept them queued, unexpanded, when the
// best-first search found its k results (the work the radius cutoff
// avoided).
func (t *Tree) KNNStats(source int32, k int) ([]int32, QueryStats) {
	var st QueryStats
	if k <= 0 {
		return nil, st
	}
	q := t.model.Vector(source)
	var pq pqueue.FloatHeap
	lower := vecmath.Lp(q, t.vectors[t.root], t.p)*t.scale - t.radius[t.root]
	if lower < 0 {
		lower = 0
	}
	pq.Push(lower, nodePayload(t.root))
	queuedNodes := 1
	out := make([]int32, 0, k)
	for pq.Len() > 0 && len(out) < k {
		_, payload := pq.Pop()
		id, isVert := decodePayload(payload)
		if isVert {
			out = append(out, id)
			continue
		}
		st.NodesVisited++
		queuedNodes--
		st.VertsScanned += len(t.verts[id])
		for _, v := range t.verts[id] {
			pq.Push(vecmath.Lp(q, t.model.Vector(v), t.p)*t.scale, vertPayload(v))
		}
		for _, c := range t.children[id] {
			lb := vecmath.Lp(q, t.vectors[c], t.p)*t.scale - t.radius[c]
			if lb < 0 {
				lb = 0
			}
			pq.Push(lb, nodePayload(c))
			queuedNodes++
		}
	}
	st.NodesPruned = queuedNodes
	return out, st
}
