package index

import (
	"bufio"
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

// buildSmallTree returns a tree over a few targets plus its serialized
// bytes, shared by the corruption tests.
func buildSmallTree(t *testing.T) (*core.Model, *Tree, []byte) {
	t.Helper()
	m := buildModel(t)
	tree, err := Build(m, []int32{0, 3, 7, 11, 19, 42, 77, 101})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tree.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return m, tree, buf.Bytes()
}

// saveLegacyV1 reproduces the pre-integrity RNEIDX1 layout byte for
// byte, guarding backward compatibility of Load.
func saveLegacyV1(t *testing.T, tr *Tree) []byte {
	t.Helper()
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	if _, err := bw.WriteString("RNEIDX1\n"); err != nil {
		t.Fatal(err)
	}
	if err := tr.writePayload(bw); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestTreeLoadAcceptsLegacyV1(t *testing.T) {
	m, tree, _ := buildSmallTree(t)
	got, err := Load(bytes.NewReader(saveLegacyV1(t, tree)), m)
	if err != nil {
		t.Fatalf("legacy index rejected: %v", err)
	}
	if got.Size() != tree.Size() {
		t.Fatalf("size %d, want %d", got.Size(), tree.Size())
	}
	a, b := tree.KNN(5, 3), got.KNN(5, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("knn differs after legacy reload: %v vs %v", a, b)
		}
	}
}

func TestTreeLoadRejectsAllTruncations(t *testing.T) {
	m, _, raw := buildSmallTree(t)
	for cut := 0; cut < len(raw); cut++ {
		if tr, err := Load(bytes.NewReader(raw[:cut]), m); err == nil || tr != nil {
			t.Fatalf("truncation at byte %d/%d loaded successfully", cut, len(raw))
		}
	}
}

func TestTreeLoadRejectsPayloadFlip(t *testing.T) {
	m, _, raw := buildSmallTree(t)
	// Flip one byte in a vector (deep in the payload) and one in the
	// trailer; both must be caught by the checksum.
	for _, at := range []int{len(raw) / 2, len(raw) - 2} {
		mut := append([]byte(nil), raw...)
		mut[at] ^= 0x01
		if tr, err := Load(bytes.NewReader(mut), m); err == nil || tr != nil {
			t.Fatalf("flip at byte %d/%d loaded successfully", at, len(raw))
		}
	}
}

func TestTreeSaveFileAtomic(t *testing.T) {
	m, tree, _ := buildSmallTree(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "tree.idx")
	if err := tree.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if err := tree.SaveFile(path); err != nil { // overwrite path
		t.Fatal(err)
	}
	got, err := LoadFile(path, m)
	if err != nil {
		t.Fatal(err)
	}
	if got.Size() != tree.Size() {
		t.Fatalf("size %d, want %d", got.Size(), tree.Size())
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp files leaked: %d entries", len(entries))
	}
}
