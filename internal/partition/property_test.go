package partition

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
)

// TestKWayPartitionProperties drives KWay with quick-generated k and
// seeds: labels are always a complete partition with all parts
// non-empty and within a loose balance envelope.
func TestKWayPartitionProperties(t *testing.T) {
	g, err := gen.Grid(14, 14, gen.DefaultConfig(41))
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumVertices()
	f := func(kRaw uint8, seed int64) bool {
		k := 2 + int(kRaw)%9 // k in [2,10]
		labels, err := KWay(g, k, seed)
		if err != nil {
			return false
		}
		counts := make([]int, k)
		for _, l := range labels {
			if l < 0 || int(l) >= k {
				return false
			}
			counts[l]++
		}
		for _, c := range counts {
			if c == 0 || c > n*3/k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestHierarchyAncestorProperties: for every vertex pair, the common
// ancestor prefix is exactly the set of tree nodes containing both.
func TestHierarchyAncestorProperties(t *testing.T) {
	g, err := gen.Grid(12, 12, gen.DefaultConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	h, err := BuildHierarchy(g, DefaultHierConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumVertices()
	inSubgraph := func(node, v int32) bool {
		for _, u := range h.SubgraphVertices(node) {
			if u == v {
				return true
			}
		}
		return false
	}
	f := func(ar, br uint16) bool {
		a := int32(int(ar) % n)
		b := int32(int(br) % n)
		ancA := h.Ancestors(a)
		ancB := h.Ancestors(b)
		m := len(ancA)
		if len(ancB) < m {
			m = len(ancB)
		}
		for i := 0; i < m; i++ {
			shared := ancA[i] == ancB[i]
			containsBoth := inSubgraph(ancA[i], a) && inSubgraph(ancA[i], b)
			if shared != containsBoth {
				return false
			}
			if !shared {
				// Paths never re-merge after diverging.
				for j := i; j < m; j++ {
					if ancA[j] == ancB[j] {
						return false
					}
				}
				return true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
