package partition

import (
	"fmt"

	"repro/internal/graph"
)

// HierConfig controls the recursive partitioning that builds the tree
// of Figure 4.
type HierConfig struct {
	// Fanout is κ, the number of parts each subgraph splits into.
	Fanout int
	// Leaf is δ, the vertex-count threshold below which a subgraph is
	// not split further.
	Leaf int
	// Seed makes the hierarchy deterministic.
	Seed int64
}

// DefaultHierConfig returns the fanout/threshold used by the paper-style
// experiments (κ=4, δ=64).
func DefaultHierConfig(seed int64) HierConfig {
	return HierConfig{Fanout: 4, Leaf: 64, Seed: seed}
}

// Hierarchy is the road-network partitioning tree. Tree nodes comprise
// the root (the whole graph), internal sub-graph nodes, and one node
// per original vertex (the deepest level, the paper's "real vertices").
type Hierarchy struct {
	g *graph.Graph

	// Per tree node:
	parent   []int32
	children [][]int32
	depth    []int32
	// vertices[n] lists the original vertex ids under node n.
	vertices [][]int32
	// vertexID[n] is the original vertex for vertex nodes, -1 otherwise.
	vertexID []int32

	// Per original vertex: its vertex-node id and its full ancestor path
	// root..vertex-node (flattened).
	vertexNode []int32
	ancOffsets []int32
	ancNodes   []int32

	// covers[l] is, for level l, a set of nodes covering every vertex
	// exactly once: the node at depth l on the vertex's path, or the
	// vertex node itself when its path is shorter.
	covers [][]int32

	maxDepth int
}

// BuildHierarchy recursively partitions g per cfg.
func BuildHierarchy(g *graph.Graph, cfg HierConfig) (*Hierarchy, error) {
	if cfg.Fanout < 2 {
		return nil, fmt.Errorf("partition: fanout must be >= 2, got %d", cfg.Fanout)
	}
	if cfg.Leaf < 1 {
		return nil, fmt.Errorf("partition: leaf threshold must be >= 1, got %d", cfg.Leaf)
	}
	n := g.NumVertices()
	if n == 0 {
		return nil, fmt.Errorf("partition: empty graph")
	}
	h := &Hierarchy{
		g:          g,
		vertexNode: make([]int32, n),
	}

	all := make([]int32, n)
	for i := range all {
		all[i] = int32(i)
	}
	seed := cfg.Seed
	var build func(verts []int32, parent int32, depth int32) int32
	build = func(verts []int32, parent int32, depth int32) int32 {
		id := int32(len(h.parent))
		h.parent = append(h.parent, parent)
		h.children = append(h.children, nil)
		h.depth = append(h.depth, depth)
		h.vertices = append(h.vertices, verts)
		h.vertexID = append(h.vertexID, -1)
		if len(verts) == 1 {
			// Degenerate subgraph: the node itself acts as the vertex node.
			h.vertexID[id] = verts[0]
			h.vertexNode[verts[0]] = id
			return id
		}
		if len(verts) <= cfg.Leaf {
			// Leaf subgraph: attach one vertex node per vertex.
			for _, v := range verts {
				vid := int32(len(h.parent))
				h.parent = append(h.parent, id)
				h.children = append(h.children, nil)
				h.depth = append(h.depth, depth+1)
				h.vertices = append(h.vertices, []int32{v})
				h.vertexID = append(h.vertexID, v)
				h.children[id] = append(h.children[id], vid)
				h.vertexNode[v] = vid
			}
			return id
		}
		// Partition the induced subgraph into κ parts.
		sub, remap := graph.InducedSubgraph(g, verts)
		k := cfg.Fanout
		if k > sub.NumVertices() {
			k = sub.NumVertices()
		}
		seed++
		labels, err := KWay(sub, k, seed)
		if err != nil {
			// KWay only errors on invalid k, which the clamp above
			// prevents; fall back to a single-part split.
			labels = make([]int32, sub.NumVertices())
		}
		parts := make([][]int32, k)
		for _, v := range verts {
			l := labels[remap[v]]
			parts[l] = append(parts[l], v)
		}
		for _, part := range parts {
			if len(part) == 0 {
				continue
			}
			cid := build(part, id, depth+1)
			h.children[id] = append(h.children[id], cid)
		}
		return id
	}
	build(all, -1, 0)

	// Flatten ancestor paths.
	h.ancOffsets = make([]int32, n+1)
	for v := 0; v < n; v++ {
		node := h.vertexNode[v]
		h.ancOffsets[v+1] = h.ancOffsets[v] + h.depth[node] + 1
	}
	h.ancNodes = make([]int32, h.ancOffsets[n])
	for v := 0; v < n; v++ {
		node := h.vertexNode[v]
		end := h.ancOffsets[v+1]
		for node != -1 {
			end--
			h.ancNodes[end] = node
			node = h.parent[node]
		}
		if d := int(h.depth[h.vertexNode[v]]); d > h.maxDepth {
			h.maxDepth = d
		}
	}

	// Per-level covers.
	h.covers = make([][]int32, h.maxDepth+1)
	for l := 0; l <= h.maxDepth; l++ {
		seen := make(map[int32]bool)
		for v := 0; v < n; v++ {
			anc := h.Ancestors(int32(v))
			idx := l
			if idx >= len(anc) {
				idx = len(anc) - 1
			}
			node := anc[idx]
			if !seen[node] {
				seen[node] = true
				h.covers[l] = append(h.covers[l], node)
			}
		}
	}
	return h, nil
}

// Graph returns the partitioned graph.
func (h *Hierarchy) Graph() *graph.Graph { return h.g }

// NumNodes returns the total number of tree nodes (root + sub-graphs +
// vertex nodes).
func (h *Hierarchy) NumNodes() int { return len(h.parent) }

// MaxDepth returns the depth of the deepest vertex node; levels run
// 0 (root) .. MaxDepth (vertices).
func (h *Hierarchy) MaxDepth() int { return h.maxDepth }

// Parent returns the parent node id of node, or -1 for the root.
func (h *Hierarchy) Parent(node int32) int32 { return h.parent[node] }

// Children returns the child node ids of node. The slice aliases
// internal storage and must not be modified.
func (h *Hierarchy) Children(node int32) []int32 { return h.children[node] }

// Depth returns the depth of node (root is 0).
func (h *Hierarchy) Depth(node int32) int32 { return h.depth[node] }

// IsVertexNode reports whether node stands for a single original vertex.
func (h *Hierarchy) IsVertexNode(node int32) bool { return h.vertexID[node] >= 0 }

// VertexID returns the original vertex of a vertex node, or -1.
func (h *Hierarchy) VertexID(node int32) int32 { return h.vertexID[node] }

// VertexNode returns the vertex-node id of original vertex v.
func (h *Hierarchy) VertexNode(v int32) int32 { return h.vertexNode[v] }

// SubgraphVertices returns the original vertex ids under node. The
// slice aliases internal storage and must not be modified.
func (h *Hierarchy) SubgraphVertices(node int32) []int32 { return h.vertices[node] }

// Ancestors returns the node path root..vertex-node of original vertex
// v (the anc(v) of the paper, including v's own vertex node). The slice
// aliases internal storage and must not be modified.
func (h *Hierarchy) Ancestors(v int32) []int32 {
	return h.ancNodes[h.ancOffsets[v]:h.ancOffsets[v+1]]
}

// CoverAtLevel returns a node set covering every vertex at level l: the
// depth-l node of each vertex's path, or the vertex node itself for
// shallow branches. These are the P_l "sub-graphs in level l" used by
// subgraph-level sample selection. The slice aliases internal storage
// and must not be modified.
func (h *Hierarchy) CoverAtLevel(l int) []int32 {
	if l < 0 {
		l = 0
	}
	if l > h.maxDepth {
		l = h.maxDepth
	}
	return h.covers[l]
}
