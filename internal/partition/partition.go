// Package partition implements multilevel graph partitioning and the
// road-network partitioning hierarchy of Section IV-A.
//
// The paper adopts the multi-phase algorithm of Karypis & Kumar [17]:
// coarsen the graph by heavy-edge matching, partition the coarsest
// graph, then project back while refining with boundary moves. KWay
// produces a κ-way partition by recursive bisection; BuildHierarchy
// applies it recursively with a leaf threshold δ to produce the tree
// the hierarchical RNE model trains over.
package partition

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// wedge is a weighted half-edge of the working graph.
type wedge struct {
	to int32
	w  float64
}

// workGraph is the mutable weighted graph used during coarsening.
// Adjacency lists are kept sorted by target so every pass is
// deterministic. Vertices carry weights (the number of original
// vertices they stand for) so balance is judged on original counts.
type workGraph struct {
	adj  [][]wedge
	vwgt []int32
}

func newWorkGraph(g *graph.Graph) *workGraph {
	n := g.NumVertices()
	wg := &workGraph{
		adj:  make([][]wedge, n),
		vwgt: make([]int32, n),
	}
	for v := 0; v < n; v++ {
		wg.vwgt[v] = 1
		ts, ws := g.Neighbors(int32(v))
		es := make([]wedge, len(ts))
		for i, t := range ts {
			es[i] = wedge{to: t, w: ws[i]}
		}
		wg.adj[v] = es // graph.Graph adjacency is already sorted
	}
	return wg
}

func (wg *workGraph) numVertices() int { return len(wg.adj) }

func (wg *workGraph) totalWeight() int32 {
	var s int32
	for _, w := range wg.vwgt {
		s += w
	}
	return s
}

// coarsen performs one heavy-edge-matching pass and returns the coarser
// graph plus the fine→coarse vertex map. It returns ok=false when the
// matching made no progress.
func (wg *workGraph) coarsen(rng *rand.Rand) (*workGraph, []int32, bool) {
	n := wg.numVertices()
	match := make([]int32, n)
	for i := range match {
		match[i] = -1
	}
	order := rng.Perm(n)
	matched := 0
	for _, vi := range order {
		v := int32(vi)
		if match[v] >= 0 {
			continue
		}
		var best int32 = -1
		bestW := -1.0
		for _, e := range wg.adj[v] {
			if match[e.to] < 0 && e.w > bestW {
				best, bestW = e.to, e.w
			}
		}
		if best >= 0 {
			match[v] = best
			match[best] = v
			matched += 2
		} else {
			match[v] = v
		}
	}
	if matched < n/10 {
		return nil, nil, false
	}
	// Assign coarse ids in fine-id order (deterministic).
	coarseID := make([]int32, n)
	for i := range coarseID {
		coarseID[i] = -1
	}
	var next int32
	for v := int32(0); v < int32(n); v++ {
		if coarseID[v] >= 0 {
			continue
		}
		coarseID[v] = next
		if m := match[v]; m != v {
			coarseID[m] = next
		}
		next++
	}
	cg := &workGraph{
		adj:  make([][]wedge, next),
		vwgt: make([]int32, next),
	}
	// Accumulate parallel edges, then sort each list.
	acc := make([]map[int32]float64, next)
	for i := range acc {
		acc[i] = make(map[int32]float64)
	}
	for v := int32(0); v < int32(n); v++ {
		cv := coarseID[v]
		cg.vwgt[cv] += wg.vwgt[v]
		for _, e := range wg.adj[v] {
			cu := coarseID[e.to]
			if cu != cv {
				acc[cv][cu] += e.w
			}
		}
	}
	for cv := range acc {
		es := make([]wedge, 0, len(acc[cv]))
		for to, w := range acc[cv] {
			es = append(es, wedge{to: to, w: w})
		}
		sort.Slice(es, func(i, j int) bool { return es[i].to < es[j].to })
		cg.adj[cv] = es
	}
	return cg, coarseID, true
}

// cutOf computes the total weight of edges crossing the bisection.
func (wg *workGraph) cutOf(side []int8) float64 {
	var cut float64
	for v := range wg.adj {
		for _, e := range wg.adj[v] {
			if int32(v) < e.to && side[v] != side[e.to] {
				cut += e.w
			}
		}
	}
	return cut
}

// growBisection seeds a BFS region until it holds targetW vertex weight
// and returns the side assignment.
func (wg *workGraph) growBisection(rng *rand.Rand, targetW int32) []int8 {
	n := wg.numVertices()
	side := make([]int8, n) // all on side 0 initially
	if n == 0 {
		return side
	}
	seed := int32(rng.Intn(n))
	var grown int32
	queue := []int32{seed}
	inQueue := make([]bool, n)
	inQueue[seed] = true
	for len(queue) > 0 && grown < targetW {
		v := queue[0]
		queue = queue[1:]
		if side[v] == 1 {
			continue
		}
		side[v] = 1
		grown += wg.vwgt[v]
		for _, e := range wg.adj[v] {
			if side[e.to] == 0 && !inQueue[e.to] {
				inQueue[e.to] = true
				queue = append(queue, e.to)
			}
		}
	}
	// If BFS exhausted a small component, move arbitrary vertices.
	for v := int32(0); v < int32(n) && grown < targetW; v++ {
		if side[v] == 0 {
			side[v] = 1
			grown += wg.vwgt[v]
		}
	}
	return side
}

// refine runs greedy boundary-move passes (a simplified
// Fiduccia–Mattheyses) improving the cut while keeping side 1 within
// the balance envelope.
func (wg *workGraph) refine(side []int8, target1, slack int32) {
	n := wg.numVertices()
	var w1 int32
	for v := 0; v < n; v++ {
		if side[v] == 1 {
			w1 += wg.vwgt[v]
		}
	}
	lo1, hi1 := target1-slack, target1+slack
	for pass := 0; pass < 4; pass++ {
		improved := false
		for v := int32(0); v < int32(n); v++ {
			// gain = cut decrease when v switches sides
			var same, other float64
			for _, e := range wg.adj[v] {
				if side[e.to] == side[v] {
					same += e.w
				} else {
					other += e.w
				}
			}
			gain := other - same
			if gain <= 0 {
				continue
			}
			if side[v] == 0 {
				if w1+wg.vwgt[v] > hi1 {
					continue
				}
				side[v] = 1
				w1 += wg.vwgt[v]
			} else {
				if w1-wg.vwgt[v] < lo1 {
					continue
				}
				side[v] = 0
				w1 -= wg.vwgt[v]
			}
			improved = true
		}
		if !improved {
			break
		}
	}
}

// bisect splits wg into two sides with weight ratio frac1 on side 1,
// using the multilevel scheme, and returns the side of each vertex.
func bisect(wg *workGraph, frac1 float64, rng *rand.Rand) []int8 {
	const coarseTarget = 64
	// Coarsening phase.
	graphs := []*workGraph{wg}
	var maps [][]int32
	cur := wg
	for cur.numVertices() > coarseTarget {
		cg, m, ok := cur.coarsen(rng)
		if !ok {
			break
		}
		graphs = append(graphs, cg)
		maps = append(maps, m)
		cur = cg
	}
	coarsest := graphs[len(graphs)-1]
	total := coarsest.totalWeight()
	target1 := int32(float64(total) * frac1)
	slack := total/10 + 1

	// Initial partitioning: several random grows, keep the best cut.
	var best []int8
	bestCut := -1.0
	const tries = 4
	for i := 0; i < tries; i++ {
		side := coarsest.growBisection(rng, target1)
		coarsest.refine(side, target1, slack)
		cut := coarsest.cutOf(side)
		if bestCut < 0 || cut < bestCut {
			best, bestCut = side, cut
		}
	}

	// Uncoarsening with refinement.
	side := best
	for i := len(graphs) - 2; i >= 0; i-- {
		fine := graphs[i]
		m := maps[i]
		fineSide := make([]int8, fine.numVertices())
		for v := range fineSide {
			fineSide[v] = side[m[v]]
		}
		ft := fine.totalWeight()
		fine.refine(fineSide, int32(float64(ft)*frac1), ft/10+1)
		side = fineSide
	}
	return side
}

// KWay partitions g into k parts of roughly equal vertex counts,
// minimizing cut edges, and returns the part label of each vertex in
// [0, k). k must be at least 1 and at most the number of vertices.
// Results are deterministic for a given seed.
func KWay(g *graph.Graph, k int, seed int64) ([]int32, error) {
	n := g.NumVertices()
	if k < 1 {
		return nil, fmt.Errorf("partition: k must be >= 1, got %d", k)
	}
	if k > n {
		return nil, fmt.Errorf("partition: k=%d exceeds |V|=%d", k, n)
	}
	labels := make([]int32, n)
	if k == 1 {
		return labels, nil
	}
	rng := rand.New(rand.NewSource(seed))
	wg := newWorkGraph(g)
	ids := make([]int32, n)
	for i := range ids {
		ids[i] = int32(i)
	}
	kwayRecurse(wg, ids, k, 0, labels, rng)
	return labels, nil
}

// kwayRecurse bisects wg (whose vertices map to original ids) into two
// groups sized k1:k2 and recurses.
func kwayRecurse(wg *workGraph, ids []int32, k int, base int32, labels []int32, rng *rand.Rand) {
	if k == 1 {
		for _, id := range ids {
			labels[id] = base
		}
		return
	}
	k1 := k / 2
	k2 := k - k1
	frac1 := float64(k1) / float64(k)
	side := bisect(wg, frac1, rng)

	// Split workGraph into two induced sub-workgraphs.
	n := wg.numVertices()
	newID := make([]int32, n)
	var n0, n1 int32
	for v := 0; v < n; v++ {
		if side[v] == 1 {
			newID[v] = n1
			n1++
		} else {
			newID[v] = n0
			n0++
		}
	}
	// Guard against degenerate splits (possible on tiny disconnected
	// shards): fall back to an index split so recursion terminates with
	// balanced, if not cut-minimal, parts.
	if n1 == 0 || n0 == 0 {
		for v := 0; v < n; v++ {
			labels[ids[v]] = base + int32(v*k/n)
		}
		return
	}
	sub0 := &workGraph{adj: make([][]wedge, n0), vwgt: make([]int32, n0)}
	sub1 := &workGraph{adj: make([][]wedge, n1), vwgt: make([]int32, n1)}
	ids0 := make([]int32, n0)
	ids1 := make([]int32, n1)
	for v := 0; v < n; v++ {
		nv := newID[v]
		sub, sids := sub0, ids0
		if side[v] == 1 {
			sub, sids = sub1, ids1
		}
		sub.vwgt[nv] = wg.vwgt[v]
		sids[nv] = ids[v]
		var es []wedge
		for _, e := range wg.adj[v] {
			if side[e.to] == side[v] {
				es = append(es, wedge{to: newID[e.to], w: e.w})
			}
		}
		sort.Slice(es, func(i, j int) bool { return es[i].to < es[j].to })
		sub.adj[nv] = es
	}
	kwayRecurse(sub1, ids1, k1, base, labels, rng)
	kwayRecurse(sub0, ids0, k2, base+int32(k1), labels, rng)
}

// Cut returns the number and total weight of edges of g crossing parts.
func Cut(g *graph.Graph, labels []int32) (count int, weight float64) {
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		ts, ws := g.Neighbors(v)
		for i, u := range ts {
			if u > v && labels[u] != labels[v] {
				count++
				weight += ws[i]
			}
		}
	}
	return count, weight
}
