package partition

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func testGraph(t *testing.T, seed int64, rows, cols int) *graph.Graph {
	t.Helper()
	g, err := gen.Grid(rows, cols, gen.DefaultConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestKWayLabelsValid(t *testing.T) {
	g := testGraph(t, 1, 16, 16)
	for _, k := range []int{1, 2, 3, 4, 7, 8} {
		labels, err := KWay(g, k, 42)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if len(labels) != g.NumVertices() {
			t.Fatalf("k=%d: %d labels for %d vertices", k, len(labels), g.NumVertices())
		}
		counts := make([]int, k)
		for _, l := range labels {
			if l < 0 || int(l) >= k {
				t.Fatalf("k=%d: label %d out of range", k, l)
			}
			counts[l]++
		}
		// All parts non-empty and reasonably balanced (within 2.5x of avg).
		avg := g.NumVertices() / k
		for p, c := range counts {
			if c == 0 {
				t.Fatalf("k=%d: part %d empty", k, p)
			}
			if k > 1 && (c > avg*5/2+2) {
				t.Errorf("k=%d: part %d badly unbalanced: %d vs avg %d", k, p, c, avg)
			}
		}
	}
}

func TestKWayCutBeatsRandom(t *testing.T) {
	g := testGraph(t, 2, 20, 20)
	k := 4
	labels, err := KWay(g, k, 7)
	if err != nil {
		t.Fatal(err)
	}
	_, cutW := Cut(g, labels)

	// A random balanced assignment should cut far more edge weight.
	rng := rand.New(rand.NewSource(9))
	randomLabels := make([]int32, g.NumVertices())
	for i := range randomLabels {
		randomLabels[i] = int32(rng.Intn(k))
	}
	_, randW := Cut(g, randomLabels)
	if cutW >= randW {
		t.Fatalf("partitioner cut %v not better than random %v", cutW, randW)
	}
	if cutW > randW/2 {
		t.Errorf("partitioner cut %v only marginally better than random %v", cutW, randW)
	}
}

func TestKWayErrors(t *testing.T) {
	g := testGraph(t, 3, 5, 5)
	if _, err := KWay(g, 0, 1); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := KWay(g, g.NumVertices()+1, 1); err == nil {
		t.Error("k>|V| accepted")
	}
}

func TestKWayDeterministic(t *testing.T) {
	g := testGraph(t, 4, 12, 12)
	a, _ := KWay(g, 4, 11)
	b, _ := KWay(g, 4, 11)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different partitions")
		}
	}
}

func TestHierarchyStructure(t *testing.T) {
	g := testGraph(t, 5, 18, 18)
	h, err := BuildHierarchy(g, DefaultHierConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumVertices()

	// Every vertex has a vertex node carrying its id.
	for v := int32(0); v < int32(n); v++ {
		node := h.VertexNode(v)
		if !h.IsVertexNode(node) || h.VertexID(node) != v {
			t.Fatalf("vertex %d maps to node %d with id %d", v, node, h.VertexID(node))
		}
	}

	// Ancestor paths start at the root and end at the vertex node, with
	// consecutive parent links and increasing depth.
	root := int32(0)
	if h.Parent(root) != -1 || h.Depth(root) != 0 {
		t.Fatal("node 0 should be the root at depth 0")
	}
	for v := int32(0); v < int32(n); v++ {
		anc := h.Ancestors(v)
		if anc[0] != root {
			t.Fatalf("vertex %d path does not start at root: %v", v, anc)
		}
		if anc[len(anc)-1] != h.VertexNode(v) {
			t.Fatalf("vertex %d path does not end at its vertex node", v)
		}
		for i := 1; i < len(anc); i++ {
			if h.Parent(anc[i]) != anc[i-1] {
				t.Fatalf("vertex %d path broken at %d", v, i)
			}
			if h.Depth(anc[i]) != h.Depth(anc[i-1])+1 {
				t.Fatalf("vertex %d depth not increasing at %d", v, i)
			}
		}
	}

	// Children partition each internal node's vertex set.
	for node := int32(0); node < int32(h.NumNodes()); node++ {
		kids := h.Children(node)
		if len(kids) == 0 {
			continue
		}
		total := 0
		seen := make(map[int32]bool)
		for _, c := range kids {
			for _, v := range h.SubgraphVertices(c) {
				if seen[v] {
					t.Fatalf("vertex %d appears in two children of node %d", v, node)
				}
				seen[v] = true
				total++
			}
		}
		if total != len(h.SubgraphVertices(node)) {
			t.Fatalf("node %d: children cover %d of %d vertices", node, total, len(h.SubgraphVertices(node)))
		}
	}

	// Leaf subgraphs respect the threshold.
	cfg := DefaultHierConfig(1)
	for node := int32(0); node < int32(h.NumNodes()); node++ {
		if h.IsVertexNode(node) {
			continue
		}
		kids := h.Children(node)
		allVertexKids := len(kids) > 0
		for _, c := range kids {
			if !h.IsVertexNode(c) {
				allVertexKids = false
				break
			}
		}
		if allVertexKids && len(h.SubgraphVertices(node)) > cfg.Leaf {
			t.Fatalf("leaf subgraph node %d has %d > δ=%d vertices", node, len(h.SubgraphVertices(node)), cfg.Leaf)
		}
	}
}

func TestHierarchyCovers(t *testing.T) {
	g := testGraph(t, 6, 15, 15)
	h, err := BuildHierarchy(g, DefaultHierConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumVertices()
	for l := 0; l <= h.MaxDepth(); l++ {
		cover := h.CoverAtLevel(l)
		covered := 0
		for _, node := range cover {
			covered += len(h.SubgraphVertices(node))
		}
		if covered != n {
			t.Fatalf("level %d cover spans %d of %d vertices", l, covered, n)
		}
	}
	if c0 := h.CoverAtLevel(0); len(c0) != 1 || c0[0] != 0 {
		t.Fatalf("level-0 cover should be the root, got %v", c0)
	}
	last := h.CoverAtLevel(h.MaxDepth())
	if len(last) < n/2 {
		t.Fatalf("deepest cover has only %d nodes for %d vertices", len(last), n)
	}
	// Clamping.
	if got := h.CoverAtLevel(-3); len(got) != 1 {
		t.Fatal("negative level should clamp to root cover")
	}
	if got := h.CoverAtLevel(h.MaxDepth() + 10); len(got) != len(last) {
		t.Fatal("beyond-max level should clamp to deepest cover")
	}
}

func TestHierarchyConfigValidation(t *testing.T) {
	g := testGraph(t, 7, 5, 5)
	if _, err := BuildHierarchy(g, HierConfig{Fanout: 1, Leaf: 4}); err == nil {
		t.Error("fanout 1 accepted")
	}
	if _, err := BuildHierarchy(g, HierConfig{Fanout: 4, Leaf: 0}); err == nil {
		t.Error("leaf 0 accepted")
	}
	empty := graph.NewBuilder(0, 0).Build()
	if _, err := BuildHierarchy(empty, DefaultHierConfig(1)); err == nil {
		t.Error("empty graph accepted")
	}
}

func TestHierarchySmallGraph(t *testing.T) {
	// A graph smaller than δ should yield root + vertex nodes only.
	b := graph.NewBuilder(3, 3)
	b.AddVertex(0, 0)
	b.AddVertex(1, 0)
	b.AddVertex(0, 1)
	_ = b.AddEdge(0, 1, 1)
	_ = b.AddEdge(1, 2, 1)
	g := b.Build()
	h, err := BuildHierarchy(g, DefaultHierConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if h.NumNodes() != 4 {
		t.Fatalf("NumNodes = %d, want 4 (root + 3 vertices)", h.NumNodes())
	}
	if h.MaxDepth() != 1 {
		t.Fatalf("MaxDepth = %d, want 1", h.MaxDepth())
	}
}

func TestCut(t *testing.T) {
	b := graph.NewBuilder(4, 4)
	for i := 0; i < 4; i++ {
		b.AddVertex(float64(i), 0)
	}
	_ = b.AddEdge(0, 1, 1)
	_ = b.AddEdge(1, 2, 2)
	_ = b.AddEdge(2, 3, 3)
	_ = b.AddEdge(3, 0, 4)
	g := b.Build()
	count, weight := Cut(g, []int32{0, 0, 1, 1})
	if count != 2 || weight != 2+4 {
		t.Fatalf("Cut = %d/%v, want 2/6", count, weight)
	}
	count, _ = Cut(g, []int32{0, 0, 0, 0})
	if count != 0 {
		t.Fatalf("single-part cut = %d, want 0", count)
	}
}
