// Package hybrid combines the RNE embedding with ALT landmark bounds:
// each estimate is clamped into the triangle-inequality interval
// [max_u |d(u,s)-d(u,t)|, min_u d(u,s)+d(u,t)], which provably contains
// the true distance. The ensemble keeps RNE's accuracy in the common
// case and caps its rare tail errors at the LT gap — and, unlike either
// component alone, every answer carries a certified error interval.
//
// This is an extension beyond the paper (its Section VII-C discussion
// of RNE vs LT invites exactly this combination). Query cost is
// O(|U| + d): LT-speed rather than RNE-speed.
package hybrid

import (
	"fmt"

	"repro/internal/alt"
)

// Distancer is the model side of the ensemble: any embedding queryable
// for point estimates. Both core.Model and core.CompactModel satisfy
// it, so guard mode works unchanged on half-memory compact replicas.
type Distancer interface {
	Estimate(s, t int32) float64
	NumVertices() int
	IndexBytes() int64
}

// Estimator is the clamped ensemble.
type Estimator struct {
	m  Distancer
	lt *alt.Index
}

// New combines a trained model with a landmark index over the same
// graph. The two must agree on the vertex count — mixing a model and an
// index from different graphs would silently produce wrong "certified"
// bounds, so the mismatch is rejected here.
func New(m Distancer, lt *alt.Index) (*Estimator, error) {
	if m == nil || lt == nil {
		return nil, fmt.Errorf("hybrid: need both a model and a landmark index")
	}
	if m.NumVertices() != lt.NumVertices() {
		return nil, fmt.Errorf("hybrid: model covers %d vertices but landmark index covers %d (built from different graphs?)",
			m.NumVertices(), lt.NumVertices())
	}
	return &Estimator{m: m, lt: lt}, nil
}

// Estimate returns the RNE estimate clamped into the landmark bounds.
func (e *Estimator) Estimate(s, t int32) float64 {
	if s == t {
		return 0
	}
	est := e.m.Estimate(s, t)
	lo, hi := e.lt.Bounds(s, t)
	if est < lo {
		return lo
	}
	if est > hi {
		return hi
	}
	return est
}

// EstimateWithBounds additionally returns the certified interval
// [lo, hi] containing the true distance.
func (e *Estimator) EstimateWithBounds(s, t int32) (est, lo, hi float64) {
	if s == t {
		return 0, 0, 0
	}
	lo, hi = e.lt.Bounds(s, t)
	est = e.m.Estimate(s, t)
	if est < lo {
		est = lo
	}
	if est > hi {
		est = hi
	}
	return est, lo, hi
}

// GuardResult is one guarded estimate: the clamped value, the raw
// model estimate before clamping, the certified interval it was
// clamped into, and whether clamping actually occurred (i.e. the raw
// estimate violated a bound). Raw is what accuracy monitors want: the
// clamp delta |Raw - Est| and the deviation of Raw from the interval
// midpoint are label-free error signals available on every query.
type GuardResult struct {
	Est         float64
	Raw         float64
	Lo, Hi      float64
	ClampedLow  bool // raw estimate was below the certified lower bound
	ClampedHigh bool // raw estimate was above the certified upper bound
}

// Guard evaluates one pair under the guardrail: the raw RNE estimate is
// clamped into the landmark interval and the clamp directions reported,
// so servers can both bound degradation and count how often the model
// needed correcting.
func (e *Estimator) Guard(s, t int32) GuardResult {
	if s == t {
		return GuardResult{}
	}
	lo, hi := e.lt.Bounds(s, t)
	raw := e.m.Estimate(s, t)
	r := GuardResult{Est: raw, Raw: raw, Lo: lo, Hi: hi}
	if r.Est < lo {
		r.Est, r.ClampedLow = lo, true
	}
	if r.Est > hi {
		r.Est, r.ClampedHigh = hi, true
	}
	return r
}

// Provenance is the full guard-side explanation of one estimate: the
// guarded result plus which landmark produced each side of the
// certified interval. Landmark fields are -1 for identical pairs and
// endpoint pairs no landmark reaches.
type Provenance struct {
	GuardResult
	LoLandmark, HiLandmark int32
}

// Explain evaluates one pair like Guard and additionally reports the
// tightest landmarks: the provenance an operator needs to see *why* an
// estimate was clamped, not just that it was.
func (e *Estimator) Explain(s, t int32) Provenance {
	if s == t {
		return Provenance{LoLandmark: -1, HiLandmark: -1}
	}
	info := e.lt.BoundsDetail(s, t)
	raw := e.m.Estimate(s, t)
	p := Provenance{
		GuardResult: GuardResult{Est: raw, Raw: raw, Lo: info.Lo, Hi: info.Hi},
		LoLandmark:  info.LoLandmark,
		HiLandmark:  info.HiLandmark,
	}
	if p.Est < p.Lo {
		p.Est, p.ClampedLow = p.Lo, true
	}
	if p.Est > p.Hi {
		p.Est, p.ClampedHigh = p.Hi, true
	}
	return p
}

// Bounds exposes the landmark interval for (s, t) without evaluating
// the model.
func (e *Estimator) Bounds(s, t int32) (lo, hi float64) {
	if s == t {
		return 0, 0
	}
	return e.lt.Bounds(s, t)
}

// IndexBytes reports the combined index footprint.
func (e *Estimator) IndexBytes() int64 {
	return e.m.IndexBytes() + e.lt.IndexBytes()
}

// LandmarkBytes reports the guard's own label-matrix footprint, for
// per-component memory accounting (rne_model_bytes{component=guard}).
func (e *Estimator) LandmarkBytes() int64 { return e.lt.IndexBytes() }

// NumVertices returns the vertex count both components cover.
func (e *Estimator) NumVertices() int { return e.m.NumVertices() }
