// Package hybrid combines the RNE embedding with ALT landmark bounds:
// each estimate is clamped into the triangle-inequality interval
// [max_u |d(u,s)-d(u,t)|, min_u d(u,s)+d(u,t)], which provably contains
// the true distance. The ensemble keeps RNE's accuracy in the common
// case and caps its rare tail errors at the LT gap — and, unlike either
// component alone, every answer carries a certified error interval.
//
// This is an extension beyond the paper (its Section VII-C discussion
// of RNE vs LT invites exactly this combination). Query cost is
// O(|U| + d): LT-speed rather than RNE-speed.
package hybrid

import (
	"fmt"

	"repro/internal/alt"
	"repro/internal/core"
)

// Estimator is the clamped ensemble.
type Estimator struct {
	m  *core.Model
	lt *alt.Index
}

// New combines a trained model with a landmark index over the same
// graph.
func New(m *core.Model, lt *alt.Index) (*Estimator, error) {
	if m == nil || lt == nil {
		return nil, fmt.Errorf("hybrid: need both a model and a landmark index")
	}
	return &Estimator{m: m, lt: lt}, nil
}

// Estimate returns the RNE estimate clamped into the landmark bounds.
func (e *Estimator) Estimate(s, t int32) float64 {
	if s == t {
		return 0
	}
	est := e.m.Estimate(s, t)
	lo, hi := e.lt.Bounds(s, t)
	if est < lo {
		return lo
	}
	if est > hi {
		return hi
	}
	return est
}

// EstimateWithBounds additionally returns the certified interval
// [lo, hi] containing the true distance.
func (e *Estimator) EstimateWithBounds(s, t int32) (est, lo, hi float64) {
	if s == t {
		return 0, 0, 0
	}
	lo, hi = e.lt.Bounds(s, t)
	est = e.m.Estimate(s, t)
	if est < lo {
		est = lo
	}
	if est > hi {
		est = hi
	}
	return est, lo, hi
}

// IndexBytes reports the combined index footprint.
func (e *Estimator) IndexBytes() int64 {
	return e.m.IndexBytes() + e.lt.IndexBytes()
}
