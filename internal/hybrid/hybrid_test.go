package hybrid

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"

	"repro/internal/alt"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/sssp"
)

func setup(t *testing.T) (*graph.Graph, *Estimator, *core.Model) {
	t.Helper()
	g, err := gen.Grid(16, 16, gen.DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions(2)
	opt.Dim = 32
	opt.Epochs = 5
	opt.VertexSampleRatio = 50
	opt.FineTuneRounds = 3
	opt.HierSampleCap = 12000
	opt.ValidationPairs = 300
	m, _, err := core.Build(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	lt, err := alt.Build(g, 24, 3)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(m, lt)
	if err != nil {
		t.Fatal(err)
	}
	return g, e, m
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Fatal("nil components accepted")
	}
}

func TestEstimateWithinCertifiedBounds(t *testing.T) {
	g, e, _ := setup(t)
	ws := sssp.NewWorkspace(g)
	rng := rand.New(rand.NewSource(4))
	n := g.NumVertices()
	for trial := 0; trial < 300; trial++ {
		s := int32(rng.Intn(n))
		u := int32(rng.Intn(n))
		est, lo, hi := e.EstimateWithBounds(s, u)
		if est < lo || est > hi {
			t.Fatalf("(%d,%d): estimate %v outside own bounds [%v,%v]", s, u, est, lo, hi)
		}
		exact := ws.Distance(s, u)
		if exact < lo-1e-9 || exact > hi+1e-9 {
			t.Fatalf("(%d,%d): exact %v outside certified bounds [%v,%v]", s, u, exact, lo, hi)
		}
		if got := e.Estimate(s, u); got != est {
			t.Fatalf("Estimate and EstimateWithBounds disagree: %v vs %v", got, est)
		}
	}
	if e.Estimate(5, 5) != 0 {
		t.Fatal("self estimate not zero")
	}
}

// TestClampImprovesTail: the ensemble's worst-case relative error must
// not exceed plain RNE's, and typically improves it.
func TestClampImprovesTail(t *testing.T) {
	g, e, m := setup(t)
	ws := sssp.NewWorkspace(g)
	rng := rand.New(rand.NewSource(5))
	pairs := make([]metrics.Pair, 0, 600)
	var dist []float64
	for len(pairs) < 600 {
		s := int32(rng.Intn(g.NumVertices()))
		dist = ws.FromSource(s, dist)
		for j := 0; j < 16 && len(pairs) < 600; j++ {
			u := int32(rng.Intn(g.NumVertices()))
			if u != s && dist[u] > 0 && dist[u] < sssp.Inf {
				pairs = append(pairs, metrics.Pair{S: s, T: u, Dist: dist[u]})
			}
		}
	}
	plain := metrics.Evaluate(metrics.EstimatorFunc(m.Estimate), pairs)
	clamped := metrics.Evaluate(metrics.EstimatorFunc(e.Estimate), pairs)
	if clamped.MaxRel > plain.MaxRel+1e-9 {
		t.Fatalf("clamping worsened max error: %v -> %v", plain.MaxRel, clamped.MaxRel)
	}
	if clamped.P99Rel > plain.P99Rel+1e-9 {
		t.Fatalf("clamping worsened p99: %v -> %v", plain.P99Rel, clamped.P99Rel)
	}
	if clamped.MeanRel > plain.MeanRel+1e-9 {
		t.Fatalf("clamping worsened mean: %v -> %v", plain.MeanRel, clamped.MeanRel)
	}
	if e.IndexBytes() <= m.IndexBytes() {
		t.Fatal("combined index should account for both components")
	}
}

// pathGraph builds the 3-vertex path 0 -1- 1 -2- 2 (weights 1 and 2).
func pathGraph(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(3, 2)
	b.AddVertex(0, 0)
	b.AddVertex(1, 0)
	b.AddVertex(3, 0)
	if err := b.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 2, 2); err != nil {
		t.Fatal(err)
	}
	return b.Build()
}

// syntheticModel pins exact embedding rows by round-tripping through
// the public model codec (the legacy format needs no checksum framing).
func syntheticModel(t *testing.T, rows [][]float64, scale float64) *core.Model {
	t.Helper()
	var buf bytes.Buffer
	buf.WriteString("RNEMODEL2\n")
	if err := binary.Write(&buf, binary.LittleEndian, []float64{1, scale}); err != nil {
		t.Fatal(err)
	}
	buf.WriteString("RNEM1\n")
	if err := binary.Write(&buf, binary.LittleEndian, []int64{int64(len(rows)), int64(len(rows[0]))}); err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if err := binary.Write(&buf, binary.LittleEndian, r); err != nil {
			t.Fatal(err)
		}
	}
	m, err := core.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// EstimateWithBounds edge cases: identical endpoints, forced clamp-low
// and clamp-high, and the degenerate lo==hi interval a single on-path
// landmark produces.
func TestEstimateWithBoundsEdgeCases(t *testing.T) {
	g := pathGraph(t)

	// Landmark at vertex 0: labels 0, 1, 3 -> pair (1,2) gets [2, 4].
	lt, err := alt.BuildWithLandmarks(g, []int32{0})
	if err != nil {
		t.Fatal(err)
	}

	t.Run("identical pair is exactly zero", func(t *testing.T) {
		m := syntheticModel(t, [][]float64{{0}, {10}, {20}}, 1)
		e, err := New(m, lt)
		if err != nil {
			t.Fatal(err)
		}
		est, lo, hi := e.EstimateWithBounds(2, 2)
		if est != 0 || lo != 0 || hi != 0 {
			t.Fatalf("self pair: est=%v lo=%v hi=%v, want all zero", est, lo, hi)
		}
		g := e.Guard(2, 2)
		if g.Est != 0 || g.ClampedLow || g.ClampedHigh {
			t.Fatalf("self guard: %+v", g)
		}
		p := e.Explain(2, 2)
		if p.Est != 0 || p.LoLandmark != -1 || p.HiLandmark != -1 {
			t.Fatalf("self explain: %+v", p)
		}
	})

	t.Run("clamp low", func(t *testing.T) {
		// Identical rows for 1 and 2: raw estimate 0, below lo=2.
		m := syntheticModel(t, [][]float64{{0}, {5}, {5}}, 1)
		e, err := New(m, lt)
		if err != nil {
			t.Fatal(err)
		}
		est, lo, hi := e.EstimateWithBounds(1, 2)
		if lo != 2 || hi != 4 {
			t.Fatalf("bounds [%v,%v], want [2,4]", lo, hi)
		}
		if est != lo {
			t.Fatalf("low estimate clamped to %v, want lower bound %v", est, lo)
		}
		g := e.Guard(1, 2)
		if !g.ClampedLow || g.ClampedHigh || g.Raw != 0 || g.Est != 2 {
			t.Fatalf("guard direction wrong: %+v", g)
		}
		p := e.Explain(1, 2)
		if !p.ClampedLow || p.LoLandmark != 0 || p.HiLandmark != 0 {
			t.Fatalf("explain provenance wrong: %+v", p)
		}
	})

	t.Run("clamp high", func(t *testing.T) {
		// Rows 100 apart: raw estimate 100, above hi=4.
		m := syntheticModel(t, [][]float64{{0}, {0}, {100}}, 1)
		e, err := New(m, lt)
		if err != nil {
			t.Fatal(err)
		}
		est, lo, hi := e.EstimateWithBounds(1, 2)
		if est != hi {
			t.Fatalf("high estimate clamped to %v, want upper bound %v", est, hi)
		}
		if lo != 2 || hi != 4 {
			t.Fatalf("bounds [%v,%v], want [2,4]", lo, hi)
		}
		g := e.Guard(1, 2)
		if !g.ClampedHigh || g.ClampedLow || g.Raw != 100 || g.Est != 4 {
			t.Fatalf("guard direction wrong: %+v", g)
		}
	})

	t.Run("degenerate single-landmark interval", func(t *testing.T) {
		// A landmark on the (1,2) shortest path pins lo == hi == d(1,2):
		// every raw estimate collapses onto the exact distance.
		onPath, err := alt.BuildWithLandmarks(g, []int32{1})
		if err != nil {
			t.Fatal(err)
		}
		for _, raw := range []float64{0, 2, 9} {
			m := syntheticModel(t, [][]float64{{0}, {0}, {raw}}, 1)
			e, err := New(m, onPath)
			if err != nil {
				t.Fatal(err)
			}
			est, lo, hi := e.EstimateWithBounds(1, 2)
			if lo != hi || lo != 2 {
				t.Fatalf("raw %v: interval [%v,%v], want degenerate [2,2]", raw, lo, hi)
			}
			if est != 2 {
				t.Fatalf("raw %v: estimate %v, want exact 2", raw, est)
			}
		}
	})
}

// Explain must agree with Guard on every field it shares, and name
// landmarks consistent with the interval, across random pairs of a
// trained model.
func TestExplainMatchesGuard(t *testing.T) {
	_, e, _ := setup(t)
	rng := rand.New(rand.NewSource(8))
	n := int32(e.NumVertices())
	for trial := 0; trial < 300; trial++ {
		s, u := rng.Int31n(n), rng.Int31n(n)
		g := e.Guard(s, u)
		p := e.Explain(s, u)
		if p.GuardResult != g {
			t.Fatalf("(%d,%d): Explain %+v != Guard %+v", s, u, p.GuardResult, g)
		}
		if s != u && (p.LoLandmark < 0 || p.HiLandmark < 0) {
			t.Fatalf("(%d,%d): missing landmark provenance: %+v", s, u, p)
		}
	}
}
