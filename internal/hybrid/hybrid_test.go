package hybrid

import (
	"math/rand"
	"testing"

	"repro/internal/alt"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/sssp"
)

func setup(t *testing.T) (*graph.Graph, *Estimator, *core.Model) {
	t.Helper()
	g, err := gen.Grid(16, 16, gen.DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions(2)
	opt.Dim = 32
	opt.Epochs = 5
	opt.VertexSampleRatio = 50
	opt.FineTuneRounds = 3
	opt.HierSampleCap = 12000
	opt.ValidationPairs = 300
	m, _, err := core.Build(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	lt, err := alt.Build(g, 24, 3)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(m, lt)
	if err != nil {
		t.Fatal(err)
	}
	return g, e, m
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Fatal("nil components accepted")
	}
}

func TestEstimateWithinCertifiedBounds(t *testing.T) {
	g, e, _ := setup(t)
	ws := sssp.NewWorkspace(g)
	rng := rand.New(rand.NewSource(4))
	n := g.NumVertices()
	for trial := 0; trial < 300; trial++ {
		s := int32(rng.Intn(n))
		u := int32(rng.Intn(n))
		est, lo, hi := e.EstimateWithBounds(s, u)
		if est < lo || est > hi {
			t.Fatalf("(%d,%d): estimate %v outside own bounds [%v,%v]", s, u, est, lo, hi)
		}
		exact := ws.Distance(s, u)
		if exact < lo-1e-9 || exact > hi+1e-9 {
			t.Fatalf("(%d,%d): exact %v outside certified bounds [%v,%v]", s, u, exact, lo, hi)
		}
		if got := e.Estimate(s, u); got != est {
			t.Fatalf("Estimate and EstimateWithBounds disagree: %v vs %v", got, est)
		}
	}
	if e.Estimate(5, 5) != 0 {
		t.Fatal("self estimate not zero")
	}
}

// TestClampImprovesTail: the ensemble's worst-case relative error must
// not exceed plain RNE's, and typically improves it.
func TestClampImprovesTail(t *testing.T) {
	g, e, m := setup(t)
	ws := sssp.NewWorkspace(g)
	rng := rand.New(rand.NewSource(5))
	pairs := make([]metrics.Pair, 0, 600)
	var dist []float64
	for len(pairs) < 600 {
		s := int32(rng.Intn(g.NumVertices()))
		dist = ws.FromSource(s, dist)
		for j := 0; j < 16 && len(pairs) < 600; j++ {
			u := int32(rng.Intn(g.NumVertices()))
			if u != s && dist[u] > 0 && dist[u] < sssp.Inf {
				pairs = append(pairs, metrics.Pair{S: s, T: u, Dist: dist[u]})
			}
		}
	}
	plain := metrics.Evaluate(metrics.EstimatorFunc(m.Estimate), pairs)
	clamped := metrics.Evaluate(metrics.EstimatorFunc(e.Estimate), pairs)
	if clamped.MaxRel > plain.MaxRel+1e-9 {
		t.Fatalf("clamping worsened max error: %v -> %v", plain.MaxRel, clamped.MaxRel)
	}
	if clamped.P99Rel > plain.P99Rel+1e-9 {
		t.Fatalf("clamping worsened p99: %v -> %v", plain.P99Rel, clamped.P99Rel)
	}
	if clamped.MeanRel > plain.MeanRel+1e-9 {
		t.Fatalf("clamping worsened mean: %v -> %v", plain.MeanRel, clamped.MeanRel)
	}
	if e.IndexBytes() <= m.IndexBytes() {
		t.Fatal("combined index should account for both components")
	}
}
