package core

import (
	"math/rand"

	"repro/internal/graph"
	"repro/internal/sssp"
)

func newOracle(g *graph.Graph) *sssp.TruthOracle { return sssp.NewTruthOracle(g, 64) }

func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
