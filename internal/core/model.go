package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"repro/internal/emb"
	"repro/internal/partition"
	"repro/internal/vecmath"
)

// Model is a trained RNE: a |V| x d global embedding matrix queried
// with the L_p metric. Estimate is the paper's nanosecond-scale query
// path.
type Model struct {
	m     *emb.Matrix
	p     float64
	scale float64

	// hier is retained by freshly built hierarchical models so the tree
	// index (Section VI) can be constructed; it is not serialized.
	hier *emb.Hier
}

// Estimate approximates the shortest-path distance between vertices s
// and t as scale * ||M[s]-M[t]||_p.
func (m *Model) Estimate(s, t int32) float64 {
	return vecmath.Lp(m.m.Row(s), m.m.Row(t), m.p) * m.scale
}

// EstimateL1 is the specialized p=1 query kernel benchmarked in the
// paper; calling it on a model with p != 1 is a bug guarded by P().
func (m *Model) EstimateL1(s, t int32) float64 {
	return vecmath.L1(m.m.Row(s), m.m.Row(t)) * m.scale
}

// Vector returns vertex v's embedding row (aliasing model storage).
func (m *Model) Vector(v int32) []float64 { return m.m.Row(v) }

// NumVertices returns |V|.
func (m *Model) NumVertices() int { return m.m.Rows() }

// Dim returns the embedding dimension d.
func (m *Model) Dim() int { return m.m.Dim() }

// P returns the metric order.
func (m *Model) P() float64 { return m.p }

// Scale returns the distance normalizer multiplied into estimates.
func (m *Model) Scale() float64 { return m.scale }

// Matrix exposes the global embedding matrix.
func (m *Model) Matrix() *emb.Matrix { return m.m }

// Hier returns the hierarchical local embedding behind a freshly built
// hierarchical model, or nil (naive builds and loaded models).
func (m *Model) Hier() *emb.Hier { return m.hier }

// Hierarchy returns the partition hierarchy, or nil when unavailable.
func (m *Model) Hierarchy() *partition.Hierarchy {
	if m.hier == nil {
		return nil
	}
	return m.hier.H
}

// IndexBytes reports the serialized index size in bytes (the Table IV
// metric): the |V| x d float64 matrix plus the small header.
func (m *Model) IndexBytes() int64 {
	return int64(m.m.Rows())*int64(m.m.Dim())*8 + 32
}

const modelMagic = "RNEMODEL2\n"

// Save serializes the model (matrix, metric order, scale).
func (m *Model) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(modelMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, []float64{m.p, m.scale}); err != nil {
		return err
	}
	if _, err := m.m.WriteTo(bw); err != nil {
		return err
	}
	return bw.Flush()
}

// Load deserializes a model written by Save. The hierarchy is not
// persisted; Hier returns nil on loaded models.
func Load(r io.Reader) (*Model, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(modelMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, err
	}
	if string(magic) != modelMagic {
		return nil, fmt.Errorf("core: bad model magic %q", magic)
	}
	var hdr [2]float64
	if err := binary.Read(br, binary.LittleEndian, &hdr); err != nil {
		return nil, err
	}
	mat, err := emb.ReadMatrix(br)
	if err != nil {
		return nil, err
	}
	if hdr[0] <= 0 || hdr[1] <= 0 {
		return nil, fmt.Errorf("core: implausible model header p=%v scale=%v", hdr[0], hdr[1])
	}
	return &Model{m: mat, p: hdr[0], scale: hdr[1]}, nil
}

// SaveFile writes the model to the named file.
func (m *Model) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a model from the named file.
func LoadFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
