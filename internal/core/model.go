package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"repro/internal/emb"
	"repro/internal/fsx"
	"repro/internal/partition"
	"repro/internal/vecmath"
)

// Model is a trained RNE: a |V| x d global embedding matrix queried
// with the L_p metric. Estimate is the paper's nanosecond-scale query
// path.
type Model struct {
	m     *emb.Matrix
	p     float64
	scale float64

	// hier is retained by freshly built hierarchical models so the tree
	// index (Section VI) can be constructed; it is not serialized.
	hier *emb.Hier
}

// Estimate approximates the shortest-path distance between vertices s
// and t as scale * ||M[s]-M[t]||_p.
func (m *Model) Estimate(s, t int32) float64 {
	return vecmath.Lp(m.m.Row(s), m.m.Row(t), m.p) * m.scale
}

// EstimateL1 is the specialized p=1 query kernel benchmarked in the
// paper; calling it on a model with p != 1 is a bug guarded by P().
func (m *Model) EstimateL1(s, t int32) float64 {
	return vecmath.L1(m.m.Row(s), m.m.Row(t)) * m.scale
}

// Vector returns vertex v's embedding row (aliasing model storage).
func (m *Model) Vector(v int32) []float64 { return m.m.Row(v) }

// NumVertices returns |V|.
func (m *Model) NumVertices() int { return m.m.Rows() }

// Dim returns the embedding dimension d.
func (m *Model) Dim() int { return m.m.Dim() }

// P returns the metric order.
func (m *Model) P() float64 { return m.p }

// Scale returns the distance normalizer multiplied into estimates.
func (m *Model) Scale() float64 { return m.scale }

// Matrix exposes the global embedding matrix.
func (m *Model) Matrix() *emb.Matrix { return m.m }

// Hier returns the hierarchical local embedding behind a freshly built
// hierarchical model, or nil (naive builds and loaded models).
func (m *Model) Hier() *emb.Hier { return m.hier }

// Hierarchy returns the partition hierarchy, or nil when unavailable.
func (m *Model) Hierarchy() *partition.Hierarchy {
	if m.hier == nil {
		return nil
	}
	return m.hier.H
}

// IndexBytes reports the serialized index size in bytes (the Table IV
// metric): the |V| x d float64 matrix plus the small header.
func (m *Model) IndexBytes() int64 {
	return int64(m.m.Rows())*int64(m.m.Dim())*8 + 32
}

// Model file format versions. Both magics are 10 bytes, so Load can
// dispatch on a single fixed-size read.
//
//   - modelMagicV2 is the legacy format: magic, p, scale, matrix.
//     Files written before the integrity bump still load.
//   - modelMagicV3 is the current format: magic, int64 payload length,
//     payload (p, scale, matrix), uint32 CRC-32 (IEEE) trailer over
//     the payload. Load rejects truncated, length-mismatched or
//     bit-flipped files with a precise error instead of constructing
//     a silently wrong estimator.
const (
	modelMagicV2 = "RNEMODEL2\n"
	modelMagicV3 = "RNEMODEL3\n"
)

// payloadSize is the exact V3 payload length: p + scale, then the
// serialized matrix.
func (m *Model) payloadSize() int64 {
	return 16 + emb.MatrixFileSize(m.m.Rows(), m.m.Dim())
}

// Save serializes the model (matrix, metric order, scale) in the
// current integrity-checked format.
func (m *Model) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(modelMagicV3); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, m.payloadSize()); err != nil {
		return err
	}
	cw := fsx.NewCRCWriter(bw)
	if err := binary.Write(cw, binary.LittleEndian, []float64{m.p, m.scale}); err != nil {
		return err
	}
	if _, err := m.m.WriteTo(cw); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, cw.Sum32()); err != nil {
		return err
	}
	return bw.Flush()
}

// Load deserializes a model written by Save, accepting both the
// current checksummed format and the legacy RNEMODEL2 format. The
// hierarchy is not persisted; Hier returns nil on loaded models.
func Load(r io.Reader) (*Model, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(modelMagicV3))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("core: reading model magic: %w", err)
	}
	switch string(magic) {
	case modelMagicV2:
		return loadPayload(br)
	case modelMagicV3:
	default:
		return nil, fmt.Errorf("core: bad model magic %q", magic)
	}
	var plen int64
	if err := binary.Read(br, binary.LittleEndian, &plen); err != nil {
		return nil, fmt.Errorf("core: reading model payload length: %w", err)
	}
	// Minimum payload: p+scale plus an empty matrix.
	if min := 16 + emb.MatrixFileSize(0, 1); plen < min {
		return nil, fmt.Errorf("core: implausible model payload length %d", plen)
	}
	cr := fsx.NewCRCReader(io.LimitReader(br, plen))
	m, err := loadPayload(cr)
	if err != nil {
		return nil, err
	}
	var wantCRC uint32
	if err := binary.Read(br, binary.LittleEndian, &wantCRC); err != nil {
		return nil, fmt.Errorf("core: reading model checksum trailer: %w", err)
	}
	if err := fsx.VerifyTrailer(cr, plen, wantCRC, "core: model"); err != nil {
		return nil, err
	}
	return m, nil
}

// loadPayload parses the shared payload section (p, scale, matrix).
func loadPayload(r io.Reader) (*Model, error) {
	var hdr [2]float64
	if err := binary.Read(r, binary.LittleEndian, &hdr); err != nil {
		return nil, fmt.Errorf("core: reading model header: %w", err)
	}
	mat, err := emb.ReadMatrix(r)
	if err != nil {
		return nil, err
	}
	if hdr[0] <= 0 || hdr[1] <= 0 {
		return nil, fmt.Errorf("core: implausible model header p=%v scale=%v", hdr[0], hdr[1])
	}
	return &Model{m: mat, p: hdr[0], scale: hdr[1]}, nil
}

// SaveFile writes the model to the named file atomically: a crash
// mid-save leaves the previous file (or no file) at path, never a
// truncated one.
func (m *Model) SaveFile(path string) error {
	return fsx.WriteAtomic(path, m.Save)
}

// LoadFile reads a model from the named file.
func LoadFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
