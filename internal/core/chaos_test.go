package core

import (
	"bytes"
	"log/slog"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/fsx"
	"repro/internal/graph"
)

// chaosOptions is a small config with checkpointing enabled.
func chaosOptions(path string) Options {
	opt := DefaultOptions(7)
	opt.Dim = 8
	opt.Epochs = 4
	opt.VertexSampleRatio = 10
	opt.HierSampleCap = 2000
	opt.ValidationPairs = 150
	opt.FineTuneRounds = 2
	opt.CheckpointPath = path
	return opt
}

func finiteVal(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// The acceptance chaos scenario: one build takes a NaN sample batch, a
// direct embedding corruption, and a failed checkpoint write — and
// still completes with at least one recovery and a validation error
// within 2x of an uninjected build.
func TestChaosBuildSurvivesNaNAndCheckpointFailure(t *testing.T) {
	g := ckptTestGraph(t)
	dir := t.TempDir()

	clean, cleanStats, err := Build(g, chaosOptions(filepath.Join(dir, "clean.ckpt")))
	if err != nil {
		t.Fatal(err)
	}
	if clean == nil || cleanStats.Recoveries != 0 {
		t.Fatalf("clean build recovered %d times", cleanStats.Recoveries)
	}

	defer faultinject.Reset()
	// A full vertex-phase batch of NaN labels (skipped and counted),
	// one exploding step corrupting the embedding mid-vertex-phase
	// (rolled back), and one failed checkpoint write (tolerated).
	faultinject.Enable(FailpointVertexSamplesNaN, faultinject.Fault{})
	faultinject.Enable(FailpointEmbeddingCorrupt, faultinject.Fault{After: 2})
	faultinject.Enable(fsx.FailpointWriteAtomic, faultinject.Fault{After: 1})

	_, st, err := Build(g, chaosOptions(filepath.Join(dir, "chaos.ckpt")))
	if err != nil {
		t.Fatalf("chaotic build failed: %v", err)
	}
	if st.Recoveries < 1 {
		t.Fatalf("Recoveries = %d, want >= 1 (rollbacks: %v)", st.Recoveries, st.Rollbacks)
	}
	if len(st.Rollbacks) != st.Recoveries {
		t.Fatalf("Rollbacks %v inconsistent with Recoveries %d", st.Rollbacks, st.Recoveries)
	}
	if st.SamplesSkipped == 0 {
		t.Fatal("SamplesSkipped = 0, want the injected NaN batch counted")
	}
	if st.CheckpointFailures < 1 {
		t.Fatal("CheckpointFailures = 0, want the injected write failure counted")
	}
	if st.FinalLR >= cleanStats.FinalLR {
		t.Fatalf("FinalLR %v not reduced from clean %v despite recovery", st.FinalLR, cleanStats.FinalLR)
	}
	if !finiteVal(st.Validation.MeanRel) {
		t.Fatalf("validation error %v not finite", st.Validation.MeanRel)
	}
	if st.Validation.MeanRel > 2*cleanStats.Validation.MeanRel {
		t.Fatalf("chaotic validation %.4g worse than 2x clean %.4g",
			st.Validation.MeanRel, cleanStats.Validation.MeanRel)
	}
	// The tolerated failure must not have poisoned later writes: a
	// valid checkpoint landed on disk eventually.
	if _, err := os.Stat(filepath.Join(dir, "chaos.ckpt")); err != nil {
		t.Fatalf("no checkpoint on disk after tolerated failure: %v", err)
	}
}

// Persistent embedding corruption exhausts the recovery budget and
// fails with a descriptive error instead of returning a garbage model.
func TestChaosPersistentCorruptionFailsDescriptively(t *testing.T) {
	g := ckptTestGraph(t)
	defer faultinject.Reset()
	faultinject.Enable(FailpointEmbeddingCorrupt, faultinject.Fault{Count: -1})

	opt := chaosOptions(filepath.Join(t.TempDir(), "c.ckpt"))
	opt.MaxRecoveries = 2
	_, st, err := Build(g, opt)
	if err == nil {
		t.Fatal("build with persistent corruption succeeded")
	}
	if st.Recoveries != 2 {
		t.Fatalf("Recoveries = %d, want exactly MaxRecoveries = 2", st.Recoveries)
	}
	for _, want := range []string{"diverged", "recoveries", "non-finite"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}
}

// A build killed mid-phase (here: by strict checkpointing over a
// persistently failing disk) resumes from the last good checkpoint once
// the fault clears.
func TestChaosMidPhaseCrashThenResume(t *testing.T) {
	g := ckptTestGraph(t)
	path := filepath.Join(t.TempDir(), "crash.ckpt")

	faultinject.Reset()
	// Let two checkpoint writes succeed, then fail every later one;
	// strict mode turns the third write into a mid-phase crash.
	faultinject.Enable(FailpointCheckpointSave, faultinject.Fault{After: 2, Count: -1})
	opt := chaosOptions(path)
	opt.StrictCheckpoints = true
	_, _, err := Build(g, opt)
	faultinject.Reset()
	if err == nil {
		t.Fatal("build survived persistent strict checkpoint failure")
	}
	if _, statErr := os.Stat(path); statErr != nil {
		t.Fatalf("no checkpoint from before the crash: %v", statErr)
	}

	opt = chaosOptions(path)
	opt.Resume = true
	model, st, err := Build(g, opt)
	if err != nil {
		t.Fatalf("resume after crash failed: %v", err)
	}
	if !st.Resumed {
		t.Fatal("stats.Resumed = false after crash resume")
	}
	if model == nil || !finiteVal(st.Validation.MeanRel) {
		t.Fatal("resumed build produced no usable model")
	}
}

// Resuming from a corrupted checkpoint warns and restarts from scratch
// by default, and errors under StrictResume.
func TestChaosResumeFromCorruptCheckpoint(t *testing.T) {
	g := ckptTestGraph(t)
	path := filepath.Join(t.TempDir(), "corrupt.ckpt")
	if err := os.WriteFile(path, []byte("RNECKPT1\nthis is not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}

	var logBuf bytes.Buffer
	opt := chaosOptions(path)
	opt.Resume = true
	opt.Logger = slog.New(slog.NewTextHandler(&logBuf, nil))
	model, st, err := Build(g, opt)
	if err != nil {
		t.Fatalf("default resume over corrupt checkpoint failed: %v", err)
	}
	if st.Resumed || !st.CheckpointDiscarded {
		t.Fatalf("Resumed=%v CheckpointDiscarded=%v, want false/true", st.Resumed, st.CheckpointDiscarded)
	}
	if !strings.Contains(logBuf.String(), "discarding unusable checkpoint") {
		t.Fatalf("discarding a corrupt checkpoint did not log a warning; log:\n%s", logBuf.String())
	}
	if model == nil || st.SamplesUsed == 0 {
		t.Fatal("fresh restart did not train")
	}

	// Same corruption under strict mode: fatal.
	if err := os.WriteFile(path, []byte("RNECKPT1\nstill not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	opt = chaosOptions(path)
	opt.Resume = true
	opt.StrictResume = true
	if _, _, err := Build(g, opt); err == nil {
		t.Fatal("StrictResume accepted a corrupt checkpoint")
	}
}

// A version-mismatched checkpoint (same framing, different build
// options) is likewise discarded, not fatal.
func TestChaosResumeFromMismatchedCheckpoint(t *testing.T) {
	g := ckptTestGraph(t)
	path := filepath.Join(t.TempDir(), "mismatch.ckpt")

	// Checkpoint taken under a different seed.
	other := chaosOptions(path)
	other.Seed = 999
	tr, err := NewTrainer(g, other)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.SaveCheckpoint(path, ckptPhaseHier, 1, 0); err != nil {
		t.Fatal(err)
	}

	opt := chaosOptions(path)
	opt.Resume = true
	_, st, err := Build(g, opt)
	if err != nil {
		t.Fatalf("resume over mismatched checkpoint failed: %v", err)
	}
	if st.Resumed || !st.CheckpointDiscarded {
		t.Fatalf("Resumed=%v CheckpointDiscarded=%v, want false/true", st.Resumed, st.CheckpointDiscarded)
	}
}

// An injected graph-load failure surfaces as a load error (proving the
// loader hook is wired), not a crash.
func TestChaosGraphLoadFailpoint(t *testing.T) {
	g := ckptTestGraph(t)
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := graph.WriteFile(path, g); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Reset()
	faultinject.Enable(graph.FailpointRead, faultinject.Fault{})
	if _, err := graph.ReadFile(path); err == nil {
		t.Fatal("injected graph read failure not surfaced")
	}
	if _, err := graph.ReadFile(path); err != nil {
		t.Fatalf("graph load still failing after failpoint exhausted: %v", err)
	}
}
