package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// A traced build records every phase span and a per-unit series with
// finite losses and learning rates — the raw material of
// build-report.json.
func TestBuildRecordsTrace(t *testing.T) {
	g := testGraph(t, 10)
	opt := fastOptions(7)
	opt.Dim = 16
	opt.Epochs = 3
	opt.FineTuneRounds = 2
	reg := telemetry.NewRegistry()
	opt.Trace = telemetry.NewTracer(nil, reg)

	if _, _, err := Build(g, opt); err != nil {
		t.Fatal(err)
	}
	rep := opt.Trace.Report()

	phases := map[string]bool{}
	for _, p := range rep.Phases {
		if p.DurationMS < 0 {
			t.Fatalf("negative phase duration: %+v", p)
		}
		phases[p.Name] = true
	}
	for _, want := range []string{
		"setup", "partition", "landmarks", "grid", "validation-set",
		"hier-phase", "vertex-phase", "finetune-phase", "finalize",
	} {
		if !phases[want] {
			t.Fatalf("phase %q missing from trace: %+v", want, rep.Phases)
		}
	}

	if len(rep.Units) == 0 {
		t.Fatal("no unit records traced")
	}
	seenPhase := map[string]bool{}
	for _, u := range rep.Units {
		if u.Phase != "hier" && u.Phase != "vertex" && u.Phase != "finetune" {
			t.Fatalf("unexpected unit phase %q: %+v", u.Phase, u)
		}
		seenPhase[u.Phase] = true
		if math.IsNaN(u.Loss) || math.IsInf(u.Loss, 0) || u.Loss < 0 {
			t.Fatalf("bad unit loss: %+v", u)
		}
		if u.LR <= 0 || u.DurationMS < 0 {
			t.Fatalf("bad unit LR/duration: %+v", u)
		}
	}
	for _, want := range []string{"hier", "vertex", "finetune"} {
		if !seenPhase[want] {
			t.Fatalf("no units traced for phase %q: %+v", want, rep.Units)
		}
	}

	var sb strings.Builder
	if _, err := reg.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if err := telemetry.CheckExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("build metrics not valid exposition: %v", err)
	}
	for _, want := range []string{
		`rne_build_phase_seconds{phase="vertex-phase"}`,
		`rne_build_units_total{phase="finetune"}`,
		"rne_build_lr",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("build metrics missing %q:\n%s", want, out)
		}
	}
}
