package core

import (
	"math"
	"testing"

	"repro/internal/gen"
)

// The provenance invariant: per-level contributions telescope, so they
// sum to exactly the estimate the query path serves. Asserted as a
// property over random vertex pairs.
func TestExplainEstimateContributionsSumToEstimate(t *testing.T) {
	g := testGraph(t, 12)
	opt := fastOptions(7)
	opt.Epochs = 3
	opt.FineTuneRounds = 1
	m, _, err := Build(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	rng := newRng(11)
	n := int32(m.NumVertices())
	for trial := 0; trial < 500; trial++ {
		s, u := rng.Int31n(n), rng.Int31n(n)
		ex := m.ExplainEstimate(s, u)
		if !ex.HasHierarchy {
			t.Fatal("fresh hierarchical build should explain per level")
		}
		want := m.Estimate(s, u)
		if ex.Estimate != want {
			t.Fatalf("(%d,%d): Explanation.Estimate %v != Estimate %v", s, u, ex.Estimate, want)
		}
		var sum float64
		for _, lc := range ex.Levels {
			sum += lc.Contribution
		}
		if math.Abs(sum-want) > 1e-9 {
			t.Fatalf("(%d,%d): contributions sum to %v, estimate is %v (diff %g)",
				s, u, sum, want, sum-want)
		}
		// Deepest partial must equal the estimate bit-identically: the
		// prefix sums replay the build's flatten order.
		if last := ex.Levels[len(ex.Levels)-1].Partial; last != want {
			t.Fatalf("(%d,%d): deepest partial %v != estimate %v", s, u, last, want)
		}
	}
}

func TestExplainEstimateStructure(t *testing.T) {
	g := testGraph(t, 10)
	opt := fastOptions(3)
	opt.Epochs = 2
	opt.FineTuneRounds = 1
	m, _, err := Build(g, opt)
	if err != nil {
		t.Fatal(err)
	}

	// Identical pair: zero estimate, every level shared with zero
	// contribution.
	ex := m.ExplainEstimate(4, 4)
	if ex.Estimate != 0 {
		t.Fatalf("self pair estimate %v", ex.Estimate)
	}
	for _, lc := range ex.Levels {
		if !lc.Shared || lc.Contribution != 0 {
			t.Fatalf("self pair level %d: shared=%v contribution=%v", lc.Level, lc.Shared, lc.Contribution)
		}
	}

	// Distinct pair: level 0 is always the shared root, and the shared
	// prefix contributes nothing.
	ex = m.ExplainEstimate(0, int32(m.NumVertices()-1))
	if len(ex.Levels) == 0 {
		t.Fatal("no levels")
	}
	if !ex.Levels[0].Shared {
		t.Fatalf("root level not shared: %+v", ex.Levels[0])
	}
	for _, lc := range ex.Levels {
		if lc.Shared && lc.Contribution != 0 {
			t.Fatalf("shared level %d contributes %v", lc.Level, lc.Contribution)
		}
	}
	if dom := ex.DominantLevel(); dom < 0 || dom >= len(ex.Levels) {
		t.Fatalf("dominant level %d out of range", dom)
	}
}

// Loaded and naive models carry no hierarchy; the explanation degrades
// to the total estimate instead of failing.
func TestExplainEstimateWithoutHierarchy(t *testing.T) {
	g, err := gen.Grid(8, 8, gen.DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	opt := fastOptions(2)
	opt.Hierarchical = false
	opt.ActiveFineTune = false
	opt.Epochs = 2
	m, _, err := Build(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	ex := m.ExplainEstimate(1, 5)
	if ex.HasHierarchy || len(ex.Levels) != 0 {
		t.Fatalf("naive model explained per level: %+v", ex)
	}
	if ex.Estimate != m.Estimate(1, 5) {
		t.Fatalf("estimate %v != %v", ex.Estimate, m.Estimate(1, 5))
	}
	if ex.DominantLevel() != -1 {
		t.Fatalf("dominant level %d without hierarchy", ex.DominantLevel())
	}
}
