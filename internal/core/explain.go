package core

import (
	"repro/internal/vecmath"
)

// LevelContribution is one hierarchy level's share of a distance
// estimate. The decomposition follows the model's sum-of-ancestors
// structure (Section IV): truncating both embeddings to their first
// k+1 ancestor levels yields a partial estimate, and the contribution
// of level k is the increment Partial_k - Partial_{k-1}. Contributions
// telescope, so they sum exactly to Model.Estimate; a large
// contribution at level k means the level-k local embeddings move the
// estimate the most for this pair.
type LevelContribution struct {
	// Level is the hierarchy depth: 0 is the root, MaxDepth the
	// vertex nodes.
	Level int `json:"level"`
	// NodeS and NodeT are the ancestor node ids of s and t at this
	// level, or -1 where a shallow branch's path has already ended.
	NodeS int32 `json:"node_s"`
	NodeT int32 `json:"node_t"`
	// Shared marks levels where both vertices sit under the same node;
	// the local-embedding delta is zero there by construction.
	Shared bool `json:"shared"`
	// Partial is the estimate truncated to levels <= Level.
	Partial float64 `json:"partial"`
	// Contribution is Partial minus the previous level's Partial.
	Contribution float64 `json:"contribution"`
}

// Explanation decomposes one estimate for debugging and error
// attribution: which hierarchy levels produced the value.
type Explanation struct {
	S        int32   `json:"s"`
	T        int32   `json:"t"`
	Estimate float64 `json:"estimate"`
	// HasHierarchy reports whether a per-level breakdown was possible.
	// Loaded models and naive (flat) builds do not retain the partition
	// tree, so only the total estimate is reported for them.
	HasHierarchy bool                `json:"has_hierarchy"`
	Levels       []LevelContribution `json:"levels,omitempty"`
}

// DominantLevel returns the level with the largest absolute
// contribution, or -1 when no per-level breakdown is available.
func (e Explanation) DominantLevel() int {
	best, bestAbs := -1, 0.0
	for _, lc := range e.Levels {
		abs := lc.Contribution
		if abs < 0 {
			abs = -abs
		}
		if best < 0 || abs > bestAbs {
			best, bestAbs = lc.Level, abs
		}
	}
	return best
}

// ExplainEstimate decomposes the estimate for (s, t) into per-level
// contributions. The partial sums accumulate local-embedding rows in
// the same root-first order the build's Flatten step used, so the
// deepest partial — and therefore the contribution total — is
// bit-identical to Estimate on hierarchical models.
func (m *Model) ExplainEstimate(s, t int32) Explanation {
	ex := Explanation{S: s, T: t, Estimate: m.Estimate(s, t)}
	if m.hier == nil {
		return ex
	}
	ex.HasHierarchy = true

	ancS := m.hier.H.Ancestors(s)
	ancT := m.hier.H.Ancestors(t)
	levels := len(ancS)
	if len(ancT) > levels {
		levels = len(ancT)
	}
	d := m.Dim()
	prefS := make([]float64, d)
	prefT := make([]float64, d)
	ex.Levels = make([]LevelContribution, 0, levels)
	prev := 0.0
	for lev := 0; lev < levels; lev++ {
		lc := LevelContribution{Level: lev, NodeS: -1, NodeT: -1}
		if lev < len(ancS) {
			lc.NodeS = ancS[lev]
			vecmath.Sum(prefS, m.hier.Local.Row(lc.NodeS))
		}
		if lev < len(ancT) {
			lc.NodeT = ancT[lev]
			vecmath.Sum(prefT, m.hier.Local.Row(lc.NodeT))
		}
		lc.Shared = lc.NodeS >= 0 && lc.NodeS == lc.NodeT
		lc.Partial = vecmath.Lp(prefS, prefT, m.p) * m.scale
		lc.Contribution = lc.Partial - prev
		prev = lc.Partial
		ex.Levels = append(ex.Levels, lc)
	}
	return ex
}
