package core

import (
	"fmt"
	"os"
	"time"

	"repro/internal/graph"
	"repro/internal/metrics"
)

// BuildStats records what Build did, mirroring the quantities of
// Tables III/IV: wall-clock time per phase, total samples consumed and
// the final validation error.
type BuildStats struct {
	// Setup covers hierarchy construction, landmark selection, grid and
	// validation-set preparation.
	Setup time.Duration
	// HierPhase, VertexPhase and FineTune time phases ①–③.
	HierPhase, VertexPhase, FineTune time.Duration
	// Total is the end-to-end build time (the Table IV "building time").
	Total time.Duration
	// SamplesUsed counts SGD sample presentations across all epochs.
	// On a resumed build this includes the samples restored from the
	// checkpoint, so it matches an uninterrupted build.
	SamplesUsed int64
	// Resumed reports whether the build restored state from a
	// checkpoint instead of starting from scratch.
	Resumed bool
	// Validation is the final held-out error.
	Validation metrics.ErrorStats
}

// Build runs the full Algorithm 1 pipeline over g and returns the
// query model together with build statistics.
//
// With Options.CheckpointPath set, training state is checkpointed
// atomically as phases complete; with Options.Resume also set and an
// existing checkpoint on disk, the build restarts from the last
// completed hierarchy level / vertex epoch / fine-tune round instead
// of from scratch.
func Build(g *graph.Graph, opt Options) (*Model, BuildStats, error) {
	var st BuildStats
	start := time.Now()

	t0 := time.Now()
	tr, err := NewTrainer(g, opt)
	if err != nil {
		return nil, st, err
	}
	opt = tr.Options() // defaults applied

	phase, level, epoch := ckptPhaseNone, 0, 0
	if opt.Resume {
		if _, statErr := os.Stat(opt.CheckpointPath); statErr == nil {
			phase, level, epoch, err = tr.RestoreCheckpoint(opt.CheckpointPath)
			if err != nil {
				return nil, st, fmt.Errorf("core: resuming build: %w", err)
			}
			st.Resumed = true
		}
	}
	ck := &checkpointer{path: opt.CheckpointPath, every: opt.CheckpointEvery}
	st.Setup = time.Since(t0)

	t0 = time.Now()
	if phase <= ckptPhaseHier {
		fromLevel := 1
		if phase == ckptPhaseHier {
			fromLevel = level + 1
		}
		err := tr.RunHierPhaseFrom(fromLevel, func(lev int) error {
			return ck.tick(tr, opt.Epochs, ckptPhaseHier, lev, 0)
		})
		if err != nil {
			return nil, st, err
		}
	}
	st.HierPhase = time.Since(t0)

	t0 = time.Now()
	if phase <= ckptPhaseVertex {
		fromEpoch := 0
		if phase == ckptPhaseVertex {
			fromEpoch = epoch
		}
		err := tr.RunVertexPhaseFrom(fromEpoch, func(e int) error {
			return ck.tick(tr, 1, ckptPhaseVertex, 0, e+1)
		})
		if err != nil {
			return nil, st, err
		}
	}
	st.VertexPhase = time.Since(t0)

	if opt.ActiveFineTune {
		t0 = time.Now()
		fromRound := 0
		if phase == ckptPhaseFineTune {
			fromRound = epoch
		}
		for k := fromRound; k < opt.FineTuneRounds; k++ {
			tr.RunFineTuneRound(k)
			if err := ck.tick(tr, 1, ckptPhaseFineTune, 0, k+1); err != nil {
				return nil, st, err
			}
		}
		st.FineTune = time.Since(t0)
	}

	st.Total = time.Since(start)
	st.SamplesUsed = tr.SamplesUsed()
	st.Validation = tr.Validate()
	return tr.Finalize(), st, nil
}
