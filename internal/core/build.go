package core

import (
	"time"

	"repro/internal/graph"
	"repro/internal/metrics"
)

// BuildStats records what Build did, mirroring the quantities of
// Tables III/IV: wall-clock time per phase, total samples consumed and
// the final validation error.
type BuildStats struct {
	// Setup covers hierarchy construction, landmark selection, grid and
	// validation-set preparation.
	Setup time.Duration
	// HierPhase, VertexPhase and FineTune time phases ①–③.
	HierPhase, VertexPhase, FineTune time.Duration
	// Total is the end-to-end build time (the Table IV "building time").
	Total time.Duration
	// SamplesUsed counts SGD sample presentations across all epochs.
	SamplesUsed int64
	// Validation is the final held-out error.
	Validation metrics.ErrorStats
}

// Build runs the full Algorithm 1 pipeline over g and returns the
// query model together with build statistics.
func Build(g *graph.Graph, opt Options) (*Model, BuildStats, error) {
	var st BuildStats
	start := time.Now()

	t0 := time.Now()
	tr, err := NewTrainer(g, opt)
	if err != nil {
		return nil, st, err
	}
	st.Setup = time.Since(t0)

	t0 = time.Now()
	tr.RunHierPhase()
	st.HierPhase = time.Since(t0)

	t0 = time.Now()
	tr.RunVertexPhase()
	st.VertexPhase = time.Since(t0)

	if tr.Options().ActiveFineTune {
		t0 = time.Now()
		for k := 0; k < tr.Options().FineTuneRounds; k++ {
			tr.RunFineTuneRound(k)
		}
		st.FineTune = time.Since(t0)
	}

	st.Total = time.Since(start)
	st.SamplesUsed = tr.SamplesUsed()
	st.Validation = tr.Validate()
	return tr.Finalize(), st, nil
}
