package core

import (
	"errors"
	"fmt"
	"os"
	"time"

	"repro/internal/graph"
	"repro/internal/metrics"
)

// BuildStats records what Build did, mirroring the quantities of
// Tables III/IV: wall-clock time per phase, total samples consumed and
// the final validation error, plus the self-healing counters of the
// divergence sentinel.
type BuildStats struct {
	// Setup covers hierarchy construction, landmark selection, grid and
	// validation-set preparation.
	Setup time.Duration
	// HierPhase, VertexPhase and FineTune time phases ①–③.
	HierPhase, VertexPhase, FineTune time.Duration
	// Total is the end-to-end build time (the Table IV "building time").
	Total time.Duration
	// SamplesUsed counts SGD sample presentations across all epochs.
	// On a resumed build this includes the samples restored from the
	// checkpoint, so it matches an uninterrupted build.
	SamplesUsed int64
	// SamplesSkipped counts presentations skipped because the sample
	// carried a non-finite target distance. Nonzero means a sample
	// source produced garbage labels that SGD refused to train on.
	SamplesSkipped int64
	// Resumed reports whether the build restored state from a
	// checkpoint instead of starting from scratch.
	Resumed bool
	// CheckpointDiscarded reports that Options.Resume found a
	// checkpoint that was corrupt or from a different build and
	// (without StrictResume) restarted training from scratch.
	CheckpointDiscarded bool
	// CheckpointFailures counts checkpoint writes that failed and were
	// tolerated (without StrictCheckpoints): the build continued, only
	// resumability was degraded until a later write succeeded.
	CheckpointFailures int
	// Recoveries counts divergence-sentinel rollbacks: each one
	// restored the last good training state and halved the learning
	// rate before retrying the failed unit of work.
	Recoveries int
	// Rollbacks describes each recovery ("vertex epoch 3: non-finite
	// embedding value at parameter 17"), in order.
	Rollbacks []string
	// FinalLR is the dimension-normalized base learning rate training
	// finished with; it is below the starting rate exactly when the
	// sentinel recovered from a divergence.
	FinalLR float64
	// Validation is the final held-out error.
	Validation metrics.ErrorStats
}

// Build runs the full Algorithm 1 pipeline over g and returns the
// query model together with build statistics.
//
// Training runs under a divergence sentinel: after every hierarchy
// level, vertex epoch and fine-tune round the embedding is scanned for
// non-finite values and the held-out validation error is compared
// against the best seen; a corrupt or diverged state is rolled back to
// an in-memory last-good snapshot, the learning rate halved, and the
// unit retried, up to Options.MaxRecoveries times.
//
// With Options.CheckpointPath set, training state is checkpointed
// atomically as phases complete; with Options.Resume also set and an
// existing checkpoint on disk, the build restarts from the last
// completed hierarchy level / vertex epoch / fine-tune round instead
// of from scratch.
func Build(g *graph.Graph, opt Options) (*Model, BuildStats, error) {
	var st BuildStats
	start := time.Now()

	t0 := time.Now()
	sp := opt.Trace.StartSpan("setup")
	tr, err := NewTrainer(g, opt)
	if err != nil {
		return nil, st, err
	}
	opt = tr.Options() // defaults applied

	phase, level, epoch := ckptPhaseNone, 0, 0
	if opt.Resume {
		if _, statErr := os.Stat(opt.CheckpointPath); statErr == nil {
			phase, level, epoch, err = tr.RestoreCheckpoint(opt.CheckpointPath)
			switch {
			case err == nil:
				st.Resumed = true
			case opt.StrictResume:
				return nil, st, fmt.Errorf("core: resuming build: %w", err)
			default:
				// An unusable checkpoint costs a restart, not the build:
				// warn, restart from scratch, and let the first healthy
				// checkpoint write replace the bad file.
				opt.logger().Warn("discarding unusable checkpoint; training restarts from scratch",
					"path", opt.CheckpointPath, "error", err)
				st.CheckpointDiscarded = true
				phase, level, epoch = ckptPhaseNone, 0, 0
			}
		}
	}
	sen, err := newSentinel(tr, opt, &st)
	if err != nil {
		return nil, st, err
	}
	ck := &checkpointer{
		path:   opt.CheckpointPath,
		every:  opt.CheckpointEvery,
		strict: opt.StrictCheckpoints,
		logger: opt.Logger,
		trace:  opt.Trace,
		stats:  &st,
	}
	// guard runs after each completed unit of work: sentinel audit
	// first (nil, errRetryUnit, or terminal), checkpoint tick only on a
	// healthy verdict — checkpoints never capture a diverged state. On
	// a healthy verdict the unit is traced with the validation loss and
	// learning rate it finished at; unitStart resets either way, so a
	// retried unit is timed from its rollback, not its first attempt.
	unitStart := time.Now()
	guard := func(label string, epochs, phase, level, epoch int) error {
		dur := time.Since(unitStart)
		unitStart = time.Now()
		loss, err := sen.check(label, phase, level, epoch)
		if err != nil {
			return err
		}
		opt.Trace.Unit(phaseName(phase), label, loss, tr.LR(), st.Recoveries, dur)
		return ck.tick(tr, epochs, phase, level, epoch)
	}
	st.Setup = time.Since(t0)
	sp.End()

	t0 = time.Now()
	sp = opt.Trace.StartSpan("hier-phase")
	if phase <= ckptPhaseHier {
		fromLevel := 1
		if phase == ckptPhaseHier {
			fromLevel = level + 1
		}
		unitStart = time.Now()
		err := tr.RunHierPhaseFrom(fromLevel, func(lev int) error {
			return guard(fmt.Sprintf("hierarchy level %d", lev), opt.Epochs, ckptPhaseHier, lev, 0)
		})
		if err != nil {
			return nil, st, err
		}
	}
	st.HierPhase = time.Since(t0)
	sp.End()

	t0 = time.Now()
	sp = opt.Trace.StartSpan("vertex-phase")
	if phase <= ckptPhaseVertex {
		fromEpoch := 0
		if phase == ckptPhaseVertex {
			fromEpoch = epoch
		}
		unitStart = time.Now()
		err := tr.RunVertexPhaseFrom(fromEpoch, func(e int) error {
			return guard(fmt.Sprintf("vertex epoch %d", e), 1, ckptPhaseVertex, 0, e+1)
		})
		if err != nil {
			return nil, st, err
		}
	}
	st.VertexPhase = time.Since(t0)
	sp.End()

	if opt.ActiveFineTune {
		t0 = time.Now()
		sp = opt.Trace.StartSpan("finetune-phase")
		fromRound := 0
		if phase == ckptPhaseFineTune {
			fromRound = epoch
		}
		unitStart = time.Now()
		for k := fromRound; k < opt.FineTuneRounds; {
			tr.RunFineTuneRound(k)
			switch err := guard(fmt.Sprintf("fine-tune round %d", k), 1, ckptPhaseFineTune, 0, k+1); {
			case errors.Is(err, errRetryUnit):
				continue // rolled back: redo this round at the reduced rate
			case err != nil:
				return nil, st, err
			}
			k++
		}
		st.FineTune = time.Since(t0)
		sp.End()
	}

	sp = opt.Trace.StartSpan("finalize")
	st.SamplesUsed = tr.SamplesUsed()
	st.SamplesSkipped = tr.SamplesSkipped()
	st.FinalLR = tr.LR()
	st.Validation = tr.Validate()
	m := tr.Finalize()
	sp.End()
	st.Total = time.Since(start)
	return m, st, nil
}

// phaseName maps a checkpoint phase cursor to the build-report label.
func phaseName(phase int) string {
	switch phase {
	case ckptPhaseHier:
		return "hier"
	case ckptPhaseVertex:
		return "vertex"
	case ckptPhaseFineTune:
		return "finetune"
	default:
		return "setup"
	}
}
