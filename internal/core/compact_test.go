package core

import (
	"bytes"
	"math"
	"runtime"
	"testing"
)

func TestCompactMatchesFullModel(t *testing.T) {
	g := testGraph(t, 12)
	m, _, err := Build(g, fastOptions(21))
	if err != nil {
		t.Fatal(err)
	}
	c, err := m.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if c.NumVertices() != m.NumVertices() || c.Dim() != m.Dim() || c.Scale() != m.Scale() {
		t.Fatal("compact metadata wrong")
	}
	for i := 0; i < 200; i++ {
		s := int32(i % m.NumVertices())
		u := int32((i*37 + 11) % m.NumVertices())
		full := m.Estimate(s, u)
		comp := c.Estimate(s, u)
		// float32 quantization: relative error bounded well below 1e-4.
		tol := 1e-4*full + 1e-6
		if math.Abs(full-comp) > tol {
			t.Fatalf("(%d,%d): compact %v vs full %v", s, u, comp, full)
		}
	}
	if c.IndexBytes() >= m.IndexBytes() {
		t.Fatalf("compact %d bytes not smaller than full %d", c.IndexBytes(), m.IndexBytes())
	}
}

func TestCompactRejectsNonL1(t *testing.T) {
	g := testGraph(t, 8)
	opt := fastOptions(22)
	opt.P = 2
	m, _, err := Build(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Compact(); err == nil {
		t.Fatal("p=2 model compacted")
	}
}

func TestCompactSaveLoadRoundTrip(t *testing.T) {
	g := testGraph(t, 10)
	m, _, err := Build(g, fastOptions(23))
	if err != nil {
		t.Fatal(err)
	}
	c, err := m.Compact()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	c2, err := LoadCompact(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		s := int32(i % c.NumVertices())
		u := int32((i*13 + 7) % c.NumVertices())
		if c.Estimate(s, u) != c2.Estimate(s, u) {
			t.Fatal("round trip changed estimates")
		}
	}
	if _, err := LoadCompact(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestEstimateBatch(t *testing.T) {
	g := testGraph(t, 12)
	m, _, err := Build(g, fastOptions(24))
	if err != nil {
		t.Fatal(err)
	}
	const n = 1000
	ss := make([]int32, n)
	ts := make([]int32, n)
	for i := range ss {
		ss[i] = int32(i % m.NumVertices())
		ts[i] = int32((i*31 + 17) % m.NumVertices())
	}
	for _, workers := range []int{0, 1, 2, runtime.GOMAXPROCS(0) * 2, n + 5} {
		out := make([]float64, n)
		if err := m.EstimateBatch(ss, ts, out, workers); err != nil {
			t.Fatal(err)
		}
		for i := range out {
			if want := m.Estimate(ss[i], ts[i]); out[i] != want {
				t.Fatalf("workers=%d pair %d: %v vs %v", workers, i, out[i], want)
			}
		}
	}
	// Mismatched slice lengths rejected.
	if err := m.EstimateBatch(ss, ts[:10], make([]float64, n), 2); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
}

func TestAdamOptimizerConverges(t *testing.T) {
	g := testGraph(t, 14)
	sgdOpt := fastOptions(31)
	adamOpt := sgdOpt
	adamOpt.Optimizer = "adam"

	_, stSGD, err := Build(g, sgdOpt)
	if err != nil {
		t.Fatal(err)
	}
	_, stAdam, err := Build(g, adamOpt)
	if err != nil {
		t.Fatal(err)
	}
	// Adam must converge to a comparable error (within 2x of SGD's) —
	// the ablation-optimizer experiment quantifies which wins where.
	if stAdam.Validation.MeanRel > 2*stSGD.Validation.MeanRel+0.01 {
		t.Fatalf("adam %.2f%% far above sgd %.2f%%",
			stAdam.Validation.MeanRel*100, stSGD.Validation.MeanRel*100)
	}
	t.Logf("sgd %.3f%% vs adam %.3f%%", stSGD.Validation.MeanRel*100, stAdam.Validation.MeanRel*100)
}

func TestOptimizerValidation(t *testing.T) {
	g := testGraph(t, 8)
	opt := fastOptions(32)
	opt.Optimizer = "rmsprop"
	if _, err := NewTrainer(g, opt); err == nil {
		t.Fatal("unknown optimizer accepted")
	}
}
