package core

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func ckptTestGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := gen.Grid(10, 10, gen.DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// ckptTestOptions disables fine-tuning so sample counts are exactly
// deterministic across fresh and resumed builds.
func ckptTestOptions(path string) Options {
	opt := DefaultOptions(11)
	opt.Dim = 8
	opt.Epochs = 3
	opt.VertexSampleRatio = 10
	opt.HierSampleCap = 2000
	opt.ValidationPairs = 100
	opt.ActiveFineTune = false
	opt.CheckpointPath = path
	return opt
}

// A build interrupted after phase ① resumes from the checkpoint and
// finishes with exactly the sample budget of an uninterrupted build.
func TestBuildResumesFromCheckpoint(t *testing.T) {
	g := ckptTestGraph(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "build.ckpt")

	// Reference: uninterrupted build, no checkpointing.
	refOpt := ckptTestOptions("")
	refModel, refStats, err := Build(g, refOpt)
	if err != nil {
		t.Fatal(err)
	}

	// Simulate a build killed right after the hierarchy phase: run only
	// phase ①, checkpointing after each completed level.
	tr, err := NewTrainer(g, ckptTestOptions(path))
	if err != nil {
		t.Fatal(err)
	}
	var levelsDone int
	err = tr.RunHierPhaseFrom(1, func(lev int) error {
		levelsDone++
		return tr.SaveCheckpoint(path, ckptPhaseHier, lev, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	if levelsDone == 0 {
		t.Fatal("no hierarchy levels trained")
	}
	hierSamples := tr.SamplesUsed()
	if hierSamples == 0 {
		t.Fatal("hier phase consumed no samples")
	}

	// Resume: the build must skip phase ① (restoring its samples) and
	// run only phases ② onward.
	opt := ckptTestOptions(path)
	opt.Resume = true
	model, stats, err := Build(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Resumed {
		t.Fatal("stats.Resumed = false on a resumed build")
	}
	if stats.SamplesUsed != refStats.SamplesUsed {
		t.Fatalf("resumed build consumed %d samples total, uninterrupted build %d",
			stats.SamplesUsed, refStats.SamplesUsed)
	}
	if got := stats.SamplesUsed - hierSamples; got <= 0 {
		t.Fatalf("resumed build ran no post-hier training (%d new samples)", got)
	}
	// The resumed model must be a working estimator of comparable
	// quality (not bit-identical: the RNG restarts at the resume point).
	if !(stats.Validation.MeanRel > 0) || math.IsInf(stats.Validation.MeanRel, 0) {
		t.Fatalf("resumed validation broken: %+v", stats.Validation)
	}
	if stats.Validation.MeanRel > 3*refStats.Validation.MeanRel+0.05 {
		t.Fatalf("resumed model much worse than uninterrupted: %.4f vs %.4f",
			stats.Validation.MeanRel, refStats.Validation.MeanRel)
	}
	if model.NumVertices() != refModel.NumVertices() || model.Dim() != refModel.Dim() {
		t.Fatal("resumed model has wrong shape")
	}
}

// The cursor and embedding state round-trip exactly through a
// checkpoint file.
func TestCheckpointCursorAndStateRoundTrip(t *testing.T) {
	g := ckptTestGraph(t)
	path := filepath.Join(t.TempDir(), "c.ckpt")

	tr, err := NewTrainer(g, ckptTestOptions(path))
	if err != nil {
		t.Fatal(err)
	}
	tr.RunHierPhase()
	if err := tr.SaveCheckpoint(path, ckptPhaseVertex, 0, 2); err != nil {
		t.Fatal(err)
	}

	tr2, err := NewTrainer(g, ckptTestOptions(path))
	if err != nil {
		t.Fatal(err)
	}
	phase, level, epoch, err := tr2.RestoreCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if phase != ckptPhaseVertex || level != 0 || epoch != 2 {
		t.Fatalf("cursor = (%d,%d,%d), want (2,0,2)", phase, level, epoch)
	}
	if tr2.SamplesUsed() != tr.SamplesUsed() {
		t.Fatalf("samplesUsed %d, want %d", tr2.SamplesUsed(), tr.SamplesUsed())
	}
	a, b := tr.ckptMatrix().Data(), tr2.ckptMatrix().Data()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("embedding state differs at %d after restore", i)
		}
	}
}

// Checkpoints from a different configuration or with corrupted bytes
// are rejected.
func TestCheckpointRejectsMismatchAndCorruption(t *testing.T) {
	g := ckptTestGraph(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "c.ckpt")

	tr, err := NewTrainer(g, ckptTestOptions(path))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.SaveCheckpoint(path, ckptPhaseHier, 1, 0); err != nil {
		t.Fatal(err)
	}

	// Different dimension.
	optDim := ckptTestOptions(path)
	optDim.Dim = 16
	trDim, err := NewTrainer(g, optDim)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := trDim.RestoreCheckpoint(path); err == nil {
		t.Fatal("dim-mismatched checkpoint accepted")
	}

	// Different seed.
	optSeed := ckptTestOptions(path)
	optSeed.Seed = 999
	trSeed, err := NewTrainer(g, optSeed)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := trSeed.RestoreCheckpoint(path); err == nil {
		t.Fatal("seed-mismatched checkpoint accepted")
	}

	// Flipped payload byte.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-10] ^= 0x01
	bad := filepath.Join(dir, "bad.ckpt")
	if err := os.WriteFile(bad, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := tr.RestoreCheckpoint(bad); err == nil {
		t.Fatal("corrupted checkpoint accepted")
	}

	// Truncated file.
	trunc := filepath.Join(dir, "trunc.ckpt")
	if err := os.WriteFile(trunc, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := tr.RestoreCheckpoint(trunc); err == nil {
		t.Fatal("truncated checkpoint accepted")
	}
}

// Resume with no checkpoint on disk silently starts a fresh build.
func TestBuildResumeWithoutCheckpointStartsFresh(t *testing.T) {
	g := ckptTestGraph(t)
	opt := ckptTestOptions(filepath.Join(t.TempDir(), "never-written.ckpt"))
	opt.Resume = true
	model, stats, err := Build(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Resumed {
		t.Fatal("stats.Resumed = true with no checkpoint on disk")
	}
	if model == nil || stats.SamplesUsed == 0 {
		t.Fatal("fresh build did not train")
	}
	// The checkpoint file must now exist (the build wrote it as it went).
	if _, err := os.Stat(opt.CheckpointPath); err != nil {
		t.Fatalf("checkpoint not written during build: %v", err)
	}
}

// A build resumed mid-vertex-phase runs only the remaining epochs.
func TestBuildResumesMidVertexPhase(t *testing.T) {
	g := ckptTestGraph(t)
	path := filepath.Join(t.TempDir(), "mid.ckpt")

	tr, err := NewTrainer(g, ckptTestOptions(path))
	if err != nil {
		t.Fatal(err)
	}
	tr.RunHierPhase()
	var stopped bool
	tr.RunVertexPhaseFrom(0, func(e int) error {
		if e == 0 { // "killed" after the first vertex epoch
			if err := tr.SaveCheckpoint(path, ckptPhaseVertex, 0, e+1); err != nil {
				return err
			}
			stopped = true
		}
		return nil
	})
	if !stopped {
		t.Fatal("vertex phase never ran")
	}

	opt := ckptTestOptions(path)
	opt.Resume = true
	_, stats, err := Build(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Resumed {
		t.Fatal("not resumed")
	}
	if !(stats.Validation.MeanRel > 0) {
		t.Fatalf("validation broken: %+v", stats.Validation)
	}
}

func TestOptionsCheckpointValidation(t *testing.T) {
	opt := DefaultOptions(1)
	opt.Resume = true // without CheckpointPath
	if _, err := opt.withDefaults(); err == nil {
		t.Fatal("Resume without CheckpointPath accepted")
	}
	opt = DefaultOptions(1)
	opt.CheckpointPath = "x"
	opt.CheckpointEvery = -1
	if _, err := opt.withDefaults(); err == nil {
		t.Fatal("negative CheckpointEvery accepted")
	}
	opt = DefaultOptions(1)
	opt.CheckpointPath = "x"
	got, err := opt.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if got.CheckpointEvery != 1 {
		t.Fatalf("CheckpointEvery default = %d, want 1", got.CheckpointEvery)
	}
}
