package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/emb"
	"repro/internal/graph"
	"repro/internal/landmark"
	"repro/internal/metrics"
	"repro/internal/partition"
	"repro/internal/sample"
	"repro/internal/sssp"
	"repro/internal/train"
	"repro/internal/vecmath"
)

// Trainer drives the three training phases of Algorithm 1 and exposes
// them individually so the ablation experiments (Figures 11 and 12)
// can interleave training with validation.
type Trainer struct {
	g   *graph.Graph
	opt Options

	hier *emb.Hier   // hierarchical mode
	flat *emb.Matrix // naive mode

	oracle    *sssp.TruthOracle
	rng       *rand.Rand
	scale     float64
	landmarks []int32
	gb        *sample.GridBuckets
	val       []metrics.Pair
	lr        float64     // dimension-normalized base rate α0
	adam      *train.Adam // non-nil when Options.Optimizer == "adam"

	samplesUsed    int64
	samplesSkipped int64 // non-finite sample distances skipped by SGD steps
}

// NewTrainer prepares a trainer: it builds the partition hierarchy (in
// hierarchical mode), estimates the distance scale, selects landmarks,
// constructs the fine-tuning grid and draws the exact validation set.
func NewTrainer(g *graph.Graph, opt Options) (*Trainer, error) {
	opt, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	if g.NumVertices() < 2 {
		return nil, fmt.Errorf("core: graph needs at least 2 vertices")
	}
	t := &Trainer{
		g:      g,
		opt:    opt,
		oracle: sssp.NewTruthOracle(g, opt.OracleCache),
		rng:    rand.New(rand.NewSource(opt.Seed)),
		// For the L1 metric every coordinate of both endpoints moves by
		// lr*2*err per update, shifting the estimate by ~4*d*lr*err, so
		// the stable step size scales as 1/d. Normalizing here keeps
		// Options.LR dimension-independent.
		lr: opt.LR / float64(opt.Dim),
	}
	if opt.P < 1 {
		// Sub-metric orders (the Figure 9 L0.5 point) amplify per-
		// coordinate jitter super-linearly: dist = (Σ|δ|^p)^(1/p) grows
		// as d^(1/p)·δ, so the stable step shrinks by another d^(1/p-1).
		t.lr /= math.Pow(float64(opt.Dim), 1/opt.P-1)
	}
	t.scale = estimateDiameter(g, opt.Seed)
	if t.scale <= 0 {
		return nil, fmt.Errorf("core: could not estimate graph diameter")
	}

	if opt.Hierarchical {
		sp := opt.Trace.StartSpan("partition")
		h, err := partition.BuildHierarchy(g, partition.HierConfig{
			Fanout: opt.Fanout, Leaf: opt.Leaf, Seed: opt.Seed,
		})
		sp.End()
		if err != nil {
			return nil, err
		}
		t.hier = emb.NewHier(h, opt.Dim)
		initScale := 1.0 / (float64(opt.Dim) * float64(h.MaxDepth()+1))
		t.hier.Local.RandomInit(t.rng, initScale)
		if opt.Optimizer == "adam" {
			t.adam = train.NewAdam(h.NumNodes(), opt.Dim)
		}
	} else {
		t.flat = emb.NewMatrix(g.NumVertices(), opt.Dim)
		t.flat.RandomInit(t.rng, 1.0/float64(opt.Dim))
		if opt.Optimizer == "adam" {
			t.adam = train.NewAdam(g.NumVertices(), opt.Dim)
		}
	}
	if t.adam != nil {
		// Adam's per-parameter normalization replaces the 1/d scaling;
		// map the default LR=0.25 onto the canonical Adam rate 1e-3.
		t.lr = opt.LR * 0.004
	}

	nLandmarks := opt.Landmarks
	if nLandmarks > g.NumVertices() {
		nLandmarks = g.NumVertices()
	}
	selectLandmarks := landmark.Farthest
	switch opt.LandmarkStrategy {
	case "random":
		selectLandmarks = landmark.Random
	case "degree":
		selectLandmarks = landmark.ByDegree
	}
	sp := opt.Trace.StartSpan("landmarks")
	t.landmarks, err = selectLandmarks(g, nLandmarks, opt.Seed+1)
	sp.End()
	if err != nil {
		return nil, err
	}
	sp = opt.Trace.StartSpan("grid")
	t.gb, err = sample.NewGridBuckets(g, opt.GridK)
	sp.End()
	if err != nil {
		return nil, err
	}

	sp = opt.Trace.StartSpan("validation-set")
	valSamples := sample.RandomPairs(g, opt.ValidationPairs, opt.PerSource, t.oracle, t.rng)
	t.val = make([]metrics.Pair, len(valSamples))
	for i, s := range valSamples {
		t.val[i] = metrics.Pair{S: s.S, T: s.T, Dist: s.Dist}
	}
	sp.End()
	return t, nil
}

// estimateDiameter runs the classic double-sweep lower bound: SSSP from
// a fixed vertex, then SSSP from the farthest vertex found.
func estimateDiameter(g *graph.Graph, seed int64) float64 {
	ws := sssp.NewWorkspace(g)
	rng := rand.New(rand.NewSource(seed))
	start := int32(rng.Intn(g.NumVertices()))
	dist := ws.FromSource(start, nil)
	far, best := start, 0.0
	for v, d := range dist {
		if d < sssp.Inf && d > best {
			far, best = int32(v), d
		}
	}
	dist = ws.FromSource(far, dist)
	for _, d := range dist {
		if d < sssp.Inf && d > best {
			best = d
		}
	}
	return best
}

// Graph returns the graph being embedded.
func (t *Trainer) Graph() *graph.Graph { return t.g }

// Options returns the effective (defaulted) options.
func (t *Trainer) Options() Options { return t.opt }

// Scale returns the distance normalizer.
func (t *Trainer) Scale() float64 { return t.scale }

// Landmarks returns the selected landmark set.
func (t *Trainer) Landmarks() []int32 { return t.landmarks }

// SamplesUsed reports the cumulative number of training samples
// consumed (counting each epoch pass once, matching the paper's
// sample-count x-axes).
func (t *Trainer) SamplesUsed() int64 { return t.samplesUsed }

// SamplesSkipped reports how many sample presentations were skipped for
// carrying non-finite target distances — a nonzero value means a
// sample source produced garbage labels that SGD refused to train on.
func (t *Trainer) SamplesSkipped() int64 { return t.samplesSkipped }

// LR returns the current dimension-normalized base learning rate; the
// divergence sentinel halves it on every rollback, so a build that
// recovered reports a lower final rate than it started with.
func (t *Trainer) LR() float64 { return t.lr }

// ScaleLR multiplies the base learning rate by f (sentinel rollbacks
// use f = 0.5).
func (t *Trainer) ScaleLR(f float64) { t.lr *= f }

// resetAdam clears optimizer moments after a rollback: moments
// accumulated on the diverged trajectory must not steer the retry.
func (t *Trainer) resetAdam() {
	if t.adam != nil {
		t.adam.Reset()
	}
}

// Hierarchy returns the partition hierarchy (nil in naive mode).
func (t *Trainer) Hierarchy() *partition.Hierarchy {
	if t.hier == nil {
		return nil
	}
	return t.hier.H
}

// Estimate returns the current model's distance estimate, usable
// mid-training for validation probes.
func (t *Trainer) Estimate(s, u int32) float64 {
	if t.hier != nil {
		d := t.opt.Dim
		vs := make([]float64, d)
		vt := make([]float64, d)
		t.hier.GlobalInto(vs, s)
		t.hier.GlobalInto(vt, u)
		return vecmath.Lp(vs, vt, t.opt.P) * t.scale
	}
	return t.flat.Distance(s, u, t.opt.P) * t.scale
}

// Validate evaluates the current model on the held-out exact pairs.
func (t *Trainer) Validate() metrics.ErrorStats {
	return metrics.Evaluate(metrics.EstimatorFunc(t.Estimate), t.val)
}

// ValidationPairs exposes the held-out set for experiment harnesses.
func (t *Trainer) ValidationPairs() []metrics.Pair { return t.val }

// RunHierPhase executes phase ① of Algorithm 1: level-by-level training
// of the hierarchy embedding with the |l-lev|-decayed learning rates.
// It is a no-op in naive mode.
func (t *Trainer) RunHierPhase() {
	_ = t.RunHierPhaseFrom(1, nil)
}

// RunHierPhaseFrom runs phase ① starting at fromLevel (levels below it
// are assumed already trained, e.g. restored from a checkpoint),
// invoking afterLevel — when non-nil — after each completed level. An
// afterLevel error aborts the phase (it is how Build propagates fatal
// checkpoint errors), except errRetryUnit, which re-runs the level —
// the divergence sentinel's rollback path. No-op in naive mode.
func (t *Trainer) RunHierPhaseFrom(fromLevel int, afterLevel func(lev int) error) error {
	if t.hier == nil {
		return nil
	}
	h := t.hier.H
	maxLevel := h.MaxDepth()
	if fromLevel < 1 {
		fromLevel = 1
	}
	for lev := fromLevel; lev <= maxLevel; {
		nNodes := len(h.CoverAtLevel(lev))
		n := 150 * nNodes * nNodes
		if n > t.opt.HierSampleCap {
			n = t.opt.HierSampleCap
		}
		if n < 500 {
			n = 500
		}
		samples := sample.SubgraphLevel(h, lev, n, t.opt.PerSource, t.oracle, t.rng)
		poisonIfInjected(FailpointHierSamplesNaN, samples)
		rates := train.LevelRates(t.lr, lev, maxLevel)
		for e := 0; e < t.opt.Epochs; e++ {
			if t.adam != nil {
				t.samplesSkipped += int64(train.HierStepAdam(t.hier, t.adam, rates, samples, t.opt.P, t.scale))
			} else {
				t.samplesSkipped += int64(train.HierStep(t.hier, rates, samples, t.opt.P, t.scale))
			}
			t.samplesUsed += int64(len(samples))
		}
		if afterLevel != nil {
			switch err := afterLevel(lev); {
			case errors.Is(err, errRetryUnit):
				continue // rolled back: redo this level at the reduced rate
			case err != nil:
				return err
			}
		}
		lev++
	}
	return nil
}

// GenVertexSamples draws n phase-② samples using the configured
// strategy.
func (t *Trainer) GenVertexSamples(n int) []sample.Sample {
	var out []sample.Sample
	switch t.opt.VertexStrategy {
	case VertexRandom:
		out = sample.RandomPairs(t.g, n, t.opt.PerSource, t.oracle, t.rng)
	default:
		out = sample.LandmarkBased(t.g, t.landmarks, n, t.oracle, t.rng)
	}
	poisonIfInjected(FailpointVertexSamplesNaN, out)
	return out
}

// VertexStep applies one SGD pass over samples touching only the
// vertex-level embeddings (phases ② and ③). In naive mode it trains
// the flat matrix.
func (t *Trainer) VertexStep(samples []sample.Sample, lr float64) {
	var skipped int
	if t.hier != nil {
		rates := train.VertexOnlyRates(lr, t.hier.H.MaxDepth())
		if t.adam != nil {
			skipped = train.HierStepAdam(t.hier, t.adam, rates, samples, t.opt.P, t.scale)
		} else {
			skipped = train.HierStep(t.hier, rates, samples, t.opt.P, t.scale)
		}
	} else if t.adam != nil {
		skipped = train.FlatStepAdam(t.flat, t.adam, samples, lr, t.opt.P, t.scale)
	} else {
		skipped = train.FlatStep(t.flat, samples, lr, t.opt.P, t.scale)
	}
	t.samplesSkipped += int64(skipped)
	t.samplesUsed += int64(len(samples))
}

// FlatStepAllLevels applies one SGD pass over samples training every
// level at the base rate. Naive mode uses it as its whole training; it
// also backs ablations that bypass the level schedule.
func (t *Trainer) FlatStepAllLevels(samples []sample.Sample, lr float64) {
	var skipped int
	if t.hier != nil {
		maxLevel := t.hier.H.MaxDepth()
		rates := make([]float64, maxLevel+1)
		for l := 1; l <= maxLevel; l++ {
			rates[l] = lr
		}
		skipped = train.HierStep(t.hier, rates, samples, t.opt.P, t.scale)
	} else {
		skipped = train.FlatStep(t.flat, samples, lr, t.opt.P, t.scale)
	}
	t.samplesSkipped += int64(skipped)
	t.samplesUsed += int64(len(samples))
}

// RunVertexPhase executes phase ②: landmark-based (or random) samples
// training the vertex-level embeddings for the configured epochs.
func (t *Trainer) RunVertexPhase() {
	_ = t.RunVertexPhaseFrom(0, nil)
}

// RunVertexPhaseFrom runs phase ② starting at epoch fromEpoch (earlier
// epochs are assumed already trained, e.g. restored from a
// checkpoint), invoking afterEpoch — when non-nil — after each
// completed epoch. The per-epoch learning-rate decay keys off the
// absolute epoch number, so a resumed run continues the schedule
// rather than restarting it. An afterEpoch error aborts the phase,
// except errRetryUnit, which re-runs the epoch after a sentinel
// rollback.
func (t *Trainer) RunVertexPhaseFrom(fromEpoch int, afterEpoch func(epoch int) error) error {
	if fromEpoch >= t.opt.Epochs {
		return nil
	}
	n := int(t.opt.VertexSampleRatio * float64(t.g.NumVertices()))
	if n < 1000 {
		n = 1000
	}
	samples := t.GenVertexSamples(n)
	for e := fromEpoch; e < t.opt.Epochs; {
		lr := t.lr / (1 + 0.5*float64(e))
		t.VertexStep(samples, lr)
		if afterEpoch != nil {
			switch err := afterEpoch(e); {
			case errors.Is(err, errRetryUnit):
				continue // rolled back: redo this epoch at the reduced rate
			case err != nil:
				return err
			}
		}
		e++
	}
	return nil
}

// BucketErrors probes the current model's per-bucket relative errors
// on the fine-tuning grid.
func (t *Trainer) BucketErrors() []float64 {
	return t.gb.ProbeErrors(t.Estimate, t.opt.ProbesPerBucket, t.opt.PerSource, t.oracle, t.rng)
}

// RunFineTuneRound executes one phase-③ round: probe bucket errors,
// draw error-based samples (Local or Global), and train the vertex
// level at a decayed rate. round counts from 0.
func (t *Trainer) RunFineTuneRound(round int) {
	errs := t.BucketErrors()
	n := int(t.opt.FineTuneSampleRatio * float64(t.g.NumVertices()))
	if n < 500 {
		n = 500
	}
	samples := t.gb.ErrorBased(errs, t.opt.FineTuneMode, n, t.opt.PerSource, t.oracle, t.rng)
	if len(samples) == 0 {
		return
	}
	poisonIfInjected(FailpointFineTuneSamplesNaN, samples)
	lr := t.lr / (2 + float64(round))
	t.VertexStep(samples, lr)
}

// Finalize flattens the trained embedding into a query Model.
func (t *Trainer) Finalize() *Model {
	var mat *emb.Matrix
	if t.hier != nil {
		mat = t.hier.Flatten()
	} else {
		mat = t.flat.Clone()
	}
	return &Model{m: mat, p: t.opt.P, scale: t.scale, hier: t.hier}
}
