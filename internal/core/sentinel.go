package core

import (
	"bytes"
	"errors"
	"fmt"
	"math"

	"repro/internal/faultinject"
	"repro/internal/sample"
)

// Chaos-test hooks for the training path. The sample hooks poison a
// whole generated batch with NaN distances (exercising the skip
// counters in internal/train); the embedding hook flips one trained
// parameter to NaN (simulating the exploding-step corruption the
// sentinel exists to catch).
const (
	FailpointHierSamplesNaN     = "core/samples-hier-nan"
	FailpointVertexSamplesNaN   = "core/samples-vertex-nan"
	FailpointFineTuneSamplesNaN = "core/samples-finetune-nan"
	FailpointEmbeddingCorrupt   = "core/embedding-corrupt"
)

// poisonIfInjected replaces every sample distance in the batch with NaN
// when the named chaos failpoint fires.
func poisonIfInjected(name string, samples []sample.Sample) {
	if faultinject.Fires(name) {
		for i := range samples {
			samples[i].Dist = math.NaN()
		}
	}
}

// errRetryUnit is returned through the build callbacks to request that
// the just-completed training unit (hierarchy level, vertex epoch or
// fine-tune round) be re-run after a sentinel rollback.
var errRetryUnit = errors.New("core: retry training unit after rollback")

// sentinel is the divergence watchdog of Build. SGD over exact labels
// can fail silently — one non-finite sample or one exploding step
// corrupts the embedding and every later phase trains on garbage — so
// after each completed unit of work the sentinel (a) scans the live
// embedding for non-finite values and (b) compares the held-out
// validation error against the best seen. On either trigger it restores
// the last good state from an in-memory snapshot, halves the learning
// rate, and asks the build loop to retry the unit; after
// Options.MaxRecoveries rollbacks the build fails with a descriptive
// error instead of persisting a corrupt model.
//
// Snapshots use the RNECKPT1 checkpoint encoding (writeCheckpoint /
// readCheckpoint), so rollback restores exercise exactly the code path
// -resume uses, and a rolled-back build keeps composing with on-disk
// checkpointing: the checkpointer only ever runs after a healthy
// sentinel verdict, so checkpoints never capture a diverged state.
type sentinel struct {
	tr   *Trainer
	opt  Options
	st   *BuildStats
	best float64      // best validation MeanRel seen so far
	snap bytes.Buffer // last-good trainer state, checkpoint-encoded
}

// newSentinel snapshots the trainer's current (post-init or
// post-resume) state as the first rollback target.
func newSentinel(tr *Trainer, opt Options, st *BuildStats) (*sentinel, error) {
	s := &sentinel{tr: tr, opt: opt, st: st, best: math.Inf(1)}
	if err := s.capture(ckptPhaseNone, 0, 0); err != nil {
		return nil, err
	}
	return s, nil
}

// capture re-snapshots the trainer as the new last-good state.
func (s *sentinel) capture(phase, level, epoch int) error {
	s.snap.Reset()
	if err := s.tr.writeCheckpoint(&s.snap, phase, level, epoch); err != nil {
		return fmt.Errorf("core: sentinel snapshot: %w", err)
	}
	return nil
}

// check audits the trainer after the unit of work described by label
// completed, leaving training at the given checkpoint cursor. It
// returns the held-out validation error and nil when the state is
// healthy (and snapshots it), errRetryUnit when the unit must be
// re-run after a rollback, or a terminal error once the recovery
// budget is spent.
func (s *sentinel) check(label string, phase, level, epoch int) (float64, error) {
	if faultinject.Fires(FailpointEmbeddingCorrupt) {
		s.tr.ckptMatrix().Data()[0] = math.NaN()
	}
	for i, v := range s.tr.ckptMatrix().Data() {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0, s.rollback(label, fmt.Sprintf("non-finite embedding value at parameter %d", i))
		}
	}
	val := s.tr.Validate().MeanRel
	if math.IsNaN(val) || math.IsInf(val, 0) {
		return 0, s.rollback(label, fmt.Sprintf("non-finite validation error %v", val))
	}
	// Divergence spike: markedly worse than the best state seen. The
	// epsilon keeps near-zero validation errors on trivial graphs from
	// flagging numeric noise.
	if val > s.opt.DivergenceFactor*s.best+1e-9 {
		return 0, s.rollback(label, fmt.Sprintf(
			"validation error %.4g spiked past %g x best %.4g", val, s.opt.DivergenceFactor, s.best))
	}
	if val < s.best {
		s.best = val
	}
	return val, s.capture(phase, level, epoch)
}

// rollback restores the last good snapshot, halves the learning rate
// and spends one recovery, or fails the build once the budget is gone.
func (s *sentinel) rollback(label, reason string) error {
	if s.st.Recoveries >= s.opt.MaxRecoveries {
		return fmt.Errorf(
			"core: training diverged at %s (%s) with %d/%d recoveries spent; "+
				"best validation error %.4g at lr %.4g — lower Options.LR or raise Options.MaxRecoveries",
			label, reason, s.st.Recoveries, s.opt.MaxRecoveries, s.best, s.tr.LR())
	}
	if _, _, _, err := s.tr.readCheckpoint(bytes.NewReader(s.snap.Bytes())); err != nil {
		return fmt.Errorf("core: sentinel rollback at %s: %w", label, err)
	}
	s.tr.ScaleLR(0.5)
	s.tr.resetAdam()
	s.st.Recoveries++
	s.st.Rollbacks = append(s.st.Rollbacks, label+": "+reason)
	s.opt.Trace.Recovery(label, reason)
	s.opt.logger().Warn("sentinel rollback: restored last good state, lr halved",
		"unit", label, "reason", reason, "lr", s.tr.LR(),
		"recovery", s.st.Recoveries, "max_recoveries", s.opt.MaxRecoveries)
	return errRetryUnit
}
