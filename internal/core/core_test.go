package core

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/sample"
)

// fastOptions returns a small, quick configuration for tests.
func fastOptions(seed int64) Options {
	opt := DefaultOptions(seed)
	opt.Dim = 32
	opt.Epochs = 6
	opt.VertexSampleRatio = 60
	opt.FineTuneRounds = 4
	opt.HierSampleCap = 15000
	opt.ValidationPairs = 600
	opt.GridK = 8
	return opt
}

func testGraph(t *testing.T, rows int) *graph.Graph {
	t.Helper()
	g, err := gen.Grid(rows, rows, gen.DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuildConvergesHierarchical(t *testing.T) {
	g := testGraph(t, 16)
	m, st, err := Build(g, fastOptions(42))
	if err != nil {
		t.Fatal(err)
	}
	if st.Validation.MeanRel > 0.06 {
		t.Fatalf("hier RNE meanRel %.2f%% too high: %v", st.Validation.MeanRel*100, st.Validation)
	}
	if m.NumVertices() != g.NumVertices() || m.Dim() != 32 {
		t.Fatalf("model shape %dx%d", m.NumVertices(), m.Dim())
	}
	if m.Hier() == nil || m.Hierarchy() == nil {
		t.Fatal("hierarchical build should retain the hierarchy")
	}
	if st.SamplesUsed == 0 || st.Total <= 0 {
		t.Fatalf("stats not populated: %+v", st)
	}
}

func TestBuildNaiveMode(t *testing.T) {
	g := testGraph(t, 12)
	opt := fastOptions(1)
	opt.Hierarchical = false
	opt.ActiveFineTune = false
	opt.VertexStrategy = VertexRandom
	m, st, err := Build(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Naive flat training converges too, just worse/slower; only sanity
	// bound here (the Fig 11 bench quantifies the gap).
	if st.Validation.MeanRel > 0.30 {
		t.Fatalf("naive RNE meanRel %.2f%%: %v", st.Validation.MeanRel*100, st.Validation)
	}
	if m.Hier() != nil {
		t.Fatal("naive build should have no hierarchy")
	}
}

func TestHierBeatsNaiveAtEqualBudget(t *testing.T) {
	// The Figure 11 headline: at the same sample budget the hierarchical
	// model reaches a lower validation error than the flat one.
	g := testGraph(t, 14)
	optH := fastOptions(7)
	optN := optH
	optN.Hierarchical = false
	optN.VertexStrategy = VertexRandom
	optN.ActiveFineTune = optH.ActiveFineTune

	_, stH, err := Build(g, optH)
	if err != nil {
		t.Fatal(err)
	}
	_, stN, err := Build(g, optN)
	if err != nil {
		t.Fatal(err)
	}
	if stH.Validation.MeanRel >= stN.Validation.MeanRel {
		t.Fatalf("hier %.3f%% not better than naive %.3f%%",
			stH.Validation.MeanRel*100, stN.Validation.MeanRel*100)
	}
}

func TestEstimateSymmetricAndReflexive(t *testing.T) {
	g := testGraph(t, 10)
	m, _, err := Build(g, fastOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	for v := int32(0); v < 20; v++ {
		if d := m.Estimate(v, v); d != 0 {
			t.Fatalf("Estimate(v,v) = %v", d)
		}
	}
	for i := 0; i < 50; i++ {
		s, u := int32(i), int32((i*37+11)%g.NumVertices())
		if a, b := m.Estimate(s, u), m.Estimate(u, s); a != b {
			t.Fatalf("asymmetric estimate %v vs %v", a, b)
		}
	}
}

func TestEstimateTriangleInequality(t *testing.T) {
	// L1 in the embedding space guarantees the triangle inequality on
	// estimates (a property the Section VI index exploits).
	g := testGraph(t, 10)
	m, _, err := Build(g, fastOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	n := int32(g.NumVertices())
	for i := int32(0); i < 40; i++ {
		a := i % n
		b := (i*31 + 7) % n
		c := (i*57 + 13) % n
		if m.Estimate(a, b) > m.Estimate(a, c)+m.Estimate(c, b)+1e-9 {
			t.Fatalf("triangle inequality violated at (%d,%d,%d)", a, b, c)
		}
	}
}

func TestEstimateL1MatchesEstimate(t *testing.T) {
	g := testGraph(t, 10)
	m, _, err := Build(g, fastOptions(5))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		s, u := int32(i), int32((i*13+5)%g.NumVertices())
		if a, b := m.Estimate(s, u), m.EstimateL1(s, u); math.Abs(a-b) > 1e-9 {
			t.Fatalf("EstimateL1 %v != Estimate %v", b, a)
		}
	}
}

func TestModelSaveLoadRoundTrip(t *testing.T) {
	g := testGraph(t, 10)
	m, _, err := Build(g, fastOptions(6))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Dim() != m.Dim() || m2.NumVertices() != m.NumVertices() ||
		m2.P() != m.P() || m2.Scale() != m.Scale() {
		t.Fatal("metadata changed on round trip")
	}
	for i := 0; i < 50; i++ {
		s, u := int32(i%m.NumVertices()), int32((i*7+3)%m.NumVertices())
		if a, b := m.Estimate(s, u), m2.Estimate(s, u); a != b {
			t.Fatalf("estimates differ after round trip: %v vs %v", a, b)
		}
	}
	if m2.Hier() != nil {
		t.Fatal("loaded model should not claim a hierarchy")
	}
	if _, err := Load(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("garbage model accepted")
	}
}

func TestModelIndexBytes(t *testing.T) {
	g := testGraph(t, 10)
	m, _, err := Build(g, fastOptions(8))
	if err != nil {
		t.Fatal(err)
	}
	want := int64(m.NumVertices())*int64(m.Dim())*8 + 32
	if m.IndexBytes() != want {
		t.Fatalf("IndexBytes = %d, want %d", m.IndexBytes(), want)
	}
}

func TestOptionsValidation(t *testing.T) {
	g := testGraph(t, 8)
	bad := []Options{
		{Dim: -1},
		{P: -2},
		{LR: -0.1},
		{Epochs: -3},
		{VertexStrategy: "bogus"},
	}
	for i, opt := range bad {
		if _, err := NewTrainer(g, opt); err == nil {
			t.Errorf("bad options %d accepted", i)
		}
	}
	// Tiny graph rejected.
	tiny := graph.NewBuilder(1, 0)
	tiny.AddVertex(0, 0)
	if _, err := NewTrainer(tiny.Build(), DefaultOptions(1)); err == nil {
		t.Error("1-vertex graph accepted")
	}
}

func TestBuildDeterministic(t *testing.T) {
	g := testGraph(t, 10)
	opt := fastOptions(11)
	m1, _, err := Build(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	m2, _, err := Build(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m1.Matrix().Data() {
		if m1.Matrix().Data()[i] != m2.Matrix().Data()[i] {
			t.Fatal("same seed produced different models")
		}
	}
}

func TestTrainerPhasesImproveValidation(t *testing.T) {
	g := testGraph(t, 14)
	tr, err := NewTrainer(g, fastOptions(13))
	if err != nil {
		t.Fatal(err)
	}
	e0 := tr.Validate().MeanRel
	tr.RunHierPhase()
	e1 := tr.Validate().MeanRel
	tr.RunVertexPhase()
	e2 := tr.Validate().MeanRel
	if !(e1 < e0) {
		t.Fatalf("hier phase did not improve: %.3f -> %.3f", e0, e1)
	}
	if !(e2 < e1) {
		t.Fatalf("vertex phase did not improve: %.3f -> %.3f", e1, e2)
	}
	for k := 0; k < 3; k++ {
		tr.RunFineTuneRound(k)
	}
	e3 := tr.Validate().MeanRel
	if e3 > e2*1.25 {
		t.Fatalf("fine-tune regressed badly: %.4f -> %.4f", e2, e3)
	}
}

func TestFineTuneModesRun(t *testing.T) {
	g := testGraph(t, 10)
	for _, mode := range []sample.Mode{sample.Local, sample.Global} {
		opt := fastOptions(17)
		opt.FineTuneMode = mode
		opt.FineTuneRounds = 2
		if _, _, err := Build(g, opt); err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
	}
}

func TestValidationAgainstFreshPairs(t *testing.T) {
	// The held-out error must generalize: error on a fresh random pair
	// set should be in the same ballpark as the trainer's validation.
	g := testGraph(t, 14)
	tr, err := NewTrainer(g, fastOptions(19))
	if err != nil {
		t.Fatal(err)
	}
	tr.RunHierPhase()
	tr.RunVertexPhase()
	valErr := tr.Validate().MeanRel

	m := tr.Finalize()
	fresh := sample.RandomPairs(g, 500, 8, newOracle(g), newRng(99))
	pairs := make([]metrics.Pair, len(fresh))
	for i, s := range fresh {
		pairs[i] = metrics.Pair{S: s.S, T: s.T, Dist: s.Dist}
	}
	freshErr := metrics.Evaluate(metrics.EstimatorFunc(m.Estimate), pairs).MeanRel
	if freshErr > 3*valErr+0.02 {
		t.Fatalf("fresh error %.3f%% far above validation %.3f%%", freshErr*100, valErr*100)
	}
}
