// Package core assembles the paper's contribution: the full RNE build
// pipeline of Algorithm 1 (partition hierarchy → hierarchy embedding →
// vertex embedding → active fine-tuning → flatten) and the resulting
// query model whose L1 lookups approximate shortest-path distances.
package core

import (
	"fmt"
	"log/slog"

	"repro/internal/sample"
	"repro/internal/telemetry"
)

// VertexStrategy selects how phase ② training pairs are drawn.
type VertexStrategy string

const (
	// VertexLandmark is the paper's landmark-based selection (best).
	VertexLandmark VertexStrategy = "landmark"
	// VertexRandom draws uniform pairs (the Figure 12 baseline).
	VertexRandom VertexStrategy = "random"
)

// Options configures an RNE build. Zero values are replaced by the
// defaults documented on each field; DefaultOptions returns them all.
type Options struct {
	// Dim is the embedding dimension d (default 64; the paper uses 64
	// for BJ and 128 for FLA/US-W).
	Dim int
	// P is the metric order of the representation (default 1, the
	// paper's recommendation; other values back the Figure 9 ablation).
	P float64
	// Hierarchical selects RNE-Hier (true, default) or RNE-Naive.
	Hierarchical bool
	// ActiveFineTune enables phase ③ (default true).
	ActiveFineTune bool

	// Fanout and Leaf are the partition-hierarchy κ and δ (defaults 4, 64).
	Fanout, Leaf int

	// LR is the base learning rate α0 (default 0.25). Distances are
	// normalized by the graph diameter and the rate by the embedding
	// dimension during training, making LR graph- and d-independent.
	LR float64
	// Optimizer selects the SGD flavor: "sgd" (default, the paper's
	// Function Training) or "adam" (per-parameter adaptive steps,
	// closer to the paper's TensorFlow setup).
	Optimizer string
	// Epochs is the number of SGD passes per phase (default 10).
	Epochs int

	// HierSampleCap bounds the samples per hierarchy level in phase ①
	// (default 40000; small levels use 150·|P_l|² if lower).
	HierSampleCap int
	// VertexSampleRatio sets phase ② volume as a multiple of |V|
	// (default 150).
	VertexSampleRatio float64
	// VertexStrategy picks phase ② sample selection (default landmark).
	VertexStrategy VertexStrategy
	// Landmarks is |U| for landmark-based selection (default 100, the
	// paper's LM10² sweet spot).
	Landmarks int
	// LandmarkStrategy picks how landmarks are chosen: "farthest"
	// (default, the paper's recommendation), "random" or "degree".
	LandmarkStrategy string

	// FineTuneRounds is the number of phase ③ rounds (default 12).
	FineTuneRounds int
	// FineTuneSampleRatio sets per-round volume as a multiple of |V|
	// (default 5).
	FineTuneSampleRatio float64
	// FineTuneMode picks Local or Global bucket selection (default Global).
	FineTuneMode sample.Mode
	// GridK is the fine-tuning grid resolution K (default 16, giving
	// R = 2K-1 distance buckets).
	GridK int
	// ProbesPerBucket sets the per-bucket validation probes used to
	// estimate bucket errors each round (default 30).
	ProbesPerBucket int

	// PerSource groups this many samples per Dijkstra source during
	// labeling (default 64).
	PerSource int
	// OracleCache bounds the number of cached SSSP trees (default
	// max(Landmarks+8, 128)).
	OracleCache int
	// ValidationPairs sizes the held-out exact validation set
	// (default 2000).
	ValidationPairs int

	// CheckpointPath, when non-empty, makes Build write an atomic,
	// checksummed training checkpoint there (embedding state plus a
	// phase/level/epoch cursor) as training progresses, so an
	// interrupted build can resume instead of restarting. The file is
	// left in place when Build finishes; callers owning the lifecycle
	// (e.g. rnebuild) remove it after persisting the final model.
	CheckpointPath string
	// CheckpointEvery is the number of completed training epochs
	// between checkpoint writes (default 1: every completed hierarchy
	// level, vertex epoch and fine-tune round).
	CheckpointEvery int
	// Resume restores training state from CheckpointPath when that
	// file exists (a missing file starts a fresh build). The
	// checkpoint must match the graph and options; resumed builds are
	// statistically equivalent to uninterrupted ones but not
	// bit-identical (the sampling RNG restarts at the resume point).
	// A checkpoint that is corrupt or belongs to a different build is
	// discarded with a warning and training restarts from scratch,
	// unless StrictResume is set.
	Resume bool
	// StrictResume makes an unusable checkpoint (corrupt, truncated,
	// or taken under different options) a fatal error instead of a
	// warn-and-restart.
	StrictResume bool
	// StrictCheckpoints makes a failed checkpoint write abort the
	// build. By default a failed write only costs resumability: it is
	// counted in BuildStats.CheckpointFailures, logged, and retried at
	// the next checkpoint tick, while training continues.
	StrictCheckpoints bool

	// MaxRecoveries bounds how many times the divergence sentinel may
	// roll training back to the last good snapshot (halving the
	// learning rate each time) before the build fails (default 3;
	// negative makes any divergence immediately fatal).
	MaxRecoveries int
	// DivergenceFactor is the sentinel's spike threshold: a validation
	// error worse than DivergenceFactor times the best seen so far
	// triggers a rollback (default 4; must be > 1 when set).
	DivergenceFactor float64

	// Logger, when non-nil, receives structured build-progress
	// warnings: sentinel rollbacks, tolerated checkpoint-write
	// failures, discarded resume checkpoints. The build itself never
	// logs on the happy path (the Trace does, at phase granularity).
	Logger *slog.Logger

	// Trace, when non-nil, records build telemetry: a span per build
	// phase, the per-unit loss/learning-rate/recovery series, and
	// checkpoint-write accounting — the data behind rnebuild's
	// build-report.json and the rne_build_* metrics.
	Trace *telemetry.Tracer

	// Seed makes the build deterministic.
	Seed int64
}

// logger returns the configured logger, or a discarding one.
func (o Options) logger() *slog.Logger { return telemetry.OrNop(o.Logger) }

// DefaultOptions returns the paper-style defaults for dimension d.
func DefaultOptions(seed int64) Options {
	return Options{
		Dim:                 64,
		P:                   1,
		Hierarchical:        true,
		ActiveFineTune:      true,
		Fanout:              4,
		Leaf:                64,
		LR:                  0.25,
		Optimizer:           "sgd",
		Epochs:              10,
		HierSampleCap:       40000,
		VertexSampleRatio:   150,
		VertexStrategy:      VertexLandmark,
		Landmarks:           100,
		LandmarkStrategy:    "farthest",
		FineTuneRounds:      12,
		FineTuneSampleRatio: 5,
		FineTuneMode:        sample.Global,
		GridK:               16,
		ProbesPerBucket:     30,
		PerSource:           64,
		ValidationPairs:     2000,
		MaxRecoveries:       3,
		DivergenceFactor:    4,
		Seed:                seed,
	}
}

// withDefaults fills zero fields and validates the result.
func (o Options) withDefaults() (Options, error) {
	def := DefaultOptions(o.Seed)
	if o.Dim == 0 {
		o.Dim = def.Dim
	}
	if o.P == 0 {
		o.P = def.P
	}
	if o.Fanout == 0 {
		o.Fanout = def.Fanout
	}
	if o.Leaf == 0 {
		o.Leaf = def.Leaf
	}
	if o.LR == 0 {
		o.LR = def.LR
	}
	if o.Optimizer == "" {
		o.Optimizer = def.Optimizer
	}
	if o.Epochs == 0 {
		o.Epochs = def.Epochs
	}
	if o.HierSampleCap == 0 {
		o.HierSampleCap = def.HierSampleCap
	}
	if o.VertexSampleRatio == 0 {
		o.VertexSampleRatio = def.VertexSampleRatio
	}
	if o.VertexStrategy == "" {
		o.VertexStrategy = def.VertexStrategy
	}
	if o.Landmarks == 0 {
		o.Landmarks = def.Landmarks
	}
	if o.LandmarkStrategy == "" {
		o.LandmarkStrategy = def.LandmarkStrategy
	}
	if o.FineTuneRounds == 0 {
		o.FineTuneRounds = def.FineTuneRounds
	}
	if o.FineTuneSampleRatio == 0 {
		o.FineTuneSampleRatio = def.FineTuneSampleRatio
	}
	if o.GridK == 0 {
		o.GridK = def.GridK
	}
	if o.ProbesPerBucket == 0 {
		o.ProbesPerBucket = def.ProbesPerBucket
	}
	if o.PerSource == 0 {
		o.PerSource = def.PerSource
	}
	if o.OracleCache == 0 {
		o.OracleCache = o.Landmarks + 8
		if o.OracleCache < 128 {
			o.OracleCache = 128
		}
	}
	if o.ValidationPairs == 0 {
		o.ValidationPairs = def.ValidationPairs
	}
	if o.CheckpointPath != "" && o.CheckpointEvery == 0 {
		o.CheckpointEvery = 1
	}
	if o.MaxRecoveries == 0 {
		o.MaxRecoveries = def.MaxRecoveries
	}
	if o.MaxRecoveries < 0 {
		o.MaxRecoveries = 0 // any divergence is fatal
	}
	if o.DivergenceFactor == 0 {
		o.DivergenceFactor = def.DivergenceFactor
	}
	switch {
	case o.CheckpointEvery < 0:
		return o, fmt.Errorf("core: CheckpointEvery must be >= 0, got %d", o.CheckpointEvery)
	case o.Resume && o.CheckpointPath == "":
		return o, fmt.Errorf("core: Resume requires CheckpointPath")
	case o.DivergenceFactor <= 1:
		return o, fmt.Errorf("core: DivergenceFactor must be > 1, got %v", o.DivergenceFactor)
	case o.Dim < 1:
		return o, fmt.Errorf("core: Dim must be >= 1, got %d", o.Dim)
	case o.P <= 0:
		return o, fmt.Errorf("core: P must be positive, got %v", o.P)
	case o.LR <= 0:
		return o, fmt.Errorf("core: LR must be positive, got %v", o.LR)
	case o.Epochs < 1:
		return o, fmt.Errorf("core: Epochs must be >= 1, got %d", o.Epochs)
	case o.VertexStrategy != VertexLandmark && o.VertexStrategy != VertexRandom:
		return o, fmt.Errorf("core: unknown VertexStrategy %q", o.VertexStrategy)
	case o.LandmarkStrategy != "farthest" && o.LandmarkStrategy != "random" && o.LandmarkStrategy != "degree":
		return o, fmt.Errorf("core: unknown LandmarkStrategy %q", o.LandmarkStrategy)
	case o.Optimizer != "sgd" && o.Optimizer != "adam":
		return o, fmt.Errorf("core: unknown Optimizer %q", o.Optimizer)
	}
	return o, nil
}
