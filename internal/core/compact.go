package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"repro/internal/emb"
	"repro/internal/fsx"
)

// CompactModel is a float32 deployment variant of Model: half the index
// size with a quantization error (~1e-7 relative) far below the
// training error. An extension over the paper, whose index stores
// float64; the compact-vs-full trade-off is measured by the
// ablation-compact experiment.
type CompactModel struct {
	m     *emb.Matrix32
	scale float64
}

// Compact converts a trained L1 model to float32 storage. Models with
// p != 1 are rejected: the compact query path only implements the
// paper's production metric.
func (m *Model) Compact() (*CompactModel, error) {
	if m.p != 1 {
		return nil, fmt.Errorf("core: compact models support p=1 only, model has p=%v", m.p)
	}
	return &CompactModel{m: m.m.Compact(), scale: m.scale}, nil
}

// Estimate approximates the shortest-path distance between s and t.
func (c *CompactModel) Estimate(s, t int32) float64 {
	return c.m.L1(s, t) * c.scale
}

// NumVertices returns |V|.
func (c *CompactModel) NumVertices() int { return c.m.Rows() }

// Dim returns the embedding dimension.
func (c *CompactModel) Dim() int { return c.m.Dim() }

// Scale returns the distance normalizer.
func (c *CompactModel) Scale() float64 { return c.scale }

// IndexBytes reports the serialized size (half the float64 model's).
func (c *CompactModel) IndexBytes() int64 {
	return int64(c.m.Rows())*int64(c.m.Dim())*4 + 32
}

const compactMagic = "RNECOMPACT1\n"

// Save serializes the compact model.
func (c *CompactModel) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(compactMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, c.scale); err != nil {
		return err
	}
	if _, err := c.m.WriteTo(bw); err != nil {
		return err
	}
	return bw.Flush()
}

// LoadCompact deserializes a compact model written by Save.
func LoadCompact(r io.Reader) (*CompactModel, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(compactMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, err
	}
	if string(magic) != compactMagic {
		return nil, fmt.Errorf("core: bad compact-model magic %q", magic)
	}
	var scale float64
	if err := binary.Read(br, binary.LittleEndian, &scale); err != nil {
		return nil, err
	}
	if scale <= 0 {
		return nil, fmt.Errorf("core: implausible compact scale %v", scale)
	}
	mat, err := emb.ReadMatrix32(br)
	if err != nil {
		return nil, err
	}
	return &CompactModel{m: mat, scale: scale}, nil
}

// SaveFile writes the compact model to the named file atomically
// (temp file + fsync + rename; see fsx.WriteAtomic).
func (c *CompactModel) SaveFile(path string) error {
	return fsx.WriteAtomic(path, c.Save)
}

// LoadCompactFile reads a compact model from the named file.
func LoadCompactFile(path string) (*CompactModel, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadCompact(f)
}
