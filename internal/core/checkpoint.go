package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"log/slog"
	"os"
	"time"

	"repro/internal/emb"
	"repro/internal/faultinject"
	"repro/internal/fsx"
	"repro/internal/telemetry"
)

// Chaos-test hooks for the checkpoint path.
const (
	// FailpointCheckpointSave makes SaveCheckpoint fail before touching
	// the filesystem.
	FailpointCheckpointSave = "core/checkpoint-save"
	// FailpointCheckpointLoad makes RestoreCheckpoint fail before
	// reading the file.
	FailpointCheckpointLoad = "core/checkpoint-load"
)

// Checkpointing makes the multi-hour hierarchical builds the paper
// reports on NW/E-US-scale graphs restartable: Build periodically
// writes the raw training state (the local/flat embedding matrix plus
// a phase/level/epoch cursor) to an atomic, checksummed file, and a
// resumed Build restarts from the last completed unit of work instead
// of from scratch.
//
// Granularity: phase ① checkpoints after each completed hierarchy
// level, phase ② after each vertex epoch, phase ③ after each
// fine-tune round. Resume re-derives everything deterministic from
// (graph, options) — hierarchy, landmarks, grid, validation set — and
// only the embedding state and progress cursor come from the file, so
// a checkpoint is far smaller than a model and independent of the
// sampling RNG. A resumed build is statistically equivalent to, but
// not bit-identical with, an uninterrupted one (the RNG stream
// restarts at the resume point).

// Build phase cursor values stored in checkpoints.
const (
	ckptPhaseNone     = 0 // nothing completed yet
	ckptPhaseHier     = 1 // Level = last completed hierarchy level
	ckptPhaseVertex   = 2 // Epoch = completed vertex-phase epochs
	ckptPhaseFineTune = 3 // Epoch = completed fine-tune rounds
)

const ckptMagic = "RNECKPT1\n"

// ckptMeta is the fixed-size header section of a checkpoint payload.
type ckptMeta struct {
	NumVertices  int64
	NumNodes     int64 // hierarchy nodes; 0 in naive mode
	Dim          int64
	Hierarchical int64 // 1 or 0
	Seed         int64
	SamplesUsed  int64
	Phase        int64
	Level        int64
	Epoch        int64
	Scale        float64
}

// ckptMatrix returns the matrix holding the live training state.
func (t *Trainer) ckptMatrix() *emb.Matrix {
	if t.hier != nil {
		return t.hier.Local
	}
	return t.flat
}

func (t *Trainer) ckptMeta(phase, level, epoch int) ckptMeta {
	meta := ckptMeta{
		NumVertices: int64(t.g.NumVertices()),
		Dim:         int64(t.opt.Dim),
		Seed:        t.opt.Seed,
		SamplesUsed: t.samplesUsed,
		Phase:       int64(phase),
		Level:       int64(level),
		Epoch:       int64(epoch),
		Scale:       t.scale,
	}
	if t.hier != nil {
		meta.Hierarchical = 1
		meta.NumNodes = int64(t.hier.H.NumNodes())
	}
	return meta
}

// writeCheckpoint streams the full checkpoint encoding — magic, payload
// length, meta + embedding matrix payload, CRC trailer — to w. It is
// shared by on-disk checkpoints and the sentinel's in-memory last-good
// snapshots, so rollback restores exercise the same codec as -resume.
func (t *Trainer) writeCheckpoint(w io.Writer, phase, level, epoch int) error {
	meta := t.ckptMeta(phase, level, epoch)
	mat := t.ckptMatrix()
	plen := int64(binary.Size(meta)) + emb.MatrixFileSize(mat.Rows(), mat.Dim())
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(ckptMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, plen); err != nil {
		return err
	}
	cw := fsx.NewCRCWriter(bw)
	if err := binary.Write(cw, binary.LittleEndian, meta); err != nil {
		return err
	}
	if _, err := mat.WriteTo(cw); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, cw.Sum32()); err != nil {
		return err
	}
	return bw.Flush()
}

// SaveCheckpoint atomically writes the trainer's current embedding
// state and progress cursor to path, in the same length+CRC framed
// format as model files (magic RNECKPT1).
func (t *Trainer) SaveCheckpoint(path string, phase, level, epoch int) error {
	if err := faultinject.Check(FailpointCheckpointSave); err != nil {
		return err
	}
	return fsx.WriteAtomic(path, func(w io.Writer) error {
		return t.writeCheckpoint(w, phase, level, epoch)
	})
}

// RestoreCheckpoint loads a checkpoint written by SaveCheckpoint into
// the trainer, returning the progress cursor. The checkpoint must
// match the trainer's graph and options (vertex count, hierarchy
// shape, dimension, seed and distance scale are all verified), and the
// file's length/checksum framing is validated before any state is
// adopted.
func (t *Trainer) RestoreCheckpoint(path string) (phase, level, epoch int, err error) {
	if err := faultinject.Check(FailpointCheckpointLoad); err != nil {
		return 0, 0, 0, err
	}
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, 0, err
	}
	defer f.Close()
	return t.readCheckpoint(f)
}

// readCheckpoint decodes and adopts a checkpoint stream produced by
// writeCheckpoint, validating framing and build-configuration match
// before any trainer state is touched.
func (t *Trainer) readCheckpoint(r io.Reader) (phase, level, epoch int, err error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(ckptMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return 0, 0, 0, fmt.Errorf("core: reading checkpoint magic: %w", err)
	}
	if string(magic) != ckptMagic {
		return 0, 0, 0, fmt.Errorf("core: bad checkpoint magic %q", magic)
	}
	var plen int64
	if err := binary.Read(br, binary.LittleEndian, &plen); err != nil {
		return 0, 0, 0, fmt.Errorf("core: reading checkpoint payload length: %w", err)
	}
	var meta ckptMeta
	if min := int64(binary.Size(meta)) + emb.MatrixFileSize(0, 1); plen < min {
		return 0, 0, 0, fmt.Errorf("core: implausible checkpoint payload length %d", plen)
	}
	cr := fsx.NewCRCReader(io.LimitReader(br, plen))
	if err := binary.Read(cr, binary.LittleEndian, &meta); err != nil {
		return 0, 0, 0, fmt.Errorf("core: reading checkpoint header: %w", err)
	}
	mat, err := emb.ReadMatrix(cr)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("core: reading checkpoint matrix: %w", err)
	}
	var wantCRC uint32
	if err := binary.Read(br, binary.LittleEndian, &wantCRC); err != nil {
		return 0, 0, 0, fmt.Errorf("core: reading checkpoint checksum trailer: %w", err)
	}
	if err := fsx.VerifyTrailer(cr, plen, wantCRC, "core: checkpoint"); err != nil {
		return 0, 0, 0, err
	}

	// Integrity established; now verify the checkpoint belongs to this
	// exact build configuration.
	want := t.ckptMeta(0, 0, 0)
	switch {
	case meta.NumVertices != want.NumVertices:
		err = fmt.Errorf("graph has %d vertices, checkpoint was taken over %d", want.NumVertices, meta.NumVertices)
	case meta.Hierarchical != want.Hierarchical:
		err = fmt.Errorf("hierarchical mode %d does not match checkpoint %d", want.Hierarchical, meta.Hierarchical)
	case meta.NumNodes != want.NumNodes:
		err = fmt.Errorf("hierarchy has %d nodes, checkpoint was taken over %d", want.NumNodes, meta.NumNodes)
	case meta.Dim != want.Dim:
		err = fmt.Errorf("dimension %d does not match checkpoint %d", want.Dim, meta.Dim)
	case meta.Seed != want.Seed:
		err = fmt.Errorf("seed %d does not match checkpoint %d", want.Seed, meta.Seed)
	case meta.Scale != want.Scale:
		err = fmt.Errorf("distance scale %v does not match checkpoint %v (different graph?)", want.Scale, meta.Scale)
	case meta.Phase < ckptPhaseNone || meta.Phase > ckptPhaseFineTune:
		err = fmt.Errorf("invalid phase cursor %d", meta.Phase)
	case meta.SamplesUsed < 0:
		err = fmt.Errorf("invalid sample counter %d", meta.SamplesUsed)
	}
	if err != nil {
		return 0, 0, 0, fmt.Errorf("core: checkpoint does not match this build: %w", err)
	}
	dst := t.ckptMatrix()
	if mat.Rows() != dst.Rows() || mat.Dim() != dst.Dim() {
		return 0, 0, 0, fmt.Errorf("core: checkpoint matrix is %dx%d, want %dx%d",
			mat.Rows(), mat.Dim(), dst.Rows(), dst.Dim())
	}
	copy(dst.Data(), mat.Data())
	t.samplesUsed = meta.SamplesUsed
	return int(meta.Phase), int(meta.Level), int(meta.Epoch), nil
}

// checkpointer throttles checkpoint writes to every CheckpointEvery
// completed epochs across phases. A nil path disables it.
//
// Checkpoints exist only to make builds resumable, so by default a
// failed write must not kill the hours of training it was protecting:
// the failure is counted, logged, and the write retried at the next
// tick (the previous on-disk checkpoint, if any, stays valid because
// writes are atomic). strict restores fail-fast behavior.
type checkpointer struct {
	path   string
	every  int
	since  int
	strict bool
	logger *slog.Logger
	trace  *telemetry.Tracer
	stats  *BuildStats
}

// tick records that epochs more training epochs completed, leaving the
// trainer at the given cursor, and checkpoints if the budget is due.
func (c *checkpointer) tick(tr *Trainer, epochs, phase, level, epoch int) error {
	if c.path == "" {
		return nil
	}
	c.since += epochs
	if c.since < c.every {
		return nil
	}
	t0 := time.Now()
	err := tr.SaveCheckpoint(c.path, phase, level, epoch)
	c.trace.CheckpointWrite(time.Since(t0), err == nil)
	if err != nil {
		if c.strict {
			return fmt.Errorf("core: writing checkpoint: %w", err)
		}
		c.stats.CheckpointFailures++
		telemetry.OrNop(c.logger).Warn("checkpoint write failed; build continues, resumability degraded",
			"path", c.path, "error", err)
		// Leave `since` accumulated so the very next tick retries.
		return nil
	}
	c.since = 0
	return nil
}
