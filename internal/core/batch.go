package core

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/vecmath"
)

// EstimateBatch fills out[i] with the estimated distance of the pair
// (ss[i], ts[i]) using up to workers goroutines (0 = GOMAXPROCS).
// Model queries are read-only, so batching is embarrassingly parallel;
// this is the serving shape of the paper's Uber motivation — 10M pair
// estimates per second across requests.
func (m *Model) EstimateBatch(ss, ts []int32, out []float64, workers int) error {
	if len(ss) != len(ts) || len(ss) != len(out) {
		return fmt.Errorf("core: batch slices must share a length, got %d/%d/%d",
			len(ss), len(ts), len(out))
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(ss) {
		workers = len(ss)
	}
	if workers <= 1 {
		for i := range ss {
			out[i] = m.Estimate(ss[i], ts[i])
		}
		return nil
	}
	var wg sync.WaitGroup
	chunk := (len(ss) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(ss) {
			hi = len(ss)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				out[i] = vecmath.Lp(m.m.Row(ss[i]), m.m.Row(ts[i]), m.p) * m.scale
			}
		}(lo, hi)
	}
	wg.Wait()
	return nil
}
