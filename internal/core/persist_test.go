package core

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/emb"
)

// tinyModel builds a small model directly (no training) so persistence
// tests are fast and every byte of the file is exercised.
func tinyModel(t *testing.T) *Model {
	t.Helper()
	mat := emb.NewMatrix(5, 3)
	mat.RandomInit(newRng(7), 0.5)
	return &Model{m: mat, p: 1, scale: 123.5}
}

func saveBytes(t *testing.T, m *Model) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func modelsEqual(t *testing.T, a, b *Model) {
	t.Helper()
	if a.NumVertices() != b.NumVertices() || a.Dim() != b.Dim() ||
		a.P() != b.P() || a.Scale() != b.Scale() {
		t.Fatalf("shape mismatch: %dx%d p=%v scale=%v vs %dx%d p=%v scale=%v",
			a.NumVertices(), a.Dim(), a.P(), a.Scale(),
			b.NumVertices(), b.Dim(), b.P(), b.Scale())
	}
	for s := int32(0); s < int32(a.NumVertices()); s++ {
		for u := int32(0); u < int32(a.NumVertices()); u++ {
			if da, db := a.Estimate(s, u), b.Estimate(s, u); math.Abs(da-db) > 0 {
				t.Fatalf("estimate(%d,%d): %v vs %v", s, u, da, db)
			}
		}
	}
}

func TestModelSaveLoadV3RoundTrip(t *testing.T) {
	m := tinyModel(t)
	raw := saveBytes(t, m)
	if !bytes.HasPrefix(raw, []byte("RNEMODEL3\n")) {
		t.Fatalf("saved file does not start with the v3 magic: %q", raw[:12])
	}
	got, err := Load(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	modelsEqual(t, m, got)
}

// saveLegacyV2 reproduces the pre-integrity RNEMODEL2 layout byte for
// byte, guarding backward compatibility of Load.
func saveLegacyV2(t *testing.T, m *Model) []byte {
	t.Helper()
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	if _, err := bw.WriteString("RNEMODEL2\n"); err != nil {
		t.Fatal(err)
	}
	if err := binary.Write(bw, binary.LittleEndian, []float64{m.P(), m.Scale()}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Matrix().WriteTo(bw); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestModelLoadAcceptsLegacyV2(t *testing.T) {
	m := tinyModel(t)
	got, err := Load(bytes.NewReader(saveLegacyV2(t, m)))
	if err != nil {
		t.Fatalf("legacy model rejected: %v", err)
	}
	modelsEqual(t, m, got)
}

// Truncation at every possible prefix length — including every section
// boundary (magic, length header, payload sections, checksum trailer)
// — must yield an error, never a model.
func TestModelLoadRejectsAllTruncations(t *testing.T) {
	raw := saveBytes(t, tinyModel(t))
	for cut := 0; cut < len(raw); cut++ {
		if m, err := Load(bytes.NewReader(raw[:cut])); err == nil || m != nil {
			t.Fatalf("truncation at byte %d/%d loaded successfully", cut, len(raw))
		}
	}
}

// A single flipped bit anywhere in the file — magic, header, payload
// or trailer — must be rejected.
func TestModelLoadRejectsAllBitFlips(t *testing.T) {
	raw := saveBytes(t, tinyModel(t))
	for i := range raw {
		mut := append([]byte(nil), raw...)
		mut[i] ^= 0x01
		if m, err := Load(bytes.NewReader(mut)); err == nil || m != nil {
			t.Fatalf("bit flip at byte %d/%d loaded successfully", i, len(raw))
		}
	}
}

func TestModelLoadRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":       {},
		"wrong magic": []byte("NOTAMODEL!\x00\x00\x00\x00"),
		"magic only":  []byte("RNEMODEL3\n"),
		"absurd length": append([]byte("RNEMODEL3\n"),
			0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f),
	}
	for name, raw := range cases {
		if m, err := Load(bytes.NewReader(raw)); err == nil || m != nil {
			t.Fatalf("%s: loaded successfully", name)
		} else if err.Error() == "" {
			t.Fatalf("%s: empty error", name)
		}
	}
}

func TestModelLoadErrorsAreDescriptive(t *testing.T) {
	raw := saveBytes(t, tinyModel(t))
	// Flip a matrix payload byte (well inside the data section).
	mut := append([]byte(nil), raw...)
	mut[len(mut)-12] ^= 0x01
	_, err := Load(bytes.NewReader(mut))
	if err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("payload corruption error not descriptive: %v", err)
	}
}

func TestModelSaveFileAtomicRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.rne")
	m := tinyModel(t)
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	// Overwrite in place (the swap path of a rebuild) and reload.
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	modelsEqual(t, m, got)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp files leaked: %d entries in %s", len(entries), dir)
	}
}
