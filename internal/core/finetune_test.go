package core

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/sssp"
)

func finetuneOptions(seed int64) Options {
	opt := DefaultOptions(seed)
	opt.Dim = 8
	opt.Hierarchical = false
	opt.ActiveFineTune = true
	opt.Epochs = 3
	opt.FineTuneRounds = 2
	opt.ValidationPairs = 300
	opt.Landmarks = 16
	return opt
}

func finetuneGraphs(t *testing.T) (*graph.Graph, *graph.Graph) {
	t.Helper()
	g, err := gen.Grid(12, 12, gen.DefaultConfig(5))
	if err != nil {
		t.Fatalf("Grid: %v", err)
	}
	cfg, ok := gen.RegimeByName("rush-am", 99)
	if !ok {
		t.Fatal("rush-am regime missing")
	}
	p, err := gen.Perturb(g, cfg)
	if err != nil {
		t.Fatalf("Perturb: %v", err)
	}
	return g, p
}

// exactError evaluates a model against exact distances on g over a
// fixed probe set.
func exactError(t *testing.T, m *Model, g *graph.Graph) float64 {
	t.Helper()
	ws := sssp.NewWorkspace(g)
	rng := newRng(17)
	var pairs []metrics.Pair
	n := int32(g.NumVertices())
	var buf []float64
	for i := 0; i < 12; i++ {
		s := int32(rng.Intn(int(n)))
		buf = ws.FromSource(s, buf)
		for j := 0; j < 16; j++ {
			u := int32(rng.Intn(int(n)))
			if u == s || buf[u] >= sssp.Inf {
				continue
			}
			pairs = append(pairs, metrics.Pair{S: s, T: u, Dist: buf[u]})
		}
	}
	return metrics.Evaluate(metrics.EstimatorFunc(m.Estimate), pairs).MeanRel
}

func TestFineTuneRecoversFromRegimeShift(t *testing.T) {
	base, perturbed := finetuneGraphs(t)
	warm, _, err := Build(base, finetuneOptions(1))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}

	degraded := exactError(t, warm, perturbed)
	tuned, st, err := FineTune(perturbed, warm, finetuneOptions(2))
	if err != nil {
		t.Fatalf("FineTune: %v", err)
	}
	healed := exactError(t, tuned, perturbed)
	if healed >= degraded {
		t.Fatalf("fine-tune did not improve accuracy on the perturbed graph: %.4f -> %.4f", degraded, healed)
	}
	if st.SamplesUsed == 0 {
		t.Fatal("fine-tune consumed no samples")
	}
	// Scale must be inherited from the warm model, not re-estimated
	// from the perturbed graph.
	if tuned.Scale() != warm.Scale() {
		t.Fatalf("fine-tuned model re-derived scale: %v vs warm %v", tuned.Scale(), warm.Scale())
	}
	if tuned.Dim() != warm.Dim() || tuned.P() != warm.P() {
		t.Fatal("fine-tuned model changed dim or metric order")
	}
	if tuned.Hier() != nil {
		t.Fatal("fine-tuned model unexpectedly carries a hierarchy")
	}
}

func TestFineTuneRejectsTopologyChange(t *testing.T) {
	base, _ := finetuneGraphs(t)
	warm, _, err := Build(base, finetuneOptions(1))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	other, err := gen.Grid(8, 8, gen.DefaultConfig(5))
	if err != nil {
		t.Fatalf("Grid: %v", err)
	}
	if _, _, err := FineTune(other, warm, finetuneOptions(2)); err == nil ||
		!strings.Contains(err.Error(), "topology") {
		t.Fatalf("vertex-count mismatch not rejected, err=%v", err)
	}
	if _, _, err := FineTune(base, nil, finetuneOptions(2)); err == nil {
		t.Fatal("nil warm model not rejected")
	}
}

func TestFineTuneStrictCheckpointFailure(t *testing.T) {
	base, perturbed := finetuneGraphs(t)
	warm, _, err := Build(base, finetuneOptions(1))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	opt := finetuneOptions(2)
	opt.CheckpointPath = filepath.Join(t.TempDir(), "ckpt")
	opt.StrictCheckpoints = true

	boom := errors.New("disk on fire")
	faultinject.Enable(FailpointCheckpointSave, faultinject.Fault{Err: boom})
	defer faultinject.Reset()

	if _, _, err := FineTune(perturbed, warm, opt); !errors.Is(err, boom) {
		t.Fatalf("strict checkpoint failure not propagated, err=%v", err)
	}
	faultinject.Reset()

	// Second attempt with the failpoint disarmed succeeds.
	if _, _, err := FineTune(perturbed, warm, opt); err != nil {
		t.Fatalf("retry after failpoint cleared: %v", err)
	}
}
