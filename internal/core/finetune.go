package core

import (
	"errors"
	"fmt"
	"os"
	"time"

	"repro/internal/graph"
)

// FineTune incrementally retrains an existing model against g: the
// warm model's embedding and distance normalizer are adopted as the
// starting state, then the vertex phase and active fine-tuning rounds
// of Algorithm 1 run over fresh exact samples from g. It is the cheap
// repair path for drifted models — when edge weights shift (rush hour,
// incidents) the vertex space is unchanged and a few warm-started
// rounds recover accuracy at a fraction of a full rebuild.
//
// The warm model's partition hierarchy is not required (persisted
// models drop it), so fine-tuning always runs in naive mode over the
// flattened embedding; the returned model therefore carries no
// hierarchy and cannot back a spatial index until the next full Build.
// Dim and P are inherited from the warm model. A vertex-count mismatch
// between warm and g is an error — topology changes need Build.
//
// Training runs under the same divergence sentinel and checkpointer as
// Build: Options.CheckpointPath/StrictCheckpoints/Resume behave
// identically, so an interrupted fine-tune resumes, and chaos tests
// can kill the first attempt through the checkpoint-save failpoint.
func FineTune(g *graph.Graph, warm *Model, opt Options) (*Model, BuildStats, error) {
	var st BuildStats
	start := time.Now()
	if warm == nil {
		return nil, st, fmt.Errorf("core: fine-tune needs a warm-start model")
	}
	if warm.NumVertices() != g.NumVertices() {
		return nil, st, fmt.Errorf(
			"core: warm model covers %d vertices but graph has %d — topology changed, run a full build",
			warm.NumVertices(), g.NumVertices())
	}
	opt.Hierarchical = false
	opt.Dim = warm.Dim()
	opt.P = warm.P()

	t0 := time.Now()
	sp := opt.Trace.StartSpan("setup")
	tr, err := NewTrainer(g, opt)
	if err != nil {
		return nil, st, err
	}
	opt = tr.Options() // defaults applied
	// Warm start: adopt the previous model's embedding and its distance
	// normalizer. The matrix entries are distances over warm's scale, so
	// the scale must travel with them — re-normalizing by the perturbed
	// graph's diameter would silently stretch every estimate.
	copy(tr.flat.Data(), warm.Matrix().Data())
	tr.scale = warm.Scale()

	phase, epoch := ckptPhaseNone, 0
	if opt.Resume {
		if _, statErr := os.Stat(opt.CheckpointPath); statErr == nil {
			var lvl int
			phase, lvl, epoch, err = tr.RestoreCheckpoint(opt.CheckpointPath)
			_ = lvl // fine-tune has no hierarchy levels
			switch {
			case err == nil:
				st.Resumed = true
			case opt.StrictResume:
				return nil, st, fmt.Errorf("core: resuming fine-tune: %w", err)
			default:
				opt.logger().Warn("discarding unusable checkpoint; fine-tune restarts from the warm model",
					"path", opt.CheckpointPath, "error", err)
				st.CheckpointDiscarded = true
				phase, epoch = ckptPhaseNone, 0
			}
		}
	}
	sen, err := newSentinel(tr, opt, &st)
	if err != nil {
		return nil, st, err
	}
	ck := &checkpointer{
		path:   opt.CheckpointPath,
		every:  opt.CheckpointEvery,
		strict: opt.StrictCheckpoints,
		logger: opt.Logger,
		trace:  opt.Trace,
		stats:  &st,
	}
	unitStart := time.Now()
	guard := func(label string, epochs, phase, level, epoch int) error {
		dur := time.Since(unitStart)
		unitStart = time.Now()
		loss, err := sen.check(label, phase, level, epoch)
		if err != nil {
			return err
		}
		opt.Trace.Unit(phaseName(phase), label, loss, tr.LR(), st.Recoveries, dur)
		return ck.tick(tr, epochs, phase, level, epoch)
	}
	st.Setup = time.Since(t0)
	sp.End()

	t0 = time.Now()
	sp = opt.Trace.StartSpan("vertex-phase")
	if phase <= ckptPhaseVertex {
		fromEpoch := 0
		if phase == ckptPhaseVertex {
			fromEpoch = epoch
		}
		unitStart = time.Now()
		err := tr.RunVertexPhaseFrom(fromEpoch, func(e int) error {
			return guard(fmt.Sprintf("vertex epoch %d", e), 1, ckptPhaseVertex, 0, e+1)
		})
		if err != nil {
			return nil, st, err
		}
	}
	st.VertexPhase = time.Since(t0)
	sp.End()

	if opt.ActiveFineTune {
		t0 = time.Now()
		sp = opt.Trace.StartSpan("finetune-phase")
		fromRound := 0
		if phase == ckptPhaseFineTune {
			fromRound = epoch
		}
		unitStart = time.Now()
		for k := fromRound; k < opt.FineTuneRounds; {
			tr.RunFineTuneRound(k)
			switch err := guard(fmt.Sprintf("fine-tune round %d", k), 1, ckptPhaseFineTune, 0, k+1); {
			case errors.Is(err, errRetryUnit):
				continue // rolled back: redo this round at the reduced rate
			case err != nil:
				return nil, st, err
			}
			k++
		}
		st.FineTune = time.Since(t0)
		sp.End()
	}

	sp = opt.Trace.StartSpan("finalize")
	st.SamplesUsed = tr.SamplesUsed()
	st.SamplesSkipped = tr.SamplesSkipped()
	st.FinalLR = tr.LR()
	st.Validation = tr.Validate()
	m := tr.Finalize()
	sp.End()
	st.Total = time.Since(start)
	return m, st, nil
}
