package core

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/faultinject"
)

func newTestSentinel(t *testing.T) (*Trainer, *sentinel, *BuildStats) {
	t.Helper()
	g := ckptTestGraph(t)
	opt, err := ckptTestOptions("").withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTrainer(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	var st BuildStats
	sen, err := newSentinel(tr, tr.Options(), &st)
	if err != nil {
		t.Fatal(err)
	}
	return tr, sen, &st
}

// A healthy state passes the check and becomes the new rollback target.
func TestSentinelHealthyStateSnapshots(t *testing.T) {
	_, sen, st := newTestSentinel(t)
	if _, err := sen.check("vertex epoch 0", ckptPhaseVertex, 0, 1); err != nil {
		t.Fatalf("healthy check failed: %v", err)
	}
	if st.Recoveries != 0 {
		t.Fatalf("Recoveries = %d after healthy check", st.Recoveries)
	}
	if math.IsInf(sen.best, 1) {
		t.Fatal("best validation error not updated by healthy check")
	}
}

// A NaN planted in the embedding is detected, rolled back (restoring
// finite values), and the learning rate halved.
func TestSentinelRollsBackEmbeddingNaN(t *testing.T) {
	tr, sen, st := newTestSentinel(t)
	lr0 := tr.LR()
	tr.ckptMatrix().Data()[3] = math.NaN()

	_, err := sen.check("hierarchy level 1", ckptPhaseHier, 1, 0)
	if !errors.Is(err, errRetryUnit) {
		t.Fatalf("check over NaN embedding returned %v, want errRetryUnit", err)
	}
	if st.Recoveries != 1 || len(st.Rollbacks) != 1 {
		t.Fatalf("Recoveries=%d Rollbacks=%v, want one recovery", st.Recoveries, st.Rollbacks)
	}
	if !strings.Contains(st.Rollbacks[0], "hierarchy level 1") {
		t.Fatalf("rollback record %q does not name the unit", st.Rollbacks[0])
	}
	if got := tr.LR(); got != lr0/2 {
		t.Fatalf("LR = %v after rollback, want halved %v", got, lr0/2)
	}
	for i, v := range tr.ckptMatrix().Data() {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite value %v at parameter %d survived rollback", v, i)
		}
	}
}

// A finite but spiking validation error triggers the divergence branch.
func TestSentinelRollsBackValidationSpike(t *testing.T) {
	_, sen, st := newTestSentinel(t)
	if _, err := sen.check("vertex epoch 0", ckptPhaseVertex, 0, 1); err != nil {
		t.Fatal(err)
	}
	// Pretend the best seen was vastly better than the current state.
	sen.best = sen.tr.Validate().MeanRel / (2 * sen.opt.DivergenceFactor)
	_, err := sen.check("vertex epoch 1", ckptPhaseVertex, 0, 2)
	if !errors.Is(err, errRetryUnit) {
		t.Fatalf("spiking validation returned %v, want errRetryUnit", err)
	}
	if st.Recoveries != 1 || !strings.Contains(st.Rollbacks[0], "spiked") {
		t.Fatalf("Recoveries=%d Rollbacks=%v, want one spike rollback", st.Recoveries, st.Rollbacks)
	}
}

// The recovery budget is a hard cap: MaxRecoveries rollbacks succeed,
// the next failure is terminal and descriptive.
func TestSentinelBudgetExhaustion(t *testing.T) {
	tr, sen, st := newTestSentinel(t)
	sen.opt.MaxRecoveries = 2
	for i := 0; i < 2; i++ {
		tr.ckptMatrix().Data()[0] = math.Inf(1)
		if _, err := sen.check("vertex epoch 0", ckptPhaseVertex, 0, 1); !errors.Is(err, errRetryUnit) {
			t.Fatalf("recovery %d: got %v, want errRetryUnit", i+1, err)
		}
	}
	tr.ckptMatrix().Data()[0] = math.Inf(1)
	_, err := sen.check("vertex epoch 0", ckptPhaseVertex, 0, 1)
	if err == nil || errors.Is(err, errRetryUnit) {
		t.Fatalf("third failure returned %v, want terminal error", err)
	}
	if !strings.Contains(err.Error(), "2/2 recoveries") {
		t.Fatalf("terminal error %q does not report the spent budget", err)
	}
	if st.Recoveries != 2 {
		t.Fatalf("Recoveries = %d, want exactly the budget 2", st.Recoveries)
	}
}

// MaxRecoveries < 0 normalizes to zero recoveries: first divergence is
// immediately fatal.
func TestSentinelNegativeBudgetIsFatal(t *testing.T) {
	tr, sen, _ := newTestSentinel(t)
	sen.opt.MaxRecoveries = 0
	tr.ckptMatrix().Data()[0] = math.NaN()
	_, err := sen.check("hierarchy level 1", ckptPhaseHier, 1, 0)
	if err == nil || errors.Is(err, errRetryUnit) {
		t.Fatalf("zero-budget divergence returned %v, want terminal error", err)
	}
}

// An injected all-NaN sample batch is skipped by SGD, not trained on:
// the embedding stays finite and the skip counter records the batch.
func TestNaNSampleBatchSkippedNotTrained(t *testing.T) {
	g := ckptTestGraph(t)
	defer faultinject.Reset()
	faultinject.Enable(FailpointVertexSamplesNaN, faultinject.Fault{})
	faultinject.Enable(FailpointHierSamplesNaN, faultinject.Fault{})
	faultinject.Enable(FailpointFineTuneSamplesNaN, faultinject.Fault{})

	opt := chaosOptions("")
	_, st, err := Build(g, opt)
	if err != nil {
		t.Fatalf("build with NaN batches failed: %v", err)
	}
	if st.SamplesSkipped == 0 {
		t.Fatal("SamplesSkipped = 0, want injected NaN batches counted")
	}
	if st.Recoveries != 0 {
		t.Fatalf("Recoveries = %d; skipped batches must not corrupt the embedding", st.Recoveries)
	}
	if !finiteVal(st.Validation.MeanRel) {
		t.Fatalf("validation error %v not finite", st.Validation.MeanRel)
	}
}
