package h2h

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/sssp"
)

func TestDistanceMatchesDijkstra(t *testing.T) {
	g, err := gen.Grid(14, 14, gen.DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	idx, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	ws := sssp.NewWorkspace(g)
	rng := rand.New(rand.NewSource(2))
	n := g.NumVertices()
	for trial := 0; trial < 500; trial++ {
		s := int32(rng.Intn(n))
		u := int32(rng.Intn(n))
		want := ws.Distance(s, u)
		got := idx.Distance(s, u)
		if math.Abs(want-got) > 1e-9 {
			t.Fatalf("(%d,%d): H2H %v, Dijkstra %v", s, u, got, want)
		}
	}
}

func TestDistanceAllPairsSmall(t *testing.T) {
	g, err := gen.Grid(6, 6, gen.DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	idx, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	ws := sssp.NewWorkspace(g)
	n := int32(g.NumVertices())
	dist := make([]float64, n)
	for s := int32(0); s < n; s++ {
		dist = ws.FromSource(s, dist)
		for u := int32(0); u < n; u++ {
			if got := idx.Distance(s, u); math.Abs(dist[u]-got) > 1e-9 {
				t.Fatalf("(%d,%d): H2H %v, exact %v", s, u, got, dist[u])
			}
		}
	}
}

func TestRadialTopology(t *testing.T) {
	g, err := gen.Radial(5, 14, gen.DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	idx, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	ws := sssp.NewWorkspace(g)
	rng := rand.New(rand.NewSource(5))
	n := g.NumVertices()
	for trial := 0; trial < 200; trial++ {
		s := int32(rng.Intn(n))
		u := int32(rng.Intn(n))
		want := ws.Distance(s, u)
		got := idx.Distance(s, u)
		if math.Abs(want-got) > 1e-9 {
			t.Fatalf("(%d,%d): H2H %v, Dijkstra %v", s, u, got, want)
		}
	}
}

func TestDisconnectedGraph(t *testing.T) {
	b := graph.NewBuilder(5, 3)
	for i := 0; i < 5; i++ {
		b.AddVertex(float64(i), 0)
	}
	_ = b.AddEdge(0, 1, 1)
	_ = b.AddEdge(1, 2, 2)
	_ = b.AddEdge(3, 4, 1)
	g := b.Build()
	idx, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	if d := idx.Distance(0, 2); math.Abs(d-3) > 1e-12 {
		t.Fatalf("Distance(0,2) = %v, want 3", d)
	}
	if d := idx.Distance(3, 4); math.Abs(d-1) > 1e-12 {
		t.Fatalf("Distance(3,4) = %v, want 1", d)
	}
	if d := idx.Distance(0, 3); d != sssp.Inf {
		t.Fatalf("cross-component distance %v, want Inf", d)
	}
}

func TestSelfDistance(t *testing.T) {
	g, err := gen.Grid(5, 5, gen.DefaultConfig(6))
	if err != nil {
		t.Fatal(err)
	}
	idx, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		if d := idx.Distance(v, v); d != 0 {
			t.Fatalf("Distance(%d,%d) = %v", v, v, d)
		}
	}
}

func TestEmptyGraphRejected(t *testing.T) {
	if _, err := Build(graph.NewBuilder(0, 0).Build()); err == nil {
		t.Fatal("empty graph accepted")
	}
}

func TestIndexDiagnostics(t *testing.T) {
	g, err := gen.Grid(10, 10, gen.DefaultConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	idx, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	if idx.MaxDepth() <= 0 {
		t.Fatal("MaxDepth must be positive on a 100-vertex grid")
	}
	if idx.IndexBytes() <= 0 {
		t.Fatal("IndexBytes must be positive")
	}
	// Labels dominate: the index should exceed 8 bytes per vertex.
	if idx.IndexBytes() < int64(g.NumVertices())*8 {
		t.Fatal("index implausibly small")
	}
}

func BenchmarkH2HQuery(b *testing.B) {
	g, err := gen.Grid(40, 40, gen.DefaultConfig(1))
	if err != nil {
		b.Fatal(err)
	}
	idx, err := Build(g)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	n := g.NumVertices()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.Distance(int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
}
