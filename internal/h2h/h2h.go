// Package h2h implements H2H (Ouyang et al., SIGMOD 2018), the paper's
// fast exact comparator: a tree decomposition obtained by minimum-degree
// elimination, per-vertex distance labels to all decomposition-tree
// ancestors, and O(treewidth) queries that scan the LCA's bag after an
// O(1) Euler-tour LCA lookup.
package h2h

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/graph"
	"repro/internal/pqueue"
	"repro/internal/sssp"
)

// Index is a built H2H structure.
type Index struct {
	n     int
	depth []int32 // decomposition-tree depth of each vertex (root = 0)

	// labels[labelOff[v]+j] = network distance from v to its depth-j
	// ancestor; entry at depth[v] is 0.
	labelOff []int64
	labels   []float64

	// bag lists, per vertex, the depths of its elimination neighbors
	// X(v) plus its own depth (the candidate meeting depths of a query
	// whose LCA is v).
	bagOff []int32
	bags   []int32

	// Euler tour + sparse table for LCA.
	euler    []int32 // vertex at each tour position
	eulerPos []int32 // first tour position of each vertex
	sparse   [][]int32
	treeID   []int32 // decomposition-tree (component) id per vertex
}

// Build constructs the H2H index for g.
func Build(g *graph.Graph) (*Index, error) {
	n := g.NumVertices()
	if n == 0 {
		return nil, fmt.Errorf("h2h: empty graph")
	}

	// ---- Phase 1: minimum-degree elimination with shortcut weights.
	adj := make([]map[int32]float64, n)
	for v := 0; v < n; v++ {
		ts, ws := g.Neighbors(int32(v))
		m := make(map[int32]float64, len(ts))
		for i, t := range ts {
			m[t] = ws[i]
		}
		adj[v] = m
	}
	eliminated := make([]bool, n)
	orderPos := make([]int32, n) // elimination position per vertex
	order := make([]int32, 0, n)
	// X(v): elimination-time neighbors and via-shortcut weights.
	bagIDs := make([][]int32, n)
	bagWts := make([][]float64, n)

	pq := pqueue.New(n)
	for v := int32(0); v < int32(n); v++ {
		pq.Push(v, float64(len(adj[v])))
	}
	for pq.Len() > 0 {
		v, key := pq.Pop()
		if eliminated[v] {
			continue
		}
		if cur := float64(len(adj[v])); cur > key {
			// Lazy degree update.
			if pq.Len() > 0 {
				if _, nextKey := pq.Peek(); cur > nextKey {
					pq.Push(v, cur)
					continue
				}
			}
		}
		orderPos[v] = int32(len(order))
		order = append(order, v)
		eliminated[v] = true

		ids := make([]int32, 0, len(adj[v]))
		for u := range adj[v] {
			ids = append(ids, u)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		wts := make([]float64, len(ids))
		for i, u := range ids {
			wts[i] = adj[v][u]
		}
		bagIDs[v] = ids
		bagWts[v] = wts

		// Add fill-in shortcuts among remaining neighbors.
		for i := 0; i < len(ids); i++ {
			u := ids[i]
			delete(adj[u], v)
			for j := i + 1; j < len(ids); j++ {
				w := ids[j]
				nw := wts[i] + wts[j]
				if old, ok := adj[u][w]; !ok || nw < old {
					adj[u][w] = nw
					adj[w][u] = nw
				}
			}
		}
		for _, u := range ids {
			pq.Push(u, float64(len(adj[u]))) // decrease-only; lazy check fixes increases
		}
		adj[v] = nil
	}

	// ---- Phase 2: decomposition tree. parent(v) = member of X(v)
	// eliminated earliest after v.
	idx := &Index{n: n, depth: make([]int32, n)}
	parent := make([]int32, n)
	for v := int32(0); v < int32(n); v++ {
		parent[v] = -1
		best := int32(-1)
		bestPos := int32(n)
		for _, u := range bagIDs[v] {
			if orderPos[u] < bestPos && orderPos[u] > orderPos[v] {
				best, bestPos = u, orderPos[u]
			}
		}
		parent[v] = best
	}
	// Depths, walking vertices in reverse elimination order (root last
	// eliminated, processed first).
	for i := n - 1; i >= 0; i-- {
		v := order[i]
		if parent[v] < 0 {
			idx.depth[v] = 0
		} else {
			idx.depth[v] = idx.depth[parent[v]] + 1
		}
	}

	// ---- Phase 3: ancestor id arrays and distance labels, top-down.
	idx.labelOff = make([]int64, n+1)
	ancIDs := make([][]int32, n) // root-first ancestor ids incl. self
	var totalLabels int64
	for _, v := range order {
		totalLabels += int64(idx.depth[v]) + 1
	}
	idx.labels = make([]float64, totalLabels)
	// Assign offsets in vertex-id order for locality.
	var off int64
	for v := 0; v < n; v++ {
		idx.labelOff[v] = off
		off += int64(idx.depth[v]) + 1
	}
	idx.labelOff[n] = off

	for i := n - 1; i >= 0; i-- {
		v := order[i]
		d := int(idx.depth[v])
		if parent[v] < 0 {
			ancIDs[v] = []int32{v}
			idx.labels[idx.labelOff[v]] = 0
			continue
		}
		pAnc := ancIDs[parent[v]]
		anc := make([]int32, d+1)
		copy(anc, pAnc)
		anc[d] = v
		ancIDs[v] = anc

		lv := idx.labels[idx.labelOff[v] : idx.labelOff[v]+int64(d)+1]
		for j := 0; j < d; j++ {
			best := sssp.Inf
			aj := anc[j]
			for bi, u := range bagIDs[v] {
				du := int(idx.depth[u])
				var duAj float64
				if j <= du {
					duAj = idx.labels[idx.labelOff[u]+int64(j)]
				} else {
					duAj = idx.labels[idx.labelOff[aj]+int64(du)]
				}
				if c := bagWts[v][bi] + duAj; c < best {
					best = c
				}
			}
			lv[j] = best
		}
		lv[d] = 0
	}

	// ---- Phase 4: bag depth lists for queries.
	idx.bagOff = make([]int32, n+1)
	for v := 0; v < n; v++ {
		idx.bagOff[v+1] = idx.bagOff[v] + int32(len(bagIDs[v])) + 1
	}
	idx.bags = make([]int32, idx.bagOff[n])
	for v := 0; v < n; v++ {
		o := idx.bagOff[v]
		for bi, u := range bagIDs[int32(v)] {
			idx.bags[o+int32(bi)] = idx.depth[u]
		}
		idx.bags[idx.bagOff[v+1]-1] = idx.depth[v]
	}

	// ---- Phase 5: Euler tour + sparse table for LCA. Forests (from
	// disconnected inputs) get one tour per root.
	children := make([][]int32, n)
	var roots []int32
	for v := int32(0); v < int32(n); v++ {
		if parent[v] < 0 {
			roots = append(roots, v)
		} else {
			children[parent[v]] = append(children[parent[v]], v)
		}
	}
	idx.eulerPos = make([]int32, n)
	idx.treeID = make([]int32, n)
	for i := range idx.eulerPos {
		idx.eulerPos[i] = -1
	}
	type frame struct {
		v    int32
		next int
	}
	for ti, root := range roots {
		stack := []frame{{v: root}}
		idx.eulerPos[root] = int32(len(idx.euler))
		idx.treeID[root] = int32(ti)
		idx.euler = append(idx.euler, root)
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next < len(children[f.v]) {
				c := children[f.v][f.next]
				f.next++
				idx.eulerPos[c] = int32(len(idx.euler))
				idx.treeID[c] = int32(ti)
				idx.euler = append(idx.euler, c)
				stack = append(stack, frame{v: c})
			} else {
				stack = stack[:len(stack)-1]
				if len(stack) > 0 {
					idx.euler = append(idx.euler, stack[len(stack)-1].v)
				}
			}
		}
	}
	idx.buildSparse()
	return idx, nil
}

// buildSparse precomputes the min-depth sparse table over the Euler
// tour.
func (idx *Index) buildSparse() {
	m := len(idx.euler)
	levels := 1
	for 1<<levels <= m {
		levels++
	}
	idx.sparse = make([][]int32, levels)
	idx.sparse[0] = idx.euler
	for k := 1; k < levels; k++ {
		span := 1 << k
		prev := idx.sparse[k-1]
		cur := make([]int32, m-span+1)
		for i := range cur {
			a, b := prev[i], prev[i+span/2]
			if idx.depth[a] <= idx.depth[b] {
				cur[i] = a
			} else {
				cur[i] = b
			}
		}
		idx.sparse[k] = cur
	}
}

// lca returns the lowest common ancestor of s and t in the
// decomposition tree, or -1 when they are in different trees.
func (idx *Index) lca(s, t int32) int32 {
	a, b := idx.eulerPos[s], idx.eulerPos[t]
	if a > b {
		a, b = b, a
	}
	k := bits.Len(uint(b-a+1)) - 1
	x := idx.sparse[k][a]
	y := idx.sparse[k][b-(1<<k)+1]
	var q int32
	if idx.depth[x] <= idx.depth[y] {
		q = x
	} else {
		q = y
	}
	return q
}

// Distance returns the exact shortest-path distance between s and t
// (sssp.Inf if disconnected).
func (idx *Index) Distance(s, t int32) float64 {
	if s == t {
		return 0
	}
	if idx.treeID[s] != idx.treeID[t] {
		return sssp.Inf // different connected components
	}
	q := idx.lca(s, t)
	dq := int64(idx.depth[q])
	ls := idx.labelOff[s]
	lt := idx.labelOff[t]
	best := sssp.Inf
	for _, dpos := range idx.bags[idx.bagOff[q]:idx.bagOff[q+1]] {
		if int64(dpos) > dq {
			continue
		}
		c := idx.labels[ls+int64(dpos)] + idx.labels[lt+int64(dpos)]
		if c < best {
			best = c
		}
	}
	return best
}

// Depth returns the decomposition-tree depth of v (for diagnostics).
func (idx *Index) Depth(v int32) int32 { return idx.depth[v] }

// MaxDepth returns the height of the decomposition tree, the
// label-length bound.
func (idx *Index) MaxDepth() int32 {
	var m int32
	for _, d := range idx.depth {
		if d > m {
			m = d
		}
	}
	return m
}

// IndexBytes reports the label + bag + LCA storage in bytes
// (the Table IV metric; H2H's distinguishing cost).
func (idx *Index) IndexBytes() int64 {
	b := int64(len(idx.labels)) * 8
	b += int64(len(idx.bags)) * 4
	b += int64(len(idx.euler)) * 4
	b += int64(len(idx.treeID)) * 4
	for _, row := range idx.sparse[1:] {
		b += int64(len(row)) * 4
	}
	return b
}
