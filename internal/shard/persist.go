package shard

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/emb"
	"repro/internal/fsx"
)

// Shard persistence follows the repo's framed-file convention: a magic
// string, a little-endian int64 payload length, the payload, and a
// CRC32-IEEE trailer over the payload, written atomically. Two formats:
//
//   - RNESMAP1: the compact vertex→shard routing map the gateway loads
//     ({n, K, cutLevel} header + one owner byte per vertex).
//   - RNESHARD1: one self-contained shard model (topology header,
//     metric parameters, owned vertex ids, per-vertex cover and owner
//     tables, then the owned and upper embedding matrices in the
//     existing RNEM1 matrix framing).

const (
	mapMagic   = "RNESMAP1\n"
	shardMagic = "RNESHARD1\n"
)

// maxMapVertices rejects absurd map headers before allocation; it
// comfortably covers the paper's largest testbed (USW, 6.3M vertices).
const maxMapVertices = 1 << 28

// WriteTo streams the routing map in the RNESMAP1 format.
func (m *Map) WriteTo(w io.Writer) (int64, error) {
	plen := 3*8 + int64(len(m.owner))
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(mapMagic); err != nil {
		return 0, err
	}
	if err := binary.Write(bw, binary.LittleEndian, plen); err != nil {
		return 0, err
	}
	cw := fsx.NewCRCWriter(bw)
	for _, v := range []int64{int64(len(m.owner)), int64(m.numShards), int64(m.cutLevel)} {
		if err := binary.Write(cw, binary.LittleEndian, v); err != nil {
			return 0, err
		}
	}
	if _, err := cw.Write(m.owner); err != nil {
		return 0, err
	}
	if err := binary.Write(bw, binary.LittleEndian, cw.Sum32()); err != nil {
		return 0, err
	}
	if err := bw.Flush(); err != nil {
		return 0, err
	}
	return int64(len(mapMagic)) + 8 + plen + 4, nil
}

// SaveMapFile atomically writes the routing map to path.
func (m *Map) SaveMapFile(path string) error {
	return fsx.WriteAtomic(path, func(w io.Writer) error {
		_, err := m.WriteTo(w)
		return err
	})
}

// ReadMap loads a routing map written by Map.WriteTo.
func ReadMap(r io.Reader) (*Map, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(mapMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("shard: reading map magic: %w", err)
	}
	if string(magic) != mapMagic {
		return nil, fmt.Errorf("shard: bad map magic %q", magic)
	}
	var plen int64
	if err := binary.Read(br, binary.LittleEndian, &plen); err != nil {
		return nil, fmt.Errorf("shard: reading map payload length: %w", err)
	}
	cr := fsx.NewCRCReader(io.LimitReader(br, plen))
	var n, k, cut int64
	for _, p := range []*int64{&n, &k, &cut} {
		if err := binary.Read(cr, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("shard: reading map header: %w", err)
		}
	}
	if n < 1 || n > maxMapVertices || k < 1 || k > MaxShards || cut < 1 {
		return nil, fmt.Errorf("shard: implausible map header: %d vertices, %d shards, cut level %d", n, k, cut)
	}
	if want := 3*8 + n; plen != want {
		return nil, fmt.Errorf("shard: map payload is %d bytes, want %d for %d vertices", plen, want, n)
	}
	m := &Map{numShards: int(k), cutLevel: int(cut), owner: make([]uint8, n)}
	if _, err := io.ReadFull(cr, m.owner); err != nil {
		return nil, fmt.Errorf("shard: reading owner table: %w", err)
	}
	var wantCRC uint32
	if err := binary.Read(br, binary.LittleEndian, &wantCRC); err != nil {
		return nil, fmt.Errorf("shard: reading map checksum trailer: %w", err)
	}
	if err := fsx.VerifyTrailer(cr, plen, wantCRC, "shard: map"); err != nil {
		return nil, err
	}
	for v, o := range m.owner {
		if int64(o) >= k {
			return nil, fmt.Errorf("shard: vertex %d owned by shard %d, only %d shards", v, o, k)
		}
	}
	return m, nil
}

// LoadMapFile loads a routing map from a file written by SaveMapFile.
func LoadMapFile(path string) (*Map, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := ReadMap(f)
	if err != nil {
		return nil, fmt.Errorf("shard: loading map %s: %w", path, err)
	}
	return m, nil
}

// WriteTo streams the shard model in the RNESHARD1 format.
func (m *Model) WriteTo(w io.Writer) (int64, error) {
	matBytes := func(mm *emb.Matrix) int64 {
		return emb.MatrixFileSize(mm.Rows(), mm.Dim())
	}
	plen := 6*8 + // shardID, K, cutLevel, n, numOwned, dim
		2*8 + // p, scale
		int64(len(m.ownedIDs))*4 +
		int64(m.n)*4 + // coverIdx
		int64(m.n) + // owner
		matBytes(m.owned) + matBytes(m.upper)
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(shardMagic); err != nil {
		return 0, err
	}
	if err := binary.Write(bw, binary.LittleEndian, plen); err != nil {
		return 0, err
	}
	cw := fsx.NewCRCWriter(bw)
	hdr := []int64{int64(m.shardID), int64(m.numShards), int64(m.cutLevel),
		int64(m.n), int64(len(m.ownedIDs)), int64(m.owned.Dim())}
	for _, v := range hdr {
		if err := binary.Write(cw, binary.LittleEndian, v); err != nil {
			return 0, err
		}
	}
	for _, v := range []float64{m.p, m.scale} {
		if err := binary.Write(cw, binary.LittleEndian, v); err != nil {
			return 0, err
		}
	}
	if err := binary.Write(cw, binary.LittleEndian, m.ownedIDs); err != nil {
		return 0, err
	}
	if err := binary.Write(cw, binary.LittleEndian, m.coverIdx); err != nil {
		return 0, err
	}
	if _, err := cw.Write(m.owner); err != nil {
		return 0, err
	}
	if _, err := m.owned.WriteTo(cw); err != nil {
		return 0, err
	}
	if _, err := m.upper.WriteTo(cw); err != nil {
		return 0, err
	}
	if err := binary.Write(bw, binary.LittleEndian, cw.Sum32()); err != nil {
		return 0, err
	}
	if err := bw.Flush(); err != nil {
		return 0, err
	}
	return int64(len(shardMagic)) + 8 + plen + 4, nil
}

// SaveFile atomically writes the shard model to path.
func (m *Model) SaveFile(path string) error {
	return fsx.WriteAtomic(path, func(w io.Writer) error {
		_, err := m.WriteTo(w)
		return err
	})
}

// ReadModel loads a shard model written by Model.WriteTo, rebuilding
// and cross-checking the derived global→local row table.
func ReadModel(r io.Reader) (*Model, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(shardMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("shard: reading model magic: %w", err)
	}
	if string(magic) != shardMagic {
		return nil, fmt.Errorf("shard: bad model magic %q", magic)
	}
	var plen int64
	if err := binary.Read(br, binary.LittleEndian, &plen); err != nil {
		return nil, fmt.Errorf("shard: reading model payload length: %w", err)
	}
	cr := fsx.NewCRCReader(io.LimitReader(br, plen))
	var sid, k, cut, n, owned, dim int64
	for _, p := range []*int64{&sid, &k, &cut, &n, &owned, &dim} {
		if err := binary.Read(cr, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("shard: reading model header: %w", err)
		}
	}
	if k < 1 || k > MaxShards || sid < 0 || sid >= k || cut < 1 ||
		n < 1 || n > maxMapVertices || owned < 1 || owned > n || dim < 1 {
		return nil, fmt.Errorf("shard: implausible model header: shard %d/%d, cut %d, %d/%d vertices, dim %d",
			sid, k, cut, owned, n, dim)
	}
	m := &Model{
		shardID:   int(sid),
		numShards: int(k),
		cutLevel:  int(cut),
		n:         int(n),
		ownedIDs:  make([]int32, owned),
		coverIdx:  make([]int32, n),
		owner:     make([]uint8, n),
	}
	for _, p := range []*float64{&m.p, &m.scale} {
		if err := binary.Read(cr, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("shard: reading metric parameters: %w", err)
		}
	}
	if m.p < 1 || math.IsNaN(m.p) || m.scale <= 0 || math.IsNaN(m.scale) {
		return nil, fmt.Errorf("shard: implausible metric parameters p=%v scale=%v", m.p, m.scale)
	}
	if err := binary.Read(cr, binary.LittleEndian, m.ownedIDs); err != nil {
		return nil, fmt.Errorf("shard: reading owned vertex ids: %w", err)
	}
	if err := binary.Read(cr, binary.LittleEndian, m.coverIdx); err != nil {
		return nil, fmt.Errorf("shard: reading cover table: %w", err)
	}
	if _, err := io.ReadFull(cr, m.owner); err != nil {
		return nil, fmt.Errorf("shard: reading owner table: %w", err)
	}
	// ReadMatrix buffers internally and would read ahead into the next
	// section; bound each matrix to its exact framed size (the upper
	// matrix's row count is implied by the remaining payload).
	fixed := 6*8 + 2*8 + owned*4 + n*4 + n
	ownedBytes := emb.MatrixFileSize(int(owned), int(dim))
	upperBytes := plen - fixed - ownedBytes
	if upperBytes <= 0 {
		return nil, fmt.Errorf("shard: model payload %d bytes leaves no room for the upper matrix", plen)
	}
	var err error
	if m.owned, err = emb.ReadMatrix(io.LimitReader(cr, ownedBytes)); err != nil {
		return nil, fmt.Errorf("shard: reading owned embeddings: %w", err)
	}
	if m.upper, err = emb.ReadMatrix(io.LimitReader(cr, upperBytes)); err != nil {
		return nil, fmt.Errorf("shard: reading upper-level embeddings: %w", err)
	}
	var wantCRC uint32
	if err := binary.Read(br, binary.LittleEndian, &wantCRC); err != nil {
		return nil, fmt.Errorf("shard: reading model checksum trailer: %w", err)
	}
	if err := fsx.VerifyTrailer(cr, plen, wantCRC, "shard: model"); err != nil {
		return nil, err
	}
	if m.owned.Rows() != int(owned) || m.owned.Dim() != int(dim) {
		return nil, fmt.Errorf("shard: owned matrix is %dx%d, header says %dx%d",
			m.owned.Rows(), m.owned.Dim(), owned, dim)
	}
	if m.upper.Dim() != int(dim) {
		return nil, fmt.Errorf("shard: upper matrix dim %d != embedding dim %d", m.upper.Dim(), dim)
	}
	prev := int32(-1)
	for i, v := range m.ownedIDs {
		if v <= prev || int64(v) >= n {
			return nil, fmt.Errorf("shard: owned id %d at position %d not strictly increasing in [0,%d)", v, i, n)
		}
		prev = v
	}
	upperRows := int32(m.upper.Rows())
	for v := range m.coverIdx {
		if m.coverIdx[v] < 0 || m.coverIdx[v] >= upperRows {
			return nil, fmt.Errorf("shard: vertex %d maps to upper row %d, matrix has %d", v, m.coverIdx[v], upperRows)
		}
		if int64(m.owner[v]) >= k {
			return nil, fmt.Errorf("shard: vertex %d owned by shard %d, only %d shards", v, m.owner[v], k)
		}
	}
	m.buildLocalIdx()
	for _, v := range m.ownedIDs {
		if m.owner[v] != uint8(sid) {
			return nil, fmt.Errorf("shard: vertex %d listed as owned but owner table says shard %d", v, m.owner[v])
		}
	}
	return m, nil
}

// LoadModelFile loads a shard model from a file written by SaveFile.
func LoadModelFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := ReadModel(f)
	if err != nil {
		return nil, fmt.Errorf("shard: loading model %s: %w", path, err)
	}
	return m, nil
}
