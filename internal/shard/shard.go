// Package shard splits one trained RNE model into region shards along
// the partition hierarchy, so a fleet of replicas can jointly serve a
// graph none of them could hold alone. The cut level selects a cover
// of disjoint subtrees (partition.Hierarchy.CoverAtLevel); cover nodes
// are grouped into K shards balanced by vertex count. Each shard
// carries:
//
//   - its region's full-precision global embedding rows, copied
//     verbatim from the flattened model, so intra-shard estimates are
//     bit-identical to the unsharded model's;
//   - the shared upper-level embeddings — one prefix-summed vector per
//     cover node (the telescoping decomposition truncated at the cut
//     level), small and replicated to every shard — from which the
//     owning shard answers cross-shard pairs;
//   - the vertex→shard owner table, so a replica can answer a
//     misdirected request with a redirect hint;
//   - optionally, the ALT guard restricted to the landmarks inside its
//     region, which still certifies (looser) bounds for every pair.
//
// The gateway routes by the compact vertex→shard Map; see
// internal/gateway.
package shard

import (
	"fmt"
	"sort"

	"repro/internal/alt"
	"repro/internal/core"
	"repro/internal/emb"
	"repro/internal/vecmath"
)

// MaxShards bounds K: the owner table stores one byte per vertex.
const MaxShards = 256

// Config controls a Cut.
type Config struct {
	// CutLevel is the hierarchy depth the model is cut at (>= 1):
	// the cover nodes at this level become the shardable regions.
	// Deeper cuts mean more, smaller regions and a larger replicated
	// upper-level matrix.
	CutLevel int
	// Shards is K, the number of shard artifacts the regions are
	// grouped into (balanced by vertex count). 0 means one shard per
	// cover node; values above the cover size are clamped down.
	Shards int
}

// Map is the compact vertex→shard routing table the gateway loads: one
// byte per vertex plus the topology header.
type Map struct {
	numShards int
	cutLevel  int
	owner     []uint8
}

// NumVertices returns |V|.
func (m *Map) NumVertices() int { return len(m.owner) }

// NumShards returns K.
func (m *Map) NumShards() int { return m.numShards }

// CutLevel returns the hierarchy depth the model was cut at.
func (m *Map) CutLevel() int { return m.cutLevel }

// ShardOf returns the owning shard of vertex v, or false when v is
// outside the mapped vertex range.
func (m *Map) ShardOf(v int32) (int, bool) {
	if v < 0 || int(v) >= len(m.owner) {
		return 0, false
	}
	return int(m.owner[v]), true
}

// IndexBytes reports the routing table's resident size.
func (m *Map) IndexBytes() int64 { return int64(len(m.owner)) + 24 }

// Model is one shard of a trained RNE model. It satisfies
// hybrid.Distancer over the full vertex id space: owned pairs are
// answered from the region's exact embedding rows, pairs touching an
// unowned vertex fall back to the shared upper-level estimate (the
// telescoping L1 decomposition truncated at the cut level). Ownership
// policy — e.g. rejecting out-of-region sources — is the server's job,
// via Owns and Owner.
type Model struct {
	shardID   int
	numShards int
	cutLevel  int
	p         float64
	scale     float64
	n         int // total |V| of the unsharded model

	ownedIDs []int32     // sorted global vertex ids this shard owns
	owned    *emb.Matrix // len(ownedIDs) x d exact global rows
	upper    *emb.Matrix // C x d cover-node prefix embeddings (shared)
	coverIdx []int32     // |V| -> row in upper
	owner    []uint8     // |V| -> owning shard (for redirect hints)

	localIdx []int32 // |V| -> row in owned, -1 when unowned (derived)
}

// ShardID returns this shard's id in [0, NumShards).
func (m *Model) ShardID() int { return m.shardID }

// NumShards returns the fleet topology K this shard was cut for.
func (m *Model) NumShards() int { return m.numShards }

// CutLevel returns the hierarchy depth the model was cut at.
func (m *Model) CutLevel() int { return m.cutLevel }

// NumVertices returns the full |V| of the unsharded model, so guards
// and servers built over a shard validate against the whole graph.
func (m *Model) NumVertices() int { return m.n }

// OwnedVertices returns how many vertices this shard owns.
func (m *Model) OwnedVertices() int { return len(m.ownedIDs) }

// Dim returns the embedding dimension d.
func (m *Model) Dim() int { return m.owned.Dim() }

// P returns the metric order.
func (m *Model) P() float64 { return m.p }

// Scale returns the distance normalizer multiplied into estimates.
func (m *Model) Scale() float64 { return m.scale }

// Owns reports whether vertex v's embedding row lives on this shard.
func (m *Model) Owns(v int32) bool {
	return v >= 0 && int(v) < m.n && m.localIdx[v] >= 0
}

// Owner returns the shard that owns vertex v (the redirect hint for a
// misdirected request), or -1 when v is out of range.
func (m *Model) Owner(v int32) int {
	if v < 0 || int(v) >= m.n {
		return -1
	}
	return int(m.owner[v])
}

// Estimate approximates d(s,t). Both endpoints owned: exact L_p over
// the region rows, bit-identical to the unsharded model. Any unowned
// endpoint: the upper-level estimate — L_p between the cut-level
// prefix vectors of the two regions — which the caller should serve
// under an ALT guard certifying bounds.
func (m *Model) Estimate(s, t int32) float64 {
	if s == t {
		return 0
	}
	i, j := m.localIdx[s], m.localIdx[t]
	if i >= 0 && j >= 0 {
		return vecmath.Lp(m.owned.Row(i), m.owned.Row(j), m.p) * m.scale
	}
	return vecmath.Lp(m.upper.Row(m.coverIdx[s]), m.upper.Row(m.coverIdx[t]), m.p) * m.scale
}

// CrossShard reports whether (s,t) would be answered from the shared
// upper levels rather than exact region rows.
func (m *Model) CrossShard(s, t int32) bool {
	return m.localIdx[s] < 0 || m.localIdx[t] < 0
}

// EstimateBatch fills out[i] = Estimate(ss[i], ts[i]).
func (m *Model) EstimateBatch(ss, ts []int32, out []float64) error {
	if len(ss) != len(ts) || len(ss) != len(out) {
		return fmt.Errorf("shard: batch slices must share a length")
	}
	for i := range ss {
		out[i] = m.Estimate(ss[i], ts[i])
	}
	return nil
}

// EmbeddingBytes reports the resident size of the region's exact
// embedding rows — the component that must shrink versus the full
// model for sharding to pay.
func (m *Model) EmbeddingBytes() int64 {
	return int64(m.owned.Rows())*int64(m.owned.Dim())*8 + 32
}

// UpperBytes reports the resident size of the shared upper-level
// state replicated to every shard: the cover-node prefix matrix plus
// the per-vertex cover and owner tables.
func (m *Model) UpperBytes() int64 {
	return int64(m.upper.Rows())*int64(m.upper.Dim())*8 + int64(m.n)*5
}

// IndexBytes reports the shard's total resident model size.
func (m *Model) IndexBytes() int64 { return m.EmbeddingBytes() + m.UpperBytes() }

// Split is the output of one Cut: the routing map plus K shard models
// and their region-restricted guards (Guards is nil when Cut ran
// without an ALT index; individual entries are never nil otherwise).
type Split struct {
	Map    *Map
	Shards []*Model
	Guards []*alt.Index
}

// Cut splits a freshly built hierarchical model into K shards at
// cfg.CutLevel. lt, when non-nil, is the full ALT guard to restrict
// per region; a region holding no landmarks keeps the full landmark
// set (valid, just not memory-reduced).
func Cut(m *core.Model, lt *alt.Index, cfg Config) (*Split, error) {
	hh := m.Hier()
	if hh == nil {
		return nil, fmt.Errorf("shard: model has no hierarchy (naive or deserialized model); cut requires a fresh hierarchical build")
	}
	if cfg.CutLevel < 1 {
		return nil, fmt.Errorf("shard: cut level must be >= 1, got %d", cfg.CutLevel)
	}
	h := hh.H
	if cfg.CutLevel > h.MaxDepth() {
		return nil, fmt.Errorf("shard: cut level %d exceeds hierarchy depth %d", cfg.CutLevel, h.MaxDepth())
	}
	if lt != nil && lt.NumVertices() != m.NumVertices() {
		return nil, fmt.Errorf("shard: ALT index covers %d vertices but model covers %d",
			lt.NumVertices(), m.NumVertices())
	}
	cover := h.CoverAtLevel(cfg.CutLevel)
	k := cfg.Shards
	if k <= 0 || k > len(cover) {
		k = len(cover)
	}
	if k > MaxShards {
		return nil, fmt.Errorf("shard: %d shards exceed the %d-shard limit (owner table is one byte per vertex)", k, MaxShards)
	}

	n := m.NumVertices()
	d := m.Dim()

	// Group cover nodes into K shards, heaviest region first onto the
	// currently lightest shard: deterministic and balanced by vertex
	// count.
	type region struct {
		cover int32 // cover node id
		idx   int   // row in the upper matrix
	}
	order := make([]region, len(cover))
	for i, c := range cover {
		order[i] = region{cover: c, idx: i}
	}
	sort.SliceStable(order, func(a, b int) bool {
		na := len(h.SubgraphVertices(order[a].cover))
		nb := len(h.SubgraphVertices(order[b].cover))
		if na != nb {
			return na > nb
		}
		return order[a].cover < order[b].cover
	})
	load := make([]int, k)
	groups := make([][]region, k)
	for _, r := range order {
		best := 0
		for s := 1; s < k; s++ {
			if load[s] < load[best] {
				best = s
			}
		}
		groups[best] = append(groups[best], r)
		load[best] += len(h.SubgraphVertices(r.cover))
	}

	// The shared upper-level matrix: one prefix-summed vector per cover
	// node, computed root-first so it is bit-consistent with the
	// flattened global rows (emb.NodeGlobalInto).
	upper := emb.NewMatrix(len(cover), d)
	coverIdx := make([]int32, n)
	owner := make([]uint8, n)
	for i, c := range cover {
		hh.NodeGlobalInto(upper.Row(int32(i)), c)
		for _, v := range h.SubgraphVertices(c) {
			coverIdx[v] = int32(i)
		}
	}
	for sid, grp := range groups {
		for _, r := range grp {
			for _, v := range h.SubgraphVertices(r.cover) {
				owner[v] = uint8(sid)
			}
		}
	}

	split := &Split{
		Map:    &Map{numShards: k, cutLevel: cfg.CutLevel, owner: owner},
		Shards: make([]*Model, k),
	}
	if lt != nil {
		split.Guards = make([]*alt.Index, k)
	}
	full := m.Matrix()
	for sid, grp := range groups {
		var ids []int32
		for _, r := range grp {
			ids = append(ids, h.SubgraphVertices(r.cover)...)
		}
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		if len(ids) == 0 {
			return nil, fmt.Errorf("shard: shard %d owns no vertices (cover %d nodes, %d shards)", sid, len(cover), k)
		}
		owned := emb.NewMatrix(len(ids), d)
		for i, v := range ids {
			copy(owned.Row(int32(i)), full.Row(v))
		}
		sm := &Model{
			shardID:   sid,
			numShards: k,
			cutLevel:  cfg.CutLevel,
			p:         m.P(),
			scale:     m.Scale(),
			n:         n,
			ownedIDs:  ids,
			owned:     owned,
			upper:     upper,
			coverIdx:  coverIdx,
			owner:     owner,
		}
		sm.buildLocalIdx()
		split.Shards[sid] = sm
		if lt != nil {
			var keep []int
			for i, u := range lt.Landmarks() {
				if owner[u] == uint8(sid) {
					keep = append(keep, i)
				}
			}
			if len(keep) == 0 {
				// No landmark fell inside this region: keep the full set.
				// Any landmark subset certifies valid bounds, so this only
				// costs memory, never correctness.
				split.Guards[sid] = lt
			} else {
				g, err := lt.Restrict(keep)
				if err != nil {
					return nil, fmt.Errorf("shard: restricting guard for shard %d: %w", sid, err)
				}
				split.Guards[sid] = g
			}
		}
	}
	return split, nil
}

// buildLocalIdx derives the global→local row table from ownedIDs.
func (m *Model) buildLocalIdx() {
	m.localIdx = make([]int32, m.n)
	for i := range m.localIdx {
		m.localIdx[i] = -1
	}
	for i, v := range m.ownedIDs {
		m.localIdx[v] = int32(i)
	}
}
