package shard

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/alt"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/sssp"
)

// quickBuild trains a small but real hierarchical model so cuts
// exercise genuine prefix-summed embeddings.
func quickBuild(t *testing.T, seed int64) (*graph.Graph, *core.Model) {
	t.Helper()
	g, err := gen.Grid(8, 8, gen.DefaultConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions(seed)
	opt.Dim = 8
	opt.Epochs = 2
	opt.VertexSampleRatio = 10
	opt.FineTuneRounds = 1
	opt.HierSampleCap = 2000
	opt.ValidationPairs = 50
	m, _, err := core.Build(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	return g, m
}

func quickCut(t *testing.T, seed int64, k int) (*graph.Graph, *core.Model, *alt.Index, *Split) {
	t.Helper()
	g, m := quickBuild(t, seed)
	lt, err := alt.Build(g, 8, seed)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := Cut(m, lt, Config{CutLevel: 1, Shards: k})
	if err != nil {
		t.Fatal(err)
	}
	return g, m, lt, sp
}

func TestCutPartitionsEveryVertex(t *testing.T) {
	_, m, _, sp := quickCut(t, 1, 2)
	n := m.NumVertices()
	if sp.Map.NumVertices() != n {
		t.Fatalf("map covers %d vertices, want %d", sp.Map.NumVertices(), n)
	}
	if sp.Map.NumShards() != 2 || len(sp.Shards) != 2 {
		t.Fatalf("got %d/%d shards, want 2", sp.Map.NumShards(), len(sp.Shards))
	}
	owned := 0
	for sid, sm := range sp.Shards {
		if sm.ShardID() != sid || sm.NumShards() != 2 || sm.CutLevel() != 1 {
			t.Fatalf("shard %d identity wrong: id=%d k=%d cut=%d", sid, sm.ShardID(), sm.NumShards(), sm.CutLevel())
		}
		if sm.NumVertices() != n {
			t.Fatalf("shard %d NumVertices = %d, want full %d", sid, sm.NumVertices(), n)
		}
		owned += sm.OwnedVertices()
	}
	if owned != n {
		t.Fatalf("shards own %d vertices total, want %d (disjoint cover)", owned, n)
	}
	for v := int32(0); int(v) < n; v++ {
		sid, ok := sp.Map.ShardOf(v)
		if !ok {
			t.Fatalf("vertex %d unmapped", v)
		}
		if !sp.Shards[sid].Owns(v) {
			t.Fatalf("map says shard %d owns %d but the shard disagrees", sid, v)
		}
		for other := range sp.Shards {
			if other != sid && sp.Shards[other].Owns(v) {
				t.Fatalf("vertex %d owned by both shard %d and %d", v, sid, other)
			}
			if got := sp.Shards[other].Owner(v); got != sid {
				t.Fatalf("shard %d reports owner %d for vertex %d, want %d", other, got, v, sid)
			}
		}
	}
	if _, ok := sp.Map.ShardOf(-1); ok {
		t.Fatal("ShardOf(-1) claimed a shard")
	}
	if _, ok := sp.Map.ShardOf(int32(n)); ok {
		t.Fatalf("ShardOf(%d) claimed a shard", n)
	}
}

// Intra-shard estimates must be bit-identical to the unsharded model:
// the shard carries its region's rows verbatim.
func TestIntraShardBitIdentical(t *testing.T) {
	_, m, _, sp := quickCut(t, 2, 2)
	n := m.NumVertices()
	pairs := 0
	for s := int32(0); int(s) < n; s++ {
		for u := int32(0); int(u) < n; u++ {
			sid, _ := sp.Map.ShardOf(s)
			sm := sp.Shards[sid]
			if !sm.Owns(u) {
				continue
			}
			if sm.CrossShard(s, u) {
				t.Fatalf("(%d,%d) both owned by shard %d but flagged cross-shard", s, u, sid)
			}
			if got, want := sm.Estimate(s, u), m.Estimate(s, u); got != want {
				t.Fatalf("intra-shard (%d,%d): shard %v != full %v (must be bit-identical)", s, u, got, want)
			}
			pairs++
		}
	}
	if pairs == 0 {
		t.Fatal("no intra-shard pairs exercised")
	}
}

// Cross-shard pairs come from the shared upper levels; the restricted
// guard must still bracket the true distance so clamped answers stay
// certified.
func TestCrossShardWithinRestrictedGuardBounds(t *testing.T) {
	g, _, full, sp := quickCut(t, 3, 2)
	ws := sssp.NewWorkspace(g)
	n := g.NumVertices()
	rng := rand.New(rand.NewSource(7))
	cross := 0
	for trial := 0; trial < 400 && cross < 100; trial++ {
		s := int32(rng.Intn(n))
		u := int32(rng.Intn(n))
		sid, _ := sp.Map.ShardOf(s)
		sm := sp.Shards[sid]
		if sm.Owns(u) {
			continue
		}
		cross++
		if !sm.CrossShard(s, u) {
			t.Fatalf("(%d,%d) spans shards but not flagged cross-shard", s, u)
		}
		want := ws.Distance(s, u)
		lo, hi := sp.Guards[sid].Bounds(s, u)
		if lo > want+1e-9 || hi < want-1e-9 {
			t.Fatalf("(%d,%d): restricted guard [%v,%v] misses true %v", s, u, lo, hi, want)
		}
		// The restricted landmark set can only loosen, never tighten.
		flo, fhi := full.Bounds(s, u)
		if lo > flo+1e-9 || hi < fhi-1e-9 {
			t.Fatalf("(%d,%d): restricted [%v,%v] tighter than full [%v,%v]", s, u, lo, hi, flo, fhi)
		}
		if est := sm.Estimate(s, u); est < 0 {
			t.Fatalf("(%d,%d): negative upper-level estimate %v", s, u, est)
		}
	}
	if cross == 0 {
		t.Fatal("no cross-shard pairs exercised")
	}
}

// The whole point of sharding: each shard's exact-row matrix is
// strictly smaller than the full model's.
func TestShardEmbeddingBytesShrink(t *testing.T) {
	_, m, _, sp := quickCut(t, 4, 2)
	for sid, sm := range sp.Shards {
		if sm.EmbeddingBytes() >= m.IndexBytes() {
			t.Fatalf("shard %d embeddings %d bytes, not below full model %d", sid, sm.EmbeddingBytes(), m.IndexBytes())
		}
		if sm.UpperBytes() <= 0 || sm.IndexBytes() != sm.EmbeddingBytes()+sm.UpperBytes() {
			t.Fatalf("shard %d byte accounting inconsistent: emb=%d upper=%d total=%d",
				sid, sm.EmbeddingBytes(), sm.UpperBytes(), sm.IndexBytes())
		}
	}
	if sp.Map.IndexBytes() <= int64(m.NumVertices()) {
		t.Fatalf("map bytes %d implausibly small", sp.Map.IndexBytes())
	}
}

func TestCutRejectsBadInputs(t *testing.T) {
	g, m := quickBuild(t, 5)
	if _, err := Cut(m, nil, Config{CutLevel: 0}); err == nil {
		t.Fatal("cut level 0 accepted")
	}
	if _, err := Cut(m, nil, Config{CutLevel: 99}); err == nil {
		t.Fatal("cut level past hierarchy depth accepted")
	}
	small, err := gen.Grid(5, 5, gen.DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	wrongLT, err := alt.Build(small, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Cut(m, wrongLT, Config{CutLevel: 1}); err == nil {
		t.Fatal("ALT index over a different graph accepted")
	}
	// A deserialized model drops its hierarchy and must refuse to cut.
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := core.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Cut(loaded, nil, Config{CutLevel: 1}); err == nil {
		t.Fatal("hierarchy-less model accepted")
	}
	_ = g
}

func TestCutWithoutGuard(t *testing.T) {
	_, m := quickBuild(t, 6)
	sp, err := Cut(m, nil, Config{CutLevel: 1, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sp.Guards != nil {
		t.Fatalf("guards materialized without an ALT index: %v", sp.Guards)
	}
	if got, want := sp.Shards[0].Estimate(0, 1), m.Estimate(0, 1); sp.Shards[0].Owns(0) && sp.Shards[0].Owns(1) && got != want {
		t.Fatalf("estimate %v != %v", got, want)
	}
}

func TestMapCodecRoundTrip(t *testing.T) {
	_, _, _, sp := quickCut(t, 7, 2)
	path := filepath.Join(t.TempDir(), "map.rnemap")
	if err := sp.Map.SaveMapFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadMapFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumVertices() != sp.Map.NumVertices() || got.NumShards() != sp.Map.NumShards() || got.CutLevel() != sp.Map.CutLevel() {
		t.Fatalf("header mismatch: %d/%d/%d vs %d/%d/%d",
			got.NumVertices(), got.NumShards(), got.CutLevel(),
			sp.Map.NumVertices(), sp.Map.NumShards(), sp.Map.CutLevel())
	}
	for v := int32(0); int(v) < got.NumVertices(); v++ {
		a, _ := got.ShardOf(v)
		b, _ := sp.Map.ShardOf(v)
		if a != b {
			t.Fatalf("vertex %d: loaded owner %d, want %d", v, a, b)
		}
	}
}

func TestModelCodecRoundTrip(t *testing.T) {
	_, _, _, sp := quickCut(t, 8, 2)
	for sid, sm := range sp.Shards {
		path := filepath.Join(t.TempDir(), "shard.rne")
		if err := sm.SaveFile(path); err != nil {
			t.Fatal(err)
		}
		got, err := LoadModelFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if got.ShardID() != sm.ShardID() || got.NumShards() != sm.NumShards() ||
			got.CutLevel() != sm.CutLevel() || got.NumVertices() != sm.NumVertices() ||
			got.OwnedVertices() != sm.OwnedVertices() || got.Dim() != sm.Dim() ||
			got.P() != sm.P() || got.Scale() != sm.Scale() {
			t.Fatalf("shard %d header drifted through the codec", sid)
		}
		n := sm.NumVertices()
		rng := rand.New(rand.NewSource(int64(sid)))
		for trial := 0; trial < 200; trial++ {
			s := int32(rng.Intn(n))
			u := int32(rng.Intn(n))
			if a, b := got.Estimate(s, u), sm.Estimate(s, u); a != b {
				t.Fatalf("shard %d (%d,%d): loaded %v != %v", sid, s, u, a, b)
			}
			if got.Owns(s) != sm.Owns(s) || got.Owner(s) != sm.Owner(s) {
				t.Fatalf("shard %d ownership drifted for vertex %d", sid, s)
			}
		}
	}
}

// Every corrupted byte must be caught by framing or validation — a
// flipped bit in a routing table silently misroutes a whole region.
func TestCorruptFilesRejected(t *testing.T) {
	_, _, _, sp := quickCut(t, 9, 2)
	dir := t.TempDir()

	mapPath := filepath.Join(dir, "map.rnemap")
	if err := sp.Map.SaveMapFile(mapPath); err != nil {
		t.Fatal(err)
	}
	modelPath := filepath.Join(dir, "shard.rne")
	if err := sp.Shards[0].SaveFile(modelPath); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		path string
		load func(string) error
	}{
		{mapPath, func(p string) error { _, err := LoadMapFile(p); return err }},
		{modelPath, func(p string) error { _, err := LoadModelFile(p); return err }},
	} {
		raw, err := os.ReadFile(tc.path)
		if err != nil {
			t.Fatal(err)
		}
		// Flip one byte in the middle of the payload.
		bad := append([]byte(nil), raw...)
		bad[len(bad)/2] ^= 0xff
		badPath := tc.path + ".bad"
		if err := os.WriteFile(badPath, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := tc.load(badPath); err == nil {
			t.Fatalf("%s: corrupt file loaded cleanly", filepath.Base(tc.path))
		}
		// Truncation must fail too.
		if err := os.WriteFile(badPath, raw[:len(raw)-5], 0o644); err != nil {
			t.Fatal(err)
		}
		if err := tc.load(badPath); err == nil {
			t.Fatalf("%s: truncated file loaded cleanly", filepath.Base(tc.path))
		}
	}
}
