// Package ch implements Contraction Hierarchies (Geisberger et al.):
// vertices are contracted in importance order, shortcuts preserve
// shortest distances among the remaining vertices, and queries run a
// bidirectional upward Dijkstra over original edges plus shortcuts.
//
// The same builder covers the approximate variant ACH (Geisberger &
// Schieferdecker) through Options.Epsilon: during contraction a witness
// path up to (1+ε) times the shortcut length already suppresses the
// shortcut, shrinking the index and build time at the price of a
// bounded relative error.
package ch

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/pqueue"
	"repro/internal/sssp"
)

// Options configures a hierarchy build.
type Options struct {
	// Epsilon is the ACH slack: 0 builds an exact CH; ε > 0 accepts
	// witnesses up to (1+ε) times the shortcut length.
	Epsilon float64
	// WitnessHopLimit caps the vertices settled per witness search;
	// hitting the cap conservatively adds the shortcut. Default 80.
	WitnessHopLimit int
}

type edge struct {
	to int32
	w  float64
}

// Index is a built contraction hierarchy.
type Index struct {
	n       int
	rank    []int32 // contraction order position of each vertex
	up      [][]edge
	eps     float64
	nShort  int
	nUpEdge int
}

// Build contracts g per opts.
func Build(g *graph.Graph, opts Options) (*Index, error) {
	if opts.Epsilon < 0 {
		return nil, fmt.Errorf("ch: epsilon must be non-negative, got %v", opts.Epsilon)
	}
	if opts.WitnessHopLimit == 0 {
		opts.WitnessHopLimit = 80
	}
	n := g.NumVertices()
	if n == 0 {
		return nil, fmt.Errorf("ch: empty graph")
	}

	// Mutable adjacency (original edges + shortcuts so far).
	adj := make([][]edge, n)
	for v := 0; v < n; v++ {
		ts, ws := g.Neighbors(int32(v))
		es := make([]edge, len(ts))
		for i := range ts {
			es[i] = edge{to: ts[i], w: ws[i]}
		}
		adj[v] = es
	}
	contracted := make([]bool, n)
	deleted := make([]int32, n) // contracted-neighbor counters

	b := &builder{
		adj:        adj,
		contracted: contracted,
		dist:       make([]float64, n),
		hops:       make([]int32, n),
		heap:       pqueue.New(n),
		limit:      opts.WitnessHopLimit,
		eps:        opts.Epsilon,
	}
	for i := range b.dist {
		b.dist[i] = sssp.Inf
	}

	// Priority queue of contraction priorities with lazy updates.
	pq := pqueue.New(n)
	for v := int32(0); v < int32(n); v++ {
		pq.Push(v, b.priority(v, deleted[v]))
	}

	idx := &Index{n: n, rank: make([]int32, n), eps: opts.Epsilon, up: make([][]edge, n)}
	nextRank := int32(0)
	for pq.Len() > 0 {
		v, key := pq.Pop()
		// Lazy re-evaluation: if the recomputed priority is now worse
		// than the next queued one, requeue.
		if pq.Len() > 0 {
			cur := b.priority(v, deleted[v])
			if _, nextKey := pq.Peek(); cur > nextKey && cur > key {
				pq.Push(v, cur)
				continue
			}
		}
		idx.rank[v] = nextRank
		nextRank++
		shortcuts := b.contract(v)
		idx.nShort += shortcuts
		// Bump deleted-neighbor counters; priorities refresh lazily on pop.
		ns, _ := neighborsOf(b.adj[v], b.contracted)
		for _, u := range ns {
			deleted[u]++
		}
		contracted[v] = true
	}

	// Assemble upward adjacency from final edge set.
	for v := int32(0); v < int32(n); v++ {
		for _, e := range b.adj[v] {
			if idx.rank[e.to] > idx.rank[v] {
				idx.up[v] = append(idx.up[v], e)
			}
		}
		list := idx.up[v]
		sort.Slice(list, func(i, j int) bool { return list[i].to < list[j].to })
		// Deduplicate keeping minimal weights (parallel shortcuts).
		out := list[:0]
		for _, e := range list {
			if len(out) > 0 && out[len(out)-1].to == e.to {
				if e.w < out[len(out)-1].w {
					out[len(out)-1].w = e.w
				}
				continue
			}
			out = append(out, e)
		}
		idx.up[v] = out
		idx.nUpEdge += len(out)
	}
	return idx, nil
}

// builder carries the witness-search scratch state.
type builder struct {
	adj        [][]edge
	contracted []bool
	dist       []float64
	hops       []int32
	touched    []int32
	heap       *pqueue.IndexedHeap
	limit      int
	eps        float64
}

func neighborsOf(es []edge, contracted []bool) ([]int32, []float64) {
	var ns []int32
	var ws []float64
	seen := map[int32]float64{}
	for _, e := range es {
		if contracted[e.to] {
			continue
		}
		if w, ok := seen[e.to]; !ok || e.w < w {
			seen[e.to] = e.w
		}
	}
	for to, w := range seen {
		ns = append(ns, to)
		ws = append(ws, w)
	}
	// Deterministic order.
	idx := make([]int, len(ns))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return ns[idx[a]] < ns[idx[b]] })
	outN := make([]int32, len(ns))
	outW := make([]float64, len(ns))
	for i, j := range idx {
		outN[i] = ns[j]
		outW[i] = ws[j]
	}
	return outN, outW
}

// priority is the standard edge-difference + deleted-neighbors heuristic.
func (b *builder) priority(v int32, deletedNeighbors int32) float64 {
	shortcuts := b.simulate(v)
	ns, _ := neighborsOf(b.adj[v], b.contracted)
	return float64(shortcuts-len(ns)) + 0.7*float64(deletedNeighbors)
}

// simulate counts the shortcuts contraction of v would add.
func (b *builder) simulate(v int32) int {
	return b.contractInternal(v, false)
}

// contract removes v, adding shortcuts among its uncontracted
// neighbors, and returns the number added.
func (b *builder) contract(v int32) int {
	return b.contractInternal(v, true)
}

func (b *builder) contractInternal(v int32, apply bool) int {
	ns, ws := neighborsOf(b.adj[v], b.contracted)
	count := 0
	for i := 0; i < len(ns); i++ {
		for j := i + 1; j < len(ns); j++ {
			need := ws[i] + ws[j]
			// Witness search from ns[i] to ns[j] avoiding v, accepting a
			// witness within (1+eps)*need.
			if b.witness(ns[i], ns[j], v, need*(1+b.eps)) {
				continue
			}
			count++
			if apply {
				b.adj[ns[i]] = append(b.adj[ns[i]], edge{to: ns[j], w: need})
				b.adj[ns[j]] = append(b.adj[ns[j]], edge{to: ns[i], w: need})
			}
		}
	}
	return count
}

// witness reports whether a path from s to t avoiding via, of length at
// most maxDist, exists among uncontracted vertices. Bounded effort:
// hitting the settle cap reports false (conservative).
func (b *builder) witness(s, t, via int32, maxDist float64) bool {
	b.heap.Reset()
	for _, u := range b.touched {
		b.dist[u] = sssp.Inf
	}
	b.touched = b.touched[:0]
	b.dist[s] = 0
	b.touched = append(b.touched, s)
	b.heap.Push(s, 0)
	settled := 0
	for b.heap.Len() > 0 && settled < b.limit {
		v, d := b.heap.Pop()
		if d > maxDist {
			return false
		}
		if v == t {
			return d <= maxDist
		}
		settled++
		for _, e := range b.adj[v] {
			if e.to == via || b.contracted[e.to] {
				continue
			}
			nd := d + e.w
			if nd < b.dist[e.to] && nd <= maxDist {
				if b.dist[e.to] == sssp.Inf {
					b.touched = append(b.touched, e.to)
				}
				b.dist[e.to] = nd
				b.heap.Push(e.to, nd)
			}
		}
	}
	if b.heap.Contains(t) && b.heap.Key(t) <= maxDist {
		return true
	}
	return false
}

// Shortcuts returns the number of shortcuts added during construction.
func (idx *Index) Shortcuts() int { return idx.nShort }

// Epsilon returns the build slack (0 for exact CH).
func (idx *Index) Epsilon() float64 { return idx.eps }

// IndexBytes reports the upward-graph size in bytes (Table IV metric):
// 12 bytes per upward edge (target + weight) plus the rank array.
func (idx *Index) IndexBytes() int64 {
	return int64(idx.nUpEdge)*12 + int64(idx.n)*4
}

// Query is a reusable query context over one Index. Not safe for
// concurrent use; create one per goroutine.
type Query struct {
	idx      *Index
	dist     []float64
	distB    []float64
	touched  []int32
	touchedB []int32
	heap     *pqueue.IndexedHeap
	heapB    *pqueue.IndexedHeap
}

// NewQuery returns a query context.
func (idx *Index) NewQuery() *Query {
	q := &Query{
		idx:   idx,
		dist:  make([]float64, idx.n),
		distB: make([]float64, idx.n),
		heap:  pqueue.New(idx.n),
		heapB: pqueue.New(idx.n),
	}
	for i := 0; i < idx.n; i++ {
		q.dist[i] = sssp.Inf
		q.distB[i] = sssp.Inf
	}
	return q
}

// Distance returns the hierarchy distance from s to t: exact for ε = 0,
// within the ACH error bound otherwise. It returns sssp.Inf when t is
// unreachable.
func (q *Query) Distance(s, t int32) float64 {
	if s == t {
		return 0
	}
	for _, v := range q.touched {
		q.dist[v] = sssp.Inf
	}
	for _, v := range q.touchedB {
		q.distB[v] = sssp.Inf
	}
	q.touched = q.touched[:0]
	q.touchedB = q.touchedB[:0]
	q.heap.Reset()
	q.heapB.Reset()

	q.dist[s] = 0
	q.touched = append(q.touched, s)
	q.heap.Push(s, 0)
	q.distB[t] = 0
	q.touchedB = append(q.touchedB, t)
	q.heapB.Push(t, 0)

	best := sssp.Inf
	for q.heap.Len() > 0 || q.heapB.Len() > 0 {
		var fKey, bKey float64 = sssp.Inf, sssp.Inf
		if q.heap.Len() > 0 {
			_, fKey = q.heap.Peek()
		}
		if q.heapB.Len() > 0 {
			_, bKey = q.heapB.Peek()
		}
		if fKey >= best && bKey >= best {
			break
		}
		if fKey <= bKey {
			v, d := q.heap.Pop()
			if db := q.distB[v]; db < sssp.Inf && d+db < best {
				best = d + db
			}
			for _, e := range q.idx.up[v] {
				nd := d + e.w
				if nd < q.dist[e.to] {
					if q.dist[e.to] == sssp.Inf {
						q.touched = append(q.touched, e.to)
					}
					q.dist[e.to] = nd
					q.heap.Push(e.to, nd)
				}
			}
		} else {
			v, d := q.heapB.Pop()
			if df := q.dist[v]; df < sssp.Inf && d+df < best {
				best = d + df
			}
			for _, e := range q.idx.up[v] {
				nd := d + e.w
				if nd < q.distB[e.to] {
					if q.distB[e.to] == sssp.Inf {
						q.touchedB = append(q.touchedB, e.to)
					}
					q.distB[e.to] = nd
					q.heapB.Push(e.to, nd)
				}
			}
		}
	}
	return best
}
