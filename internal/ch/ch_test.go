package ch

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/sssp"
)

func testGraph(t *testing.T, seed int64, rows, cols int) *graph.Graph {
	t.Helper()
	g, err := gen.Grid(rows, cols, gen.DefaultConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestExactCHMatchesDijkstra(t *testing.T) {
	g := testGraph(t, 1, 14, 14)
	idx, err := Build(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if idx.Epsilon() != 0 {
		t.Fatal("exact build should report epsilon 0")
	}
	q := idx.NewQuery()
	ws := sssp.NewWorkspace(g)
	rng := rand.New(rand.NewSource(2))
	n := g.NumVertices()
	for trial := 0; trial < 300; trial++ {
		s := int32(rng.Intn(n))
		u := int32(rng.Intn(n))
		want := ws.Distance(s, u)
		got := q.Distance(s, u)
		if math.Abs(want-got) > 1e-9 {
			t.Fatalf("(%d,%d): CH %v, Dijkstra %v", s, u, got, want)
		}
	}
}

func TestCHSelfAndRepeatedQueries(t *testing.T) {
	g := testGraph(t, 3, 8, 8)
	idx, err := Build(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	q := idx.NewQuery()
	if d := q.Distance(5, 5); d != 0 {
		t.Fatalf("self distance %v", d)
	}
	// Reuse across many queries must not corrupt state.
	ws := sssp.NewWorkspace(g)
	for trial := 0; trial < 100; trial++ {
		s := int32(trial % g.NumVertices())
		u := int32((trial*13 + 7) % g.NumVertices())
		want := ws.Distance(s, u)
		if got := q.Distance(s, u); math.Abs(want-got) > 1e-9 {
			t.Fatalf("reuse trial %d: %v vs %v", trial, got, want)
		}
	}
}

func TestCHShortcutsReported(t *testing.T) {
	g := testGraph(t, 4, 12, 12)
	idx, err := Build(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if idx.Shortcuts() <= 0 {
		t.Fatal("a grid contraction should add shortcuts")
	}
	if idx.IndexBytes() <= 0 {
		t.Fatal("IndexBytes must be positive")
	}
}

func TestACHWithinErrorBound(t *testing.T) {
	g := testGraph(t, 5, 14, 14)
	eps := 0.1
	idx, err := Build(g, Options{Epsilon: eps})
	if err != nil {
		t.Fatal(err)
	}
	q := idx.NewQuery()
	ws := sssp.NewWorkspace(g)
	rng := rand.New(rand.NewSource(6))
	n := g.NumVertices()
	var worst float64
	for trial := 0; trial < 300; trial++ {
		s := int32(rng.Intn(n))
		u := int32(rng.Intn(n))
		if s == u {
			continue
		}
		want := ws.Distance(s, u)
		got := q.Distance(s, u)
		if got < want-1e-9 {
			t.Fatalf("(%d,%d): ACH %v below exact %v", s, u, got, want)
		}
		if want > 0 {
			rel := (got - want) / want
			if rel > worst {
				worst = rel
			}
		}
	}
	// (1+eps) slack compounds along replaced paths; the contraction depth
	// on these small grids keeps observed error well under 3*eps.
	if worst > 3*eps {
		t.Fatalf("ACH worst relative error %v exceeds 3*eps", worst)
	}
}

func TestACHSmallerThanCH(t *testing.T) {
	g := testGraph(t, 7, 14, 14)
	exact, err := Build(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	approx, err := Build(g, Options{Epsilon: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if approx.Shortcuts() > exact.Shortcuts() {
		t.Fatalf("ACH shortcuts %d exceed CH %d", approx.Shortcuts(), exact.Shortcuts())
	}
}

func TestBuildValidation(t *testing.T) {
	g := testGraph(t, 8, 5, 5)
	if _, err := Build(g, Options{Epsilon: -1}); err == nil {
		t.Error("negative epsilon accepted")
	}
	empty := graph.NewBuilder(0, 0).Build()
	if _, err := Build(empty, Options{}); err == nil {
		t.Error("empty graph accepted")
	}
}

func TestCHUnreachable(t *testing.T) {
	b := graph.NewBuilder(4, 2)
	for i := 0; i < 4; i++ {
		b.AddVertex(float64(i), 0)
	}
	_ = b.AddEdge(0, 1, 1)
	_ = b.AddEdge(2, 3, 1)
	g := b.Build()
	idx, err := Build(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	q := idx.NewQuery()
	if d := q.Distance(0, 3); d != sssp.Inf {
		t.Fatalf("unreachable distance %v, want Inf", d)
	}
	if d := q.Distance(0, 1); math.Abs(d-1) > 1e-12 {
		t.Fatalf("reachable distance %v, want 1", d)
	}
}
