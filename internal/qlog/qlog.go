// Package qlog records a deterministic sample of serving traffic as a
// JSONL query log, built for the hot path: the serving goroutine pays
// one atomic counter tick per query and, for sampled queries, one
// non-blocking channel send. A background goroutine does all encoding
// and file IO. When the bounded queue is full the record is dropped
// and counted — a slow or dead disk degrades the log, never a request.
//
// Logs rotate atomically (via internal/fsx) once the active file
// exceeds a size budget, keeping one previous generation, so an
// unattended server cannot fill its disk. The recorded traffic is the
// input to cmd/rnereplay: re-run it against an exact oracle and diff
// error profiles across model versions.
package qlog

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"repro/internal/fsx"
)

// Record is one sampled query. Raw/Lo/Hi carry the guard provenance
// when the server runs in guard mode (Raw is the unclamped model
// estimate, [Lo, Hi] the certified interval) and are zero otherwise;
// HasBounds distinguishes the two so replay tooling does not mistake
// a missing interval for a degenerate one.
type Record struct {
	TimeUnixNano int64  `json:"ts"`
	RequestID    string `json:"request_id,omitempty"`
	Route        string `json:"route,omitempty"`
	S            int32  `json:"s"`
	T            int32  `json:"t"`
	Estimate     float64 `json:"estimate"`
	Raw          float64 `json:"raw,omitempty"`
	Lo           float64 `json:"lo,omitempty"`
	Hi           float64 `json:"hi,omitempty"`
	HasBounds    bool    `json:"has_bounds,omitempty"`
	// Clamp is "", "low" or "high": whether (and which way) the guard
	// corrected the raw estimate.
	Clamp     string  `json:"clamp,omitempty"`
	LatencyUS float64 `json:"latency_us"`
	// TraceID is the W3C trace ID of the request that served this query
	// when tracing is enabled, so recorded workloads can be joined
	// against the span JSONL offline.
	TraceID string `json:"trace_id,omitempty"`
	// Attempt marks queries served on a non-primary gateway leg
	// ("retry", "hedge", "shard-retry"), relayed via the X-Rne-Attempt
	// header — the difference between one slow query and one query that
	// cost the fleet two backends.
	Attempt string `json:"attempt,omitempty"`
	// Outcome is "" for fully-served queries and "partial" for pairs
	// whose batch was abandoned mid-loop (deadline/cancel): they were
	// computed, but the client never saw them.
	Outcome string `json:"outcome,omitempty"`
}

// Config tunes a Logger. Zero values select the documented defaults.
type Config struct {
	// Path is the JSONL file appended to (required). Rotation moves it
	// to Path+".1".
	Path string
	// SampleEvery records one query in N (deterministic: every Nth
	// Observe call is sampled). <= 1 records everything.
	SampleEvery int
	// QueueSize bounds the records buffered between the serving path
	// and the writer goroutine (default 1024). A full queue drops.
	QueueSize int
	// MaxBytes rotates the active file once it grows past this size
	// (default 64 MiB; negative disables rotation).
	MaxBytes int64
	// OnDrop and OnWrite, when non-nil, are invoked once per dropped
	// and per persisted record (e.g. to feed metrics counters). OnDrop
	// runs on the serving path and must be cheap.
	OnDrop  func()
	OnWrite func()
}

const (
	defaultQueueSize = 1024
	defaultMaxBytes  = 64 << 20
)

// Logger is the async sampled writer. All methods are safe for
// concurrent use.
type Logger struct {
	cfg   Config
	queue chan Record

	seen    atomic.Int64 // Observe calls, sampled or not
	sampled atomic.Int64
	dropped atomic.Int64
	written atomic.Int64

	// mu serialises sends against Close: a sampled Observe holds the
	// read side around its non-blocking send so Close can never close
	// the queue mid-send.
	mu        sync.RWMutex
	closed    bool
	closeOnce sync.Once
	done      chan struct{} // closed when the writer goroutine exits
}

// New opens (appending) the log file and starts the writer goroutine.
func New(cfg Config) (*Logger, error) {
	if cfg.Path == "" {
		return nil, fmt.Errorf("qlog: need a log file path")
	}
	if cfg.SampleEvery < 1 {
		cfg.SampleEvery = 1
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = defaultQueueSize
	}
	if cfg.MaxBytes == 0 {
		cfg.MaxBytes = defaultMaxBytes
	}
	f, err := os.OpenFile(cfg.Path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("qlog: opening log: %w", err)
	}
	size, err := f.Seek(0, 2)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("qlog: sizing log: %w", err)
	}
	l := &Logger{
		cfg:   cfg,
		queue: make(chan Record, cfg.QueueSize),
		done:  make(chan struct{}),
	}
	go l.run(f, size)
	return l, nil
}

// Observe offers one query to the sampler. It never blocks: unsampled
// queries cost one atomic increment, sampled queries one channel send
// that drops (and counts) when the queue is full. It reports whether
// the record was enqueued.
func (l *Logger) Observe(rec Record) bool {
	n := l.seen.Add(1)
	if n%int64(l.cfg.SampleEvery) != 0 {
		return false
	}
	l.sampled.Add(1)
	l.mu.RLock()
	if l.closed {
		l.mu.RUnlock()
		l.drop()
		return false
	}
	select {
	case l.queue <- rec:
		l.mu.RUnlock()
		return true
	default:
		l.mu.RUnlock()
		l.drop()
		return false
	}
}

func (l *Logger) drop() {
	l.dropped.Add(1)
	if l.cfg.OnDrop != nil {
		l.cfg.OnDrop()
	}
}

// Seen returns the number of Observe calls.
func (l *Logger) Seen() int64 { return l.seen.Load() }

// Sampled returns the number of queries the sampler selected.
func (l *Logger) Sampled() int64 { return l.sampled.Load() }

// Dropped returns the number of sampled records lost to a full queue.
func (l *Logger) Dropped() int64 { return l.dropped.Load() }

// Written returns the number of records persisted so far.
func (l *Logger) Written() int64 { return l.written.Load() }

// Close stops accepting records, flushes the queue to disk and closes
// the file. Records offered after Close are counted as drops.
func (l *Logger) Close() error {
	l.closeOnce.Do(func() {
		l.mu.Lock()
		l.closed = true
		close(l.queue)
		l.mu.Unlock()
	})
	<-l.done
	return nil
}

// run is the writer goroutine: drain the queue, encode, rotate.
func (l *Logger) run(f *os.File, size int64) {
	defer close(l.done)
	bw := bufio.NewWriter(f)
	enc := json.NewEncoder(bw)
	flushClose := func() {
		bw.Flush()
		f.Close()
	}
	for {
		rec, ok := <-l.queue
		if !ok {
			flushClose()
			return
		}
		if err := enc.Encode(rec); err != nil {
			// An encode failure (unlikely: Record is all scalars) loses
			// this record only.
			l.drop()
			continue
		}
		size += int64(approxRecordBytes)
		l.written.Add(1)
		if l.cfg.OnWrite != nil {
			l.cfg.OnWrite()
		}
		// Flush opportunistically when the queue is empty so tailers see
		// records promptly without a per-record syscall under load.
		if len(l.queue) == 0 {
			bw.Flush()
		}
		if l.cfg.MaxBytes > 0 && size >= l.cfg.MaxBytes {
			bw.Flush()
			f.Close()
			if err := fsx.Rotate(l.cfg.Path); err != nil {
				// Rotation failed (e.g. read-only dir): keep appending to
				// the old handle's path on best effort by reopening.
				_ = err
			}
			nf, err := os.OpenFile(l.cfg.Path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				// Disk gone: drain the rest of the queue as drops.
				for range l.queue {
					l.drop()
				}
				return
			}
			f, size = nf, 0
			bw = bufio.NewWriter(f)
			enc = json.NewEncoder(bw)
		}
	}
}

// approxRecordBytes estimates one encoded record's size for rotation
// accounting; exactness does not matter, only that growth is tracked.
const approxRecordBytes = 160
