package qlog

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func readRecords(t *testing.T, path string) []Record {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var out []Record
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var r Record
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		out = append(out, r)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestRoundTripAndSampling(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.jsonl")
	l, err := New(Config{Path: path, SampleEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	const total = 100
	for i := 0; i < total; i++ {
		l.Observe(Record{
			TimeUnixNano: int64(i),
			RequestID:    "req",
			Route:        "/distance",
			S:            int32(i),
			T:            int32(i + 1),
			Estimate:     float64(i) * 1.5,
			Raw:          float64(i),
			Lo:           float64(i) - 1,
			Hi:           float64(i) + 1,
			HasBounds:    true,
			Clamp:        "low",
			LatencyUS:    42,
		})
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if l.Seen() != total {
		t.Fatalf("seen %d, want %d", l.Seen(), total)
	}
	// Deterministic 1-in-10: exactly Observe calls 10, 20, ..., 100.
	if l.Sampled() != total/10 {
		t.Fatalf("sampled %d, want %d", l.Sampled(), total/10)
	}
	if l.Dropped() != 0 {
		t.Fatalf("dropped %d with an idle queue", l.Dropped())
	}
	recs := readRecords(t, path)
	if len(recs) != total/10 {
		t.Fatalf("persisted %d records, want %d", len(recs), total/10)
	}
	if l.Written() != int64(len(recs)) {
		t.Fatalf("Written %d but file has %d", l.Written(), len(recs))
	}
	// The Nth observation is sampled, so records carry S = 9, 19, ...
	for i, r := range recs {
		if want := int32(10*i + 9); r.S != want {
			t.Fatalf("record %d has S=%d, want %d (non-deterministic sampler?)", i, r.S, want)
		}
	}
	got := recs[0]
	if got.Route != "/distance" || got.RequestID != "req" || !got.HasBounds ||
		got.Clamp != "low" || got.LatencyUS != 42 || got.Estimate != 9*1.5 {
		t.Fatalf("round-trip mangled record: %+v", got)
	}
}

// Observe must never block, even with the writer wedged: drops are
// counted and the call returns promptly.
func TestSaturatedQueueNeverBlocks(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.jsonl")
	var drops int
	release := make(chan struct{})
	l, err := New(Config{
		Path:      path,
		QueueSize: 4,
		OnDrop:    func() { drops++ },
		// Wedge the writer: the first write blocks until released, so the
		// queue saturates deterministically.
		OnWrite: func() { <-release },
	})
	if err != nil {
		t.Fatal(err)
	}
	const total = 500
	start := time.Now()
	for i := 0; i < total; i++ {
		l.Observe(Record{S: int32(i)})
	}
	elapsed := time.Since(start)
	if elapsed > 2*time.Second {
		t.Fatalf("500 observes against a wedged writer took %v: Observe blocked", elapsed)
	}
	if l.Dropped() == 0 {
		t.Fatal("wedged writer produced no drops")
	}
	if drops != int(l.Dropped()) {
		t.Fatalf("OnDrop fired %d times, Dropped()=%d", drops, l.Dropped())
	}
	// Nothing lost silently: every sampled record was either queued
	// (written after release) or counted as dropped.
	close(release)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if l.Written()+l.Dropped() != l.Sampled() {
		t.Fatalf("written %d + dropped %d != sampled %d",
			l.Written(), l.Dropped(), l.Sampled())
	}
	if got := readRecords(t, path); int64(len(got)) != l.Written() {
		t.Fatalf("file has %d records, Written()=%d", len(got), l.Written())
	}
}

func TestRotation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.jsonl")
	// Each record is accounted ~160 bytes, so 3 records cross 400 bytes
	// and force at least one rotation.
	l, err := New(Config{Path: path, MaxBytes: 400})
	if err != nil {
		t.Fatal(err)
	}
	const total = 10
	for i := 0; i < total; i++ {
		if !l.Observe(Record{S: int32(i)}) {
			t.Fatalf("record %d not enqueued", i)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	cur := readRecords(t, path)
	prev := readRecords(t, path+".1")
	if len(prev) == 0 {
		t.Fatal("no rotated generation was produced")
	}
	// One generation may have been rotated away (only .1 is kept), but
	// the live file plus the previous generation must both parse and the
	// newest record must be in the live file.
	if len(cur) == 0 || cur[len(cur)-1].S != total-1 {
		t.Fatalf("live log lost the tail: %+v", cur)
	}
	if l.Written() != total {
		t.Fatalf("Written %d, want %d", l.Written(), total)
	}
}

func TestObserveAfterCloseDrops(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.jsonl")
	l, err := New(Config{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	l.Observe(Record{S: 1})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if l.Observe(Record{S: 2}) {
		t.Fatal("Observe accepted a record after Close")
	}
	if l.Dropped() != 1 {
		t.Fatalf("post-close drop not counted: %d", l.Dropped())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err) // Close is idempotent
	}
}

func TestConcurrentObserve(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.jsonl")
	l, err := New(Config{Path: path, SampleEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				l.Observe(Record{S: int32(w), T: int32(i)})
			}
		}(w)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if l.Seen() != 1600 {
		t.Fatalf("seen %d, want 1600", l.Seen())
	}
	// Atomic counter sampling: exactly floor(1600/3) selected regardless
	// of interleaving.
	if l.Sampled() != 1600/3 {
		t.Fatalf("sampled %d, want %d", l.Sampled(), 1600/3)
	}
	if l.Written()+l.Dropped() != l.Sampled() {
		t.Fatalf("written %d + dropped %d != sampled %d",
			l.Written(), l.Dropped(), l.Sampled())
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty path accepted")
	}
	if _, err := New(Config{Path: filepath.Join(t.TempDir(), "no", "such", "dir", "q.jsonl")}); err == nil {
		t.Fatal("unwritable path accepted")
	}
}
