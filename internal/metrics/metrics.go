// Package metrics computes the evaluation statistics of Section VII:
// absolute error e_abs, relative error e_rel, their distributions over
// query sets and over distance buckets, the cumulative error curves of
// Figure 15, and the F1 score used for range/kNN result quality
// (Figure 16).
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Pair is an evaluation query: a vertex pair and its exact distance.
type Pair struct {
	S, T int32
	Dist float64
}

// Estimator approximates the network distance of a vertex pair.
type Estimator interface {
	Estimate(s, t int32) float64
}

// EstimatorFunc adapts a function to the Estimator interface.
type EstimatorFunc func(s, t int32) float64

// Estimate calls f.
func (f EstimatorFunc) Estimate(s, t int32) float64 { return f(s, t) }

// ErrorStats summarizes estimation error over a query set.
type ErrorStats struct {
	Count int
	// MeanAbs and MeanRel are the means of e_abs and e_rel.
	MeanAbs, MeanRel float64
	// VarRel is the variance of e_rel (the paper tracks it during
	// fine-tuning).
	VarRel float64
	// P50Rel, P90Rel, P99Rel and MaxRel are quantiles of e_rel.
	P50Rel, P90Rel, P99Rel, MaxRel float64
}

// Evaluate runs the estimator over all pairs and aggregates errors.
// Pairs with non-positive exact distance are skipped (relative error is
// undefined there).
func Evaluate(e Estimator, pairs []Pair) ErrorStats {
	rels := make([]float64, 0, len(pairs))
	var sumAbs, sumRel float64
	for _, p := range pairs {
		if !(p.Dist > 0) {
			continue
		}
		got := e.Estimate(p.S, p.T)
		abs := math.Abs(got - p.Dist)
		rel := abs / p.Dist
		sumAbs += abs
		sumRel += rel
		rels = append(rels, rel)
	}
	st := ErrorStats{Count: len(rels)}
	if st.Count == 0 {
		return st
	}
	st.MeanAbs = sumAbs / float64(st.Count)
	st.MeanRel = sumRel / float64(st.Count)
	var ss float64
	for _, r := range rels {
		d := r - st.MeanRel
		ss += d * d
	}
	st.VarRel = ss / float64(st.Count)
	sort.Float64s(rels)
	st.P50Rel = quantile(rels, 0.50)
	st.P90Rel = quantile(rels, 0.90)
	st.P99Rel = quantile(rels, 0.99)
	st.MaxRel = rels[len(rels)-1]
	return st
}

// quantile returns the q-quantile of sorted xs by nearest-rank.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// String renders the stats in one line.
func (s ErrorStats) String() string {
	return fmt.Sprintf("n=%d meanRel=%.4f%% meanAbs=%.2f p50=%.4f%% p90=%.4f%% p99=%.4f%% max=%.4f%%",
		s.Count, s.MeanRel*100, s.MeanAbs, s.P50Rel*100, s.P90Rel*100, s.P99Rel*100, s.MaxRel*100)
}

// BucketStats is the per-distance-interval error summary used by the
// active fine-tuning loop (Section V-C) and Figure 17.
type BucketStats struct {
	// Lo and Hi bound the exact distances of the bucket.
	Lo, Hi float64
	Count  int
	// MeanAbs and MeanRel are the bucket's mean errors.
	MeanAbs, MeanRel float64
}

// EvaluateBuckets splits pairs into nBuckets equal-width distance
// intervals over [0, maxDist] and returns per-bucket errors. maxDist
// <= 0 uses the maximum pair distance.
func EvaluateBuckets(e Estimator, pairs []Pair, nBuckets int, maxDist float64) []BucketStats {
	if nBuckets < 1 {
		nBuckets = 1
	}
	if maxDist <= 0 {
		for _, p := range pairs {
			if p.Dist > maxDist {
				maxDist = p.Dist
			}
		}
	}
	if maxDist <= 0 {
		maxDist = 1
	}
	out := make([]BucketStats, nBuckets)
	width := maxDist / float64(nBuckets)
	for i := range out {
		out[i].Lo = float64(i) * width
		out[i].Hi = float64(i+1) * width
	}
	sumAbs := make([]float64, nBuckets)
	sumRel := make([]float64, nBuckets)
	for _, p := range pairs {
		if !(p.Dist > 0) {
			continue
		}
		b := int(p.Dist / width)
		if b >= nBuckets {
			b = nBuckets - 1
		}
		got := e.Estimate(p.S, p.T)
		abs := math.Abs(got - p.Dist)
		out[b].Count++
		sumAbs[b] += abs
		sumRel[b] += abs / p.Dist
	}
	for i := range out {
		if out[i].Count > 0 {
			out[i].MeanAbs = sumAbs[i] / float64(out[i].Count)
			out[i].MeanRel = sumRel[i] / float64(out[i].Count)
		}
	}
	return out
}

// CDF returns, for each threshold, the fraction of pairs whose relative
// error is at most that threshold (the Figure 15 curves).
func CDF(e Estimator, pairs []Pair, thresholds []float64) []float64 {
	out := make([]float64, len(thresholds))
	total := 0
	for _, p := range pairs {
		if !(p.Dist > 0) {
			continue
		}
		total++
		rel := math.Abs(e.Estimate(p.S, p.T)-p.Dist) / p.Dist
		for i, th := range thresholds {
			if rel <= th {
				out[i]++
			}
		}
	}
	if total == 0 {
		return out
	}
	for i := range out {
		out[i] /= float64(total)
	}
	return out
}

// F1 computes precision, recall and F1 of a retrieved id set against
// the exact answer set.
func F1(got, want []int32) (precision, recall, f1 float64) {
	if len(got) == 0 && len(want) == 0 {
		return 1, 1, 1
	}
	wantSet := make(map[int32]bool, len(want))
	for _, v := range want {
		wantSet[v] = true
	}
	var hits int
	for _, v := range got {
		if wantSet[v] {
			hits++
		}
	}
	if len(got) > 0 {
		precision = float64(hits) / float64(len(got))
	}
	if len(want) > 0 {
		recall = float64(hits) / float64(len(want))
	}
	if precision+recall > 0 {
		f1 = 2 * precision * recall / (precision + recall)
	}
	return precision, recall, f1
}
