package metrics

import (
	"math"
	"testing"
)

func TestEvaluatePerfectEstimator(t *testing.T) {
	pairs := []Pair{{0, 1, 10}, {1, 2, 20}, {2, 3, 5}}
	byPair := map[[2]int32]float64{{0, 1}: 10, {1, 2}: 20, {2, 3}: 5}
	est := EstimatorFunc(func(s, u int32) float64 { return byPair[[2]int32{s, u}] })
	st := Evaluate(est, pairs)
	if st.Count != 3 || st.MeanRel != 0 || st.MeanAbs != 0 || st.MaxRel != 0 {
		t.Fatalf("perfect estimator stats: %+v", st)
	}
}

func TestEvaluateKnownErrors(t *testing.T) {
	pairs := []Pair{{0, 1, 100}, {1, 2, 200}}
	est := EstimatorFunc(func(s, u int32) float64 {
		if s == 0 {
			return 110 // +10 abs, 10% rel
		}
		return 190 // -10 abs, 5% rel
	})
	st := Evaluate(est, pairs)
	if st.Count != 2 {
		t.Fatalf("Count = %d", st.Count)
	}
	if math.Abs(st.MeanAbs-10) > 1e-12 {
		t.Fatalf("MeanAbs = %v, want 10", st.MeanAbs)
	}
	if math.Abs(st.MeanRel-0.075) > 1e-12 {
		t.Fatalf("MeanRel = %v, want 0.075", st.MeanRel)
	}
	if math.Abs(st.MaxRel-0.10) > 1e-12 {
		t.Fatalf("MaxRel = %v, want 0.10", st.MaxRel)
	}
	wantVar := (0.025*0.025 + 0.025*0.025) / 2
	if math.Abs(st.VarRel-wantVar) > 1e-12 {
		t.Fatalf("VarRel = %v, want %v", st.VarRel, wantVar)
	}
}

func TestEvaluateSkipsNonPositive(t *testing.T) {
	pairs := []Pair{{0, 0, 0}, {0, 1, -5}, {1, 2, 10}}
	est := EstimatorFunc(func(s, u int32) float64 { return 10 })
	st := Evaluate(est, pairs)
	if st.Count != 1 {
		t.Fatalf("Count = %d, want 1", st.Count)
	}
}

func TestEvaluateEmpty(t *testing.T) {
	st := Evaluate(EstimatorFunc(func(s, u int32) float64 { return 0 }), nil)
	if st.Count != 0 || st.MeanRel != 0 {
		t.Fatalf("empty stats: %+v", st)
	}
	_ = st.String()
}

func TestEvaluateBuckets(t *testing.T) {
	pairs := []Pair{
		{0, 1, 5},   // bucket 0 of [0,100) with 10 buckets
		{0, 2, 15},  // bucket 1
		{0, 3, 95},  // bucket 9
		{0, 4, 100}, // exactly max: clamped into last bucket
	}
	est := EstimatorFunc(func(s, u int32) float64 {
		// constant +1 absolute error
		for _, p := range pairs {
			if p.S == s && p.T == u {
				return p.Dist + 1
			}
		}
		return 0
	})
	bs := EvaluateBuckets(est, pairs, 10, 100)
	if len(bs) != 10 {
		t.Fatalf("buckets = %d", len(bs))
	}
	if bs[0].Count != 1 || bs[1].Count != 1 || bs[9].Count != 2 {
		t.Fatalf("bucket counts: %+v", bs)
	}
	if math.Abs(bs[0].MeanAbs-1) > 1e-12 || math.Abs(bs[0].MeanRel-0.2) > 1e-12 {
		t.Fatalf("bucket 0: %+v", bs[0])
	}
	if bs[0].Lo != 0 || math.Abs(bs[0].Hi-10) > 1e-12 {
		t.Fatalf("bucket 0 bounds: %+v", bs[0])
	}
	// Auto max-dist path.
	bs2 := EvaluateBuckets(est, pairs, 4, 0)
	if len(bs2) != 4 {
		t.Fatalf("auto buckets = %d", len(bs2))
	}
}

func TestCDF(t *testing.T) {
	pairs := []Pair{{0, 1, 100}, {1, 2, 100}, {2, 3, 100}, {3, 4, 100}}
	errs := map[int32]float64{0: 0.00, 1: 0.01, 2: 0.04, 3: 0.20}
	est := EstimatorFunc(func(s, u int32) float64 { return 100 * (1 + errs[s]) })
	cdf := CDF(est, pairs, []float64{0.005, 0.02, 0.05, 0.5})
	want := []float64{0.25, 0.5, 0.75, 1.0}
	for i := range want {
		if math.Abs(cdf[i]-want[i]) > 1e-9 {
			t.Fatalf("cdf[%d] = %v, want %v", i, cdf[i], want[i])
		}
	}
	if got := CDF(est, nil, []float64{0.1}); got[0] != 0 {
		t.Fatalf("empty CDF = %v", got)
	}
}

func TestF1(t *testing.T) {
	p, r, f := F1([]int32{1, 2, 3}, []int32{2, 3, 4})
	if math.Abs(p-2.0/3) > 1e-12 || math.Abs(r-2.0/3) > 1e-12 || math.Abs(f-2.0/3) > 1e-12 {
		t.Fatalf("F1 = %v %v %v", p, r, f)
	}
	if p, r, f := F1(nil, nil); p != 1 || r != 1 || f != 1 {
		t.Fatal("empty-empty should be perfect")
	}
	if p, _, f := F1(nil, []int32{1}); p != 0 || f != 0 {
		t.Fatal("missing results should score 0")
	}
	if _, r, f := F1([]int32{1}, nil); r != 0 || f != 0 {
		t.Fatal("spurious results should score 0")
	}
}
