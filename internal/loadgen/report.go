package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/fsx"
)

// ReportSchema versions the BENCH_load.json layout; bump on
// incompatible changes so downstream tooling can refuse gracefully.
const ReportSchema = 1

// RouteStats is the client-observed latency of one (route, status
// class) series over a step's measured window. Quantiles come from
// the merged per-client log-bucketed histograms (interpolated, the
// same estimator the serving tier's /metrics uses); Max is exact.
type RouteStats struct {
	Route  string  `json:"route"`
	Class  string  `json:"class"`
	Count  int64   `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
	P999MS float64 `json:"p999_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// LagStats reports open-loop send lag: how far behind the intended
// arrival schedule the clients fell. Latency quantiles already charge
// this lag to the target (coordinated-omission accounting); the lag
// series shows how much of the tail was queue-wait before send.
type LagStats struct {
	P50MS float64 `json:"p50_ms"`
	P99MS float64 `json:"p99_ms"`
	MaxMS float64 `json:"max_ms"`
}

// HistJoin is a server-side histogram's windowed view over one step:
// observations during the step and their interpolated quantiles.
type HistJoin struct {
	Count int64   `json:"count"`
	P50MS float64 `json:"p50_ms"`
	P99MS float64 `json:"p99_ms"`
}

// TimelineSample is one scrape of a target during a step, projected
// onto the gauges that explain latency knees: runtime (goroutines,
// heap, GC cycles) and admission (limit, in-flight, cumulative sheds).
type TimelineSample struct {
	OffsetSeconds float64 `json:"offset_s"`
	Goroutines    float64 `json:"goroutines"`
	HeapBytes     float64 `json:"heap_bytes"`
	GCCycles      float64 `json:"gc_cycles"`
	AdmitLimit    float64 `json:"admit_limit"`
	InFlight      float64 `json:"in_flight"`
	Sheds         float64 `json:"sheds"`
}

// ServerJoin is the join of one scrape target with one step: counter
// deltas across the step window, closing gauge values, windowed
// server-side latency and GC-pause quantiles, and the gauge timeline.
type ServerJoin struct {
	Name string `json:"name"`
	URL  string `json:"url"`
	// ScrapeError, when set, explains an empty join (target without
	// /metrics, or unreachable). The step's client stats still stand.
	ScrapeError   string             `json:"scrape_error,omitempty"`
	CountersDelta map[string]float64 `json:"counters_delta,omitempty"`
	Gauges        map[string]float64 `json:"gauges,omitempty"`
	HTTPLatency   *HistJoin          `json:"http_latency,omitempty"`
	GCPause       *HistJoin          `json:"gc_pause,omitempty"`
	Timeline      []TimelineSample   `json:"timeline,omitempty"`
}

// ProfileCapture records one pprof capture attempted during a step.
type ProfileCapture struct {
	Kind  string `json:"kind"` // "cpu" or "heap"
	Path  string `json:"path"`
	Bytes int64  `json:"bytes,omitempty"`
	Error string `json:"error,omitempty"`
}

// StepResult is one load step: offered vs achieved rate, per-route
// client latency, open-loop honesty accounting, and the server join.
type StepResult struct {
	Label           string  `json:"label"`
	Mode            string  `json:"mode"` // "closed" or "open"
	Clients         int     `json:"clients"`
	OfferedQPS      float64 `json:"offered_qps,omitempty"`
	AchievedQPS     float64 `json:"achieved_qps"`
	DurationSeconds float64 `json:"duration_s"`
	WarmupSeconds   float64 `json:"warmup_s"`
	Sent            int64   `json:"sent"`
	Measured        int64   `json:"measured"`
	// UnsentArrivals counts open-loop arrivals whose intended time fell
	// inside the step but which no client got to send before the step
	// ended — offered load the target never saw, reported instead of
	// silently folded into a rosier achieved rate.
	UnsentArrivals int64            `json:"unsent_arrivals,omitempty"`
	Routes         []RouteStats     `json:"routes"`
	SendLag        *LagStats        `json:"send_lag,omitempty"`
	Servers        []ServerJoin     `json:"servers,omitempty"`
	Profiles       []ProfileCapture `json:"profiles,omitempty"`
}

// Run is one invocation of the harness against one target: the
// workload shape plus every step's result.
type Run struct {
	Name      string            `json:"name,omitempty"`
	Target    string            `json:"target"`
	Tags      map[string]string `json:"tags,omitempty"`
	Mix       map[string]int    `json:"mix"`
	BatchSize int               `json:"batch_size"`
	KNNK      int               `json:"knn_k"`
	Vertices  int               `json:"vertices"`
	Seed      int64             `json:"seed"`
	StartUnix int64             `json:"start_unix,omitempty"`
	Steps     []StepResult      `json:"steps"`
}

// Report is the BENCH_load.json root: an append-friendly collection
// of runs so one file can hold a whole sweep (single replica vs
// gateway, guard on vs off) for side-by-side comparison.
type Report struct {
	Experiment string `json:"experiment"` // always "load"
	Schema     int    `json:"schema"`
	Runs       []Run  `json:"runs"`
}

// NewReport returns an empty load report.
func NewReport() *Report { return &Report{Experiment: "load", Schema: ReportSchema} }

// LoadReport reads an existing report for appending; a missing file
// yields a fresh empty report (first run of a sweep).
func LoadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return NewReport(), nil
	}
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("loadgen: parsing %s: %w", path, err)
	}
	if r.Experiment != "load" {
		return nil, fmt.Errorf("loadgen: %s is a %q report, not a load report", path, r.Experiment)
	}
	if r.Schema > ReportSchema {
		return nil, fmt.Errorf("loadgen: %s has schema %d, newer than this binary's %d", path, r.Schema, ReportSchema)
	}
	return &r, nil
}

// AppendRun stamps and appends one run.
func (r *Report) AppendRun(run Run) {
	if run.StartUnix == 0 {
		run.StartUnix = time.Now().Unix()
	}
	r.Runs = append(r.Runs, run)
}

// Write atomically persists the report as indented JSON.
func (r *Report) Write(path string) error {
	return fsx.WriteAtomic(path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(r)
	})
}
