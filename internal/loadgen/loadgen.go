// Package loadgen is the saturation-grade load harness behind
// cmd/rneload: a closed-loop (N clients at maximum throughput) and
// open-loop (target QPS on a paced arrival schedule) generator for the
// serving tier's /distance, /batch and /knn routes.
//
// Two decisions make its numbers honest where naive load scripts lie:
//
//   - Open-loop latency is measured from each request's *intended*
//     arrival time, not from when a backed-up client finally got to
//     send it. A saturated target therefore shows its real queueing
//     delay instead of the coordinated-omission artifact where every
//     sample conveniently waits for the previous one to finish. The
//     send lag (send time minus intent) is reported separately, and
//     arrivals the run ended before sending are counted, never
//     silently dropped.
//
//   - While clients run, the harness scrapes the target fleet's
//     /metrics and joins server-side counters (admission limit, sheds,
//     retries, hedges, GC cycles, goroutine/heap gauges) with the
//     client-observed latency of the same window, so a p99 knee is
//     attributable to admission, GC or kernel time rather than
//     guessed. Optional pprof capture from the operator listener adds
//     CPU/heap profiles at configurable points in a step.
//
// Per-client latency is captured in shared telemetry histograms
// (log-bucketed, interpolated quantiles — the same estimator the
// serving tier's /metrics exports) and merged associatively, so fleet
// quantiles do not depend on client fold order.
package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// LatencyBuckets is the harness's log-bucketed latency layout: 10µs to
// 10s at five buckets per decade, i.e. quantile estimates good to one
// ~1.6× bucket ratio across six decades.
var LatencyBuckets = telemetry.LogBuckets(1e-5, 10, 5)

// Route is one serving endpoint the generator can exercise.
type Route string

const (
	RouteDistance Route = "distance"
	RouteBatch    Route = "batch"
	RouteKNN      Route = "knn"
)

// Mix weights the route mix of a workload. Zero-weight routes are
// never issued; an all-zero mix defaults to distance-only.
type Mix struct {
	Distance int `json:"distance"`
	Batch    int `json:"batch"`
	KNN      int `json:"knn"`
}

func (m Mix) total() int { return m.Distance + m.Batch + m.KNN }

func (m Mix) withDefault() Mix {
	if m.total() <= 0 {
		return Mix{Distance: 1}
	}
	return m
}

// pick draws one route with probability proportional to its weight.
func (m Mix) pick(rng *rand.Rand) Route {
	n := rng.Intn(m.total())
	if n < m.Distance {
		return RouteDistance
	}
	if n < m.Distance+m.Batch {
		return RouteBatch
	}
	return RouteKNN
}

// ParseMix parses "distance=8,batch=1,knn=1" (missing routes weigh 0).
func ParseMix(s string) (Mix, error) {
	var m Mix
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return m, fmt.Errorf("loadgen: mix entry %q is not route=weight", part)
		}
		w, err := strconv.Atoi(v)
		if err != nil || w < 0 {
			return m, fmt.Errorf("loadgen: mix weight %q must be a non-negative integer", v)
		}
		switch Route(k) {
		case RouteDistance:
			m.Distance = w
		case RouteBatch:
			m.Batch = w
		case RouteKNN:
			m.KNN = w
		default:
			return m, fmt.Errorf("loadgen: unknown route %q (want distance, batch or knn)", k)
		}
	}
	if m.total() <= 0 {
		return m, fmt.Errorf("loadgen: mix %q has no positive weight", s)
	}
	return m, nil
}

// Step is one load level of a run: Clients concurrent workers for
// Duration, either closed-loop (QPS == 0: every worker issues
// back-to-back requests at maximum throughput) or open-loop (QPS > 0:
// requests follow a paced arrival schedule shared by all workers).
// Observations whose intended start falls inside the first Warmup are
// excluded from the measured window.
type Step struct {
	Clients  int           `json:"clients"`
	QPS      float64       `json:"qps"`
	Duration time.Duration `json:"-"`
	Warmup   time.Duration `json:"-"`
}

// Label names the step in reports and profile file names.
func (s Step) Label() string {
	if s.QPS > 0 {
		return fmt.Sprintf("c%d-q%g", s.Clients, s.QPS)
	}
	return fmt.Sprintf("c%d-closed", s.Clients)
}

func (s Step) validate() error {
	if s.Clients < 1 {
		return fmt.Errorf("loadgen: step needs at least one client")
	}
	if s.Duration <= 0 {
		return fmt.Errorf("loadgen: step duration must be positive")
	}
	if s.Warmup < 0 || s.Warmup >= s.Duration {
		return fmt.Errorf("loadgen: warmup %v must be within [0, duration %v)", s.Warmup, s.Duration)
	}
	if s.QPS < 0 {
		return fmt.Errorf("loadgen: QPS must be >= 0 (0 selects closed loop)")
	}
	return nil
}

// ParseSteps parses a semicolon-separated step list, each step a
// comma-separated c=<clients>,qps=<qps>,d=<duration>,w=<warmup> block,
// e.g. "c=4,qps=0,d=2s,w=500ms;c=8,qps=200,d=2s".
func ParseSteps(s string, defaultWarmup time.Duration) ([]Step, error) {
	var steps []Step
	for _, block := range strings.Split(s, ";") {
		block = strings.TrimSpace(block)
		if block == "" {
			continue
		}
		st := Step{Clients: 1, Warmup: defaultWarmup}
		for _, part := range strings.Split(block, ",") {
			k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
			if !ok {
				return nil, fmt.Errorf("loadgen: step entry %q is not key=value", part)
			}
			var err error
			switch k {
			case "c":
				st.Clients, err = strconv.Atoi(v)
			case "qps":
				st.QPS, err = strconv.ParseFloat(v, 64)
			case "d":
				st.Duration, err = time.ParseDuration(v)
			case "w":
				st.Warmup, err = time.ParseDuration(v)
			default:
				err = fmt.Errorf("unknown key %q (want c, qps, d or w)", k)
			}
			if err != nil {
				return nil, fmt.Errorf("loadgen: step entry %q: %v", part, err)
			}
		}
		if err := st.validate(); err != nil {
			return nil, fmt.Errorf("loadgen: step %q: %v", block, err)
		}
		steps = append(steps, st)
	}
	if len(steps) == 0 {
		return nil, fmt.Errorf("loadgen: no steps in %q", s)
	}
	return steps, nil
}

// ScrapeTarget is one /metrics endpoint joined against client latency.
type ScrapeTarget struct {
	Name string `json:"name"`
	URL  string `json:"url"`
}

// Config describes one run of the harness against one target.
type Config struct {
	// Target is the base URL queried by the workers (replica or
	// gateway). Required.
	Target string
	// Mix weights the route mix (default distance-only). Targets that
	// lack a route (the gateway serves no /knn) should weight it 0.
	Mix Mix
	// BatchSize is the pair count of each /batch request (default 32).
	BatchSize int
	// KNNK is the k of each /knn request (default 8).
	KNNK int
	// Vertices bounds the random vertex ids. 0 discovers the count
	// from the target's /healthz model metadata.
	Vertices int
	// Seed makes the workload deterministic per client.
	Seed int64
	// Scrapes lists the /metrics endpoints whose counters are joined
	// with each step (default: the Target itself, named "target").
	// Empty URL entries are skipped.
	Scrapes []ScrapeTarget
	// ScrapeInterval paces the timeline sampling (default 500ms).
	ScrapeInterval time.Duration
	// DebugURL is the target's operator listener (rneserver/rnegate
	// -debug-addr); when set with ProfileCPUSeconds/ProfileHeap, pprof
	// profiles are captured during each step.
	DebugURL string
	// ProfileCPUSeconds captures an N-second CPU profile starting at
	// the end of each step's warmup (0 disables).
	ProfileCPUSeconds int
	// ProfileHeap captures a heap profile at the end of each step.
	ProfileHeap bool
	// ProfileDir receives captured profiles (default "load-profiles").
	ProfileDir string
	// RequestTimeout bounds each request (default 10s).
	RequestTimeout time.Duration
	// Transport overrides the HTTP transport (tests).
	Transport http.RoundTripper
	// Logf receives progress lines (nil silences).
	Logf func(format string, args ...any)
}

// Runner executes load steps against one target.
type Runner struct {
	cfg    Config
	client *http.Client

	// onObserve, when set (tests), receives every completed request's
	// observation.
	onObserve func(obs)
}

// New validates cfg, fills defaults and discovers the vertex count
// when cfg.Vertices is 0.
func New(ctx context.Context, cfg Config) (*Runner, error) {
	if cfg.Target == "" {
		return nil, fmt.Errorf("loadgen: Target is required")
	}
	if _, err := url.Parse(cfg.Target); err != nil {
		return nil, fmt.Errorf("loadgen: target URL: %v", err)
	}
	cfg.Target = strings.TrimRight(cfg.Target, "/")
	cfg.Mix = cfg.Mix.withDefault()
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.KNNK <= 0 {
		cfg.KNNK = 8
	}
	if cfg.ScrapeInterval <= 0 {
		cfg.ScrapeInterval = 500 * time.Millisecond
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 10 * time.Second
	}
	if cfg.ProfileDir == "" {
		cfg.ProfileDir = "load-profiles"
	}
	if len(cfg.Scrapes) == 0 {
		cfg.Scrapes = []ScrapeTarget{{Name: "target", URL: cfg.Target}}
	}
	var scrapes []ScrapeTarget
	for _, sc := range cfg.Scrapes {
		if sc.URL == "" {
			continue
		}
		sc.URL = strings.TrimRight(sc.URL, "/")
		if sc.Name == "" {
			sc.Name = sc.URL
		}
		scrapes = append(scrapes, sc)
	}
	cfg.Scrapes = scrapes
	r := &Runner{
		cfg: cfg,
		client: &http.Client{
			Transport: cfg.Transport,
			Timeout:   cfg.RequestTimeout,
		},
	}
	if cfg.Vertices <= 0 {
		n, err := r.discoverVertices(ctx)
		if err != nil {
			return nil, err
		}
		r.cfg.Vertices = n
		r.logf("discovered %d vertices from %s/healthz", n, cfg.Target)
	}
	return r, nil
}

// Vertices reports the vertex-id bound the workload draws from.
func (r *Runner) Vertices() int { return r.cfg.Vertices }

func (r *Runner) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}

// discoverVertices reads the vertex count from the target's /healthz
// model metadata. Gateways don't carry model metadata; point the
// harness at a replica or pass Config.Vertices explicitly.
func (r *Runner) discoverVertices(ctx context.Context) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.cfg.Target+"/healthz", nil)
	if err != nil {
		return 0, err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return 0, fmt.Errorf("loadgen: probing %s/healthz: %w", r.cfg.Target, err)
	}
	defer resp.Body.Close()
	var meta struct {
		Vertices int `json:"vertices"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&meta); err != nil {
		return 0, fmt.Errorf("loadgen: decoding %s/healthz: %w", r.cfg.Target, err)
	}
	if meta.Vertices <= 0 {
		return 0, fmt.Errorf("loadgen: %s/healthz reports no vertex count (a gateway?); pass the vertex count explicitly", r.cfg.Target)
	}
	return meta.Vertices, nil
}

// obs is one completed request as the workers see it.
type obs struct {
	route   Route
	class   string        // "2xx".."5xx" or "err" (transport failure)
	latency time.Duration // completion minus intended arrival
	lag     time.Duration // send start minus intended arrival (open loop)
	warm    bool          // inside the measured (post-warmup) window
}

// statKey indexes one (route, status class) latency series.
type statKey struct {
	route Route
	class string
}

// collector accumulates one worker's observations; workers never share
// a collector, so observation is lock-free and merging happens once at
// step end via associative histogram merges.
type collector struct {
	hists map[statKey]*telemetry.Histogram
	maxNS map[statKey]int64
	lag   *telemetry.Histogram
	lagNS int64

	total    int64 // completed requests, warmup included
	measured int64 // completed requests inside the measured window
}

func newCollector() *collector {
	return &collector{
		hists: make(map[statKey]*telemetry.Histogram),
		maxNS: make(map[statKey]int64),
		lag:   telemetry.NewHistogram(LatencyBuckets),
	}
}

func (c *collector) observe(o obs, openLoop bool) {
	c.total++
	if !o.warm {
		return
	}
	c.measured++
	k := statKey{o.route, o.class}
	h := c.hists[k]
	if h == nil {
		h = telemetry.NewHistogram(LatencyBuckets)
		c.hists[k] = h
	}
	h.ObserveDuration(o.latency)
	if ns := o.latency.Nanoseconds(); ns > c.maxNS[k] {
		c.maxNS[k] = ns
	}
	if openLoop {
		c.lag.ObserveDuration(o.lag)
		if ns := o.lag.Nanoseconds(); ns > c.lagNS {
			c.lagNS = ns
		}
	}
}

// RunStep executes one load step and returns its merged result.
func (r *Runner) RunStep(ctx context.Context, step Step) (StepResult, error) {
	if err := step.validate(); err != nil {
		return StepResult{}, err
	}
	label := step.Label()
	r.logf("step %s: %d clients, %s for %v (warmup %v)", label, step.Clients,
		describeLoop(step), step.Duration, step.Warmup)

	join := r.startJoin(ctx)
	start := time.Now()
	warmEnd := start.Add(step.Warmup)
	deadline := start.Add(step.Duration)

	var profiles []ProfileCapture
	var profWG sync.WaitGroup
	r.startProfiles(ctx, label, warmEnd, deadline, &profiles, &profWG)

	openLoop := step.QPS > 0
	var interval time.Duration
	if openLoop {
		interval = time.Duration(float64(time.Second) / step.QPS)
		if interval <= 0 {
			return StepResult{}, fmt.Errorf("loadgen: QPS %g too high to pace", step.QPS)
		}
	}

	var arrivals atomic.Int64 // next open-loop arrival index
	cols := make([]*collector, step.Clients)
	var wg sync.WaitGroup
	for c := 0; c < step.Clients; c++ {
		col := newCollector()
		cols[c] = col
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(r.cfg.Seed + int64(worker)*7919 + 1))
			for ctx.Err() == nil {
				var intent time.Time
				if openLoop {
					i := arrivals.Add(1) - 1
					intent = start.Add(time.Duration(i) * interval)
					if !intent.Before(deadline) {
						return
					}
					now := time.Now()
					if !now.Before(deadline) {
						// The schedule fell behind the wall clock past the
						// step end: the remaining arrivals are counted as
						// unsent instead of stretching the step.
						arrivals.Add(-1)
						return
					}
					if wait := intent.Sub(now); wait > 0 {
						select {
						case <-ctx.Done():
							return
						case <-time.After(wait):
						}
					}
				} else {
					intent = time.Now()
					if !intent.Before(deadline) {
						return
					}
				}
				sendStart := time.Now()
				route := r.cfg.Mix.pick(rng)
				class := r.do(ctx, route, rng)
				o := obs{
					route:   route,
					class:   class,
					latency: time.Since(intent),
					lag:     sendStart.Sub(intent),
					warm:    !intent.Before(warmEnd),
				}
				col.observe(o, openLoop)
				if r.onObserve != nil {
					r.onObserve(o)
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	profWG.Wait()
	servers := join.stop()

	res := r.mergeStep(step, label, cols, elapsed, openLoop)
	res.Servers = servers
	res.Profiles = profiles
	if openLoop {
		intended := int64(step.Duration / interval)
		if sent := arrivals.Load(); sent < intended {
			res.UnsentArrivals = intended - sent
		}
	}
	r.logf("step %s done: %d measured, achieved %.1f qps", label, res.Measured, res.AchievedQPS)
	return res, ctx.Err()
}

func describeLoop(s Step) string {
	if s.QPS > 0 {
		return fmt.Sprintf("open loop at %g qps", s.QPS)
	}
	return "closed loop"
}

// mergeStep folds the per-client collectors into one StepResult. The
// histogram merge is associative (telemetry.HistSnapshot.Merge), so
// the result is independent of client order.
func (r *Runner) mergeStep(step Step, label string, cols []*collector, elapsed time.Duration, openLoop bool) StepResult {
	res := StepResult{
		Label:           label,
		Clients:         step.Clients,
		Mode:            "closed",
		DurationSeconds: elapsed.Seconds(),
		WarmupSeconds:   step.Warmup.Seconds(),
	}
	if openLoop {
		res.Mode = "open"
		res.OfferedQPS = step.QPS
	}

	merged := make(map[statKey]telemetry.HistSnapshot)
	maxNS := make(map[statKey]int64)
	var lagSnap telemetry.HistSnapshot
	var lagMax int64
	for _, col := range cols {
		res.Sent += col.total
		res.Measured += col.measured
		for k, h := range col.hists {
			s := h.Snapshot()
			if prev, ok := merged[k]; ok {
				m, err := prev.Merge(s)
				if err != nil {
					// Unreachable: every collector uses LatencyBuckets.
					panic(err)
				}
				s = m
			}
			merged[k] = s
			if col.maxNS[k] > maxNS[k] {
				maxNS[k] = col.maxNS[k]
			}
		}
		if openLoop {
			s := col.lag.Snapshot()
			if lagSnap.Bounds == nil {
				lagSnap = s
			} else if m, err := lagSnap.Merge(s); err == nil {
				lagSnap = m
			}
			if col.lagNS > lagMax {
				lagMax = col.lagNS
			}
		}
	}

	measuredWindow := elapsed - step.Warmup
	if measuredWindow > 0 {
		res.AchievedQPS = float64(res.Measured) / measuredWindow.Seconds()
	}

	keys := make([]statKey, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].route != keys[j].route {
			return keys[i].route < keys[j].route
		}
		return keys[i].class < keys[j].class
	})
	for _, k := range keys {
		s := merged[k]
		rs := RouteStats{
			Route: string(k.route),
			Class: k.class,
			Count: s.Count,
			MaxMS: float64(maxNS[k]) / 1e6,
		}
		if s.Count > 0 {
			rs.MeanMS = s.Sum / float64(s.Count) * 1e3
			rs.P50MS = s.Quantile(0.50) * 1e3
			rs.P90MS = s.Quantile(0.90) * 1e3
			rs.P99MS = s.Quantile(0.99) * 1e3
			rs.P999MS = s.Quantile(0.999) * 1e3
		}
		res.Routes = append(res.Routes, rs)
	}
	if openLoop && lagSnap.Count > 0 {
		res.SendLag = &LagStats{
			P50MS: lagSnap.Quantile(0.50) * 1e3,
			P99MS: lagSnap.Quantile(0.99) * 1e3,
			MaxMS: float64(lagMax) / 1e6,
		}
	}
	return res
}

// Run executes every step in order and assembles the Run block.
func (r *Runner) Run(ctx context.Context, steps []Step, tags map[string]string) (Run, error) {
	run := Run{
		Target:    r.cfg.Target,
		Tags:      tags,
		Mix:       map[string]int{"distance": r.cfg.Mix.Distance, "batch": r.cfg.Mix.Batch, "knn": r.cfg.Mix.KNN},
		BatchSize: r.cfg.BatchSize,
		KNNK:      r.cfg.KNNK,
		Vertices:  r.cfg.Vertices,
		Seed:      r.cfg.Seed,
	}
	for _, step := range steps {
		res, err := r.RunStep(ctx, step)
		if err != nil {
			return run, err
		}
		run.Steps = append(run.Steps, res)
	}
	return run, nil
}

// do issues one request of the given route and classifies the outcome.
func (r *Runner) do(ctx context.Context, route Route, rng *rand.Rand) string {
	n := int32(r.cfg.Vertices)
	var req *http.Request
	var err error
	switch route {
	case RouteBatch:
		var b strings.Builder
		b.WriteString(`{"pairs":[`)
		for i := 0; i < r.cfg.BatchSize; i++ {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "[%d,%d]", rng.Int31n(n), rng.Int31n(n))
		}
		b.WriteString("]}")
		req, err = http.NewRequestWithContext(ctx, http.MethodPost,
			r.cfg.Target+"/batch", strings.NewReader(b.String()))
		if req != nil {
			req.Header.Set("Content-Type", "application/json")
		}
	case RouteKNN:
		req, err = http.NewRequestWithContext(ctx, http.MethodGet,
			fmt.Sprintf("%s/knn?s=%d&k=%d", r.cfg.Target, rng.Int31n(n), r.cfg.KNNK), nil)
	default:
		req, err = http.NewRequestWithContext(ctx, http.MethodGet,
			fmt.Sprintf("%s/distance?s=%d&t=%d", r.cfg.Target, rng.Int31n(n), rng.Int31n(n)), nil)
	}
	if err != nil {
		return "err"
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return "err"
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	class := resp.StatusCode / 100
	if class < 1 || class > 5 {
		return "err"
	}
	return fmt.Sprintf("%dxx", class)
}
