package loadgen

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Metric names the joiner reads from the target's exposition. These
// are the serving tier's own names (resilience.Stats, the adaptive
// limiter, telemetry.RegisterRuntimeMetrics); the joiner degrades to
// zero series when a target does not export one of them.
const (
	metricAdmitLimit = "rne_admit_limit"
	metricInFlight   = "rne_http_in_flight_requests"
	metricShed       = "rne_http_requests_shed_total"
	metricAdmitShed  = "rne_admit_shed_total"
	metricHTTPLat    = "rne_http_request_duration_seconds"
)

// joinSession scrapes every configured target while a step's clients
// run: one scrape before, a timeline at ScrapeInterval, one after.
// stop() blocks until the final scrape and returns the joined view.
type joinSession struct {
	runner *Runner
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu    sync.Mutex
	joins []ServerJoin
}

// startJoin begins scraping the configured targets for one step.
func (r *Runner) startJoin(ctx context.Context) *joinSession {
	ctx, cancel := context.WithCancel(ctx)
	js := &joinSession{runner: r, cancel: cancel}
	start := time.Now()
	for _, sc := range r.cfg.Scrapes {
		js.wg.Add(1)
		go func(sc ScrapeTarget) {
			defer js.wg.Done()
			j := r.joinOne(ctx, sc, start)
			js.mu.Lock()
			js.joins = append(js.joins, j)
			js.mu.Unlock()
		}(sc)
	}
	return js
}

// stop ends the timeline, waits for the final scrapes and returns the
// per-target joins in configuration order.
func (js *joinSession) stop() []ServerJoin {
	js.cancel()
	js.wg.Wait()
	js.mu.Lock()
	defer js.mu.Unlock()
	order := make(map[string]int, len(js.runner.cfg.Scrapes))
	for i, sc := range js.runner.cfg.Scrapes {
		order[sc.Name] = i
	}
	sort.Slice(js.joins, func(a, b int) bool { return order[js.joins[a].Name] < order[js.joins[b].Name] })
	return js.joins
}

// joinOne runs the scrape loop for one target until ctx is canceled,
// then takes the closing scrape and computes the deltas.
func (r *Runner) joinOne(ctx context.Context, sc ScrapeTarget, start time.Time) ServerJoin {
	j := ServerJoin{Name: sc.Name, URL: sc.URL}
	pre, err := r.scrape(ctx, sc.URL)
	if err != nil {
		j.ScrapeError = err.Error()
		return j
	}
	tick := time.NewTicker(r.cfg.ScrapeInterval)
	defer tick.Stop()
	for done := false; !done; {
		select {
		case <-ctx.Done():
			done = true
		case <-tick.C:
			if samples, err := r.scrape(ctx, sc.URL); err == nil {
				j.Timeline = append(j.Timeline, timelineSample(samples, time.Since(start)))
			}
		}
	}
	// The step is over but the closing scrape must still happen: use a
	// detached context so cancelation of the step doesn't truncate it.
	post, err := r.scrapeDetached(sc.URL)
	if err != nil {
		j.ScrapeError = err.Error()
		return j
	}
	j.Timeline = append(j.Timeline, timelineSample(post, time.Since(start)))
	j.CountersDelta = countersDelta(pre, post)
	j.Gauges = map[string]float64{
		metricAdmitLimit:           post[metricAdmitLimit],
		metricInFlight:             post[metricInFlight],
		telemetry.MetricGoroutines: post[telemetry.MetricGoroutines],
		telemetry.MetricHeapBytes:  post[telemetry.MetricHeapBytes],
	}
	if hj, ok := histogramDelta(pre, post, metricHTTPLat); ok {
		j.HTTPLatency = &hj
	}
	if hj, ok := histogramDelta(pre, post, telemetry.MetricGCPauses); ok {
		j.GCPause = &hj
	}
	return j
}

func (r *Runner) scrape(ctx context.Context, base string) (map[string]float64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("loadgen: scraping %s/metrics: status %d", base, resp.StatusCode)
	}
	return telemetry.ParseExposition(resp.Body)
}

func (r *Runner) scrapeDetached(base string) (map[string]float64, error) {
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.RequestTimeout)
	defer cancel()
	return r.scrape(ctx, base)
}

// timelineSample projects one scrape onto the compact timeline row the
// report keeps: runtime and admission gauges plus the cumulative shed
// count, enough to see GC pressure or admission clamping move in step
// with a latency knee.
func timelineSample(samples map[string]float64, offset time.Duration) TimelineSample {
	ts := TimelineSample{
		OffsetSeconds: offset.Seconds(),
		Goroutines:    samples[telemetry.MetricGoroutines],
		HeapBytes:     samples[telemetry.MetricHeapBytes],
		GCCycles:      samples[telemetry.MetricGCCycles],
		AdmitLimit:    samples[metricAdmitLimit],
		InFlight:      samples[metricInFlight],
		Sheds:         samples[metricShed],
	}
	for k, v := range samples {
		if strings.HasPrefix(k, metricAdmitShed) {
			ts.Sheds += v
		}
	}
	return ts
}

// countersDelta returns post-minus-pre for every rne_*_total series
// that moved during the step, keyed exactly as exposed (labels
// included). Unmoved series are dropped to keep reports readable;
// negative deltas (a target restart mid-step) are kept as-is so the
// restart is visible rather than papered over.
func countersDelta(pre, post map[string]float64) map[string]float64 {
	out := make(map[string]float64)
	for k, v := range post {
		name := k
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		if !strings.HasPrefix(name, "rne_") || !strings.HasSuffix(name, "_total") {
			continue
		}
		if d := v - pre[k]; d != 0 {
			out[k] = d
		}
	}
	return out
}

// histogramDelta computes the windowed quantiles of one server-side
// histogram across the step: reassemble pre and post snapshots from
// the scraped buckets, subtract, interpolate.
func histogramDelta(pre, post map[string]float64, name string) (HistJoin, bool) {
	hPost, ok := telemetry.HistogramFromSamples(post, name)
	if !ok {
		return HistJoin{}, false
	}
	window := hPost
	if hPre, ok := telemetry.HistogramFromSamples(pre, name); ok {
		window = hPost.Sub(hPre)
	}
	hj := HistJoin{Count: window.Count}
	if window.Count > 0 {
		hj.P50MS = window.Quantile(0.50) * 1e3
		hj.P99MS = window.Quantile(0.99) * 1e3
	}
	return hj, true
}

// startProfiles arms the step's pprof captures against the target's
// operator listener: a CPU profile spanning ProfileCPUSeconds from the
// end of warmup (so the profile covers the measured window, not JIT
// and cache warmup), and a heap profile at the step deadline (peak
// live set). No-op without a DebugURL.
func (r *Runner) startProfiles(ctx context.Context, label string, warmEnd, deadline time.Time,
	out *[]ProfileCapture, wg *sync.WaitGroup) {
	if r.cfg.DebugURL == "" || (r.cfg.ProfileCPUSeconds <= 0 && !r.cfg.ProfileHeap) {
		return
	}
	var mu sync.Mutex
	capture := func(kind, u, file string, after time.Time, timeout time.Duration) {
		defer wg.Done()
		if wait := time.Until(after); wait > 0 {
			select {
			case <-ctx.Done():
				return
			case <-time.After(wait):
			}
		}
		pc := ProfileCapture{Kind: kind, Path: file}
		if err := r.fetchProfile(u, file, timeout); err != nil {
			pc.Error = err.Error()
		} else if st, err := os.Stat(file); err == nil {
			pc.Bytes = st.Size()
		}
		mu.Lock()
		*out = append(*out, pc)
		mu.Unlock()
	}
	if err := os.MkdirAll(r.cfg.ProfileDir, 0o755); err != nil {
		r.logf("profile dir: %v", err)
		return
	}
	base := strings.TrimRight(r.cfg.DebugURL, "/")
	if r.cfg.ProfileCPUSeconds > 0 {
		wg.Add(1)
		go capture("cpu",
			fmt.Sprintf("%s/debug/pprof/profile?seconds=%d", base, r.cfg.ProfileCPUSeconds),
			filepath.Join(r.cfg.ProfileDir, label+"-cpu.pprof"),
			warmEnd,
			time.Duration(r.cfg.ProfileCPUSeconds)*time.Second+r.cfg.RequestTimeout)
	}
	if r.cfg.ProfileHeap {
		wg.Add(1)
		go capture("heap",
			base+"/debug/pprof/heap",
			filepath.Join(r.cfg.ProfileDir, label+"-heap.pprof"),
			deadline,
			r.cfg.RequestTimeout)
	}
}

// fetchProfile downloads one pprof endpoint to a file. A detached
// context: the CPU profile intentionally outlives the step's workers.
func (r *Runner) fetchProfile(u, file string, timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	// The shared client's timeout is tuned for requests, not an
	// N-second blocking profile: use a bare client with the transport.
	client := &http.Client{Transport: r.cfg.Transport}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return fmt.Errorf("loadgen: %s: status %d: %s", u, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	f, err := os.Create(file)
	if err != nil {
		return err
	}
	if _, err := io.Copy(f, resp.Body); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
