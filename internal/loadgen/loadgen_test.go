package loadgen

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// fakeTarget is a minimal serving surface: /healthz with model
// metadata, the three query routes, and a real telemetry registry on
// /metrics (runtime block included) so the joiner exercises the same
// scrape path it uses against rneserver.
type fakeTarget struct {
	*httptest.Server
	requests atomic.Int64
	batch5xx atomic.Bool
	reg      *telemetry.Registry
}

func newFakeTarget(t *testing.T, delay time.Duration) *fakeTarget {
	t.Helper()
	ft := &fakeTarget{reg: telemetry.NewRegistry()}
	telemetry.RegisterRuntimeMetrics(ft.reg)
	served := ft.reg.Counter("rne_fake_requests_total", "Requests served by the fake.")
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{"status": "ok", "vertices": 64})
	})
	serve := func(w http.ResponseWriter, r *http.Request) {
		ft.requests.Add(1)
		served.Inc()
		if delay > 0 {
			time.Sleep(delay)
		}
		json.NewEncoder(w).Encode(map[string]any{"distance": 1.0})
	}
	mux.HandleFunc("/distance", serve)
	mux.HandleFunc("/knn", serve)
	mux.HandleFunc("/batch", func(w http.ResponseWriter, r *http.Request) {
		if ft.batch5xx.Load() {
			ft.requests.Add(1)
			served.Inc()
			http.Error(w, "overloaded", http.StatusServiceUnavailable)
			return
		}
		serve(w, r)
	})
	mux.Handle("/metrics", ft.reg.Handler())
	ft.Server = httptest.NewServer(mux)
	t.Cleanup(ft.Close)
	return ft
}

// Closed loop end to end: vertex discovery from /healthz, per-route
// per-class stats over the measured window only, and a non-empty
// scrape join carrying the counters the fake target moved.
func TestClosedLoopRunWithJoin(t *testing.T) {
	ft := newFakeTarget(t, 0)
	ft.batch5xx.Store(true)

	r, err := New(context.Background(), Config{
		Target:         ft.URL,
		Mix:            Mix{Distance: 3, Batch: 1},
		BatchSize:      4,
		Seed:           7,
		ScrapeInterval: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Vertices() != 64 {
		t.Fatalf("discovered %d vertices, want 64 from /healthz", r.Vertices())
	}

	res, err := r.RunStep(context.Background(), Step{
		Clients:  2,
		Duration: 600 * time.Millisecond,
		Warmup:   150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != "closed" {
		t.Errorf("mode %q, want closed", res.Mode)
	}
	if res.Sent <= 0 || res.Measured <= 0 || res.Measured > res.Sent {
		t.Fatalf("sent %d measured %d: want 0 < measured <= sent (warmup excluded)", res.Sent, res.Measured)
	}
	if res.AchievedQPS <= 0 {
		t.Errorf("achieved qps %v, want > 0", res.AchievedQPS)
	}
	var sawDistance2xx, sawBatch5xx bool
	var routeCount int64
	for _, rs := range res.Routes {
		routeCount += rs.Count
		if rs.Count > 0 && (rs.P50MS <= 0 || rs.P99MS < rs.P50MS || rs.MaxMS < rs.P99MS/2) {
			t.Errorf("route %s/%s has implausible quantiles: %+v", rs.Route, rs.Class, rs)
		}
		switch {
		case rs.Route == "distance" && rs.Class == "2xx":
			sawDistance2xx = true
		case rs.Route == "batch" && rs.Class == "5xx":
			sawBatch5xx = true
		}
	}
	if !sawDistance2xx || !sawBatch5xx {
		t.Errorf("route/class series missing (distance2xx=%v batch5xx=%v): %+v",
			sawDistance2xx, sawBatch5xx, res.Routes)
	}
	if routeCount != res.Measured {
		t.Errorf("route counts sum to %d, measured %d", routeCount, res.Measured)
	}
	if res.SendLag != nil {
		t.Error("closed loop reported send lag; lag is an open-loop concept")
	}

	if len(res.Servers) != 1 {
		t.Fatalf("got %d server joins, want 1 (default: the target)", len(res.Servers))
	}
	join := res.Servers[0]
	if join.ScrapeError != "" {
		t.Fatalf("scrape error: %s", join.ScrapeError)
	}
	if d := join.CountersDelta["rne_fake_requests_total"]; d <= 0 {
		t.Errorf("join counters delta missing the fake's request counter: %v", join.CountersDelta)
	}
	if g := join.Gauges[telemetry.MetricGoroutines]; g < 1 {
		t.Errorf("joined goroutine gauge %v, want >= 1", g)
	}
	if len(join.Timeline) < 2 {
		t.Errorf("timeline has %d samples, want >= 2 (ticks plus closing scrape)", len(join.Timeline))
	}
	for _, ts := range join.Timeline {
		if ts.Goroutines < 1 || ts.HeapBytes <= 0 {
			t.Errorf("timeline sample missing runtime gauges: %+v", ts)
		}
	}
}

func TestRunnerRejectsGatewayWithoutVertices(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{"status": "ok"}) // no vertex count
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	if _, err := New(context.Background(), Config{Target: ts.URL}); err == nil {
		t.Fatal("runner accepted a target without a vertex count and no explicit -vertices")
	}
	if _, err := New(context.Background(), Config{Target: ts.URL, Vertices: 100}); err != nil {
		t.Fatalf("explicit vertex count rejected: %v", err)
	}
}

func TestParseMix(t *testing.T) {
	m, err := ParseMix("distance=8,batch=1,knn=1")
	if err != nil {
		t.Fatal(err)
	}
	if m != (Mix{Distance: 8, Batch: 1, KNN: 1}) {
		t.Fatalf("mix = %+v", m)
	}
	for _, bad := range []string{"", "distance", "walk=1", "distance=-1", "distance=0"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) accepted", bad)
		}
	}
}

func TestParseSteps(t *testing.T) {
	steps, err := ParseSteps("c=4,qps=0,d=2s,w=500ms; c=8,qps=200,d=1s", 250*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 2 {
		t.Fatalf("got %d steps", len(steps))
	}
	if steps[0].Clients != 4 || steps[0].QPS != 0 || steps[0].Warmup != 500*time.Millisecond {
		t.Errorf("step 0 = %+v", steps[0])
	}
	if steps[1].Warmup != 250*time.Millisecond {
		t.Errorf("step 1 did not inherit the default warmup: %+v", steps[1])
	}
	if steps[0].Label() != "c4-closed" || steps[1].Label() != "c8-q200" {
		t.Errorf("labels %q %q", steps[0].Label(), steps[1].Label())
	}
	for _, bad := range []string{"", "c=0,d=1s", "c=1,d=0s", "c=1,d=1s,w=2s", "c=1,d=1s,qps=-5", "x=1,d=1s"} {
		if _, err := ParseSteps(bad, 0); err == nil {
			t.Errorf("ParseSteps(%q) accepted", bad)
		}
	}
}

// Report append round trip: two runs land in one file, reload keeps
// them, and a foreign experiment file is refused.
func TestReportAppendRoundTrip(t *testing.T) {
	path := t.TempDir() + "/BENCH_load.json"
	rep, err := LoadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	rep.AppendRun(Run{Name: "replica", Target: "http://a"})
	if err := rep.Write(path); err != nil {
		t.Fatal(err)
	}
	rep2, err := LoadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	rep2.AppendRun(Run{Name: "gateway", Target: "http://b"})
	if err := rep2.Write(path); err != nil {
		t.Fatal(err)
	}
	final, err := LoadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(final.Runs) != 2 || final.Runs[0].Name != "replica" || final.Runs[1].Name != "gateway" {
		t.Fatalf("runs = %+v", final.Runs)
	}
	if final.Runs[0].StartUnix == 0 {
		t.Error("AppendRun did not stamp the run start")
	}

	foreign := t.TempDir() + "/BENCH_other.json"
	if err := (&Report{Experiment: "overload", Schema: 1}).Write(foreign); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadReport(foreign); err == nil {
		t.Error("foreign experiment report accepted for appending")
	}
}
