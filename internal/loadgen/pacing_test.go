package loadgen

import (
	"context"
	"sync"
	"testing"
	"time"
)

// Open loop against a slow target: the offered arrival schedule (100
// qps) outruns what two clients serving 50ms requests can carry
// (~40 qps), so a queue builds between intended arrival and send.
//
// This is the coordinated-omission test. A generator that timed
// requests from their *send* instant would report ~50ms at every
// quantile — each client conveniently waits until it is free before
// starting the clock. Measuring from the intended arrival makes the
// backlog visible: the tail must be several multiples of the service
// time, the send lag must exceed a full service time, and the
// arrivals the step ended before sending are reported, not dropped.
func TestOpenLoopPacingAccountsForCoordinatedOmission(t *testing.T) {
	const service = 50 * time.Millisecond
	ft := newFakeTarget(t, service)

	r, err := New(context.Background(), Config{
		Target:         ft.URL,
		Seed:           11,
		ScrapeInterval: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Every observation's intent is reconstructible: record them via
	// the test hook to verify the schedule itself.
	var mu sync.Mutex
	var lags []time.Duration
	r.onObserve = func(o obs) {
		mu.Lock()
		lags = append(lags, o.lag)
		mu.Unlock()
	}

	res, err := r.RunStep(context.Background(), Step{
		Clients:  2,
		QPS:      100,
		Duration: 700 * time.Millisecond,
		Warmup:   0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != "open" || res.OfferedQPS != 100 {
		t.Fatalf("mode %q offered %v, want open loop at 100", res.Mode, res.OfferedQPS)
	}

	// Achieved throughput is capacity-bound, far below offered.
	if res.AchievedQPS >= 0.8*res.OfferedQPS {
		t.Errorf("achieved %v qps at offered %v: the slow target cannot have kept up", res.AchievedQPS, res.OfferedQPS)
	}

	// The latency tail charges the queue to the target. With ~2.5x
	// overload the backlog grows all step; p99 must be well above a
	// single service time (a CO-blind generator would report ~1x).
	var p99 float64
	for _, rs := range res.Routes {
		if rs.Class == "2xx" && rs.P99MS > p99 {
			p99 = rs.P99MS
		}
	}
	if minP99 := 3 * float64(service/time.Millisecond); p99 < minP99 {
		t.Errorf("open-loop p99 = %.1fms, want >= %.0fms (queueing delay must be charged to the target)", p99, minP99)
	}

	// The same backlog shows up as send lag: requests left the client
	// at least one full service time after their intended arrival.
	if res.SendLag == nil {
		t.Fatal("open loop reported no send lag")
	}
	if res.SendLag.MaxMS < float64(service/time.Millisecond) {
		t.Errorf("max send lag %.1fms, want >= %.0fms (clients fell behind the schedule)",
			res.SendLag.MaxMS, float64(service/time.Millisecond))
	}

	// ~70 arrivals were intended; two 50ms-serial clients can send at
	// most ~28. The untaken arrivals must be accounted, and intended =
	// sent-or-inflight + unsent must reconcile.
	if res.UnsentArrivals <= 0 {
		t.Errorf("unsent arrivals = %d, want > 0 under 2.5x overload", res.UnsentArrivals)
	}
	intended := int64(700 * time.Millisecond / (time.Second / 100))
	if got := res.Sent + res.UnsentArrivals; got > intended {
		t.Errorf("sent %d + unsent %d = %d exceeds the %d intended arrivals", res.Sent, res.UnsentArrivals, got, intended)
	}

	// Lag is monotone-ish under a growing backlog: the last completed
	// request's lag must exceed the first's.
	mu.Lock()
	defer mu.Unlock()
	if len(lags) >= 4 && lags[len(lags)-1] <= lags[0] {
		t.Errorf("send lag did not grow under sustained overload: first %v last %v", lags[0], lags[len(lags)-1])
	}
}

// A fast target under a modest open-loop schedule: clients keep up,
// so send lag stays small and achieved tracks offered. This is the
// control for the overload case above — pacing must not fabricate
// queueing where none exists.
func TestOpenLoopPacingKeepsScheduleOnFastTarget(t *testing.T) {
	ft := newFakeTarget(t, 0)
	r, err := New(context.Background(), Config{
		Target:         ft.URL,
		Seed:           13,
		ScrapeInterval: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.RunStep(context.Background(), Step{
		Clients:  2,
		QPS:      50,
		Duration: 600 * time.Millisecond,
		Warmup:   100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Loose bounds: CI machines stall, but an unloaded localhost target
	// at 50 qps must achieve a substantial fraction of offered.
	if res.AchievedQPS < 0.5*res.OfferedQPS {
		t.Errorf("achieved %v qps of offered %v on an idle target", res.AchievedQPS, res.OfferedQPS)
	}
	if res.UnsentArrivals > int64(float64(res.Sent)*0.5) {
		t.Errorf("unsent %d vs sent %d: pacing fell behind on an idle target", res.UnsentArrivals, res.Sent)
	}
}
