package faultinject

import (
	"strings"
	"testing"
)

func TestEnableSpec(t *testing.T) {
	defer Reset()
	if err := EnableSpec("a/b:count=1, c/d:after=2:count=-1"); err != nil {
		t.Fatalf("EnableSpec: %v", err)
	}
	if err := Check("a/b"); err == nil {
		t.Fatal("a/b did not fire on first hit")
	}
	if err := Check("a/b"); err != nil {
		t.Fatalf("a/b fired past its count: %v", err)
	}
	for i := 0; i < 2; i++ {
		if err := Check("c/d"); err != nil {
			t.Fatalf("c/d fired during its after window (hit %d): %v", i, err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := Check("c/d"); err == nil {
			t.Fatalf("c/d stopped firing at hit %d despite count=-1", i)
		}
	}
}

func TestEnableSpecEmpty(t *testing.T) {
	defer Reset()
	if err := EnableSpec(""); err != nil {
		t.Fatalf("empty spec: %v", err)
	}
	if Active() {
		t.Fatal("empty spec armed something")
	}
}

func TestEnableSpecErrors(t *testing.T) {
	defer Reset()
	for _, spec := range []string{
		":count=1",
		"a/b:count",
		"a/b:count=x",
		"a/b:after=-1",
		"a/b:nope=3",
	} {
		if err := EnableSpec(spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		} else if !strings.Contains(err.Error(), "faultinject:") {
			t.Errorf("spec %q error lacks package prefix: %v", spec, err)
		}
	}
}
