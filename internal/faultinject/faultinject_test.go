package faultinject

import (
	"errors"
	"sync"
	"testing"
)

func TestDisarmedHooksAreNoOps(t *testing.T) {
	Reset()
	if Active() {
		t.Fatal("registry active with nothing armed")
	}
	if err := Check("anything"); err != nil {
		t.Fatalf("disarmed Check returned %v", err)
	}
	if Fires("anything") {
		t.Fatal("disarmed Fires fired")
	}
	if Hits("anything") != 0 {
		t.Fatal("disarmed Hits nonzero")
	}
}

func TestFireOnNthHit(t *testing.T) {
	defer Reset()
	Enable("p", Fault{After: 2}) // skip 2 hits, fire once on the 3rd
	for i := 0; i < 2; i++ {
		if err := Check("p"); err != nil {
			t.Fatalf("hit %d fired early: %v", i, err)
		}
	}
	if err := Check("p"); !errors.Is(err, ErrInjected) {
		t.Fatalf("3rd hit: got %v, want ErrInjected", err)
	}
	if err := Check("p"); err != nil {
		t.Fatalf("after Count exhausted, got %v", err)
	}
	if got := Hits("p"); got != 4 {
		t.Fatalf("Hits = %d, want 4", got)
	}
}

func TestCountControlsRepeatFiring(t *testing.T) {
	defer Reset()
	Enable("forever", Fault{Count: -1})
	for i := 0; i < 5; i++ {
		if !Fires("forever") {
			t.Fatalf("hit %d did not fire with Count=-1", i)
		}
	}
	Enable("twice", Fault{Count: 2})
	fired := 0
	for i := 0; i < 5; i++ {
		if Fires("twice") {
			fired++
		}
	}
	if fired != 2 {
		t.Fatalf("fired %d times, want 2", fired)
	}
}

func TestCustomError(t *testing.T) {
	defer Reset()
	sentinel := errors.New("disk on fire")
	Enable("p", Fault{Err: sentinel})
	if err := Check("p"); !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want wrapped custom error", err)
	}
}

func TestDisableAndReset(t *testing.T) {
	Enable("a", Fault{})
	Enable("b", Fault{})
	if !Active() {
		t.Fatal("not active after Enable")
	}
	Disable("a")
	Disable("a") // double-disable is a no-op
	if !Active() {
		t.Fatal("disabling one point deactivated the registry")
	}
	Reset()
	if Active() {
		t.Fatal("active after Reset")
	}
	if Fires("b") {
		t.Fatal("b fired after Reset")
	}
}

func TestReEnableRestartsCounters(t *testing.T) {
	defer Reset()
	Enable("p", Fault{})
	if !Fires("p") {
		t.Fatal("first arming did not fire")
	}
	Enable("p", Fault{}) // re-arm: counters restart
	if !Fires("p") {
		t.Fatal("re-armed point did not fire again")
	}
	if Active() && Hits("p") != 1 {
		t.Fatalf("Hits after re-arm = %d, want 1", Hits("p"))
	}
}

func TestConcurrentHitsRace(t *testing.T) {
	defer Reset()
	Enable("p", Fault{Count: 10})
	var wg sync.WaitGroup
	var mu sync.Mutex
	fired := 0
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if Fires("p") {
					mu.Lock()
					fired++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if fired != 10 {
		t.Fatalf("fired %d times across goroutines, want exactly 10", fired)
	}
}
