// Package faultinject is a small deterministic failpoint registry for
// chaos testing. Production code threads named hooks through its I/O
// and training paths (file writes, graph loading, checkpoint save/load,
// sample generation); tests arm individual failpoints by name to make
// exactly the Nth hit of a site fail with a chosen error — or, for
// numeric sites, to poison a value with NaN — and assert the system
// recovers.
//
// When nothing is armed every hook reduces to a single atomic load, so
// the registry is safe to leave compiled into hot paths: Check and
// Fires cost ~1ns disarmed and allocate nothing.
//
// Typical test usage:
//
//	defer faultinject.Reset()
//	faultinject.Enable("fsx/write-atomic", faultinject.Fault{After: 1})
//	// ... the second WriteAtomic call now fails with ErrInjected.
package faultinject

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrInjected is the default error returned by firing Check sites when
// the armed Fault carries no explicit error.
var ErrInjected = errors.New("faultinject: injected failure")

// Fault configures when and how an armed failpoint fires.
type Fault struct {
	// Err is the error Check returns when the failpoint fires; nil
	// selects ErrInjected. Boolean sites (Fires) ignore it.
	Err error
	// After is the number of hits to let through before firing: 0
	// fires on the first hit, 1 on the second, and so on.
	After int
	// Count bounds how many hits fire once triggering starts. 0 means
	// exactly one; negative means every subsequent hit fires.
	Count int
}

type point struct {
	fault Fault
	hits  int // total hits observed while armed
	fired int // hits that fired
}

var (
	// armed counts enabled failpoints; the disarmed fast path in Check
	// and Fires is a single load of this counter.
	armed  atomic.Int32
	mu     sync.Mutex
	points map[string]*point
)

// Enable arms the named failpoint, replacing any existing arming (hit
// counters restart at zero).
func Enable(name string, f Fault) {
	mu.Lock()
	defer mu.Unlock()
	if points == nil {
		points = make(map[string]*point)
	}
	if _, ok := points[name]; !ok {
		armed.Add(1)
	}
	points[name] = &point{fault: f}
}

// Disable disarms the named failpoint. Disabling an unarmed name is a
// no-op.
func Disable(name string) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := points[name]; ok {
		delete(points, name)
		armed.Add(-1)
	}
}

// Reset disarms every failpoint. Tests should defer it after arming
// anything.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	armed.Add(-int32(len(points)))
	points = nil
}

// Active reports whether any failpoint is armed.
func Active() bool { return armed.Load() > 0 }

// hit records a hit on name and reports whether it fires.
func hit(name string) (Fault, bool) {
	mu.Lock()
	defer mu.Unlock()
	p, ok := points[name]
	if !ok {
		return Fault{}, false
	}
	p.hits++
	if p.hits <= p.fault.After {
		return Fault{}, false
	}
	limit := p.fault.Count
	if limit == 0 {
		limit = 1
	}
	if limit > 0 && p.fired >= limit {
		return Fault{}, false
	}
	p.fired++
	return p.fault, true
}

// Check is the error-injection hook: it returns nil unless the named
// failpoint is armed and due, in which case it returns the configured
// error (ErrInjected by default).
func Check(name string) error {
	if armed.Load() == 0 {
		return nil
	}
	f, fire := hit(name)
	if !fire {
		return nil
	}
	if f.Err != nil {
		return fmt.Errorf("%s: %w", name, f.Err)
	}
	return fmt.Errorf("%s: %w", name, ErrInjected)
}

// Fires is the boolean hook for value-poisoning sites (e.g. "inject a
// NaN batch here"): it reports whether the named failpoint is armed and
// due on this hit.
func Fires(name string) bool {
	if armed.Load() == 0 {
		return false
	}
	_, fire := hit(name)
	return fire
}

// Hits returns how many times the named failpoint has been hit since it
// was armed (0 when unarmed) — a test aid for asserting a hook is
// actually wired through.
func Hits(name string) int {
	mu.Lock()
	defer mu.Unlock()
	if p, ok := points[name]; ok {
		return p.hits
	}
	return 0
}
