package faultinject

import (
	"fmt"
	"strconv"
	"strings"
)

// EnableSpec arms failpoints described by a comma-separated spec
// string, the form the real binaries accept via flags/environment so
// chaos smoke scripts can inject failures into an unmodified server:
//
//	name[:after=N][:count=M][,name2...]
//
// e.g. "core/checkpoint-save:count=1" makes the first checkpoint write
// fail once, and "fsx/write-atomic:after=2:count=-1" makes every
// atomic write from the third onward fail. Injected errors are always
// ErrInjected. An empty spec is a no-op.
func EnableSpec(spec string) error {
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		name := fields[0]
		if name == "" {
			return fmt.Errorf("faultinject: empty failpoint name in spec %q", spec)
		}
		var f Fault
		for _, field := range fields[1:] {
			k, v, ok := strings.Cut(field, "=")
			if !ok {
				return fmt.Errorf("faultinject: malformed field %q in spec %q (want key=value)", field, spec)
			}
			n, err := strconv.Atoi(v)
			if err != nil {
				return fmt.Errorf("faultinject: non-integer %s value %q in spec %q", k, v, spec)
			}
			switch k {
			case "after":
				if n < 0 {
					return fmt.Errorf("faultinject: after must be >= 0 in spec %q", spec)
				}
				f.After = n
			case "count":
				f.Count = n
			default:
				return fmt.Errorf("faultinject: unknown field %q in spec %q", k, spec)
			}
		}
		Enable(name, f)
	}
	return nil
}
