package fsx

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteAtomicReplacesWhole(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteAtomic(path, func(w io.Writer) error {
		_, err := w.Write([]byte("new content"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "new content" {
		t.Fatalf("content %q", got)
	}
	// No temp litter.
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries, want 1", len(entries))
	}
}

func TestWriteAtomicFailedWriteKeepsOld(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err := WriteAtomic(path, func(w io.Writer) error {
		w.Write([]byte("partial"))
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "old" {
		t.Fatalf("old content clobbered: %q", got)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("temp file leaked: %d entries", len(entries))
	}
}

func TestCRCRoundTrip(t *testing.T) {
	var sb strings.Builder
	cw := NewCRCWriter(&sb)
	payload := []byte("the quick brown fox")
	if _, err := cw.Write(payload); err != nil {
		t.Fatal(err)
	}
	if cw.N() != int64(len(payload)) {
		t.Fatalf("N = %d", cw.N())
	}
	cr := NewCRCReader(strings.NewReader(sb.String()))
	if _, err := io.ReadAll(cr); err != nil {
		t.Fatal(err)
	}
	if err := VerifyTrailer(cr, cw.N(), cw.Sum32(), "test"); err != nil {
		t.Fatal(err)
	}
	// Wrong length and wrong CRC both fail with named errors.
	if err := VerifyTrailer(cr, cw.N()+1, cw.Sum32(), "test"); err == nil || !strings.Contains(err.Error(), "length") {
		t.Fatalf("length mismatch not detected: %v", err)
	}
	if err := VerifyTrailer(cr, cw.N(), cw.Sum32()^1, "test"); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("checksum mismatch not detected: %v", err)
	}
}

func TestCRCDetectsFlip(t *testing.T) {
	payload := []byte("some payload bytes here")
	var sb strings.Builder
	cw := NewCRCWriter(&sb)
	cw.Write(payload)
	want := cw.Sum32()
	for i := range payload {
		flipped := append([]byte(nil), payload...)
		flipped[i] ^= 0x40
		cr := NewCRCReader(strings.NewReader(string(flipped)))
		io.ReadAll(cr)
		if cr.Sum32() == want {
			t.Fatalf("flip at %d undetected", i)
		}
	}
}
