package fsx

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faultinject"
)

// An injected write failure surfaces as an error, wraps ErrInjected,
// and leaves any previous file contents untouched (atomicity holds even
// for injected faults).
func TestWriteAtomicFailpoint(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	if err := os.WriteFile(path, []byte("precious"), 0o644); err != nil {
		t.Fatal(err)
	}

	defer faultinject.Reset()
	faultinject.Enable(FailpointWriteAtomic, faultinject.Fault{})
	err := WriteAtomic(path, func(w io.Writer) error {
		_, err := w.Write([]byte("overwrite"))
		return err
	})
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("injected failure returned %v, want ErrInjected", err)
	}
	got, readErr := os.ReadFile(path)
	if readErr != nil || string(got) != "precious" {
		t.Fatalf("previous contents damaged by failed write: %q, %v", got, readErr)
	}

	// Failpoint exhausted: the next write goes through.
	if err := WriteAtomic(path, func(w io.Writer) error {
		_, err := w.Write([]byte("overwrite"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "overwrite" {
		t.Fatalf("content after recovered write: %q", got)
	}
}
