// Package fsx holds the small filesystem and integrity primitives
// shared by every persistence path in the repository: atomic file
// replacement (so a crash mid-save can never leave a truncated model
// or index at the target path) and counting CRC32 writers/readers
// (the building blocks of the versioned, integrity-checked on-disk
// formats in internal/core and internal/index).
package fsx

import (
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"repro/internal/faultinject"
)

// FailpointWriteAtomic is the chaos-test hook armed to make WriteAtomic
// calls fail (simulating a full disk or lost mount) without touching
// the filesystem.
const FailpointWriteAtomic = "fsx/write-atomic"

// WriteAtomic writes a file by streaming through write into a
// temporary file in the destination directory, fsyncing it, and
// renaming it over path. Either the old content or the complete new
// content is visible at path; a crash mid-save leaves at most a stray
// *.tmp-* file, never a truncated target.
func WriteAtomic(path string, write func(w io.Writer) error) (err error) {
	if err := faultinject.Check(FailpointWriteAtomic); err != nil {
		return fmt.Errorf("fsx: writing %s: %w", path, err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = write(tmp); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	// CreateTemp opens 0600; restore the 0644 a plain os.Create would
	// have given (umask still applies to fresh files via Rename target).
	if err = tmp.Chmod(0o644); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	// Persist the rename itself; best-effort (some filesystems reject
	// directory fsync).
	if d, derr := os.Open(dir); derr == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// Rotate atomically moves path aside to path+".1", replacing any
// previous rotation, so an appender (e.g. the query log) can reopen a
// fresh file at path without ever presenting a truncated or
// half-renamed log to readers. A missing source file is not an error:
// rotating an empty log is a no-op.
func Rotate(path string) error {
	if err := os.Rename(path, path+".1"); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// CRCWriter counts and checksums everything written through it.
// Wrap the destination while writing a payload section, then store
// Sum32 as the trailer.
type CRCWriter struct {
	w   io.Writer
	crc hash.Hash32
	n   int64
}

// NewCRCWriter returns a CRCWriter over w using CRC-32 (IEEE).
func NewCRCWriter(w io.Writer) *CRCWriter {
	return &CRCWriter{w: w, crc: crc32.NewIEEE()}
}

func (cw *CRCWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.crc.Write(p[:n])
	cw.n += int64(n)
	return n, err
}

// N returns the number of bytes written so far.
func (cw *CRCWriter) N() int64 { return cw.n }

// Sum32 returns the CRC-32 (IEEE) of the bytes written so far.
func (cw *CRCWriter) Sum32() uint32 { return cw.crc.Sum32() }

// CRCReader counts and checksums everything read through it, so a
// loader can parse a payload section structurally and then verify the
// stored trailer against Sum32/N.
type CRCReader struct {
	r   io.Reader
	crc hash.Hash32
	n   int64
}

// NewCRCReader returns a CRCReader over r using CRC-32 (IEEE).
func NewCRCReader(r io.Reader) *CRCReader {
	return &CRCReader{r: r, crc: crc32.NewIEEE()}
}

func (cr *CRCReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.crc.Write(p[:n])
	cr.n += int64(n)
	return n, err
}

// N returns the number of bytes read so far.
func (cr *CRCReader) N() int64 { return cr.n }

// Sum32 returns the CRC-32 (IEEE) of the bytes read so far.
func (cr *CRCReader) Sum32() uint32 { return cr.crc.Sum32() }

// VerifyTrailer compares the payload length and checksum consumed
// through cr against the stored trailer values, returning a precise
// error naming what disagreed.
func VerifyTrailer(cr *CRCReader, wantLen int64, wantCRC uint32, what string) error {
	if cr.N() != wantLen {
		return fmt.Errorf("%s: payload length %d does not match header %d (truncated or corrupt file)", what, cr.N(), wantLen)
	}
	if cr.Sum32() != wantCRC {
		return fmt.Errorf("%s: payload checksum %08x does not match trailer %08x (corrupt file)", what, cr.Sum32(), wantCRC)
	}
	return nil
}
