package kdtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func randomPoints(rng *rand.Rand, n int) (xs, ys []float64, ids []int32) {
	xs = make([]float64, n)
	ys = make([]float64, n)
	ids = make([]int32, n)
	for i := 0; i < n; i++ {
		xs[i] = rng.Float64() * 100
		ys[i] = rng.Float64() * 100
		ids[i] = int32(i)
	}
	return xs, ys, ids
}

func bruteRange(xs, ys []float64, ids []int32, m Metric, qx, qy, tau float64) []int32 {
	var out []int32
	for i := range xs {
		if m.dist(qx, qy, xs[i], ys[i]) <= tau {
			out = append(out, ids[i])
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestRangeMatchesBruteForce(t *testing.T) {
	for _, m := range []Metric{Euclidean, Manhattan} {
		rng := rand.New(rand.NewSource(int64(m) + 1))
		xs, ys, ids := randomPoints(rng, 400)
		tree, err := Build(xs, ys, ids, m)
		if err != nil {
			t.Fatal(err)
		}
		if tree.Size() != 400 || tree.Metric() != m {
			t.Fatal("metadata wrong")
		}
		for trial := 0; trial < 50; trial++ {
			qx := rng.Float64() * 100
			qy := rng.Float64() * 100
			tau := rng.Float64() * 40
			got := tree.Range(qx, qy, tau)
			want := bruteRange(xs, ys, ids, m, qx, qy, tau)
			if len(got) != len(want) {
				t.Fatalf("%v: got %d results, want %d", m, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%v: result %d: %d vs %d", m, i, got[i], want[i])
				}
			}
		}
	}
}

func TestKNNMatchesBruteForce(t *testing.T) {
	for _, m := range []Metric{Euclidean, Manhattan} {
		rng := rand.New(rand.NewSource(int64(m) + 10))
		xs, ys, ids := randomPoints(rng, 300)
		tree, err := Build(xs, ys, ids, m)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 50; trial++ {
			qx := rng.Float64() * 100
			qy := rng.Float64() * 100
			k := 1 + rng.Intn(12)
			got := tree.KNN(qx, qy, k)
			if len(got) != k {
				t.Fatalf("%v: got %d results, want %d", m, len(got), k)
			}
			// Compare distances (ties make id comparison fragile).
			ds := make([]float64, len(xs))
			for i := range xs {
				ds[i] = m.dist(qx, qy, xs[i], ys[i])
			}
			sort.Float64s(ds)
			prev := -1.0
			for i, id := range got {
				d := m.dist(qx, qy, xs[id], ys[id])
				if d < prev-1e-12 {
					t.Fatalf("%v: results not sorted", m)
				}
				prev = d
				if math.Abs(d-ds[i]) > 1e-9 {
					t.Fatalf("%v: pos %d dist %v, want %v", m, i, d, ds[i])
				}
			}
		}
	}
}

func TestEdgeCases(t *testing.T) {
	xs, ys, ids := randomPoints(rand.New(rand.NewSource(3)), 10)
	tree, err := Build(xs, ys, ids, Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.KNN(0, 0, 0); got != nil {
		t.Fatal("k=0 should return nil")
	}
	if got := tree.KNN(0, 0, 100); len(got) != 10 {
		t.Fatalf("k>n returned %d", len(got))
	}
	if got := tree.Range(0, 0, -1); got != nil {
		t.Fatal("negative tau should return nil")
	}
	if got := tree.Range(50, 50, 1e9); len(got) != 10 {
		t.Fatalf("huge tau returned %d", len(got))
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, nil, nil, Euclidean); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Build([]float64{1}, []float64{1, 2}, []int32{0}, Euclidean); err == nil {
		t.Error("mismatched lengths accepted")
	}
}

func TestDuplicatePoints(t *testing.T) {
	xs := []float64{5, 5, 5, 5}
	ys := []float64{5, 5, 5, 5}
	ids := []int32{10, 20, 30, 40}
	tree, err := Build(xs, ys, ids, Manhattan)
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.Range(5, 5, 0); len(got) != 4 {
		t.Fatalf("coincident points: range returned %d of 4", len(got))
	}
	if got := tree.KNN(5, 5, 4); len(got) != 4 {
		t.Fatalf("coincident points: knn returned %d of 4", len(got))
	}
}

func TestMetricString(t *testing.T) {
	if Euclidean.String() != "euclidean" || Manhattan.String() != "manhattan" {
		t.Fatal("metric names wrong")
	}
	if Metric(7).String() == "" {
		t.Fatal("unknown metric should render")
	}
}
