// Package kdtree provides a 2-d tree over vertex coordinates backing
// the Euclidean and Manhattan baselines of the range/kNN comparison
// (Figure 16): straight-line distance estimates with classic spatial
// pruning.
package kdtree

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/pqueue"
)

// Metric selects the coordinate distance used by queries.
type Metric int

const (
	// Euclidean is the L2 coordinate distance.
	Euclidean Metric = iota
	// Manhattan is the L1 coordinate distance.
	Manhattan
)

// String names the metric.
func (m Metric) String() string {
	switch m {
	case Euclidean:
		return "euclidean"
	case Manhattan:
		return "manhattan"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

func (m Metric) dist(ax, ay, bx, by float64) float64 {
	dx := ax - bx
	dy := ay - by
	if m == Manhattan {
		return math.Abs(dx) + math.Abs(dy)
	}
	return math.Sqrt(dx*dx + dy*dy)
}

// node ids index the points slice; the tree is stored implicitly by
// recursive median splits over a permutation array.
type node struct {
	point       int32 // index into xs/ys/ids
	left, right int32 // -1 when absent
	axis        uint8 // 0 = x, 1 = y
}

// Tree is an immutable 2-d tree over a point set.
type Tree struct {
	xs, ys []float64
	ids    []int32
	nodes  []node
	root   int32
	metric Metric
}

// Build constructs a tree over the given points. ids[i] is the caller's
// identifier for point (xs[i], ys[i]); all three slices must have equal
// non-zero length.
func Build(xs, ys []float64, ids []int32, metric Metric) (*Tree, error) {
	if len(xs) == 0 || len(xs) != len(ys) || len(xs) != len(ids) {
		return nil, fmt.Errorf("kdtree: need equal non-empty coordinate/id slices, got %d/%d/%d",
			len(xs), len(ys), len(ids))
	}
	t := &Tree{
		xs:     append([]float64(nil), xs...),
		ys:     append([]float64(nil), ys...),
		ids:    append([]int32(nil), ids...),
		metric: metric,
		nodes:  make([]node, 0, len(xs)),
	}
	perm := make([]int32, len(xs))
	for i := range perm {
		perm[i] = int32(i)
	}
	t.root = t.build(perm, 0)
	return t, nil
}

func (t *Tree) build(perm []int32, depth int) int32 {
	if len(perm) == 0 {
		return -1
	}
	axis := uint8(depth % 2)
	sort.Slice(perm, func(i, j int) bool {
		if axis == 0 {
			return t.xs[perm[i]] < t.xs[perm[j]]
		}
		return t.ys[perm[i]] < t.ys[perm[j]]
	})
	mid := len(perm) / 2
	id := int32(len(t.nodes))
	t.nodes = append(t.nodes, node{point: perm[mid], axis: axis, left: -1, right: -1})
	left := append([]int32(nil), perm[:mid]...)
	right := append([]int32(nil), perm[mid+1:]...)
	t.nodes[id].left = t.build(left, depth+1)
	t.nodes[id].right = t.build(right, depth+1)
	return id
}

// Size returns the number of indexed points.
func (t *Tree) Size() int { return len(t.ids) }

// Metric returns the query metric.
func (t *Tree) Metric() Metric { return t.metric }

// axisDelta is the coordinate gap to a node's splitting plane — a lower
// bound on the metric distance to anything on the far side (valid for
// both L1 and L2).
func (t *Tree) axisDelta(n *node, qx, qy float64) float64 {
	if n.axis == 0 {
		return qx - t.xs[n.point]
	}
	return qy - t.ys[n.point]
}

// Range returns the ids of all points within tau of (qx, qy), sorted.
func (t *Tree) Range(qx, qy, tau float64) []int32 {
	if tau < 0 {
		return nil
	}
	var out []int32
	var walk func(ni int32)
	walk = func(ni int32) {
		if ni < 0 {
			return
		}
		n := &t.nodes[ni]
		if t.metric.dist(qx, qy, t.xs[n.point], t.ys[n.point]) <= tau {
			out = append(out, t.ids[n.point])
		}
		delta := t.axisDelta(n, qx, qy)
		if delta <= 0 {
			walk(n.left)
			if -delta <= tau {
				walk(n.right)
			}
		} else {
			walk(n.right)
			if delta <= tau {
				walk(n.left)
			}
		}
	}
	walk(t.root)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// KNN returns up to k point ids nearest to (qx, qy), nearest first.
func (t *Tree) KNN(qx, qy float64, k int) []int32 {
	if k <= 0 {
		return nil
	}
	// Best-first traversal: frontier of tree nodes keyed by the lower
	// bound of their subtree, interleaved with exact point entries.
	var pq pqueue.FloatHeap
	push := func(ni int32, bound float64) {
		if ni >= 0 {
			pq.Push(bound, int64(ni)<<1)
		}
	}
	push(t.root, 0)
	out := make([]int32, 0, k)
	for pq.Len() > 0 && len(out) < k {
		key, payload := pq.Pop()
		if payload&1 == 1 {
			out = append(out, t.ids[payload>>1])
			continue
		}
		ni := int32(payload >> 1)
		n := &t.nodes[ni]
		d := t.metric.dist(qx, qy, t.xs[n.point], t.ys[n.point])
		pq.Push(d, int64(n.point)<<1|1)
		delta := t.axisDelta(n, qx, qy)
		near, far := n.left, n.right
		if delta > 0 {
			near, far = far, near
		}
		push(near, key)
		bound := math.Abs(delta)
		if bound < key {
			bound = key
		}
		push(far, bound)
	}
	return out
}
