package alt

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/sssp"
)

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := gen.Grid(14, 14, gen.DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBoundsBracketTrueDistance(t *testing.T) {
	g := testGraph(t)
	idx, err := Build(g, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	ws := sssp.NewWorkspace(g)
	rng := rand.New(rand.NewSource(3))
	n := g.NumVertices()
	for trial := 0; trial < 200; trial++ {
		s := int32(rng.Intn(n))
		u := int32(rng.Intn(n))
		want := ws.Distance(s, u)
		lo, hi := idx.Bounds(s, u)
		if lo > want+1e-9 {
			t.Fatalf("(%d,%d): lower bound %v exceeds true %v", s, u, lo, want)
		}
		if hi < want-1e-9 {
			t.Fatalf("(%d,%d): upper bound %v below true %v", s, u, hi, want)
		}
	}
}

func TestEstimateErrorBoundedByGap(t *testing.T) {
	g := testGraph(t)
	idx, err := Build(g, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	ws := sssp.NewWorkspace(g)
	rng := rand.New(rand.NewSource(4))
	n := g.NumVertices()
	for trial := 0; trial < 100; trial++ {
		s := int32(rng.Intn(n))
		u := int32(rng.Intn(n))
		want := ws.Distance(s, u)
		lo, hi := idx.Bounds(s, u)
		got := idx.Estimate(s, u)
		if err := math.Abs(got - want); err > (hi-lo)/2+1e-9 {
			t.Fatalf("(%d,%d): estimate error %v exceeds half-gap %v", s, u, err, (hi-lo)/2)
		}
	}
	if idx.Estimate(3, 3) != 0 {
		t.Fatal("self estimate must be 0")
	}
}

func TestMoreLandmarksTightenEstimates(t *testing.T) {
	g := testGraph(t)
	small, err := Build(g, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	large, err := Build(g, 32, 5)
	if err != nil {
		t.Fatal(err)
	}
	ws := sssp.NewWorkspace(g)
	rng := rand.New(rand.NewSource(6))
	n := g.NumVertices()
	var errSmall, errLarge float64
	count := 0
	for trial := 0; trial < 300; trial++ {
		s := int32(rng.Intn(n))
		u := int32(rng.Intn(n))
		want := ws.Distance(s, u)
		if want <= 0 {
			continue
		}
		errSmall += math.Abs(small.Estimate(s, u)-want) / want
		errLarge += math.Abs(large.Estimate(s, u)-want) / want
		count++
	}
	if errLarge >= errSmall {
		t.Fatalf("32 landmarks (%v) not better than 4 (%v)", errLarge/float64(count), errSmall/float64(count))
	}
}

func TestSearchDistanceExactAndFasterThanDijkstra(t *testing.T) {
	g := testGraph(t)
	idx, err := Build(g, 16, 7)
	if err != nil {
		t.Fatal(err)
	}
	ws := sssp.NewWorkspace(g)
	rng := rand.New(rand.NewSource(8))
	n := g.NumVertices()
	var altSettled, plainSettled int
	for trial := 0; trial < 50; trial++ {
		s := int32(rng.Intn(n))
		u := int32(rng.Intn(n))
		want := ws.Distance(s, u)
		got, settled := idx.SearchDistance(ws, s, u)
		if math.Abs(want-got) > 1e-9 {
			t.Fatalf("(%d,%d): ALT %v, Dijkstra %v", s, u, got, want)
		}
		altSettled += settled
		_, ds := ws.AStarDistance(s, u, nil)
		plainSettled += ds
	}
	if altSettled >= plainSettled {
		t.Fatalf("ALT settled %d vertices, plain Dijkstra %d: landmarks gave no pruning", altSettled, plainSettled)
	}
}

func TestBuildWithLandmarksAndValidation(t *testing.T) {
	g := testGraph(t)
	if _, err := Build(g, 0, 1); err == nil {
		t.Error("zero landmarks accepted")
	}
	if _, err := BuildWithLandmarks(g, nil); err == nil {
		t.Error("empty landmark set accepted")
	}
	idx, err := BuildWithLandmarks(g, []int32{0, 5, 9})
	if err != nil {
		t.Fatal(err)
	}
	if idx.NumLandmarks() != 3 || len(idx.Landmarks()) != 3 {
		t.Fatal("landmark count wrong")
	}
	wantBytes := int64(3*g.NumVertices()) * 8
	if idx.IndexBytes() != wantBytes {
		t.Fatalf("IndexBytes = %d, want %d", idx.IndexBytes(), wantBytes)
	}
}

// BoundsDetail must agree with Bounds on the interval and name
// landmarks that actually produce it.
func TestBoundsDetailMatchesBounds(t *testing.T) {
	g := testGraph(t)
	idx, err := Build(g, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	inLandmarks := func(v int32) bool {
		for _, u := range idx.Landmarks() {
			if u == v {
				return true
			}
		}
		return false
	}
	rng := rand.New(rand.NewSource(7))
	n := int32(g.NumVertices())
	for trial := 0; trial < 300; trial++ {
		s, u := rng.Int31n(n), rng.Int31n(n)
		lo, hi := idx.Bounds(s, u)
		info := idx.BoundsDetail(s, u)
		if info.Lo != lo || info.Hi != hi {
			t.Fatalf("(%d,%d): BoundsDetail [%v,%v] != Bounds [%v,%v]", s, u, info.Lo, info.Hi, lo, hi)
		}
		if !inLandmarks(info.LoLandmark) || !inLandmarks(info.HiLandmark) {
			t.Fatalf("(%d,%d): provenance names non-landmarks %d/%d", s, u, info.LoLandmark, info.HiLandmark)
		}
	}
}
