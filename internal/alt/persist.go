package alt

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/fsx"
)

// ALT index persistence. The on-disk format mirrors the model and
// checkpoint files: a magic string, the little-endian payload length,
// the payload ({n, |U|} header, landmark ids, label matrix), and a
// CRC32-IEEE trailer over the payload. Files are written atomically, so
// a crashed save never leaves a truncated index behind, and every load
// verifies length and checksum before any data is trusted.
//
// A loaded Index carries no graph: Bounds, Estimate and LowerBound are
// pure label-matrix lookups and keep working, which is exactly what the
// server guard mode needs. Graph-dependent queries (SearchDistance)
// require an index built in-process via Build/BuildWithLandmarks.

const altMagic = "RNEALT1\n"

// maxLandmarks bounds |U| when loading, rejecting absurd headers before
// any allocation. Practical ALT landmark sets are tens of vertices.
const maxLandmarks = 1 << 16

// WriteTo streams the index in the RNEALT1 format.
func (idx *Index) WriteTo(w io.Writer) (int64, error) {
	nU := int64(len(idx.landmarks))
	plen := 2*8 + nU*4 + int64(len(idx.labels))*8
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(altMagic); err != nil {
		return 0, err
	}
	if err := binary.Write(bw, binary.LittleEndian, plen); err != nil {
		return 0, err
	}
	cw := fsx.NewCRCWriter(bw)
	for _, v := range []int64{int64(idx.n), nU} {
		if err := binary.Write(cw, binary.LittleEndian, v); err != nil {
			return 0, err
		}
	}
	if err := binary.Write(cw, binary.LittleEndian, idx.landmarks); err != nil {
		return 0, err
	}
	if err := binary.Write(cw, binary.LittleEndian, idx.labels); err != nil {
		return 0, err
	}
	if err := binary.Write(bw, binary.LittleEndian, cw.Sum32()); err != nil {
		return 0, err
	}
	if err := bw.Flush(); err != nil {
		return 0, err
	}
	return int64(len(altMagic)) + 8 + plen + 4, nil
}

// SaveFile atomically writes the index to path.
func (idx *Index) SaveFile(path string) error {
	return fsx.WriteAtomic(path, func(w io.Writer) error {
		_, err := idx.WriteTo(w)
		return err
	})
}

// Read loads an index written by WriteTo. The returned Index has no
// graph attached: estimation queries (Bounds, Estimate, LowerBound)
// work; SearchDistance does not.
func Read(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(altMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("alt: reading index magic: %w", err)
	}
	if string(magic) != altMagic {
		return nil, fmt.Errorf("alt: bad index magic %q", magic)
	}
	var plen int64
	if err := binary.Read(br, binary.LittleEndian, &plen); err != nil {
		return nil, fmt.Errorf("alt: reading index payload length: %w", err)
	}
	cr := fsx.NewCRCReader(io.LimitReader(br, plen))
	var n, nU int64
	for _, p := range []*int64{&n, &nU} {
		if err := binary.Read(cr, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("alt: reading index header: %w", err)
		}
	}
	if n < 1 || nU < 1 || nU > maxLandmarks {
		return nil, fmt.Errorf("alt: implausible index header: %d vertices, %d landmarks", n, nU)
	}
	if want := 2*8 + nU*4 + nU*n*8; plen != want {
		return nil, fmt.Errorf("alt: index payload is %d bytes, want %d for %d x %d labels", plen, want, nU, n)
	}
	idx := &Index{
		labels:    make([]float64, nU*n),
		landmarks: make([]int32, nU),
		n:         int(n),
	}
	if err := binary.Read(cr, binary.LittleEndian, idx.landmarks); err != nil {
		return nil, fmt.Errorf("alt: reading landmark ids: %w", err)
	}
	if err := binary.Read(cr, binary.LittleEndian, idx.labels); err != nil {
		return nil, fmt.Errorf("alt: reading label matrix: %w", err)
	}
	var wantCRC uint32
	if err := binary.Read(br, binary.LittleEndian, &wantCRC); err != nil {
		return nil, fmt.Errorf("alt: reading index checksum trailer: %w", err)
	}
	if err := fsx.VerifyTrailer(cr, plen, wantCRC, "alt: index"); err != nil {
		return nil, err
	}
	for _, u := range idx.landmarks {
		if u < 0 || int64(u) >= n {
			return nil, fmt.Errorf("alt: landmark id %d out of range [0,%d)", u, n)
		}
	}
	for i, v := range idx.labels {
		if math.IsNaN(v) || v < 0 {
			return nil, fmt.Errorf("alt: invalid label %v at offset %d", v, i)
		}
	}
	return idx, nil
}

// LoadFile loads an index from a file written by SaveFile.
func LoadFile(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	idx, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("alt: loading index %s: %w", path, err)
	}
	return idx, nil
}

// NumVertices returns the vertex count of the graph the index was built
// over.
func (idx *Index) NumVertices() int { return idx.n }
